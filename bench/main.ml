(* Benchmark harness: one Bechamel test (or family) per figure / evaluation
   claim / ablation in DESIGN.md's experiment index.  The paper's evaluation
   (§8) is qualitative, so each experiment prints the measured shape next to
   the paper's claim; EXPERIMENTS.md records the correspondence. *)

open Bechamel
open Toolkit

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Event = Swm_xlib.Event
module Xrdb = Swm_xrdb.Xrdb
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Vdesk = Swm_core.Vdesk
module Panner = Swm_core.Panner
module Functions = Swm_core.Functions
module Bindings = Swm_core.Bindings
module Session = Swm_core.Session
module Icons = Swm_core.Icons
module Templates = Swm_core.Templates
module Config = Swm_core.Config
module Wobj = Swm_oi.Wobj
module Panel_spec = Swm_oi.Panel_spec
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock
module Workload = Swm_clients.Workload
module Twm_like = Swm_baselines.Twm_like
module Gwm_like = Swm_baselines.Gwm_like
module Mlisp = Swm_baselines.Mlisp

module Metrics = Swm_xlib.Metrics
module Tracing = Swm_xlib.Tracing
module Wire = Swm_xlib.Wire
module Wire_conn = Swm_xlib.Wire_conn
module Fault = Swm_xlib.Fault
module Health = Swm_xlib.Health
module Supervisor = Swm_core.Supervisor
module Recorder = Swm_xlib.Recorder
module Replay = Swm_xlib.Replay
module Profile = Swm_xlib.Profile

(* -------- runner -------- *)

type result = { rname : string; ns_per_run : float; r2 : float option }

(* --smoke: a tiny quota so CI can prove every fixture and measurement path
   works without paying for statistically meaningful numbers. *)
let smoke = ref false

let run_tests tests =
  let instances = Instance.[ monotonic_clock ] in
  let limit, quota = if !smoke then (50, 0.01) else (2000, 0.25) in
  let cfg =
    Benchmark.cfg ~limit ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.fold
        (fun name ols acc ->
          let ns =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          { rname = name; ns_per_run = ns; r2 = Analyze.OLS.r_square ols } :: acc)
        results [])
    tests

let pp_ns ppf ns =
  if Float.is_nan ns then Format.fprintf ppf "n/a"
  else if ns > 1e9 then Format.fprintf ppf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Format.fprintf ppf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Format.fprintf ppf "%.2f us" (ns /. 1e3)
  else Format.fprintf ppf "%.0f ns" ns

let report ~experiment ~claim results =
  Format.printf "@.== %s@.   paper: %s@." experiment claim;
  List.iter
    (fun r ->
      Format.printf "   %-38s %10s%s@." r.rname
        (Format.asprintf "%a" pp_ns r.ns_per_run)
        (match r.r2 with
        | Some r2 when r2 < 0.9 -> Printf.sprintf "   (r2=%.2f)" r2
        | Some _ | None -> ""))
    (List.sort (fun a b -> compare a.rname b.rname) results);
  results

let find name results =
  match List.find_opt (fun r -> r.rname = name) results with
  | Some r -> r.ns_per_run
  | None -> nan

let verdict fmt = Format.printf ("   -> " ^^ fmt ^^ "@.")

(* -------- fixtures -------- *)

let quiet_resources = [ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]

let fresh_wm ?(resources = quiet_resources) () =
  let server = Server.create () in
  let wm = Wm.start ~resources server in
  (server, wm)

(* Manage-and-unmanage one client end to end (launch, MapRequest, decorate,
   destroy, cleanup): the unit of WM work in eval1/eval6. *)
let manage_cycle_swm server wm spec =
  let app = Client_app.launch server spec in
  ignore (Wm.step wm);
  Client_app.destroy app;
  ignore (Wm.step wm)

(* -------- F1/F2: decoration and root panel construction -------- *)

let bench_figures () =
  let server, wm = fresh_wm () in
  let ctx = Wm.ctx wm in
  let scr = Ctx.screen ctx 0 in
  let xterm_spec =
    Client_app.spec ~instance:"xterm" ~class_:"XTerm" ~us_position:true
      (Geom.rect 40 48 320 160)
  in
  let lookup n = Config.panel_definition ctx.Ctx.cfg ~screen:0 n in
  let results =
    run_tests
      [
        Test.make ~name:"fig1/decorate-openlook"
          (Staged.stage (fun () -> manage_cycle_swm server wm xterm_spec));
        Test.make ~name:"fig2/root-panel-build"
          (Staged.stage (fun () ->
               match
                 Panel_spec.build scr.Ctx.tk ~lookup ~kind:Wobj.Panel
                   ~name:"RootPanel"
               with
               | Ok panel ->
                   Wobj.realize panel ~parent_window:scr.Ctx.root
                     ~at:(Geom.point 8 8);
                   Wobj.unrealize panel
               | Error msg -> failwith msg));
      ]
  in
  ignore
    (report ~experiment:"F1/F2: object construction (Figures 1 and 2)"
       ~claim:
         "decorations and root panels are assembled at runtime from resource \
          definitions"
       results)

(* -------- F3: panner refresh -------- *)

let bench_panner () =
  let mk n =
    let server = Server.create () in
    let wm = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server in
    let ctx = Wm.ctx wm in
    let _apps =
      Workload.launch server
        { Workload.default_params with count = n; area = (3000, 2400) }
    in
    ignore (Wm.step wm);
    (ctx, n)
  in
  let fixtures = List.map mk [ 5; 25; 100 ] in
  let tests =
    List.map
      (fun (ctx, n) ->
        Test.make
          ~name:(Printf.sprintf "fig3/panner-refresh-%03d" n)
          (Staged.stage (fun () -> Panner.refresh ctx ~screen:0)))
      fixtures
  in
  let results =
    report ~experiment:"F3: Virtual Desktop panner (Figure 3)"
      ~claim:"the panner shows a miniature of every window; refresh scales with N"
      (run_tests tests)
  in
  let t5 = find "fig3/panner-refresh-005" results
  and t100 = find "fig3/panner-refresh-100" results in
  verdict "refresh(100 windows) / refresh(5 windows) = %.1fx" (t100 /. t5)

(* -------- E1: toolkit-based swm vs direct twm vs interpreted gwm -------- *)

let bench_manage_comparison () =
  let spec_at i =
    Client_app.spec
      ~instance:(Printf.sprintf "bench%d" i)
      ~class_:"Bench" ~us_position:true
      (Geom.rect (10 + (i mod 7 * 30)) (10 + (i mod 5 * 40)) 300 200)
  in
  (* swm *)
  let server_swm, wm = fresh_wm () in
  let counter = ref 0 in
  (* twm-like *)
  let server_twm = Server.create () in
  let twm = Twm_like.start server_twm in
  (* gwm-like *)
  let server_gwm = Server.create () in
  let gwm =
    match Gwm_like.start server_gwm with Ok g -> g | Error msg -> failwith msg
  in
  let manage_cycle_direct server step destroyed_step spec =
    let app = Client_app.launch server spec in
    ignore (step ());
    Client_app.destroy app;
    ignore (destroyed_step ())
  in
  let results =
    report
      ~experiment:"E1: manage cost, toolkit WM vs direct-Xlib WM vs Lisp WM (paper §8)"
      ~claim:
        "a toolkit-based WM has somewhat slower performance than one written \
         directly on top of Xlib; the flexibility is worth the trade-off"
      (run_tests
         [
           Test.make ~name:"eval1/manage-swm"
             (Staged.stage (fun () ->
                  incr counter;
                  manage_cycle_swm server_swm wm (spec_at !counter)));
           Test.make ~name:"eval1/manage-twm"
             (Staged.stage (fun () ->
                  incr counter;
                  manage_cycle_direct server_twm
                    (fun () -> Twm_like.step twm)
                    (fun () -> Twm_like.step twm)
                    (spec_at !counter)));
           Test.make ~name:"eval1/manage-gwm"
             (Staged.stage (fun () ->
                  incr counter;
                  manage_cycle_direct server_gwm
                    (fun () -> Gwm_like.step gwm)
                    (fun () -> Gwm_like.step gwm)
                    (spec_at !counter)));
         ])
  in
  let swm_t = find "eval1/manage-swm" results
  and twm_t = find "eval1/manage-twm" results
  and gwm_t = find "eval1/manage-gwm" results in
  verdict "swm/twm = %.1fx (paper expects >1: toolkit overhead); gwm/twm = %.1fx"
    (swm_t /. twm_t) (gwm_t /. twm_t);
  (* Machine-independent overhead: protocol requests per manage cycle. *)
  let requests_per_cycle server run =
    let before = Server.request_count server in
    run ();
    Server.request_count server - before
  in
  incr counter;
  let swm_reqs =
    requests_per_cycle server_swm (fun () ->
        manage_cycle_swm server_swm wm (spec_at !counter))
  in
  incr counter;
  let twm_reqs =
    requests_per_cycle server_twm (fun () ->
        manage_cycle_direct server_twm
          (fun () -> Twm_like.step twm)
          (fun () -> Twm_like.step twm)
          (spec_at !counter))
  in
  incr counter;
  let gwm_reqs =
    requests_per_cycle server_gwm (fun () ->
        manage_cycle_direct server_gwm
          (fun () -> Gwm_like.step gwm)
          (fun () -> Gwm_like.step gwm)
          (spec_at !counter))
  in
  verdict
    "protocol requests per manage cycle: swm=%d twm=%d gwm=%d (swm/twm = %.1fx, \
     timing-independent)"
    swm_reqs twm_reqs gwm_reqs
    (float_of_int swm_reqs /. float_of_int (max 1 twm_reqs))

let bench_dispatch_comparison () =
  (* Click-to-raise round trip under each WM. *)
  let server_swm, wm = fresh_wm () in
  let app = Stock.xterm server_swm ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let client = Option.get (Wm.find_client wm (Client_app.window app)) in
  let title =
    match client.Ctx.deco with
    | Some deco ->
        Wobj.window (Option.get (Wobj.find_descendant deco ~name:"name"))
    | None -> failwith "no deco"
  in
  let title_abs = Server.root_geometry server_swm title in
  Server.warp_pointer server_swm ~screen:0
    (Geom.point (title_abs.x + 2) (title_abs.y + 2));
  ignore (Wm.step wm);

  let server_twm = Server.create () in
  let twm = Twm_like.start server_twm in
  let app2 = Stock.xterm server_twm ~at:(Geom.point 100 100) () in
  ignore (Twm_like.step twm);
  let frame2 = Option.get (Twm_like.frame_of twm (Client_app.window app2)) in
  let f2 = Server.root_geometry server_twm frame2 in
  Server.warp_pointer server_twm ~screen:0 (Geom.point (f2.x + 5) (f2.y + 5));
  ignore (Twm_like.step twm);

  let server_gwm = Server.create () in
  let gwm = match Gwm_like.start server_gwm with Ok g -> g | Error m -> failwith m in
  let app3 = Stock.xterm server_gwm ~at:(Geom.point 100 100) () in
  ignore (Gwm_like.step gwm);
  let frame3 = Option.get (Gwm_like.frame_of gwm (Client_app.window app3)) in
  let f3 = Server.root_geometry server_gwm frame3 in
  Server.warp_pointer server_gwm ~screen:0 (Geom.point (f3.x + 5) (f3.y + 5));
  ignore (Gwm_like.step gwm);

  let results =
    report ~experiment:"E1b: event dispatch (title click -> f.raise)"
      ~claim:"binding lookup through objects and the resource DB vs hard-wired dispatch"
      (run_tests
         [
           Test.make ~name:"eval1/dispatch-swm"
             (Staged.stage (fun () ->
                  Server.press_button server_swm 2;
                  ignore (Wm.step wm)));
           Test.make ~name:"eval1/dispatch-twm"
             (Staged.stage (fun () ->
                  Server.press_button server_twm 1;
                  ignore (Twm_like.step twm)));
           Test.make ~name:"eval1/dispatch-gwm"
             (Staged.stage (fun () ->
                  Server.press_button server_gwm 1;
                  ignore (Gwm_like.step gwm)));
         ])
  in
  let s = find "eval1/dispatch-swm" results
  and t = find "eval1/dispatch-twm" results
  and g = find "eval1/dispatch-gwm" results in
  verdict "dispatch: swm/twm = %.1fx, gwm/twm = %.1fx" (s /. t) (g /. t)

(* -------- E2: resource database vs flat init file -------- *)

let bench_config () =
  let db = Xrdb.create () in
  (match Xrdb.load_string db Templates.open_look with
  | Ok _ -> ()
  | Error msg -> failwith msg);
  (* Pad with per-class entries like a heavily customised session. *)
  for i = 0 to 199 do
    Xrdb.put db
      (Printf.sprintf "swm*Class%d*decoration" i)
      (Printf.sprintf "panel%d" i)
  done;
  let twm_config =
    {|
BorderWidth 2
TitleHeight 20
NoTitle { XClock XBiff XLoad XEyes Clock }
Button1 = : title : f.raise
Button2 = : title : f.move
Button3 = : title : f.iconify
|}
  in
  let parsed_twm =
    match Twm_like.parse_twmrc twm_config with Ok c -> c | Error m -> failwith m
  in
  let names = [ "swm"; "color"; "screen0"; "xclock"; "xclock"; "decoration" ] in
  let classes = [ "Swm"; "Color"; "Screen"; "XClock"; "XClock"; "Decoration" ] in
  let results =
    report ~experiment:"E2: X resource database vs separate init file (paper §8)"
      ~claim:
        "twm's separate init file was its biggest mistake; the resource DB \
         costs a precedence search per lookup but unifies configuration"
      (run_tests
         [
           Test.make ~name:"eval2/xrdb-query-221-entries"
             (Staged.stage (fun () -> ignore (Xrdb.query db ~names ~classes)));
           Test.make ~name:"eval2/twmrc-lookup"
             (Staged.stage (fun () ->
                  ignore (List.mem "XClock" parsed_twm.Twm_like.no_title)));
           Test.make ~name:"eval2/xrdb-load-template"
             (Staged.stage (fun () ->
                  let fresh = Xrdb.create () in
                  ignore (Xrdb.load_string fresh Templates.open_look)));
           Test.make ~name:"eval2/twmrc-parse"
             (Staged.stage (fun () -> ignore (Twm_like.parse_twmrc twm_config)));
         ])
  in
  let q = find "eval2/xrdb-query-221-entries" results
  and l = find "eval2/twmrc-lookup" results in
  verdict "per-lookup premium for generality: %.0fx (absolute cost still %s)"
    (q /. l)
    (Format.asprintf "%a" pp_ns q)

(* -------- E3: panning -------- *)

let bench_pan () =
  let mk n sticky_fraction =
    let server = Server.create () in
    let wm = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server in
    let ctx = Wm.ctx wm in
    let apps =
      Workload.launch server
        { Workload.default_params with count = n; area = (3000, 2200) }
    in
    ignore (Wm.step wm);
    List.iteri
      (fun i app ->
        if float_of_int i < sticky_fraction *. float_of_int n then
          match Wm.find_client wm (Client_app.window app) with
          | Some client -> Vdesk.set_sticky ctx client true
          | None -> ())
      apps;
    ctx
  in
  let flip = ref false in
  let pan ctx () =
    flip := not !flip;
    Vdesk.pan_to ctx ~screen:0 (if !flip then Geom.point 1200 900 else Geom.point 0 0)
  in
  let ctx10 = mk 10 0.0 and ctx100 = mk 100 0.0 and ctx400 = mk 400 0.0 in
  let ctx100s = mk 100 0.2 in
  let results =
    report ~experiment:"E3: Virtual Desktop panning (paper §6)"
      ~claim:
        "panning moves one desktop window; cost is independent of the number \
         of windows (no ConfigureNotify storm), sticky windows stay put"
      (run_tests
         [
           Test.make ~name:"eval3/pan-010" (Staged.stage (pan ctx10));
           Test.make ~name:"eval3/pan-100" (Staged.stage (pan ctx100));
           Test.make ~name:"eval3/pan-400" (Staged.stage (pan ctx400));
           Test.make ~name:"eval3/pan-100-sticky20pc" (Staged.stage (pan ctx100s));
         ])
  in
  let t10 = find "eval3/pan-010" results and t400 = find "eval3/pan-400" results in
  verdict "pan(400 windows) / pan(10 windows) = %.2fx (flat = the desktop wins)"
    (t400 /. t10)

(* -------- E4: session save / restart matching -------- *)

let bench_session () =
  let server = Server.create () in
  let wm = Wm.start ~resources:quiet_resources server in
  let ctx = Wm.ctx wm in
  let _apps = Workload.launch server { Workload.default_params with count = 50 } in
  ignore (Wm.step wm);
  let hints = Functions.places_hints ctx in
  let commands = List.map (fun h -> h.Session.command) hints in
  let results =
    report ~experiment:"E4: session management (paper §7)"
      ~claim:
        "f.places writes an .xinitrc replacement; on restart clients are \
         matched by WM_COMMAND and restored regardless of toolkit or host"
      (run_tests
         [
           Test.make ~name:"eval4/places-50-clients"
             (Staged.stage (fun () -> ignore (Functions.places_hints ctx)));
           Test.make ~name:"eval4/places-file-format"
             (Staged.stage (fun () ->
                  ignore
                    (Session.places_file ~display:":0" ~local_host:"localhost" hints)));
           Test.make ~name:"eval4/restart-match-50"
             (Staged.stage (fun () ->
                  let table = Session.create_table () in
                  List.iter (Session.add table) hints;
                  List.iter
                    (fun command ->
                      ignore (Session.take_match table ~command ~host:None))
                    commands));
         ])
  in
  ignore results

(* -------- E5: bindings -------- *)

let bench_bindings () =
  let src =
    String.concat " "
      (List.init 20 (fun i ->
           Printf.sprintf "<Btn%d> : f.raise f.lower f.warpVertical(%d)"
             ((i mod 5) + 1) i))
  in
  let parsed = Bindings.parse_exn src in
  let event =
    Event.Button_press
      {
        window = Xid.of_int 1;
        button = 3;
        mods = Swm_xlib.Keysym.no_mods;
        pos = Geom.point 0 0;
        root_pos = Geom.point 0 0;
      }
  in
  let results =
    report ~experiment:"E5: bindings (paper §4.2)"
      ~claim:"any number of bindings, any number of functions per binding"
      (run_tests
         [
           Test.make ~name:"eval5/parse-20-bindings"
             (Staged.stage (fun () -> ignore (Bindings.parse src)));
           Test.make ~name:"eval5/dispatch-lookup"
             (Staged.stage (fun () -> ignore (Bindings.lookup parsed event)));
         ])
  in
  ignore results

(* -------- E6: shaped decoration -------- *)

let bench_shape () =
  let server, wm = fresh_wm () in
  let counter = ref 0 in
  let round_spec () =
    incr counter;
    Client_app.spec
      ~instance:(Printf.sprintf "oclock%d" !counter)
      ~class_:"Clock" ~us_position:true (Geom.rect 60 60 120 120)
  in
  let manage_shaped () =
    let spec = round_spec () in
    let app = Client_app.launch server spec in
    Server.shape_set server (Client_app.conn app) (Client_app.window app)
      (Swm_xlib.Region.disc ~cx:60 ~cy:60 ~r:60);
    ignore (Wm.step wm);
    Client_app.destroy app;
    ignore (Wm.step wm)
  in
  let manage_plain () =
    let spec = round_spec () in
    manage_cycle_swm server wm spec
  in
  let results =
    report ~experiment:"E6: SHAPE support (paper §5)"
      ~claim:
        "shaped clients get shaped decorations selected through the 'shaped' \
         resource prefix (oclock/xeyes show no visible decoration)"
      (run_tests
         [
           Test.make ~name:"eval6/manage-shaped" (Staged.stage manage_shaped);
           Test.make ~name:"eval6/manage-plain" (Staged.stage manage_plain);
         ])
  in
  let s = find "eval6/manage-shaped" results and p = find "eval6/manage-plain" results in
  verdict
    "shaped/plain manage cost = %.2fx (the shapeit panel is bare: region \
     plumbing costs less than a full title bar)"
    (s /. p)

(* -------- E7: placement under pan -------- *)

let bench_placement () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\nswm*panner: False\n" ] server in
  let ctx = Wm.ctx wm in
  Vdesk.pan_to ctx ~screen:0 (Geom.point 1000 1000);
  let counter = ref 0 in
  let cycle ~us ~p () =
    incr counter;
    let spec =
      Client_app.spec
        ~instance:(Printf.sprintf "place%d" !counter)
        ~us_position:us ~p_position:p (Geom.rect 100 100 80 80)
    in
    manage_cycle_swm server wm spec
  in
  let results =
    report ~experiment:"E7: USPosition vs PPosition on the desktop (paper §6.3.2)"
      ~claim:
        "USPosition is absolute on the desktop; PPosition is relative to the \
         visible viewport"
      (run_tests
         [
           Test.make ~name:"eval7/place-usposition"
             (Staged.stage (cycle ~us:true ~p:false));
           Test.make ~name:"eval7/place-pposition"
             (Staged.stage (cycle ~us:false ~p:true));
           Test.make ~name:"eval7/place-default"
             (Staged.stage (cycle ~us:false ~p:false));
         ])
  in
  ignore results

(* -------- A1: specific vs non-specific resources -------- *)

let bench_specific_lookup () =
  let mk extra_entries =
    let server = Server.create () in
    let db = Xrdb.create () in
    (match Xrdb.load_string db Templates.open_look with
    | Ok _ -> ()
    | Error m -> failwith m);
    for i = 0 to extra_entries - 1 do
      Xrdb.put db
        (Printf.sprintf "swm.color.screen0.Class%d.inst%d.decoration" i i)
        "x"
    done;
    Config.create db server
  in
  let cfg0 = mk 0 and cfg500 = mk 500 in
  let scope =
    { Config.instance = "xclock"; class_ = "XClock"; shaped = false; sticky = false }
  in
  let results =
    report ~experiment:"A1 (ablation): specific-resource lookup cost (paper §3)"
      ~claim:
        "per-class/instance decoration selection is a database query, not a \
         code path; cost grows with the number of specific entries"
      (run_tests
         [
           Test.make ~name:"abl1/lookup-base-template"
             (Staged.stage (fun () ->
                  ignore (Config.query_client cfg0 ~screen:0 scope "decoration")));
           Test.make ~name:"abl1/lookup-500-specific"
             (Staged.stage (fun () ->
                  ignore (Config.query_client cfg500 ~screen:0 scope "decoration")));
         ])
  in
  ignore results

(* -------- A2: multiple desktops -------- *)

let bench_multi_desktop () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:[ Templates.open_look; "swm*rootPanels:\nswm*desktops: 4\nswm*panner: False\n" ]
      server
  in
  let ctx = Wm.ctx wm in
  let _apps = Workload.launch server { Workload.default_params with count = 40 } in
  ignore (Wm.step wm);
  let current = ref 0 in
  let results =
    report ~experiment:"A2 (ablation): multiple Virtual Desktops (paper §6.3.1)"
      ~claim:
        "SWM_ROOT would also allow multiple Virtual Desktops (the paper's \
         'not sure how useful' aside)"
      (run_tests
         [
           Test.make ~name:"abl2/switch-desktop-40-clients"
             (Staged.stage (fun () ->
                  current := (!current + 1) mod 4;
                  Vdesk.switch_desktop ctx ~screen:0 !current));
         ])
  in
  ignore results

(* -------- A3: policy in Lisp vs policy in resources -------- *)

let bench_policy_cost () =
  let env = Mlisp.base_env () in
  (match
     Mlisp.eval_program env
       "(define (pick-action button) (if (= button 1) 'raise (if (= button 2) 'move 'iconify)))"
   with
  | Ok _ -> ()
  | Error m -> failwith m);
  let pick = match Mlisp.lookup env "pick-action" with Some f -> f | None -> failwith "?" in
  let bindings =
    Bindings.parse_exn "<Btn1> : f.raise <Btn2> : f.move <Btn3> : f.iconify"
  in
  let event button =
    Event.Button_press
      {
        window = Xid.of_int 1;
        button;
        mods = Swm_xlib.Keysym.no_mods;
        pos = Geom.point 0 0;
        root_pos = Geom.point 0 0;
      }
  in
  let button = ref 0 in
  let results =
    report ~experiment:"A3 (ablation): policy via Lisp (gwm) vs resources (swm)"
      ~claim:
        "gwm is policy-free but interprets Lisp per event; swm resolves a \
         parsed binding table"
      (run_tests
         [
           Test.make ~name:"abl3/lisp-policy-decision"
             (Staged.stage (fun () ->
                  button := (!button mod 3) + 1;
                  ignore (Mlisp.call env pick [ Mlisp.Int !button ])));
           Test.make ~name:"abl3/bindings-policy-decision"
             (Staged.stage (fun () ->
                  button := (!button mod 3) + 1;
                  ignore (Bindings.lookup bindings (event !button))));
         ])
  in
  let l = find "abl3/lisp-policy-decision" results
  and b = find "abl3/bindings-policy-decision" results in
  verdict "lisp/bindings per-decision = %.1fx" (l /. b)

(* -------- extensions: scrollbars, cpp preprocessing, holders -------- *)

let bench_extensions () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:
        [ Templates.open_look;
          "swm*rootPanels:\nswm*scrollbars: True\nswm*iconHolders: box\n" ]
      server
  in
  let ctx = Wm.ctx wm in
  let _apps = Workload.launch_n server 20 in
  ignore (Wm.step wm);
  let flip = ref false in
  let results =
    report ~experiment:"EXT: scrollbars / cpp / icon holders"
      ~claim:"the remaining §6 panning method and §3/§4.1.5 machinery"
      (run_tests
         [
           Test.make ~name:"ext/scrollbar-refresh"
             (Staged.stage (fun () ->
                  flip := not !flip;
                  Vdesk.pan_to ctx ~screen:0
                    (if !flip then Geom.point 900 700 else Geom.point 0 0);
                  Swm_core.Scrollbar.refresh ctx ~screen:0));
           Test.make ~name:"ext/cpp-load-template"
             (Staged.stage (fun () ->
                  let db = Xrdb.create () in
                  ignore
                    (Xrdb.load_string_cpp ~defines:[ ("COLOR", "1") ] db
                       Templates.open_look)));
           Test.make ~name:"ext/holder-relayout"
             (Staged.stage (fun () ->
                  match Icons.find_holder ctx ~screen:0 "box" with
                  | Some holder -> Icons.scroll_holder ctx holder 0
                  | None -> ()));
           (let req =
              Swm_xlib.Wire.Configure_window
                ( Xid.of_int 42,
                  { Event.no_changes with cx = Some 10; cy = Some 20;
                    cw = Some 300; ch = Some 200 } )
            in
            let bytes = Swm_xlib.Wire.encode_request req in
            Test.make ~name:"ext/wire-encode-decode"
              (Staged.stage (fun () ->
                   let b = Swm_xlib.Wire.encode_request req in
                   ignore (Swm_xlib.Wire.decode_request b ~pos:0);
                   ignore bytes)));
         ])
  in
  ignore results

(* -------- P1: the batched, coalescing event pipeline -------- *)

(* Event-count measurement behind the timing claim: the same motion storm
   through a coalescing queue and a naive one, checking the final state is
   identical and recording the delivery ratio.  This is deterministic, so
   it runs once (outside bechamel) and its numbers go into the JSON dump. *)
let measure_motion_ratio ~steps =
  let run ~coalesce =
    let server = Server.create () in
    let conn = Server.connect server ~name:"watcher" in
    Server.select_input server conn (Server.root server ~screen:0)
      [ Event.Pointer_motion_mask ];
    Server.set_coalesce conn coalesce;
    Workload.motion_storm server ~steps ();
    let events = Server.flush_batch conn in
    let final_motion =
      List.fold_left
        (fun acc e ->
          match e with
          | Event.Motion_notify { root_pos; _ } -> Some root_pos
          | _ -> acc)
        None events
    in
    (server, List.length events, final_motion, Server.pointer_pos server)
  in
  let _, naive_delivered, naive_final, naive_pos = run ~coalesce:false in
  let server, coal_delivered, coal_final, coal_pos = run ~coalesce:true in
  let state_match = naive_final = coal_final && naive_pos = coal_pos in
  let ratio = float_of_int naive_delivered /. float_of_int (max 1 coal_delivered) in
  (server, naive_delivered, coal_delivered, ratio, state_match)

let bench_pipeline () =
  let storm_steps = 200 in
  (* Timing fixtures.  Each staged run generates the storm and drains it, so
     ns/run covers enqueue + compression + batched delivery. *)
  let mk_storm ~coalesce =
    let server = Server.create () in
    let conn = Server.connect server ~name:"watcher" in
    Server.select_input server conn (Server.root server ~screen:0)
      [ Event.Pointer_motion_mask ];
    Server.set_coalesce conn coalesce;
    fun () ->
      Workload.motion_storm server ~steps:storm_steps ();
      ignore (Server.flush_batch conn)
  in
  (* A panning storm through the full WM: pans generate ConfigureNotify and
     Expose traffic the WM's own batched queue folds. *)
  let mk_pan_storm () =
    let server = Server.create () in
    let wm =
      Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server
    in
    let ctx = Wm.ctx wm in
    let _apps =
      Workload.launch server
        { Workload.default_params with count = 30; area = (3000, 2400) }
    in
    ignore (Wm.step wm);
    let flip = ref false in
    fun () ->
      flip := not !flip;
      for i = 1 to 10 do
        Vdesk.pan_to ctx ~screen:0
          (if !flip then Geom.point (i * 100) (i * 80) else Geom.point 0 0)
      done;
      ignore (Wm.step wm)
  in
  (* A hundred clients jiggling and damaging their windows while the WM
     drains through read_events. *)
  let mk_churn () =
    let server = Server.create () in
    let wm = Wm.start ~resources:quiet_resources server in
    let apps = Workload.launch_n server 100 in
    ignore (Wm.step wm);
    fun () ->
      Workload.configure_churn server ~rounds:1 apps;
      Workload.expose_storm server ~rounds:1 apps;
      List.iter (fun app -> ignore (Client_app.process_events app)) apps;
      ignore (Wm.step wm)
  in
  let batch_events =
    List.init 64 (fun i ->
        Event.Motion_notify
          {
            window = Xid.of_int 1;
            pos = Geom.point i i;
            root_pos = Geom.point i i;
          })
  in
  let batch_bytes = Wire.encode_batch batch_events in
  let results =
    report ~experiment:"P1: batched, coalescing event pipeline"
      ~claim:
        "X-style event compression at enqueue time collapses motion/configure/\
         expose storms; batched delivery amortises the per-event drain cost"
      (run_tests
         [
           Test.make ~name:"pipeline/motion_storm-coalesced"
             (Staged.stage (mk_storm ~coalesce:true));
           Test.make ~name:"pipeline/motion_storm-naive"
             (Staged.stage (mk_storm ~coalesce:false));
           Test.make ~name:"pipeline/pan_storm" (Staged.stage (mk_pan_storm ()));
           Test.make ~name:"pipeline/churn-100-clients" (Staged.stage (mk_churn ()));
           Test.make ~name:"pipeline/batch-encode-64"
             (Staged.stage (fun () -> ignore (Wire.encode_batch batch_events)));
           Test.make ~name:"pipeline/batch-decode-64"
             (Staged.stage (fun () ->
                  ignore (Wire.decode_batch batch_bytes ~pos:0)));
         ])
  in
  let server, naive_delivered, coal_delivered, ratio, state_match =
    measure_motion_ratio ~steps:storm_steps
  in
  let m = Server.metrics server in
  verdict
    "motion storm of %d warps: naive delivers %d events, coalesced %d \
     (%.0fx fewer), final state %s"
    storm_steps naive_delivered coal_delivered ratio
    (if state_match then "identical" else "DIVERGED");
  verdict "coalesced-path counters: enqueued=%d coalesced=%d delivered=%d"
    (Metrics.counter_value m "events.enqueued")
    (Metrics.counter_value m "events.coalesced")
    (Metrics.counter_value m "events.delivered");
  (results, naive_delivered, coal_delivered, ratio, state_match, m)

(* Shared serialisation of a bechamel result list. *)
let add_results_json b results =
  Buffer.add_string b "  \"results\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": %S, \"ns_per_run\": %s, \"r2\": %s}%s\n"
           r.rname
           (if Float.is_nan r.ns_per_run then "null"
            else Printf.sprintf "%.2f" r.ns_per_run)
           (match r.r2 with
           | Some r2 when not (Float.is_nan r2) -> Printf.sprintf "%.4f" r2
           | Some _ | None -> "null")
           (if i = List.length results - 1 then "" else ",")))
    (List.sort (fun a b -> compare a.rname b.rname) results);
  Buffer.add_string b "  ],\n"

(* Machine-readable dump for CI: bechamel numbers for the pipeline family
   plus the deterministic event-count evidence and the metrics registry. *)
let write_pipeline_json ~path
    (results, naive_delivered, coal_delivered, ratio, state_match, metrics) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  add_results_json b results;
  Buffer.add_string b
    (Printf.sprintf
       "  \"motion_storm\": {\"naive_delivered\": %d, \"coalesced_delivered\": \
        %d, \"ratio\": %.1f, \"state_match\": %b},\n"
       naive_delivered coal_delivered ratio state_match);
  Buffer.add_string b
    (Printf.sprintf "  \"metrics\": %s\n" (Metrics.to_json metrics));
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "   -> wrote %s@." path

(* -------- R1: robustness — fault absorption and recovery -------- *)

(* Client-side stimulus in these fixtures may legally hit windows the
   injector just destroyed; that error belongs to the simulated client. *)
let client_absorb f =
  try f () with Server.Bad_window _ | Server.Bad_access _ -> ()

let bench_robustness () =
  (* Manage-churn-destroy one pair of clients per run under an always-on
     heavy fault plan: the unit of WM work with the injector firing. *)
  let mk_faulted_cycle () =
    let server = Server.create () in
    let wm = Wm.start ~resources:quiet_resources server in
    let ctx = Wm.ctx wm in
    let heavy =
      { (Fault.storm ~seed:11 ()) with Fault.p_destroy_window = 0.02;
        p_garble_property = 0.1; max_faults = 0 }
    in
    ignore (Server.arm_faults server ~protect:[ ctx.Ctx.conn ] heavy);
    let round = ref 0 in
    fun () ->
      incr round;
      let apps =
        try Workload.launch_n server 2
        with Server.Bad_window _ | Server.Bad_access _ -> []
      in
      ignore (Wm.step wm);
      client_absorb (fun () ->
          Workload.configure_churn server ~seed:!round ~rounds:1 apps);
      ignore (Wm.step wm);
      List.iter (fun app -> client_absorb (fun () -> Client_app.destroy app)) apps;
      ignore (Wm.step wm)
  in
  (* Crash-recovery latency: kill the WM and start a fresh instance that
     must re-adopt the surviving population. *)
  let mk_recovery () =
    let server = Server.create () in
    let wm = ref (Wm.start ~resources:quiet_resources server) in
    let _apps = Workload.launch_n server 15 in
    ignore (Wm.step !wm);
    fun () ->
      Wm.shutdown !wm;
      wm := Wm.start ~resources:quiet_resources server
  in
  (* Crash-safe persistence costs: atomic write and lenient read of a
     50-client places file. *)
  let places_content =
    let server = Server.create () in
    let wm = Wm.start ~resources:quiet_resources server in
    let _apps = Workload.launch_n server 50 in
    ignore (Wm.step wm);
    Session.places_file ~display:":0" ~local_host:"localhost"
      (Functions.places_hints (Wm.ctx wm))
  in
  let tmp = Filename.temp_file "swm_bench" ".places" in
  let results =
    report ~experiment:"R1: robustness — fault absorption and recovery"
      ~claim:
        "a racing client must cost the WM one absorbed error, not a crash; \
         restart re-adopts the session; persistence is atomic + checksummed"
      (run_tests
         [
           Test.make ~name:"robustness/manage-under-faults"
             (Staged.stage (mk_faulted_cycle ()));
           Test.make ~name:"robustness/recovery-restart-15"
             (Staged.stage (mk_recovery ()));
           Test.make ~name:"robustness/places-write-atomic-50"
             (Staged.stage (fun () ->
                  Session.write_atomic ~path:tmp places_content));
           Test.make ~name:"robustness/places-read-lenient-50"
             (Staged.stage (fun () ->
                  ignore (Session.read_places places_content)));
         ])
  in
  (if Sys.file_exists tmp then Sys.remove tmp);
  results

(* Deterministic evidence for the JSON artifact: a fixed storm under a
   heavy plan, counting faults injected and errors absorbed against wall
   time, plus a measured recovery (restart + re-adoption) latency. *)
let measure_robustness () =
  let server = Server.create () in
  let wm = ref (Wm.start ~resources:quiet_resources server) in
  let ctx = Wm.ctx !wm in
  let apps = Workload.launch_n server 12 in
  ignore (Wm.step !wm);
  let heavy =
    { (Fault.storm ~seed:4242 ()) with Fault.p_destroy_window = 0.05;
      p_kill_connection = 0.002; p_garble_property = 0.15;
      p_truncate_frame = 0.1; p_corrupt_frame = 0.1; max_faults = 0 }
  in
  let wc = Wire_conn.create server ~name:"wire-chaos" in
  let wroot = Wire_conn.root_id wc ~screen:0 in
  let fault = Server.arm_faults server ~protect:[ ctx.Ctx.conn ] heavy in
  let m = Server.metrics server in
  let rounds = if !smoke then 10 else 100 in
  (* The plan is hot enough to wipe a static population long before the
     storm ends (and a dry victim pool stops injecting), so each round
     replenishes the client herd like real sessions do. *)
  let apps = ref apps in
  Metrics.time_mono_ns m "bench.robustness_storm_ns" (fun () ->
      for round = 1 to rounds do
        (try apps := Workload.launch_n server 2 @ !apps
         with Server.Bad_window _ | Server.Bad_access _ -> ());
        apps :=
          List.filter
            (fun a -> Server.window_exists server (Client_app.window a))
            !apps;
        client_absorb (fun () ->
            Workload.motion_storm server ~seed:round ~steps:20 ());
        client_absorb (fun () ->
            Workload.configure_churn server ~seed:round ~rounds:1 !apps);
        client_absorb (fun () ->
            Workload.expose_storm server ~seed:round ~rounds:1 !apps);
        (* Wire-frame traffic so truncate/corrupt faults have a site. *)
        client_absorb (fun () ->
            let wid = Wire_conn.fresh_id wc in
            let batch =
              Wire.encode_request
                (Wire.Create_window
                   { wid; parent = wroot; geom = Geom.rect 5 5 40 40;
                     border = 0; override_redirect = false })
              ^ Wire.encode_request (Wire.Map_window wid)
            in
            ignore (Wire_conn.submit_bytes wc batch));
        ignore (Wm.step !wm)
      done);
  let storm_ns =
    Metrics.hist_sum (Metrics.histogram m "bench.robustness_storm_ns")
  in
  let injected = Fault.injected fault in
  let xerrors = Metrics.counter_value m "wm.xerrors" in
  let rejected = Metrics.counter_value m "wire.rejected_frames" in
  let faults_per_sec =
    float_of_int injected /. (float_of_int (max 1 storm_ns) /. 1e9)
  in
  Server.disarm_faults server;
  (* The plan above is hot enough that little of the herd outlives the
     storm; recovery latency is about re-adopting a live session, so
     repopulate before measuring it. *)
  let _repop = Workload.launch_n server 10 in
  ignore (Wm.step !wm);
  (* Recovery: median-ish single shot of kill + restart + re-adopt. *)
  let cycles = if !smoke then 3 else 20 in
  Metrics.time_mono_ns m "bench.recovery_ns" (fun () ->
      for _ = 1 to cycles do
        Wm.shutdown !wm;
        wm := Wm.start ~resources:quiet_resources server
      done);
  let recovery_ns =
    Metrics.hist_sum (Metrics.histogram m "bench.recovery_ns") / cycles
  in
  let survivors = List.length (Ctx.all_clients (Wm.ctx !wm)) in
  verdict
    "%d faults injected over %d storm rounds (%.0f absorbed/sec wall); %d X \
     errors absorbed, %d frames rejected; WM alive throughout"
    injected rounds faults_per_sec xerrors rejected;
  verdict "restart recovery: %.2f ms to re-adopt %d survivors"
    (float_of_int recovery_ns /. 1e6)
    survivors;
  (m, injected, xerrors, rejected, faults_per_sec, storm_ns, recovery_ns,
   survivors)

(* The overload acceptance scenario: a designated flooder storms a
   100-client session.  Backpressure must bound every queue at the cap with
   zero state-bearing sheds, the health loop must evict the flooder, and a
   supervised restart must re-adopt every surviving client.  All of it is
   measured and lands in BENCH_robustness.json next to the budgets CI
   gates it against. *)
type overload_evidence = {
  ov_clients : int;
  ov_cap : int;
  ov_max_depth : int;
  ov_overruns : int;
  ov_shed : int;
  ov_shed_state : int;
  ov_evicted : bool;
  ov_eviction_ns : int;
  ov_recovery_ns : int;
  ov_evict_to_readopt_ns : int;
  ov_survivors : int;
  ov_readopted : int;
  ov_tier_transitions : int;
}

let measure_overload () =
  let cap = 256 in
  let clients = 100 in
  let server = Server.create () in
  Server.set_queue_cap server cap;
  let sup = Supervisor.create ~resources:quiet_resources server in
  let m = Server.metrics server in
  (* Populate in chunks, stepping between them, so the WM's own queue is
     drained as the session grows (its events are state-bearing: a launch
     burst bigger than the cap would be an accounted overrun, and this
     scenario gates on the strict bound). *)
  let apps =
    List.concat_map
      (fun _ ->
        let chunk = Workload.launch_n server (clients / 4) in
        ignore (Supervisor.step sup);
        chunk)
      [ (); (); (); () ]
  in
  (* The flooder: enough windows that coalescing cannot absorb its storm,
     so backpressure and the health score see the full pressure. *)
  let flooder = Server.connect server ~name:"flooder" in
  let root = Server.root server ~screen:0 in
  for i = 1 to 2 * cap do
    ignore
      (Server.create_window server flooder ~parent:root
         ~geom:(Geom.rect 0 0 16 16) ());
    if i mod 128 = 0 then ignore (Supervisor.step sup)
  done;
  ignore (Supervisor.step sup);
  let t0 = Metrics.now_mono_ns () in
  let rounds = ref 0 in
  while Server.conn_health flooder <> Health.Evicted && !rounds < 200 do
    incr rounds;
    Server.flood_conn server flooder ~burst:4096;
    client_absorb (fun () ->
        Workload.motion_storm server ~seed:!rounds ~steps:10 ());
    ignore (Supervisor.step sup)
  done;
  let t_evicted = Metrics.now_mono_ns () in
  let evicted = Server.conn_health flooder = Health.Evicted in
  (* Snapshot the storm-phase queue evidence here: the restart below
     re-manages the whole session, a state-bearing burst on the WM's own
     connection that legitimately overruns the cap and would otherwise
     mask the flood-phase bound being gated. *)
  let storm_max_depth = Metrics.gauge_value m "queue.depth" in
  let storm_overruns = Metrics.counter_value m "queue.cap_overruns" in
  let storm_shed = Metrics.counter_value m "events.shed" in
  let storm_shed_state = Metrics.counter_value m "events.shed.state_bearing" in
  (* Supervised restart over the wreckage: save, tear down, restart,
     re-adopt. *)
  Metrics.time_mono_ns m "bench.supervised_recovery_ns" (fun () ->
      (match Supervisor.recover sup ~reason:"bench: forced recovery" with
      | Supervisor.Recovered _ -> ()
      | Supervisor.Stepped _ | Supervisor.Gave_up _ ->
          failwith "supervised recovery did not recover");
      ignore (Wm.step (Supervisor.wm sup)));
  let t_done = Metrics.now_mono_ns () in
  let wm2 = Supervisor.wm sup in
  let survivors =
    List.filter
      (fun a ->
        Server.window_exists server (Client_app.window a)
        && Server.is_mapped server (Client_app.window a))
      apps
  in
  let readopted =
    List.length
      (List.filter
         (fun a -> Wm.find_client wm2 (Client_app.window a) <> None)
         survivors)
  in
  let ev =
    {
      ov_clients = clients;
      ov_cap = cap;
      ov_max_depth = storm_max_depth;
      ov_overruns = storm_overruns;
      ov_shed = storm_shed;
      ov_shed_state = storm_shed_state;
      ov_evicted = evicted;
      ov_eviction_ns = t_evicted - t0;
      ov_recovery_ns =
        Metrics.hist_sum (Metrics.histogram m "bench.supervised_recovery_ns");
      ov_evict_to_readopt_ns = t_done - t_evicted;
      ov_survivors = List.length survivors;
      ov_readopted = readopted;
      ov_tier_transitions = Metrics.counter_value m "governor.transitions";
    }
  in
  verdict
    "overload: %d-client session flooded; max queue depth %d (cap %d), %d \
     shed, %d state-bearing shed, flooder evicted after %.2f ms"
    ev.ov_clients ev.ov_max_depth ev.ov_cap ev.ov_shed ev.ov_shed_state
    (float_of_int ev.ov_eviction_ns /. 1e6);
  verdict
    "supervised recovery: %.2f ms restart; %d/%d survivors re-adopted \
     (%.2f ms eviction-to-readoption)"
    (float_of_int ev.ov_recovery_ns /. 1e6)
    ev.ov_readopted ev.ov_survivors
    (float_of_int ev.ov_evict_to_readopt_ns /. 1e6);
  ev

let write_robustness_json ~path results
    (metrics, injected, xerrors, rejected, faults_per_sec, storm_ns,
     recovery_ns, survivors) ov =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  add_results_json b results;
  Buffer.add_string b
    (Printf.sprintf
       "  \"fault_storm\": {\"injected\": %d, \"xerrors_absorbed\": %d, \
        \"frames_rejected\": %d, \"faults_absorbed_per_sec\": %.1f, \
        \"storm_wall_ns\": %d},\n"
       injected xerrors rejected faults_per_sec storm_ns);
  Buffer.add_string b
    (Printf.sprintf
       "  \"recovery\": {\"restart_ns\": %d, \"survivors_readopted\": %d},\n"
       recovery_ns survivors);
  (* The overload budgets travel next to the measurements CI gates:
     queue depth must stay at or under the cap, no state-bearing event may
     ever be shed, the flooder must be evicted, every survivor re-adopted,
     and the recovery latencies must stay inside their budgets. *)
  Buffer.add_string b
    (Printf.sprintf
       "  \"overload\": {\"clients\": %d, \"queue_cap\": %d, \
        \"max_queue_depth\": %d, \"cap_overruns\": %d, \"events_shed\": %d, \
        \"state_bearing_shed\": %d, \"state_bearing_shed_budget\": 0, \
        \"flooder_evicted\": %b, \"eviction_ns\": %d, \"recovery_ns\": %d, \
        \"recovery_budget_ns\": 500000000, \"evict_to_readopt_ns\": %d, \
        \"evict_to_readopt_budget_ns\": 2000000000, \"survivors\": %d, \
        \"readopted\": %d, \"tier_transitions\": %d},\n"
       ov.ov_clients ov.ov_cap ov.ov_max_depth ov.ov_overruns ov.ov_shed
       ov.ov_shed_state ov.ov_evicted ov.ov_eviction_ns ov.ov_recovery_ns
       ov.ov_evict_to_readopt_ns ov.ov_survivors ov.ov_readopted
       ov.ov_tier_transitions);
  Buffer.add_string b
    (Printf.sprintf "  \"metrics\": %s\n" (Metrics.to_json metrics));
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "   -> wrote %s@." path

(* -------- O1: observability — span tracing across the request path -------- *)

let bench_observability () =
  (* The same pan-storm fixture as pipeline/pan_storm, once with the tracer
     left disabled (the shipping default — this is the overhead the guards
     cost everyone) and once recording (the cost of turning tracing on). *)
  let mk_pan_storm ?(traced = false) ?(recorder = false) ?(ledger = true) () =
    let server = Server.create () in
    let wm =
      Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server
    in
    let ctx = Wm.ctx wm in
    let _apps =
      Workload.launch server
        { Workload.default_params with count = 30; area = (3000, 2400) }
    in
    ignore (Wm.step wm);
    if traced then Tracing.start (Server.tracer server);
    if recorder then Swm_xlib.Recorder.start (Server.recorder server);
    if not ledger then Server.set_ledger server false;
    let flip = ref false in
    fun () ->
      flip := not !flip;
      for i = 1 to 10 do
        Vdesk.pan_to ctx ~screen:0
          (if !flip then Geom.point (i * 100) (i * 80) else Geom.point 0 0)
      done;
      ignore (Wm.step wm)
  in
  let off_tracer = Tracing.create () in
  let on_tracer = Tracing.create () in
  Tracing.start on_tracer;
  let off_recorder = Swm_xlib.Recorder.create () in
  let on_recorder = Swm_xlib.Recorder.create () in
  Swm_xlib.Recorder.start on_recorder;
  let results =
    report ~experiment:"O1: span tracing + flight recorder (observability)"
      ~claim:
        "a disabled span or record is one flag check (no allocation, no \
         clock read); enabled tracing and recording write into bounded \
         rings so they can stay on"
      (run_tests
         [
           Test.make ~name:"observability/span-disabled"
             (Staged.stage (fun () -> Tracing.span off_tracer "bench" (fun () -> ())));
           Test.make ~name:"observability/span-enabled"
             (Staged.stage (fun () -> Tracing.span on_tracer "bench" (fun () -> ())));
           Test.make ~name:"observability/instant-enabled"
             (Staged.stage (fun () -> Tracing.instant on_tracer "tick"));
           Test.make ~name:"observability/record-disabled"
             (Staged.stage (fun () ->
                  Swm_xlib.Recorder.record off_recorder ~kind:"event" "bench"));
           Test.make ~name:"observability/record-enabled"
             (Staged.stage (fun () ->
                  Swm_xlib.Recorder.record on_recorder ~kind:"event" "bench"));
           Test.make ~name:"observability/pan_storm-traced-off"
             (Staged.stage (mk_pan_storm ()));
           Test.make ~name:"observability/pan_storm-traced-on"
             (Staged.stage (mk_pan_storm ~traced:true ()));
           (* The CI-gated number: the same storm with the flight recorder
              armed (ring writes + periodic snapshots), against the
              recorder-off fixture above. *)
           Test.make ~name:"observability/recorder-overhead"
             (Staged.stage (mk_pan_storm ~recorder:true ()));
           (* The lifecycle ledger ships armed, so the default storm above
              already pays its cost; this fixture disarms it for the
              baseline the CI ledger gate divides by. *)
           Test.make ~name:"observability/pan_storm-ledger-off"
             (Staged.stage (mk_pan_storm ~ledger:false ()));
           (* By now the enabled ring has wrapped: exports pay full price. *)
           Test.make ~name:"observability/chrome-export-full-ring"
             (Staged.stage (fun () -> ignore (Tracing.to_chrome_json on_tracer)));
         ])
  in
  let off = find "observability/pan_storm-traced-off" results
  and on = find "observability/pan_storm-traced-on" results
  and recorded = find "observability/recorder-overhead" results in
  verdict
    "pan storm traced-on/traced-off = %.2fx, recorder-armed/off = %.2fx; \
     disabled span costs %s, disabled record %s (ring holds %d events, %d \
     dropped)"
    (on /. off) (recorded /. off)
    (Format.asprintf "%a" pp_ns (find "observability/span-disabled" results))
    (Format.asprintf "%a" pp_ns (find "observability/record-disabled" results))
    (List.length (Tracing.events on_tracer))
    (Tracing.dropped on_tracer);
  results

(* -------- SLO: end-to-end event latency per class, per load regime ---- *)

(* The p999 budgets per regime, nanoseconds.  Generous against CI-runner
   noise, but they pin the order of magnitude: a quiet WM dispatches
   within 50ms p999, a storm within 250ms, and even an overloaded WM
   within 1s (shedding and coalescing are what keep the tail bounded). *)
let slo_budgets_ns = [ ("quiet", 5.0e7); ("storm", 2.5e8); ("overload", 1.0e9) ]

(* Run one scripted regime against a live WM and harvest the per-class
   event.e2e_ns histograms the dispatch loop fills from ingress stamps. *)
let measure_slo () =
  let regime name =
    let server = Server.create () in
    let wm =
      Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server
    in
    let ctx = Wm.ctx wm in
    let apps = Workload.launch_n server 8 in
    ignore (Wm.step wm);
    (match name with
    | "quiet" ->
        (* A human pottering: a pan and a step at a time, queues near
           empty, residency dominated by the dispatch itself. *)
        for i = 1 to 20 do
          Vdesk.pan_to ctx ~screen:0 (Geom.point (i * 40 mod 800) (i * 30 mod 600));
          ignore (Wm.step wm)
        done
    | "storm" ->
        (* Motion + expose storms with pan sweeps, drained per round:
           coalescing holds the queue short but events do wait. *)
        for round = 1 to 6 do
          Workload.motion_storm server ~seed:(41 + round) ~steps:200 ();
          Workload.expose_storm server ~seed:(41 + round) ~rounds:2 apps;
          for i = 1 to 10 do
            Vdesk.pan_to ctx ~screen:0 (Geom.point (i * 100) (i * 80))
          done;
          ignore (Wm.step wm)
        done
    | _ ->
        (* Overload: whole storm batteries land between drains, so queue
           residency — not dispatch cost — dominates the tail. *)
        for round = 1 to 4 do
          Workload.motion_storm server ~seed:(67 + round) ~steps:2000 ();
          Workload.expose_storm server ~seed:(67 + round) ~rounds:6 apps;
          Workload.configure_churn server ~seed:(67 + round) ~rounds:4 apps;
          ignore (Wm.step wm)
        done);
    let m = Server.metrics server in
    let fam = Metrics.histogram_family m ~key:"event" "event.e2e_ns" in
    let classes =
      List.sort_uniq compare
        (List.init (Event.last_event + 1) Event.name_of_code)
    in
    let per_class =
      List.filter_map
        (fun cls ->
          let h = Metrics.labeled_histogram fam cls in
          if Metrics.hist_count h = 0 then None
          else
            Some
              (Printf.sprintf
                 "\"%s\": {\"count\": %d, \"p50_ns\": %.0f, \"p99_ns\": %.0f, \
                  \"p999_ns\": %.0f}"
                 cls (Metrics.hist_count h) (Metrics.hist_quantile h 0.5)
                 (Metrics.hist_quantile h 0.99)
                 (Metrics.hist_quantile h 0.999)))
        classes
    in
    Wm.shutdown wm;
    Printf.sprintf "    \"%s\": {%s}" name (String.concat ", " per_class)
  in
  let budgets =
    String.concat ", "
      (List.map
         (fun (name, ns) -> Printf.sprintf "\"%s\": %.0f" name ns)
         slo_budgets_ns)
  in
  Printf.sprintf "{\n    \"budget_p999_ns\": {%s},\n%s\n  }" budgets
    (String.concat ",\n" (List.map (fun (n, _) -> regime n) slo_budgets_ns))

let write_observability_json ~path results ~pipeline_pan_ns ~slo =
  let off = find "observability/pan_storm-traced-off" results
  and on = find "observability/pan_storm-traced-on" results
  and span_disabled = find "observability/span-disabled" results
  and span_enabled = find "observability/span-enabled" results in
  let num v = if Float.is_nan v then "null" else Printf.sprintf "%.2f" v in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  add_results_json b results;
  (* disabled_vs_pipeline_ratio compares the instrumented-but-disabled pan
     storm against the pipeline family's identical fixture measured in the
     same process: the guards' overhead relative to run-to-run noise. *)
  Buffer.add_string b
    (Printf.sprintf
       "  \"overhead\": {\"span_disabled_ns\": %s, \"span_enabled_ns\": %s, \
        \"pan_storm_traced_off_ns\": %s, \"pan_storm_traced_on_ns\": %s, \
        \"traced_on_ratio\": %s, \"disabled_vs_pipeline_ratio\": %s},\n"
       (num span_disabled) (num span_enabled) (num off) (num on)
       (num (on /. off))
       (num (off /. pipeline_pan_ns)));
  (* The recorder budget the CI observability job gates on: a disabled
     record must stay a flag check (budget generous against CI-runner
     noise), and arming the recorder must not multiply the storm's cost. *)
  let record_disabled = find "observability/record-disabled" results
  and record_enabled = find "observability/record-enabled" results
  and recorder_on = find "observability/recorder-overhead" results in
  Buffer.add_string b
    (Printf.sprintf
       "  \"recorder\": {\"record_disabled_ns\": %s, \
        \"record_enabled_ns\": %s, \"pan_storm_recorder_off_ns\": %s, \
        \"pan_storm_recorder_on_ns\": %s, \"armed_ratio\": %s, \
        \"record_disabled_budget_ns\": 50.0, \"armed_ratio_budget\": 2.0},\n"
       (num record_disabled) (num record_enabled) (num off) (num recorder_on)
       (num (recorder_on /. off)));
  (* The ledger budget, gated like the recorder's: the default storm runs
     with the ledger armed (it ships on), the -ledger-off fixture is the
     baseline, and arming must not multiply the storm's cost. *)
  let ledger_off = find "observability/pan_storm-ledger-off" results in
  Buffer.add_string b
    (Printf.sprintf
       "  \"ledger\": {\"pan_storm_ledger_off_ns\": %s, \
        \"pan_storm_ledger_on_ns\": %s, \"armed_ratio\": %s, \
        \"armed_ratio_budget\": 2.0},\n"
       (num ledger_off) (num off)
       (num (off /. ledger_off)));
  (* The per-class end-to-end latency SLOs, measured from live regimes. *)
  Buffer.add_string b (Printf.sprintf "  \"slo\": %s\n" slo);
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "   -> wrote %s@." path

(* The acceptance artifact: a traced scripted session (pan storm + iconify
   burst over swmcmd) exported as Chrome trace-event JSON for Perfetto. *)
let write_sample_trace ~path =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let _xterm = Stock.xterm server ~at:(Geom.point 60 80) () in
  let _xclock = Stock.xclock server ~at:(Geom.point 600 60) () in
  ignore (Wm.step wm);
  Tracing.start (Server.tracer server);
  let sender = Server.connect server ~name:"bench-swmcmd" in
  let send line =
    Swm_core.Swmcmd.send server sender ~screen:0 line;
    ignore (Wm.step wm)
  in
  for i = 1 to 10 do
    send (Printf.sprintf "f.panTo(%d,%d)" (i * 120) (i * 80))
  done;
  for _ = 1 to 3 do
    send "f.iconify(XTerm)";
    send "f.deiconify(XTerm)"
  done;
  Tracing.stop (Server.tracer server);
  let oc = open_out path in
  output_string oc (Tracing.to_chrome_json (Server.tracer server));
  close_out oc;
  Format.printf "   -> wrote %s (%d events)@." path
    (List.length (Tracing.events (Server.tracer server)))

(* -------- R2: replay — crash reports as executable repros -------- *)

(* Record one small session the way the replay suite and corpus generator
   do — storms plus swmcmd iconify churn against a recorder-armed server —
   and parse the dump back into a replayable report. *)
let record_replay_report ~clients ~rounds ~seed =
  let server = Server.create () in
  let wm = Wm.start ~resources:quiet_resources server in
  let recorder = Server.recorder server in
  Recorder.start recorder;
  let ctx = Wm.ctx wm in
  let apps = Workload.launch_n server clients in
  ignore (Wm.step wm);
  let sender = Server.connect server ~name:"cmd" in
  for round = 0 to rounds - 1 do
    let sub = (seed * 31) + round in
    client_absorb (fun () -> Workload.motion_storm server ~seed:sub ~steps:10 ());
    ignore (Wm.step wm);
    client_absorb (fun () ->
        Workload.configure_churn server ~seed:sub ~rounds:1 apps);
    ignore (Wm.step wm);
    List.iteri
      (fun i (c : Ctx.client) ->
        let verb = if (i + round) mod 3 = 0 then "f.iconify" else "f.deiconify" in
        client_absorb (fun () ->
            Swm_core.Swmcmd.send server sender ~screen:0
              (Printf.sprintf "%s(#%d)" verb (Xid.to_int c.Ctx.cwin))))
      (Ctx.all_clients ctx);
    ignore (Wm.step wm)
  done;
  let text =
    Recorder.dump_json recorder ~reason:"bench recording"
      ~metrics:(Server.metrics server) ~tracer:(Server.tracer server)
  in
  match Replay.parse_report text with
  | Ok report -> report
  | Error msg -> failwith ("bench: cannot parse own recording: " ^ msg)

let bench_replay rep =
  let repro_text = Replay.repro_json rep in
  report
    ~experiment:"R2: replay — crash reports as executable repros"
    ~claim:
      "a recorded journal re-executes against a fresh Server+WM pair and \
       converges on the recorded snapshot; failing streams ddmin to \
       minimal repros"
    (run_tests
       [
         Test.make ~name:"replay/parse-report"
           (Staged.stage (fun () -> ignore (Replay.parse_report repro_text)));
         Test.make ~name:"replay/converge-small"
           (Staged.stage (fun () -> ignore (Wm.replay rep)));
       ])

(* Deterministic evidence for the JSON artifact: replays/sec of the small
   recorded session, and the minimizer's work on a poisoned copy (oracle
   calls, final length). *)
let measure_replay rep =
  let ops_count = List.length rep.Replay.ops in
  let m = Metrics.create () in
  let replays = if !smoke then 5 else 50 in
  let converged = ref 0 in
  Metrics.time_mono_ns m "bench.replay_ns" (fun () ->
      for _ = 1 to replays do
        match Wm.replay rep with
        | Replay.Converged _ -> incr converged
        | _ -> ()
      done);
  let wall_ns = Metrics.hist_sum (Metrics.histogram m "bench.replay_ns") in
  let replays_per_sec =
    float_of_int replays /. (float_of_int (max 1 wall_ns) /. 1e9)
  in
  (* Poison the stream with an op no replay absorbs (destroying a root
     raises Invalid_argument) and let ddmin isolate it, oracle matched on
     the failure signature as the chaos auto-minimizer does. *)
  let root = Xid.to_int (Server.root (Server.create ()) ~screen:0) in
  let poison = Printf.sprintf "destroy %d" root in
  let rec inject i = function
    | [] -> [ poison ]
    | op :: rest ->
        if i = 0 then poison :: op :: rest else op :: inject (i - 1) rest
  in
  let poisoned = inject (ops_count / 2) rep.Replay.ops in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let fails ops =
    let probe = { rep with Replay.ops; snap = None; expect = Replay.No_crash } in
    match Wm.replay probe with
    | Replay.Crashed { error; _ } -> contains error "root window"
    | _ -> false
  in
  let minimized, oracle_calls =
    Metrics.time_mono_ns m "bench.minimize_ns" (fun () ->
        Replay.minimize ~ops:poisoned ~fails)
  in
  let minimize_ns =
    Metrics.hist_sum (Metrics.histogram m "bench.minimize_ns")
  in
  verdict "%d-op session replays at %.1f/sec (%d/%d converged)" ops_count
    replays_per_sec !converged replays;
  verdict "ddmin: %d poisoned ops -> %d in %d oracle calls (%.2f ms)"
    (List.length poisoned) (List.length minimized) oracle_calls
    (float_of_int minimize_ns /. 1e6);
  ( ops_count, replays, !converged, wall_ns, replays_per_sec,
    List.length poisoned, List.length minimized, oracle_calls, minimize_ns )

let write_replay_json ~path results
    (ops_count, replays, converged, wall_ns, replays_per_sec, poisoned_ops,
     minimized_ops, oracle_calls, minimize_ns) =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  add_results_json b results;
  Buffer.add_string b
    (Printf.sprintf
       "  \"replay\": {\"ops\": %d, \"replays\": %d, \"converged\": %d, \
        \"wall_ns\": %d, \"replays_per_sec\": %.1f},\n"
       ops_count replays converged wall_ns replays_per_sec);
  Buffer.add_string b
    (Printf.sprintf
       "  \"minimize\": {\"poisoned_ops\": %d, \"minimized_ops\": %d, \
        \"oracle_calls\": %d, \"wall_ns\": %d}\n"
       poisoned_ops minimized_ops oracle_calls minimize_ns);
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "   -> wrote %s@." path

(* -------- P2: continuous profiling — GC telemetry and span-tree cost -------- *)

let bench_profile () =
  (* The pipeline pan-storm fixture with the profiler disarmed (the
     shipping default: what the probes cost everyone) and armed (sink
     aggregation + quick_stat deltas + tree folding per event). *)
  let mk_pan_storm ?(armed = false) () =
    let server = Server.create () in
    let wm =
      Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server
    in
    let ctx = Wm.ctx wm in
    let _apps =
      Workload.launch server
        { Workload.default_params with count = 30; area = (3000, 2400) }
    in
    ignore (Wm.step wm);
    if armed then Profile.start (Server.profiler server);
    let flip = ref false in
    fun () ->
      flip := not !flip;
      for i = 1 to 10 do
        Vdesk.pan_to ctx ~screen:0
          (if !flip then Geom.point (i * 100) (i * 80) else Geom.point 0 0)
      done;
      ignore (Wm.step wm)
  in
  (* Micro fixtures: a disarmed probe must stay a flag check. *)
  let off_profile =
    Profile.create ~metrics:(Metrics.create ()) ~tracer:(Tracing.create ()) ()
  in
  let off_sec = Profile.section off_profile "bench" in
  let on_profile =
    Profile.create ~metrics:(Metrics.create ()) ~tracer:(Tracing.create ()) ()
  in
  Profile.start on_profile;
  let on_sec = Profile.section on_profile "bench" in
  let results =
    report ~experiment:"P2: continuous profiling (GC telemetry + span tree)"
      ~claim:
        "a disarmed probe is one flag check; arming the profiler folds \
         every span into the call tree and samples the GC per event, and \
         must not multiply the storm's cost"
      (run_tests
         [
           Test.make ~name:"profile/event_section-disabled"
             (Staged.stage (fun () ->
                  Profile.event_section off_profile (fun () -> ())));
           Test.make ~name:"profile/event_section-armed"
             (Staged.stage (fun () ->
                  Profile.event_section on_profile (fun () -> ())));
           Test.make ~name:"profile/alloc_section-disabled"
             (Staged.stage (fun () ->
                  Profile.alloc_section off_profile off_sec (fun () -> ())));
           Test.make ~name:"profile/alloc_section-armed"
             (Staged.stage (fun () ->
                  Profile.alloc_section on_profile on_sec (fun () -> ())));
           Test.make ~name:"profile/pan_storm-disabled"
             (Staged.stage (mk_pan_storm ()));
           Test.make ~name:"profile/pan_storm-armed"
             (Staged.stage (mk_pan_storm ~armed:true ()));
         ])
  in
  let off = find "profile/pan_storm-disabled" results
  and on = find "profile/pan_storm-armed" results in
  verdict
    "pan storm armed/disarmed = %.2fx; disarmed event probe costs %s, \
     disarmed alloc probe %s"
    (on /. off)
    (Format.asprintf "%a" pp_ns (find "profile/event_section-disabled" results))
    (Format.asprintf "%a" pp_ns (find "profile/alloc_section-disabled" results));
  results

(* Deterministic evidence for the JSON artifact: minor words per event on
   the batch-encode hot path (straight off the allocator) and per dispatched
   event under client churn (off the armed profiler's own series), plus the
   acceptance flamegraph's coverage of the measured dispatch wall time. *)
let measure_profile () =
  let batch_events =
    List.init 64 (fun i ->
        Event.Motion_notify
          {
            window = Xid.of_int 1;
            pos = Geom.point i i;
            root_pos = Geom.point i i;
          })
  in
  let rounds = if !smoke then 20 else 200 in
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    ignore (Wire.encode_batch batch_events)
  done;
  let encode_words_per_event =
    (Gc.minor_words () -. w0) /. float_of_int (rounds * 64)
  in
  (* Deterministic wall number for the same path, so CI can compare it
     against the committed bench/BASELINE.json without a bechamel run. *)
  let encode_timing_rounds = if !smoke then 500 else 20_000 in
  let mt = Metrics.create () in
  Metrics.time_mono_ns mt "bench.batch_encode_ns" (fun () ->
      for _ = 1 to encode_timing_rounds do
        ignore (Wire.encode_batch batch_events)
      done);
  let batch_encode_64_ns =
    float_of_int (Metrics.hist_sum (Metrics.histogram mt "bench.batch_encode_ns"))
    /. float_of_int encode_timing_rounds
  in
  (* Churn: 100 clients jiggling while the armed WM drains; the profiler's
     gc.minor_words_per_event histogram is the measurement. *)
  let server = Server.create () in
  let wm = Wm.start ~resources:quiet_resources server in
  let apps = Workload.launch_n server 100 in
  ignore (Wm.step wm);
  Profile.start (Server.profiler server);
  let churn_rounds = if !smoke then 3 else 20 in
  for round = 1 to churn_rounds do
    Workload.configure_churn server ~seed:round ~rounds:1 apps;
    Workload.expose_storm server ~seed:round ~rounds:1 apps;
    List.iter (fun app -> ignore (Client_app.process_events app)) apps;
    ignore (Wm.step wm)
  done;
  Profile.stop (Server.profiler server);
  let h = Metrics.histogram (Server.metrics server) "gc.minor_words_per_event" in
  let churn_words_per_event =
    float_of_int (Metrics.hist_sum h)
    /. float_of_int (max 1 (Metrics.hist_count h))
  in
  (* Event storm, major-collection check: keep churning the same managed
     population until the WM has dispatched [storm_target] more events; a
     hot path that only allocates short-lived values promotes nothing, so
     the storm must complete without a single major collection. *)
  let storm_target = if !smoke then 1_000 else 10_000 in
  let dispatched () =
    Metrics.counter_value (Server.metrics server) "wm.events_dispatched"
  in
  Gc.full_major ();
  let d0 = dispatched () in
  let mc0 = (Gc.quick_stat ()).Gc.major_collections in
  let round = ref 0 in
  while dispatched () - d0 < storm_target && !round < 2_000 do
    incr round;
    Workload.configure_churn server ~seed:(1000 + !round) ~rounds:1 apps;
    Workload.expose_storm server ~seed:(1000 + !round) ~rounds:1 apps;
    List.iter (fun app -> ignore (Client_app.process_events app)) apps;
    ignore (Wm.step wm)
  done;
  let storm_events = dispatched () - d0 in
  let storm_major = (Gc.quick_stat ()).Gc.major_collections - mc0 in
  (* Coverage: profile the swmcmd scripted session (the acceptance
     workload) and compare the tree's root total against the dispatch wall
     the probe measured around each event. *)
  let server2 = Server.create () in
  let wm2 = Wm.start ~resources:[ Templates.open_look ] server2 in
  let _xterm = Stock.xterm server2 ~at:(Geom.point 60 80) () in
  let _xclock = Stock.xclock server2 ~at:(Geom.point 600 60) () in
  ignore (Wm.step wm2);
  let p = Server.profiler server2 in
  Profile.start p;
  let sender = Server.connect server2 ~name:"bench-swmcmd" in
  let send line =
    Swm_core.Swmcmd.send server2 sender ~screen:0 line;
    ignore (Wm.step wm2)
  in
  for i = 1 to 10 do
    send (Printf.sprintf "f.panTo(%d,%d)" (i * 120) (i * 80))
  done;
  for _ = 1 to 3 do
    send "f.iconify(XTerm)";
    send "f.deiconify(XTerm)"
  done;
  Profile.stop p;
  let collapsed = Profile.to_collapsed p in
  let stacks =
    String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 collapsed
  in
  verdict "minor words/event: batch-encode %.1f, churn dispatch %.1f"
    encode_words_per_event churn_words_per_event;
  verdict "batch-encode-64: %.0f ns/batch (%.1f ns/event) deterministic"
    batch_encode_64_ns (batch_encode_64_ns /. 64.);
  verdict "%d-event storm: %d major collections (budget 0)" storm_events
    storm_major;
  verdict
    "flamegraph: %d collapsed stacks cover %.1f%% of %.2f ms dispatch wall \
     (%d events)"
    stacks
    (Profile.coverage p *. 100.)
    (float_of_int (Profile.dispatch_wall_ns p) /. 1e6)
    (Profile.events p);
  ( encode_words_per_event, churn_words_per_event, batch_encode_64_ns,
    storm_events, storm_major, Profile.events p, Profile.dispatch_wall_ns p,
    Profile.root_total_ns p, Profile.coverage p, stacks )

(* The budgets CI gates on live inside the artifact next to the numbers.
   The ns budgets are generous against runner noise; the minor-words
   budgets carry ~2x headroom over the measured allocation, which is a
   property of the code path, not the machine. *)
let write_profile_json ~path results
    (encode_words, churn_words, batch_encode_64_ns, storm_events, storm_major,
     events, dispatch_wall_ns, root_total_ns, coverage, stacks) =
  let disabled = find "profile/event_section-disabled" results
  and off = find "profile/pan_storm-disabled" results
  and on = find "profile/pan_storm-armed" results in
  let num v = if Float.is_nan v then "null" else Printf.sprintf "%.2f" v in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  add_results_json b results;
  Buffer.add_string b
    (Printf.sprintf
       "  \"profiler\": {\"event_section_disabled_ns\": %s, \
        \"pan_storm_disabled_ns\": %s, \"pan_storm_armed_ns\": %s, \
        \"armed_ratio\": %s, \"disabled_budget_ns\": 50.0, \
        \"armed_ratio_budget\": 2.0},\n"
       (num disabled) (num off) (num on)
       (num (on /. off)));
  Buffer.add_string b
    (Printf.sprintf
       "  \"allocation\": {\"batch_encode_words_per_event\": %.1f, \
        \"batch_encode_budget_words\": 5.0, \"churn_words_per_event\": \
        %.1f, \"churn_budget_words\": 400.0},\n"
       encode_words churn_words);
  Buffer.add_string b
    (Printf.sprintf
       "  \"hot_path\": {\"batch_encode_64_ns\": %.1f, \
        \"baseline_regression_budget\": 1.5},\n"
       batch_encode_64_ns);
  Buffer.add_string b
    (Printf.sprintf
       "  \"storm\": {\"events\": %d, \"major_collections\": %d, \
        \"major_collections_budget\": 0},\n"
       storm_events storm_major);
  Buffer.add_string b
    (Printf.sprintf
       "  \"flame\": {\"events\": %d, \"dispatch_wall_ns\": %d, \
        \"root_total_ns\": %d, \"coverage\": %.3f, \"collapsed_stacks\": %d, \
        \"coverage_budget\": 0.95}\n"
       events dispatch_wall_ns root_total_ns coverage stacks);
  Buffer.add_string b "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Format.printf "   -> wrote %s@." path

(* BENCH_*.json artifacts land at the repo root (the directory holding
   dune-project) no matter what cwd `dune exec` leaves us in, so CI can
   upload them from a fixed path.  BENCH_OUT_DIR overrides the anchor. *)
let out_path name =
  match Sys.getenv_opt "BENCH_OUT_DIR" with
  | Some dir when dir <> "" -> Filename.concat dir name
  | Some _ | None ->
      let rec anchor dir =
        if Sys.file_exists (Filename.concat dir "dune-project") then
          Filename.concat dir name
        else
          let parent = Filename.dirname dir in
          if parent = dir then name else anchor parent
      in
      anchor (Sys.getcwd ())

let robustness_only = ref false
let replay_only = ref false
let profile_only = ref false
let run_all = ref false

(* One runner per family, so --FAMILY flags, --all, and the default full
   run share the exact same code paths (and artifact contents). *)
let run_robustness_family () =
  write_robustness_json ~path:(out_path "BENCH_robustness.json")
    (bench_robustness ()) (measure_robustness ()) (measure_overload ())

let run_replay_family () =
  let rep = record_replay_report ~clients:3 ~rounds:2 ~seed:7 in
  write_replay_json ~path:(out_path "BENCH_replay.json") (bench_replay rep)
    (measure_replay rep)

let run_profile_family () =
  write_profile_json ~path:(out_path "BENCH_profile.json") (bench_profile ())
    (measure_profile ())

let () =
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " tiny quota, for CI smoke runs");
      ( "--robustness",
        Arg.Set robustness_only,
        " run only the robustness family (writes BENCH_robustness.json)" );
      ( "--replay",
        Arg.Set replay_only,
        " run only the replay family (writes BENCH_replay.json)" );
      ( "--profile",
        Arg.Set profile_only,
        " run only the profiling family (writes BENCH_profile.json)" );
      ( "--all",
        Arg.Set run_all,
        " run every family and experiment (overrides the --FAMILY flags)" );
    ]
    (fun a -> raise (Arg.Bad ("unknown argument: " ^ a)))
    "bench [--smoke] [--robustness] [--replay] [--profile] [--all]";
  Format.printf "swm benchmark harness — one experiment per DESIGN.md index entry%s@."
    (if !smoke then " (smoke run)" else "");
  if (not !run_all) && !robustness_only then begin
    run_robustness_family ();
    Format.printf "@.done.@.";
    exit 0
  end;
  if (not !run_all) && !replay_only then begin
    run_replay_family ();
    Format.printf "@.done.@.";
    exit 0
  end;
  if (not !run_all) && !profile_only then begin
    run_profile_family ();
    Format.printf "@.done.@.";
    exit 0
  end;
  let ((pipeline_results, _, _, _, _, _) as pipeline) = bench_pipeline () in
  write_pipeline_json ~path:(out_path "BENCH_pipeline.json") pipeline;
  write_observability_json ~path:(out_path "BENCH_observability.json")
    (bench_observability ())
    ~pipeline_pan_ns:(find "pipeline/pan_storm" pipeline_results)
    ~slo:(measure_slo ());
  write_sample_trace ~path:(out_path "BENCH_observability.trace.json");
  run_robustness_family ();
  run_replay_family ();
  run_profile_family ();
  bench_figures ();
  bench_panner ();
  bench_manage_comparison ();
  bench_dispatch_comparison ();
  bench_config ();
  bench_pan ();
  bench_session ();
  bench_bindings ();
  bench_shape ();
  bench_placement ();
  bench_specific_lookup ();
  bench_multi_desktop ();
  bench_policy_cost ();
  bench_extensions ();
  Format.printf "@.done.@."
