(* swmcmd: demonstrate the out-of-process command protocol (paper §4.3).

   Since the simulated server lives in one process, this CLI shows the
   protocol round-trip: a client connection writes SWM_COMMAND on the root,
   the WM's event loop picks it up and executes it.  Commands are taken
   from argv (joined), e.g.:

     swmcmd_cli "f.iconify(XTerm)"

   Introspection flags run the channel in both directions — the command
   goes in over SWM_COMMAND and the reply comes back on SWM_RESULT:

     swmcmd_cli --metrics            print the WM's metrics registry (JSON)
     swmcmd_cli --metrics --table    the same, as a human-readable table
     swmcmd_cli --metrics --prometheus   Prometheus text exposition
     swmcmd_cli --slowlog            print the slow-op log (JSON)
     swmcmd_cli --health             one-line liveness summary (f.health)
     swmcmd_cli --top [FRAMES]       refreshing terminal table of counter
                                     rates from f.stats while a scripted
                                     workload runs (default 6 frames)
     swmcmd_cli --fate [CONN|WIN]    recent event fates from the lifecycle
                                     ledger (f.fate JSON), optionally
                                     filtered to a connection or window
     swmcmd_cli --waterfall FILE     run the scripted session and write the
                                     recent-dispatch waterfall (ingress ->
                                     queue -> dispatch -> requests) to FILE
     swmcmd_cli --flightdump FILE    write a flight-recorder report to FILE
     swmcmd_cli --replay FILE        f.replay(FILE): re-execute a crash
                                     report or repro file and print the
                                     convergence outcome (JSON)
     swmcmd_cli --trace FILE         trace a scripted session (pan storm +
                                     iconify burst) and write Chrome
                                     trace-event JSON to FILE
     swmcmd_cli --profile            profile the scripted session and print
                                     the span-tree profile (f.profile JSON:
                                     self/total time + allocation per frame)
     swmcmd_cli --flame FILE         profile the scripted session and write
                                     a collapsed-stack flamegraph to FILE
                                     (feed to flamegraph.pl / speedscope)
     swmcmd_cli --chaos SEED         run a workload storm under the seeded
                                     fault plan and report what the WM
                                     absorbed (replayable per seed) *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
module Wire = Swm_xlib.Wire
module Wire_conn = Swm_xlib.Wire_conn
module Tracing = Swm_xlib.Tracing
module Json = Swm_xlib.Json
module Recorder = Swm_xlib.Recorder
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Swmcmd = Swm_core.Swmcmd
module Templates = Swm_core.Templates
module Stock = Swm_clients.Stock

type mode =
  | Command of string
  | Metrics of string option  (* None = JSON; Some "table"/"prometheus" *)
  | Slowlog
  | Health
  | Top of int  (* frames to render *)
  | Fate of string option
  | Waterfall of string
  | Flightdump of string
  | Replay of string
  | Trace of string
  | Profile
  | Flame of string
  | Chaos of int

let usage () =
  prerr_endline
    "usage: swmcmd_cli [COMMAND... | --metrics [--table | --prometheus] | \
     --slowlog | --health | --top [FRAMES] | --fate [CONN|WIN] | \
     --waterfall FILE | --flightdump FILE | \
     --replay FILE | --trace FILE | --profile | --flame FILE | \
     --chaos SEED]";
  exit 2

let parse_args () =
  match List.tl (Array.to_list Sys.argv) with
  | [] -> Command "f.iconify(XTerm)"
  | [ "--metrics" ] -> Metrics None
  | [ "--metrics"; "--table" ] | [ "--table"; "--metrics" ] ->
      Metrics (Some "table")
  | [ "--metrics"; "--prometheus" ] | [ "--prometheus"; "--metrics" ] ->
      Metrics (Some "prometheus")
  | [ "--slowlog" ] -> Slowlog
  | [ "--health" ] -> Health
  | [ "--top" ] -> Top 6
  | [ "--top"; frames ] -> (
      match int_of_string_opt frames with
      | Some n when n > 0 -> Top n
      | Some _ | None -> usage ())
  | [ "--fate" ] -> Fate None
  | [ "--fate"; sel ] -> Fate (Some sel)
  | [ "--waterfall"; file ] -> Waterfall file
  | [ "--flightdump"; file ] -> Flightdump file
  | [ "--replay"; file ] -> Replay file
  | [ "--trace"; file ] -> Trace file
  | [ "--profile" ] -> Profile
  | [ "--flame"; file ] -> Flame file
  | [ "--chaos"; seed ] -> (
      match int_of_string_opt seed with Some s -> Chaos s | None -> usage ())
  | first :: _ as rest ->
      if String.length first > 0 && first.[0] = '-' then usage ()
      else Command (String.concat " " rest)

let setup () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let _xterm = Stock.xterm server ~at:(Geom.point 60 80) () in
  let _xclock = Stock.xclock server ~at:(Geom.point 600 60) () in
  ignore (Wm.step wm);
  (server, wm)

(* One swmcmd round-trip: append the line, let the WM drain it. *)
let roundtrip server wm sender line =
  Swmcmd.send server sender ~screen:0 line;
  ignore (Wm.step wm)

let read_reply server =
  match Swmcmd.read_result server ~screen:0 with
  | Some text -> text
  | None ->
      prerr_endline "swmcmd_cli: swm left no SWM_RESULT reply";
      exit 1

(* The scripted session the trace captures: a pan storm followed by an
   iconify burst, with the command lines submitted as encoded bytes through
   a Wire_conn so the trace starts at wire decode and reaches down through
   dispatch to pans and redraws. *)
let scripted_session server wm =
  let wire = Wire_conn.create server ~name:"swmcmd-wire" in
  let root = Wire_conn.root_id wire ~screen:0 in
  let submit line =
    (match
       Wire_conn.submit wire
         (Wire.Change_property
            { window = root; name = Prop.swm_command; value = line })
     with
    | Ok () -> ()
    | Error msg -> Printf.eprintf "swmcmd_cli: wire error: %s\n" msg);
    ignore (Wm.step wm)
  in
  for i = 1 to 10 do
    submit (Printf.sprintf "f.panTo(%d,%d)" (i * 120) (i * 80))
  done;
  for _ = 1 to 3 do
    submit "f.iconify(XTerm)";
    submit "f.deiconify(XTerm)"
  done;
  submit "f.panTo(0,0)"

let run_command command =
  let server, wm = setup () in
  let ctx = Wm.ctx wm in
  let sender = Server.connect server ~name:"swmcmd" in
  roundtrip server wm sender command;
  Printf.printf "sent: %s\n" command;
  List.iter
    (fun (c : Ctx.client) ->
      Printf.printf "client %-10s class=%-8s state=%s sticky=%b\n" c.Ctx.instance
        c.Ctx.class_
        (Swm_xlib.Prop.wm_state_to_string c.Ctx.state)
        c.Ctx.sticky)
    (Ctx.all_clients ctx);
  match ctx.Ctx.mode with
  | Ctx.Prompting _ -> print_endline "swm is now prompting for a target window"
  | _ -> ()

let run_introspection verb =
  let server, wm = setup () in
  let sender = Server.connect server ~name:"swmcmd" in
  (* Give the introspection something to report. *)
  roundtrip server wm sender "f.panTo(240,160)";
  roundtrip server wm sender verb;
  print_string (read_reply server);
  print_newline ()

(* --top: a refreshing terminal table of counter totals and rates, driven by
   f.stats round-trips while a scripted workload keeps the WM busy.  The
   reply is parsed (not regex-scraped) — the renderer doubles as a living
   check that f.stats emits well-formed JSON. *)
let render_top ~frame ~frames reply =
  match Json.parse reply with
  | Error msg ->
      Printf.eprintf "swmcmd_cli: unparseable f.stats reply: %s\n" msg;
      exit 1
  | Ok stats ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf "\027[2J\027[H";
      let sampler = Json.member "sampler" stats in
      let samples =
        match Option.bind sampler (Json.member "samples") with
        | Some v -> Option.value (Json.to_int v) ~default:0
        | None -> 0
      in
      let window_s =
        match Option.bind sampler (Json.member "window_ns") with
        | Some v -> Option.value (Json.to_float v) ~default:0. /. 1e9
        | None -> 0.
      in
      Buffer.add_string buf
        (Printf.sprintf "swm top — frame %d/%d   samples %d   window %.2fs\n\n"
           frame frames samples window_s);
      Buffer.add_string buf
        (Printf.sprintf "%-26s %14s %14s\n" "series" "total" "rate/s");
      (match Option.bind sampler (Json.member "series") with
      | Some (Json.Obj fields) ->
          List.iter
            (fun (name, v) ->
              let value =
                match Json.member "value" v with
                | Some n -> Option.value (Json.to_int n) ~default:0
                | None -> 0
              in
              let rate =
                match Json.member "rate_per_sec" v with
                | Some n -> Option.value (Json.to_float n) ~default:0.
                | None -> 0.
              in
              Buffer.add_string buf
                (Printf.sprintf "%-26s %14d %14.1f\n" name value rate))
            fields
      | Some _ | None -> ());
      (match Json.member "derived" stats with
      | Some (Json.Obj fields) ->
          Buffer.add_char buf '\n';
          List.iter
            (fun (name, v) ->
              Buffer.add_string buf
                (Printf.sprintf "%-26s %14.3f\n" name
                   (Option.value (Json.to_float v) ~default:0.)))
            fields
      | Some _ | None -> ());
      print_string (Buffer.contents buf);
      flush stdout

let run_top frames =
  let server, wm = setup () in
  let sender = Server.connect server ~name:"swmcmd" in
  for frame = 1 to frames do
    (* Scripted activity between frames so the rates have something to
       show: a pan sweep plus an iconify bounce. *)
    for i = 1 to 6 do
      roundtrip server wm sender
        (Printf.sprintf "f.panTo(%d,%d)"
           (((frame * 90) + (i * 40)) mod 900)
           (((frame * 60) + (i * 25)) mod 500))
    done;
    roundtrip server wm sender "f.iconify(XTerm)";
    roundtrip server wm sender "f.deiconify(XTerm)";
    roundtrip server wm sender "f.stats";
    render_top ~frame ~frames (read_reply server);
    if frame < frames then Unix.sleepf 0.25
  done;
  print_newline ()

(* --waterfall: run the scripted session so the waterfall ring has a story
   to tell, then have the WM write it atomically via f.waterfall. *)
let run_waterfall file =
  let server, wm = setup () in
  let sender = Server.connect server ~name:"swmcmd" in
  scripted_session server wm;
  roundtrip server wm sender (Printf.sprintf "f.waterfall(%s)" file);
  let reply = read_reply server in
  (match Json.parse reply with
  | Error msg ->
      Printf.eprintf "swmcmd_cli: unparseable f.waterfall reply: %s\n" msg;
      exit 1
  | Ok json -> (
      match Json.member "error" json with
      | Some (Json.Str msg) ->
          Printf.eprintf "swmcmd_cli: f.waterfall failed: %s\n" msg;
          exit 1
      | _ ->
          let int_field name =
            match Option.bind (Json.member name json) Json.to_int with
            | Some n -> n
            | None -> 0
          in
          Printf.printf "wrote %s: %d bytes\n" file (int_field "bytes")))

let run_flightdump file =
  let server, wm = setup () in
  let sender = Server.connect server ~name:"swmcmd" in
  (* Arm the recorder and give it a tail to dump. *)
  Recorder.start (Server.recorder server);
  for i = 1 to 8 do
    roundtrip server wm sender (Printf.sprintf "f.panTo(%d,%d)" (i * 100) (i * 60))
  done;
  roundtrip server wm sender (Printf.sprintf "f.flightdump(%s)" file);
  print_string (read_reply server);
  print_newline ()

let run_trace file =
  let server, wm = setup () in
  let sender = Server.connect server ~name:"swmcmd" in
  roundtrip server wm sender "f.trace(start)";
  scripted_session server wm;
  roundtrip server wm sender "f.trace(stop)";
  roundtrip server wm sender "f.trace(dump)";
  let json = read_reply server in
  Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc json);
  let tracer = Server.tracer server in
  Printf.printf "wrote %s: %d events (%d dropped), %d slow spans\n" file
    (List.length (Tracing.events tracer))
    (Tracing.dropped tracer)
    (List.length (Tracing.slow_log tracer))

(* --profile / --flame: arm the profiler around the same scripted session the
   tracer uses, so the flamegraph covers wire decode → dispatch → pan →
   redraw, then read the aggregate back over SWM_RESULT. *)
let profiled_session server wm =
  let sender = Server.connect server ~name:"swmcmd" in
  roundtrip server wm sender "f.profile(start)";
  scripted_session server wm;
  roundtrip server wm sender "f.profile(stop)";
  sender

let run_profile () =
  let server, wm = setup () in
  let sender = profiled_session server wm in
  roundtrip server wm sender "f.profile(dump)";
  print_string (read_reply server);
  print_newline ()

let run_flame file =
  let server, wm = setup () in
  let sender = profiled_session server wm in
  roundtrip server wm sender (Printf.sprintf "f.flame(%s)" file);
  let reply = read_reply server in
  (match Json.parse reply with
  | Error msg ->
      Printf.eprintf "swmcmd_cli: unparseable f.flame reply: %s\n" msg;
      exit 1
  | Ok json -> (
      match Json.member "error" json with
      | Some (Json.Str msg) ->
          Printf.eprintf "swmcmd_cli: f.flame failed: %s\n" msg;
          exit 1
      | _ ->
          let int_field name =
            match Option.bind (Json.member name json) Json.to_int with
            | Some n -> n
            | None -> 0
          in
          let coverage =
            match Option.bind (Json.member "coverage" json) Json.to_float with
            | Some c -> c
            | None -> 0.
          in
          Printf.printf
            "wrote %s: %d collapsed stacks, %d bytes (coverage %.1f%% of %d ns \
             dispatch wall)\n"
            file (int_field "frames") (int_field "bytes") (coverage *. 100.)
            (int_field "dispatch_wall_ns")))

(* A replayable chaos demo: the test suite's storm at CLI scale, printing
   the injected fault schedule and what the WM absorbed. *)
let run_chaos seed =
  let module Fault = Swm_xlib.Fault in
  let module Metrics = Swm_xlib.Metrics in
  let module Workload = Swm_clients.Workload in
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let ctx = Wm.ctx wm in
  let apps = Workload.launch_n server 8 in
  ignore (Wm.step wm);
  let plan = Fault.storm ~seed () in
  Format.printf "fault plan: %a@." Fault.pp_plan plan;
  let fault = Server.arm_faults server ~protect:[ ctx.Ctx.conn ] plan in
  let client_side f =
    try f () with Server.Bad_window _ | Server.Bad_access _ -> ()
  in
  for round = 0 to 3 do
    client_side (fun () ->
        Workload.motion_storm server ~seed:(seed + round) ~steps:40 ());
    client_side (fun () ->
        Workload.configure_churn server ~seed:(seed + round) ~rounds:2 apps);
    client_side (fun () ->
        Workload.expose_storm server ~seed:(seed + round) ~rounds:1 apps);
    ignore (Wm.step wm)
  done;
  List.iter
    (fun action ->
      let n = Fault.count fault action in
      if n > 0 then Printf.printf "injected %-18s %d\n" (Fault.action_name action) n)
    Fault.all_actions;
  let m = Server.metrics server in
  Printf.printf "total faults injected   %d\n" (Fault.injected fault);
  Printf.printf "X errors absorbed by WM %d\n" (Metrics.counter_value m "wm.xerrors");
  Printf.printf "wire frames rejected    %d\n"
    (Metrics.counter_value m "wire.rejected_frames");
  Printf.printf "clients still managed   %d\n"
    (List.length (Ctx.all_clients ctx));
  (* The restart half of the story: a fresh WM re-adopts the survivors. *)
  Server.disarm_faults server;
  Wm.shutdown wm;
  let wm2 = Wm.start ~resources:[ Templates.open_look ] server in
  ignore (Wm.step wm2);
  Printf.printf "re-adopted by fresh WM  %d\n"
    (List.length (Ctx.all_clients (Wm.ctx wm2)));
  print_endline "WM survived the storm (replay with the same seed to reproduce)"

let () =
  match parse_args () with
  | Command command -> run_command command
  | Metrics None -> run_introspection "f.metrics"
  | Metrics (Some fmt) -> run_introspection (Printf.sprintf "f.metrics(%s)" fmt)
  | Slowlog -> run_introspection "f.slowlog"
  | Health -> run_introspection "f.health"
  | Top frames -> run_top frames
  | Fate None -> run_introspection "f.fate"
  | Fate (Some sel) -> run_introspection (Printf.sprintf "f.fate(%s)" sel)
  | Waterfall file -> run_waterfall file
  | Flightdump file -> run_flightdump file
  | Replay file -> run_introspection (Printf.sprintf "f.replay(%s)" file)
  | Trace file -> run_trace file
  | Profile -> run_profile ()
  | Flame file -> run_flame file
  | Chaos seed -> run_chaos seed
