(* swm_main: run the window manager on a simulated server with a scripted
   scenario and print what happened.  This is the "demo driver" for the
   whole system: it starts swm with a chosen template, launches a handful
   of the stock clients, exercises the Virtual Desktop, sticky windows,
   iconification and session save, then renders the screen. *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Render = Swm_xlib.Render
module Ctx = Swm_core.Ctx
module Wm = Swm_core.Wm
module Functions = Swm_core.Functions
module Templates = Swm_core.Templates
module Vdesk = Swm_core.Vdesk
module Icons = Swm_core.Icons
module Stock = Swm_clients.Stock
module Client_app = Swm_clients.Client_app

(* swm --replay FILE: re-execute a crash report or repro file against a
   fresh Server+WM pair and report convergence.  Exit 0 when the replay
   converges (or ran clean with nothing to compare), 1 on divergence or a
   replay crash, 2 on an unreadable/unparsable file. *)
let run_replay file =
  let text =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error msg ->
      Printf.eprintf "swm --replay: %s\n" msg;
      exit 2
  in
  match Swm_xlib.Replay.parse_report text with
  | Error msg ->
      Printf.eprintf "swm --replay: %s: %s\n" file msg;
      exit 2
  | Ok report ->
      let outcome = Wm.replay report in
      Printf.printf "%s: %s\n" file (Swm_xlib.Replay.outcome_to_string outcome);
      (match outcome with
      | Swm_xlib.Replay.Diverged d ->
          List.iter (fun op -> Printf.printf "  context: %s\n" op) d.d_context
      | _ -> ());
      exit (if Swm_xlib.Replay.ok outcome then 0 else 1)

let template_of_name = function
  | "openlook" -> Templates.open_look
  | "motif" -> Templates.motif
  | "default" -> Templates.default
  | other ->
      Printf.eprintf "unknown template %S (openlook|motif|default)\n" other;
      exit 1

let () =
  let args = Array.to_list Sys.argv in
  (match args with
  | _ :: "--replay" :: file :: _ -> run_replay file
  | _ :: "--replay" :: [] ->
      Printf.eprintf "usage: swm --replay FILE\n";
      exit 2
  | _ -> ());
  if List.mem "-v" args then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Ctx.log_src (Some Logs.Debug)
  end;
  let template =
    match List.filter (fun a -> a <> "-v") args with
    | _ :: name :: _ -> template_of_name name
    | _ -> Templates.open_look
  in
  let server = Server.create () in
  let wm = Wm.start ~resources:[ template ] server in
  let ctx = Wm.ctx wm in

  Printf.printf "swm started: %d screen(s), virtual desktop %s\n"
    (Server.screen_count server)
    (match (Ctx.screen ctx 0).Ctx.vdesk with
    | Some v ->
        let w, h = v.Ctx.vsize in
        Printf.sprintf "%dx%d" w h
    | None -> "off");

  let xterm = Stock.xterm server ~at:(Geom.point 60 80) () in
  let xclock = Stock.xclock server ~at:(Geom.point 900 40) () in
  let oclock = Stock.oclock server ~at:(Geom.point 500 500) () in
  ignore (Wm.step wm);
  Printf.printf "managed %d clients\n" (List.length (Ctx.all_clients ctx));

  (* Make the clock sticky, iconify the xterm, pan the desktop. *)
  (match Wm.find_client wm (Client_app.window xclock) with
  | Some client ->
      Functions.execute ctx
        (Functions.invocation ~client ~screen:0 ())
        [ { Swm_core.Bindings.fname = "f.stick"; farg = None } ]
  | None -> ());
  (match Wm.find_client wm (Client_app.window xterm) with
  | Some client -> Icons.iconify ctx client
  | None -> ());
  Vdesk.pan_by ctx ~screen:0 ~dx:200 ~dy:150;
  Swm_core.Panner.refresh ctx ~screen:0;
  ignore (Wm.step wm);

  Printf.printf "panned viewport to %s\n"
    (Format.asprintf "%a" Geom.pp_point (Vdesk.offset ctx ~screen:0));
  ignore oclock;

  (* Session snapshot. *)
  Functions.execute ctx
    (Functions.invocation ~screen:0 ())
    [ { Swm_core.Bindings.fname = "f.places"; farg = None } ];
  (match ctx.Ctx.last_places with
  | Some content ->
      Printf.printf "\n----- f.places output -----\n%s\n" content
  | None -> ());

  print_endline "----- screen -----";
  print_string (Render.to_string (Render.render server ~screen:0 ~scale:16 ()));

  (* f.restart: the WM exits, save-set windows survive on the root, and a
     fresh instance adopts them. *)
  Functions.execute ctx
    (Functions.invocation ~screen:0 ())
    [ { Swm_core.Bindings.fname = "f.restart"; farg = None } ];
  if ctx.Ctx.restart_requested then begin
    Wm.shutdown wm;
    let wm2 = Wm.start ~resources:[ template ] server in
    ignore (Wm.step wm2);
    Printf.printf "\nafter f.restart: new instance manages %d clients\n"
      (List.length
         (List.filter
            (fun (c : Ctx.client) -> c.Ctx.class_ <> "SwmPanel" && c.Ctx.class_ <> "Panner")
            (Ctx.all_clients (Wm.ctx wm2))))
  end
