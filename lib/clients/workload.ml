module Geom = Swm_xlib.Geom

type params = {
  count : int;
  area : int * int;
  shaped_fraction : float;
  us_position_fraction : float;
  p_position_fraction : float;
  seed : int;
}

let default_params =
  {
    count = 10;
    area = (1152, 900);
    shaped_fraction = 0.0;
    us_position_fraction = 0.5;
    p_position_fraction = 0.25;
    seed = 42;
  }

let class_table =
  [|
    ("xterm", "XTerm", (484, 316), 't');
    ("xclock", "XClock", (100, 100), 'c');
    ("xlogo", "XLogo", (64, 64), 'l');
    ("emacs", "Emacs", (600, 640), 'E');
    ("xmh", "Xmh", (420, 500), 'M');
    ("xbiff", "XBiff", (48, 48), 'b');
  |]

let specs params =
  let rng = Random.State.make [| params.seed |] in
  let aw, ah = params.area in
  List.init params.count (fun i ->
      let instance, class_, (w, h), background =
        class_table.(Random.State.int rng (Array.length class_table))
      in
      let x = Random.State.int rng (max 1 (aw - w)) in
      let y = Random.State.int rng (max 1 (ah - h)) in
      let roll = Random.State.float rng 1.0 in
      let us_position = roll < params.us_position_fraction in
      let p_position =
        (not us_position)
        && roll < params.us_position_fraction +. params.p_position_fraction
      in
      let instance = Printf.sprintf "%s%d" instance i in
      Client_app.spec ~instance ~class_ ~us_position ~p_position ~background
        ~command:(Printf.sprintf "%s -geometry %dx%d+%d+%d" instance w h x y)
        (Geom.rect x y w h))

let launch server ?(screen = 0) params =
  let rng = Random.State.make [| params.seed + 1 |] in
  List.map
    (fun spec ->
      let app = Client_app.launch server ~screen spec in
      if Random.State.float rng 1.0 < params.shaped_fraction then begin
        let geom = (Client_app.app_spec app).Client_app.geom in
        let r = min geom.w geom.h / 2 in
        Swm_xlib.Server.shape_set server (Client_app.conn app)
          (Client_app.window app)
          (Swm_xlib.Region.disc ~cx:(geom.w / 2) ~cy:(geom.h / 2) ~r)
      end;
      app)
    (specs params)

let launch_n server ?screen n = launch server ?screen { default_params with count = n }

(* -------- event storms --------

   Deterministic high-rate stimulus for the batched event pipeline: each
   storm produces a flood of notifications that the queue compression in
   [Server] should collapse, so benches can compare coalesced vs naive
   delivery on identical input. *)

let motion_storm server ?(screen = 0) ?(seed = 7) ~steps () =
  let rng = Random.State.make [| seed |] in
  let sw, sh = Swm_xlib.Server.screen_size server ~screen in
  for _ = 1 to steps do
    let p = Geom.point (Random.State.int rng sw) (Random.State.int rng sh) in
    Swm_xlib.Server.warp_pointer server ~screen p
  done

let configure_churn server ?(seed = 11) ~rounds apps =
  let rng = Random.State.make [| seed |] in
  for _ = 1 to rounds do
    List.iter
      (fun app ->
        let w = Client_app.window app in
        if Swm_xlib.Server.window_exists server w then
          let geom = Swm_xlib.Server.geometry server w in
          let dx = Random.State.int rng 17 - 8
          and dy = Random.State.int rng 17 - 8 in
          Swm_xlib.Server.move_resize server (Client_app.conn app) w
            { geom with Geom.x = geom.x + dx; y = geom.y + dy })
      apps
  done

let expose_storm server ?(seed = 13) ~rounds apps =
  let rng = Random.State.make [| seed |] in
  for _ = 1 to rounds do
    List.iter
      (fun app ->
        let w = Client_app.window app in
        if Swm_xlib.Server.window_exists server w then begin
          let geom = Swm_xlib.Server.geometry server w in
          let rw = 1 + Random.State.int rng (max 1 (geom.w / 2)) in
          let rh = 1 + Random.State.int rng (max 1 (geom.h / 2)) in
          let rx = Random.State.int rng (max 1 (geom.w - rw)) in
          let ry = Random.State.int rng (max 1 (geom.h - rh)) in
          Swm_xlib.Server.damage_window server w (Geom.rect rx ry rw rh)
        end)
      apps
  done
