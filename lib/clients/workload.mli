(** Deterministic workload generation for tests and benchmarks.

    Produces populations of simulated clients with a seeded PRNG so bench
    runs are reproducible: mixed classes, sizes and positions spread over a
    desktop-sized area, a configurable fraction of shaped clients and of
    position-hinted clients. *)

type params = {
  count : int;
  area : int * int;  (** positions drawn within this (desktop) area *)
  shaped_fraction : float;
  us_position_fraction : float;
  p_position_fraction : float;
  seed : int;
}

val default_params : params

val specs : params -> Client_app.spec list
(** The generated client specs (pure; same seed, same result). *)

val launch : Swm_xlib.Server.t -> ?screen:int -> params -> Client_app.t list

val launch_n : Swm_xlib.Server.t -> ?screen:int -> int -> Client_app.t list
(** [launch_n server n] — defaults with [count = n]. *)

(** {1 Event storms}

    Seeded high-rate stimulus for the batched event pipeline — input the
    server's queue compression should collapse, letting benches compare
    coalesced against naive delivery on identical request streams. *)

val motion_storm :
  Swm_xlib.Server.t -> ?screen:int -> ?seed:int -> steps:int -> unit -> unit
(** Warp the pointer to [steps] random on-screen positions. *)

val configure_churn :
  Swm_xlib.Server.t -> ?seed:int -> rounds:int -> Client_app.t list -> unit
(** Each round jiggles every client's window by a few pixels via its own
    connection (so redirects fire where a WM holds them). *)

val expose_storm :
  Swm_xlib.Server.t -> ?seed:int -> rounds:int -> Client_app.t list -> unit
(** Each round posts a random interior damage rectangle on every client's
    window. *)
