(** The window manager itself: initialisation, the manage/unmanage
    lifecycle, and the event loop.

    Typical use:

    {[
      let server = Server.create () in
      let wm = Wm.start ~resources:[ Templates.open_look ] server in
      (* ... clients connect, create windows, map them ... *)
      ignore (Wm.step wm)   (* process everything pending *)
    ]} *)

type t = Ctx.t

val start :
  ?resources:string list ->
  ?host:string ->
  ?display:string ->
  Swm_xlib.Server.t ->
  t
(** Connect as the window manager: load the resource strings (in order,
    later overriding earlier; when none are given {!Templates.default} is
    loaded, mirroring swm's fallback configuration), claim
    SubstructureRedirect on every root (raising [Server.Bad_access] if
    another WM is running), create virtual desktops / panners / root panels
    / icon holders / root icons per the resources, read the SWM_PLACES
    session property, and manage all pre-existing client windows. *)

val ctx : t -> Ctx.t

val step : t -> int
(** Drain and handle every pending event; returns how many were handled.
    Call repeatedly after synthesising input or client activity. *)

val run : t -> max_events:int -> int
(** Handle events until the queue is empty, [f.quit]/[f.restart] runs, or
    [max_events] is reached. *)

val manage : t -> Swm_xlib.Xid.t -> unit
(** Bring an (unmanaged, non-override-redirect) top-level window under
    management: read its properties, apply a matching session hint if any,
    choose a position per the USPosition/PPosition rules, decorate, and
    honour the initial state. *)

val unmanage : t -> Ctx.client -> destroyed:bool -> unit

val managed : t -> Swm_xlib.Xid.t -> bool
val find_client : t -> Swm_xlib.Xid.t -> Ctx.client option

val shutdown : t -> unit
(** Disconnect from the server; save-set windows are reparented back to the
    root (how clients survive a WM restart). *)

val dispatch_table_codes : unit -> int list
(** The event-kind codes the precomputed dispatch table explicitly binds
    (in binding order).  The exhaustiveness test pins this against
    [1 .. Event.last_event]: adding an event kind without routing it
    through the table is a test failure, not a silent no-op. *)

val render_screen : t -> screen:int -> string
(** Character rendering of a screen, for tests and figures. *)

val state_snapshot_json : t -> string
(** The compact world-state snapshot the flight recorder embeds in crash
    reports: managed-client table (window / instance / class / state /
    sticky, sorted by window id), the iconic and sticky id sets, and each
    screen's viewport.  Exposed so tests can check a dumped snapshot
    against the live window table. *)

val replay_harness :
  Swm_xlib.Replay.report -> Swm_xlib.Server.t -> Swm_xlib.Replay.harness
(** The {!Swm_xlib.Replay} harness for this WM: [start] a fresh instance
    with the report's recorded resources, step it at the journal's [step]
    markers, snapshot it with {!state_snapshot_json}. *)

val replay : Swm_xlib.Replay.report -> Swm_xlib.Replay.outcome
(** Re-execute a parsed crash report or repro file against a fresh
    [Server]+WM pair and check convergence: [Replay.run] with
    {!replay_harness}. *)
