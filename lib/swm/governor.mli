(** The load governor: steps [Ctx.tier] through degradation modes (full →
    reduced → essential) from queue pressure ({!Swm_xlib.Server.max_queue_ratio})
    and watchdog stall deltas, restoring one tier at a time after
    consecutive calm ticks.  Transitions are counted
    ([governor.transitions]), traced, and recorded (kind ["tier"]).
    {!Wm} calls {!tick} every [governorInterval] dispatched events; the
    same cadence drives {!Swm_xlib.Server.health_tick} (quarantine). *)

val reduced_ratio : float
val essential_ratio : float
(** Queue depth-to-cap ratios at which escalation to the reduced /
    essential tier happens. *)

val restore_calm_ticks : int
(** Consecutive calm ticks before stepping one tier back down. *)

val desired : Ctx.t -> Ctx.tier
(** The tier the current pressure signals call for.  Consumes the
    watchdog-stall delta (updates [gov_last_stalls]). *)

val tick : Ctx.t -> unit
(** One governor tick: re-evaluate the tier (escalate immediately,
    de-escalate after {!restore_calm_ticks} calm ticks), then run one
    {!Swm_xlib.Server.health_tick}. *)
