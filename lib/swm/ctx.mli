(** Shared window-manager state.

    One [Ctx.t] per running swm instance: the server connection, per-screen
    state (virtual desktop, panner, root panels, icon holders), the table of
    managed clients, the current interaction mode (idle / interactive move /
    resize / prompting for a target window), and the session-restart table.

    The feature modules ({!Vdesk}, {!Decoration}, {!Icons}, {!Panner},
    {!Functions}, ...) are functions over this state; {!Wm} owns the event
    loop. *)

module Xid = Swm_xlib.Xid
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop

type client = {
  cwin : Xid.t;  (** the client's own window *)
  screen : int;
  instance : string;
  class_ : string;
  mutable frame : Xid.t;  (** decoration window; [cwin] when undecorated *)
  mutable deco : Swm_oi.Wobj.t option;
  mutable client_panel : Swm_oi.Wobj.t option;  (** the special [client] panel *)
  mutable state : Prop.wm_state;
  mutable sticky : bool;
  mutable shaped : bool;
  mutable zoom_saved : (Geom.rect * (int * int)) option;
      (** f.save: frame rect + client size, for f.zoom restore *)
  mutable icon_obj : Swm_oi.Wobj.t option;
  mutable icon_pos : Geom.point option;
  mutable holder : holder option;
  mutable wm_name : string;
}

and holder = {
  holder_name : string;
  holder_screen : int;
  mutable holder_obj : Swm_oi.Wobj.t option;
  mutable holder_clients : client list;
  holder_classes : string list;  (** WM_CLASS classes collected; [] = all *)
  hide_when_empty : bool;
  size_to_fit : bool;
  holder_fixed_size : (int * int) option;
      (** a fixed window size makes the holder a scrolling window (§4.1.5) *)
  mutable holder_scroll : int;  (** vertical scroll offset in pixels *)
}

and screen_state = {
  index : int;
  root : Xid.t;
  tk : Swm_oi.Wobj.toolkit;
  mutable vdesk : vdesk option;
  mutable holders : holder list;
  mutable root_panels : Swm_oi.Wobj.t list;
  mutable root_icons : Swm_oi.Wobj.t list;
  mutable menus : (string * Swm_oi.Menu.t) list;
  mutable active_menu : (Swm_oi.Menu.t * client option) option;
  mutable root_bindings : Bindings.binding list;
  mutable hbar : (Xid.t * Xid.t) option;
      (** horizontal desktop scrollbar: (bar, thumb) windows *)
  mutable vbar : (Xid.t * Xid.t) option;  (** vertical scrollbar *)
  mutable focus_policy : focus_policy;  (** the [focusPolicy] resource *)
}

and focus_policy =
  | Focus_none  (** leave input focus alone (default) *)
  | Focus_pointer  (** focus follows the pointer into frames *)
  | Focus_click  (** clicking a frame focuses its client *)

and vdesk = {
  vwins : Xid.t array;  (** one desktop window per virtual desktop *)
  mutable current : int;
  mutable vsize : int * int;
  mutable panner_client : Xid.t;  (** the panner's client window, or none *)
  mutable panner_scale : int;
}

type tier =
  | Tier_full  (** no degradation *)
  | Tier_reduced  (** skip decoration title redraws and panner refreshes *)
  | Tier_essential
      (** additionally skip dispatching droppable (Motion/Expose) events *)

val tier_name : tier -> string

(** One recent dispatch in the per-event waterfall: the full ingress ->
    queue -> dispatch -> f.* -> requests story for one delivered event,
    filled by {!Wm.handle_event_full} while the lifecycle ledger is armed
    and exported by [f.waterfall].  Bounded ring, like the flight
    recorder. *)
type waterfall_rec = {
  wf_seq : int;  (** the triggering event's ingress seq *)
  wf_code : int;
  wf_ingress_ns : int;  (** 0 when the ledger was disarmed at enqueue *)
  wf_t0 : int;  (** dispatch start, monotonic *)
  wf_t1 : int;  (** dispatch complete *)
  wf_requests : int;  (** output requests issued during this dispatch *)
  wf_fns : string list;  (** f.* verbs the dispatch executed, in order *)
}

val waterfall_capacity : int

type mode =
  | Idle
  | Moving of {
      m_client : client;
      grab_offset : Geom.point;
      m_outline : Xid.t;  (** outline window when moves are not opaque *)
    }
  | Resizing of {
      r_client : client;
      r_start_client : int * int;  (** client size when the resize started *)
      r_pointer : Geom.point;  (** pointer root position at start *)
      r_dir : Geom.point;
          (** +1/-1 per axis: which corner follows the pointer (a top-left
              corner drag anchors the bottom-right) *)
      r_frame0 : Geom.rect;  (** frame geometry at start *)
    }
  | Prompting of Bindings.func_call list
      (** functions waiting for the user to click a target window *)

type t = {
  server : Swm_xlib.Server.t;
  conn : Swm_xlib.Server.conn;
  cfg : Config.t;
  screens : screen_state array;
  clients : client Xid.Tbl.t;  (** keyed by client window *)
  frames : client Xid.Tbl.t;  (** keyed by frame window *)
  corners : client Xid.Tbl.t;  (** resize-corner windows (decoration option) *)
  panner_minis : client Xid.Tbl.t;  (** miniature windows inside the panner *)
  session : Session.table;
  binding_cache : (string, Bindings.binding list) Hashtbl.t;
  mutable mode : mode;
  mutable running : bool;
  mutable restart_requested : bool;
  mutable executed : string list;  (** commands run by f.exec, newest first *)
  mutable last_places : string option;  (** most recent f.places output *)
  mutable identify_win : Xid.t;  (** the f.identify popup, or none *)
  mutable confirm : string -> bool;  (** f.*(multiple) per-window prompt *)
  mutable autosave_path : string option;
      (** the [autosaveFile] resource (or f.autosave's argument): where the
          periodic crash-safe places snapshot goes; [None] disables it *)
  mutable autosave_interval : int;
      (** dispatched events between autosaves ([autosaveInterval], default
          64) — a WM crash loses at most one interval of session state *)
  mutable autosave_pending : int;  (** events since the last autosave *)
  sampler : Swm_xlib.Metrics.sampler;
      (** time-series snapshots of the key counters, fed every
          [statsInterval] dispatched events — the data behind [f.stats] *)
  mutable stats_interval : int;
      (** dispatched events between sampler snapshots ([statsInterval],
          default 32) *)
  mutable stats_pending : int;  (** events since the last sample *)
  mutable watchdog_threshold_ns : int;
      (** wall-time dispatch latency above which the watchdog counts a
          stall ([watchdogThresholdMs], default 50ms) *)
  mutable tier : tier;
      (** current degradation tier; stepped by {!Governor.tick}, read by
          the redraw/refresh gates in {!Decoration} and {!Panner} *)
  mutable governor_interval : int;
      (** dispatched events between governor ticks ([governorInterval],
          default 32) *)
  mutable governor_pending : int;  (** events since the last governor tick *)
  mutable gov_calm : int;
      (** consecutive calm governor ticks, toward tier de-escalation *)
  mutable gov_last_stalls : int;
      (** [watchdog.stalls] value at the last governor tick, for deltas *)
  c_tier_transitions : Swm_xlib.Metrics.counter;
      (** [governor.transitions] *)
  c_gov_skipped : Swm_xlib.Metrics.counter;
      (** [governor.events_skipped] — droppable events not dispatched while
          in the essential tier *)
  events_by_kind : Swm_xlib.Metrics.counter_family;
      (** the [wm.dispatch.events{event}] labeled family — always-on
          per-event-kind dispatch attribution, one cached-family increment
          per event *)
  dispatch_counters : Swm_xlib.Metrics.counter array;
      (** [events_by_kind] series resolved once per {!Event.code} (index
          0..{!Event.last_event}), so the per-event increment is an array
          load instead of a label-hash lookup *)
  h_dispatch_ns : Swm_xlib.Metrics.histogram;
      (** [wm.dispatch_ns] (CPU time), resolved once *)
  h_dispatch_wall_ns : Swm_xlib.Metrics.histogram;
      (** [wm.dispatch_wall_ns] (monotonic wall time), resolved once *)
  h_e2e : Swm_xlib.Metrics.histogram array;
      (** [event.e2e_ns{event}] resolved per {!Event.code}: ingress ->
          dispatch-complete wall latency, observed only for events whose
          queue entry carries a live ingress stamp (ledger armed) *)
  wf_ring : waterfall_rec option array;
      (** recent-dispatch waterfall, {!waterfall_capacity} slots *)
  mutable wf_head : int;  (** next waterfall write slot *)
  mutable fn_trail : string list;
      (** f.* verbs run by the dispatch in flight (newest first); reset by
          {!Wm} per event, appended by {!Functions.execute_at} *)
  c_events_dispatched : Swm_xlib.Metrics.counter;
  c_watchdog_stalls : Swm_xlib.Metrics.counter;
  atoms : atoms;  (** hot ICCCM/SWM property names, interned at startup *)
  host : string;
  display : string;
}

(** The property names the WM compares or reads per event, interned once
    in the server's atom table so hot paths compare ints instead of
    hashing strings. *)
and atoms = {
  a_wm_name : Swm_xlib.Atom.t;
  a_wm_icon_name : Swm_xlib.Atom.t;
  a_wm_class : Swm_xlib.Atom.t;
  a_wm_command : Swm_xlib.Atom.t;
  a_wm_client_machine : Swm_xlib.Atom.t;
  a_wm_hints : Swm_xlib.Atom.t;
  a_wm_normal_hints : Swm_xlib.Atom.t;
  a_wm_state : Swm_xlib.Atom.t;
  a_wm_transient_for : Swm_xlib.Atom.t;
  a_wm_protocols : Swm_xlib.Atom.t;
  a_swm_root : Swm_xlib.Atom.t;
  a_swm_command : Swm_xlib.Atom.t;
  a_swm_places : Swm_xlib.Atom.t;
  a_swm_result : Swm_xlib.Atom.t;
}

val screen : t -> int -> screen_state
val client_of_window : t -> Xid.t -> client option
(** Resolve a client from either its own window or its frame. *)

val clients_of_class : t -> string -> client list
val all_clients : t -> client list
(** In unspecified order. *)

val parsed_bindings : t -> string -> Bindings.binding list
(** Parse-and-cache a bindings resource value; malformed text yields []. *)

val object_bindings : t -> Swm_oi.Wobj.t -> Bindings.binding list
(** The bindings attribute of an OI object, parsed. *)

val client_scope : client -> Config.client_scope
(** The client's resource-lookup identity (class, instance, shaped, sticky). *)

val frame_geometry : t -> client -> Geom.rect
(** The frame's geometry relative to its current parent (desktop or root). *)

val log_src : Logs.src
(** The [Logs] source ("swm"); set its level to [Debug] to trace manage /
    unmanage / pan / function execution. *)

val log : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
