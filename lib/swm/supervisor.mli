(** The supervised restart loop (tentpole (d)): wraps a running {!Wm} and
    turns repeated watchdog stalls or an escaped dispatch exception into a
    recovery — autosave + crash report + teardown + restart with
    exponential backoff — instead of a dead window manager.  Clients stay
    parented via the save-set across the restart and are re-adopted through
    the SWM_PLACES session property the supervisor re-seeds before tearing
    the old instance down.

    Resources (screen 0): [supervisorMaxRestarts] (default 3),
    [supervisorBackoffMs] (50), [supervisorBackoffMaxMs] (2000),
    [supervisorStallLimit] (3 new stalls in one supervised step).

    Metrics: [supervisor.recoveries], [supervisor.restarts],
    [supervisor.giveups] (counters) and [supervisor.backoff_ms]
    (histogram).  Recorder entries use kind ["supervisor"].  All recovery
    plumbing runs under {!Swm_xlib.Server.with_journal_suspended} so a
    deterministic replay re-derives the recovery rather than replaying
    it. *)

type outcome =
  | Stepped of int  (** Normal step: the WM handled [n] events. *)
  | Recovered of { reason : string; attempts : int }
      (** The WM was torn down and restarted on attempt [attempts]. *)
  | Gave_up of { reason : string }
      (** The restart budget is exhausted; the supervisor is inert. *)

type t

val create :
  ?resources:string list -> ?host:string -> ?display:string ->
  Swm_xlib.Server.t -> t
(** Start the first WM instance (via {!Wm.start}) under supervision and
    read the supervisor resources from its configuration. *)

val wm : t -> Ctx.t
(** The currently live WM instance (changes across a recovery). *)

val restarts : t -> int
val gave_up : t -> bool

val set_sleep : t -> (int -> unit) -> unit
(** Install the backoff sleep (milliseconds).  Defaults to [ignore] so
    tests and benchmarks run at full speed; a production loop installs a
    real sleep. *)

val set_max_restarts : t -> int -> unit
val set_stall_limit : t -> int -> unit
val set_backoff : t -> base_ms:int -> max_ms:int -> unit

val step : ?drive:(Ctx.t -> int) -> t -> outcome
(** One supervised step: run [drive] (default {!Wm.step}) on the live WM.
    An escaped exception, or a watchdog-stall delta of at least the stall
    limit, triggers {!recover}. *)

val recover : t -> reason:string -> outcome
(** Force a recovery: save the session (SWM_PLACES re-seed + autosave),
    write a crash report, shut the WM down, and restart it with
    exponential backoff.  Returns [Recovered] or [Gave_up]. *)
