module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Event = Swm_xlib.Event
module Wobj = Swm_oi.Wobj
module Panel_spec = Swm_oi.Panel_spec
module Tracing = Swm_xlib.Tracing

let decoration_name (ctx : Ctx.t) (client : Ctx.client) =
  match Config.query_client ctx.cfg ~screen:client.screen (Ctx.client_scope client)
          "decoration"
  with
  | Some "none" | None -> None
  | Some name -> Some (String.trim name)

let corner_size = 6

(* OpenLook-style resize corners: four small windows pinned to the frame's
   corners, outside the OI layout (they overlay it). *)
let attach_corners (ctx : Ctx.t) (client : Ctx.client) =
  let geom = Server.geometry ctx.server client.frame in
  let positions =
    [
      (0, 0);
      (geom.w - corner_size, 0);
      (0, geom.h - corner_size);
      (geom.w - corner_size, geom.h - corner_size);
    ]
  in
  List.iter
    (fun (x, y) ->
      let corner =
        Server.create_window ctx.server ctx.conn ~parent:client.frame
          ~geom:(Geom.rect x y corner_size corner_size) ~background:'+' ()
      in
      Server.select_input ctx.server ctx.conn corner
        [ Event.Button_press_mask; Event.Button_release_mask ];
      Server.map_window ctx.server ctx.conn corner;
      Xid.Tbl.replace ctx.corners corner client)
    positions

let detach_corners (ctx : Ctx.t) (client : Ctx.client) =
  let mine =
    Xid.Tbl.fold
      (fun corner c acc -> if c == client then corner :: acc else acc)
      ctx.corners []
  in
  List.iter
    (fun corner ->
      Xid.Tbl.remove ctx.corners corner;
      if Server.window_exists ctx.server corner then
        Server.destroy_window ctx.server corner)
    mine

(* Merge with whatever is already selected: the panner's client window, for
   one, carries button masks that must survive being managed. *)
let select_client_events (ctx : Ctx.t) win =
  let existing = Server.selected_masks ctx.server ctx.conn win in
  let wanted = [ Event.Structure_notify; Event.Property_change ] in
  let missing = List.filter (fun m -> not (List.mem m existing)) wanted in
  Server.select_input ctx.server ctx.conn win (missing @ existing)

(* Mirror the client's shape onto the client panel and frame so shaped
   decorations follow shaped clients (paper §5). *)
let propagate_shape (ctx : Ctx.t) (client : Ctx.client) =
  match (client.client_panel, Server.shape_get ctx.server client.cwin) with
  | Some panel, Some region when Wobj.is_realized panel ->
      Server.shape_set ctx.server ctx.conn (Wobj.window panel) region;
      if
        (match client.deco with
        | Some deco -> Wobj.attr_bool deco "shape" ~default:false
        | None -> false)
        && not (Xid.equal client.frame client.cwin)
      then begin
        let panel_geom = Server.geometry ctx.server (Wobj.window panel) in
        let border = Server.border_width ctx.server (Wobj.window panel) in
        Server.shape_set ctx.server ctx.conn client.frame
          (Swm_xlib.Region.translate region ~dx:(panel_geom.x + border)
             ~dy:(panel_geom.y + border))
      end
  | _ -> ()

let build (ctx : Ctx.t) (client : Ctx.client) ~at =
  (let tracer = Server.tracer ctx.server in
   if Tracing.enabled tracer then
     Tracing.span tracer "decoration.build"
       ~attrs:[ ("client", string_of_int (Xid.to_int client.cwin)) ]
   else fun f -> f ())
  @@ fun () ->
  let parent = Vdesk.effective_parent ctx ~screen:client.screen ~sticky:client.sticky in
  let cgeom = Server.geometry ctx.server client.cwin in
  (match decoration_name ctx client with
  | None ->
      (* Undecorated: the client goes straight into the effective parent. *)
      Server.reparent_window ctx.server ctx.conn client.cwin ~new_parent:parent ~pos:at;
      client.frame <- client.cwin;
      Xid.Tbl.replace ctx.frames client.cwin client
  | Some deco_name -> (
      let scr = Ctx.screen ctx client.screen in
      let lookup name = Config.panel_definition ctx.cfg ~screen:client.screen name in
      match
        Panel_spec.build scr.tk ~lookup ~kind:Wobj.Panel ~name:deco_name
      with
      | Error _ ->
          Server.reparent_window ctx.server ctx.conn client.cwin ~new_parent:parent
            ~pos:at;
          client.frame <- client.cwin;
          Xid.Tbl.replace ctx.frames client.cwin client
      | Ok deco ->
          let client_panel = Wobj.find_descendant deco ~name:"client" in
          (match client_panel with
          | Some panel -> Wobj.set_external_size panel (Some (cgeom.w, cgeom.h))
          | None -> ());
          Wobj.realize deco ~parent_window:parent ~at;
          let frame = Wobj.window deco in
          client.deco <- Some deco;
          client.client_panel <- client_panel;
          client.frame <- frame;
          Xid.Tbl.replace ctx.frames frame client;
          (match client_panel with
          | Some panel ->
              (* Keep redirecting the client's own configure/map requests
                 now that its parent is the client panel, not the root. *)
              let panel_win = Wobj.window panel in
              Server.select_input ctx.server ctx.conn panel_win
                (Swm_xlib.Event.Substructure_redirect
                :: Server.selected_masks ctx.server ctx.conn panel_win);
              Server.reparent_window ctx.server ctx.conn client.cwin
                ~new_parent:panel_win ~pos:(Geom.point 0 0);
              Server.add_to_save_set ctx.server ctx.conn client.cwin
          | None ->
              (* A decoration without a client panel is a configuration
                 error; fall back to parenting into the frame itself. *)
              Server.reparent_window ctx.server ctx.conn client.cwin ~new_parent:frame
                ~pos:(Geom.point 0 0);
              Server.add_to_save_set ctx.server ctx.conn client.cwin);
          (match Wobj.find_descendant deco ~name:"name" with
          | Some name_obj -> Wobj.set_label name_obj client.wm_name
          | None -> ());
          if Wobj.attr_bool deco "resizeCorners" ~default:false then
            attach_corners ctx client;
          propagate_shape ctx client;
          Server.map_window ctx.server ctx.conn frame));
  select_client_events ctx client.cwin;
  Server.map_window ctx.server ctx.conn client.cwin;
  Icccm.set_swm_root ctx client.cwin ~root:(Vdesk.effective_root ctx client);
  Icccm.send_synthetic_configure ctx client

let teardown (ctx : Ctx.t) (client : Ctx.client) ~to_root =
  detach_corners ctx client;
  Xid.Tbl.remove ctx.frames client.frame;
  if to_root && Server.window_exists ctx.server client.cwin then begin
    let abs = Server.root_geometry ctx.server client.cwin in
    let scr = Ctx.screen ctx client.screen in
    Server.reparent_window ctx.server ctx.conn client.cwin ~new_parent:scr.root
      ~pos:(Geom.point abs.x abs.y);
    Server.remove_from_save_set ctx.server ctx.conn client.cwin
  end;
  (match client.deco with
  | Some deco -> Wobj.unrealize deco
  | None -> ());
  client.deco <- None;
  client.client_panel <- None;
  client.frame <- client.cwin

let redecorate (ctx : Ctx.t) (client : Ctx.client) =
  (let tracer = Server.tracer ctx.server in
   if Tracing.enabled tracer then
     Tracing.span tracer "decoration.redraw"
       ~attrs:[ ("client", string_of_int (Xid.to_int client.cwin)) ]
   else fun f -> f ())
  @@ fun () ->
  let parent_geom = Server.geometry ctx.server client.frame in
  let pos = Geom.point parent_geom.x parent_geom.y in
  (* Park the client on the real root while rebuilding. *)
  let scr = Ctx.screen ctx client.screen in
  let abs = Server.root_geometry ctx.server client.cwin in
  (match client.deco with
  | Some _ ->
      Server.reparent_window ctx.server ctx.conn client.cwin ~new_parent:scr.root
        ~pos:(Geom.point abs.x abs.y)
  | None -> ());
  teardown ctx client ~to_root:false;
  build ctx client ~at:pos

(* The resize/move/retitle paths race with client destroys: a BadWindow
   from a dying client is absorbed here rather than unwinding the event
   loop; {!Wm} sweeps the corpse afterwards. *)
let client_resized (ctx : Ctx.t) (client : Ctx.client) (w, h) =
  Xguard.run ctx ~where:"decoration.resize" @@ fun () ->
  (let tracer = Server.tracer ctx.server in
   if Tracing.enabled tracer then
     Tracing.span tracer "decoration.resize"
       ~attrs:[ ("client", string_of_int (Xid.to_int client.cwin)) ]
   else fun f -> f ())
  @@ fun () ->
  let w, h = Icccm.constrain_size (Icccm.read_size_hints ctx client.cwin) (w, h) in
  match (client.deco, client.client_panel) with
  | Some deco, Some panel ->
      Wobj.set_external_size panel (Some (w, h));
      Wobj.relayout deco;
      Server.move_resize ctx.server ctx.conn client.cwin { Geom.x = 0; y = 0; w; h };
      propagate_shape ctx client;
      Icccm.send_synthetic_configure ctx client
  | _ ->
      let geom = Server.geometry ctx.server client.cwin in
      Server.move_resize ctx.server ctx.conn client.cwin { geom with Geom.w = w; h };
      Icccm.send_synthetic_configure ctx client

let move_frame (ctx : Ctx.t) (client : Ctx.client) pos =
  Xguard.run ctx ~where:"decoration.move" @@ fun () ->
  let geom = Server.geometry ctx.server client.frame in
  Server.move_resize ctx.server ctx.conn client.frame
    { geom with Geom.x = pos.Geom.px; y = pos.Geom.py };
  Icccm.send_synthetic_configure ctx client

let update_name (ctx : Ctx.t) (client : Ctx.client) =
  if ctx.tier <> Ctx.Tier_full then
    (* Degraded: skip the title repaint; the stale label costs nothing and
       the next PropertyNotify after recovery repaints it. *)
    Swm_xlib.Metrics.incr
      (Swm_xlib.Metrics.counter
         (Server.metrics ctx.server)
         "governor.redraws_skipped")
  else
  Xguard.run ctx ~where:"decoration.name" @@ fun () ->
  client.wm_name <- Icccm.read_name ctx client.cwin;
  match client.deco with
  | None -> ()
  | Some deco -> (
      match Wobj.find_descendant deco ~name:"name" with
      | Some name_obj -> Wobj.set_label name_obj client.wm_name
      | None -> ())

let frame_of_object (ctx : Ctx.t) obj =
  let rec top o = match Wobj.parent o with Some p -> top p | None -> o in
  let root_obj = top obj in
  if Wobj.is_realized root_obj then Xid.Tbl.find_opt ctx.frames (Wobj.window root_obj)
  else None
