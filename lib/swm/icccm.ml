module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
module Event = Swm_xlib.Event
module Xid = Swm_xlib.Xid

type placement =
  | Place_absolute of Geom.point
  | Place_viewport of Geom.point
  | Place_default

let read_placement (ctx : Ctx.t) win =
  let geom = Server.geometry ctx.server win in
  match Server.get_property_atom ctx.server win ctx.atoms.a_wm_normal_hints with
  | Some (Prop.Size_hints h) when h.us_position -> Place_absolute (Geom.point geom.x geom.y)
  | Some (Prop.Size_hints h) when h.p_position -> Place_viewport (Geom.point geom.x geom.y)
  | Some _ | None -> Place_default

let read_class (ctx : Ctx.t) win =
  match Server.get_property_atom ctx.server win ctx.atoms.a_wm_class with
  | Some (Prop.Wm_class { instance; class_ }) -> (instance, class_)
  | Some _ | None -> ("unknown", "Unknown")

let read_string_atom ctx win atom ~default =
  match Server.get_property_atom ctx.Ctx.server win atom with
  | Some (Prop.String s) -> s
  | Some _ | None -> default

let read_name ctx win =
  read_string_atom ctx win ctx.Ctx.atoms.a_wm_name ~default:"untitled"

let read_icon_name ctx win =
  read_string_atom ctx win ctx.Ctx.atoms.a_wm_icon_name
    ~default:(read_name ctx win)

let read_command (ctx : Ctx.t) win =
  match Server.get_property_atom ctx.server win ctx.atoms.a_wm_command with
  | Some (Prop.String s) -> Some s
  | Some (Prop.String_list argv) -> Some (String.concat " " argv)
  | Some _ | None -> None

let read_client_machine (ctx : Ctx.t) win =
  match Server.get_property_atom ctx.server win ctx.atoms.a_wm_client_machine with
  | Some (Prop.String s) -> Some s
  | Some _ | None -> None

let read_size_hints (ctx : Ctx.t) win =
  match Server.get_property_atom ctx.server win ctx.atoms.a_wm_normal_hints with
  | Some (Prop.Size_hints h) -> h
  | Some _ | None -> Prop.default_size_hints

let constrain_size (hints : Prop.size_hints) (w, h) =
  let clamp v lo hi = max lo (min v hi) in
  let min_w, min_h = Option.value hints.min_size ~default:(1, 1) in
  let max_w, max_h = Option.value hints.max_size ~default:(max_int, max_int) in
  let w = clamp w min_w max_w and h = clamp h min_h max_h in
  match hints.resize_inc with
  | Some (iw, ih) when iw > 0 && ih > 0 ->
      (* Snap down to the increment grid based at the minimum size. *)
      let snap v base inc = base + ((v - base) / inc * inc) in
      (max min_w (snap w min_w iw), max min_h (snap h min_h ih))
  | Some _ | None -> (w, h)

let read_wm_hints (ctx : Ctx.t) win =
  match Server.get_property_atom ctx.server win ctx.atoms.a_wm_hints with
  | Some (Prop.Wm_hints h) -> h
  | Some _ | None -> Prop.default_wm_hints

let set_wm_state (ctx : Ctx.t) (client : Ctx.client) state =
  client.state <- state;
  Server.change_property ctx.server ctx.conn client.cwin ~name:Prop.wm_state_name
    (Prop.Wm_state_value { state; icon = Xid.none })

let set_swm_root (ctx : Ctx.t) win ~root =
  let current = Server.get_property_atom ctx.server win ctx.atoms.a_swm_root in
  match current with
  | Some (Prop.Window r) when Xid.equal r root -> ()
  | Some _ | None ->
      Server.change_property ctx.server ctx.conn win ~name:Prop.swm_root
        (Prop.Window root)

let send_synthetic_configure (ctx : Ctx.t) (client : Ctx.client) =
  let effective_root =
    match Server.get_property_atom ctx.server client.cwin ctx.atoms.a_swm_root with
    | Some (Prop.Window r) when Server.window_exists ctx.server r -> r
    | Some _ | None -> (Ctx.screen ctx client.screen).root
  in
  let pos =
    Server.translate_coordinates ctx.server ~src:client.cwin ~dst:effective_root
      (Geom.point 0 0)
  in
  let geom = Server.geometry ctx.server client.cwin in
  Server.send_event ctx.server ctx.conn ~dest:client.cwin
    (Event.Configure_notify
       {
         window = client.cwin;
         geom = { geom with Geom.x = pos.px; y = pos.py };
         border = Server.border_width ctx.server client.cwin;
         synthetic = true;
       })
