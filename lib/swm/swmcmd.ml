module Server = Swm_xlib.Server
module Prop = Swm_xlib.Prop
module Metrics = Swm_xlib.Metrics
module Tracing = Swm_xlib.Tracing

let send server conn ~screen command =
  let root = Server.root server ~screen in
  Server.append_string_property server conn root ~name:Prop.swm_command command

let read_result server ~screen =
  let root = Server.root server ~screen in
  match Server.get_property server root ~name:Prop.swm_result with
  | Some (Prop.String text) -> Some text
  | Some _ | None -> None

let handle_property_change (ctx : Ctx.t) ~screen =
  let root = (Ctx.screen ctx screen).root in
  match Server.get_property ctx.server root ~name:Prop.swm_command with
  | Some (Prop.String text) ->
      Server.delete_property ctx.server ctx.conn root ~name:Prop.swm_command;
      let inv = Functions.invocation ~screen () in
      List.iter
        (fun line ->
          let line = String.trim line in
          if line <> "" then begin
            Swm_xlib.Recorder.record
              (Server.recorder ctx.server)
              ~kind:"swmcmd"
              ~attrs:[ ("screen", string_of_int screen) ]
              line;
            (* Per-line guard: one line hitting a freshly-destroyed window
               must not abort the rest of the batch. *)
            match
              Xguard.protect ctx ~where:"swmcmd"
                (fun () -> Functions.execute_string ctx inv line)
            with
            | Some (Ok ()) | None -> ()
            | Some (Error msg) ->
                (* A bad line must not vanish silently: count it and leave a
                   trace breadcrumb carrying the offending text. *)
                let metrics = Server.metrics ctx.server in
                Metrics.incr (Metrics.counter metrics "swmcmd.errors");
                Ctx.log ctx "swmcmd: bad line %S: %s" line msg;
                let tracer = Server.tracer ctx.server in
                if Tracing.enabled tracer then
                  Tracing.instant tracer "swmcmd.error"
                    ~attrs:[ ("line", line); ("error", msg) ]
          end)
        (String.split_on_char '\n' text)
  | Some _ | None -> ()
