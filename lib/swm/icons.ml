module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Wobj = Swm_oi.Wobj
module Panel_spec = Swm_oi.Panel_spec

let default_icon_image = "xlogo32"

(* Cascade slots for icons without a requested position. *)
let next_cascade_slot (ctx : Ctx.t) ~screen =
  let taken =
    List.filter_map
      (fun (c : Ctx.client) ->
        if c.screen = screen && c.state = Prop.Iconic then c.icon_pos else None)
      (Ctx.all_clients ctx)
  in
  let slot = 72 in
  let sw, _ = Server.screen_size ctx.server ~screen in
  let cols = max 1 (sw / slot) in
  let rec find i =
    let candidate = Geom.point (i mod cols * slot + 8) (i / cols * slot + 8) in
    if List.exists (fun p -> p = candidate) taken then find (i + 1) else candidate
  in
  find 0

let icon_position (ctx : Ctx.t) (client : Ctx.client) =
  match client.icon_pos with
  | Some pos -> pos
  | None -> (
      match (Icccm.read_wm_hints ctx client.cwin).icon_position with
      | Some pos -> pos
      | None -> next_cascade_slot ctx ~screen:client.screen)

let icon_panel_name (ctx : Ctx.t) (client : Ctx.client) =
  match
    Config.query_client ctx.cfg ~screen:client.screen (Ctx.client_scope client)
      "iconPanel"
  with
  | Some name -> String.trim name
  | None -> "Xicon"

let holder_for (ctx : Ctx.t) (client : Ctx.client) =
  let scr = Ctx.screen ctx client.screen in
  List.find_opt
    (fun (h : Ctx.holder) ->
      h.holder_classes = [] || List.mem client.class_ h.holder_classes)
    scr.holders

let build_icon (ctx : Ctx.t) (client : Ctx.client) =
  let scr = Ctx.screen ctx client.screen in
  let lookup name = Config.panel_definition ctx.cfg ~screen:client.screen name in
  match
    Panel_spec.build scr.tk ~lookup ~kind:Wobj.Panel
      ~name:(icon_panel_name ctx client)
  with
  | Error _ -> None
  | Ok icon ->
      (match Wobj.find_descendant icon ~name:"iconname" with
      | Some obj -> Wobj.set_label obj (Icccm.read_icon_name ctx client.cwin)
      | None -> ());
      (match Wobj.find_descendant icon ~name:"iconimage" with
      | Some obj ->
          (* The client's icon pixmap, else the xlogo32 default; stock
             bitmaps render as real glyphs, unknown names as [name]. *)
          let hints = Icccm.read_wm_hints ctx client.cwin in
          let pixmap = Option.value hints.icon_pixmap ~default:default_icon_image in
          Wobj.set_attr obj "image" pixmap
      | None -> ());
      Some icon

(* The client's own icon window, reparented into the iconimage button if the
   client supplied one (paper §4.1.2). *)
let adopt_icon_window (ctx : Ctx.t) (client : Ctx.client) icon =
  match (Icccm.read_wm_hints ctx client.cwin).icon_window with
  | Some iwin when Server.window_exists ctx.server iwin -> (
      match Wobj.find_descendant icon ~name:"iconimage" with
      | Some obj when Wobj.is_realized obj ->
          Wobj.set_label obj "";
          Server.reparent_window ctx.server ctx.conn iwin
            ~new_parent:(Wobj.window obj) ~pos:(Geom.point 0 0);
          Server.map_window ctx.server ctx.conn iwin
      | Some _ | None -> ())
  | Some _ | None -> ()

let holder_relayout (holder : Ctx.holder) =
  match holder.holder_obj with
  | None -> ()
  | Some obj when not (Wobj.is_realized obj) -> ()
  | Some obj ->
      Wobj.relayout obj;
      (match holder.holder_fixed_size with
      | Some (w, h) ->
          (* A fixed-size holder is a scrolling window: clamp the window
             back to its size and shift the content by the scroll offset. *)
          let tk = Wobj.toolkit obj in
          let server = Wobj.toolkit_server tk and conn = Wobj.toolkit_conn tk in
          let win = Wobj.window obj in
          let geom = Server.geometry server win in
          if geom.w <> w || geom.h <> h then
            Server.move_resize server conn win { geom with Geom.w = w; h };
          (* Shift each icon by the scroll offset; [Wobj.geometry] still
             holds the unscrolled layout position. *)
          List.iter
            (fun icon_obj ->
              if Wobj.is_realized icon_obj then begin
                let laid = Wobj.geometry icon_obj in
                Server.move_resize server conn (Wobj.window icon_obj)
                  { laid with Geom.y = laid.y - holder.holder_scroll }
              end)
            (Wobj.children obj)
      | None -> ());
      if holder.hide_when_empty then
        if holder.holder_clients = [] then Wobj.unmap obj else Wobj.map obj

let scroll_holder (ctx : Ctx.t) (holder : Ctx.holder) delta =
  ignore ctx;
  (match holder.holder_fixed_size with
  | Some _ ->
      let content_height =
        match holder.holder_obj with
        | Some obj ->
            List.fold_left
              (fun acc child ->
                if Wobj.is_realized child then
                  let g = Wobj.geometry child in
                  max acc (g.Geom.y + g.Geom.h)
                else acc)
              0 (Wobj.children obj)
        | None -> 0
      in
      let visible = match holder.holder_fixed_size with Some (_, h) -> h | None -> 0 in
      holder.holder_scroll <-
        max 0 (min (holder.holder_scroll + delta) (max 0 (content_height - visible)))
  | None -> ());
  holder_relayout holder

let find_holder (ctx : Ctx.t) ~screen name =
  List.find_opt
    (fun (h : Ctx.holder) -> String.equal h.Ctx.holder_name name)
    (Ctx.screen ctx screen).holders

let place_icon (ctx : Ctx.t) (client : Ctx.client) icon =
  match holder_for ctx client with
  | Some holder -> (
      client.holder <- Some holder;
      holder.holder_clients <- holder.holder_clients @ [ client ];
      match holder.holder_obj with
      | Some hobj when Wobj.is_realized hobj ->
          let row = List.length holder.holder_clients - 1 in
          Wobj.add_child hobj icon
            ~position:(Geom.parse_exn (Printf.sprintf "+0+%d" row));
          Wobj.realize icon ~parent_window:(Wobj.window hobj) ~at:(Geom.point 0 0);
          Wobj.map icon;
          holder_relayout holder
      | Some _ | None -> ())
  | None ->
      let pos = icon_position ctx client in
      client.icon_pos <- Some pos;
      let parent = Vdesk.effective_parent ctx ~screen:client.screen ~sticky:false in
      Wobj.realize icon ~parent_window:parent
        ~at:(Geom.point pos.Geom.px pos.Geom.py);
      Wobj.map icon

(* Iconify/deiconify touch the client window, its frame and any client-set
   icon window — all of which a racing client can destroy mid-operation.
   Absorb BadWindow/BadAccess at this boundary (twm's "died mid-reparent"
   race); {!Wm.sweep_dead} reclaims the entry afterwards. *)
let iconify (ctx : Ctx.t) (client : Ctx.client) =
  Xguard.run ctx ~where:"icons.iconify" @@ fun () ->
  if client.state <> Prop.Iconic then begin
    Server.unmap_window ctx.server ctx.conn client.frame;
    (match build_icon ctx client with
    | None -> ()
    | Some icon ->
        client.icon_obj <- Some icon;
        place_icon ctx client icon;
        adopt_icon_window ctx client icon);
    Icccm.set_wm_state ctx client Prop.Iconic
  end

let deiconify (ctx : Ctx.t) (client : Ctx.client) =
  Xguard.run ctx ~where:"icons.deiconify" @@ fun () ->
  if client.state = Prop.Iconic then begin
    (match client.icon_obj with
    | Some icon ->
        (* Give the client its icon window back before tearing down. *)
        (match (Icccm.read_wm_hints ctx client.cwin).icon_window with
        | Some iwin when Server.window_exists ctx.server iwin ->
            let scr = Ctx.screen ctx client.screen in
            Server.unmap_window ctx.server ctx.conn iwin;
            Server.reparent_window ctx.server ctx.conn iwin ~new_parent:scr.root
              ~pos:(Geom.point 0 0)
        | Some _ | None -> ());
        if Wobj.is_realized icon && Server.window_exists ctx.server (Wobj.window icon)
        then begin
          (* The icon may have been moved interactively: ask the server. *)
          let geom = Server.geometry ctx.server (Wobj.window icon) in
          if client.holder = None then
            client.icon_pos <- Some (Geom.point geom.Geom.x geom.Geom.y)
        end;
        (match client.holder with
        | Some holder ->
            holder.holder_clients <-
              List.filter (fun c -> c != client) holder.holder_clients;
            (match holder.holder_obj with
            | Some hobj -> Wobj.remove_child hobj icon
            | None -> ());
            Wobj.unrealize icon;
            holder_relayout holder;
            client.holder <- None
        | None -> Wobj.unrealize icon);
        client.icon_obj <- None
    | None -> ());
    Server.map_window ctx.server ctx.conn client.frame;
    Server.raise_window ctx.server ctx.conn client.frame;
    Icccm.set_wm_state ctx client Prop.Normal
  end

let client_of_icon_object (ctx : Ctx.t) obj =
  let rec top o = match Wobj.parent o with Some p -> top p | None -> o in
  let root_obj = top obj in
  List.find_opt
    (fun (c : Ctx.client) ->
      match c.icon_obj with
      | Some icon -> icon == root_obj || icon == obj
      | None -> false)
    (Ctx.all_clients ctx)

(* -------- holders -------- *)

let split_words s =
  String.split_on_char ' ' s |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let create_holders (ctx : Ctx.t) ~screen =
  match Config.query1 ctx.cfg ~screen "iconHolders" with
  | None -> ()
  | Some names ->
      let scr = Ctx.screen ctx screen in
      List.iter
        (fun name ->
          let holder_attr attr =
            Config.query ctx.cfg ~screen
              ~names:[ "iconHolder"; name; attr ]
              ~classes:[ "IconHolder"; String.capitalize_ascii name;
                         String.capitalize_ascii attr ]
          in
          let classes =
            match holder_attr "classes" with
            | Some v -> split_words v
            | None -> []
          in
          let bool_attr attr =
            match holder_attr attr with
            | Some v -> (
                match String.lowercase_ascii (String.trim v) with
                | "true" | "yes" | "on" | "1" -> true
                | _ -> false)
            | None -> false
          in
          let fixed_size =
            match holder_attr "size" with
            | Some text -> (
                match Geom.parse (String.trim text) with
                | Ok { Geom.width = Some w; height = Some h; _ } -> Some (w, h)
                | Ok _ | Error _ -> None)
            | None -> None
          in
          let holder =
            {
              Ctx.holder_name = name;
              holder_screen = screen;
              holder_obj = None;
              holder_clients = [];
              holder_classes = classes;
              hide_when_empty = bool_attr "hideWhenEmpty";
              size_to_fit = bool_attr "sizeToFit";
              holder_fixed_size = fixed_size;
              holder_scroll = 0;
            }
          in
          let obj = Wobj.make scr.tk Wobj.Panel ~name in
          let pos =
            match holder_attr "geometry" with
            | Some g -> (
                match Geom.parse g with
                | Ok spec ->
                    let sw, sh = Server.screen_size ctx.server ~screen in
                    let r =
                      Geom.resolve spec ~default:(Geom.rect 0 0 80 40)
                        ~within:(Geom.rect 0 0 sw sh)
                    in
                    Geom.point r.x r.y
                | Error _ -> Geom.point 0 0)
            | None -> Geom.point 0 0
          in
          Wobj.realize obj ~parent_window:scr.root ~at:pos;
          if not holder.hide_when_empty then Wobj.map obj;
          holder.holder_obj <- Some obj;
          scr.holders <- scr.holders @ [ holder ])
        (split_words names)

(* -------- root icons -------- *)

let create_root_icons (ctx : Ctx.t) ~screen =
  match Config.query1 ctx.cfg ~screen "rootIcons" with
  | None -> ()
  | Some names ->
      let scr = Ctx.screen ctx screen in
      let lookup name = Config.panel_definition ctx.cfg ~screen name in
      List.iteri
        (fun i name ->
          match Panel_spec.build scr.tk ~lookup ~kind:Wobj.Panel ~name with
          | Error _ -> ()
          | Ok icon ->
              let parent = Vdesk.effective_parent ctx ~screen ~sticky:false in
              Wobj.realize icon ~parent_window:parent
                ~at:(Geom.point (8 + (i * 80)) 8);
              Wobj.map icon;
              scr.root_icons <- scr.root_icons @ [ icon ])
        (split_words names)
