module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Wobj = Swm_oi.Wobj
module Menu = Swm_oi.Menu
module Panel_spec = Swm_oi.Panel_spec
module Metrics = Swm_xlib.Metrics
module Event = Swm_xlib.Event
module Tracing = Swm_xlib.Tracing
module Recorder = Swm_xlib.Recorder
module Replay = Swm_xlib.Replay
module Profile = Swm_xlib.Profile

type invocation = {
  inv_obj : Wobj.t option;
  inv_client : Ctx.client option;
  inv_screen : int;
}

let invocation ?obj ?client ~screen () =
  { inv_obj = obj; inv_client = client; inv_screen = screen }

(* Functions whose argument is data, not a window-selection mode.
   f.metrics lives here (not with the nullaries) so it can take an optional
   format argument; a bare "f.metrics" still works, the data path just sees
   no argument. *)
let data_arg_functions =
  [
    "f.warpvertical"; "f.warphorizontal"; "f.pan"; "f.panto"; "f.desktop";
    "f.menu"; "f.exec"; "f.places"; "f.autosave"; "f.resizedesktop"; "f.setlabel";
    "f.setbindings"; "f.warpto"; "f.scrollholder"; "f.function"; "f.trace";
    "f.metrics"; "f.flightdump"; "f.replay"; "f.profile"; "f.flame";
    "f.fate"; "f.waterfall";
  ]

(* f.replay must start a fresh WM, which lives above this module in the
   dependency order; Wm installs the real runner at link time. *)
let replay_runner : (Replay.report -> Replay.outcome) ref =
  ref (fun _ ->
      Replay.Crashed
        { op_index = 0; op = "(none)"; error = "no replay runner installed" })

let set_replay_runner f = replay_runner := f

let window_functions =
  [
    "f.raise"; "f.lower"; "f.raiselower"; "f.iconify"; "f.deiconify"; "f.move";
    "f.resize"; "f.zoom"; "f.save"; "f.stick"; "f.unstick"; "f.delete"; "f.focus";
    "f.identify";
  ]

let nullary_functions =
  [ "f.quit"; "f.restart"; "f.refresh"; "f.unpostmenu"; "f.circulateup";
    "f.circulatedown"; "f.slowlog"; "f.health"; "f.stats" ]

let function_names = window_functions @ data_arg_functions @ nullary_functions

let canon name = String.lowercase_ascii name
let known name = List.mem (canon name) function_names

(* -------- target resolution -------- *)

let rec client_of_window_or_ancestor (ctx : Ctx.t) win =
  if Xid.is_none win then None
  else
    match Ctx.client_of_window ctx win with
    | Some _ as found -> found
    | None ->
        if Server.window_exists ctx.server win then
          client_of_window_or_ancestor ctx (Server.parent_of ctx.server win)
        else None

let client_under_pointer (ctx : Ctx.t) =
  client_of_window_or_ancestor ctx (Server.window_at_pointer ctx.server)

type targets = Clients of Ctx.client list | Needs_prompt

let resolve_targets (ctx : Ctx.t) inv (f : Bindings.func_call) =
  match f.farg with
  | None -> (
      match inv.inv_client with
      | Some c -> Clients [ c ]
      | None -> Needs_prompt)
  | Some "multiple" ->
      Clients
        (List.filter (fun (c : Ctx.client) -> ctx.confirm c.wm_name)
           (Ctx.all_clients ctx))
  | Some "#$" -> (
      match client_under_pointer ctx with
      | Some c -> Clients [ c ]
      | None -> Clients [])
  | Some arg when String.length arg > 1 && arg.[0] = '#' -> (
      let id_text = String.sub arg 1 (String.length arg - 1) in
      match int_of_string_opt id_text with
      | Some id -> (
          match Ctx.client_of_window ctx (Xid.of_int id) with
          | Some c -> Clients [ c ]
          | None -> Clients [])
      | None -> Clients [])
  | Some class_arg -> Clients (Ctx.clients_of_class ctx class_arg)

(* -------- menus -------- *)

let find_menu (ctx : Ctx.t) ~screen name =
  let scr = Ctx.screen ctx screen in
  match List.assoc_opt name scr.menus with
  | Some menu -> Some menu
  | None -> (
      let lookup n =
        match Config.menu_definition ctx.cfg ~screen n with
        | Some _ as def -> def
        | None -> Config.panel_definition ctx.cfg ~screen n
      in
      match Panel_spec.build scr.tk ~lookup ~kind:Wobj.Menu ~name with
      | Error _ -> None
      | Ok obj ->
          let menu = Menu.create scr.tk obj in
          scr.menus <- (name, menu) :: scr.menus;
          Some menu)

let unpost_menu (ctx : Ctx.t) ~screen =
  let scr = Ctx.screen ctx screen in
  match scr.active_menu with
  | Some (menu, _) ->
      Menu.unpost menu;
      scr.active_menu <- None
  | None -> ()

let post_menu (ctx : Ctx.t) inv name =
  let screen = inv.inv_screen in
  unpost_menu ctx ~screen;
  match find_menu ctx ~screen name with
  | None -> ()
  | Some menu ->
      let pos = Server.pointer_pos ctx.server in
      Menu.post menu ~at:pos;
      (Ctx.screen ctx screen).active_menu <- Some (menu, inv.inv_client)

(* -------- zoom -------- *)

let save_geometry (ctx : Ctx.t) (client : Ctx.client) =
  let cgeom = Server.geometry ctx.server client.cwin in
  client.zoom_saved <-
    Some (Server.geometry ctx.server client.frame, (cgeom.w, cgeom.h))

(* f.save followed by f.zoom expands; f.zoom on an already-expanded window
   (the frame no longer matches the save) restores. *)
let zoom (ctx : Ctx.t) (client : Ctx.client) =
  match client.zoom_saved with
  | Some (saved_frame, (cw, ch))
    when not (Geom.rect_equal saved_frame (Server.geometry ctx.server client.frame)) ->
      Decoration.client_resized ctx client (cw, ch);
      Server.move_resize ctx.server ctx.conn client.frame saved_frame;
      client.zoom_saved <- None;
      Icccm.send_synthetic_configure ctx client
  | Some _ | None ->
      if client.zoom_saved = None then save_geometry ctx client;
      let fgeom = Server.geometry ctx.server client.frame in
      let sw, sh = Server.screen_size ctx.server ~screen:client.screen in
      let origin = Geom.point 0 0 in
      (* Zoom fills the screen: viewport-relative origin; inside the desktop
         that is the viewport's top-left. *)
      let vp = Vdesk.viewport ctx ~screen:client.screen in
      let origin = if client.sticky then origin else Geom.point vp.x vp.y in
      let cgeom = Server.geometry ctx.server client.cwin in
      let deco_w = fgeom.w - cgeom.w and deco_h = fgeom.h - cgeom.h in
      Decoration.client_resized ctx client
        (max 16 (sw - deco_w - 2), max 16 (sh - deco_h - 2));
      let fgeom' = Server.geometry ctx.server client.frame in
      Server.move_resize ctx.server ctx.conn client.frame
        { fgeom' with Geom.x = origin.px; y = origin.py }

(* -------- stickiness -------- *)

let set_sticky_and_redecorate (ctx : Ctx.t) (client : Ctx.client) sticky =
  if client.sticky <> sticky then begin
    let before = Decoration.decoration_name ctx client in
    Vdesk.set_sticky ctx client sticky;
    let after = Decoration.decoration_name ctx client in
    if before <> after then Decoration.redecorate ctx client;
    Panner.refresh ctx ~screen:client.screen
  end

(* -------- session -------- *)

let places_hints (ctx : Ctx.t) =
  List.filter_map
    (fun (client : Ctx.client) ->
      if Panner.is_panner ctx client then None
      else
        match Icccm.read_command ctx client.cwin with
        | None -> None
        | Some command ->
            let fgeom = Server.geometry ctx.server client.frame in
            let cgeom = Server.geometry ctx.server client.cwin in
            Some
              {
                Session.geometry = Geom.rect fgeom.x fgeom.y cgeom.w cgeom.h;
                icon_geometry = client.icon_pos;
                state = (match client.state with Prop.Withdrawn -> Prop.Normal | s -> s);
                sticky = client.sticky;
                command;
                host = Icccm.read_client_machine ctx client.cwin;
              })
    (List.sort
       (fun (a : Ctx.client) b -> Xid.compare a.cwin b.cwin)
       (Ctx.all_clients ctx))

let places_content (ctx : Ctx.t) =
  let remote_format = Config.query1 ctx.cfg ~screen:0 "remoteStartFormat" in
  let content =
    Session.places_file ?remote_format ~display:ctx.display ~local_host:ctx.host
      (places_hints ctx)
  in
  ctx.last_places <- Some content;
  content

let places (ctx : Ctx.t) ~file_arg =
  let content = places_content ctx in
  let path =
    match file_arg with
    | Some p when p <> "" -> Some p
    | Some _ | None -> Config.query1 ctx.cfg ~screen:0 "placesFile"
  in
  match path with
  | None -> ()
  | Some path -> Session.write_atomic ~path content

(* The periodic crash-safety snapshot: same content as f.places, always
   written atomically, to the autosaveFile (or the explicit argument). *)
let autosave (ctx : Ctx.t) ~file_arg =
  let path =
    match file_arg with
    | Some p when p <> "" -> Some p
    | Some _ | None -> ctx.autosave_path
  in
  match path with
  | None -> ()
  | Some path ->
      let content = places_content ctx in
      Session.write_atomic ~path content;
      ctx.autosave_pending <- 0;
      Metrics.incr (Metrics.counter (Server.metrics ctx.server) "session.autosaves");
      let tracer = Server.tracer ctx.server in
      if Tracing.enabled tracer then
        Tracing.instant tracer "session.autosave" ~attrs:[ ("path", path) ]

(* -------- single-function execution on one client -------- *)

let run_on_client (ctx : Ctx.t) name (client : Ctx.client) =
  Ctx.log ctx "%s on %s (win=%a)" name client.instance Xid.pp client.cwin;
  match name with
  | "f.raise" ->
      Server.raise_window ctx.server ctx.conn client.frame;
      Panner.refresh ctx ~screen:client.screen
  | "f.lower" ->
      Server.lower_window ctx.server ctx.conn client.frame;
      Panner.refresh ctx ~screen:client.screen
  | "f.raiselower" ->
      let parent = Server.parent_of ctx.server client.frame in
      let on_top =
        match List.rev (Server.children_of ctx.server parent) with
        | top :: _ -> Xid.equal top client.frame
        | [] -> false
      in
      if on_top then Server.lower_window ctx.server ctx.conn client.frame
      else Server.raise_window ctx.server ctx.conn client.frame;
      Panner.refresh ctx ~screen:client.screen
  | "f.iconify" ->
      Icons.iconify ctx client;
      Panner.refresh ctx ~screen:client.screen
  | "f.deiconify" ->
      Icons.deiconify ctx client;
      Panner.refresh ctx ~screen:client.screen
  | "f.zoom" -> zoom ctx client
  | "f.save" -> if client.zoom_saved = None then save_geometry ctx client
  | "f.stick" -> set_sticky_and_redecorate ctx client (not client.sticky)
  | "f.unstick" -> set_sticky_and_redecorate ctx client false
  | "f.delete" -> (
      (* ICCCM: clients speaking WM_DELETE_WINDOW are asked politely;
         everything else is destroyed. *)
      if Server.window_exists ctx.server client.cwin then
        match Server.get_property ctx.server client.cwin ~name:Prop.wm_protocols with
        | Some (Prop.Atom_list protocols)
          when List.mem Prop.wm_delete_window protocols ->
            Server.send_event ctx.server ctx.conn ~dest:client.cwin
              (Swm_xlib.Event.Client_message
                 {
                   window = client.cwin;
                   name = Prop.wm_protocols;
                   data = Prop.wm_delete_window;
                 })
        | Some _ | None -> Server.destroy_window ctx.server client.cwin)
  | "f.focus" -> Server.set_input_focus ctx.server ctx.conn client.cwin
  | "f.identify" ->
      (* twm-style window information popup at the pointer; dismissed by
         the next button press. *)
      if
        (not (Xid.is_none ctx.identify_win))
        && Server.window_exists ctx.server ctx.identify_win
      then Server.destroy_window ctx.server ctx.identify_win;
      let cgeom = Server.geometry ctx.server client.cwin in
      let fgeom = Server.geometry ctx.server client.frame in
      let info =
        Printf.sprintf "%s.%s %dx%d%+d%+d %s%s" client.instance client.class_
          cgeom.w cgeom.h fgeom.x fgeom.y
          (Prop.wm_state_to_string client.state)
          (if client.sticky then " sticky" else "")
      in
      let pointer = Server.pointer_pos ctx.server in
      let scr = Ctx.screen ctx client.screen in
      let popup =
        Server.create_window ctx.server ctx.conn ~parent:scr.root
          ~geom:
            (Geom.rect pointer.px pointer.py ((String.length info * 8) + 8) 24)
          ~border:1 ~override_redirect:true ~background:' ' ~label:info ()
      in
      Server.raise_window ctx.server ctx.conn popup;
      Server.map_window ctx.server ctx.conn popup;
      ctx.identify_win <- popup
  | "f.move" ->
      let pointer = Server.pointer_pos ctx.server in
      (* Offset measured from the frame's border corner, which is what the
         geometry refers to. *)
      let abs = Server.root_geometry ctx.server client.frame in
      let origin = Geom.point abs.x abs.y in
      let opaque =
        match Config.query1 ctx.cfg ~screen:client.screen "opaqueMove" with
        | Some v -> (
            match String.lowercase_ascii (String.trim v) with
            | "false" | "no" | "off" | "0" -> false
            | _ -> true)
        | None -> true
      in
      let m_outline =
        if opaque then Xid.none
        else begin
          (* A border-only outline tracks the pointer; the window itself
             moves only on release (paper §6.1's "full size outline"). *)
          let fgeom = Server.geometry ctx.server client.frame in
          let parent = Server.parent_of ctx.server client.frame in
          let outline =
            Server.create_window ctx.server ctx.conn ~parent ~geom:fgeom ~border:1
              ~override_redirect:true ()
          in
          Server.raise_window ctx.server ctx.conn outline;
          Server.map_window ctx.server ctx.conn outline;
          outline
        end
      in
      ctx.mode <-
        Ctx.Moving
          {
            m_client = client;
            grab_offset = Geom.point (pointer.px - origin.px) (pointer.py - origin.py);
            m_outline;
          };
      Server.grab_pointer ctx.server ctx.conn client.frame
  | "f.resize" ->
      let cgeom = Server.geometry ctx.server client.cwin in
      ctx.mode <-
        Ctx.Resizing
          {
            r_client = client;
            r_start_client = (cgeom.w, cgeom.h);
            r_pointer = Server.pointer_pos ctx.server;
            r_dir = Geom.point 1 1;
            r_frame0 = Server.geometry ctx.server client.frame;
          };
      Server.grab_pointer ctx.server ctx.conn client.frame
  | _ -> ()

let split_first_comma = function
  | None -> None
  | Some arg -> (
      match String.index_opt arg ',' with
      | Some i ->
          Some
            ( String.trim (String.sub arg 0 i),
              String.sub arg (i + 1) (String.length arg - i - 1) )
      | None -> None)

(* Rotate the stacking of managed frames under the effective parent, like
   XCirculateSubwindows. *)
let circulate (ctx : Ctx.t) ~screen direction =
  let parent = Vdesk.effective_parent ctx ~screen ~sticky:false in
  let frames =
    List.filter
      (fun w -> Swm_xlib.Xid.Tbl.mem ctx.frames w)
      (Server.children_of ctx.server parent)
  in
  (match (direction, frames) with
  | `Up, bottom :: _ :: _ -> Server.raise_window ctx.server ctx.conn bottom
  | `Down, _ :: _ :: _ -> (
      match List.rev frames with
      | top :: _ -> Server.lower_window ctx.server ctx.conn top
      | [] -> ())
  | (`Up | `Down), ([] | [ _ ])  -> ());
  Panner.refresh ctx ~screen

(* -------- runtime introspection (f.metrics / f.trace / f.slowlog) -------- *)

(* Replies travel the swmcmd channel in reverse: the result text is written
   to the SWM_RESULT root property, where the sending client reads it back
   (paper §4.3 run in both directions). *)
let set_result (ctx : Ctx.t) ~screen text =
  let scr = Ctx.screen ctx screen in
  Server.change_property ctx.server ctx.conn scr.root ~name:Prop.swm_result
    (Prop.String text)

let trace_control (ctx : Ctx.t) ~screen arg =
  let tracer = Server.tracer ctx.server in
  match Option.map (fun a -> String.lowercase_ascii (String.trim a)) arg with
  | Some "start" ->
      Tracing.start tracer;
      set_result ctx ~screen "{\"tracing\":\"started\"}"
  | Some "stop" ->
      Tracing.stop tracer;
      set_result ctx ~screen "{\"tracing\":\"stopped\"}"
  | Some "dump" -> set_result ctx ~screen (Tracing.to_chrome_json tracer)
  | Some _ | None ->
      set_result ctx ~screen "{\"error\":\"f.trace takes start, stop or dump\"}"

(* f.profile(start|stop|dump) — the continuous profiler.  start arms the
   GC probes and the span-aggregating sink (enabling the tracer if it was
   off); stop disarms but keeps the aggregated tree; dump replies with the
   call-tree JSON. *)
let profile_control (ctx : Ctx.t) ~screen arg =
  let profiler = Server.profiler ctx.server in
  match Option.map (fun a -> String.lowercase_ascii (String.trim a)) arg with
  | Some "start" ->
      Profile.start profiler;
      set_result ctx ~screen "{\"profiling\":\"started\"}"
  | Some "stop" ->
      Profile.stop profiler;
      set_result ctx ~screen "{\"profiling\":\"stopped\"}"
  | Some "dump" -> set_result ctx ~screen (Profile.to_json profiler)
  | Some _ | None ->
      set_result ctx ~screen "{\"error\":\"f.profile takes start, stop or dump\"}"

(* One-glance liveness summary: overall status plus the counters an operator
   would reach for first.  "degraded" as soon as the watchdog has seen a
   stall — the WM is alive but has been unresponsive at least once. *)
let health_json (ctx : Ctx.t) =
  let metrics = Server.metrics ctx.server in
  let recorder = Server.recorder ctx.server in
  let c name = Metrics.counter_value metrics name in
  let stalls = c "watchdog.stalls" in
  let degraded = stalls > 0 || ctx.tier <> Ctx.Tier_full in
  Printf.sprintf
    "{\"status\":%s,\"tier\":%s,\"events_dispatched\":%d,\"xerrors\":%d,\
     \"watchdog_stalls\":%d,\"faults_injected\":%d,\"swmcmd_errors\":%d,\
     \"clients\":%d,\"overload\":{\"queue_cap\":%d,\"events_shed\":%d,\
     \"state_bearing_shed\":%d,\"cap_overruns\":%d,\"quarantined\":%d,\
     \"recovered\":%d,\"evicted\":%d,\"tier_transitions\":%d,\
     \"events_skipped\":%d},\"recorder\":{\"enabled\":%b,\"recorded\":%d,\
     \"dropped\":%d,\"crash_dumps\":%d},\"ledger\":%s}"
    (Metrics.json_string (if degraded then "degraded" else "ok"))
    (Metrics.json_string (Ctx.tier_name ctx.tier))
    (c "wm.events_dispatched") (c "wm.xerrors") stalls (c "faults.injected")
    (c "swmcmd.errors")
    (List.length (Ctx.all_clients ctx))
    (Server.queue_cap ctx.server)
    (c "events.shed")
    (c "events.shed.state_bearing")
    (c "queue.cap_overruns") (c "health.quarantined") (c "health.recovered")
    (c "health.evicted")
    (c "governor.transitions")
    (c "governor.events_skipped")
    (Recorder.enabled recorder) (Recorder.recorded recorder)
    (Recorder.dropped recorder) (Recorder.dumps recorder)
    (Server.ledger_json ctx.server)

(* The recent-dispatch waterfall: every retained dispatch with its
   ingress -> queue -> dispatch timings, the requests it issued, and the
   f.* verbs it ran — the per-event causality view behind f.waterfall.
   Entries are emitted oldest-first; queue_ns/e2e_ns are -1 when the event
   entered the queue while the ledger was disarmed (no ingress stamp). *)
let waterfall_json (ctx : Ctx.t) =
  let cap = Array.length ctx.wf_ring in
  let entries = ref [] in
  for i = cap - 1 downto 0 do
    match ctx.wf_ring.((ctx.wf_head + i) mod cap) with
    | Some r -> entries := r :: !entries
    | None -> ()
  done;
  let entries = List.rev !entries in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"events\":%d,\"waterfall\":[" (List.length entries));
  List.iteri
    (fun i (r : Ctx.waterfall_rec) ->
      if i > 0 then Buffer.add_char buf ',';
      let queue_ns = if r.wf_ingress_ns > 0 then r.wf_t0 - r.wf_ingress_ns else -1 in
      let e2e_ns = if r.wf_ingress_ns > 0 then r.wf_t1 - r.wf_ingress_ns else -1 in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"seq\":%d,\"event\":%s,\"ingress_ns\":%d,\"queue_ns\":%d,\
            \"dispatch_ns\":%d,\"e2e_ns\":%d,\"requests\":%d,\"functions\":[%s]}"
           r.wf_seq
           (Metrics.json_string (Event.name_of_code r.wf_code))
           r.wf_ingress_ns queue_ns (r.wf_t1 - r.wf_t0) e2e_ns r.wf_requests
           (String.concat "," (List.map Metrics.json_string r.wf_fns))))
    entries;
  Buffer.add_string buf
    (Printf.sprintf "],\"ledger\":%s}" (Server.ledger_json ctx.server));
  Buffer.contents buf

(* The time-series payload: the sampler's retained window plus the derived
   rates.  A sample is taken first so the window always extends to the
   moment of the query, even when the event loop has been idle. *)
let stats_json (ctx : Ctx.t) =
  Metrics.sample ctx.sampler;
  let rate = Metrics.rate ctx.sampler in
  let enqueued = rate "events.enqueued" in
  let coalesced = rate "events.coalesced" in
  Printf.sprintf
    "{\"sampler\":%s,\"derived\":{\"events_per_sec\":%.3f,\
     \"dispatch_per_sec\":%.3f,\"coalesce_ratio\":%.4f,\
     \"faults_per_sec\":%.3f},\"top\":%s}"
    (Metrics.stats_json ctx.sampler)
    enqueued
    (rate "wm.events_dispatched")
    (if enqueued > 0. then coalesced /. enqueued else 0.)
    (rate "faults.injected")
    (Metrics.top_json (Server.metrics ctx.server) ())

let run_nullary (ctx : Ctx.t) inv name =
  match name with
  | "f.quit" -> ctx.running <- false
  | "f.restart" ->
      ctx.restart_requested <- true;
      ctx.running <- false
  | "f.refresh" -> ()
  | "f.unpostmenu" -> unpost_menu ctx ~screen:inv.inv_screen
  | "f.circulateup" -> circulate ctx ~screen:inv.inv_screen `Up
  | "f.circulatedown" -> circulate ctx ~screen:inv.inv_screen `Down
  | "f.slowlog" ->
      set_result ctx ~screen:inv.inv_screen
        (Tracing.slow_log_json (Server.tracer ctx.server))
  | "f.health" -> set_result ctx ~screen:inv.inv_screen (health_json ctx)
  | "f.stats" -> set_result ctx ~screen:inv.inv_screen (stats_json ctx)
  | _ -> ()

let rec run_data ~depth (ctx : Ctx.t) inv name arg =
  let screen = inv.inv_screen in
  let int_arg default = match Option.bind arg int_of_string_opt with
    | Some n -> n
    | None -> default
  in
  let pair_arg () =
    match arg with
    | None -> None
    | Some a -> (
        match String.split_on_char ',' a with
        | [ x; y ] -> (
            match (int_of_string_opt (String.trim x), int_of_string_opt (String.trim y)) with
            | Some x, Some y -> Some (x, y)
            | _ -> None)
        | _ -> None)
  in
  match name with
  | "f.warpvertical" ->
      let pos = Server.pointer_pos ctx.server in
      Server.warp_pointer ctx.server ~screen (Geom.point pos.px (pos.py + int_arg 0))
  | "f.warphorizontal" ->
      let pos = Server.pointer_pos ctx.server in
      Server.warp_pointer ctx.server ~screen (Geom.point (pos.px + int_arg 0) pos.py)
  | "f.pan" -> (
      match pair_arg () with
      | Some (dx, dy) ->
          Vdesk.pan_by ctx ~screen ~dx ~dy;
          Panner.refresh ctx ~screen
      | None -> ())
  | "f.panto" -> (
      match pair_arg () with
      | Some (x, y) ->
          Vdesk.pan_to ctx ~screen (Geom.point x y);
          Panner.refresh ctx ~screen
      | None -> ())
  | "f.resizedesktop" -> (
      match pair_arg () with
      | Some (w, h) ->
          Vdesk.resize_desktop ctx ~screen (w, h);
          Panner.refresh ctx ~screen
      | None -> ())
  | "f.desktop" ->
      Vdesk.switch_desktop ctx ~screen (int_arg 0);
      Panner.refresh ctx ~screen
  | "f.menu" -> (
      match arg with Some menu_name -> post_menu ctx inv menu_name | None -> ())
  | "f.exec" -> (
      match arg with Some cmd -> ctx.executed <- cmd :: ctx.executed | None -> ())
  | "f.places" -> places ctx ~file_arg:arg
  | "f.autosave" -> autosave ctx ~file_arg:arg
  | "f.setlabel" -> (
      (* f.setLabel(object,new label) — dynamic appearance, paper §4.2. *)
      match split_first_comma arg with
      | Some (obj_name, text) ->
          let tk = (Ctx.screen ctx screen).tk in
          List.iter (fun obj -> Wobj.set_label obj text)
            (Wobj.find_objects_by_name tk obj_name)
      | None -> ())
  | "f.setbindings" -> (
      (* f.setBindings(object,<Btn1> : f.raise ...) — dynamic behaviour. *)
      match split_first_comma arg with
      | Some (obj_name, src) ->
          let tk = (Ctx.screen ctx screen).tk in
          List.iter
            (fun obj -> Wobj.set_attr obj "bindings" src)
            (Wobj.find_objects_by_name tk obj_name)
      | None -> ())
  | "f.function" -> (
      (* f.function(name): run the function list from the
         swm*function.<name> resource (user-defined macros). *)
      match arg with
      | Some macro_name when depth < 8 -> (
          match
            Config.query ctx.cfg ~screen
              ~names:[ "function"; macro_name ]
              ~classes:[ "Function"; String.capitalize_ascii macro_name ]
          with
          | Some src -> (
              match Bindings.parse ("<Btn1> : " ^ String.trim src) with
              | Ok [ { funcs; _ } ] -> execute_at ~depth:(depth + 1) ctx inv funcs
              | Ok _ | Error _ -> ())
          | None -> ())
      | Some _ | None -> ())
  | "f.scrollholder" -> (
      (* f.scrollHolder(name,delta) — the holder's scrolling window. *)
      match split_first_comma arg with
      | Some (holder_name, delta_text) -> (
          match
            (Icons.find_holder ctx ~screen holder_name,
             int_of_string_opt (String.trim delta_text))
          with
          | Some holder, Some delta -> Icons.scroll_holder ctx holder delta
          | _ -> ())
      | None -> ())
  | "f.trace" -> trace_control ctx ~screen arg
  | "f.profile" -> profile_control ctx ~screen arg
  | "f.flame" -> (
      (* f.flame(FILE) — write the aggregated call tree as collapsed-stack
         text (flamegraph.pl / speedscope input) and reply with what was
         written plus the coverage numbers the CI gate checks. *)
      match Option.map String.trim arg with
      | Some path when path <> "" -> (
          let profiler = Server.profiler ctx.server in
          let collapsed = Profile.to_collapsed profiler in
          let frames =
            String.fold_left
              (fun n c -> if c = '\n' then n + 1 else n)
              0 collapsed
          in
          try
            Session.write_atomic ~path collapsed;
            set_result ctx ~screen
              (Printf.sprintf
                 "{\"flame\":%s,\"frames\":%d,\"bytes\":%d,\
                  \"root_total_ns\":%d,\"dispatch_wall_ns\":%d,\
                  \"coverage\":%.3f}"
                 (Metrics.json_string path) frames (String.length collapsed)
                 (Profile.root_total_ns profiler)
                 (Profile.dispatch_wall_ns profiler)
                 (Profile.coverage profiler))
          with Sys_error msg ->
            set_result ctx ~screen
              (Printf.sprintf "{\"error\":%s}" (Metrics.json_string msg)))
      | Some _ | None ->
          set_result ctx ~screen "{\"error\":\"f.flame takes a file path\"}")
  | "f.metrics" -> (
      let metrics = Server.metrics ctx.server in
      match Option.map (fun a -> String.lowercase_ascii (String.trim a)) arg with
      | None -> set_result ctx ~screen (Metrics.to_json metrics)
      | Some "prometheus" -> set_result ctx ~screen (Metrics.to_prometheus metrics)
      | Some "table" -> set_result ctx ~screen (Metrics.to_table metrics)
      | Some _ ->
          set_result ctx ~screen
            "{\"error\":\"f.metrics takes no argument, prometheus or table\"}")
  | "f.flightdump" -> (
      match Option.map String.trim arg with
      | Some path when path <> "" -> (
          let report =
            Recorder.dump_json
              (Server.recorder ctx.server)
              ~reason:"f.flightdump"
              ~metrics:(Server.metrics ctx.server)
              ~tracer:(Server.tracer ctx.server)
          in
          try
            Session.write_atomic ~path report;
            set_result ctx ~screen
              (Printf.sprintf "{\"flightdump\":%s,\"bytes\":%d}"
                 (Metrics.json_string path) (String.length report))
          with Sys_error msg ->
            set_result ctx ~screen
              (Printf.sprintf "{\"error\":%s}" (Metrics.json_string msg)))
      | Some _ | None ->
          set_result ctx ~screen "{\"error\":\"f.flightdump takes a file path\"}")
  | "f.replay" -> (
      (* f.replay(FILE) — re-execute a crash report or repro file against a
         fresh Server+WM pair and report the convergence outcome, so the
         repro workflow works over swmcmd without restarting swm. *)
      match Option.map String.trim arg with
      | Some path when path <> "" -> (
          match
            try Ok (In_channel.with_open_text path In_channel.input_all)
            with Sys_error msg -> Error msg
          with
          | Error msg ->
              set_result ctx ~screen
                (Printf.sprintf "{\"error\":%s}" (Metrics.json_string msg))
          | Ok text -> (
              match Replay.parse_report text with
              | Error msg ->
                  set_result ctx ~screen
                    (Printf.sprintf "{\"error\":%s}" (Metrics.json_string msg))
              | Ok report ->
                  set_result ctx ~screen (Replay.outcome_json (!replay_runner report))))
      | Some _ | None ->
          set_result ctx ~screen "{\"error\":\"f.replay takes a file path\"}")
  | "f.fate" -> (
      (* f.fate([CONN|WINDOW]) — the lifecycle ledger's recent fate records
         (what happened to each event: delivered, coalesced into a survivor,
         folded, shed, dropped, skipped, evicted), optionally filtered to a
         connection name or a window id, plus the running conservation
         counters.  "Where did my event go?" answered from live state. *)
      match Option.map String.trim arg with
      | None | Some "" -> set_result ctx ~screen (Server.fate_json ctx.server ())
      | Some sel -> (
          let window_of sel =
            if String.length sel > 1 && sel.[0] = '#' then
              int_of_string_opt (String.sub sel 1 (String.length sel - 1))
            else int_of_string_opt sel
          in
          match window_of sel with
          | Some w -> set_result ctx ~screen (Server.fate_json ctx.server ~window:w ())
          | None -> set_result ctx ~screen (Server.fate_json ctx.server ~conn:sel ())))
  | "f.waterfall" -> (
      (* f.waterfall(FILE) — write the recent-dispatch waterfall JSON
         atomically and reply with what was written, mirroring f.flightdump. *)
      match Option.map String.trim arg with
      | Some path when path <> "" -> (
          let json = waterfall_json ctx in
          try
            Session.write_atomic ~path json;
            set_result ctx ~screen
              (Printf.sprintf "{\"waterfall\":%s,\"bytes\":%d}"
                 (Metrics.json_string path) (String.length json))
          with Sys_error msg ->
            set_result ctx ~screen
              (Printf.sprintf "{\"error\":%s}" (Metrics.json_string msg)))
      | Some _ | None ->
          set_result ctx ~screen "{\"error\":\"f.waterfall takes a file path\"}")
  | "f.warpto" -> (
      match arg with
      | Some class_arg -> (
          match Ctx.clients_of_class ctx class_arg with
          | client :: _ ->
              let scr = Ctx.screen ctx client.screen in
              let abs =
                Server.translate_coordinates ctx.server ~src:client.frame
                  ~dst:scr.root (Geom.point 0 0)
              in
              let geom = Server.geometry ctx.server client.frame in
              Server.warp_pointer ctx.server ~screen:client.screen
                (Geom.point (abs.px + (geom.w / 2)) (abs.py + (geom.h / 2)))
          | [] -> ())
      | None -> ())
  | _ -> ()

and execute_at ~depth (ctx : Ctx.t) inv (funcs : Bindings.func_call list) =
  match funcs with
  | [] -> ()
  | f :: rest -> (
      let name = canon f.fname in
      Recorder.record
        (Server.recorder ctx.server)
        ~kind:"function"
        ~attrs:(match f.farg with None -> [] | Some a -> [ ("arg", a) ])
        name;
      (* Per-function attribution, always on: which f.* verbs a session
         actually exercises (and how often) — the other half of the
         top-talkers view next to per-connection delivery.  Unknown names
         stay out so a typo storm cannot burn label slots. *)
      (* max_series must clear the full f.* vocabulary (~44 names) so no
         legitimate verb lands in "other". *)
      if known name then begin
        Metrics.incr
          (Metrics.labeled_counter
             (Metrics.counter_family
                (Server.metrics ctx.server)
                ~max_series:64 ~key:"fn" "functions.calls")
             name);
        (* The dispatch-in-flight trail: Wm resets it per event and copies
           it (reversed) into the waterfall record, linking f.* activity to
           the triggering event. *)
        ctx.fn_trail <- name :: ctx.fn_trail
      end;
      let tracer = Server.tracer ctx.server in
      if List.mem name nullary_functions then begin
        (if Tracing.enabled tracer then Tracing.span tracer name
         else fun f -> f ())
        @@ (fun () -> run_nullary ctx inv name);
        execute_at ~depth ctx inv rest
      end
      else if List.mem name data_arg_functions then begin
        (if Tracing.enabled tracer then
           Tracing.span tracer name
             ~attrs:(match f.farg with None -> [] | Some a -> [ ("arg", a) ])
         else fun f -> f ())
        @@ (fun () -> run_data ~depth ctx inv name f.farg);
        execute_at ~depth ctx inv rest
      end
      else if List.mem name window_functions then begin
        match resolve_targets ctx inv f with
        | Clients clients ->
            (* Per-client guard: one client dying mid-list must not abort
               the function for the remaining targets. *)
            List.iter
              (fun (client : Ctx.client) ->
                (if Tracing.enabled tracer then
                   Tracing.span tracer name
                     ~attrs:[ ("client", client.instance) ]
                 else fun f -> f ())
                @@ fun () ->
                Xguard.run ctx ~where:name (fun () -> run_on_client ctx name client))
              clients;
            execute_at ~depth ctx inv rest
        | Needs_prompt ->
            (* Park this function and the rest until a window is picked. *)
            ctx.mode <- Ctx.Prompting (f :: rest)
      end
      else (* unknown function: skip it but keep going *)
        execute_at ~depth ctx inv rest)

let execute ctx inv funcs = execute_at ~depth:0 ctx inv funcs

let resume_with_target (ctx : Ctx.t) (client : Ctx.client) =
  match ctx.mode with
  | Ctx.Prompting funcs ->
      ctx.mode <- Ctx.Idle;
      let inv = invocation ~client ~screen:client.screen () in
      (* The parked functions now have a current window; strip nothing. *)
      execute ctx inv funcs
  | Ctx.Idle | Ctx.Moving _ | Ctx.Resizing _ -> ()

let execute_string (ctx : Ctx.t) inv text =
  (* Reuse the bindings function-list grammar by parsing a synthetic
     binding. *)
  match Bindings.parse ("<Btn1> : " ^ String.trim text) with
  | Ok [ { funcs; _ } ] -> (
      execute ctx inv funcs;
      (* Typos must not vanish: run what is known, report what is not. *)
      match
        List.filter (fun (f : Bindings.func_call) -> not (known f.fname)) funcs
      with
      | [] -> Ok ()
      | unknown ->
          Error
            ("unknown function "
            ^ String.concat ", "
                (List.map (fun (f : Bindings.func_call) -> f.fname) unknown)))
  | Ok _ -> Error "expected a plain function list"
  | Error msg -> Error msg
