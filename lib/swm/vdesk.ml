module Metrics = Swm_xlib.Metrics
module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid

let x_window_limit = 32767

let create (ctx : Ctx.t) ~screen ~size ?(desktops = 1) () =
  let sw, sh = Server.screen_size ctx.server ~screen in
  let w, h = size in
  if desktops < 1 then invalid_arg "Vdesk.create: desktops < 1";
  if w < sw || h < sh then invalid_arg "Vdesk.create: desktop smaller than screen";
  if w > x_window_limit || h > x_window_limit then
    invalid_arg "Vdesk.create: beyond the usable area of an X window (32767)";
  let scr = Ctx.screen ctx screen in
  let vwins =
    Array.init desktops (fun _ ->
        let vwin =
          Server.create_window ctx.server ctx.conn ~parent:scr.root
            ~geom:(Geom.rect 0 0 w h) ~override_redirect:true ~background:'.' ()
        in
        (* The desktop stands in for the root: redirect map/configure of
           whatever ends up parented here (undecorated clients). *)
        Server.select_input ctx.server ctx.conn vwin
          [ Swm_xlib.Event.Substructure_redirect; Swm_xlib.Event.Substructure_notify ];
        vwin)
  in
  Array.iter (fun vwin -> Server.lower_window ctx.server ctx.conn vwin) vwins;
  Server.map_window ctx.server ctx.conn vwins.(0);
  let vdesk =
    { Ctx.vwins; current = 0; vsize = size; panner_client = Xid.none; panner_scale = 24 }
  in
  scr.vdesk <- Some vdesk;
  vdesk

let vdesk_of ctx ~screen = (Ctx.screen ctx screen).vdesk

let effective_parent (ctx : Ctx.t) ~screen ~sticky =
  let scr = Ctx.screen ctx screen in
  match scr.vdesk with
  | Some vdesk when not sticky -> vdesk.vwins.(vdesk.current)
  | Some _ | None -> scr.root

let effective_root ctx (client : Ctx.client) =
  effective_parent ctx ~screen:client.screen ~sticky:client.sticky

let offset ctx ~screen =
  match vdesk_of ctx ~screen with
  | None -> Geom.point 0 0
  | Some vdesk ->
      let geom = Server.geometry ctx.Ctx.server vdesk.vwins.(vdesk.current) in
      Geom.point (-geom.x) (-geom.y)

let viewport (ctx : Ctx.t) ~screen =
  let sw, sh = Server.screen_size ctx.server ~screen in
  let o = offset ctx ~screen in
  Geom.rect o.px o.py sw sh

let pan_to (ctx : Ctx.t) ~screen pos =
  match vdesk_of ctx ~screen with
  | None -> ()
  | Some vdesk ->
      let sw, sh = Server.screen_size ctx.server ~screen in
      let w, h = vdesk.vsize in
      let x = max 0 (min pos.Geom.px (w - sw)) in
      let y = max 0 (min pos.Geom.py (h - sh)) in
      let tracer = Server.tracer ctx.server in
      (if Swm_xlib.Tracing.enabled tracer then
         Swm_xlib.Tracing.span tracer "vdesk.pan_to"
           ~attrs:[ ("x", string_of_int x); ("y", string_of_int y) ]
       else fun f -> f ())
      @@ fun () ->
      let vwin = vdesk.vwins.(vdesk.current) in
      let geom = Server.geometry ctx.server vwin in
      Ctx.log ctx "pan screen %d to %d,%d" screen x y;
      Metrics.incr (Metrics.counter (Server.metrics ctx.server) "vdesk.pans");
      Swm_xlib.Recorder.record
        (Server.recorder ctx.server)
        ~kind:"pan"
        ~attrs:
          [
            ("screen", string_of_int screen);
            ("x", string_of_int x);
            ("y", string_of_int y);
          ]
        (Printf.sprintf "pan screen %d to %d,%d" screen x y);
      Server.move_resize ctx.server ctx.conn vwin { geom with Geom.x = -x; y = -y }

let pan_by ctx ~screen ~dx ~dy =
  let o = offset ctx ~screen in
  pan_to ctx ~screen (Geom.point (o.px + dx) (o.py + dy))

let resize_desktop (ctx : Ctx.t) ~screen size =
  match vdesk_of ctx ~screen with
  | None -> ()
  | Some vdesk ->
      let sw, sh = Server.screen_size ctx.server ~screen in
      let w, h = size in
      if w < sw || h < sh || w > x_window_limit || h > x_window_limit then
        invalid_arg "Vdesk.resize_desktop: bad size";
      vdesk.vsize <- size;
      Array.iter
        (fun vwin ->
          let geom = Server.geometry ctx.server vwin in
          Server.move_resize ctx.server ctx.conn vwin { geom with Geom.w = w; h = h })
        vdesk.vwins;
      (* Keep the viewport in bounds after a shrink. *)
      let o = offset ctx ~screen in
      pan_to ctx ~screen o

let current_desktop ctx ~screen =
  match vdesk_of ctx ~screen with Some v -> v.current | None -> 0

let desktop_count ctx ~screen =
  match vdesk_of ctx ~screen with Some v -> Array.length v.vwins | None -> 1

let clients_on_desktop (ctx : Ctx.t) ~screen =
  List.filter
    (fun (c : Ctx.client) -> c.screen = screen && not c.sticky)
    (Ctx.all_clients ctx)

let switch_desktop (ctx : Ctx.t) ~screen n =
  match vdesk_of ctx ~screen with
  | None -> if n <> 0 then invalid_arg "Vdesk.switch_desktop: no virtual desktop"
  | Some vdesk ->
      if n < 0 || n >= Array.length vdesk.vwins then
        invalid_arg "Vdesk.switch_desktop: index out of range";
      if n <> vdesk.current then begin
        Server.unmap_window ctx.server ctx.conn vdesk.vwins.(vdesk.current);
        vdesk.current <- n;
        Server.map_window ctx.server ctx.conn vdesk.vwins.(n);
        Server.lower_window ctx.server ctx.conn vdesk.vwins.(n);
        List.iter
          (fun (c : Ctx.client) ->
            Icccm.set_swm_root ctx c.cwin ~root:(effective_root ctx c))
          (clients_on_desktop ctx ~screen)
      end

let set_sticky (ctx : Ctx.t) (client : Ctx.client) sticky =
  if client.sticky <> sticky then begin
    let scr = Ctx.screen ctx client.screen in
    (match scr.vdesk with
    | None -> client.sticky <- sticky
    | Some _ ->
        (* Preserve the on-glass (real-root-relative) position. *)
        let abs = Server.root_geometry ctx.server client.frame in
        client.sticky <- sticky;
        let parent = effective_parent ctx ~screen:client.screen ~sticky in
        let pos =
          if sticky then Geom.point abs.x abs.y
          else begin
            let o = offset ctx ~screen:client.screen in
            Geom.point (abs.x + o.px) (abs.y + o.py)
          end
        in
        Server.reparent_window ctx.server ctx.conn client.frame ~new_parent:parent ~pos;
        Server.raise_window ctx.server ctx.conn client.frame);
    Icccm.set_swm_root ctx client.cwin ~root:(effective_root ctx client);
    Icccm.send_synthetic_configure ctx client
  end

let is_desktop_window ctx ~screen win =
  match vdesk_of ctx ~screen with
  | None -> false
  | Some vdesk -> Array.exists (fun v -> Xid.equal v win) vdesk.vwins
