module Server = Swm_xlib.Server
module Metrics = Swm_xlib.Metrics
module Tracing = Swm_xlib.Tracing
module Recorder = Swm_xlib.Recorder
module Xid = Swm_xlib.Xid

let absorbed (ctx : Ctx.t) ~where msg =
  let metrics = Server.metrics ctx.server in
  Metrics.incr (Metrics.counter metrics "wm.xerrors");
  (* Absorption-site attribution: "which boundary keeps eating errors" is
     the question fault storms raise, and the totals above cannot answer
     it.  Cold path, so the family lookup per absorption is fine. *)
  Metrics.incr
    (Metrics.labeled_counter
       (Metrics.counter_family metrics ~key:"where" "wm.xerrors.by_where")
       where);
  Ctx.log ctx "absorbed X error in %s: %s" where msg;
  Tracing.note (Server.tracer ctx.server) "wm.xerror"
    ~attrs:[ ("where", where); ("error", msg) ];
  (* An absorbed error is exactly the moment the flight recorder exists
     for: log it in the ring, then dump a crash report if one is armed
     ([crash] is a no-op otherwise). *)
  let recorder = Server.recorder ctx.server in
  Recorder.record recorder ~kind:"xerror" ~attrs:[ ("where", where) ] msg;
  Recorder.crash recorder
    ~reason:(Printf.sprintf "absorbed X error in %s: %s" where msg)
    ~metrics:(Server.metrics ctx.server)
    ~tracer:(Server.tracer ctx.server)

let protect (ctx : Ctx.t) ~where f =
  try Some (f ()) with
  | Server.Bad_window id ->
      absorbed ctx ~where (Format.asprintf "BadWindow %a" Xid.pp id);
      None
  | Server.Bad_access msg ->
      absorbed ctx ~where ("BadAccess: " ^ msg);
      None

let run (ctx : Ctx.t) ~where f =
  match protect ctx ~where f with Some () | None -> ()
