module Server = Swm_xlib.Server
module Metrics = Swm_xlib.Metrics
module Tracing = Swm_xlib.Tracing
module Xid = Swm_xlib.Xid

let absorbed (ctx : Ctx.t) ~where msg =
  Metrics.incr (Metrics.counter (Server.metrics ctx.server) "wm.xerrors");
  Ctx.log ctx "absorbed X error in %s: %s" where msg;
  Tracing.note (Server.tracer ctx.server) "wm.xerror"
    ~attrs:[ ("where", where); ("error", msg) ]

let protect (ctx : Ctx.t) ~where f =
  try Some (f ()) with
  | Server.Bad_window id ->
      absorbed ctx ~where (Format.asprintf "BadWindow %a" Xid.pp id);
      None
  | Server.Bad_access msg ->
      absorbed ctx ~where ("BadAccess: " ^ msg);
      None

let run (ctx : Ctx.t) ~where f =
  match protect ctx ~where f with Some () | None -> ()
