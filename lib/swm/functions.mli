(** The window-manager function interpreter (paper §4.2.1).

    Every behaviour in swm is a list of [f.*] functions attached to an
    object binding (or sent through swmcmd).  Functions execute in several
    modes:

    {v
f.iconify            iconify the current window
f.iconify(multiple)  iconify multiple windows, prompting for each
f.iconify(blob)      iconify all windows whose class matches "blob"
f.iconify(#$)        iconify the window under the mouse
f.iconify(#0x1234)   iconify a particular window id
    v}

    A function needing a window but invoked with none (e.g. from a root
    panel button or swmcmd) puts swm into prompting mode: the next button
    press selects the target and the pending functions run on it. *)

type invocation = {
  inv_obj : Swm_oi.Wobj.t option;  (** the object the binding fired on *)
  inv_client : Ctx.client option;  (** the "current window", if any *)
  inv_screen : int;
}

val invocation :
  ?obj:Swm_oi.Wobj.t -> ?client:Ctx.client -> screen:int -> unit -> invocation

val known : string -> bool
(** Is this a recognised function name? *)

val function_names : string list

val execute : Ctx.t -> invocation -> Bindings.func_call list -> unit
(** Run a function list.  If some function needs a target window and none
    can be resolved, the context enters [Prompting] mode carrying that
    function and the rest of the list; {!resume_with_target} finishes the
    job. *)

val execute_string : Ctx.t -> invocation -> string -> (unit, string) result
(** Parse and run a command string such as ["f.iconify(xterm)"] or
    ["f.save f.zoom"] — the swmcmd entry point.  Known functions run even
    when the line also contains unknown names, but any unknown name turns
    the result into [Error] so callers (and the [swmcmd.errors] counter)
    see the typo. *)

val resume_with_target : Ctx.t -> Ctx.client -> unit
(** Complete a pending prompting-mode invocation on the selected client. *)

val set_replay_runner :
  (Swm_xlib.Replay.report -> Swm_xlib.Replay.outcome) -> unit
(** Install the engine behind [f.replay].  Starting a fresh WM lives above
    this module in the dependency order, so {!Wm} installs its
    [Wm.replay] here at link time; [f.replay] reports an error if invoked
    before any runner is installed. *)

val client_under_pointer : Ctx.t -> Ctx.client option

val places_hints : Ctx.t -> Session.hint list
(** The session records f.places would write: one per restartable managed
    client (those with WM_COMMAND), capturing geometry, icon position,
    state and stickiness. *)

val autosave : Ctx.t -> file_arg:string option -> unit
(** [f.autosave]: write the f.places content atomically (tmp + rename,
    trailing checksum) to [file_arg] or the [autosaveFile] resource, reset
    the autosave countdown, and count [session.autosaves].  {!Wm} calls
    this every [autosaveInterval] dispatched events, so a WM crash loses
    at most one interval of session state.  A no-op with no path. *)
