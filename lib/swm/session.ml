module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop

type hint = {
  geometry : Geom.rect;
  icon_geometry : Geom.point option;
  state : Prop.wm_state;
  sticky : bool;
  command : string;
  host : string option;
}

let pp_hint ppf h =
  Format.fprintf ppf "hint{%a state=%a cmd=%S%s}" Geom.pp_rect h.geometry
    Prop.pp_wm_state h.state h.command
    (match h.host with Some host -> " @" ^ host | None -> "")

(* -------- swmhints argument encoding -------- *)

let quote s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let geometry_string (r : Geom.rect) = Printf.sprintf "%dx%d+%d+%d" r.w r.h r.x r.y

let hint_to_args h =
  let buf = Buffer.create 128 in
  Buffer.add_string buf ("-geometry " ^ geometry_string h.geometry);
  (match h.icon_geometry with
  | Some p -> Buffer.add_string buf (Printf.sprintf " -icongeometry +%d+%d" p.px p.py)
  | None -> ());
  Buffer.add_string buf (" -state " ^ Prop.wm_state_to_string h.state);
  if h.sticky then Buffer.add_string buf " -sticky";
  (match h.host with
  | Some host -> Buffer.add_string buf (" -host " ^ host)
  | None -> ());
  Buffer.add_string buf (" -cmd " ^ quote h.command);
  Buffer.contents buf

(* Split shell-style: whitespace-separated words; double quotes group, and a
   backslash-quote escapes a quote inside them. *)
let split_args s =
  let words = ref [] in
  let buf = Buffer.create 16 in
  let in_quotes = ref false in
  let pending = ref false in
  let flush () =
    if !pending then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf;
      pending := false
    end
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '"' ->
        in_quotes := not !in_quotes;
        pending := true
    | '\\' when !i + 1 < n && s.[!i + 1] = '"' ->
        Buffer.add_char buf '"';
        pending := true;
        incr i
    | (' ' | '\t') when not !in_quotes -> flush ()
    | c ->
        Buffer.add_char buf c;
        pending := true);
    incr i
  done;
  flush ();
  if !in_quotes then Error "unterminated quote" else Ok (List.rev !words)

let hint_of_args_inner s =
  match split_args s with
  | Error _ as e -> e
  | Ok words ->
      let geometry = ref None
      and icon_geometry = ref None
      and state = ref Prop.Normal
      and sticky = ref false
      and command = ref None
      and host = ref None
      and err = ref None in
      let rec loop = function
        | [] -> ()
        | "-geometry" :: g :: rest -> (
            match Geom.parse g with
            | Ok spec ->
                let r =
                  Geom.resolve spec ~default:(Geom.rect 0 0 100 100)
                    ~within:(Geom.rect 0 0 0 0)
                in
                (* Resolve against a zero extent: From_start offsets come out
                   directly; session geometry always uses +X+Y. *)
                geometry := Some r;
                loop rest
            | Error msg -> err := Some ("bad -geometry: " ^ msg))
        | "-icongeometry" :: g :: rest -> (
            match Geom.parse g with
            | Ok { xoff = Some (Geom.From_start x); yoff = Some (Geom.From_start y); _ }
              ->
                icon_geometry := Some (Geom.point x y);
                loop rest
            | Ok _ -> err := Some "bad -icongeometry"
            | Error msg -> err := Some ("bad -icongeometry: " ^ msg))
        | "-state" :: s :: rest -> (
            match Prop.wm_state_of_string s with
            | Some st ->
                state := st;
                loop rest
            | None -> err := Some ("unknown state " ^ s))
        | "-sticky" :: rest ->
            sticky := true;
            loop rest
        | "-host" :: h :: rest ->
            host := Some h;
            loop rest
        | "-cmd" :: c :: rest ->
            command := Some c;
            loop rest
        | w :: _ -> err := Some ("unknown swmhints option " ^ w)
      in
      loop words;
      (match !err with
      | Some msg -> Error msg
      | None -> (
          match (!geometry, !command) with
          | None, _ -> Error "missing -geometry"
          | _, None -> Error "missing -cmd"
          | Some geometry, Some command ->
              Ok
                {
                  geometry;
                  icon_geometry = !icon_geometry;
                  state = !state;
                  sticky = !sticky;
                  command;
                  host = !host;
                }))

(* Hints arrive from root-window property bytes a hostile or faulty client
   controls entirely, so the parser must degrade to [Error] on any input. *)
let hint_of_args s =
  match hint_of_args_inner s with
  | r -> r
  | exception e -> Error ("swmhints parse failure: " ^ Printexc.to_string e)

(* -------- restart table -------- *)

module Atom = Swm_xlib.Atom

(* Commands are interned into a table-private atom space when a hint is
   added, so the per-manage restart probe compares interned ids instead of
   re-walking command strings down the whole table. *)
type entry = { e_cmd : Atom.t; e_hint : hint }
type table = { mutable entries : entry list; interned : Atom.table }

let create_table () = { entries = []; interned = Atom.create_table () }

let add table hint =
  let entry = { e_cmd = Atom.intern table.interned hint.command; e_hint = hint } in
  table.entries <- table.entries @ [ entry ]

let size table = List.length table.entries

type load_stats = { loaded : int; rejected : int; first_error : string option }

(* Graceful degradation: a corrupt line loses that one hint, never the
   session.  SWM_PLACES is client-writable, so any byte sequence must load. *)
let load table text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  List.fold_left
    (fun stats line ->
      match hint_of_args line with
      | Ok hint ->
          add table hint;
          { stats with loaded = stats.loaded + 1 }
      | Error msg ->
          {
            stats with
            rejected = stats.rejected + 1;
            first_error =
              (match stats.first_error with
              | Some _ as e -> e
              | None -> Some (Printf.sprintf "%s in %S" msg line));
          })
    { loaded = 0; rejected = 0; first_error = None }
    lines

let take_match table ~command ~host =
  (* Intern the probe once; an unknown command can't match any hint. *)
  match Atom.intern_existing table.interned command with
  | None -> None
  | Some cmd ->
      let host_matches hint =
        match (hint.host, host) with
        | Some a, Some b -> String.equal a b
        | None, _ | _, None -> true
      in
      let rec extract acc = function
        | [] -> None
        | entry :: rest
          when Atom.equal entry.e_cmd cmd && host_matches entry.e_hint ->
            table.entries <- List.rev_append acc rest;
            Some entry.e_hint
        | entry :: rest -> extract (entry :: acc) rest
      in
      extract [] table.entries

(* -------- places file -------- *)

let default_remote_format = "rsh %h \"env DISPLAY=%d %c\" &"

let expand_format fmt ~host ~display ~command =
  let buf = Buffer.create (String.length fmt + 32) in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      (match fmt.[!i + 1] with
      | 'h' -> Buffer.add_string buf host
      | 'd' -> Buffer.add_string buf display
      | 'c' -> Buffer.add_string buf command
      | c ->
          Buffer.add_char buf '%';
          Buffer.add_char buf c);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* FNV-1a 32-bit over the file content preceding the checksum line.  Not
   cryptographic — it detects truncation and bit rot, which is what a WM
   crash mid-write (or a dying disk) produces. *)
let checksum text =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    text;
  Printf.sprintf "%08x" !h

let checksum_prefix = "# swm-checksum: "

let places_file ?(remote_format = default_remote_format) ~display ~local_host hints =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "#!/bin/sh\n# written by swm f.places\n";
  List.iter
    (fun hint ->
      Buffer.add_string buf ("swmhints " ^ hint_to_args hint ^ "\n");
      let start =
        match hint.host with
        | Some host when not (String.equal host local_host) ->
            expand_format remote_format ~host ~display ~command:hint.command
        | Some _ | None -> hint.command ^ " &"
      in
      Buffer.add_string buf (start ^ "\n"))
    hints;
  let content = Buffer.contents buf in
  (* The trailing checksum line is itself a shell comment, so the file
     remains an executable .xinitrc replacement. *)
  content ^ checksum_prefix ^ checksum content ^ "\n"

type places_read = {
  hints : hint list;
  p_rejected : int;
  p_first_error : string option;
  p_checksum : [ `Valid | `Missing | `Mismatch ];
}

let read_places text =
  let prefix_len = String.length checksum_prefix in
  let covered = Buffer.create (String.length text) in
  let hints = ref [] in
  let rejected = ref 0 in
  let first_error = ref None in
  let check = ref `Missing in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if
        String.length line >= prefix_len
        && String.sub line 0 prefix_len = checksum_prefix
      then begin
        let expect =
          String.trim (String.sub line prefix_len (String.length line - prefix_len))
        in
        check :=
          if String.equal expect (checksum (Buffer.contents covered)) then `Valid
          else `Mismatch
      end
      else begin
        Buffer.add_string covered raw;
        Buffer.add_char covered '\n';
        if String.length line > 9 && String.sub line 0 9 = "swmhints " then
          match hint_of_args (String.sub line 9 (String.length line - 9)) with
          | Ok hint -> hints := hint :: !hints
          | Error msg ->
              incr rejected;
              if !first_error = None then
                first_error := Some (Printf.sprintf "%s in %S" msg line)
      end)
    (String.split_on_char '\n' text);
  {
    hints = List.rev !hints;
    p_rejected = !rejected;
    p_first_error = !first_error;
    p_checksum = !check;
  }

let parse_places_file text =
  let r = read_places text in
  match (r.p_checksum, r.p_first_error) with
  | `Mismatch, _ -> Error "places file checksum mismatch"
  | (`Valid | `Missing), Some msg -> Error msg
  | (`Valid | `Missing), None -> Ok r.hints

let write_atomic ~path content =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc content);
  Sys.rename tmp path
