(* The load governor: degradation tiers driven by queue pressure and
   watchdog wall latency.

   Every [governor_interval] dispatched events {!Wm} calls {!tick}, which
   reads the two overload signals — the worst queue-depth-to-cap ratio
   across connections ({!Server.max_queue_ratio}) and the watchdog stall
   delta since the last tick — and steps [ctx.tier]:

       full ----pressure---> reduced ----more pressure---> essential
       full <---calm ticks-- reduced <---calm ticks------- essential

   Escalation is immediate (overload will not wait); de-escalation needs
   [restore_calm_ticks] consecutive calm ticks and walks back one tier at
   a time, so a load oscillation cannot flap the WM between extremes.
   Each transition is counted ([governor.transitions]), traced, and
   recorded (kind ["tier"]).  Restoring to full triggers the panner
   refreshes that the reduced tiers skipped.

   The same cadence drives {!Server.health_tick}, so quarantine decisions
   ride the governor clock instead of needing their own. *)

module Server = Swm_xlib.Server
module Metrics = Swm_xlib.Metrics
module Tracing = Swm_xlib.Tracing
module Recorder = Swm_xlib.Recorder

(* Queue ratios at which the governor escalates. *)
let reduced_ratio = 0.5
let essential_ratio = 0.9

(* Watchdog stall deltas (per governor interval) at which it escalates. *)
let reduced_stalls = 1
let essential_stalls = 2

(* Consecutive calm ticks before stepping one tier back down. *)
let restore_calm_ticks = 3

let rank = function
  | Ctx.Tier_full -> 0
  | Ctx.Tier_reduced -> 1
  | Ctx.Tier_essential -> 2

let step_down = function
  | Ctx.Tier_essential -> Ctx.Tier_reduced
  | Ctx.Tier_reduced | Ctx.Tier_full -> Ctx.Tier_full

let desired (ctx : Ctx.t) =
  let ratio = Server.max_queue_ratio ctx.server in
  let stalls = Metrics.value ctx.c_watchdog_stalls in
  let d_stalls = stalls - ctx.gov_last_stalls in
  ctx.gov_last_stalls <- stalls;
  if ratio >= essential_ratio || d_stalls >= essential_stalls then
    Ctx.Tier_essential
  else if ratio >= reduced_ratio || d_stalls >= reduced_stalls then
    Ctx.Tier_reduced
  else Ctx.Tier_full

let transition (ctx : Ctx.t) ~from tier =
  ctx.tier <- tier;
  Metrics.incr ctx.c_tier_transitions;
  let attrs = [ ("from", Ctx.tier_name from); ("to", Ctx.tier_name tier) ] in
  let tracer = Server.tracer ctx.server in
  if Tracing.enabled tracer then Tracing.instant tracer "governor.tier" ~attrs;
  let recorder = Server.recorder ctx.server in
  if Recorder.enabled recorder then
    Recorder.record recorder ~kind:"tier" ~attrs
      (Ctx.tier_name from ^ " -> " ^ Ctx.tier_name tier);
  Ctx.log ctx "governor: tier %s -> %s" (Ctx.tier_name from) (Ctx.tier_name tier);
  (* Back at full service: repaint what the degraded tiers skipped. *)
  if tier = Ctx.Tier_full then
    Array.iter
      (fun (scr : Ctx.screen_state) ->
        Xguard.run ctx ~where:"governor.restore" (fun () ->
            Panner.refresh ctx ~screen:scr.index))
      ctx.screens

let tick (ctx : Ctx.t) =
  let current = ctx.tier in
  let want = desired ctx in
  if rank want > rank current then begin
    ctx.gov_calm <- 0;
    transition ctx ~from:current want
  end
  else if rank want < rank current then begin
    ctx.gov_calm <- ctx.gov_calm + 1;
    if ctx.gov_calm >= restore_calm_ticks then begin
      ctx.gov_calm <- 0;
      transition ctx ~from:current (step_down current)
    end
  end
  else ctx.gov_calm <- 0;
  Server.health_tick ctx.server
