(** X-error discipline: absorb {!Swm_xlib.Server.Bad_window} /
    {!Swm_xlib.Server.Bad_access} at operation boundaries.

    A client may die between any two of the WM's requests (the twm
    "client died mid-reparent" race); the server then answers the next
    request touching its windows with an X error.  A real WM installs an
    error handler and carries on — crashing the WM takes every client's
    session down with it.  Here the equivalent discipline is a guard at
    each operation boundary: the error is counted ([wm.xerrors]),
    recorded durably in the tracing slow log ([wm.xerror] with the
    offending operation and error text), logged, and the operation
    abandoned; the caller then cleans up (typically by unmanaging the
    dead client) instead of unwinding the whole event loop.

    Only the two X-error exceptions are absorbed; programming errors
    still propagate. *)

val absorbed : Ctx.t -> where:string -> string -> unit
(** Record one absorbed error without catching anything (for callers
    doing their own matching). *)

val protect : Ctx.t -> where:string -> (unit -> 'a) -> 'a option
(** Run the thunk; [None] if a [Bad_window]/[Bad_access] was absorbed. *)

val run : Ctx.t -> where:string -> (unit -> unit) -> unit
(** {!protect} for effects: absorb and move on. *)
