(** Session management (paper §7).

    swm does session management in two steps: an [swmhints] invocation per
    client gives swm hints about the client's previous state (appended to a
    root-window property), and swm interprets those hints when the client's
    window is reparented, matching on WM_COMMAND (and WM_CLIENT_MACHINE for
    remote clients) and restoring geometry, icon position, sticky state and
    normal/iconic state.

    [f.places] writes a file usable as an [.xinitrc] replacement: for each
    client an [swmhints] line followed by the client's own command line
    (with a customizable remote-start wrapper for clients on other hosts). *)

type hint = {
  geometry : Swm_xlib.Geom.rect;
  icon_geometry : Swm_xlib.Geom.point option;
  state : Swm_xlib.Prop.wm_state;
  sticky : bool;
  command : string;        (** the WM_COMMAND string, verbatim *)
  host : string option;    (** WM_CLIENT_MACHINE, when remote *)
}

val pp_hint : Format.formatter -> hint -> unit

(** {1 swmhints command-line encoding} *)

val hint_to_args : hint -> string
(** Render as an [swmhints] invocation's arguments, e.g.
    [-geometry 120x120+1010+359 -icongeometry +0+0 -state NormalState
     -cmd "oclock -geom 100x100"]. *)

val hint_of_args : string -> (hint, string) result
(** Parse the argument string back (shell-style quoting for [-cmd]). *)

(** {1 The restart table} *)

type table

val create_table : unit -> table
val add : table -> hint -> unit
val size : table -> int

type load_stats = {
  loaded : int;
  rejected : int;  (** malformed lines skipped *)
  first_error : string option;
}

val load : table -> string -> load_stats
(** Load the contents of the SWM_PLACES root property (one swmhints argument
    string per line).  Malformed lines are skipped, not fatal — the property
    is client-writable, so any byte sequence must load the salvageable
    entries and report the rest.  Never raises. *)

val take_match : table -> command:string -> host:string option -> hint option
(** Find and *remove* the entry whose command (and host, when both sides
    have one) matches — each hint restores at most one window; two windows
    with identical WM_COMMAND cannot be distinguished (a documented
    limitation in the paper). *)

(** {1 The places file} *)

val places_file :
  ?remote_format:string ->
  display:string ->
  local_host:string ->
  hint list ->
  string
(** Generate the [.xinitrc]-replacement text.  [remote_format] is the
    customizable remote-start string (paper §7.1) with [%h] = host,
    [%d] = display, [%c] = command; default
    ["rsh %h \"env DISPLAY=%d %c\" &"].  The text ends with a
    [# swm-checksum: <fnv1a-32-hex>] comment line over everything before
    it, so a truncated or bit-rotted file is detectable on reload while
    the file stays an executable shell script. *)

val checksum : string -> string
(** FNV-1a 32-bit, lower-case hex — the places-file checksum function. *)

val checksum_prefix : string
(** The checksum line's leading text, ["# swm-checksum: "]. *)

type places_read = {
  hints : hint list;  (** every line that parsed, in file order *)
  p_rejected : int;  (** swmhints lines that did not parse *)
  p_first_error : string option;
  p_checksum : [ `Valid | `Missing | `Mismatch ];
      (** [`Missing] for pre-checksum files (or ones truncated before the
          trailing line) *)
}

val read_places : string -> places_read
(** Lenient recovery: salvage every parseable hint from a places file,
    reporting what was lost and whether the checksum held.  Never
    raises — this is the crash-recovery path. *)

val parse_places_file : string -> (hint list, string) result
(** Strict recovery: [Error] if the checksum mismatches or any swmhints
    line is malformed (used by [swmhints check] and tests); files without
    a checksum line are accepted for compatibility. *)

val write_atomic : path:string -> string -> unit
(** Write via [path ^ ".tmp"] then rename, so a crash mid-write leaves
    either the old file or the new one, never a torn mixture. *)
