module Server = Swm_xlib.Server
module Metrics = Swm_xlib.Metrics
module Recorder = Swm_xlib.Recorder
module Tracing = Swm_xlib.Tracing
module Prop = Swm_xlib.Prop

type outcome =
  | Stepped of int
  | Recovered of { reason : string; attempts : int }
  | Gave_up of { reason : string }

type t = {
  server : Server.t;
  resources : string list;
  host : string;
  display : string;
  mutable wm : Ctx.t;
  mutable restarts : int;
  mutable max_restarts : int;
  mutable backoff_base_ms : int;
  mutable backoff_max_ms : int;
  mutable stall_limit : int;
  mutable last_stalls : int;
  mutable dead : bool;
  mutable sleep_ms : int -> unit;
  c_recoveries : Metrics.counter;
  c_restarts : Metrics.counter;
  c_giveups : Metrics.counter;
  h_backoff : Metrics.histogram;
}

let int_resource (ctx : Ctx.t) name ~default =
  match Config.query1 ctx.cfg ~screen:0 name with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> n
      | Some _ | None -> default)
  | None -> default

let create ?(resources = []) ?(host = "localhost") ?(display = ":0") server =
  let wm = Wm.start ~resources ~host ~display server in
  let metrics = Server.metrics server in
  let t =
    {
      server;
      resources;
      host;
      display;
      wm;
      restarts = 0;
      max_restarts = int_resource wm "supervisorMaxRestarts" ~default:3;
      backoff_base_ms = int_resource wm "supervisorBackoffMs" ~default:50;
      backoff_max_ms = int_resource wm "supervisorBackoffMaxMs" ~default:2000;
      stall_limit = int_resource wm "supervisorStallLimit" ~default:3;
      last_stalls = Metrics.value wm.Ctx.c_watchdog_stalls;
      dead = false;
      sleep_ms = ignore;
      c_recoveries = Metrics.counter metrics "supervisor.recoveries";
      c_restarts = Metrics.counter metrics "supervisor.restarts";
      c_giveups = Metrics.counter metrics "supervisor.giveups";
      h_backoff = Metrics.histogram metrics "supervisor.backoff_ms";
    }
  in
  t

let wm t = t.wm
let restarts t = t.restarts
let gave_up t = t.dead
let set_sleep t f = t.sleep_ms <- f
let set_max_restarts t n = t.max_restarts <- max 0 n
let set_stall_limit t n = t.stall_limit <- max 1 n

let set_backoff t ~base_ms ~max_ms =
  t.backoff_base_ms <- max 0 base_ms;
  t.backoff_max_ms <- max 1 max_ms

(* Re-seed SWM_PLACES on the root with the live placement of every managed
   client, so the restarted WM's session read re-adopts them where they
   stand.  The dying WM may be arbitrarily broken: everything here is
   best-effort and must not stop the recovery itself. *)
let save_session t =
  let ctx = t.wm in
  (match Functions.places_hints ctx with
  | [] -> ()
  | hints ->
      let text = String.concat "\n" (List.map Session.hint_to_args hints) in
      let root = Server.root t.server ~screen:0 in
      Server.change_property t.server ctx.Ctx.conn root ~name:Prop.swm_places
        (Prop.String text));
  Functions.autosave ctx ~file_arg:None

let sup_record t ~attrs msg =
  let recorder = Server.recorder t.server in
  if Recorder.enabled recorder then
    Recorder.record recorder ~kind:"supervisor" ~attrs msg;
  let tracer = Server.tracer t.server in
  if Tracing.enabled tracer then Tracing.instant tracer ("supervisor." ^ msg)

let recover t ~reason =
  let metrics = Server.metrics t.server in
  Metrics.incr t.c_recoveries;
  sup_record t ~attrs:[ ("reason", reason) ] "recovering";
  (* The journal must not replay supervisor plumbing: a replay re-derives
     the recovery from the same stalls/exceptions. *)
  Server.with_journal_suspended t.server @@ fun () ->
  (try save_session t with _ -> ());
  Recorder.crash (Server.recorder t.server) ~reason ~metrics
    ~tracer:(Server.tracer t.server);
  (try Wm.shutdown t.wm with _ -> ());
  let rec attempt n =
    if n > t.max_restarts then begin
      t.dead <- true;
      Metrics.incr t.c_giveups;
      sup_record t ~attrs:[ ("reason", reason) ] "gave_up";
      Gave_up { reason }
    end
    else begin
      let backoff =
        min t.backoff_max_ms (t.backoff_base_ms * (1 lsl min 20 (n - 1)))
      in
      Metrics.observe t.h_backoff backoff;
      t.sleep_ms backoff;
      match Wm.start ~resources:t.resources ~host:t.host ~display:t.display
              t.server
      with
      | wm ->
          t.wm <- wm;
          t.restarts <- t.restarts + 1;
          t.last_stalls <- Metrics.value wm.Ctx.c_watchdog_stalls;
          Metrics.incr t.c_restarts;
          sup_record t ~attrs:[ ("attempt", string_of_int n) ] "restarted";
          Recovered { reason; attempts = n }
      | exception e ->
          sup_record t
            ~attrs:[ ("attempt", string_of_int n);
                     ("error", Printexc.to_string e) ]
            "restart_failed";
          attempt (n + 1)
    end
  in
  attempt 1

let step ?drive t =
  if t.dead then Gave_up { reason = "supervisor exhausted its restart budget" }
  else begin
    let drive = match drive with Some d -> d | None -> fun wm -> Wm.step wm in
    match drive t.wm with
    | n ->
        let stalls = Metrics.value t.wm.Ctx.c_watchdog_stalls in
        let delta = stalls - t.last_stalls in
        t.last_stalls <- stalls;
        if delta >= t.stall_limit then
          recover t
            ~reason:
              (Printf.sprintf "watchdog: %d stalls in one supervised step"
                 delta)
        else Stepped n
    | exception e ->
        recover t ~reason:("escaped dispatch: " ^ Printexc.to_string e)
  end
