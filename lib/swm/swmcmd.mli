(** Out-of-process command execution (paper §4.3).

    Any client can drive swm by writing command strings to the SWM_COMMAND
    property on a root window; swm reads and deletes the property and
    executes each line.  Functions that need a window put swm into
    prompting mode (the pointer "changes to a question mark") — the next
    button press selects the target.

    Introspection verbs ([f.metrics], [f.trace(dump)], [f.slowlog]) run the
    channel in reverse: swm writes the reply to the SWM_RESULT root
    property, which the sender reads back with {!read_result}. *)

val send :
  Swm_xlib.Server.t -> Swm_xlib.Server.conn -> screen:int -> string -> unit
(** Client side: append one command line to the root property, as the
    [swmcmd] shell utility does. *)

val read_result : Swm_xlib.Server.t -> screen:int -> string option
(** Client side: the current SWM_RESULT reply, if any — the text written by
    the most recent introspection command swm executed. *)

val handle_property_change : Ctx.t -> screen:int -> unit
(** WM side: called on PropertyNotify for SWM_COMMAND — drain and execute.
    A line that fails to parse or execute is not silently dropped: it bumps
    the [swmcmd.errors] counter and, when tracing is on, records a
    [swmcmd.error] instant carrying the offending line. *)
