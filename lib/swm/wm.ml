module Metrics = Swm_xlib.Metrics
module Tracing = Swm_xlib.Tracing
module Recorder = Swm_xlib.Recorder
module Replay = Swm_xlib.Replay
module Profile = Swm_xlib.Profile
module Json = Swm_xlib.Json
module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Atom = Swm_xlib.Atom
module Event = Swm_xlib.Event
module Render = Swm_xlib.Render
module Xrdb = Swm_xrdb.Xrdb
module Wobj = Swm_oi.Wobj
module Menu = Swm_oi.Menu

type t = Ctx.t

let ctx (wm : t) = wm

(* -------- initialisation -------- *)

let root_masks =
  [
    Event.Substructure_redirect;
    Event.Substructure_notify;
    Event.Property_change;
    Event.Button_press_mask;
    Event.Button_release_mask;
    Event.Key_press_mask;
    Event.Pointer_motion_mask;
  ]

let parse_size text ~default =
  match Geom.parse (String.trim text) with
  | Ok { Geom.width = Some w; height = Some h; _ } -> (w, h)
  | Ok _ | Error _ -> default

let setup_screen (ctx : Ctx.t) ~screen =
  let scr = Ctx.screen ctx screen in
  (* Virtual desktop. *)
  (match Config.query1 ctx.cfg ~screen "virtualDesktop" with
  | Some v
    when List.mem (String.lowercase_ascii (String.trim v)) [ "true"; "yes"; "on"; "1" ]
    ->
      let sw, sh = Server.screen_size ctx.server ~screen in
      let size =
        match Config.query1 ctx.cfg ~screen "desktopSize" with
        | Some text -> parse_size text ~default:(sw * 3, sh * 3)
        | None -> (sw * 3, sh * 3)
      in
      let desktops =
        match Config.query1 ctx.cfg ~screen "desktops" with
        | Some v -> ( match int_of_string_opt (String.trim v) with
                      | Some n when n >= 1 -> n
                      | Some _ | None -> 1)
        | None -> 1
      in
      ignore (Vdesk.create ctx ~screen ~size ~desktops ())
  | Some _ | None -> ());
  (* Root bindings. *)
  (match
     Config.query ctx.cfg ~screen ~names:[ "root"; "bindings" ]
       ~classes:[ "Root"; "Bindings" ]
   with
  | Some src -> scr.root_bindings <- Ctx.parsed_bindings ctx src
  | None -> ());
  (* Focus policy. *)
  scr.focus_policy <-
    (match Config.query1 ctx.cfg ~screen "focusPolicy" with
    | Some v -> (
        match String.lowercase_ascii (String.trim v) with
        | "pointer" | "follow" | "followmouse" -> Ctx.Focus_pointer
        | "click" | "clicktofocus" -> Ctx.Focus_click
        | _ -> Ctx.Focus_none)
    | None -> Ctx.Focus_none)

let read_session (ctx : Ctx.t) =
  let root = (Ctx.screen ctx 0).root in
  match Server.get_property ctx.server root ~name:Prop.swm_places with
  | Some (Prop.String text) ->
      (* SWM_PLACES is client-writable: salvage what parses, surface the
         rest instead of silently dropping it. *)
      let stats = Session.load ctx.session text in
      if stats.Session.rejected > 0 then begin
        Metrics.add
          (Metrics.counter (Server.metrics ctx.server) "session.load_errors")
          stats.Session.rejected;
        let first = Option.value stats.Session.first_error ~default:"" in
        Ctx.log ctx "session: rejected %d SWM_PLACES line(s), kept %d (%s)"
          stats.Session.rejected stats.Session.loaded first;
        Tracing.note (Server.tracer ctx.server) "session.load_error"
          ~attrs:
            [
              ("rejected", string_of_int stats.Session.rejected);
              ("loaded", string_of_int stats.Session.loaded);
              ("error", first);
            ]
      end
  | Some _ | None -> ()

(* -------- manage -------- *)

let is_sticky_resource (ctx : Ctx.t) ~screen scope =
  Config.query_client_bool ctx.cfg ~screen scope "sticky" ~default:false

let cascade_slot (ctx : Ctx.t) ~screen =
  let n =
    List.length
      (List.filter (fun (c : Ctx.client) -> c.screen = screen) (Ctx.all_clients ctx))
  in
  let step = 40 in
  Geom.point (16 + (n mod 12 * step)) (16 + (n mod 8 * step))

let initial_position (ctx : Ctx.t) ~screen ~sticky win hint =
  let o = if sticky then Geom.point 0 0 else Vdesk.offset ctx ~screen in
  match (hint : Session.hint option) with
  | Some h -> Geom.point h.geometry.x h.geometry.y
  | None -> (
      match Icccm.read_placement ctx win with
      | Icccm.Place_absolute p ->
          (* USPosition is absolute in the window's own placement space:
             desktop coordinates for a normal window, glass (root)
             coordinates for a sticky one.  Either way the point is used
             verbatim — only viewport-relative (PPosition) and default
             placement add the pan offset. *)
          p
      | Icccm.Place_viewport p -> Geom.point (p.px + o.px) (p.py + o.py)
      | Icccm.Place_default ->
          let slot = cascade_slot ctx ~screen in
          Geom.point (slot.px + o.px) (slot.py + o.py))

let manage_inner (ctx : Ctx.t) win =
  if
    Server.window_exists ctx.server win
    && (not (Server.override_redirect ctx.server win))
    && Ctx.client_of_window ctx win = None
  then begin
    let screen = Server.screen_of_window ctx.server win in
    let instance, class_ = Icccm.read_class ctx win in
    let shaped = Server.is_shaped ctx.server win in
    let hint =
      match Icccm.read_command ctx win with
      | Some command ->
          Session.take_match ctx.session ~command
            ~host:(Icccm.read_client_machine ctx win)
      | None -> None
    in
    let is_panner_window =
      match (Ctx.screen ctx screen).vdesk with
      | Some vdesk -> Xid.equal vdesk.panner_client win
      | None -> false
    in
    let scope0 = { Config.instance; class_; shaped; sticky = false } in
    let sticky =
      match hint with
      | Some h -> h.sticky || is_panner_window
      | None -> is_sticky_resource ctx ~screen scope0 || is_panner_window
    in
    (* A session hint restores the previous client size before decorating. *)
    (match hint with
    | Some h ->
        let geom = Server.geometry ctx.server win in
        Server.move_resize ctx.server ctx.conn win
          { geom with Geom.w = h.geometry.w; h = h.geometry.h }
    | None -> ());
    let client =
      {
        Ctx.cwin = win;
        screen;
        instance;
        class_;
        frame = win;
        deco = None;
        client_panel = None;
        state = Prop.Withdrawn;
        sticky;
        shaped;
        zoom_saved = None;
        icon_obj = None;
        icon_pos = (match hint with Some h -> h.icon_geometry | None -> None);
        holder = None;
        wm_name = Icccm.read_name ctx win;
      }
    in
    Xid.Tbl.replace ctx.clients win client;
    let at = initial_position ctx ~screen ~sticky win hint in
    Ctx.log ctx "manage %s.%s win=%a at=%a%s%s" instance class_ Xid.pp win
      Geom.pp_point at
      (if sticky then " sticky" else "")
      (if hint <> None then " (session hint)" else "");
    Decoration.build ctx client ~at;
    let initial_state =
      match hint with
      | Some h -> h.state
      | None -> (Icccm.read_wm_hints ctx win).initial_state
    in
    (match initial_state with
    | Prop.Iconic ->
        Icccm.set_wm_state ctx client Prop.Normal;
        Icons.iconify ctx client
    | Prop.Normal | Prop.Withdrawn -> Icccm.set_wm_state ctx client Prop.Normal);
    Panner.refresh ctx ~screen
  end

let unmanage (ctx : Ctx.t) (client : Ctx.client) ~destroyed =
  (* An interactive move/resize of a dying client ends now. *)
  (match ctx.mode with
  | Ctx.Moving { m_client; _ } when m_client == client ->
      Server.ungrab_pointer ctx.server ctx.conn;
      ctx.mode <- Ctx.Idle
  | Ctx.Resizing { r_client; _ } when r_client == client ->
      Server.ungrab_pointer ctx.server ctx.conn;
      ctx.mode <- Ctx.Idle
  | Ctx.Moving _ | Ctx.Resizing _ | Ctx.Idle | Ctx.Prompting _ -> ());
  (* Each teardown step is guarded on its own: the client (or its icon
     windows) may already be gone, and a BadWindow while dismantling one
     piece must not leave the rest registered in the tables. *)
  Xguard.run ctx ~where:"unmanage.icon" (fun () ->
      match client.icon_obj with
      | Some icon ->
          (match client.holder with
          | Some holder ->
              holder.holder_clients <-
                List.filter (fun c -> c != client) holder.holder_clients;
              (match holder.holder_obj with
              | Some hobj ->
                  Wobj.remove_child hobj icon;
                  Wobj.relayout hobj
              | None -> ())
          | None -> ());
          Wobj.unrealize icon;
          client.icon_obj <- None
      | None -> ());
  Ctx.log ctx "unmanage %s win=%a destroyed=%b" client.instance Xid.pp client.cwin
    destroyed;
  Xguard.run ctx ~where:"unmanage.teardown" (fun () ->
      Decoration.teardown ctx client ~to_root:(not destroyed));
  Xid.Tbl.remove ctx.clients client.cwin;
  Xid.Tbl.remove ctx.frames client.cwin;
  Xguard.run ctx ~where:"unmanage.refresh" (fun () ->
      Panner.refresh ctx ~screen:client.screen)

(* Manage under guard: the client can disappear between the MapRequest and
   any of the requests manage issues (the twm mid-reparent race).  On an
   absorbed error, roll back whatever made it into the tables. *)
let manage (ctx : Ctx.t) win =
  match Xguard.protect ctx ~where:"manage" (fun () -> manage_inner ctx win) with
  | Some () -> ()
  | None -> (
      match Xid.Tbl.find_opt ctx.clients win with
      | Some client ->
          Xguard.run ctx ~where:"manage.rollback" (fun () ->
              unmanage ctx client ~destroyed:true)
      | None -> ())

let managed (ctx : Ctx.t) win = Ctx.client_of_window ctx win <> None
let find_client (ctx : Ctx.t) win = Ctx.client_of_window ctx win

(* -------- input dispatch -------- *)

let object_of_window (ctx : Ctx.t) win =
  let rec try_screens i =
    if i >= Array.length ctx.screens then None
    else
      match Wobj.find_object (Ctx.screen ctx i).tk win with
      | Some obj -> Some obj
      | None -> try_screens (i + 1)
  in
  try_screens 0

let object_in_menu obj menu =
  let menu_obj = Menu.obj menu in
  let rec walk o =
    o == menu_obj || (match Wobj.parent o with Some p -> walk p | None -> false)
  in
  walk obj

let client_for_object (ctx : Ctx.t) obj =
  match Decoration.frame_of_object ctx obj with
  | Some client -> Some client
  | None -> Icons.client_of_icon_object ctx obj

let screen_of_event_window (ctx : Ctx.t) win =
  if Server.window_exists ctx.server win then Server.screen_of_window ctx.server win
  else 0

(* Set input focus when the screen's focus policy matches the trigger. *)
let apply_focus_policy (ctx : Ctx.t) window trigger =
  match Ctx.client_of_window ctx window with
  | Some client ->
      let scr = Ctx.screen ctx client.screen in
      if scr.focus_policy = trigger then
        Server.set_input_focus ctx.server ctx.conn client.cwin
  | None -> ()

let dispatch_object (ctx : Ctx.t) obj event =
  let screen = Wobj.toolkit_screen (Wobj.toolkit obj) in
  let scr = Ctx.screen ctx screen in
  let menu_invocation =
    match scr.active_menu with
    | Some (menu, menu_client) when object_in_menu obj menu -> Some (menu, menu_client)
    | Some _ | None -> None
  in
  (match Wobj.handler obj with Some h -> h obj event | None -> ());
  let bindings = Ctx.object_bindings ctx obj in
  let funcs = Bindings.lookup bindings event in
  match menu_invocation with
  | Some (menu, menu_client) ->
      Menu.unpost menu;
      scr.active_menu <- None;
      let client =
        match menu_client with Some c -> Some c | None -> client_for_object ctx obj
      in
      Functions.execute ctx (Functions.invocation ~obj ?client ~screen ()) funcs
  | None ->
      if funcs <> [] then begin
        (* A click outside a posted menu dismisses it. *)
        (match scr.active_menu with
        | Some (menu, _) ->
            Menu.unpost menu;
            scr.active_menu <- None
        | None -> ());
        let client = client_for_object ctx obj in
        Functions.execute ctx (Functions.invocation ~obj ?client ~screen ()) funcs
      end

let handle_moving_live (ctx : Ctx.t) (m_client : Ctx.client) grab_offset m_outline
    root_pos commit =
  let screen = m_client.screen in
  let scr = Ctx.screen ctx screen in
  let inside_panner =
    match scr.vdesk with
    | Some vdesk when not (Xid.is_none vdesk.panner_client) ->
        if Server.window_exists ctx.server vdesk.panner_client then begin
          let pg = Server.root_geometry ctx.server vdesk.panner_client in
          if Geom.contains pg root_pos then
            Some
              (Geom.point (root_pos.Geom.px - pg.x) (root_pos.Geom.py - pg.y))
          else None
        end
        else None
    | Some _ | None -> None
  in
  let parent_pos =
    match inside_panner with
    | Some ppos when not m_client.sticky ->
        (* Dropping on the panner repositions on the whole desktop. *)
        Panner.desktop_pos_of_panner_pos ctx ~screen ppos
    | Some _ | None ->
        let o = if m_client.sticky then Geom.point 0 0 else Vdesk.offset ctx ~screen in
        Geom.point
          (root_pos.Geom.px - grab_offset.Geom.px + o.px)
          (root_pos.Geom.py - grab_offset.Geom.py + o.py)
  in
  (if (not (Xid.is_none m_outline)) && not commit then begin
     (* Outline mode: only the outline tracks the pointer. *)
     if Server.window_exists ctx.server m_outline then begin
       let g = Server.geometry ctx.server m_outline in
       Server.move_resize ctx.server ctx.conn m_outline
         { g with Geom.x = parent_pos.Geom.px; y = parent_pos.Geom.py }
     end
   end
   else Decoration.move_frame ctx m_client parent_pos);
  if commit then begin
    if (not (Xid.is_none m_outline)) && Server.window_exists ctx.server m_outline
    then Server.destroy_window ctx.server m_outline;
    Server.ungrab_pointer ctx.server ctx.conn;
    ctx.mode <- Ctx.Idle;
    (* Drag-and-drop destinations: dropping on a root icon with a <Drop>
       binding runs its functions on the dragged client (paper §4.1.3). *)
    let pointer = Server.pointer_pos ctx.server in
    List.iter
      (fun icon ->
        if Wobj.is_realized icon then begin
          let abs = Server.root_geometry ctx.server (Wobj.window icon) in
          if Geom.contains abs pointer then begin
            let funcs = Bindings.drop_functions (Ctx.object_bindings ctx icon) in
            if funcs <> [] then
              Functions.execute ctx
                (Functions.invocation ~obj:icon ~client:m_client ~screen ())
                funcs
          end
        end)
      scr.root_icons;
    Panner.refresh ctx ~screen
  end

(* The dragged client may die mid-gesture; drop the mode instead of acting
   on a destroyed frame. *)
let handle_moving (ctx : Ctx.t) (m_client : Ctx.client) grab_offset m_outline root_pos
    commit =
  if not (Server.window_exists ctx.server m_client.frame) then begin
    if (not (Xid.is_none m_outline)) && Server.window_exists ctx.server m_outline then
      Server.destroy_window ctx.server m_outline;
    Server.ungrab_pointer ctx.server ctx.conn;
    ctx.mode <- Ctx.Idle
  end
  else handle_moving_live ctx m_client grab_offset m_outline root_pos commit

let handle_resizing (ctx : Ctx.t) (r_client : Ctx.client) (sw0, sh0) r_pointer r_dir
    r_frame0 root_pos commit =
  if not (Server.window_exists ctx.server r_client.frame) then begin
    Server.ungrab_pointer ctx.server ctx.conn;
    ctx.mode <- Ctx.Idle
  end
  else begin
  let dx = root_pos.Geom.px - r_pointer.Geom.px in
  let dy = root_pos.Geom.py - r_pointer.Geom.py in
  let w = max 16 (sw0 + (r_dir.Geom.px * dx)) in
  let h = max 16 (sh0 + (r_dir.Geom.py * dy)) in
  Decoration.client_resized ctx r_client (w, h);
  (* Keep the opposite corner anchored when resizing from a left/top
     corner. *)
  let fg = Server.geometry ctx.server r_client.frame in
  let x = if r_dir.Geom.px < 0 then r_frame0.Geom.x + (r_frame0.Geom.w - fg.w) else fg.x in
  let y = if r_dir.Geom.py < 0 then r_frame0.Geom.y + (r_frame0.Geom.h - fg.h) else fg.y in
  if x <> fg.x || y <> fg.y then
    Server.move_resize ctx.server ctx.conn r_client.frame { fg with Geom.x; y };
  if commit then begin
    Server.ungrab_pointer ctx.server ctx.conn;
    ctx.mode <- Ctx.Idle;
    if Panner.is_panner ctx r_client then Panner.panner_resized ctx r_client (w, h);
    Panner.refresh ctx ~screen:r_client.screen
  end
  end

let handle_button_press (ctx : Ctx.t) event window button pos root_pos =
  ignore root_pos;
  (* Any press dismisses an f.identify popup (unless it created it this
     instant; creation happens after dispatch). *)
  if
    (not (Xid.is_none ctx.identify_win))
    && Server.window_exists ctx.server ctx.identify_win
    && not (Xid.equal window ctx.identify_win)
  then begin
    Server.destroy_window ctx.server ctx.identify_win;
    ctx.identify_win <- Xid.none
  end;
  match ctx.mode with
  | Ctx.Prompting _ -> (
      match Functions.client_under_pointer ctx with
      | Some client -> Functions.resume_with_target ctx client
      | None -> ctx.mode <- Ctx.Idle)
  | Ctx.Moving { m_client; grab_offset; m_outline } ->
      handle_moving ctx m_client grab_offset m_outline (Server.pointer_pos ctx.server)
        true
  | Ctx.Resizing { r_client; r_start_client; r_pointer; r_dir; r_frame0 } ->
      handle_resizing ctx r_client r_start_client r_pointer r_dir r_frame0
        (Server.pointer_pos ctx.server) true
  | Ctx.Idle -> (
      apply_focus_policy ctx window Ctx.Focus_click;
      let screen = screen_of_event_window ctx window in
      let scr = Ctx.screen ctx screen in
      (* Panner miniatures. *)
      match Panner.client_of_miniature ctx window with
      | Some mini_client when button = 2 ->
          (* Start a move through the panner: the grab offset is the press
             position within the miniature, scaled up, so that crossing out
             of the panner leaves the full-size window under the pointer. *)
          let scale =
            match scr.vdesk with Some v -> v.Ctx.panner_scale | None -> 1
          in
          ctx.mode <-
            Ctx.Moving
              {
                m_client = mini_client;
                grab_offset = Geom.point (pos.Geom.px * scale) (pos.Geom.py * scale);
                m_outline = Xid.none;
              };
          Server.grab_pointer ctx.server ctx.conn mini_client.frame
      | Some _ ->
          (* Button 1 on a miniature pans, like pressing beside it. *)
          let panner_pos =
            match scr.vdesk with
            | Some vdesk ->
                Server.translate_coordinates ctx.server ~src:window
                  ~dst:vdesk.panner_client pos
            | None -> pos
          in
          Panner.pan_to_pointer ctx ~screen ~panner_pos
      | None -> (
          match Scrollbar.classify ctx ~screen window with
          | Some direction when button = 1 ->
              let bar_pos =
                match direction with
                | `Horizontal -> (
                    match scr.hbar with
                    | Some (bar, _) ->
                        Server.translate_coordinates ctx.server ~src:window ~dst:bar pos
                    | None -> pos)
                | `Vertical -> (
                    match scr.vbar with
                    | Some (bar, _) ->
                        Server.translate_coordinates ctx.server ~src:window ~dst:bar pos
                    | None -> pos)
              in
              Scrollbar.handle_press ctx ~screen direction ~bar_pos;
              Panner.refresh ctx ~screen
          | Some _ | None -> (
          match scr.vdesk with
          | Some vdesk when Xid.equal vdesk.panner_client window && button = 1 ->
              Panner.pan_to_pointer ctx ~screen ~panner_pos:pos
          | _ -> (
              match Xid.Tbl.find_opt ctx.corners window with
              | Some corner_client ->
                  (* Which corner?  Left/top corners anchor the opposite
                     edge while dragging. *)
                  let cg = Server.geometry ctx.server window in
                  let fg = Server.geometry ctx.server corner_client.frame in
                  let dir_x = if cg.x < fg.w / 2 then -1 else 1 in
                  let dir_y = if cg.y < fg.h / 2 then -1 else 1 in
                  let cgeom = Server.geometry ctx.server corner_client.cwin in
                  ctx.mode <-
                    Ctx.Resizing
                      {
                        r_client = corner_client;
                        r_start_client = (cgeom.w, cgeom.h);
                        r_pointer = Server.pointer_pos ctx.server;
                        r_dir = Geom.point dir_x dir_y;
                        r_frame0 = fg;
                      };
                  Server.grab_pointer ctx.server ctx.conn corner_client.frame
              | None -> (
                  match object_of_window ctx window with
                  | Some obj -> dispatch_object ctx obj event
                  | None ->
                      if
                        Xid.equal window scr.root
                        || Vdesk.is_desktop_window ctx ~screen window
                      then begin
                        (match scr.active_menu with
                        | Some (menu, _) ->
                            Menu.unpost menu;
                            scr.active_menu <- None
                        | None -> ());
                        let funcs = Bindings.lookup scr.root_bindings event in
                        Functions.execute ctx
                          (Functions.invocation ~screen ())
                          funcs
                      end)))))

let handle_key_press (ctx : Ctx.t) event window =
  let screen = screen_of_event_window ctx window in
  let scr = Ctx.screen ctx screen in
  match object_of_window ctx window with
  | Some obj -> dispatch_object ctx obj event
  | None ->
      let funcs = Bindings.lookup scr.root_bindings event in
      let client =
        match Ctx.client_of_window ctx window with
        | Some _ as c -> c
        | None -> Functions.client_under_pointer ctx
      in
      Functions.execute ctx (Functions.invocation ?client ~screen ()) funcs

(* -------- event handling -------- *)

let handle_configure_request (ctx : Ctx.t) window (changes : Event.config_changes) =
  match Xid.Tbl.find_opt ctx.clients window with
  | Some client ->
      let cgeom = Server.geometry ctx.server client.cwin in
      let w = Option.value changes.cw ~default:cgeom.w in
      let h = Option.value changes.ch ~default:cgeom.h in
      if w <> cgeom.w || h <> cgeom.h then begin
        Decoration.client_resized ctx client (w, h);
        if Panner.is_panner ctx client then Panner.panner_resized ctx client (w, h)
      end;
      (match (changes.cx, changes.cy) with
      | None, None -> ()
      | cx, cy ->
          (* Requested positions are viewport-relative (PPosition rules). *)
          let o =
            if client.sticky then Geom.point 0 0
            else Vdesk.offset ctx ~screen:client.screen
          in
          let fgeom = Server.geometry ctx.server client.frame in
          let x = match cx with Some x -> x + o.px | None -> fgeom.x in
          let y = match cy with Some y -> y + o.py | None -> fgeom.y in
          Decoration.move_frame ctx client (Geom.point x y));
      (match changes.cstack with
      | Some Event.Above -> Server.raise_window ctx.server ctx.conn client.frame
      | Some Event.Below -> Server.lower_window ctx.server ctx.conn client.frame
      | None -> ());
      if not (Panner.is_panner ctx client) then
        Panner.refresh ctx ~screen:client.screen
  | None ->
      (* Not managed: apply verbatim (we hold the redirect, so this
         configures directly). *)
      if Server.window_exists ctx.server window then
        Server.configure_window ctx.server ctx.conn window changes

let handle_property (ctx : Ctx.t) window name =
  (* The name arriving in the event was interned when the property was
     written, so a single probe resolves it and the comparisons against
     the hot names are int equality, not per-event string walks. *)
  match Server.interned ctx.server name with
  | None -> ()
  | Some atom ->
      let atoms = ctx.atoms in
      let is_root =
        Array.exists
          (fun (scr : Ctx.screen_state) -> Xid.equal scr.root window)
          ctx.screens
      in
      if is_root && Atom.equal atom atoms.a_swm_command then
        Swmcmd.handle_property_change ctx
          ~screen:(screen_of_event_window ctx window)
      else
        match Xid.Tbl.find_opt ctx.clients window with
        | None -> ()
        | Some client ->
            if Atom.equal atom atoms.a_wm_name then Decoration.update_name ctx client
            else if Atom.equal atom atoms.a_wm_icon_name then begin
              match client.icon_obj with
              | Some icon -> (
                  match Wobj.find_descendant icon ~name:"iconname" with
                  | Some obj -> Wobj.set_label obj (Icccm.read_icon_name ctx window)
                  | None -> ())
              | None -> ()
            end

(* -------- event dispatch: the handler table --------

   One handler function per event kind, precomputed into an array indexed
   by {!Event.code} (the classic [event_handlers[LASTEvent]] idiom): the
   per-event cost is one array load and a call instead of a wide variant
   match.  Each handler re-matches its own constructor to destructure (a
   cheap single-tag check); a mismatched code falls through to a no-op,
   and the exhaustiveness of the table itself is pinned by a test over
   [1 .. Event.last_event]. *)

let on_map_request ctx = function
  | Event.Map_request { window; _ } -> (
      match Xid.Tbl.find_opt ctx.Ctx.clients window with
      | Some client ->
          (* Mapping an iconified window deiconifies it (ICCCM). *)
          if client.Ctx.state = Prop.Iconic then begin
            Icons.deiconify ctx client;
            Panner.refresh ctx ~screen:client.screen
          end
          else Server.map_window ctx.server ctx.conn window
      | None -> manage ctx window)
  | _ -> ()

let on_configure_request ctx = function
  | Event.Configure_request { window; changes; _ } ->
      handle_configure_request ctx window changes
  | _ -> ()

let on_destroy_notify ctx = function
  | Event.Destroy_notify { window } -> (
      match Xid.Tbl.find_opt ctx.Ctx.clients window with
      | Some client -> unmanage ctx client ~destroyed:true
      | None -> ())
  | _ -> ()

let on_unmap_notify ctx = function
  | Event.Unmap_notify { window } -> (
      match Xid.Tbl.find_opt ctx.Ctx.clients window with
      | Some client ->
          (* Reparenting briefly unmaps; a real withdrawal leaves the window
             unmapped when we process the event. *)
          if
            Server.window_exists ctx.server window
            && (not (Server.is_mapped ctx.server window))
            && client.Ctx.state <> Prop.Iconic
          then unmanage ctx client ~destroyed:false
      | None -> ())
  | _ -> ()

let on_property_notify ctx = function
  | Event.Property_notify { window; name; _ } -> handle_property ctx window name
  | _ -> ()

let on_button_press ctx event =
  match event with
  | Event.Button_press { window; button; pos; root_pos; _ } ->
      handle_button_press ctx event window button pos root_pos
  | _ -> ()

let on_button_release ctx = function
  | Event.Button_release _ -> (
      match ctx.Ctx.mode with
      | Ctx.Moving { m_client; grab_offset; m_outline } ->
          handle_moving ctx m_client grab_offset m_outline
            (Server.pointer_pos ctx.server) true
      | Ctx.Resizing { r_client; r_start_client; r_pointer; r_dir; r_frame0 } ->
          handle_resizing ctx r_client r_start_client r_pointer r_dir r_frame0
            (Server.pointer_pos ctx.server) true
      | Ctx.Idle | Ctx.Prompting _ -> ())
  | _ -> ()

let on_motion_notify ctx = function
  | Event.Motion_notify { root_pos; _ } -> (
      match ctx.Ctx.mode with
      | Ctx.Moving { m_client; grab_offset; m_outline } ->
          handle_moving ctx m_client grab_offset m_outline root_pos false
      | Ctx.Resizing { r_client; r_start_client; r_pointer; r_dir; r_frame0 } ->
          handle_resizing ctx r_client r_start_client r_pointer r_dir r_frame0 root_pos
            false
      | Ctx.Idle | Ctx.Prompting _ -> ())
  | _ -> ()

let on_key_press ctx event =
  match event with
  | Event.Key_press { window; _ } -> handle_key_press ctx event window
  | _ -> ()

let on_enter_notify ctx event =
  match event with
  | Event.Enter_notify { window } -> (
      apply_focus_policy ctx window Ctx.Focus_pointer;
      match object_of_window ctx window with
      | Some obj -> dispatch_object ctx obj event
      | None -> ())
  | _ -> ()

let on_leave_notify ctx event =
  match event with
  | Event.Leave_notify { window } -> (
      match object_of_window ctx window with
      | Some obj -> dispatch_object ctx obj event
      | None -> ())
  | _ -> ()

let on_ignored (_ : Ctx.t) (_ : Event.t) = ()

(* Every valid code gets an explicit binding, ignored kinds included, so
   the table is total over [1 .. Event.last_event]; the exhaustiveness
   test pins [dispatch_table_codes] against exactly that range.  Slot 0
   (reserved) and anything out of range fall to the no-op default. *)
let handler_bindings : (int * (Ctx.t -> Event.t -> unit)) list =
  [
    (1, on_map_request);
    (2, on_configure_request);
    (3, on_ignored) (* Map_notify *);
    (4, on_unmap_notify);
    (5, on_destroy_notify);
    (6, on_ignored) (* Reparent_notify *);
    (7, on_ignored) (* Configure_notify *);
    (8, on_property_notify);
    (9, on_button_press);
    (10, on_button_release);
    (11, on_key_press);
    (12, on_motion_notify);
    (13, on_enter_notify);
    (14, on_leave_notify);
    (15, on_ignored) (* Expose *);
    (16, on_ignored) (* Client_message *);
    (17, on_ignored) (* Focus_in *);
    (18, on_ignored) (* Focus_out *);
  ]

let handler_table : (Ctx.t -> Event.t -> unit) array =
  let table = Array.make (Event.last_event + 1) on_ignored in
  List.iter (fun (code, handler) -> table.(code) <- handler) handler_bindings;
  table

let dispatch_table_codes () = List.map fst handler_bindings

let handle_event (ctx : Ctx.t) (event : Event.t) =
  handler_table.(Event.code event) ctx event

(* After an absorbed X error the tables may hold clients whose windows are
   already gone (the racing client destroyed them mid-operation).  Unmanage
   each of those — guarded, since teardown touches the same dead windows. *)
let sweep_dead (ctx : Ctx.t) =
  List.iter
    (fun (client : Ctx.client) ->
      if not (Server.window_exists ctx.server client.cwin) then
        Xguard.run ctx ~where:"sweep_dead" (fun () ->
            unmanage ctx client ~destroyed:true))
    (Ctx.all_clients ctx)

(* The periodic crash-safe snapshot: count dispatched events and rewrite the
   autosave file every [autosave_interval] of them (§ robustness). *)
let autosave_tick (ctx : Ctx.t) =
  match ctx.autosave_path with
  | None -> ()
  | Some _ ->
      ctx.autosave_pending <- ctx.autosave_pending + 1;
      if ctx.autosave_pending >= ctx.autosave_interval then
        Xguard.run ctx ~where:"autosave" (fun () ->
            Functions.autosave ctx ~file_arg:None)

(* Every [stats_interval] dispatched events, snapshot the key counters into
   the time-series sampler so [f.stats] can report rates (events/sec,
   faults/sec) instead of only all-time totals. *)
let stats_tick (ctx : Ctx.t) =
  ctx.stats_pending <- ctx.stats_pending + 1;
  if ctx.stats_pending >= ctx.stats_interval then begin
    ctx.stats_pending <- 0;
    Metrics.sample ctx.sampler
  end

(* Every event goes through here so dispatch latency lands in the
   [wm.dispatch_ns] histogram (CPU time) alongside the server's queue
   counters, and — when tracing is on — as a [wm.dispatch] span that
   parents everything the handler does (function runs, redraws, pans).

   The handler runs under {!Xguard}: a BadWindow/BadAccess raised by a
   racing client is absorbed at this boundary (counted in [wm.xerrors]),
   after which dead clients are swept instead of crashing the WM.

   Around the guard sit the health layer's probes: the flight recorder
   logs the event, wall time goes into [wm.dispatch_wall_ns], and a
   dispatch that overruns [watchdog_threshold_ns] counts a
   [watchdog.stalls] — the "the WM froze for a moment" signal that CPU
   time cannot see.  An exception that escapes even Xguard dumps a crash
   report before propagating: the flight recorder's whole purpose is to
   still have the story when that happens. *)
(* Per-kind dispatch constants, precomputed once so the hot loop never
   allocates attr lists or concatenates labels. *)
let span_attrs =
  Array.init (Event.last_event + 1) (fun code ->
      [ ("event", Event.name_of_code code) ])

let dispatch_where =
  Array.init (Event.last_event + 1) (fun code ->
      "dispatch:" ^ Event.name_of_code code)

(* Every [governor_interval] events through the loop, one governor tick:
   re-evaluate the degradation tier and run a server health (quarantine)
   pass.  Under journal suspension — the tier machine and any eviction it
   triggers are WM-derived state a replay recomputes from the same
   inputs. *)
let governor_tick (ctx : Ctx.t) =
  ctx.governor_pending <- ctx.governor_pending + 1;
  if ctx.governor_pending >= ctx.governor_interval then begin
    ctx.governor_pending <- 0;
    Server.with_journal_suspended ctx.server (fun () -> Governor.tick ctx)
  end

let handle_event_full (ctx : Ctx.t) event (stamp : Server.stamp) =
  let metrics = Server.metrics ctx.server in
  let tracer = Server.tracer ctx.server in
  let recorder = Server.recorder ctx.server in
  let code = Event.code event in
  let kind = Event.name_of_code code in
  if Recorder.enabled recorder then
    (* The seq exemplar links this recorder entry (and every request the
       dispatch issues) back to the triggering event's ingress record. *)
    Recorder.record recorder ~kind:"event"
      ~attrs:[ ("seq", string_of_int stamp.Server.seq) ]
      kind;
  Metrics.incr ctx.dispatch_counters.(code);
  (if Tracing.enabled tracer then
     Tracing.span tracer "wm.dispatch"
       ~attrs:(("seq", string_of_int stamp.Server.seq) :: span_attrs.(code))
   else fun f -> f ())
  @@ fun () ->
  (* The profiler's GC probe sits inside the wm.dispatch span: the span's
     duration bounds the probe's wall time from above, which is what makes
     the flamegraph's root frames cover the measured dispatch wall time. *)
  Profile.event_section (Server.profiler ctx.server)
  @@ fun () ->
  let t0 = Metrics.now_mono_ns () in
  let c0 = Sys.time () in
  let req0 = Server.request_count ctx.server in
  ctx.fn_trail <- [];
  (match
     (try
        Xguard.protect ctx ~where:dispatch_where.(code) (fun () ->
            (* WM activity during dispatch is derived state, not session
               input: a replayed WM recomputes it, so it stays out of
               the journal (the WM's own conn is exempt; this covers
               conn-less calls like outline warps too). *)
            Server.with_journal_suspended ctx.server (fun () ->
                handle_event ctx event))
      with e ->
        Recorder.crash recorder
          ~reason:
            (Printf.sprintf "unhandled exception dispatching %s: %s" kind
               (Printexc.to_string e))
          ~metrics ~tracer;
        raise e)
   with
  | Some () -> ()
  | None -> sweep_dead ctx);
  (* Both dispatch clocks land in preresolved histograms: CPU time
     (dispatch_ns, "how much work") and monotonic wall time
     (dispatch_wall_ns, "how long the loop stalled"). *)
  Metrics.observe ctx.h_dispatch_ns (int_of_float ((Sys.time () -. c0) *. 1e9));
  let t1 = Metrics.now_mono_ns () in
  let elapsed = t1 - t0 in
  Metrics.observe ctx.h_dispatch_wall_ns elapsed;
  (* Ingress -> dispatch-complete wall latency, per event class.  A zero
     ingress stamp means the ledger was disarmed when this event entered
     the queue: no residency baseline, so no sample. *)
  if stamp.Server.ingress_ns > 0 then
    Metrics.observe ctx.h_e2e.(code) (t1 - stamp.Server.ingress_ns);
  if Server.ledger_enabled ctx.server then begin
    ctx.wf_ring.(ctx.wf_head) <-
      Some
        {
          Ctx.wf_seq = stamp.Server.seq;
          wf_code = code;
          wf_ingress_ns = stamp.Server.ingress_ns;
          wf_t0 = t0;
          wf_t1 = t1;
          wf_requests = Server.request_count ctx.server - req0;
          wf_fns = List.rev ctx.fn_trail;
        };
    ctx.wf_head <- (ctx.wf_head + 1) mod Array.length ctx.wf_ring
  end;
  if elapsed >= ctx.watchdog_threshold_ns then begin
    Metrics.incr ctx.c_watchdog_stalls;
    let attrs =
      [ ("event", kind); ("dur_ns", string_of_int elapsed) ]
    in
    Tracing.note tracer "watchdog.stall" ~attrs;
    if Recorder.enabled recorder then
      Recorder.record recorder ~kind:"stall" ~attrs kind
  end;
  Metrics.incr ctx.c_events_dispatched;
  governor_tick ctx;
  stats_tick ctx;
  autosave_tick ctx

let handle_event_timed (ctx : Ctx.t) event (stamp : Server.stamp) =
  if ctx.tier = Ctx.Tier_essential && Event.droppable_code (Event.code event)
  then begin
    (* Essential tier: latest-wins events are not worth their dispatch cost
       while overloaded.  The governor still ticks on skipped events, so
       recovery happens even under a pure motion storm. *)
    Metrics.incr ctx.c_gov_skipped;
    Server.ledger_skip ctx.conn event stamp;
    governor_tick ctx;
    stats_tick ctx
  end
  else handle_event_full ctx event stamp

(* The flight recorder's compact state snapshot: the window table, the
   per-screen viewport, and the iconic/sticky id sets — enough to place
   the recorded activity tail against what the WM believed its world
   looked like, small enough to retake every few hundred records.
   Clients are sorted by window id so snapshots diff cleanly. *)
let state_snapshot_json (ctx : Ctx.t) =
  let buf = Buffer.create 512 in
  let clients =
    List.sort
      (fun (a : Ctx.client) b -> Xid.compare a.cwin b.cwin)
      (Ctx.all_clients ctx)
  in
  Buffer.add_string buf
    (Printf.sprintf "{\"managed\":%d,\"clients\":[" (List.length clients));
  List.iteri
    (fun i (c : Ctx.client) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"win\":%d,\"instance\":%s,\"class\":%s,\"state\":%s,\"sticky\":%b}"
           (Xid.to_int c.cwin)
           (Metrics.json_string c.instance)
           (Metrics.json_string c.class_)
           (Metrics.json_string (Prop.wm_state_to_string c.state))
           c.sticky))
    clients;
  let ids pred =
    String.concat ","
      (List.filter_map
         (fun (c : Ctx.client) ->
           if pred c then Some (string_of_int (Xid.to_int c.cwin)) else None)
         clients)
  in
  Buffer.add_string buf
    (Printf.sprintf "],\"iconic\":[%s],\"sticky\":[%s],\"screens\":["
       (ids (fun c -> c.state = Prop.Iconic))
       (ids (fun c -> c.sticky)));
  Array.iteri
    (fun i (_ : Ctx.screen_state) ->
      if i > 0 then Buffer.add_char buf ',';
      let vp = Vdesk.viewport ctx ~screen:i in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"screen\":%d,\"viewport\":{\"x\":%d,\"y\":%d,\"w\":%d,\"h\":%d}}"
           i vp.Geom.x vp.Geom.y vp.Geom.w vp.Geom.h))
    ctx.screens;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* The counters the time-series sampler tracks: enough to derive the
   health rates (events/sec, coalesce ratio, faults/sec) without walking
   the whole registry per sample. *)
let sampled_series =
  [
    "events.enqueued";
    "events.coalesced";
    "events.delivered";
    "wm.events_dispatched";
    "wm.xerrors";
    "watchdog.stalls";
    "faults.injected";
    "swmcmd.errors";
    "vdesk.pans";
  ]

(* Batch size per read: big enough that a pan storm drains in a few reads,
   small enough that shutdown is noticed between batches. *)
let batch_size = 64

let step (ctx : Ctx.t) =
  (* Journal markers: [step] says "the WM drained its queue here" (replay
     re-enacts the drain at the same point in the op stream), [snap] pins
     the convergence snapshot to this safe point — end of step, no handler
     mid-flight — which is what {!Replay.run} compares against. *)
  let recorder = Server.recorder ctx.server in
  Recorder.record_op recorder "step";
  let count = ref 0 in
  let rec drain () =
    if ctx.running || Server.pending ctx.conn > 0 then
      match Server.read_events_stamped ctx.conn ~max:batch_size with
      | [] -> ()
      | events ->
          List.iter
            (fun (event, stamp) ->
              incr count;
              handle_event_timed ctx event stamp)
            events;
          drain ()
  in
  drain ();
  if Recorder.enabled recorder then
    Recorder.journal_snapshot recorder (state_snapshot_json ctx);
  !count

let run (ctx : Ctx.t) ~max_events =
  let recorder = Server.recorder ctx.server in
  Recorder.record_op recorder "step";
  let count = ref 0 in
  let continue = ref true in
  while !continue && ctx.running && !count < max_events do
    match
      Server.read_events_stamped ctx.conn
        ~max:(min batch_size (max_events - !count))
    with
    | [] -> continue := false
    | events ->
        (* A whole batch is dequeued at once, so events already read are
           handled even if a handler clears [running] mid-batch. *)
        List.iter
          (fun (event, stamp) ->
            incr count;
            handle_event_timed ctx event stamp)
          events
  done;
  if Recorder.enabled recorder then
    Recorder.journal_snapshot recorder (state_snapshot_json ctx);
  !count

(* -------- start / shutdown -------- *)

let start ?(resources = []) ?(host = "localhost") ?(display = ":0") server =
  let conn = Server.connect server ~name:"swm" in
  (* The WM's requests never enter the replay journal: a replay starts a
     fresh WM which re-derives all of them.  Startup is suspended wholesale
     so WM-owned pseudo-clients (root panels, the panner) stay out too. *)
  Server.set_journal_exempt conn true;
  Server.with_journal_suspended server @@ fun () ->
  let db = Xrdb.create () in
  let resources = if resources = [] then [ Templates.default ] else resources in
  (* xrdb-style preprocessing: COLOR/WIDTH/HEIGHT defined from the display,
     #include resolving the shipped template names. *)
  let sw, sh = Server.screen_size server ~screen:0 in
  let defines =
    [ ("WIDTH", string_of_int sw); ("HEIGHT", string_of_int sh) ]
    @ if Server.screen_monochrome server ~screen:0 then [] else [ ("COLOR", "1") ]
  in
  let loader name = List.assoc_opt name Templates.names in
  List.iter
    (fun text ->
      match Xrdb.load_string_cpp ~defines ~loader db text with
      | Ok _ -> ()
      | Error msg -> invalid_arg ("Wm.start: bad resources: " ^ msg))
    resources;
  let cfg = Config.create db server in
  let nscreens = Server.screen_count server in
  let screens =
    Array.init nscreens (fun index ->
        let root = Server.root server ~screen:index in
        Server.select_input server conn root root_masks;
        let tk =
          Wobj.create_toolkit ~server ~conn ~screen:index
            ~query:(fun ~names ~classes ->
              Config.object_query cfg ~screen:index ~names ~classes)
        in
        {
          Ctx.index;
          root;
          tk;
          vdesk = None;
          holders = [];
          root_panels = [];
          root_icons = [];
          menus = [];
          active_menu = None;
          root_bindings = [];
          hbar = None;
          vbar = None;
          focus_policy = Ctx.Focus_none;
        })
  in
  let metrics = Server.metrics server in
  let events_by_kind = Metrics.counter_family metrics ~key:"event" "wm.dispatch.events" in
  (* Resolve every per-event metric handle and atom once: dispatch then
     touches only preresolved counters/histograms and compares ints. *)
  let dispatch_counters =
    Array.init (Event.last_event + 1) (fun code ->
        Metrics.labeled_counter events_by_kind (Event.name_of_code code))
  in
  let atoms =
    let i name = Server.intern_name server name in
    {
      Ctx.a_wm_name = i Prop.wm_name;
      a_wm_icon_name = i Prop.wm_icon_name;
      a_wm_class = i Prop.wm_class;
      a_wm_command = i Prop.wm_command;
      a_wm_client_machine = i Prop.wm_client_machine;
      a_wm_hints = i Prop.wm_hints_name;
      a_wm_normal_hints = i Prop.wm_normal_hints;
      a_wm_state = i Prop.wm_state_name;
      a_wm_transient_for = i Prop.wm_transient_for;
      a_wm_protocols = i Prop.wm_protocols;
      a_swm_root = i Prop.swm_root;
      a_swm_command = i Prop.swm_command;
      a_swm_places = i Prop.swm_places;
      a_swm_result = i Prop.swm_result;
    }
  in
  let ctx =
    {
      Ctx.server;
      conn;
      cfg;
      screens;
      clients = Xid.Tbl.create 64;
      frames = Xid.Tbl.create 64;
      corners = Xid.Tbl.create 64;
      panner_minis = Xid.Tbl.create 64;
      session = Session.create_table ();
      binding_cache = Hashtbl.create 32;
      mode = Ctx.Idle;
      running = true;
      restart_requested = false;
      executed = [];
      last_places = None;
      identify_win = Xid.none;
      confirm = (fun _ -> true);
      autosave_path = None;
      autosave_interval = 64;
      autosave_pending = 0;
      sampler = Metrics.sampler (Server.metrics server) sampled_series;
      stats_interval = 32;
      stats_pending = 0;
      watchdog_threshold_ns = 50_000_000;
      tier = Ctx.Tier_full;
      governor_interval = 32;
      governor_pending = 0;
      gov_calm = 0;
      gov_last_stalls = 0;
      c_tier_transitions = Metrics.counter metrics "governor.transitions";
      c_gov_skipped = Metrics.counter metrics "governor.events_skipped";
      events_by_kind;
      dispatch_counters;
      h_dispatch_ns = Metrics.histogram metrics "wm.dispatch_ns";
      h_dispatch_wall_ns = Metrics.histogram metrics "wm.dispatch_wall_ns";
      h_e2e =
        (let fam = Metrics.histogram_family metrics ~key:"event" "event.e2e_ns" in
         Array.init (Event.last_event + 1) (fun code ->
             Metrics.labeled_histogram fam (Event.name_of_code code)));
      wf_ring = Array.make Ctx.waterfall_capacity None;
      wf_head = 0;
      fn_trail = [];
      c_events_dispatched = Metrics.counter metrics "wm.events_dispatched";
      c_watchdog_stalls = Metrics.counter metrics "watchdog.stalls";
      atoms;
      host;
      display;
    }
  in
  (match Config.query1 cfg ~screen:0 "autosaveFile" with
  | Some "" | None -> ()
  | Some path -> ctx.autosave_path <- Some path);
  (match Config.query1 cfg ~screen:0 "autosaveInterval" with
  | Some n -> (
      match int_of_string_opt (String.trim n) with
      | Some n when n > 0 -> ctx.autosave_interval <- n
      | Some _ | None -> ())
  | None -> ());
  (match Config.query1 cfg ~screen:0 "statsInterval" with
  | Some n -> (
      match int_of_string_opt (String.trim n) with
      | Some n when n > 0 -> ctx.stats_interval <- n
      | Some _ | None -> ())
  | None -> ());
  (match Config.query1 cfg ~screen:0 "watchdogThresholdMs" with
  | Some n -> (
      match int_of_string_opt (String.trim n) with
      | Some n when n > 0 -> ctx.watchdog_threshold_ns <- n * 1_000_000
      | Some _ | None -> ())
  | None -> ());
  (* Overload-protection resources: the per-connection queue cap, the
     quarantine thresholds, and the governor cadence. *)
  (match Config.query1 cfg ~screen:0 "queueCap" with
  | Some n -> (
      match int_of_string_opt (String.trim n) with
      | Some n when n > 0 -> Server.set_queue_cap server n
      | Some _ | None -> ())
  | None -> ());
  (let th = ref (Server.health_thresholds server) in
   let float_res name set =
     match Config.query1 cfg ~screen:0 name with
     | Some v -> (
         match float_of_string_opt (String.trim v) with
         | Some f when f > 0.0 -> set f
         | Some _ | None -> ())
     | None -> ()
   in
   float_res "healthQuarantineScore" (fun f ->
       th := { !th with Swm_xlib.Health.quarantine_score = f });
   float_res "healthEvictScore" (fun f ->
       th := { !th with Swm_xlib.Health.evict_score = f });
   (match Config.query1 cfg ~screen:0 "healthCalmTicks" with
   | Some v -> (
       match int_of_string_opt (String.trim v) with
       | Some n when n > 0 -> th := { !th with Swm_xlib.Health.calm_ticks = n }
       | Some _ | None -> ())
   | None -> ());
   Server.set_health_thresholds server !th);
  (match Config.query1 cfg ~screen:0 "governorInterval" with
  | Some n -> (
      match int_of_string_opt (String.trim n) with
      | Some n when n > 0 -> ctx.governor_interval <- n
      | Some _ | None -> ())
  | None -> ());
  (* The flight recorder's state snapshots come from the WM, not the
     server: install the provider now that a ctx exists, then honour the
     arming resources.  [flightRecorder: on] starts recording;
     [flightRecorderDump: PATH] is where crash reports land. *)
  let recorder = Server.recorder server in
  Recorder.set_snapshot_source recorder (fun () -> state_snapshot_json ctx);
  (* Session setup for the replay journal: what a fresh WM needs to be
     started the same way (dump_json emits it as the report's [meta]). *)
  Recorder.set_meta recorder
    (let buf = Buffer.create 256 in
     Buffer.add_string buf "{\"resources\":[";
     List.iteri
       (fun i text ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_string buf (Json.escape text))
       resources;
     Buffer.add_string buf "],\"screens\":[";
     for s = 0 to nscreens - 1 do
       if s > 0 then Buffer.add_char buf ',';
       let w, h = Server.screen_size server ~screen:s in
       Buffer.add_string buf (Printf.sprintf "[%d,%d]" w h)
     done;
     Buffer.add_string buf "]}";
     Buffer.contents buf);
  (match Config.query1 cfg ~screen:0 "flightRecorder" with
  | Some ("on" | "true" | "1") -> Recorder.start recorder
  | Some _ | None -> ());
  (match Config.query1 cfg ~screen:0 "flightRecorderDump" with
  | Some "" | None -> ()
  | Some path -> Recorder.arm_dump recorder ~path);
  read_session ctx;
  for screen = 0 to nscreens - 1 do
    setup_screen ctx ~screen;
    Scrollbar.create ctx ~screen;
    Icons.create_holders ctx ~screen;
    Icons.create_root_icons ctx ~screen;
    (* Root panels and the panner are ordinary clients: manage them. *)
    List.iter (fun win -> manage ctx win) (Root_panel.create ctx ~screen);
    (match Panner.create ctx ~screen with
    | Some panner_win ->
        Server.map_window ctx.server ctx.conn panner_win;
        manage ctx panner_win;
        Panner.refresh ctx ~screen
    | None -> ());
    (* Adopt pre-existing client windows.  Per-child guard: a client can
       die between [children_of] and any of these queries, and one corpse
       must not abort adoption of the rest. *)
    let scr = Ctx.screen ctx screen in
    List.iter
      (fun child ->
        Xguard.run ctx ~where:"adopt" (fun () ->
            if
              Server.is_mapped server child
              && (not (Server.override_redirect server child))
              && (not (managed ctx child))
              && Server.conn_name (Server.owner_of server child) <> "swm"
            then manage ctx child))
      (Server.children_of server scr.root)
  done;
  ignore (step ctx);
  ctx

let shutdown (ctx : Ctx.t) =
  ctx.running <- false;
  Server.disconnect ctx.server ctx.conn

let render_screen (ctx : Ctx.t) ~screen =
  Render.to_string (Render.render ctx.server ~screen ())

(* -------- replay -------- *)

(* The {!Replay} harness: a fresh WM on the replay server, configured from
   the report's recorded resources, stepped wherever the journal says the
   recorded WM drained its queue. *)
let replay_harness (report : Replay.report) server =
  let wm = start ~resources:report.Replay.resources server in
  {
    Replay.h_step = (fun () -> ignore (step wm));
    Replay.h_snapshot = (fun () -> state_snapshot_json wm);
  }

let replay report = Replay.run report ~make:(replay_harness report)

(* Give f.replay its engine (Functions sits below this module and cannot
   start a WM itself). *)
let () = Functions.set_replay_runner replay
