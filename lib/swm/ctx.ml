module Xid = Swm_xlib.Xid
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
module Server = Swm_xlib.Server
module Wobj = Swm_oi.Wobj

type client = {
  cwin : Xid.t;
  screen : int;
  instance : string;
  class_ : string;
  mutable frame : Xid.t;
  mutable deco : Wobj.t option;
  mutable client_panel : Wobj.t option;
  mutable state : Prop.wm_state;
  mutable sticky : bool;
  mutable shaped : bool;
  mutable zoom_saved : (Geom.rect * (int * int)) option;
  mutable icon_obj : Wobj.t option;
  mutable icon_pos : Geom.point option;
  mutable holder : holder option;
  mutable wm_name : string;
}

and holder = {
  holder_name : string;
  holder_screen : int;
  mutable holder_obj : Wobj.t option;
  mutable holder_clients : client list;
  holder_classes : string list;
  hide_when_empty : bool;
  size_to_fit : bool;
  holder_fixed_size : (int * int) option;
  mutable holder_scroll : int;
}

and screen_state = {
  index : int;
  root : Xid.t;
  tk : Wobj.toolkit;
  mutable vdesk : vdesk option;
  mutable holders : holder list;
  mutable root_panels : Wobj.t list;
  mutable root_icons : Wobj.t list;
  mutable menus : (string * Swm_oi.Menu.t) list;
  mutable active_menu : (Swm_oi.Menu.t * client option) option;
  mutable root_bindings : Bindings.binding list;
  mutable hbar : (Xid.t * Xid.t) option; (* horizontal scrollbar: bar, thumb *)
  mutable vbar : (Xid.t * Xid.t) option;
  mutable focus_policy : focus_policy;
}

and focus_policy = Focus_none | Focus_pointer | Focus_click

and vdesk = {
  vwins : Xid.t array;
  mutable current : int;
  mutable vsize : int * int;
  mutable panner_client : Xid.t;
  mutable panner_scale : int;
}

(* Degradation tiers: under load the WM sheds its own discretionary work
   before the server sheds events.  Full = everything; Reduced = skip
   decoration title redraws and panner refreshes; Essential = additionally
   skip dispatching droppable (Motion/Expose) events entirely. *)
type tier = Tier_full | Tier_reduced | Tier_essential

let tier_name = function
  | Tier_full -> "full"
  | Tier_reduced -> "reduced"
  | Tier_essential -> "essential"

(* Per-event waterfall: the most recent dispatches with their full
   ingress -> queue -> dispatch -> f.* -> requests story, filled by
   [Wm.handle_event_full] while the lifecycle ledger is armed and exported
   by [f.waterfall].  Bounded ring, like the flight recorder. *)
type waterfall_rec = {
  wf_seq : int; (* the triggering event's ingress seq *)
  wf_code : int;
  wf_ingress_ns : int; (* 0 when the ledger was disarmed at enqueue *)
  wf_t0 : int; (* dispatch start, monotonic *)
  wf_t1 : int; (* dispatch complete *)
  wf_requests : int; (* output requests issued during this dispatch *)
  wf_fns : string list; (* f.* verbs the dispatch executed, in order *)
}

let waterfall_capacity = 64

type mode =
  | Idle
  | Moving of { m_client : client; grab_offset : Geom.point; m_outline : Xid.t }
  | Resizing of {
      r_client : client;
      r_start_client : int * int;
      r_pointer : Geom.point;
      r_dir : Geom.point; (* +1/-1 per axis: which edges follow the pointer *)
      r_frame0 : Geom.rect;
    }
  | Prompting of Bindings.func_call list

type t = {
  server : Server.t;
  conn : Server.conn;
  cfg : Config.t;
  screens : screen_state array;
  clients : client Xid.Tbl.t;
  frames : client Xid.Tbl.t;
  corners : client Xid.Tbl.t;
  panner_minis : client Xid.Tbl.t;
  session : Session.table;
  binding_cache : (string, Bindings.binding list) Hashtbl.t;
  mutable mode : mode;
  mutable running : bool;
  mutable restart_requested : bool;
  mutable executed : string list;
  mutable last_places : string option;
  mutable identify_win : Xid.t;
  mutable confirm : string -> bool;
  mutable autosave_path : string option;
  mutable autosave_interval : int; (* dispatched events between autosaves *)
  mutable autosave_pending : int; (* events dispatched since the last one *)
  sampler : Swm_xlib.Metrics.sampler;
  mutable stats_interval : int; (* dispatched events between samples *)
  mutable stats_pending : int; (* events since the last sample *)
  mutable watchdog_threshold_ns : int; (* dispatch wall time above = stall *)
  mutable tier : tier; (* current degradation tier (load governor) *)
  mutable governor_interval : int; (* dispatched events between governor ticks *)
  mutable governor_pending : int; (* events since the last governor tick *)
  mutable gov_calm : int; (* consecutive calm ticks toward de-escalation *)
  mutable gov_last_stalls : int; (* watchdog.stalls at the last governor tick *)
  c_tier_transitions : Swm_xlib.Metrics.counter; (* governor.transitions *)
  c_gov_skipped : Swm_xlib.Metrics.counter; (* governor.events_skipped *)
  events_by_kind : Swm_xlib.Metrics.counter_family;
      (* wm.dispatch.events{event} — always-on per-event-kind attribution *)
  dispatch_counters : Swm_xlib.Metrics.counter array;
      (* events_by_kind series resolved per Event.code, so the per-event
         increment is one array load instead of a label-hash lookup *)
  h_dispatch_ns : Swm_xlib.Metrics.histogram; (* wm.dispatch_ns, CPU time *)
  h_dispatch_wall_ns : Swm_xlib.Metrics.histogram; (* wm.dispatch_wall_ns *)
  h_e2e : Swm_xlib.Metrics.histogram array;
      (* event.e2e_ns{event} resolved per Event.code: ingress ->
         dispatch-complete wall latency, observed only for events whose
         entry carries a live ingress stamp (ledger armed) *)
  wf_ring : waterfall_rec option array; (* recent-dispatch waterfall *)
  mutable wf_head : int; (* next write slot *)
  mutable fn_trail : string list;
      (* f.* verbs run by the dispatch in flight (newest first); reset by
         Wm per event, appended by Functions.execute_at *)
  c_events_dispatched : Swm_xlib.Metrics.counter; (* wm.events_dispatched *)
  c_watchdog_stalls : Swm_xlib.Metrics.counter; (* watchdog.stalls *)
  atoms : atoms; (* hot ICCCM/SWM property names, interned once *)
  host : string;
  display : string;
}

(* The property names the WM compares or reads per event, interned in the
   server's atom table at startup so the hot paths compare ints. *)
and atoms = {
  a_wm_name : Swm_xlib.Atom.t;
  a_wm_icon_name : Swm_xlib.Atom.t;
  a_wm_class : Swm_xlib.Atom.t;
  a_wm_command : Swm_xlib.Atom.t;
  a_wm_client_machine : Swm_xlib.Atom.t;
  a_wm_hints : Swm_xlib.Atom.t;
  a_wm_normal_hints : Swm_xlib.Atom.t;
  a_wm_state : Swm_xlib.Atom.t;
  a_wm_transient_for : Swm_xlib.Atom.t;
  a_wm_protocols : Swm_xlib.Atom.t;
  a_swm_root : Swm_xlib.Atom.t;
  a_swm_command : Swm_xlib.Atom.t;
  a_swm_places : Swm_xlib.Atom.t;
  a_swm_result : Swm_xlib.Atom.t;
}

let screen ctx i = ctx.screens.(i)

let client_of_window ctx win =
  match Xid.Tbl.find_opt ctx.clients win with
  | Some _ as found -> found
  | None -> Xid.Tbl.find_opt ctx.frames win

let all_clients ctx = Xid.Tbl.fold (fun _ c acc -> c :: acc) ctx.clients []

let clients_of_class ctx class_ =
  List.filter (fun c -> String.equal c.class_ class_) (all_clients ctx)

let parsed_bindings ctx src =
  match Hashtbl.find_opt ctx.binding_cache src with
  | Some bs -> bs
  | None ->
      let bs = match Bindings.parse src with Ok bs -> bs | Error _ -> [] in
      Hashtbl.replace ctx.binding_cache src bs;
      bs

let object_bindings ctx obj =
  match Wobj.attr obj "bindings" with
  | Some src -> parsed_bindings ctx src
  | None -> []

let client_scope client =
  {
    Config.instance = client.instance;
    class_ = client.class_;
    shaped = client.shaped;
    sticky = client.sticky;
  }

let frame_geometry ctx client = Server.geometry ctx.server client.frame

let log_src = Logs.Src.create "swm" ~doc:"swm window manager"

module Log = (val Logs.src_log log_src : Logs.LOG)

let log _ctx fmt = Format.kasprintf (fun s -> Log.debug (fun m -> m "%s" s)) fmt
