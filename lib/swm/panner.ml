module Metrics = Swm_xlib.Metrics
module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Event = Swm_xlib.Event

let create (ctx : Ctx.t) ~screen =
  let scr = Ctx.screen ctx screen in
  match scr.vdesk with
  | None -> None
  | Some vdesk ->
      let want =
        match Config.query1 ctx.cfg ~screen "panner" with
        | Some v -> (
            match String.lowercase_ascii (String.trim v) with
            | "true" | "yes" | "on" | "1" -> true
            | _ -> false)
        | None -> false
      in
      if not want then None
      else begin
        let scale =
          match
            Config.query ctx.cfg ~screen ~names:[ "panner"; "scale" ]
              ~classes:[ "Panner"; "Scale" ]
          with
          | Some v -> ( match int_of_string_opt (String.trim v) with
                        | Some n when n > 0 -> n
                        | Some _ | None -> 24)
          | None -> 24
        in
        let dw, dh = vdesk.vsize in
        let pw = dw / scale and ph = dh / scale in
        let sw, sh = Server.screen_size ctx.server ~screen in
        let pos =
          match
            Config.query ctx.cfg ~screen ~names:[ "panner"; "geometry" ]
              ~classes:[ "Panner"; "Geometry" ]
          with
          | Some g -> (
              match Geom.parse g with
              | Ok spec ->
                  let r =
                    Geom.resolve spec ~default:(Geom.rect 0 0 pw ph)
                      ~within:(Geom.rect 0 0 sw sh)
                  in
                  Geom.point r.x r.y
              | Error _ -> Geom.point (sw - pw - 16) (sh - ph - 16))
          | None -> Geom.point (sw - pw - 16) (sh - ph - 16)
        in
        let win =
          Server.create_window ctx.server ctx.conn ~parent:scr.root
            ~geom:(Geom.rect pos.px pos.py pw ph) ~background:'.' ()
        in
        Server.change_property ctx.server ctx.conn win ~name:Prop.wm_class
          (Prop.Wm_class { instance = "panner"; class_ = "Panner" });
        Server.change_property ctx.server ctx.conn win ~name:Prop.wm_name
          (Prop.String "Virtual Desktop");
        (* swm placed the panner deliberately: keep that position. *)
        Server.change_property ctx.server ctx.conn win ~name:Prop.wm_normal_hints
          (Prop.Size_hints { Prop.default_size_hints with us_position = true });
        Server.select_input ctx.server ctx.conn win
          [ Event.Button_press_mask; Event.Button_release_mask;
            Event.Pointer_motion_mask ];
        vdesk.panner_client <- win;
        vdesk.panner_scale <- scale;
        Some win
      end

let vdesk_of (ctx : Ctx.t) ~screen = (Ctx.screen ctx screen).vdesk

let is_panner (ctx : Ctx.t) (client : Ctx.client) =
  match vdesk_of ctx ~screen:client.screen with
  | Some vdesk -> Xid.equal vdesk.panner_client client.cwin
  | None -> false

let clear_miniatures (ctx : Ctx.t) ~screen =
  let stale =
    Xid.Tbl.fold
      (fun mini (c : Ctx.client) acc ->
        if c.screen = screen then mini :: acc else acc)
      ctx.panner_minis []
  in
  List.iter
    (fun mini ->
      Xid.Tbl.remove ctx.panner_minis mini;
      if Server.window_exists ctx.server mini then
        Server.destroy_window ctx.server mini)
    stale

let refresh (ctx : Ctx.t) ~screen =
  if ctx.tier <> Ctx.Tier_full then
    (* Degraded: the panner is a luxury redraw.  The governor re-runs
       refresh on every screen when it restores the full tier. *)
    Metrics.incr
      (Metrics.counter (Server.metrics ctx.server) "governor.refreshes_skipped")
  else
  (let tracer = Server.tracer ctx.server in
   if Swm_xlib.Tracing.enabled tracer then
     Swm_xlib.Tracing.span tracer "panner.refresh"
   else fun f -> f ())
  @@ fun () ->
  Metrics.time_ns (Server.metrics ctx.server) "panner.refresh_ns" @@ fun () ->
  Scrollbar.refresh ctx ~screen;
  match vdesk_of ctx ~screen with
  | None -> ()
  | Some vdesk when Xid.is_none vdesk.panner_client -> ()
  | Some vdesk ->
      if Server.window_exists ctx.server vdesk.panner_client then begin
        clear_miniatures ctx ~screen;
        (* Drop any previous outline children owned by us on the panner. *)
        List.iter
          (fun child ->
            if not (Xid.Tbl.mem ctx.panner_minis child) then
              Server.destroy_window ctx.server child)
          (Server.children_of ctx.server vdesk.panner_client);
        let scale = vdesk.panner_scale in
        (* Viewport outline first, so the miniatures stack above it and
           receive their own button presses. *)
        let vp = Vdesk.viewport ctx ~screen in
        let outline =
          Server.create_window ctx.server ctx.conn ~parent:vdesk.panner_client
            ~geom:
              (Geom.rect (vp.x / scale) (vp.y / scale)
                 (max 1 (vp.w / scale))
                 (max 1 (vp.h / scale)))
            ~border:1 ()
        in
        Server.map_window ctx.server ctx.conn outline;
        (* One miniature per non-sticky, non-iconic client on the desktop,
           created bottom-to-top so the panner mirrors the stacking order. *)
        let stacked_clients =
          List.filter_map
            (fun frame -> Xid.Tbl.find_opt ctx.frames frame)
            (Server.children_of ctx.server vdesk.vwins.(vdesk.current))
        in
        List.iter
          (fun (client : Ctx.client) ->
            if
              client.screen = screen && (not client.sticky)
              && client.state = Prop.Normal
              && not (is_panner ctx client)
            then begin
              let geom = Server.geometry ctx.server client.frame in
              let mini =
                Server.create_window ctx.server ctx.conn
                  ~parent:vdesk.panner_client
                  ~geom:
                    (Geom.rect (geom.x / scale) (geom.y / scale)
                       (max 1 (geom.w / scale))
                       (max 1 (geom.h / scale)))
                  ~background:'m' ()
              in
              Server.select_input ctx.server ctx.conn mini
                [ Event.Button_press_mask; Event.Button_release_mask ];
              Server.map_window ctx.server ctx.conn mini;
              Xid.Tbl.replace ctx.panner_minis mini client
            end)
          stacked_clients
      end

let client_of_miniature (ctx : Ctx.t) win = Xid.Tbl.find_opt ctx.panner_minis win

let desktop_pos_of_panner_pos (ctx : Ctx.t) ~screen pos =
  match vdesk_of ctx ~screen with
  | None -> pos
  | Some vdesk ->
      Geom.point (pos.Geom.px * vdesk.panner_scale) (pos.Geom.py * vdesk.panner_scale)

let pan_to_pointer (ctx : Ctx.t) ~screen ~panner_pos =
  let desktop_pos = desktop_pos_of_panner_pos ctx ~screen panner_pos in
  let sw, sh = Server.screen_size ctx.server ~screen in
  Vdesk.pan_to ctx ~screen
    (Geom.point (desktop_pos.px - (sw / 2)) (desktop_pos.py - (sh / 2)));
  refresh ctx ~screen

let panner_resized (ctx : Ctx.t) (client : Ctx.client) (w, h) =
  match vdesk_of ctx ~screen:client.screen with
  | Some vdesk when Xid.equal vdesk.panner_client client.cwin ->
      let scale = vdesk.panner_scale in
      let sw, sh = Server.screen_size ctx.server ~screen:client.screen in
      let dw = max sw (w * scale) and dh = max sh (h * scale) in
      let limited w = min w 32767 in
      Vdesk.resize_desktop ctx ~screen:client.screen (limited dw, limited dh);
      refresh ctx ~screen:client.screen
  | Some _ | None -> ()
