(* Continuous profiling: GC/allocation telemetry around the dispatch and
   wire paths, plus an aggregated call tree built live from the tracer's
   span sink and exported as collapsed-stack (flamegraph) text. *)

type node = {
  mutable nd_count : int;
  mutable nd_total_ns : int;
  mutable nd_alloc_w : float;
  nd_children : (string, node) Hashtbl.t;
}

let new_node () =
  { nd_count = 0; nd_total_ns = 0; nd_alloc_w = 0.; nd_children = Hashtbl.create 4 }

type t = {
  p_metrics : Metrics.t;
  p_tracer : Tracing.t;
  mutable p_armed : bool;
  mutable p_tracer_was_on : bool;
  p_root : node; (* virtual root; its children are the top-level frames *)
  mutable p_dispatch_wall_ns : int;
  mutable p_events : int;
  h_minor_per_event : Metrics.histogram;
  c_promoted : Metrics.counter;
  c_minor_coll : Metrics.counter;
  c_major_coll : Metrics.counter;
}

let create ~metrics ~tracer () =
  {
    p_metrics = metrics;
    p_tracer = tracer;
    p_armed = false;
    p_tracer_was_on = false;
    p_root = new_node ();
    p_dispatch_wall_ns = 0;
    p_events = 0;
    h_minor_per_event = Metrics.histogram metrics "gc.minor_words_per_event";
    c_promoted = Metrics.counter metrics "gc.promoted_words";
    c_minor_coll = Metrics.counter metrics "gc.minor_collections";
    c_major_coll = Metrics.counter metrics "gc.major_collections";
  }

let armed p = p.p_armed
let events p = p.p_events
let dispatch_wall_ns p = p.p_dispatch_wall_ns

let node_child n name =
  match Hashtbl.find_opt n.nd_children name with
  | Some c -> c
  | None ->
      let c = new_node () in
      Hashtbl.replace n.nd_children name c;
      c

let record p name ancestry dur alloc =
  let n = List.fold_left node_child p.p_root ancestry in
  let n = node_child n name in
  n.nd_count <- n.nd_count + 1;
  n.nd_total_ns <- n.nd_total_ns + max 0 dur;
  n.nd_alloc_w <- n.nd_alloc_w +. Float.max 0. alloc

let clear p =
  Hashtbl.reset p.p_root.nd_children;
  p.p_root.nd_count <- 0;
  p.p_root.nd_total_ns <- 0;
  p.p_root.nd_alloc_w <- 0.;
  p.p_dispatch_wall_ns <- 0;
  p.p_events <- 0

let start p =
  if not p.p_armed then begin
    p.p_armed <- true;
    p.p_tracer_was_on <- Tracing.enabled p.p_tracer;
    clear p;
    (* Tracing.start clears the span stack, so the sink installed below can
       never see a span that was opened without its f_minor baseline. *)
    Tracing.start p.p_tracer;
    Tracing.set_sink p.p_tracer (Some (record p))
  end

let stop p =
  if p.p_armed then begin
    p.p_armed <- false;
    Tracing.set_sink p.p_tracer None;
    if not p.p_tracer_was_on then Tracing.stop p.p_tracer
  end

(* -------- GC probes -------- *)

(* Armed is checked again at exit: the event that carries the f.profile(stop)
   command disarms mid-section, and sampling it would count a dispatch whose
   span never reached the sink (skewing coverage). *)
let event_section p f =
  if not p.p_armed then f ()
  else begin
    (* quick_stat's allocation fields only advance at collection
       boundaries; Gc.minor_words reads the allocation pointer, so the
       per-event delta is exact even when no minor GC ran inside. *)
    let m0 = Gc.minor_words () in
    let s0 = Gc.quick_stat () in
    let t0 = Metrics.now_mono_ns () in
    let finish () =
      if p.p_armed then begin
        let t1 = Metrics.now_mono_ns () in
        let s1 = Gc.quick_stat () in
        Metrics.observe p.h_minor_per_event
          (int_of_float (Gc.minor_words () -. m0));
        Metrics.add p.c_promoted
          (int_of_float (s1.Gc.promoted_words -. s0.Gc.promoted_words));
        Metrics.add p.c_minor_coll (s1.Gc.minor_collections - s0.Gc.minor_collections);
        Metrics.add p.c_major_coll (s1.Gc.major_collections - s0.Gc.major_collections);
        p.p_dispatch_wall_ns <- p.p_dispatch_wall_ns + max 0 (t1 - t0);
        p.p_events <- p.p_events + 1
      end
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

type section = Metrics.histogram

let section p name = Metrics.histogram p.p_metrics ("gc.minor_words." ^ name)

let alloc_section p h f =
  if not p.p_armed then f ()
  else begin
    let m0 = Gc.minor_words () in
    let finish () =
      Metrics.observe h (int_of_float (Gc.minor_words () -. m0))
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* -------- export -------- *)

type frame = {
  name : string;
  count : int;
  total_ns : int;
  self_ns : int;
  alloc_words : float;
  children : frame list;
}

let children_total n =
  Hashtbl.fold (fun _ c acc -> acc + c.nd_total_ns) n.nd_children 0

let rec frame_of name n =
  let children =
    List.map
      (fun (cname, c) -> frame_of cname c)
      (List.sort
         (fun (a, _) (b, _) -> String.compare a b)
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) n.nd_children []))
  in
  {
    name;
    count = n.nd_count;
    total_ns = n.nd_total_ns;
    self_ns = max 0 (n.nd_total_ns - children_total n);
    alloc_words = n.nd_alloc_w;
    children;
  }

let roots p = (frame_of "" p.p_root).children

let root_total_ns p = children_total p.p_root

(* Coverage of the profiler's own dispatch-wall accumulator by the tree's
   root frames.  The wm.dispatch span wraps event_section, so under a normal
   profile the roots strictly contain every measured dispatch and coverage
   sits at (or just above, thanks to non-dispatch roots like wire.flush)
   1.0.  > 1 is meaningful, so no clamp. *)
let coverage p =
  if p.p_dispatch_wall_ns <= 0 then 1.
  else float_of_int (root_total_ns p) /. float_of_int p.p_dispatch_wall_ns

let rec frame_json f =
  Printf.sprintf
    "{\"count\":%d,\"total_ns\":%d,\"self_ns\":%d,\"alloc_words\":%.0f,\
     \"children\":{%s}}"
    f.count f.total_ns f.self_ns f.alloc_words
    (String.concat ","
       (List.map
          (fun c -> Metrics.json_string c.name ^ ":" ^ frame_json c)
          f.children))

let to_json p =
  Printf.sprintf
    "{\"armed\":%b,\"events\":%d,\"dispatch_wall_ns\":%d,\"root_total_ns\":%d,\
     \"coverage\":%.3f,\"tree\":{%s}}"
    p.p_armed p.p_events p.p_dispatch_wall_ns (root_total_ns p) (coverage p)
    (String.concat ","
       (List.map
          (fun f -> Metrics.json_string f.name ^ ":" ^ frame_json f)
          (roots p)))

(* Collapsed-stack format: one "frame;frame;frame value" line per tree node
   with self time, value in nanoseconds.  Frame names never contain ';' or
   ' ' in practice, but both would corrupt the stack split, so map them. *)
let collapsed_frame_name name =
  String.map (fun c -> if c = ';' || c = ' ' then '_' else c) name

let to_collapsed p =
  let buf = Buffer.create 1024 in
  let rec walk path f =
    let path = path @ [ collapsed_frame_name f.name ] in
    if f.self_ns > 0 then
      Buffer.add_string buf
        (Printf.sprintf "%s %d\n" (String.concat ";" path) f.self_ns);
    List.iter (walk path) f.children
  in
  List.iter (walk []) (roots p);
  Buffer.contents buf
