(** A minimal JSON reader.

    The exporters in this repo ({!Metrics.to_json}, {!Tracing.to_chrome_json},
    {!Recorder.dump_json}) hand-build their JSON for speed; this is the other
    half — enough of a parser for the consumers that need to read those dumps
    back (the [swmcmd_cli --top] table renderer, the crash-report and
    Prometheus round-trip tests).  Numbers are kept as floats, which is all
    the dumps contain.  Writers still build their own strings for speed;
    {!render} exists for the consumers that must re-emit a parsed fragment
    (the replay snapshot embedded in a repro file). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed).  Errors carry the
    byte offset where parsing failed. *)

(** {1 Accessors}

    All partial accessors return [None] on a type mismatch rather than
    raising, so validation code reads as a chain of matches. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on anything else. *)

val to_list : t -> t list option
val to_string : t -> string option
val to_float : t -> float option
val to_int : t -> int option
(** [Num] truncated toward zero. *)

val escape : string -> string
(** A JSON string literal (quotes included) for [s]. *)

val render : t -> string
(** Serialise back to compact JSON text.  [parse (render v)] returns an
    equal value for everything our writers emit (integral numbers render
    without a fraction part). *)
