(** Binary wire encoding of requests and events.

    The real X11 protocol is a byte stream: fixed 4-byte-aligned request
    frames with an opcode, length and payload, and 32-byte event frames.
    The in-process simulator doesn't need a socket, but the wire layer is
    still implemented — X-style framing, little-endian, length-prefixed —
    for three reasons: protocol traces can be recorded and replayed
    byte-identically; the encoding overhead a real WM pays per request can
    be measured; and round-trip property tests pin down the request/event
    vocabulary precisely.

    Requests are encoded as [opcode(1) pad(1) length(2) payload...] with
    the length in 4-byte units including the header, exactly like X.
    Events are fixed 32-byte frames beginning with their code. *)

(** The request vocabulary (the subset of X this server implements). *)
type request =
  | Create_window of {
      wid : Xid.t;  (** the id the window received when recorded, so traces
                        can refer to it later (X clients allocate ids) *)
      parent : Xid.t;
      geom : Geom.rect;
      border : int;
      override_redirect : bool;
    }
  | Destroy_window of Xid.t
  | Map_window of Xid.t
  | Unmap_window of Xid.t
  | Configure_window of Xid.t * Event.config_changes
  | Reparent_window of { window : Xid.t; parent : Xid.t; pos : Geom.point }
  | Change_property of { window : Xid.t; name : string; value : string }
  | Delete_property of { window : Xid.t; name : string }
  | Select_input of { window : Xid.t; masks : Event.mask list }
  | Grab_pointer of Xid.t
  | Ungrab_pointer
  | Warp_pointer of Geom.point
  | Set_input_focus of Xid.t
  | Shape_rectangles of { window : Xid.t; rects : Geom.rect list }
  | Add_to_save_set of Xid.t
  | Remove_from_save_set of Xid.t

val pp_request : Format.formatter -> request -> unit

val opcode : request -> int
(** The wire opcode (1..16) — also the key of the per-opcode request
    counters in {!Server.metrics}. *)

(** {1 Encode arena}

    The hot-path encoders write into a reusable growable [Bytes] arena
    with an explicit cursor — no per-frame [Buffer], no payload-then-
    frame copy.  A caller owning an arena ({!Wire_conn} keeps one per
    connection) encodes whole batches with a single allocation: the
    final [contents] string.  Reuse is safe because a frame is fully
    materialized before the arena is reset for the next one. *)

module A : sig
  type t

  val create : int -> t
  (** A fresh arena with at least [n] bytes of capacity. *)

  val reset : t -> unit
  val length : t -> int

  val contents : t -> string
  (** Copy of the bytes written so far — the only allocation on the
      encode path. *)
end

val encode_request : request -> string
(** X-framed bytes: 4-byte-aligned, length-prefixed.  Encodes through a
    domain-local scratch arena; allocates only the returned string. *)

val encode_request_into : A.t -> request -> unit
(** Append one framed request to the arena (single pass: header
    reserved, payload written in place, length patched). *)

val encoded_request_size : request -> int
(** Exact byte length [encode_request] would produce, without encoding. *)

val decode_request : string -> pos:int -> (request * int, string) result
(** Decode one request starting at [pos]; returns it and the next
    position. *)

val decode_request_cursor : string -> int ref -> (request, string) result
(** Cursor-style variant: the caller owns the position cell and reuses
    it across frames.  On [Ok] the cursor sits at the next frame; on
    [Error] its value is meaningless. *)

val decode_requests : string -> (request list, string) result

val encode_event : Event.t -> string
(** A fixed 32-byte frame (strings that don't fit are truncated, as X
    events cannot carry arbitrary property data either). *)

val encode_event_into : A.t -> Event.t -> unit
(** Append one 32-byte event frame to the arena. *)

val decode_event : string -> pos:int -> (Event.t * int, string) result

val decode_event_cursor : string -> int ref -> (Event.t, string) result

(** {1 Batched event frames}

    A batch frame carries N events under one length-prefixed header —
    [u8 0xEB | u8 0 | u16 count | u32 payload-bytes | count * 32-byte
    events] — so a connection flush costs one frame instead of N, and a
    reader can skip a batch without decoding it.  The canonical event
    encoding makes the pair inverse down to the byte level:
    [encode_batch (fst (decode_batch bytes)) = bytes]. *)

val encode_batch : Event.t list -> string
val encode_batch_into : A.t -> Event.t list -> unit
val decode_batch : string -> pos:int -> (Event.t list * int, string) result

(** {1 Compression}

    The same X-style compression the server queues apply at enqueue time,
    as pure functions for the wire layer: only the newest kept element is a
    merge candidate, so ordering across kinds is preserved. *)

val compress_events : Event.t list -> Event.t list
(** Collapse consecutive MotionNotify on one window to the latest,
    fold redundant ConfigureNotify runs to the final geometry, and merge
    consecutive Expose damage on one window when the union remains a
    rectangle. *)

val compress_requests : request list -> request list
(** Fold consecutive [Configure_window] requests on the same window into
    one carrying the final changes, and runs of [Warp_pointer] to the last
    position — a panning storm compresses to a single configure. *)

(** {1 Traces} *)

module Trace : sig
  type t

  val create : unit -> t
  val record : t -> request -> unit
  val length : t -> int
  val byte_size : t -> int
  (** Total encoded size — the wire bytes a real connection would carry. *)

  val to_bytes : t -> string
  val of_bytes : string -> (t, string) result
  val requests : t -> request list

  val compress : t -> t
  (** {!compress_requests} applied to the whole trace; replaying the
      compressed trace reaches the same final window state. *)

  val replay :
    t -> Server.t -> Server.conn -> remap:(Xid.t -> Xid.t) -> (int, string) result
  (** Re-issue the requests against a server, translating ids through
      [remap] (ids are server-allocated and differ across instances).
      Returns the number of requests applied; stops at the first error. *)
end

(** {1 Reference encoders}

    The seed Buffer-based encoders, kept as the executable spec of the
    byte format.  The arena-based hot-path encoders above are
    property-tested byte-identical to these; journal hex and the repro
    corpus are defined by this encoding. *)

module Spec : sig
  val encode_request : request -> string
  val encode_event : Event.t -> string
  val encode_batch : Event.t list -> string
end

(** {1 Hex framing} *)

val to_hex : string -> string
(** Lowercase hex of a byte string — how the replay journal carries wire
    frames through JSON. *)

val of_hex : string -> (string, string) result
