(** Typed window property values, including the ICCCM structures swm
    interprets (WM_HINTS, WM_NORMAL_HINTS, WM_STATE, WM_COMMAND, ...).

    A real X server stores properties as raw bytes tagged with a type atom;
    here we store the decoded form directly, which keeps every consumer
    honest about the structure while avoiding an encode/decode round-trip
    that would teach nothing. *)

(** Initial / current state of a client, as in WM_HINTS and WM_STATE. *)
type wm_state = Withdrawn | Normal | Iconic

val pp_wm_state : Format.formatter -> wm_state -> unit
val wm_state_to_string : wm_state -> string
val wm_state_of_string : string -> wm_state option

type wm_hints = {
  input : bool;
  initial_state : wm_state;
  icon_pixmap : string option;  (** bitmap name, e.g. ["xlogo32"] *)
  icon_window : Xid.t option;
  icon_position : Geom.point option;
}

val default_wm_hints : wm_hints

(** WM_NORMAL_HINTS.  [us_*] flags mean "user specified", [p_*] "program
    specified"; swm's Virtual Desktop gives the two different placement
    semantics (see {!section-placement} in the paper, §6.3.2). *)
type size_hints = {
  us_position : bool;
  p_position : bool;
  us_size : bool;
  p_size : bool;
  min_size : (int * int) option;
  max_size : (int * int) option;
  resize_inc : (int * int) option;
}

val default_size_hints : size_hints

type value =
  | String of string
  | String_list of string list  (** e.g. WM_COMMAND argv *)
  | Cardinal of int
  | Cardinal_list of int list
  | Window of Xid.t
  | Atom_list of string list
  | Wm_hints of wm_hints
  | Size_hints of size_hints
  | Wm_state_value of { state : wm_state; icon : Xid.t }
  | Wm_class of { instance : string; class_ : string }

val pp_value : Format.formatter -> value -> unit

(** {1 Well-known property names} *)

val wm_name : string
val wm_icon_name : string
val wm_class : string
val wm_command : string
val wm_client_machine : string
val wm_hints_name : string
val wm_normal_hints : string
val wm_state_name : string
val wm_transient_for : string
val wm_protocols : string
val wm_delete_window : string

val swm_root : string
(** The property swm writes on every client holding the window id of its
    effective root (real root or Virtual Desktop window), so toolkits can
    position popups correctly (paper §6.3.1). *)

val swm_command : string
(** Root-window property carrying swmcmd command strings (paper §4.3). *)

val swm_places : string
(** Root-window property accumulating swmhints session records (§7). *)

val swm_result : string
(** Root-window property where swm writes the reply to an introspection
    command ([f.metrics], [f.trace(dump)], [f.slowlog]) so the sending
    client can read it back — the swmcmd round-trip run in reverse. *)

(** {1 Journal codec} *)

val value_to_text : value -> string
(** A reversible one-line text form of any value, for the replay journal
    (the wire codec only carries string properties). *)

val value_of_text : string -> value option
(** Inverse of {!value_to_text}; [None] on malformed input. *)
