(** Hierarchical span tracing across the request path.

    One tracer lives inside each {!Server} (next to its {!Metrics}
    registry) and every layer of the pipeline reports into it: wire
    decode, queue enqueue/coalesce, batched delivery, WM dispatch,
    [f.*] function invocations, decoration redraws, panner refreshes
    and desktop pans.  With tracing enabled, one interactive gesture
    shows up as a tree: a Button_press dispatch span containing an
    [f.panTo] span containing a [vdesk.pan_to] span containing the
    expose deliveries it caused.

    Costs: when disabled, {!span} is a single mutable-field check and
    the thunk call — no allocation, no clock read.  When enabled, each
    span costs two monotonic clock reads and one record written into a
    fixed-size ring of recent events (oldest overwritten first), so a
    tracer can stay on indefinitely without growing.

    Spans over a configurable threshold are additionally kept in a
    {e slow-op log} with their full ancestry, surviving ring overwrite —
    the post-hoc answer to "what was slow in the last hour".

    Export is Chrome trace-event JSON ({!to_chrome_json}): an object
    with a [traceEvents] array of complete ("ph":"X") and instant
    ("ph":"i") events that loads directly in Perfetto / chrome://tracing,
    where nesting is reconstructed from timestamp containment.

    Clocks: all timestamps come from the monotonic clock
    ({!Metrics.time_mono_ns} uses the same source), never from CPU
    time — span durations measure wall latency, which is what a user
    perceives. *)

type t

type kind = Span | Instant

type event = {
  ev_name : string;
  ev_kind : kind;
  ev_ts : int;  (** start, ns since the tracer's epoch (monotonic) *)
  ev_dur : int;  (** ns; 0 for instants *)
  ev_depth : int;  (** nesting depth at the time the span was open *)
  ev_attrs : (string * string) list;
}

type slow_entry = {
  slow_name : string;
  slow_ts : int;
  slow_dur : int;
  slow_ancestry : string list;  (** outermost enclosing span first *)
  slow_attrs : (string * string) list;
}

val create : ?capacity:int -> ?slow_capacity:int -> unit -> t
(** A disabled tracer with a ring of [capacity] events (default 4096)
    and a slow-op log keeping the [slow_capacity] (default 64) most
    recent slow spans. *)

(** {1 Control} *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val start : t -> unit
(** Clear all recorded events and the slow log, reset the epoch, and
    enable recording. *)

val stop : t -> unit
(** Stop recording; events already in the ring are kept for export. *)

val clear : t -> unit

val set_slow_threshold_ns : t -> int -> unit
(** Spans at least this long (wall time) are copied into the slow-op
    log with their ancestry.  Default 10 ms. *)

val slow_threshold_ns : t -> int

(** {1 Span sink}

    A sink observes every span at the moment it closes, {e independently of
    the ring}: [(name, ancestry, dur_ns, alloc_minor_words)], where
    [ancestry] lists the still-open enclosing spans outermost first (the
    same shape the slow-op log records).  {!Profile} installs one to fold
    spans into an aggregated call tree — because aggregation happens at
    close time rather than by reading the ring back, the tree stays
    consistent no matter how often the ring overwrites old events.

    While a sink is installed, {!span} additionally reads [Gc.minor_words]
    at open and close so the sink receives the words allocated inside the
    span (0. for spans that were already open when the sink was installed).
    Without a sink there is no [Gc] read — the disabled/enabled costs
    documented above are unchanged. *)

type sink = string -> string list -> int -> float -> unit

val set_sink : t -> sink option -> unit
val has_sink : t -> bool

(** {1 Recording} *)

val span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span.  The span is recorded when
    [f] returns {e or raises} (the exception is re-raised); nesting is
    maintained by a stack, so spans opened inside [f] become children. *)

val instant : t -> ?attrs:(string * string) list -> string -> unit
(** A zero-duration point event at the current depth. *)

val note : t -> ?attrs:(string * string) list -> string -> unit
(** An {!instant} that is {e also} copied into the slow-op log
    regardless of duration, with its ancestry — for rare events that
    must survive ring wrap-around (absorbed X errors, injected
    faults' aftermath).  A no-op while disabled, like {!instant}. *)

(** {1 Inspection and export} *)

val events : t -> event list
(** Events surviving in the ring, oldest first. *)

val event_count : t -> int
(** Total events recorded since the last {!start}/{!clear}, including
    ones the ring has since overwritten. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around. *)

val slow_log : t -> slow_entry list
(** Most recent slow spans, oldest first. *)

val to_chrome_json : t -> string
(** The ring as a Chrome trace-event JSON object
    ([{"traceEvents":[...]}], timestamps in microseconds).  Loadable in
    Perfetto and chrome://tracing. *)

val slow_log_json : t -> string
(** The slow-op log as a JSON array of
    [{"name","ts_ns","dur_ns","ancestry":[..],"args":{..}}]. *)
