exception Bad_window of Xid.t
exception Bad_access of string

(* -------- lifecycle ledger --------

   Every event is stamped at ingress ([deliver]) with a monotonic
   timestamp and a sequence id carried in its queue entry, and every exit
   from the pipeline records a fate: delivery, one of the coalescer /
   shed-ladder outcomes (with the surviving entry's seq for merges, so
   coalescing lineage is queryable), the governor's essential-tier skip,
   or eviction with the owning connection.  The fate counters always run
   — they are plain ints, and conservation
   ([enqueued = delivered + sum of fates + pending]) must hold whether or
   not anyone is watching — while the timestamps, the bounded ring of
   recent fate records behind [f.fate], and the [event.queue_ns{event}]
   residency histograms are taken only while the ledger is armed
   ({!set_ledger}, default on). *)

type fate =
  | Delivered
  | Coalesced_into
  | Folded
  | Dropped_oldest
  | Shed
  | Skipped
  | Evicted_with_conn

let fate_name = function
  | Delivered -> "delivered"
  | Coalesced_into -> "coalesced_into"
  | Folded -> "folded"
  | Dropped_oldest -> "dropped_oldest"
  | Shed -> "shed"
  | Skipped -> "skipped"
  | Evicted_with_conn -> "evicted_with_conn"

type fate_record = {
  fr_seq : int;
  fr_survivor : int; (* the surviving entry's seq for merges; -1 otherwise *)
  fr_conn : string;
  fr_code : int;
  fr_window : int;
  fr_fate : fate;
  fr_t_in : int;
  fr_t_fate : int;
}

(* Recent-fates window behind [f.fate]; like the flight recorder's ring,
   it never grows, so a storm costs one slot overwrite per event. *)
let fate_ring_capacity = 512

type ledger = {
  mutable lg_armed : bool;
  mutable lg_seq : int;
  mutable lg_enqueued : int;
  mutable lg_delivered : int;
  mutable lg_coalesced : int;
  mutable lg_folded : int;
  mutable lg_dropped : int;
  mutable lg_shed : int;
  mutable lg_skipped : int;
  mutable lg_evicted : int;
  mutable lg_last_skip : int;
      (* a multi-rect Damage entry expands to several events sharing one
         seq; reclassifying delivered->skipped must count the entry once *)
  lg_fates : fate_record option array;
  mutable lg_head : int; (* next write slot *)
  lg_queue_hist : Metrics.histogram array;
      (* event.queue_ns{event} indexed by Event.code, cached at create *)
}

type stamp = { seq : int; ingress_ns : int }

let mk_ledger metrics =
  let fam = Metrics.histogram_family metrics ~key:"event" "event.queue_ns" in
  {
    lg_armed = true;
    lg_seq = 0;
    lg_enqueued = 0;
    lg_delivered = 0;
    lg_coalesced = 0;
    lg_folded = 0;
    lg_dropped = 0;
    lg_shed = 0;
    lg_skipped = 0;
    lg_evicted = 0;
    lg_last_skip = 0;
    lg_fates = Array.make fate_ring_capacity None;
    lg_head = 0;
    lg_queue_hist =
      Array.init (Event.last_event + 1) (fun code ->
          Metrics.labeled_histogram fam (Event.name_of_code code));
  }

let fate_bump lg = function
  | Delivered -> lg.lg_delivered <- lg.lg_delivered + 1
  | Coalesced_into -> lg.lg_coalesced <- lg.lg_coalesced + 1
  | Folded -> lg.lg_folded <- lg.lg_folded + 1
  | Dropped_oldest -> lg.lg_dropped <- lg.lg_dropped + 1
  | Shed -> lg.lg_shed <- lg.lg_shed + 1
  | Skipped -> lg.lg_skipped <- lg.lg_skipped + 1
  | Evicted_with_conn -> lg.lg_evicted <- lg.lg_evicted + 1

let record_fate lg ~cname ~seq ?(survivor = -1) ~code ~window ~t_in fate =
  fate_bump lg fate;
  if lg.lg_armed then begin
    lg.lg_fates.(lg.lg_head) <-
      Some
        {
          fr_seq = seq;
          fr_survivor = survivor;
          fr_conn = cname;
          fr_code = code;
          fr_window = window;
          fr_fate = fate;
          fr_t_in = t_in;
          fr_t_fate = Metrics.now_mono_ns ();
        };
    lg.lg_head <- (lg.lg_head + 1) mod fate_ring_capacity
  end

(* Damage entries surface as Expose on delivery; fate records use the same
   class so lineage queries line up with what the client would have seen. *)
let expose_code = Event.code (Event.Expose { window = Xid.none; damage = None })

(* Queue entries: most events sit as [Plain]; pending expose damage on a
   window is accumulated as a region so overlapping rectangles merge
   instead of queueing one event each.  Each entry carries its ingress
   stamp; coalescing builds fresh entries, so a merge decides explicitly
   which stamp survives (latest-wins for Plain replacement, the original
   for region accumulation). *)
type entry =
  | Plain of { ev : Event.t; seq : int; t_in : int }
  | Damage of {
      dwindow : Xid.t;
      mutable region : Region.t option; (* None = whole window *)
      seq : int;
      t_in : int;
    }

let entry_meta = function
  | Plain { ev; seq; t_in } ->
      (seq, t_in, Event.code ev, Xid.to_int (Event.window_of ev))
  | Damage { dwindow; seq; t_in; _ } ->
      (seq, t_in, expose_code, Xid.to_int dwindow)

type conn = {
  cid : int;
  cname : string;
  ring : entry Ring.t;
  mutable overflow : (Event.t * stamp) list;
      (* events expanded out of a multi-rect [Damage] entry but not yet
         handed to the client; always delivered before the ring.  They
         share the entry's stamp: the entry was accounted once at pop, so
         spilled rects add nothing to the ledger *)
  mutable overflow_len : int;
      (* tracked incrementally so queue-depth accounting never walks the
         spillover list *)
  mutable cap : int;
      (* hard bound on [pending]: at the cap droppable events are shed
         (coalesce-harder first, then drop-oldest); only state-bearing
         events may overrun it *)
  mutable coalesce : bool;
  mutable alive : bool;
  mutable throttled : bool;
      (* quarantine: a throttled connection gets state-bearing events only;
         droppable classes are shed at enqueue until health recovers *)
  health : Health.t;
  mutable h_shed : int; (* cumulative events shed from this queue *)
  mutable h_rejected : int; (* cumulative rejected wire frames *)
  mutable h_xerrors : int; (* cumulative absorbed X errors *)
  mutable h_stalls : int; (* cumulative stall-tick contributions *)
  mutable stalled : bool;
      (* a stalled connection accumulates events but delivers none — the
         fault harness's model of a client that stopped reading *)
  mutable jexempt : bool;
      (* the WM marks its own connection journal-exempt: a replay restarts
         a fresh WM, which re-derives every WM-issued request itself *)
  m_enqueued : Metrics.counter;
  m_coalesced : Metrics.counter;
  m_delivered : Metrics.counter;
  m_delivered_by : Metrics.counter;
      (* this connection's series in events.delivered.by_conn{conn} — cached
         at connect, so per-client attribution costs one extra increment *)
  m_depth : Metrics.gauge;
  m_batch : Metrics.histogram;
  c_tracer : Tracing.t;
  c_ledger : ledger; (* shared with the server: one ledger fleet-wide *)
}

type window = {
  id : Xid.t;
  mutable screen : int;
  mutable parent : Xid.t; (* Xid.none for roots *)
  mutable children : Xid.t list; (* bottom-to-top *)
  mutable geom : Geom.rect; (* parent-interior coords of the border corner *)
  mutable border : int;
  mutable mapped : bool;
  mutable w_override : bool;
  mutable background : char option;
  mutable label : string option;
  mutable art : string list option;
  mutable shape : Region.t option; (* window-interior coords *)
  props : (Atom.t, Prop.value) Hashtbl.t; (* keyed by interned name *)
  mutable selections : (int * Event.mask list) list; (* cid -> masks *)
  mutable owner : int;
}

type grab = { gcid : int; gwindow : Xid.t }

type screen_spec = { size : int * int; monochrome : bool }

let default_screen = { size = (1152, 900); monochrome = false }

(* Default per-connection queue cap.  Generous relative to the delivery
   batch size (64) so normal bursts never shed, small enough that a
   flooding client is bounded at a few hundred entries. *)
let default_queue_cap = 512

type t = {
  alloc : Xid.Alloc.t;
  windows : window Xid.Tbl.t;
  screens : (Xid.t * screen_spec) array;
  conns : (int, conn) Hashtbl.t;
  atom_table : Atom.table;
  mutable next_cid : int;
  mutable pointer_screen : int;
  mutable pointer : Geom.point;
  mutable grab : grab option;
  mutable focus : Xid.t;
  mutable save_sets : (int * Xid.t) list; (* (cid, window) pairs *)
  mutable requests : int;
  metrics : Metrics.t;
  s_tracer : Tracing.t;
  s_recorder : Recorder.t;
  s_profiler : Profile.t;
  s_ledger : ledger;
  delivered_by_conn : Metrics.counter_family;
  mutable queue_cap : int;
  mutable health_th : Health.thresholds;
  m_shed : Metrics.counter;
  m_shed_state : Metrics.counter;
      (* must stay 0: state-bearing events are never shed; the counter
         exists so dumps and CI gates can assert the invariant *)
  m_overrun : Metrics.counter;
  m_quarantined : Metrics.counter;
  m_unquarantined : Metrics.counter;
  m_evicted : Metrics.counter;
  mutable fault : Fault.t option;
  mutable fault_protected : int list; (* cids faults may never victimise *)
  mutable injecting : bool; (* reentrancy guard: fault execution bumps too *)
  mutable journal_suspended : bool;
      (* the WM wraps its event dispatch in {!with_journal_suspended}: only
         session *inputs* belong in the replay journal, never requests a
         fresh WM would re-issue on its own *)
  mutable journal_busy : bool;
      (* compound requests (disconnect's save-set rescue) journal once at
         the top, not once per nested request *)
}

(* Fault execution needs [destroy_window]/[disconnect], defined below
   [bump]; the indirection is filled in at the bottom of the module. *)
let inject_hook : (t -> unit) ref = ref (fun _ -> ())

let bump server =
  server.requests <- server.requests + 1;
  match server.fault with
  | Some _ when not server.injecting -> !inject_hook server
  | Some _ | None -> ()

let request_count server = server.requests

let lookup server id =
  match Xid.Tbl.find_opt server.windows id with
  | Some w -> w
  | None -> raise (Bad_window id)

let create ?(screens = [ default_screen ]) () =
  let alloc = Xid.Alloc.create () in
  let windows = Xid.Tbl.create 256 in
  let screen_roots =
    List.mapi
      (fun i spec ->
        let id = Xid.Alloc.next alloc in
        let w, h = spec.size in
        let root =
          {
            id;
            screen = i;
            parent = Xid.none;
            children = [];
            geom = Geom.rect 0 0 w h;
            border = 0;
            mapped = true;
            w_override = true;
            background = Some '.';
            label = None;
            art = None;
            shape = None;
            props = Hashtbl.create 8;
            selections = [];
            owner = 0;
          }
        in
        Xid.Tbl.replace windows id root;
        (id, spec))
      screens
  in
  let metrics = Metrics.create () in
  let s_tracer = Tracing.create () in
  {
    alloc;
    windows;
    screens = Array.of_list screen_roots;
    conns = Hashtbl.create 8;
    atom_table = Atom.create_table ();
    next_cid = 1;
    pointer_screen = 0;
    pointer = Geom.point 0 0;
    grab = None;
    focus = Xid.none;
    save_sets = [];
    requests = 0;
    metrics;
    s_tracer;
    s_recorder = Recorder.create ();
    s_profiler = Profile.create ~metrics ~tracer:s_tracer ();
    s_ledger = mk_ledger metrics;
    delivered_by_conn =
      Metrics.counter_family metrics ~key:"conn" "events.delivered.by_conn";
    queue_cap = default_queue_cap;
    health_th = Health.default_thresholds;
    m_shed = Metrics.counter metrics "events.shed";
    m_shed_state = Metrics.counter metrics "events.shed.state_bearing";
    m_overrun = Metrics.counter metrics "queue.cap_overruns";
    m_quarantined = Metrics.counter metrics "health.quarantined";
    m_unquarantined = Metrics.counter metrics "health.recovered";
    m_evicted = Metrics.counter metrics "health.evicted";
    fault = None;
    fault_protected = [];
    injecting = false;
    journal_suspended = false;
    journal_busy = false;
  }

let metrics server = server.metrics
let tracer server = server.s_tracer
let recorder server = server.s_recorder
let profiler server = server.s_profiler

let connect server ~name =
  let cid = server.next_cid in
  server.next_cid <- cid + 1;
  let conn =
    {
      cid;
      cname = name;
      ring = Ring.create ();
      overflow = [];
      overflow_len = 0;
      cap = server.queue_cap;
      coalesce = true;
      alive = true;
      throttled = false;
      health = Health.create ();
      h_shed = 0;
      h_rejected = 0;
      h_xerrors = 0;
      h_stalls = 0;
      stalled = false;
      jexempt = false;
      m_enqueued = Metrics.counter server.metrics "events.enqueued";
      m_coalesced = Metrics.counter server.metrics "events.coalesced";
      m_delivered = Metrics.counter server.metrics "events.delivered";
      m_delivered_by = Metrics.labeled_counter server.delivered_by_conn name;
      m_depth = Metrics.gauge server.metrics "queue.depth";
      m_batch = Metrics.histogram server.metrics "delivery.batch_size";
      c_tracer = server.s_tracer;
      c_ledger = server.s_ledger;
    }
  in
  Hashtbl.replace server.conns cid conn;
  conn

let set_coalesce conn flag = conn.coalesce <- flag

let conn_name conn = conn.cname

(* -------- replay journal taps --------

   Every state-changing request a *client* issues is recorded into the
   flight recorder's journal as an op string ({!Replay} owns the grammar):
   wire-codec frames for protocol requests, compact text ops for device
   synthesis and the few requests the wire codec cannot carry.  The WM's
   own traffic is excluded twice over — its connection is journal-exempt
   and its dispatch runs under {!with_journal_suspended} — because a
   replay restarts a fresh WM that re-derives all of it.  Fault effects
   bypass both exclusions: they are inputs too, just hostile ones. *)

let journaling server =
  Recorder.enabled server.s_recorder
  && (not server.journal_suspended)
  && (not server.injecting)
  && not server.journal_busy

let conn_key conn = Printf.sprintf "%s#%d" conn.cname conn.cid

let journal_frame server conn req =
  if journaling server && not conn.jexempt then
    Recorder.record_op server.s_recorder
      ("frame " ^ conn_key conn ^ " "
      ^ Wire_codec.to_hex (Wire_codec.encode_request req))

let journal_op server op =
  if journaling server then Recorder.record_op server.s_recorder op

let journal_conn_op server conn op =
  if journaling server && not conn.jexempt then
    Recorder.record_op server.s_recorder op

(* Fault effects must reach the journal even when they fire inside WM
   dispatch (suspended) or under the [injecting] guard. *)
let journal_fault server op =
  if Recorder.enabled server.s_recorder && not server.journal_busy then
    Recorder.record_op server.s_recorder op

let set_journal_exempt conn flag = conn.jexempt <- flag

let with_journal_suspended server f =
  let was = server.journal_suspended in
  server.journal_suspended <- true;
  Fun.protect ~finally:(fun () -> server.journal_suspended <- was) f

let mods_bits (m : Keysym.modifiers) =
  (if m.shift then 1 else 0)
  lor (if m.control then 2 else 0)
  lor if m.meta then 4 else 0
let screen_count server = Array.length server.screens

let screen_size server ~screen =
  let _, spec = server.screens.(screen) in
  spec.size

let screen_monochrome server ~screen =
  let _, spec = server.screens.(screen) in
  spec.monochrome

let root server ~screen = fst server.screens.(screen)
let atoms server = server.atom_table

(* -------- event delivery -------- *)

(* X-style event compression at enqueue time, applied only against the
   newest queue entry so relative ordering with other event types is
   preserved: consecutive MotionNotify on the same window keep only the
   latest position, redundant ConfigureNotify sequences (same window, same
   synthetic flag) fold to the final geometry, and consecutive Expose
   damage on the same window merges via Region.union. *)
let try_coalesce conn ~seq ~t_in event =
  conn.coalesce
  &&
  match (event, Ring.peek_back conn.ring) with
  | ( Event.Motion_notify { window; _ },
      Some (Plain { ev = Event.Motion_notify { window = prev; _ }; seq = oseq; t_in = ot }) )
    when Xid.equal window prev ->
      (* Latest-wins replacement: the old observation dies, the incoming
         one (and its stamp) survives. *)
      record_fate conn.c_ledger ~cname:conn.cname ~seq:oseq ~survivor:seq
        ~code:(Event.code event) ~window:(Xid.to_int window) ~t_in:ot
        Coalesced_into;
      Ring.replace_back conn.ring (Plain { ev = event; seq; t_in });
      true
  | ( Event.Configure_notify { window; synthetic; _ },
      Some
        (Plain
           {
             ev = Event.Configure_notify { window = prev; synthetic = sprev; _ };
             seq = oseq;
             t_in = ot;
           }) )
    when Xid.equal window prev && synthetic = sprev ->
      record_fate conn.c_ledger ~cname:conn.cname ~seq:oseq ~survivor:seq
        ~code:(Event.code event) ~window:(Xid.to_int window) ~t_in:ot
        Coalesced_into;
      Ring.replace_back conn.ring (Plain { ev = event; seq; t_in });
      true
  | Event.Expose { window; damage }, Some (Damage d) when Xid.equal window d.dwindow ->
      (match (d.region, damage) with
      | None, _ -> () (* a whole-window expose already subsumes any rect *)
      | _, None -> d.region <- None
      | Some acc, Some r -> d.region <- Some (Region.union acc (Region.of_rect r)));
      (* Region accumulation: the incoming rect merges into the existing
         damage entry, which keeps its original stamp. *)
      record_fate conn.c_ledger ~cname:conn.cname ~seq ~survivor:d.seq
        ~code:expose_code ~window:(Xid.to_int window) ~t_in Coalesced_into;
      true
  | _, (Some _ | None) -> false

(* -------- overload shed policy --------

   Queue depth is bounded by [conn.cap].  At the cap, delivery degrades in
   order: (1) coalesce harder — fold the event into any same-window entry
   anywhere in the ring, not just the newest (sacrifices intra-class
   ordering, allowed for latest-wins classes); (2) shed a droppable event —
   the incoming one, or the oldest droppable entry in the ring when the
   incoming event is state-bearing and needs its slot.  State-bearing
   events are NEVER shed: if no droppable entry can yield a slot they
   overrun the cap (counted in queue.cap_overruns), because desynchronising
   the WM's session model is strictly worse than a bounded overshoot. *)

let queue_depth conn = conn.overflow_len + Ring.length conn.ring

let entry_droppable = function
  | Plain { ev; _ } -> Event.droppable ev
  | Damage _ -> true

(* Fold [event] into any same-window ring entry of its own class.  Only
   called for droppable classes, at the cap. *)
let coalesce_harder conn ~seq ~t_in event =
  let n = Ring.length conn.ring in
  match event with
  | Event.Motion_notify { window; _ } ->
      let rec scan i =
        i >= 0
        &&
        match Ring.get conn.ring i with
        | Some (Plain { ev = Event.Motion_notify { window = prev; _ }; seq = oseq; t_in = ot })
          when Xid.equal prev window ->
            record_fate conn.c_ledger ~cname:conn.cname ~seq:oseq ~survivor:seq
              ~code:(Event.code event) ~window:(Xid.to_int window) ~t_in:ot
              Folded;
            Ring.set conn.ring i (Plain { ev = event; seq; t_in });
            true
        | _ -> scan (i - 1)
      in
      scan (n - 1)
  | Event.Expose { window; damage } ->
      let rec scan i =
        i >= 0
        &&
        match Ring.get conn.ring i with
        | Some (Damage d) when Xid.equal d.dwindow window ->
            (match (d.region, damage) with
            | None, _ -> ()
            | _, None -> d.region <- None
            | Some acc, Some r -> d.region <- Some (Region.union acc (Region.of_rect r)));
            record_fate conn.c_ledger ~cname:conn.cname ~seq ~survivor:d.seq
              ~code:expose_code ~window:(Xid.to_int window) ~t_in Folded;
            true
        | _ -> scan (i - 1)
      in
      scan (n - 1)
  | _ -> false

let note_shed server conn ~seq ~t_in event =
  Metrics.incr server.m_shed;
  conn.h_shed <- conn.h_shed + 1;
  record_fate conn.c_ledger ~cname:conn.cname ~seq ~code:(Event.code event)
    ~window:(Xid.to_int (Event.window_of event))
    ~t_in Shed;
  (* First shed per connection gets a recorder entry; after that, metrics
     carry the count so a sustained storm cannot wipe the flight ring. *)
  if conn.h_shed = 1 && Recorder.enabled server.s_recorder then
    Recorder.record server.s_recorder ~kind:"shed"
      ~attrs:[ ("conn", conn.cname); ("event", Event.kind_name event) ]
      ("shedding from " ^ conn.cname);
  if Tracing.enabled conn.c_tracer then
    Tracing.instant conn.c_tracer "server.shed"
      ~attrs:[ ("event", Event.kind_name event); ("conn", conn.cname) ]

(* Remove the oldest droppable entry; false when the ring holds only
   state-bearing events.  [survivor] is the seq of the incoming event
   whose slot the victim yields. *)
let shed_oldest_droppable server conn ~survivor =
  let n = Ring.length conn.ring in
  let rec scan i =
    i < n
    &&
    match Ring.get conn.ring i with
    | Some entry when entry_droppable entry ->
        ignore (Ring.remove conn.ring i);
        let oseq, ot, code, window = entry_meta entry in
        record_fate conn.c_ledger ~cname:conn.cname ~seq:oseq ~survivor ~code
          ~window ~t_in:ot Dropped_oldest;
        Metrics.incr server.m_shed;
        conn.h_shed <- conn.h_shed + 1;
        if Tracing.enabled conn.c_tracer then
          Tracing.instant conn.c_tracer "server.shed"
            ~attrs:[ ("event", Event.name_of_code code); ("conn", conn.cname) ];
        true
    | _ -> scan (i + 1)
  in
  scan 0

let push_entry conn ~seq ~t_in event =
  (match event with
  | Event.Expose { window; damage } when conn.coalesce ->
      let region = Option.map Region.of_rect damage in
      Ring.push conn.ring (Damage { dwindow = window; region; seq; t_in })
  | _ -> Ring.push conn.ring (Plain { ev = event; seq; t_in }));
  Metrics.record_max conn.m_depth (queue_depth conn)

let deliver server cid event =
  match Hashtbl.find_opt server.conns cid with
  | Some conn when conn.alive ->
      Metrics.incr conn.m_enqueued;
      (* Ingress stamp: the seq always advances (fate conservation runs
         unconditionally); the clock is only read while the ledger is
         armed. *)
      let lg = conn.c_ledger in
      lg.lg_seq <- lg.lg_seq + 1;
      lg.lg_enqueued <- lg.lg_enqueued + 1;
      let seq = lg.lg_seq in
      let t_in = if lg.lg_armed then Metrics.now_mono_ns () else 0 in
      let droppable = Event.droppable event in
      if conn.throttled && droppable then
        (* Quarantined: latest-wins classes are shed outright; the client
           still sees every state-bearing event, so its session model stays
           correct while its delivery budget shrinks. *)
        note_shed server conn ~seq ~t_in event
      else if try_coalesce conn ~seq ~t_in event then begin
        Metrics.incr conn.m_coalesced;
        if Tracing.enabled conn.c_tracer then
          Tracing.instant conn.c_tracer "server.coalesce"
            ~attrs:[ ("event", Event.kind_name event); ("conn", conn.cname) ]
      end
      else if queue_depth conn >= conn.cap then begin
        if droppable then begin
          if coalesce_harder conn ~seq ~t_in event then Metrics.incr conn.m_coalesced
          else if shed_oldest_droppable server conn ~survivor:seq then
            (* drop-oldest: the stalest droppable observation yields its
               slot to the newest one *)
            push_entry conn ~seq ~t_in event
          else note_shed server conn ~seq ~t_in event
        end
        else if shed_oldest_droppable server conn ~survivor:seq then
          push_entry conn ~seq ~t_in event
        else begin
          (* Every queued entry is state-bearing too: overrun the cap
             rather than lose session state. *)
          Metrics.incr server.m_overrun;
          push_entry conn ~seq ~t_in event
        end
      end
      else begin
        if Tracing.enabled conn.c_tracer then
          Tracing.instant conn.c_tracer "server.enqueue"
            ~attrs:[ ("event", Event.kind_name event); ("conn", conn.cname) ];
        push_entry conn ~seq ~t_in event
      end
  | Some _ | None -> ()

let selectors_of window mask =
  List.filter_map
    (fun (cid, masks) -> if List.mem mask masks then Some cid else None)
    window.selections

let notify server window mask event =
  List.iter (fun cid -> deliver server cid event) (selectors_of window mask)

(* Deliver a *Notify event per X semantics: StructureNotify selectors on the
   window itself, SubstructureNotify selectors on its parent. *)
let structure_notify server window event =
  notify server window Event.Structure_notify event;
  if not (Xid.is_none window.parent) then
    notify server (lookup server window.parent) Event.Substructure_notify event

let redirect_holder server window =
  List.find_map
    (fun (cid, masks) ->
      if List.mem Event.Substructure_redirect masks then Some cid else None)
    window.selections
  |> Option.map (fun cid -> Hashtbl.find server.conns cid)

(* -------- window creation / destruction -------- *)

let create_window server conn ~parent ~geom ?(border = 0) ?(override_redirect = false)
    ?background ?label () =
  bump server;
  let parent_win = lookup server parent in
  let id = Xid.Alloc.next server.alloc in
  let window =
    {
      id;
      screen = parent_win.screen;
      parent;
      children = [];
      geom;
      border;
      mapped = false;
      w_override = override_redirect;
      background;
      label;
      art = None;
      shape = None;
      props = Hashtbl.create 8;
      selections = [];
      owner = conn.cid;
    }
  in
  Xid.Tbl.replace server.windows id window;
  parent_win.children <- parent_win.children @ [ id ];
  (* Journalled after allocation so the frame carries the id the session
     actually used — the replay side remaps it if its own allocator
     disagrees (it only can on a minimised subset). *)
  journal_frame server conn
    (Wire_codec.Create_window { wid = id; parent; geom; border; override_redirect });
  id

let window_exists server id = Xid.Tbl.mem server.windows id

let rec destroy_window server id =
  let window = lookup server id in
  List.iter (destroy_window server) window.children;
  if not (Xid.is_none window.parent) then begin
    (match Xid.Tbl.find_opt server.windows window.parent with
    | Some parent ->
        parent.children <- List.filter (fun c -> not (Xid.equal c id)) parent.children
    | None -> ());
    structure_notify server window (Event.Destroy_notify { window = id })
  end;
  server.save_sets <-
    List.filter (fun (_, w) -> not (Xid.equal w id)) server.save_sets;
  if Xid.equal server.focus id then server.focus <- Xid.none;
  (match server.grab with
  | Some g when Xid.equal g.gwindow id -> server.grab <- None
  | Some _ | None -> ());
  Xid.Tbl.remove server.windows id

let destroy_window server id =
  bump server;
  let window = lookup server id in
  if Xid.is_none window.parent then invalid_arg "Server.destroy_window: root window"
  else begin
    journal_op server (Printf.sprintf "destroy %d" (Xid.to_int id));
    destroy_window server id
  end

(* -------- simple accessors -------- *)

let parent_of server id = (lookup server id).parent
let children_of server id = (lookup server id).children
let geometry server id = (lookup server id).geom
let border_width server id = (lookup server id).border
let is_mapped server id = (lookup server id).mapped

let rec is_viewable server id =
  let window = lookup server id in
  window.mapped
  && (Xid.is_none window.parent || is_viewable server window.parent)

let override_redirect server id = (lookup server id).w_override
let screen_of_window server id = (lookup server id).screen

let owner_of server id =
  let window = lookup server id in
  match Hashtbl.find_opt server.conns window.owner with
  | Some conn -> conn
  | None -> raise (Bad_access "owner connection closed")

let set_background server id bg = (lookup server id).background <- bg
let set_label server id label = (lookup server id).label <- label
let label_of server id = (lookup server id).label
let set_art server id art = (lookup server id).art <- art
let art_of server id = (lookup server id).art
let background_of server id = (lookup server id).background

(* Window-interior origin of [id] in root coordinates. *)
let rec interior_origin server id =
  let window = lookup server id in
  if Xid.is_none window.parent then Geom.point window.geom.x window.geom.y
  else begin
    let parent_origin = interior_origin server window.parent in
    Geom.point
      (parent_origin.px + window.geom.x + window.border)
      (parent_origin.py + window.geom.y + window.border)
  end

let translate_coordinates server ~src ~dst point =
  let so = interior_origin server src and d = interior_origin server dst in
  Geom.point (point.Geom.px + so.px - d.px) (point.Geom.py + so.py - d.py)

let root_geometry server id =
  let window = lookup server id in
  let origin = interior_origin server id in
  Geom.rect (origin.px - window.border) (origin.py - window.border) window.geom.w
    window.geom.h

(* -------- pointer hit-testing -------- *)

(* Topmost viewable descendant containing [point] (window-interior coords of
   [win]); shape-aware. *)
let rec descend server win point =
  let window = lookup server win in
  let hit =
    List.fold_left
      (fun acc child_id ->
        let child = lookup server child_id in
        if not child.mapped then acc
        else begin
          let full =
            Geom.rect child.geom.x child.geom.y
              (child.geom.w + (2 * child.border))
              (child.geom.h + (2 * child.border))
          in
          let inside_shape =
            match child.shape with
            | None -> true
            | Some region ->
                Region.contains region
                  (Geom.point
                     (point.Geom.px - child.geom.x - child.border)
                     (point.Geom.py - child.geom.y - child.border))
          in
          if Geom.contains full point && inside_shape then Some child_id else acc
        end)
      None window.children
  in
  match hit with
  | None -> win
  | Some child_id ->
      let child = lookup server child_id in
      descend server child_id
        (Geom.point
           (point.Geom.px - child.geom.x - child.border)
           (point.Geom.py - child.geom.y - child.border))

let window_at server ~screen point = descend server (root server ~screen) point

let window_at_pointer server =
  window_at server ~screen:server.pointer_screen server.pointer

(* -------- mapping -------- *)

let map_window server conn id =
  bump server;
  journal_frame server conn (Wire_codec.Map_window id);
  let window = lookup server id in
  if Xid.is_none window.parent then ()
  else begin
    let parent = lookup server window.parent in
    match redirect_holder server parent with
    | Some holder when holder.cid <> conn.cid && not window.w_override ->
        deliver server holder.cid (Event.Map_request { window = id; parent = parent.id })
    | Some _ | None ->
        if not window.mapped then begin
          window.mapped <- true;
          structure_notify server window (Event.Map_notify { window = id });
          notify server window Event.Exposure_mask
            (Event.Expose { window = id; damage = None })
        end
  end

let unmap_window server conn id =
  bump server;
  journal_frame server conn (Wire_codec.Unmap_window id);
  let window = lookup server id in
  if window.mapped then begin
    window.mapped <- false;
    structure_notify server window (Event.Unmap_notify { window = id })
  end

(* -------- configuration -------- *)

let apply_stacking parent id = function
  | None, _ -> ()
  | Some Event.Above, None ->
      parent.children <-
        List.filter (fun c -> not (Xid.equal c id)) parent.children @ [ id ]
  | Some Event.Below, None ->
      parent.children <-
        id :: List.filter (fun c -> not (Xid.equal c id)) parent.children
  | Some mode, Some sibling ->
      let rest = List.filter (fun c -> not (Xid.equal c id)) parent.children in
      let rec insert = function
        | [] -> [ id ]
        | c :: tl when Xid.equal c sibling -> (
            match mode with
            | Event.Above -> c :: id :: tl
            | Event.Below -> id :: c :: tl)
        | c :: tl -> c :: insert tl
      in
      parent.children <- insert rest

let do_configure server window (changes : Event.config_changes) =
  let geom = window.geom in
  window.geom <-
    {
      Geom.x = Option.value changes.cx ~default:geom.x;
      y = Option.value changes.cy ~default:geom.y;
      w = Option.value changes.cw ~default:geom.w;
      h = Option.value changes.ch ~default:geom.h;
    };
  (match changes.cborder with Some b -> window.border <- b | None -> ());
  (if not (Xid.is_none window.parent) then
     let parent = lookup server window.parent in
     apply_stacking parent window.id (changes.cstack, changes.csibling));
  structure_notify server window
    (Event.Configure_notify
       { window = window.id; geom = window.geom; border = window.border; synthetic = false })

let configure_window server conn id changes =
  bump server;
  journal_frame server conn (Wire_codec.Configure_window (id, changes));
  let window = lookup server id in
  if Xid.is_none window.parent then ()
  else begin
    let parent = lookup server window.parent in
    match redirect_holder server parent with
    | Some holder when holder.cid <> conn.cid && not window.w_override ->
        deliver server holder.cid
          (Event.Configure_request { window = id; parent = parent.id; changes })
    | Some _ | None -> do_configure server window changes
  end

let move_resize server conn id (r : Geom.rect) =
  configure_window server conn id
    { Event.no_changes with cx = Some r.x; cy = Some r.y; cw = Some r.w; ch = Some r.h }

let raise_window server conn id =
  configure_window server conn id { Event.no_changes with cstack = Some Event.Above }

let lower_window server conn id =
  configure_window server conn id { Event.no_changes with cstack = Some Event.Below }

(* -------- reparenting and save-set -------- *)

let reparent_window server conn id ~new_parent ~pos =
  bump server;
  journal_frame server conn (Wire_codec.Reparent_window { window = id; parent = new_parent; pos });
  let window = lookup server id in
  let target = lookup server new_parent in
  if Xid.is_none window.parent then invalid_arg "Server.reparent_window: root window";
  (* BadMatch in real X: the new parent may not be the window or one of its
     descendants. *)
  let rec inside w =
    Xid.equal w id
    || (not (Xid.is_none (lookup server w).parent))
       && inside (lookup server w).parent
  in
  if inside new_parent then raise (Bad_access "reparent would create a cycle");
  let old_parent = lookup server window.parent in
  let was_mapped = window.mapped in
  if was_mapped then begin
    window.mapped <- false;
    structure_notify server window (Event.Unmap_notify { window = id })
  end;
  old_parent.children <- List.filter (fun c -> not (Xid.equal c id)) old_parent.children;
  window.parent <- new_parent;
  window.geom <- { window.geom with x = pos.Geom.px; y = pos.Geom.py };
  target.children <- target.children @ [ id ];
  (* Reparenting across screens moves the whole subtree. *)
  if window.screen <> target.screen then begin
    let rec reset_screen wid =
      let w = lookup server wid in
      w.screen <- target.screen;
      List.iter reset_screen w.children
    in
    reset_screen id
  end;
  let event = Event.Reparent_notify { window = id; parent = new_parent; pos } in
  notify server window Event.Structure_notify event;
  notify server old_parent Event.Substructure_notify event;
  notify server target Event.Substructure_notify event;
  if was_mapped then begin
    window.mapped <- true;
    structure_notify server window (Event.Map_notify { window = id })
  end

let add_to_save_set server conn id =
  bump server;
  journal_frame server conn (Wire_codec.Add_to_save_set id);
  ignore (lookup server id);
  if not (List.mem (conn.cid, id) server.save_sets) then
    server.save_sets <- (conn.cid, id) :: server.save_sets

let remove_from_save_set server conn id =
  bump server;
  journal_frame server conn (Wire_codec.Remove_from_save_set id);
  server.save_sets <-
    List.filter (fun (cid, w) -> not (cid = conn.cid && Xid.equal w id)) server.save_sets

let rec has_ancestor_owned_by server id cid =
  let window = lookup server id in
  if Xid.is_none window.parent then false
  else begin
    let parent = lookup server window.parent in
    parent.owner = cid
    || ((not (Xid.is_none parent.parent)) && has_ancestor_owned_by server window.parent cid)
  end

let disconnect server conn =
  bump server;
  journal_conn_op server conn ("kill " ^ conn_key conn);
  let was_busy = server.journal_busy in
  server.journal_busy <- true;
  Fun.protect ~finally:(fun () -> server.journal_busy <- was_busy) @@ fun () ->
  conn.alive <- false;
  (* Still-queued entries leave through the ledger, not silently: without
     this flush an eviction strands enqueued-but-never-delivered events and
     the fate-conservation invariant breaks fleet-wide.  Overflow events
     were already accounted when their entry was popped. *)
  let rec flush_evicted () =
    match Ring.pop conn.ring with
    | None -> ()
    | Some entry ->
        let seq, t_in, code, window = entry_meta entry in
        record_fate conn.c_ledger ~cname:conn.cname ~seq ~code ~window ~t_in
          Evicted_with_conn;
        flush_evicted ()
  in
  flush_evicted ();
  conn.overflow <- [];
  conn.overflow_len <- 0;
  (* Save-set rescue: windows this client reparented away from the root are
     put back, preserving root-relative position. *)
  let rescued =
    List.filter_map
      (fun (cid, id) ->
        if cid = conn.cid && Xid.Tbl.mem server.windows id then Some id else None)
      server.save_sets
  in
  List.iter
    (fun id ->
      if has_ancestor_owned_by server id conn.cid then begin
        let window = lookup server id in
        let abs = root_geometry server id in
        let screen_root = root server ~screen:window.screen in
        reparent_window server conn id ~new_parent:screen_root
          ~pos:(Geom.point abs.x abs.y);
        if not window.mapped then begin
          window.mapped <- true;
          structure_notify server window (Event.Map_notify { window = id })
        end
      end)
    rescued;
  server.save_sets <- List.filter (fun (cid, _) -> cid <> conn.cid) server.save_sets;
  (* Destroy this client's remaining top-level resources. *)
  let owned =
    Xid.Tbl.fold
      (fun id window acc -> if window.owner = conn.cid then id :: acc else acc)
      server.windows []
  in
  List.iter
    (fun id ->
      if Xid.Tbl.mem server.windows id && not (has_ancestor_owned_by server id conn.cid)
      then destroy_window server id)
    owned;
  (* Drop the client's event selections everywhere. *)
  Xid.Tbl.iter
    (fun _ window ->
      window.selections <- List.filter (fun (cid, _) -> cid <> conn.cid) window.selections)
    server.windows;
  (match server.grab with
  | Some g when g.gcid = conn.cid -> server.grab <- None
  | Some _ | None -> ());
  Hashtbl.remove server.conns conn.cid

(* -------- properties -------- *)

let change_property server conn id ~name value =
  bump server;
  let window = lookup server id in
  let atom = Atom.intern server.atom_table name in
  (* Property fault site: a string write from an unprotected client may
     arrive garbled, so readers must survive malformed property bytes. *)
  let value =
    match (server.fault, value) with
    | Some f, Prop.String s
      when (not server.injecting)
           && (not (List.mem conn.cid server.fault_protected))
           && Fault.draw_property f ->
        Fault.fire f Fault.Garble_property
          ~attrs:[ ("property", name); ("conn", conn.cname) ];
        Prop.String (Fault.garble f s)
    | _ -> value
  in
  (match value with
  | Prop.String s ->
      journal_frame server conn (Wire_codec.Change_property { window = id; name; value = s })
  | v ->
      journal_conn_op server conn
        (Printf.sprintf "prop %s %d %s %s" (conn_key conn) (Xid.to_int id)
           (Wire_codec.to_hex name)
           (Wire_codec.to_hex (Prop.value_to_text v))));
  Hashtbl.replace window.props atom value;
  notify server window Event.Property_change
    (Event.Property_notify { window = id; name; deleted = false })

let get_property server id ~name =
  let window = lookup server id in
  match Atom.intern_existing server.atom_table name with
  | None -> None
  | Some atom -> Hashtbl.find_opt window.props atom

(* The hot-path variant: callers holding an interned id (Ctx caches the
   ICCCM atoms) skip the per-read string hash entirely. *)
let get_property_atom server id atom = Hashtbl.find_opt (lookup server id).props atom
let intern_name server name = Atom.intern server.atom_table name
let interned server name = Atom.intern_existing server.atom_table name

let append_string_property server conn id ~name line =
  let existing =
    match get_property server id ~name with
    | Some (Prop.String s) -> s ^ "\n" ^ line
    | Some _ | None -> line
  in
  change_property server conn id ~name (Prop.String existing)

let delete_property server conn id ~name =
  bump server;
  journal_frame server conn (Wire_codec.Delete_property { window = id; name });
  let window = lookup server id in
  match Atom.intern_existing server.atom_table name with
  | Some atom when Hashtbl.mem window.props atom ->
      Hashtbl.remove window.props atom;
      notify server window Event.Property_change
        (Event.Property_notify { window = id; name; deleted = true })
  | Some _ | None -> ()

let property_names server id =
  Hashtbl.fold
    (fun atom _ acc -> Atom.name server.atom_table atom :: acc)
    (lookup server id).props []

(* -------- event selection and queues -------- *)

let select_input server conn id masks =
  bump server;
  journal_frame server conn (Wire_codec.Select_input { window = id; masks });
  let window = lookup server id in
  if List.mem Event.Substructure_redirect masks then begin
    match redirect_holder server window with
    | Some holder when holder.cid <> conn.cid ->
        raise
          (Bad_access
             (Printf.sprintf "SubstructureRedirect on %s already held by %s"
                (Format.asprintf "%a" Xid.pp id)
                holder.cname))
    | Some _ | None -> ()
  end;
  let others = List.filter (fun (cid, _) -> cid <> conn.cid) window.selections in
  window.selections <- (if masks = [] then others else (conn.cid, masks) :: others)

let selected_masks server conn id =
  match List.assoc_opt conn.cid (lookup server id).selections with
  | Some masks -> masks
  | None -> []

let pending conn = conn.overflow_len + Ring.length conn.ring

(* A coalesced [Damage] entry expands to one Expose per disjoint rectangle
   of its region: the union of delivered damage is exactly the union of the
   damage enqueued. *)
let events_of_entry = function
  | Plain { ev; _ } -> [ ev ]
  | Damage { dwindow; region = None; _ } ->
      [ Event.Expose { window = dwindow; damage = None } ]
  | Damage { dwindow; region = Some region; _ } ->
      List.map
        (fun r -> Event.Expose { window = dwindow; damage = Some r })
        (Region.rects region)

let stamp_of_entry = function
  | Plain { seq; t_in; _ } | Damage { seq; t_in; _ } -> { seq; ingress_ns = t_in }

(* Delivery-side ledger accounting, once per popped entry (a multi-rect
   Damage expansion counts once — the unit of conservation is the queue
   entry): fate counter, queue-residency histogram, fate-ring record. *)
let delivered_fate conn entry =
  let lg = conn.c_ledger in
  lg.lg_delivered <- lg.lg_delivered + 1;
  if lg.lg_armed then begin
    let seq, t_in, code, window = entry_meta entry in
    let t = Metrics.now_mono_ns () in
    if t_in > 0 then Metrics.observe lg.lg_queue_hist.(code) (t - t_in);
    lg.lg_fates.(lg.lg_head) <-
      Some
        {
          fr_seq = seq;
          fr_survivor = -1;
          fr_conn = conn.cname;
          fr_code = code;
          fr_window = window;
          fr_fate = Delivered;
          fr_t_in = t_in;
          fr_t_fate = t;
        };
    lg.lg_head <- (lg.lg_head + 1) mod fate_ring_capacity
  end

let rec next_event_stamped conn =
  if conn.stalled then None
  else
    match conn.overflow with
  | (event, stamp) :: rest ->
      conn.overflow <- rest;
      conn.overflow_len <- conn.overflow_len - 1;
      Metrics.incr conn.m_delivered;
      Metrics.incr conn.m_delivered_by;
      Some (event, stamp)
  | [] -> (
      match Ring.pop conn.ring with
      | None -> None
      | Some entry -> (
          delivered_fate conn entry;
          match events_of_entry entry with
          | [] ->
              (* an empty damage region delivers nothing *)
              next_event_stamped conn
          | event :: rest ->
              let stamp = stamp_of_entry entry in
              conn.overflow <- List.map (fun e -> (e, stamp)) rest;
              (* [rest] was just materialised from one entry, so the walk is
                 over a handful of damage rects, not the queue *)
              conn.overflow_len <- List.length rest;
              Metrics.incr conn.m_delivered;
              Metrics.incr conn.m_delivered_by;
              Some (event, stamp)))

let next_event conn = Option.map fst (next_event_stamped conn)

let rec peek_event conn =
  if conn.stalled then None
  else
    match conn.overflow with
  | (event, _) :: _ -> Some event
  | [] -> (
      match Ring.peek conn.ring with
      | None -> None
      | Some entry -> (
          match events_of_entry entry with
          | [] ->
              ignore (Ring.pop conn.ring);
              delivered_fate conn entry;
              peek_event conn
          | event :: _ -> Some event))

let read_events_stamped conn ~max =
  (if Tracing.enabled conn.c_tracer then
     Tracing.span conn.c_tracer "server.deliver" ~attrs:[ ("conn", conn.cname) ]
   else fun f -> f ())
  @@ fun () ->
  let rec loop acc n =
    if n >= max then List.rev acc
    else
      match next_event_stamped conn with
      | Some pair -> loop (pair :: acc) (n + 1)
      | None -> List.rev acc
  in
  let events = loop [] 0 in
  (match events with [] -> () | _ -> Metrics.observe conn.m_batch (List.length events));
  events

let read_events conn ~max = List.map fst (read_events_stamped conn ~max)
let flush_batch conn = read_events conn ~max:max_int
let drain_events conn = flush_batch conn

(* Post damage to a window: delivered as Expose to Exposure_mask
   selectors; overlapping damage coalesces in their queues. *)
let damage_window server id rect =
  bump server;
  journal_op server
    (Printf.sprintf "damage %d %d %d %d %d" (Xid.to_int id) rect.Geom.x rect.Geom.y
       rect.Geom.w rect.Geom.h);
  let window = lookup server id in
  notify server window Event.Exposure_mask
    (Event.Expose { window = id; damage = Some rect })

let send_event server conn ~dest event =
  bump server;
  journal_conn_op server conn
    (Printf.sprintf "send %s %d %s" (conn_key conn) (Xid.to_int dest)
       (Wire_codec.to_hex (Wire_codec.encode_event event)));
  let window = lookup server dest in
  deliver server window.owner event;
  List.iter
    (fun cid -> if cid <> window.owner then deliver server cid event)
    (selectors_of window Event.Structure_notify)

(* -------- pointer / keyboard -------- *)

let pointer_pos server = server.pointer
let pointer_screen server = server.pointer_screen

(* Deliver a device event: with a grab, relative to the grab window to the
   grabbing client; otherwise propagate from the window under the pointer up
   the ancestor chain to the first window where someone selected [mask]. *)
let deliver_device server mask make_event =
  let root_pos =
    translate_coordinates server
      ~src:(root server ~screen:server.pointer_screen)
      ~dst:(root server ~screen:server.pointer_screen)
      server.pointer
  in
  match server.grab with
  | Some g ->
      let window = lookup server g.gwindow in
      let pos =
        translate_coordinates server
          ~src:(root server ~screen:server.pointer_screen)
          ~dst:g.gwindow server.pointer
      in
      deliver server g.gcid (make_event g.gwindow pos root_pos);
      ignore window
  | None ->
      let rec propagate id =
        let window = lookup server id in
        let interested = selectors_of window mask in
        if interested <> [] then begin
          let pos =
            translate_coordinates server
              ~src:(root server ~screen:server.pointer_screen)
              ~dst:id server.pointer
          in
          List.iter (fun cid -> deliver server cid (make_event id pos root_pos)) interested
        end
        else if not (Xid.is_none window.parent) then propagate window.parent
      in
      propagate (window_at_pointer server)

(* Root-first ancestor chain, including [id] itself. *)
let rec ancestor_chain server id acc =
  if Xid.is_none id then acc
  else ancestor_chain server (lookup server id).parent (id :: acc)

let warp_pointer server ~screen point =
  bump server;
  journal_op server
    (Printf.sprintf "warp %d %d %d" screen point.Geom.px point.Geom.py);
  let before = window_at_pointer server in
  server.pointer_screen <- screen;
  server.pointer <- point;
  let after = window_at_pointer server in
  if not (Xid.equal before after) then begin
    (* X crossing semantics: Leave events from the old window up to (but
       not including) the closest common ancestor, Enter events from below
       the common ancestor down to the new window (NotifyVirtual on the
       intermediate windows). *)
    let chain_a = ancestor_chain server before [] in
    let chain_b = ancestor_chain server after [] in
    let rec strip_common a b =
      match (a, b) with
      | x :: a', y :: b' when Xid.equal x y -> strip_common a' b'
      | _ -> (a, b)
    in
    let leaves, enters = strip_common chain_a chain_b in
    List.iter
      (fun w ->
        if Xid.Tbl.mem server.windows w then
          notify server (lookup server w) Event.Enter_leave_mask
            (Event.Leave_notify { window = w }))
      (List.rev leaves);
    List.iter
      (fun w ->
        if Xid.Tbl.mem server.windows w then
          notify server (lookup server w) Event.Enter_leave_mask
            (Event.Enter_notify { window = w }))
      enters
  end;
  deliver_device server Event.Pointer_motion_mask (fun window pos root_pos ->
      Event.Motion_notify { window; pos; root_pos })

let press_button server ?(mods = Keysym.no_mods) button =
  bump server;
  journal_op server (Printf.sprintf "press %d %d" button (mods_bits mods));
  deliver_device server Event.Button_press_mask (fun window pos root_pos ->
      Event.Button_press { window; button; mods; pos; root_pos })

let release_button server ?(mods = Keysym.no_mods) button =
  bump server;
  journal_op server (Printf.sprintf "release %d %d" button (mods_bits mods));
  deliver_device server Event.Button_release_mask (fun window pos root_pos ->
      Event.Button_release { window; button; mods; pos; root_pos })

let press_key server ?(mods = Keysym.no_mods) keysym =
  bump server;
  journal_op server
    (Printf.sprintf "key %s %d" (Wire_codec.to_hex keysym) (mods_bits mods));
  deliver_device server Event.Key_press_mask (fun window pos root_pos ->
      Event.Key_press { window; keysym; mods; pos; root_pos })

let grab_pointer server conn id =
  bump server;
  journal_frame server conn (Wire_codec.Grab_pointer id);
  ignore (lookup server id);
  match server.grab with
  | Some g when g.gcid <> conn.cid -> raise (Bad_access "pointer already grabbed")
  | Some _ | None -> server.grab <- Some { gcid = conn.cid; gwindow = id }

let ungrab_pointer server conn =
  bump server;
  journal_frame server conn Wire_codec.Ungrab_pointer;
  match server.grab with
  | Some g when g.gcid = conn.cid -> server.grab <- None
  | Some _ | None -> ()

let pointer_grabbed server = server.grab <> None

let set_input_focus server conn id =
  bump server;
  journal_frame server conn (Wire_codec.Set_input_focus id);
  ignore (lookup server id);
  let old = server.focus in
  if not (Xid.equal old id) then begin
    (match Xid.Tbl.find_opt server.windows old with
    | Some old_win ->
        notify server old_win Event.Focus_change_mask (Event.Focus_out { window = old })
    | None -> ());
    server.focus <- id;
    notify server (lookup server id) Event.Focus_change_mask
      (Event.Focus_in { window = id })
  end

let input_focus server = server.focus

(* -------- SHAPE -------- *)

let shape_set server conn id region =
  bump server;
  journal_frame server conn
    (Wire_codec.Shape_rectangles { window = id; rects = Region.rects region });
  (lookup server id).shape <- Some region

let shape_clear server conn id =
  bump server;
  journal_conn_op server conn
    (Printf.sprintf "shapeclear %d" (Xid.to_int id));
  (lookup server id).shape <- None

let shape_get server id = (lookup server id).shape
let is_shaped server id = (lookup server id).shape <> None

(* -------- introspection -------- *)

let all_windows server = Xid.Tbl.fold (fun id _ acc -> id :: acc) server.windows []
let window_count server = Xid.Tbl.length server.windows

(* -------- fault injection -------- *)

let is_fault_protected server cid = cid = 0 || List.mem cid server.fault_protected

let stalled conn = conn.stalled
let set_stalled conn flag = conn.stalled <- flag

(* Pick deterministically among candidates sorted by a stable key, so the
   victim sequence depends only on the plan seed and the request history. *)
let pick rng = function
  | [] -> None
  | candidates ->
      let arr = Array.of_list candidates in
      Some arr.(Random.State.int rng (Array.length arr))

(* Event storm into one connection's queue: alternating Motion and Expose
   over the victim's own windows (sorted, so replay picks the same
   sequence), defeating newest-entry coalescing.  Everything goes through
   [deliver], so the queue cap and shed policy bound it. *)
let flood_conn server conn ~burst =
  let windows =
    Xid.Tbl.fold
      (fun id w acc -> if w.owner = conn.cid then id :: acc else acc)
      server.windows []
    |> List.sort Xid.compare
  in
  let windows =
    match windows with [] -> [| root server ~screen:0 |] | ws -> Array.of_list ws
  in
  for i = 0 to burst - 1 do
    let window = windows.(i mod Array.length windows) in
    let pos = Geom.point (i land 1023) (i land 63) in
    let event =
      if i land 1 = 0 then Event.Motion_notify { window; pos; root_pos = pos }
      else Event.Expose { window; damage = Some (Geom.rect 0 0 8 8) }
    in
    deliver server conn.cid event
  done

let run_fault server f (action : Fault.action) =
  match action with
  | Fault.Destroy_window -> (
      let candidates =
        Xid.Tbl.fold
          (fun id w acc ->
            if (not (Xid.is_none w.parent)) && not (is_fault_protected server w.owner)
            then id :: acc
            else acc)
          server.windows []
        |> List.sort Xid.compare
      in
      match pick (Fault.rng f) candidates with
      | None -> ()
      | Some victim ->
          Fault.fire f action ~attrs:[ ("window", Format.asprintf "%a" Xid.pp victim) ];
          journal_fault server (Printf.sprintf "destroy %d" (Xid.to_int victim));
          destroy_window server victim)
  | Fault.Kill_connection | Fault.Stall_connection -> (
      let candidates =
        Hashtbl.fold
          (fun cid conn acc ->
            if conn.alive && not (is_fault_protected server cid) then conn :: acc
            else acc)
          server.conns []
        |> List.sort (fun a b -> compare a.cid b.cid)
      in
      match pick (Fault.rng f) candidates with
      | None -> ()
      | Some victim ->
          Fault.fire f action ~attrs:[ ("conn", victim.cname) ];
          if action = Fault.Kill_connection then begin
            journal_fault server ("kill " ^ conn_key victim);
            disconnect server victim
          end
          else begin
            journal_fault server
              (Printf.sprintf "stall %s %d" (conn_key victim)
                 (if victim.stalled then 0 else 1));
            victim.stalled <- not victim.stalled
          end)
  | Fault.Flood_events -> (
      let candidates =
        Hashtbl.fold
          (fun cid conn acc ->
            if conn.alive && not (is_fault_protected server cid) then conn :: acc
            else acc)
          server.conns []
        |> List.sort (fun a b -> compare a.cid b.cid)
      in
      match pick (Fault.rng f) candidates with
      | None -> ()
      | Some victim ->
          let burst = Fault.flood_burst f in
          Fault.fire f action
            ~attrs:[ ("conn", victim.cname); ("burst", string_of_int burst) ];
          journal_fault server (Printf.sprintf "flood %s %d" (conn_key victim) burst);
          flood_conn server victim ~burst)
  | Fault.Truncate_frame | Fault.Corrupt_frame | Fault.Garble_property ->
      (* Frame faults are applied by Wire_conn, property faults inline in
         change_property; neither reaches the request site. *)
      ()

let maybe_inject server =
  match server.fault with
  | None -> ()
  | Some f ->
      if not server.injecting then begin
        server.injecting <- true;
        Fun.protect
          ~finally:(fun () -> server.injecting <- false)
          (fun () ->
            match Fault.draw_request f with
            | None -> ()
            | Some action -> run_fault server f action)
      end

let () = inject_hook := maybe_inject

let arm_faults server ?(protect = []) plan =
  let f =
    Fault.arm ~metrics:server.metrics ~tracer:server.s_tracer
      ~recorder:server.s_recorder plan
  in
  server.fault <- Some f;
  server.fault_protected <- List.map (fun conn -> conn.cid) protect;
  f

let disarm_faults server =
  server.fault <- None;
  server.fault_protected <- []

let faults server = server.fault

(* -------- overload protection: caps, health, quarantine -------- *)

let queue_cap server = server.queue_cap

let set_queue_cap server cap =
  let cap = max 1 cap in
  server.queue_cap <- cap;
  Hashtbl.iter (fun _ conn -> conn.cap <- cap) server.conns

let set_health_thresholds server th = server.health_th <- th
let health_thresholds server = server.health_th

(* Pressure attribution from the wire layer: rejected frames and absorbed
   X errors count against the submitting connection's health. *)
let note_rejected conn = conn.h_rejected <- conn.h_rejected + 1
let note_conn_xerror conn = conn.h_xerrors <- conn.h_xerrors + 1

let conn_health conn = conn.health.Health.state
let conn_health_score conn = conn.health.Health.score
let is_throttled conn = conn.throttled
let shed_count conn = conn.h_shed

(* Worst queue-depth-to-cap ratio across live connections: the load
   governor's primary input. *)
let max_queue_ratio server =
  Hashtbl.fold
    (fun _ conn acc ->
      if conn.alive then
        max acc (float_of_int (pending conn) /. float_of_int (max 1 conn.cap))
      else acc)
    server.conns 0.0

(* -------- lifecycle ledger: queries -------- *)

type ledger_counts = {
  lc_enqueued : int;
  lc_delivered : int;
  lc_coalesced : int;
  lc_folded : int;
  lc_dropped : int;
  lc_shed : int;
  lc_skipped : int;
  lc_evicted : int;
  lc_pending : int;
  lc_balance : int;
}

let set_ledger server flag = server.s_ledger.lg_armed <- flag
let ledger_enabled server = server.s_ledger.lg_armed

(* Pending in conservation terms is ring entries only: overflow events were
   accounted (once, as their entry) when the entry was popped. *)
let ledger_counts server =
  let lg = server.s_ledger in
  let pending =
    Hashtbl.fold
      (fun _ conn acc -> if conn.alive then acc + Ring.length conn.ring else acc)
      server.conns 0
  in
  let accounted =
    lg.lg_delivered + lg.lg_coalesced + lg.lg_folded + lg.lg_dropped + lg.lg_shed
    + lg.lg_skipped + lg.lg_evicted
  in
  {
    lc_enqueued = lg.lg_enqueued;
    lc_delivered = lg.lg_delivered;
    lc_coalesced = lg.lg_coalesced;
    lc_folded = lg.lg_folded;
    lc_dropped = lg.lg_dropped;
    lc_shed = lg.lg_shed;
    lc_skipped = lg.lg_skipped;
    lc_evicted = lg.lg_evicted;
    lc_pending = pending;
    lc_balance = lg.lg_enqueued - accounted - pending;
  }

(* The governor's essential-tier skip happens after delivery, in the WM:
   reclassify the entry from delivered to skipped.  Expanded damage rects
   share one seq, so the reclassification fires once per entry no matter
   how many of its rects the tier refuses. *)
let ledger_skip conn event (stamp : stamp) =
  let lg = conn.c_ledger in
  if stamp.seq <> lg.lg_last_skip then begin
    lg.lg_last_skip <- stamp.seq;
    lg.lg_delivered <- lg.lg_delivered - 1;
    record_fate lg ~cname:conn.cname ~seq:stamp.seq ~code:(Event.code event)
      ~window:(Xid.to_int (Event.window_of event))
      ~t_in:stamp.ingress_ns Skipped
  end

let ledger_json server =
  let c = ledger_counts server in
  Printf.sprintf
    "{\"armed\": %b, \"enqueued\": %d, \"delivered\": %d, \"coalesced\": %d, \
     \"folded\": %d, \"dropped_oldest\": %d, \"shed\": %d, \"skipped\": %d, \
     \"evicted_with_conn\": %d, \"pending\": %d, \"balance\": %d}"
    server.s_ledger.lg_armed c.lc_enqueued c.lc_delivered c.lc_coalesced
    c.lc_folded c.lc_dropped c.lc_shed c.lc_skipped c.lc_evicted c.lc_pending
    c.lc_balance

let fate_json server ?conn:cfilter ?window () =
  let lg = server.s_ledger in
  let keep r =
    (match cfilter with None -> true | Some c -> String.equal r.fr_conn c)
    && match window with None -> true | Some w -> r.fr_window = w
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"fates\": [";
  let first = ref true in
  (* Oldest-first: the write head is also the oldest retained slot. *)
  for i = 0 to fate_ring_capacity - 1 do
    match lg.lg_fates.((lg.lg_head + i) mod fate_ring_capacity) with
    | Some r when keep r ->
        if not !first then Buffer.add_string b ", ";
        first := false;
        Buffer.add_string b
          (Printf.sprintf
             "{\"seq\": %d, \"event\": %s, \"fate\": %s, \"conn\": %s, \
              \"window\": %d, \"survivor\": %d, \"t_in_ns\": %d, \
              \"t_fate_ns\": %d}"
             r.fr_seq
             (Metrics.json_string (Event.name_of_code r.fr_code))
             (Metrics.json_string (fate_name r.fr_fate))
             (Metrics.json_string r.fr_conn)
             r.fr_window r.fr_survivor r.fr_t_in r.fr_t_fate)
    | Some _ | None -> ()
  done;
  Buffer.add_string b (Printf.sprintf "], \"ledger\": %s}" (ledger_json server));
  Buffer.contents b

(* One health tick: fold each live connection's pressure signals into its
   score and act on state transitions — quarantine throttles delivery,
   recovery lifts it, eviction is the X "misbehaving client" close with
   save-set rescue (via [disconnect]).  The WM's own connection
   (journal-exempt) and fault-protected connections are never judged.
   Transitions are collected first because eviction mutates [server.conns]
   mid-iteration. *)
let health_tick server =
  let transitions = ref [] in
  Hashtbl.iter
    (fun cid conn ->
      if conn.alive && (not conn.jexempt) && not (is_fault_protected server cid)
      then begin
        (* A stalled client (stopped reading) accrues a stall contribution
           every tick it stays wedged. *)
        if conn.stalled then conn.h_stalls <- conn.h_stalls + 1;
        let sample =
          {
            Health.depth_ratio =
              float_of_int (pending conn) /. float_of_int (max 1 conn.cap);
            shed = conn.h_shed;
            rejected = conn.h_rejected;
            xerrors = conn.h_xerrors;
            stalls = conn.h_stalls;
          }
        in
        match Health.observe server.health_th conn.health sample with
        | Health.No_change -> ()
        | Health.Became state -> transitions := (conn, state) :: !transitions
      end)
    server.conns;
  List.iter
    (fun (conn, state) ->
      (match state with
      | Health.Throttled ->
          conn.throttled <- true;
          Metrics.incr server.m_quarantined
      | Health.Healthy ->
          conn.throttled <- false;
          Metrics.incr server.m_unquarantined
      | Health.Evicted ->
          conn.throttled <- false;
          Metrics.incr server.m_evicted);
      let state_name = Health.state_name state in
      if Recorder.enabled server.s_recorder then
        Recorder.record server.s_recorder ~kind:"health"
          ~attrs:
            [
              ("conn", conn.cname);
              ("state", state_name);
              ("score", Printf.sprintf "%.1f" conn.health.Health.score);
            ]
          (conn.cname ^ " -> " ^ state_name);
      if Tracing.enabled server.s_tracer then
        Tracing.instant server.s_tracer "server.health"
          ~attrs:[ ("conn", conn.cname); ("state", state_name) ];
      if state = Health.Evicted then disconnect server conn)
    (List.rev !transitions)
