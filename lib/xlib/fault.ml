type action =
  | Destroy_window
  | Kill_connection
  | Stall_connection
  | Truncate_frame
  | Corrupt_frame
  | Garble_property
  | Flood_events

let action_name = function
  | Destroy_window -> "destroy_window"
  | Kill_connection -> "kill_connection"
  | Stall_connection -> "stall_connection"
  | Truncate_frame -> "truncate_frame"
  | Corrupt_frame -> "corrupt_frame"
  | Garble_property -> "garble_property"
  | Flood_events -> "flood_events"

let all_actions =
  [
    Destroy_window;
    Kill_connection;
    Stall_connection;
    Truncate_frame;
    Corrupt_frame;
    Garble_property;
    Flood_events;
  ]

let index = function
  | Destroy_window -> 0
  | Kill_connection -> 1
  | Stall_connection -> 2
  | Truncate_frame -> 3
  | Corrupt_frame -> 4
  | Garble_property -> 5
  | Flood_events -> 6

type plan = {
  seed : int;
  p_destroy_window : float;
  p_kill_connection : float;
  p_stall_connection : float;
  p_truncate_frame : float;
  p_corrupt_frame : float;
  p_garble_property : float;
  p_flood : float;
  flood_burst : int; (* events per flood storm *)
  max_faults : int;
}

let quiet =
  {
    seed = 0;
    p_destroy_window = 0.0;
    p_kill_connection = 0.0;
    p_stall_connection = 0.0;
    p_truncate_frame = 0.0;
    p_corrupt_frame = 0.0;
    p_garble_property = 0.0;
    p_flood = 0.0;
    flood_burst = 0;
    max_faults = 0;
  }

let storm ?(seed = 1) () =
  {
    seed;
    p_destroy_window = 0.04;
    p_kill_connection = 0.005;
    p_stall_connection = 0.01;
    p_truncate_frame = 0.05;
    p_corrupt_frame = 0.05;
    p_garble_property = 0.05;
    p_flood = 0.0;
    flood_burst = 0;
    max_faults = 64;
  }

(* Overload preset: one connection starts screaming.  [p_flood] is rolled
   once per request, so keep it low; each hit delivers [flood_burst]
   events into a single victim's queue. *)
let flood ?(seed = 1) ?(burst = 4096) () =
  { quiet with seed; p_flood = 0.02; flood_burst = burst; max_faults = 8 }

let pp_plan ppf p =
  Format.fprintf ppf
    "seed=%d destroy=%.3f kill=%.3f stall=%.3f truncate=%.3f corrupt=%.3f \
     garble=%.3f flood=%.3f/%d max=%d"
    p.seed p.p_destroy_window p.p_kill_connection p.p_stall_connection
    p.p_truncate_frame p.p_corrupt_frame p.p_garble_property p.p_flood
    p.flood_burst p.max_faults

type t = {
  plan : plan;
  rng : Random.State.t;
  counts : int array;
  mutable injected : int;
  metrics : Metrics.t option;
  tracer : Tracing.t option;
  recorder : Recorder.t option;
}

let arm ?metrics ?tracer ?recorder plan =
  {
    plan;
    rng = Random.State.make [| plan.seed; 0x5f37 |];
    counts = Array.make (List.length all_actions) 0;
    injected = 0;
    metrics;
    tracer;
    recorder;
  }

let plan t = t.plan
let rng t = t.rng
let injected t = t.injected
let count t action = t.counts.(index action)
let counts t = List.map (fun a -> (a, count t a)) all_actions
let exhausted t = t.plan.max_faults > 0 && t.injected >= t.plan.max_faults

let roll t p = p > 0.0 && Random.State.float t.rng 1.0 < p

let draw_request t =
  if exhausted t then None
  else if roll t t.plan.p_destroy_window then Some Destroy_window
  else if roll t t.plan.p_kill_connection then Some Kill_connection
  else if roll t t.plan.p_stall_connection then Some Stall_connection
  else if roll t t.plan.p_flood then Some Flood_events
  else None

let draw_frame t =
  if exhausted t then None
  else if roll t t.plan.p_truncate_frame then Some Truncate_frame
  else if roll t t.plan.p_corrupt_frame then Some Corrupt_frame
  else None

let draw_property t = (not (exhausted t)) && roll t t.plan.p_garble_property
let flood_burst t = max 1 t.plan.flood_burst

let fire t ?(attrs = []) action =
  t.injected <- t.injected + 1;
  t.counts.(index action) <- t.counts.(index action) + 1;
  (match t.metrics with
  | Some m ->
      Metrics.incr (Metrics.counter m "faults.injected");
      Metrics.incr (Metrics.counter m ("faults." ^ action_name action))
  | None -> ());
  (match t.recorder with
  | Some r -> Recorder.record r ~kind:"fault" ~attrs (action_name action)
  | None -> ());
  match t.tracer with
  | Some tr when Tracing.enabled tr ->
      Tracing.instant tr ~attrs ("fault." ^ action_name action)
  | Some _ | None -> ()

let truncate t bytes =
  let n = String.length bytes in
  if n = 0 then bytes else String.sub bytes 0 (Random.State.int t.rng n)

let corrupt t bytes =
  let n = String.length bytes in
  if n = 0 then bytes
  else begin
    let b = Bytes.of_string bytes in
    let i = Random.State.int t.rng n in
    let flip = 1 + Random.State.int t.rng 255 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor flip));
    Bytes.to_string b
  end

let garble t s =
  if String.length s = 0 then s
  else if Random.State.bool t.rng then corrupt t s
  else truncate t s
