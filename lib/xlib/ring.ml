type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of the front element *)
  mutable len : int;
  mutable hwm : int;
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 16) () =
  { buf = Array.make (pow2 (max 1 capacity) 1) None; head = 0; len = 0; hwm = 0 }

let length t = t.len
let is_empty t = t.len = 0
let high_water t = t.hwm

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (cap * 2) None in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) land (cap - 1))
  done;
  t.buf <- buf;
  t.head <- 0

let push t x =
  if t.len = Array.length t.buf then grow t;
  t.buf.((t.head + t.len) land (Array.length t.buf - 1)) <- Some x;
  t.len <- t.len + 1;
  if t.len > t.hwm then t.hwm <- t.len

let push_front t x =
  if t.len = Array.length t.buf then grow t;
  t.head <- (t.head - 1) land (Array.length t.buf - 1);
  t.buf.(t.head) <- Some x;
  t.len <- t.len + 1;
  if t.len > t.hwm then t.hwm <- t.len

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) land (Array.length t.buf - 1);
    t.len <- t.len - 1;
    x
  end

let peek t = if t.len = 0 then None else t.buf.(t.head)

let back_index t = (t.head + t.len - 1) land (Array.length t.buf - 1)
let peek_back t = if t.len = 0 then None else t.buf.(back_index t)

let replace_back t x =
  if t.len = 0 then invalid_arg "Ring.replace_back: empty"
  else t.buf.(back_index t) <- Some x

(* Logical-index access: index 0 is the front (oldest) element.  Used by
   the overload shed policy, which scans for droppable entries at cap. *)
let get t i =
  if i < 0 || i >= t.len then None
  else t.buf.((t.head + i) land (Array.length t.buf - 1))

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Ring.set: out of range"
  else t.buf.((t.head + i) land (Array.length t.buf - 1)) <- Some x

(* O(n) shift toward the head; acceptable because removal only happens at
   the queue cap, where bounding memory matters more than the shed cost. *)
let remove t i =
  if i < 0 || i >= t.len then None
  else begin
    let mask = Array.length t.buf - 1 in
    let removed = t.buf.((t.head + i) land mask) in
    for j = i downto 1 do
      t.buf.((t.head + j) land mask) <- t.buf.((t.head + j - 1) land mask)
    done;
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) land mask;
    t.len <- t.len - 1;
    removed
  end

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    match t.buf.((t.head + i) land (Array.length t.buf - 1)) with
    | Some x -> f x
    | None -> ()
  done
