type request =
  | Create_window of {
      wid : Xid.t;  (** the id the window received when recorded, so traces
                        can refer to it later (X clients allocate ids) *)
      parent : Xid.t;
      geom : Geom.rect;
      border : int;
      override_redirect : bool;
    }
  | Destroy_window of Xid.t
  | Map_window of Xid.t
  | Unmap_window of Xid.t
  | Configure_window of Xid.t * Event.config_changes
  | Reparent_window of { window : Xid.t; parent : Xid.t; pos : Geom.point }
  | Change_property of { window : Xid.t; name : string; value : string }
  | Delete_property of { window : Xid.t; name : string }
  | Select_input of { window : Xid.t; masks : Event.mask list }
  | Grab_pointer of Xid.t
  | Ungrab_pointer
  | Warp_pointer of Geom.point
  | Set_input_focus of Xid.t
  | Shape_rectangles of { window : Xid.t; rects : Geom.rect list }
  | Add_to_save_set of Xid.t
  | Remove_from_save_set of Xid.t

let pp_request ppf = function
  | Create_window { wid; parent; geom; _ } ->
      Format.fprintf ppf "CreateWindow(%a parent=%a %a)" Xid.pp wid Xid.pp parent
        Geom.pp_rect geom
  | Destroy_window w -> Format.fprintf ppf "DestroyWindow(%a)" Xid.pp w
  | Map_window w -> Format.fprintf ppf "MapWindow(%a)" Xid.pp w
  | Unmap_window w -> Format.fprintf ppf "UnmapWindow(%a)" Xid.pp w
  | Configure_window (w, _) -> Format.fprintf ppf "ConfigureWindow(%a)" Xid.pp w
  | Reparent_window { window; parent; _ } ->
      Format.fprintf ppf "ReparentWindow(%a -> %a)" Xid.pp window Xid.pp parent
  | Change_property { window; name; _ } ->
      Format.fprintf ppf "ChangeProperty(%a %s)" Xid.pp window name
  | Delete_property { window; name } ->
      Format.fprintf ppf "DeleteProperty(%a %s)" Xid.pp window name
  | Select_input { window; _ } -> Format.fprintf ppf "SelectInput(%a)" Xid.pp window
  | Grab_pointer w -> Format.fprintf ppf "GrabPointer(%a)" Xid.pp w
  | Ungrab_pointer -> Format.fprintf ppf "UngrabPointer"
  | Warp_pointer p -> Format.fprintf ppf "WarpPointer%a" Geom.pp_point p
  | Set_input_focus w -> Format.fprintf ppf "SetInputFocus(%a)" Xid.pp w
  | Shape_rectangles { window; rects } ->
      Format.fprintf ppf "ShapeRectangles(%a %d rects)" Xid.pp window
        (List.length rects)
  | Add_to_save_set w -> Format.fprintf ppf "AddToSaveSet(%a)" Xid.pp w
  | Remove_from_save_set w -> Format.fprintf ppf "RemoveFromSaveSet(%a)" Xid.pp w

(* -------- byte-level writer / reader (little endian) -------- *)

module W = struct
  let u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

  let u16 buf v =
    u8 buf (v land 0xff);
    u8 buf ((v lsr 8) land 0xff)

  let u32 buf v =
    u16 buf (v land 0xffff);
    u16 buf ((v lsr 16) land 0xffff)

  (* Signed 32-bit two's complement. *)
  let i32 buf v = u32 buf (v land 0xffffffff)

  let string16 buf s =
    u16 buf (String.length s);
    Buffer.add_string buf s

  let pad4 buf =
    while Buffer.length buf mod 4 <> 0 do
      u8 buf 0
    done
end

module R = struct
  exception Short

  let u8 s pos =
    if !pos >= String.length s then raise Short
    else begin
      let v = Char.code s.[!pos] in
      incr pos;
      v
    end

  let u16 s pos =
    let lo = u8 s pos in
    let hi = u8 s pos in
    lo lor (hi lsl 8)

  let u32 s pos =
    let lo = u16 s pos in
    let hi = u16 s pos in
    lo lor (hi lsl 16)

  let i32 s pos =
    let v = u32 s pos in
    if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

  let string16 s pos =
    let n = u16 s pos in
    if !pos + n > String.length s then raise Short
    else begin
      let v = String.sub s !pos n in
      pos := !pos + n;
      v
    end
end

(* A growable Bytes arena with an explicit cursor: the zero-copy encode
   path.  One arena is reused across frames (per connection, or the
   domain-local scratch below), so steady-state encoding allocates
   nothing but the final [contents] string.  Reuse is safe because a
   frame is always fully materialized (via [contents] / [sub_string])
   before the arena is reset for the next one. *)
module A = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create n = { buf = Bytes.create (max n 64); len = 0 }
  let reset a = a.len <- 0
  let length a = a.len

  let ensure a extra =
    let need = a.len + extra in
    if need > Bytes.length a.buf then begin
      let cap = ref (Bytes.length a.buf * 2) in
      while !cap < need do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit a.buf 0 bigger 0 a.len;
      a.buf <- bigger
    end

  let u8 a v =
    ensure a 1;
    Bytes.unsafe_set a.buf a.len (Char.unsafe_chr (v land 0xff));
    a.len <- a.len + 1

  let u16 a v =
    ensure a 2;
    Bytes.unsafe_set a.buf a.len (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set a.buf (a.len + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
    a.len <- a.len + 2

  let u32 a v =
    ensure a 4;
    let b = a.buf and p = a.len in
    Bytes.unsafe_set b p (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set b (p + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set b (p + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set b (p + 3) (Char.unsafe_chr ((v lsr 24) land 0xff));
    a.len <- p + 4

  (* Signed 32-bit two's complement. *)
  let i32 a v = u32 a (v land 0xffffffff)

  let string16 a s =
    let n = String.length s in
    u16 a n;
    ensure a n;
    Bytes.blit_string s 0 a.buf a.len n;
    a.len <- a.len + n

  (* Patch an already-written slot (length fields are reserved first,
     filled once the payload size is known: the single-pass framing). *)
  let patch_u16 a off v =
    Bytes.unsafe_set a.buf off (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set a.buf (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

  let patch_u32 a off v =
    patch_u16 a off (v land 0xffff);
    patch_u16 a (off + 2) ((v lsr 16) land 0xffff)

  let zero_fill_to a target =
    if target > a.len then begin
      ensure a (target - a.len);
      Bytes.fill a.buf a.len (target - a.len) '\000';
      a.len <- target
    end

  let contents a = Bytes.sub_string a.buf 0 a.len
end

(* -------- request framing -------- *)

let opcode = function
  | Create_window _ -> 1
  | Destroy_window _ -> 2
  | Map_window _ -> 3
  | Unmap_window _ -> 4
  | Configure_window _ -> 5
  | Reparent_window _ -> 6
  | Change_property _ -> 7
  | Delete_property _ -> 8
  | Select_input _ -> 9
  | Grab_pointer _ -> 10
  | Ungrab_pointer -> 11
  | Warp_pointer _ -> 12
  | Set_input_focus _ -> 13
  | Shape_rectangles _ -> 14
  | Add_to_save_set _ -> 15
  | Remove_from_save_set _ -> 16

let mask_bit = function
  | Event.Substructure_redirect -> 0x001
  | Event.Substructure_notify -> 0x002
  | Event.Structure_notify -> 0x004
  | Event.Property_change -> 0x008
  | Event.Button_press_mask -> 0x010
  | Event.Button_release_mask -> 0x020
  | Event.Key_press_mask -> 0x040
  | Event.Pointer_motion_mask -> 0x080
  | Event.Enter_leave_mask -> 0x100
  | Event.Exposure_mask -> 0x200
  | Event.Focus_change_mask -> 0x400

let all_masks =
  [
    Event.Substructure_redirect; Event.Substructure_notify; Event.Structure_notify;
    Event.Property_change; Event.Button_press_mask; Event.Button_release_mask;
    Event.Key_press_mask; Event.Pointer_motion_mask; Event.Enter_leave_mask;
    Event.Exposure_mask; Event.Focus_change_mask;
  ]

let encode_masks masks = List.fold_left (fun acc m -> acc lor mask_bit m) 0 masks
let decode_masks bits = List.filter (fun m -> bits land mask_bit m <> 0) all_masks

let write_rect buf (r : Geom.rect) =
  W.i32 buf r.x;
  W.i32 buf r.y;
  W.u32 buf r.w;
  W.u32 buf r.h

let read_rect s pos =
  let x = R.i32 s pos in
  let y = R.i32 s pos in
  let w = R.u32 s pos in
  let h = R.u32 s pos in
  Geom.rect x y w h

let write_payload buf = function
  | Create_window { wid; parent; geom; border; override_redirect } ->
      W.u32 buf (Xid.to_int wid);
      W.u32 buf (Xid.to_int parent);
      write_rect buf geom;
      W.u16 buf border;
      W.u8 buf (if override_redirect then 1 else 0)
  | Destroy_window w | Map_window w | Unmap_window w | Grab_pointer w
  | Set_input_focus w | Add_to_save_set w | Remove_from_save_set w ->
      W.u32 buf (Xid.to_int w)
  | Ungrab_pointer -> ()
  | Configure_window (w, changes) ->
      W.u32 buf (Xid.to_int w);
      let bit i = function Some _ -> 1 lsl i | None -> 0 in
      let present =
        bit 0 changes.cx lor bit 1 changes.cy lor bit 2 changes.cw
        lor bit 3 changes.ch lor bit 4 changes.cborder lor bit 5 changes.cstack
        lor bit 6 changes.csibling
      in
      W.u16 buf present;
      List.iter
        (function Some v -> W.i32 buf v | None -> ())
        [ changes.cx; changes.cy; changes.cw; changes.ch; changes.cborder ];
      (match changes.cstack with
      | Some Event.Above -> W.u8 buf 0
      | Some Event.Below -> W.u8 buf 1
      | None -> ());
      (match changes.csibling with
      | Some s -> W.u32 buf (Xid.to_int s)
      | None -> ())
  | Reparent_window { window; parent; pos } ->
      W.u32 buf (Xid.to_int window);
      W.u32 buf (Xid.to_int parent);
      W.i32 buf pos.Geom.px;
      W.i32 buf pos.Geom.py
  | Change_property { window; name; value } ->
      W.u32 buf (Xid.to_int window);
      W.string16 buf name;
      W.string16 buf value
  | Delete_property { window; name } ->
      W.u32 buf (Xid.to_int window);
      W.string16 buf name
  | Select_input { window; masks } ->
      W.u32 buf (Xid.to_int window);
      W.u16 buf (encode_masks masks)
  | Warp_pointer p ->
      W.i32 buf p.Geom.px;
      W.i32 buf p.Geom.py
  | Shape_rectangles { window; rects } ->
      W.u32 buf (Xid.to_int window);
      W.u16 buf (List.length rects);
      List.iter (write_rect buf) rects

(* Arena mirrors of the Buffer writers above: the hot path.  The Buffer
   versions remain as the executable spec (module [Spec] below); qcheck
   asserts byte-identity between the two. *)

let write_rect_a a (r : Geom.rect) =
  A.i32 a r.x;
  A.i32 a r.y;
  A.u32 a r.w;
  A.u32 a r.h

let write_payload_a a = function
  | Create_window { wid; parent; geom; border; override_redirect } ->
      A.u32 a (Xid.to_int wid);
      A.u32 a (Xid.to_int parent);
      write_rect_a a geom;
      A.u16 a border;
      A.u8 a (if override_redirect then 1 else 0)
  | Destroy_window w | Map_window w | Unmap_window w | Grab_pointer w
  | Set_input_focus w | Add_to_save_set w | Remove_from_save_set w ->
      A.u32 a (Xid.to_int w)
  | Ungrab_pointer -> ()
  | Configure_window (w, changes) ->
      A.u32 a (Xid.to_int w);
      let bit i = function Some _ -> 1 lsl i | None -> 0 in
      let present =
        bit 0 changes.cx lor bit 1 changes.cy lor bit 2 changes.cw
        lor bit 3 changes.ch lor bit 4 changes.cborder lor bit 5 changes.cstack
        lor bit 6 changes.csibling
      in
      A.u16 a present;
      let field = function Some v -> A.i32 a v | None -> () in
      field changes.cx;
      field changes.cy;
      field changes.cw;
      field changes.ch;
      field changes.cborder;
      (match changes.cstack with
      | Some Event.Above -> A.u8 a 0
      | Some Event.Below -> A.u8 a 1
      | None -> ());
      (match changes.csibling with
      | Some s -> A.u32 a (Xid.to_int s)
      | None -> ())
  | Reparent_window { window; parent; pos } ->
      A.u32 a (Xid.to_int window);
      A.u32 a (Xid.to_int parent);
      A.i32 a pos.Geom.px;
      A.i32 a pos.Geom.py
  | Change_property { window; name; value } ->
      A.u32 a (Xid.to_int window);
      A.string16 a name;
      A.string16 a value
  | Delete_property { window; name } ->
      A.u32 a (Xid.to_int window);
      A.string16 a name
  | Select_input { window; masks } ->
      A.u32 a (Xid.to_int window);
      A.u16 a (encode_masks masks)
  | Warp_pointer p ->
      A.i32 a p.Geom.px;
      A.i32 a p.Geom.py
  | Shape_rectangles { window; rects } ->
      A.u32 a (Xid.to_int window);
      A.u16 a (List.length rects);
      List.iter (write_rect_a a) rects

(* Single-pass framing: reserve the 4-byte header, write the payload in
   place, then patch the length and zero-pad to the 4-byte boundary.  No
   intermediate payload buffer, no copy. *)
let encode_request_into a req =
  let start = A.length a in
  A.u8 a (opcode req);
  A.u8 a 0;
  A.u16 a 0;
  write_payload_a a req;
  let total = A.length a - start in
  let padded = (total + 3) / 4 in
  A.patch_u16 a (start + 2) padded;
  A.zero_fill_to a (start + (padded * 4))

(* Exact encoded payload size, kept in sync with [write_payload_a]
   (byte_size agreement is pinned by the trace round-trip tests), so
   trace accounting never has to materialize frames. *)
let payload_size = function
  | Create_window _ -> 27
  | Destroy_window _ | Map_window _ | Unmap_window _ | Grab_pointer _
  | Set_input_focus _ | Add_to_save_set _ | Remove_from_save_set _ ->
      4
  | Ungrab_pointer -> 0
  | Configure_window (_, c) ->
      let opt n = function Some _ -> n | None -> 0 in
      6 + opt 4 c.cx + opt 4 c.cy + opt 4 c.cw + opt 4 c.ch + opt 4 c.cborder
      + opt 1 c.cstack + opt 4 c.csibling
  | Reparent_window _ -> 16
  | Change_property { name; value; _ } ->
      8 + String.length name + String.length value
  | Delete_property { name; _ } -> 6 + String.length name
  | Select_input _ -> 6
  | Warp_pointer _ -> 8
  | Shape_rectangles { rects; _ } -> 6 + (16 * List.length rects)

let encoded_request_size req = (4 + payload_size req + 3) / 4 * 4

(* Domain-local scratch arena for the string-returning entry points, so
   they stay allocation-flat without threading an arena everywhere.
   Domain-local (not global) so a future domain-per-shard deployment
   needs no locking. *)
let scratch_key = Domain.DLS.new_key (fun () -> A.create 4096)

let encode_request req =
  let a = Domain.DLS.get scratch_key in
  A.reset a;
  encode_request_into a req;
  A.contents a

let read_payload s pos code =
  let xid () = Xid.of_int (R.u32 s pos) in
  match code with
  | 1 ->
      let wid = xid () in
      let parent = xid () in
      let geom = read_rect s pos in
      let border = R.u16 s pos in
      let override_redirect = R.u8 s pos = 1 in
      Create_window { wid; parent; geom; border; override_redirect }
  | 2 -> Destroy_window (xid ())
  | 3 -> Map_window (xid ())
  | 4 -> Unmap_window (xid ())
  | 5 ->
      let w = xid () in
      let present = R.u16 s pos in
      let field i = if present land (1 lsl i) <> 0 then Some (R.i32 s pos) else None in
      let cx = field 0 in
      let cy = field 1 in
      let cw = field 2 in
      let ch = field 3 in
      let cborder = field 4 in
      let cstack =
        if present land (1 lsl 5) <> 0 then
          Some (if R.u8 s pos = 0 then Event.Above else Event.Below)
        else None
      in
      let csibling =
        if present land (1 lsl 6) <> 0 then Some (Xid.of_int (R.u32 s pos)) else None
      in
      Configure_window (w, { Event.cx; cy; cw; ch; cborder; cstack; csibling })
  | 6 ->
      let window = xid () in
      let parent = xid () in
      let px = R.i32 s pos in
      let py = R.i32 s pos in
      Reparent_window { window; parent; pos = Geom.point px py }
  | 7 ->
      let window = xid () in
      let name = R.string16 s pos in
      let value = R.string16 s pos in
      Change_property { window; name; value }
  | 8 ->
      let window = xid () in
      let name = R.string16 s pos in
      Delete_property { window; name }
  | 9 ->
      let window = xid () in
      let masks = decode_masks (R.u16 s pos) in
      Select_input { window; masks }
  | 10 -> Grab_pointer (xid ())
  | 11 -> Ungrab_pointer
  | 12 ->
      let px = R.i32 s pos in
      let py = R.i32 s pos in
      Warp_pointer (Geom.point px py)
  | 13 -> Set_input_focus (xid ())
  | 14 ->
      let window = xid () in
      let n = R.u16 s pos in
      let rects = List.init n (fun _ -> read_rect s pos) in
      Shape_rectangles { window; rects }
  | 15 -> Add_to_save_set (xid ())
  | 16 -> Remove_from_save_set (xid ())
  | other -> failwith (Printf.sprintf "unknown opcode %d" other)

(* Cursor-style decode: the caller owns the position cell, so a consumer
   draining a stream (Wire_conn) reuses one cursor for every frame
   instead of allocating a fresh ref per frame.  On [Ok] the cursor sits
   at the start of the next frame; on [Error] its value is meaningless. *)
let decode_request_cursor s cursor =
  let pos = !cursor in
  try
    let code = R.u8 s cursor in
    let _pad = R.u8 s cursor in
    let units = R.u16 s cursor in
    if units = 0 then Error "zero-length frame"
    else begin
      let frame_end = pos + (units * 4) in
      if frame_end > String.length s then Error "truncated frame"
      else begin
        let req = read_payload s cursor code in
        cursor := frame_end;
        Ok req
      end
    end
  with
  | R.Short -> Error "short read"
  | Failure msg -> Error msg

let decode_request s ~pos =
  let cursor = ref pos in
  match decode_request_cursor s cursor with
  | Ok req -> Ok (req, !cursor)
  | Error _ as e -> e

let decode_requests s =
  let rec loop acc pos =
    if pos >= String.length s then Ok (List.rev acc)
    else
      match decode_request s ~pos with
      | Ok (req, next) -> loop (req :: acc) next
      | Error _ as e -> e
  in
  loop [] 0

(* -------- events: fixed 32-byte frames -------- *)

let event_frame code fill =
  let buf = Buffer.create 32 in
  W.u8 buf code;
  fill buf;
  let s = Buffer.contents buf in
  if String.length s > 32 then String.sub s 0 32
  else s ^ String.make (32 - String.length s) '\000'

(* Strings inside events are truncated to a fixed field, as in real X
   (events carry atoms, not strings; the simulator carries short names). *)
let fixed_string buf n s =
  let s = if String.length s > n - 1 then String.sub s 0 (n - 1) else s in
  Buffer.add_string buf s;
  for _ = String.length s to n - 1 do
    W.u8 buf 0
  done

(* Scan for the terminating NUL in place; one [String.sub] for the
   result, no intermediate copy of the raw field. *)
let read_fixed_string s pos n =
  let start = !pos in
  let limit = start + n in
  if limit > String.length s then invalid_arg "read_fixed_string";
  let rec scan i = if i >= limit || s.[i] = '\000' then i else scan (i + 1) in
  let stop = scan start in
  pos := limit;
  String.sub s start (stop - start)

(* Arena mirror of [fixed_string]: truncate to [n - 1] bytes, zero-pad
   to [n] so at least one NUL terminates the field. *)
let a_fixed_string a n s =
  let k = min (String.length s) (n - 1) in
  A.ensure a n;
  Bytes.blit_string s 0 a.A.buf a.A.len k;
  Bytes.fill a.A.buf (a.A.len + k) (n - k) '\000';
  a.A.len <- a.A.len + n

(* Top-level (not per-call closures) so encoding an event allocates
   nothing beyond the arena it writes into. *)
let a_xid a id = A.u32 a (Xid.to_int id)

let a_point a (p : Geom.point) =
  A.i32 a p.px;
  A.i32 a p.py

let a_mods a (m : Keysym.modifiers) =
  A.u8 a
    ((if m.shift then 1 else 0)
    lor (if m.control then 2 else 0)
    lor if m.meta then 4 else 0)

(* Position-addressed writers for pre-[ensure]d, pre-zeroed fixed frames:
   no per-field bounds check, no cursor update.  Field offsets below are
   pinned byte-for-byte against [Spec.encode_event] by the hotpath qcheck
   suite. *)
let raw_u8 b p v = Bytes.unsafe_set b p (Char.unsafe_chr (v land 0xff))

let raw_u16 b p v =
  Bytes.unsafe_set b p (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (p + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

let raw_u32 b p v =
  Bytes.unsafe_set b p (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (p + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (p + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (p + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let raw_i32 b p v = raw_u32 b p (v land 0xffffffff)
let raw_xid b p id = raw_u32 b p (Xid.to_int id)

let raw_point b p (pt : Geom.point) =
  raw_i32 b p pt.px;
  raw_i32 b (p + 4) pt.py

let raw_rect b p (r : Geom.rect) =
  raw_i32 b p r.x;
  raw_i32 b (p + 4) r.y;
  raw_u32 b (p + 8) r.w;
  raw_u32 b (p + 12) r.h

let raw_mods b p (m : Keysym.modifiers) =
  raw_u8 b p
    ((if m.shift then 1 else 0)
    lor (if m.control then 2 else 0)
    lor if m.meta then 4 else 0)

(* Into a pre-zeroed [n]-byte field: blit at most [n - 1] bytes, the
   terminating NUL(s) are already in place. *)
let raw_fixed_string b p n s =
  Bytes.blit_string s 0 b p (min (String.length s) (n - 1))

(* Write one 32-byte event frame into the arena, byte-identical to the
   Buffer-based [Spec.encode_event].  Every kind except Configure_request
   has a fixed layout, so the frame is reserved and zeroed once and the
   fields land at precomputed offsets — one bounds check per event
   instead of one per field.  Configure_request reuses the variable-size
   request payload writer and is clamped back to the 32-byte frame
   (truncating a payload that can reach 40 bytes). *)
let encode_event_into a (event : Event.t) =
  match event with
  | Event.Configure_request { window; parent; changes } ->
      let start = A.length a in
      A.u8 a 2;
      a_xid a window;
      a_xid a parent;
      write_payload_a a (Configure_window (window, changes));
      if A.length a > start + 32 then a.A.len <- start + 32
      else A.zero_fill_to a (start + 32)
  | event ->
      let start = A.length a in
      A.ensure a 32;
      let b = a.A.buf in
      Bytes.fill b start 32 '\000';
      (match event with
      | Event.Configure_request _ -> () (* handled above *)
      | Event.Map_request { window; parent } ->
          raw_u8 b start 1;
          raw_xid b (start + 1) window;
          raw_xid b (start + 5) parent
      | Event.Map_notify { window } ->
          raw_u8 b start 3;
          raw_xid b (start + 1) window
      | Event.Unmap_notify { window } ->
          raw_u8 b start 4;
          raw_xid b (start + 1) window
      | Event.Destroy_notify { window } ->
          raw_u8 b start 5;
          raw_xid b (start + 1) window
      | Event.Reparent_notify { window; parent; pos } ->
          raw_u8 b start 6;
          raw_xid b (start + 1) window;
          raw_xid b (start + 5) parent;
          raw_point b (start + 9) pos
      | Event.Configure_notify { window; geom; border; synthetic } ->
          raw_u8 b start 7;
          raw_xid b (start + 1) window;
          raw_rect b (start + 5) geom;
          raw_u16 b (start + 21) border;
          raw_u8 b (start + 23) (if synthetic then 1 else 0)
      | Event.Property_notify { window; name; deleted } ->
          raw_u8 b start 8;
          raw_xid b (start + 1) window;
          raw_u8 b (start + 5) (if deleted then 1 else 0);
          raw_fixed_string b (start + 6) 23 name
      | Event.Button_press { window; button; mods = m; pos; root_pos } ->
          raw_u8 b start 9;
          raw_xid b (start + 1) window;
          raw_u8 b (start + 5) button;
          raw_mods b (start + 6) m;
          raw_point b (start + 7) pos;
          raw_point b (start + 15) root_pos
      | Event.Button_release { window; button; mods = m; pos; root_pos } ->
          raw_u8 b start 10;
          raw_xid b (start + 1) window;
          raw_u8 b (start + 5) button;
          raw_mods b (start + 6) m;
          raw_point b (start + 7) pos;
          raw_point b (start + 15) root_pos
      | Event.Key_press { window; keysym; mods = m; pos; root_pos } ->
          raw_u8 b start 11;
          raw_xid b (start + 1) window;
          raw_mods b (start + 5) m;
          raw_point b (start + 6) pos;
          raw_point b (start + 14) root_pos;
          raw_fixed_string b (start + 22) 6 keysym
      | Event.Motion_notify { window; pos; root_pos } ->
          raw_u8 b start 12;
          raw_xid b (start + 1) window;
          raw_point b (start + 5) pos;
          raw_point b (start + 13) root_pos
      | Event.Enter_notify { window } ->
          raw_u8 b start 13;
          raw_xid b (start + 1) window
      | Event.Leave_notify { window } ->
          raw_u8 b start 14;
          raw_xid b (start + 1) window
      | Event.Focus_in { window } ->
          raw_u8 b start 17;
          raw_xid b (start + 1) window
      | Event.Focus_out { window } ->
          raw_u8 b start 18;
          raw_xid b (start + 1) window
      | Event.Expose { window; damage } -> (
          raw_u8 b start 15;
          raw_xid b (start + 1) window;
          match damage with
          | None -> ()
          | Some r ->
              raw_u8 b (start + 5) 1;
              raw_rect b (start + 6) r)
      | Event.Client_message { window; name; data } ->
          raw_u8 b start 16;
          raw_xid b (start + 1) window;
          raw_fixed_string b (start + 5) 13 name;
          raw_fixed_string b (start + 18) 14 data);
      a.A.len <- start + 32

let encode_event event =
  let a = Domain.DLS.get scratch_key in
  A.reset a;
  encode_event_into a event;
  A.contents a

(* Field readers at top level so decoding an event allocates only the
   decoded value itself, not a closure set per frame. *)
let r_xid s cursor = Xid.of_int (R.u32 s cursor)

let r_point s cursor =
  let x = R.i32 s cursor in
  let y = R.i32 s cursor in
  Geom.point x y

let r_mods s cursor =
  let bits = R.u8 s cursor in
  Keysym.mods ~shift:(bits land 1 <> 0) ~control:(bits land 2 <> 0)
    ~meta:(bits land 4 <> 0) ()

(* Cursor-style decode of one fixed 32-byte event frame; on [Ok] the
   cursor sits on the next frame. *)
let decode_event_cursor s cursor =
  let pos = !cursor in
  try
    if pos + 32 > String.length s then Error "short event frame"
    else begin
      let code = R.u8 s cursor in
      let xid () = r_xid s cursor in
      let point () = r_point s cursor in
      let mods () = r_mods s cursor in
      let event =
        match code with
        | 1 ->
            let window = xid () in
            let parent = xid () in
            Event.Map_request { window; parent }
        | 2 ->
            let window = xid () in
            let parent = xid () in
            let _w = R.u32 s cursor in
            let present = R.u16 s cursor in
            let field i =
              if present land (1 lsl i) <> 0 then Some (R.i32 s cursor) else None
            in
            let cx = field 0 in
            let cy = field 1 in
            let cw = field 2 in
            let ch = field 3 in
            let cborder = field 4 in
            let cstack =
              if present land (1 lsl 5) <> 0 then
                Some (if R.u8 s cursor = 0 then Event.Above else Event.Below)
              else None
            in
            let csibling =
              if present land (1 lsl 6) <> 0 then Some (Xid.of_int (R.u32 s cursor))
              else None
            in
            Event.Configure_request
              { window; parent;
                changes = { Event.cx; cy; cw; ch; cborder; cstack; csibling } }
        | 3 -> Event.Map_notify { window = xid () }
        | 4 -> Event.Unmap_notify { window = xid () }
        | 5 -> Event.Destroy_notify { window = xid () }
        | 6 ->
            let window = xid () in
            let parent = xid () in
            let pos = point () in
            Event.Reparent_notify { window; parent; pos }
        | 7 ->
            let window = xid () in
            let geom = read_rect s cursor in
            let border = R.u16 s cursor in
            let synthetic = R.u8 s cursor = 1 in
            Event.Configure_notify { window; geom; border; synthetic }
        | 8 ->
            let window = xid () in
            let deleted = R.u8 s cursor = 1 in
            let name = read_fixed_string s cursor 23 in
            Event.Property_notify { window; name; deleted }
        | 9 ->
            let window = xid () in
            let button = R.u8 s cursor in
            let m = mods () in
            let pos = point () in
            let root_pos = point () in
            Event.Button_press { window; button; mods = m; pos; root_pos }
        | 10 ->
            let window = xid () in
            let button = R.u8 s cursor in
            let m = mods () in
            let pos = point () in
            let root_pos = point () in
            Event.Button_release { window; button; mods = m; pos; root_pos }
        | 11 ->
            let window = xid () in
            let m = mods () in
            let pos = point () in
            let root_pos = point () in
            let keysym = read_fixed_string s cursor 6 in
            Event.Key_press { window; keysym; mods = m; pos; root_pos }
        | 12 ->
            let window = xid () in
            let pos = point () in
            let root_pos = point () in
            Event.Motion_notify { window; pos; root_pos }
        | 13 -> Event.Enter_notify { window = xid () }
        | 14 -> Event.Leave_notify { window = xid () }
        | 17 -> Event.Focus_in { window = xid () }
        | 18 -> Event.Focus_out { window = xid () }
        | 15 ->
            let window = xid () in
            let damage =
              if R.u8 s cursor = 1 then Some (read_rect s cursor) else None
            in
            Event.Expose { window; damage }
        | 16 ->
            let window = xid () in
            let name = read_fixed_string s cursor 13 in
            let data = read_fixed_string s cursor 14 in
            Event.Client_message { window; name; data }
        | other -> failwith (Printf.sprintf "unknown event code %d" other)
      in
      cursor := pos + 32;
      Ok event
    end
  with
  | R.Short -> Error "short read"
  | Failure msg -> Error msg
  | Invalid_argument _ -> Error "short event frame"

let decode_event s ~pos =
  let cursor = ref pos in
  match decode_event_cursor s cursor with
  | Ok event -> Ok (event, !cursor)
  | Error _ as e -> e

(* -------- batched event frames -------- *)

(* A batch is a length-prefixed frame holding N fixed-size event frames:
     u8 0xEB | u8 0 | u16 count | u32 payload bytes | count * 32-byte events
   The prefix lets a reader skip a whole batch without decoding it, and the
   canonical event encoding makes decode_batch/encode_batch inverse down to
   the byte level, so recorded batches stay byte-replayable. *)

let batch_code = 0xeb

(* Single-pass batch framing: reserve the 8-byte header, append each
   32-byte event frame directly into the arena, patch count and payload
   size.  No per-event intermediate strings, no payload buffer. *)
let encode_batch_into a events =
  let start = A.length a in
  A.u8 a batch_code;
  A.u8 a 0;
  A.u16 a 0;
  A.u32 a 0;
  List.iter (encode_event_into a) events;
  let payload = A.length a - start - 8 in
  A.patch_u16 a (start + 2) (payload / 32);
  A.patch_u32 a (start + 4) payload

let encode_batch events =
  let a = Domain.DLS.get scratch_key in
  A.reset a;
  encode_batch_into a events;
  A.contents a

let decode_batch s ~pos =
  try
    let cursor = ref pos in
    let code = R.u8 s cursor in
    if code <> batch_code then
      Error (Printf.sprintf "not a batch frame (code %d)" code)
    else begin
      let _pad = R.u8 s cursor in
      let count = R.u16 s cursor in
      let bytes = R.u32 s cursor in
      if bytes <> count * 32 then Error "batch length mismatch"
      else if !cursor + bytes > String.length s then Error "truncated batch"
      else begin
        let rec read acc n p =
          if n = 0 then Ok (List.rev acc)
          else
            match decode_event s ~pos:p with
            | Ok (event, next) -> read (event :: acc) (n - 1) next
            | Error _ as e -> e
        in
        match read [] count !cursor with
        | Ok events -> Ok (events, !cursor + bytes)
        | Error _ as e -> e
      end
    end
  with R.Short -> Error "short read"

(* -------- event and request compression -------- *)

(* The same compression the server queues apply at enqueue time, as a pure
   function over an event list (for compressing a batch before it goes on
   the wire).  Only the newest kept event is a merge candidate, so ordering
   across event types is preserved. *)
let compress_events events =
  let merge kept event =
    match (event, kept) with
    | ( Event.Motion_notify { window; _ },
        Event.Motion_notify { window = prev; _ } )
      when Xid.equal window prev -> Some event
    | ( Event.Configure_notify { window; synthetic; _ },
        Event.Configure_notify { window = prev; synthetic = sprev; _ } )
      when Xid.equal window prev && synthetic = sprev -> Some event
    | ( Event.Expose { window; damage },
        Event.Expose { window = prev; damage = dprev } )
      when Xid.equal window prev -> (
        match (dprev, damage) with
        | None, _ | _, None -> Some (Event.Expose { window; damage = None })
        | Some a, Some b ->
            let union = Region.union (Region.of_rect a) (Region.of_rect b) in
            (* Keep the single-rect representation when the union stays a
               rectangle; otherwise fall back to separate events. *)
            (match Region.rects union with
            | [ r ] -> Some (Event.Expose { window; damage = Some r })
            | _ -> None))
    | _ -> None
  in
  let rec fold acc = function
    | [] -> List.rev acc
    | event :: rest -> (
        match acc with
        | kept :: acc_rest -> (
            match merge kept event with
            | Some merged -> fold (merged :: acc_rest) rest
            | None -> fold (event :: acc) rest)
        | [] -> fold [ event ] rest)
  in
  fold [] events

(* Request-side folding for traces: a pan storm is hundreds of consecutive
   ConfigureWindow requests on the desktop window; only the final geometry
   matters for replay. *)
let merge_changes (a : Event.config_changes) (b : Event.config_changes) =
  let pick bo ao = match bo with Some _ -> bo | None -> ao in
  let cstack, csibling =
    match b.cstack with
    | Some _ -> (b.cstack, b.csibling)
    | None -> (a.cstack, a.csibling)
  in
  {
    Event.cx = pick b.cx a.cx;
    cy = pick b.cy a.cy;
    cw = pick b.cw a.cw;
    ch = pick b.ch a.ch;
    cborder = pick b.cborder a.cborder;
    cstack;
    csibling;
  }

let compress_requests requests =
  let rec fold acc = function
    | [] -> List.rev acc
    | req :: rest -> (
        match (req, acc) with
        | ( Configure_window (w, changes),
            Configure_window (prev, changes_prev) :: acc_rest )
          when Xid.equal w prev ->
            fold (Configure_window (w, merge_changes changes_prev changes) :: acc_rest)
              rest
        | Warp_pointer _, Warp_pointer _ :: acc_rest -> fold (req :: acc_rest) rest
        | _ -> fold (req :: acc) rest)
  in
  fold [] requests


(* -------- executable spec --------

   The seed Buffer-based encoders, kept verbatim as the reference
   implementation.  The arena encoders above are required (and
   qcheck-tested) to be byte-identical to these; anything byte-level —
   journal hex, repro corpus, batch replayability — is defined by this
   module. *)

module Spec = struct
  let encode_request req =
    let payload = Buffer.create 32 in
    write_payload payload req;
    let frame = Buffer.create (Buffer.length payload + 4) in
    W.u8 frame (opcode req);
    W.u8 frame 0;
    let total = 4 + Buffer.length payload in
    let padded = (total + 3) / 4 in
    W.u16 frame padded;
    Buffer.add_buffer frame payload;
    W.pad4 frame;
    Buffer.contents frame

  let encode_event (event : Event.t) =
    let xid buf id = W.u32 buf (Xid.to_int id) in
    let point buf (p : Geom.point) =
      W.i32 buf p.px;
      W.i32 buf p.py
    in
    let mods buf (m : Keysym.modifiers) =
      W.u8 buf
        ((if m.shift then 1 else 0)
        lor (if m.control then 2 else 0)
        lor if m.meta then 4 else 0)
    in
    match event with
    | Event.Map_request { window; parent } ->
        event_frame 1 (fun b ->
            xid b window;
            xid b parent)
    | Event.Configure_request { window; parent; changes } ->
        event_frame 2 (fun b ->
            xid b window;
            xid b parent;
            write_payload b (Configure_window (window, changes)))
    | Event.Map_notify { window } -> event_frame 3 (fun b -> xid b window)
    | Event.Unmap_notify { window } -> event_frame 4 (fun b -> xid b window)
    | Event.Destroy_notify { window } -> event_frame 5 (fun b -> xid b window)
    | Event.Reparent_notify { window; parent; pos } ->
        event_frame 6 (fun b ->
            xid b window;
            xid b parent;
            point b pos)
    | Event.Configure_notify { window; geom; border; synthetic } ->
        event_frame 7 (fun b ->
            xid b window;
            write_rect b geom;
            W.u16 b border;
            W.u8 b (if synthetic then 1 else 0))
    | Event.Property_notify { window; name; deleted } ->
        event_frame 8 (fun b ->
            xid b window;
            W.u8 b (if deleted then 1 else 0);
            fixed_string b 23 name)
    | Event.Button_press { window; button; mods = m; pos; root_pos } ->
        event_frame 9 (fun b ->
            xid b window;
            W.u8 b button;
            mods b m;
            point b pos;
            point b root_pos)
    | Event.Button_release { window; button; mods = m; pos; root_pos } ->
        event_frame 10 (fun b ->
            xid b window;
            W.u8 b button;
            mods b m;
            point b pos;
            point b root_pos)
    | Event.Key_press { window; keysym; mods = m; pos; root_pos } ->
        event_frame 11 (fun b ->
            xid b window;
            mods b m;
            point b pos;
            point b root_pos;
            fixed_string b 6 keysym)
    | Event.Motion_notify { window; pos; root_pos } ->
        event_frame 12 (fun b ->
            xid b window;
            point b pos;
            point b root_pos)
    | Event.Enter_notify { window } -> event_frame 13 (fun b -> xid b window)
    | Event.Leave_notify { window } -> event_frame 14 (fun b -> xid b window)
    | Event.Focus_in { window } -> event_frame 17 (fun b -> xid b window)
    | Event.Focus_out { window } -> event_frame 18 (fun b -> xid b window)
    | Event.Expose { window; damage } ->
        event_frame 15 (fun b ->
            xid b window;
            match damage with
            | None -> W.u8 b 0
            | Some r ->
                W.u8 b 1;
                write_rect b r)
    | Event.Client_message { window; name; data } ->
        event_frame 16 (fun b ->
            xid b window;
            fixed_string b 13 name;
            fixed_string b 14 data)

  let encode_batch events =
    let payload = Buffer.create (32 * List.length events) in
    List.iter (fun event -> Buffer.add_string payload (encode_event event)) events;
    let frame = Buffer.create (Buffer.length payload + 8) in
    W.u8 frame batch_code;
    W.u8 frame 0;
    W.u16 frame (List.length events);
    W.u32 frame (Buffer.length payload);
    Buffer.add_buffer frame payload;
    Buffer.contents frame
end

(* -------- hex framing --------

   The replay journal stores wire frames as lowercase hex so they survive
   a trip through JSON (and human eyes) unharmed. *)

let hex_digits = "0123456789abcdef"

let to_hex s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (String.unsafe_get s i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_digits (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1) (String.unsafe_get hex_digits (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let buf = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.to_string buf)
      else
        match (nibble s.[i], nibble s.[i + 1]) with
        | Some hi, Some lo ->
            Bytes.set buf (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> Error (Printf.sprintf "bad hex byte at %d" i)
    in
    go 0
