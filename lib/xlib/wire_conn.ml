type t = {
  server : Server.t;
  sconn : Server.conn;
  alloc : Xid.Alloc.t;  (* client-side id space *)
  to_server : Xid.t Xid.Tbl.t;
  to_client : Xid.t Xid.Tbl.t;
  mutable sent : int;
  mutable received : int;
  op_counters : Metrics.counter option array; (* per-opcode request counts *)
  m_rejected : Metrics.counter; (* frames refused by decode or execution *)
  m_requests_by : Metrics.counter; (* wire.requests.by_conn{conn} series *)
  profiler : Profile.t;
  sec_decode : Profile.section; (* gc.minor_words.wire.decode *)
  sec_encode : Profile.section; (* gc.minor_words.wire.encode *)
  enc : Wire.A.t; (* reusable encode arena: one per connection *)
  dec_cursor : int ref; (* reusable decode cursor: one per connection *)
}

type submit_error = { executed : int; error : string }

(* Client ids live in their own space; roots get well-known client ids so a
   fresh connection can name them (X tells clients the root ids in the
   connection setup). *)
let root_client_id screen = Xid.of_int (1000000 + screen)

let create server ~name =
  let profiler = Server.profiler server in
  let t =
    {
      server;
      sconn = Server.connect server ~name;
      alloc = Xid.Alloc.create ();
      to_server = Xid.Tbl.create 16;
      to_client = Xid.Tbl.create 16;
      sent = 0;
      received = 0;
      op_counters = Array.make 32 None;
      m_rejected = Metrics.counter (Server.metrics server) "wire.rejected_frames";
      m_requests_by =
        Metrics.labeled_counter
          (Metrics.counter_family (Server.metrics server) ~key:"conn"
             "wire.requests.by_conn")
          name;
      profiler;
      sec_decode = Profile.section profiler "wire.decode";
      sec_encode = Profile.section profiler "wire.encode";
      enc = Wire.A.create 4096;
      dec_cursor = ref 0;
    }
  in
  for screen = 0 to Server.screen_count server - 1 do
    let cid = root_client_id screen in
    let sid = Server.root server ~screen in
    Xid.Tbl.replace t.to_server cid sid;
    Xid.Tbl.replace t.to_client sid cid
  done;
  t

let conn t = t.sconn

let alias t ~client ~server =
  Xid.Tbl.replace t.to_server client server;
  Xid.Tbl.replace t.to_client server client

let fresh_id t = Xid.Alloc.next t.alloc
let root_id _t ~screen = root_client_id screen
let bytes_sent t = t.sent
let bytes_received t = t.received
let resolve t cid = Xid.Tbl.find_opt t.to_server cid

exception Wire_error of string

let to_server_id t cid =
  match Xid.Tbl.find_opt t.to_server cid with
  | Some sid -> sid
  | None ->
      raise
        (Wire_error (Format.asprintf "unknown client id %a" Xid.pp cid))

let to_client_id t sid =
  match Xid.Tbl.find_opt t.to_client sid with Some cid -> cid | None -> sid

(* Per-request-opcode counters ("requests.opcode.NN"), resolved once per
   opcode and cached. *)
let count_opcode t req =
  Metrics.incr t.m_requests_by;
  let code = Wire.opcode req in
  if code >= 0 && code < Array.length t.op_counters then begin
    let counter =
      match t.op_counters.(code) with
      | Some c -> c
      | None ->
          let c =
            Metrics.counter (Server.metrics t.server)
              (Printf.sprintf "requests.opcode.%02d" code)
          in
          t.op_counters.(code) <- Some c;
          c
    in
    Metrics.incr counter
  end

let execute t (req : Wire.request) =
  count_opcode t req;
  let s = to_server_id t in
  match req with
  | Wire.Create_window { wid; parent; geom; border; override_redirect } ->
      let sid =
        Server.create_window t.server t.sconn ~parent:(s parent) ~geom ~border
          ~override_redirect ()
      in
      Xid.Tbl.replace t.to_server wid sid;
      Xid.Tbl.replace t.to_client sid wid
  | Wire.Destroy_window w -> Server.destroy_window t.server (s w)
  | Wire.Map_window w -> Server.map_window t.server t.sconn (s w)
  | Wire.Unmap_window w -> Server.unmap_window t.server t.sconn (s w)
  | Wire.Configure_window (w, changes) ->
      let changes =
        match changes.Event.csibling with
        | Some sib -> { changes with Event.csibling = Some (s sib) }
        | None -> changes
      in
      Server.configure_window t.server t.sconn (s w) changes
  | Wire.Reparent_window { window; parent; pos } ->
      Server.reparent_window t.server t.sconn (s window) ~new_parent:(s parent) ~pos
  | Wire.Change_property { window; name; value } ->
      Server.change_property t.server t.sconn (s window) ~name (Prop.String value)
  | Wire.Delete_property { window; name } ->
      Server.delete_property t.server t.sconn (s window) ~name
  | Wire.Select_input { window; masks } ->
      Server.select_input t.server t.sconn (s window) masks
  | Wire.Grab_pointer w -> Server.grab_pointer t.server t.sconn (s w)
  | Wire.Ungrab_pointer -> Server.ungrab_pointer t.server t.sconn
  | Wire.Warp_pointer p ->
      Server.warp_pointer t.server ~screen:(Server.pointer_screen t.server) p
  | Wire.Set_input_focus w -> Server.set_input_focus t.server t.sconn (s w)
  | Wire.Shape_rectangles { window; rects } ->
      Server.shape_set t.server t.sconn (s window) (Region.of_rects rects)
  | Wire.Add_to_save_set w -> Server.add_to_save_set t.server t.sconn (s w)
  | Wire.Remove_from_save_set w -> Server.remove_from_save_set t.server t.sconn (s w)

(* Frame fault site: an armed plan may truncate the submitted byte string
   or flip one byte before decoding — a torn or corrupted stream.  The
   decoder then rejects the damaged frame like any other bad input. *)
let apply_frame_faults t bytes =
  match Server.faults t.server with
  | Some f when String.length bytes > 0 -> (
      let attrs =
        [ ("conn", Server.conn_name t.sconn);
          ("bytes", string_of_int (String.length bytes)) ]
      in
      match Fault.draw_frame f with
      | Some Fault.Truncate_frame ->
          Fault.fire f Fault.Truncate_frame ~attrs;
          Fault.truncate f bytes
      | Some Fault.Corrupt_frame ->
          Fault.fire f Fault.Corrupt_frame ~attrs;
          Fault.corrupt f bytes
      | Some _ | None -> bytes)
  | Some _ | None -> bytes

let submit_bytes t bytes =
  t.sent <- t.sent + String.length bytes;
  let bytes = apply_frame_faults t bytes in
  Profile.alloc_section t.profiler t.sec_decode @@ fun () ->
  (if Tracing.enabled (Server.tracer t.server) then
     Tracing.span (Server.tracer t.server) "wire.decode"
       ~attrs:
         [ ("bytes", string_of_int (String.length bytes)); ("conn", Server.conn_name t.sconn) ]
   else fun f -> f ())
  @@ fun () ->
  (* On any failure the result reports how many requests already executed:
     a batch is not transactional, and callers accounting for partial
     effects (traces, replays, chaos tests) need the split point. *)
  let fail count msg =
    Metrics.incr t.m_rejected;
    (* Health attribution: a client that keeps submitting frames the
       server refuses is pressuring the WM, and its score should say so. *)
    Server.note_rejected t.sconn;
    Error { executed = count; error = msg }
  in
  (* One cached cursor decodes every frame in the stream — no per-frame
     position cells. *)
  let cursor = t.dec_cursor in
  cursor := 0;
  let rec loop count =
    if !cursor >= String.length bytes then Ok count
    else
      match Wire.decode_request_cursor bytes cursor with
      | Error msg -> fail count msg
      | Ok req -> (
          match execute t req with
          | () -> loop (count + 1)
          | exception Wire_error msg -> fail count msg
          | exception Server.Bad_window id ->
              Server.note_conn_xerror t.sconn;
              fail count (Format.asprintf "BadWindow %a" Xid.pp id)
          | exception Server.Bad_access msg ->
              Server.note_conn_xerror t.sconn;
              fail count ("BadAccess: " ^ msg)
          | exception Invalid_argument msg -> fail count msg)
  in
  loop 0

let submit t req =
  match submit_bytes t (Wire.encode_request req) with
  | Ok _ -> Ok ()
  | Error e -> Error e.error

(* Translate the window ids inside an event into the client's space. *)
let translate_event t (event : Event.t) : Event.t =
  let c = to_client_id t in
  match event with
  | Event.Map_request { window; parent } ->
      Event.Map_request { window = c window; parent = c parent }
  | Event.Configure_request { window; parent; changes } ->
      Event.Configure_request { window = c window; parent = c parent; changes }
  | Event.Map_notify { window } -> Event.Map_notify { window = c window }
  | Event.Unmap_notify { window } -> Event.Unmap_notify { window = c window }
  | Event.Destroy_notify { window } -> Event.Destroy_notify { window = c window }
  | Event.Reparent_notify { window; parent; pos } ->
      Event.Reparent_notify { window = c window; parent = c parent; pos }
  | Event.Configure_notify r -> Event.Configure_notify { r with window = c r.window }
  | Event.Property_notify r -> Event.Property_notify { r with window = c r.window }
  | Event.Button_press r -> Event.Button_press { r with window = c r.window }
  | Event.Button_release r -> Event.Button_release { r with window = c r.window }
  | Event.Key_press r -> Event.Key_press { r with window = c r.window }
  | Event.Motion_notify r -> Event.Motion_notify { r with window = c r.window }
  | Event.Enter_notify { window } -> Event.Enter_notify { window = c window }
  | Event.Leave_notify { window } -> Event.Leave_notify { window = c window }
  | Event.Focus_in { window } -> Event.Focus_in { window = c window }
  | Event.Focus_out { window } -> Event.Focus_out { window = c window }
  | Event.Expose r -> Event.Expose { r with window = c r.window }
  | Event.Client_message r -> Event.Client_message { r with window = c r.window }

let drain_event_bytes t =
  let a = t.enc in
  Wire.A.reset a;
  List.iter
    (fun event -> Wire.encode_event_into a (translate_event t event))
    (Server.drain_events t.sconn);
  let bytes = Wire.A.contents a in
  t.received <- t.received + String.length bytes;
  bytes

let flush_batch_bytes t =
  Profile.alloc_section t.profiler t.sec_encode @@ fun () ->
  (if Tracing.enabled (Server.tracer t.server) then
     Tracing.span (Server.tracer t.server) "wire.flush"
       ~attrs:[ ("conn", Server.conn_name t.sconn) ]
   else fun f -> f ())
  @@ fun () ->
  match Server.flush_batch t.sconn with
  | [] -> ""
  | events ->
      let events = Wire.compress_events (List.map (translate_event t) events) in
      let a = t.enc in
      Wire.A.reset a;
      Wire.encode_batch_into a events;
      let bytes = Wire.A.contents a in
      t.received <- t.received + String.length bytes;
      bytes
