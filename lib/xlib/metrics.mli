(** A metrics registry for the event pipeline.

    One registry lives inside each {!Server} (and anything holding the
    server can hang its own series off it).  Three primitives:

    - {b counters} — monotonically increasing ints (events enqueued,
      coalesced away, delivered, per-request-opcode counts, pans);
    - {b gauges} — recorded maxima (queue high-water mark);
    - {b histograms} — log2-bucketed distributions of integer samples
      (delivery batch sizes, dispatch latencies in nanoseconds).

    Handles ({!counter}, {!gauge}, {!histogram}) are find-or-create by
    name, so hot paths look a series up once and then pay one mutation per
    sample.  {!to_json} dumps the whole registry as a single JSON object
    for the bench harness and CI artifacts. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val counter_value : t -> string -> int
(** 0 when the series does not exist. *)

(** {1 Gauges (recorded maxima)} *)

type gauge

val gauge : t -> string -> gauge
val record_max : gauge -> int -> unit
val gauge_value : t -> string -> int

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit
(** Record a sample.  Buckets are log2-sized: sample [n >= 0] lands in
    bucket [ceil (log2 (n + 1))], i.e. bucket upper bounds 0, 1, 3, 7,
    15, ... *)

val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_max : histogram -> int

val hist_quantile : histogram -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile ([0. <= q <= 1.]) from
    the log2 buckets, interpolating linearly inside the bucket holding the
    q-th sample.  The estimate is within one bucket (a factor of 2) of the
    true value; 0 when the histogram is empty. *)

(** {1 Labeled families}

    A family is one logical series fanned out by a single label key —
    [functions.calls{fn}], [events.delivered.by_conn{conn}] — so dispatch
    time, allocation and fault absorption become attributable to a client,
    function or event kind.  Cardinality is bounded: the first [max_series]
    distinct label values (default 32) get real series; every later value
    collapses into the ["other"] series, and each rejected lookup bumps the
    registry-wide [metrics.label_overflow] counter.  Hot paths look a label
    up once and cache the returned handle, exactly like plain counters. *)

type counter_family
type histogram_family

val counter_family :
  t -> ?max_series:int -> key:string -> string -> counter_family
(** Find-or-create by family name.  [key] and [max_series] are fixed at
    first creation; later calls with the same name return the existing
    family unchanged. *)

val histogram_family :
  t -> ?max_series:int -> key:string -> string -> histogram_family

val labeled_counter : counter_family -> string -> counter
(** The series for one label value — or the ["other"] series once the
    family is at capacity (bumping [metrics.label_overflow] per rejected
    lookup). *)

val labeled_histogram : histogram_family -> string -> histogram

val counter_family_key : counter_family -> string
val histogram_family_key : histogram_family -> string

val counter_family_labels : counter_family -> string list
(** Label values holding a series, sorted — includes ["other"] once
    overflow has happened. *)

val labeled_counter_value : t -> string -> string -> int
(** [labeled_counter_value t family label]; 0 when either does not
    exist. *)

val family_top : counter_family -> int -> (string * int) list
(** The family's top-[n] series by value, descending (ties broken by
    label) — the "top talkers" view. *)

val top_json : t -> ?n:int -> unit -> string
(** Every counter family's {!family_top} (default [n = 8]) as one JSON
    object: [{family:{"key":k,"top":[{"label":l,"value":v},..]},..}] —
    the payload behind [f.stats]'s ["top"] section. *)

(** {2 Clocks}

    Two timing helpers record into histograms, and they deliberately use
    different clocks:

    - {!time_ns} charges {e CPU time} ([Sys.time]) — use it for
      work-per-operation series.  Server/WM series using it:
      [wm.dispatch_ns], [panner.refresh_ns].
    - {!time_mono_ns} charges {e wall time} from the monotonic clock —
      use it for latency a user would perceive.  {!Tracing} spans use the
      same monotonic source, so span durations and [time_mono_ns] series
      are directly comparable; CPU-time series are not. *)

val time_ns : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk and record its CPU time in nanoseconds into the named
    histogram. *)

val time_mono_ns : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk and record its wall (monotonic) time in nanoseconds into
    the named histogram. *)

val now_mono_ns : unit -> int
(** One reading of the shared monotonic clock, in nanoseconds — for callers
    (the {!Wm} watchdog) that need the elapsed value itself, not just a
    histogram sample. *)

(** {1 Export} *)

val reset : t -> unit
(** Zero every series (keeps the registrations, so held handles stay
    valid). *)

val json_string : string -> string
(** Escape and quote a string as a JSON string literal.  Used for every
    series name in {!to_json} (so a stray name can never corrupt the dump)
    and shared with {!Tracing}'s exporters. *)

val to_json : t -> string
(** The registry as one JSON object:
    [{"counters": {..}, "gauges": {..},
      "histograms": {name: {"count","sum","max","p50","p99","p999",
      "buckets":[[le,count],..]}},
      "labeled": {family: {"key":k,"series":{label:v,..}},..},
      "labeled_histograms": {family: {"key":k,"series":{label:hist,..}},..}]
    [p50]/[p99]/[p999] are {!hist_quantile} estimates.  Series are sorted by name
    so dumps diff cleanly, and names are escaped with {!json_string} so the
    dump is always valid JSON. *)

val pp : Format.formatter -> t -> unit

val to_prometheus : t -> string
(** The registry in Prometheus text exposition format (0.0.4): counters as
    [swm_<name>_total], gauges as [swm_<name>], histograms as cumulative
    [_bucket{le="..."}] lines (log2 upper bounds, ending in [+Inf]) plus
    [_sum]/[_count].  Labeled families follow as
    [swm_<family>_total{key="value"}] samples (and labeled histograms with
    the family label ahead of [le]); label values are escaped per the
    format (backslash, double quote and newline each get a backslash
    escape).  Dots and other
    non-identifier characters in series names become underscores.  Series
    are name-sorted, like {!to_json}. *)

val to_table : t -> string
(** A human-readable table: name-sorted counters and gauges with their
    values, histograms with count/p50/p99/p999/max — what [swmcmd_cli
    --metrics --table] prints. *)

(** {1 Time-series sampler}

    A {!sampler} snapshots a fixed list of counters into a bounded ring
    ({!sample}, driven from the WM's dispatch tick) so rates can be derived
    over the retained window — events/sec, faults/sec — rather than only
    all-time totals.  Like the flight recorder's ring, the sampler never
    grows: sampling cost is constant no matter the uptime. *)

type sampler

val sampler : t -> ?capacity:int -> string list -> sampler
(** Track the named counters ([capacity] retained samples, default 64). *)

val sampler_names : sampler -> string list
val sample : sampler -> unit
(** Record one timestamped snapshot of every tracked counter. *)

val sample_count : sampler -> int
(** Samples taken since creation (>= {!retained}). *)

val retained : sampler -> int
(** Samples currently held in the ring (at most the capacity). *)

val rate : sampler -> string -> float
(** Increments per second over the retained window ([newest - oldest] /
    elapsed); 0 with fewer than two samples or for an untracked name. *)

val stats_json : sampler -> string
(** [{"samples":n,"window_ns":w,"series":{name:{"value":v,
    "rate_per_sec":r},..}}] — the payload behind [f.stats]. *)
