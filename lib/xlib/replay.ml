(* Deterministic re-execution of recorded journals.  See replay.mli for
   the op grammar; Server owns the write side (its journal taps), this
   module owns the read side. *)

type expect = Converge | No_crash

type report = {
  reason : string;
  resources : string list;
  screens : (int * int) list;
  ops : string list;
  dropped : int;
  snap : string option;
  expect : expect;
}

let make_report ?(reason = "repro") ?(resources = []) ?(screens = []) ?snap
    ?expect ops =
  let expect =
    match expect with
    | Some e -> e
    | None -> ( match snap with Some _ -> Converge | None -> No_crash)
  in
  { reason; resources; screens; ops; dropped = 0; snap; expect }

type harness = { h_step : unit -> unit; h_snapshot : unit -> string }

type divergence = {
  d_path : string;
  d_expected : string;
  d_got : string;
  d_context : string list;
}

type outcome =
  | Converged of { ops : int; steps : int }
  | No_snapshot of { ops : int; steps : int }
  | Diverged of divergence
  | Crashed of { op_index : int; op : string; error : string }
  | Truncated of { dropped : int }

let ok = function Converged _ | No_snapshot _ -> true | _ -> false

(* -------- report parsing -------- *)

let string_list j =
  match Json.to_list j with
  | Some l -> List.filter_map Json.to_string l
  | None -> []

let screens_of j =
  match Json.to_list j with
  | Some l ->
      List.filter_map
        (fun pair ->
          match Json.to_list pair with
          | Some [ a; b ] -> (
              match (Json.to_int a, Json.to_int b) with
              | Some w, Some h -> Some (w, h)
              | _ -> None)
          | _ -> None)
        l
  | None -> []

let snap_member name obj =
  match Json.member name obj with
  | Some Json.Null | None -> None
  | Some s -> Some (Json.render s)

let parse_report text =
  match Json.parse text with
  | Error e -> Error ("malformed JSON: " ^ e)
  | Ok root -> (
      let reason =
        Option.value ~default:""
          (Option.bind (Json.member "reason" root) Json.to_string)
      in
      let meta_member name =
        Option.bind (Json.member "meta" root) (Json.member name)
      in
      let meta_resources =
        match meta_member "resources" with Some r -> string_list r | None -> []
      in
      let meta_screens =
        match meta_member "screens" with Some s -> screens_of s | None -> []
      in
      match Json.member "journal" root with
      | Some journal -> (
          (* Full crash report: the Recorder.dump_json shape. *)
          match Option.bind (Json.member "ops" journal) Json.to_list with
          | None -> Error "crash report journal has no ops list"
          | Some raw ->
              let ops = List.filter_map Json.to_string raw in
              if List.length ops <> List.length raw then
                Error "journal ops must all be strings"
              else
                let dropped =
                  Option.value ~default:0
                    (Option.bind (Json.member "dropped" journal) Json.to_int)
                in
                let snap = snap_member "snap" journal in
                (* A crash report always intends convergence; when the
                   recorded session never reached a snapshot the replay
                   reports [No_snapshot] rather than silently passing. *)
                Ok
                  {
                    reason;
                    resources = meta_resources;
                    screens = meta_screens;
                    ops;
                    dropped;
                    snap;
                    expect = Converge;
                  })
      | None -> (
          (* Compact repro file. *)
          match Json.member "ops" root with
          | None -> Error "neither a crash report nor a repro file (no ops)"
          | Some o -> (
              match Json.to_list o with
              | None -> Error "repro ops must be a list"
              | Some raw ->
                  let ops = List.filter_map Json.to_string raw in
                  if List.length ops <> List.length raw then
                    Error "repro ops must all be strings"
                  else
                    let snap = snap_member "snap" root in
                    let expect =
                      match
                        Option.bind (Json.member "expect" root) Json.to_string
                      with
                      | Some "no_crash" -> No_crash
                      | Some _ -> Converge
                      | None -> (
                          match snap with Some _ -> Converge | None -> No_crash)
                    in
                    let resources =
                      match Json.member "resources" root with
                      | Some r -> string_list r
                      | None -> meta_resources
                    in
                    let screens =
                      match Json.member "screens" root with
                      | Some s -> screens_of s
                      | None -> meta_screens
                    in
                    Ok { reason; resources; screens; ops; dropped = 0; snap; expect })))

let repro_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"repro\":1,\n";
  Buffer.add_string buf
    (Printf.sprintf "\"reason\":%s,\n" (Json.escape r.reason));
  Buffer.add_string buf
    (Printf.sprintf "\"expect\":%s,\n"
       (Json.escape
          (match r.expect with Converge -> "converge" | No_crash -> "no_crash")));
  Buffer.add_string buf "\"resources\":[";
  List.iteri
    (fun i res ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Json.escape res))
    r.resources;
  Buffer.add_string buf "],\n\"screens\":[";
  List.iteri
    (fun i (w, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%d,%d]" w h))
    r.screens;
  Buffer.add_string buf "],\n\"snap\":";
  Buffer.add_string buf (match r.snap with Some s -> s | None -> "null");
  Buffer.add_string buf ",\n\"ops\":[\n";
  List.iteri
    (fun i op ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Json.escape op))
    r.ops;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* -------- snapshot normalisation and diff -------- *)

(* The recorded snapshot names windows by their ids in the *recorded*
   session; the replay allocates fresh ids.  [remap] translates recorded
   ids (filled in as creates execute); both sides are then sorted so the
   comparison is order-insensitive. *)

let win_of j =
  Option.value ~default:0.0 (Option.bind (Json.member "win" j) Json.to_float)

let compare_num a b =
  match (a, b) with
  | Json.Num x, Json.Num y -> compare x y
  | _ -> compare a b

let rec normalize ~remap (j : Json.t) : Json.t =
  let remap_num f = float_of_int (remap (int_of_float f)) in
  match j with
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             let v =
               match (k, v) with
               | "win", Json.Num f -> Json.Num (remap_num f)
               | ("iconic" | "sticky"), Json.List ids ->
                   let ids =
                     List.map
                       (function
                         | Json.Num f -> Json.Num (remap_num f) | x -> x)
                       ids
                   in
                   Json.List (List.sort compare_num ids)
               | "clients", Json.List l ->
                   let l = List.map (normalize ~remap) l in
                   Json.List
                     (List.sort (fun a b -> compare (win_of a) (win_of b)) l)
               | _ -> normalize ~remap v
             in
             (k, v))
           fields)
  | Json.List l -> Json.List (List.map (normalize ~remap) l)
  | x -> x

let join path key = if path = "" then key else path ^ "." ^ key

let rec diff path (a : Json.t) (b : Json.t) =
  match (a, b) with
  | Json.Obj xs, Json.Obj ys ->
      let keys =
        List.map fst xs
        @ List.filter (fun k -> not (List.mem_assoc k xs)) (List.map fst ys)
      in
      List.fold_left
        (fun acc k ->
          match acc with
          | Some _ -> acc
          | None -> (
              match (List.assoc_opt k xs, List.assoc_opt k ys) with
              | Some va, Some vb -> diff (join path k) va vb
              | Some va, None -> Some (join path k, Json.render va, "(missing)")
              | None, Some vb -> Some (join path k, "(missing)", Json.render vb)
              | None, None -> None))
        None keys
  | Json.List xs, Json.List ys ->
      if List.length xs <> List.length ys then
        Some
          ( join path "length",
            string_of_int (List.length xs),
            string_of_int (List.length ys) )
      else
        List.fold_left
          (fun acc (i, (x, y)) ->
            match acc with
            | Some _ -> acc
            | None -> diff (Printf.sprintf "%s[%d]" path i) x y)
          None
          (List.mapi (fun i p -> (i, p)) (List.combine xs ys))
  | _ ->
      if a = b then None else Some (path, Json.render a, Json.render b)

(* -------- op execution -------- *)

let mods_of_bits bits =
  Keysym.mods ~shift:(bits land 1 <> 0) ~control:(bits land 2 <> 0)
    ~meta:(bits land 4 <> 0) ()

let base_name key =
  match String.rindex_opt key '#' with
  | Some i -> String.sub key 0 i
  | None -> key

(* submit_bytes stringifies execution errors; a real client absorbs the
   X errors chaos targets at it, so the replay does too.  Anything else
   (decode failure, Invalid_argument) is a genuine crash. *)
let absorbable msg =
  let prefixed p =
    String.length msg >= String.length p && String.sub msg 0 (String.length p) = p
  in
  prefixed "BadWindow" || prefixed "BadAccess"

(* Recorded wids a frame string creates, in order (pre-scanned so the
   recorded->actual mapping can be registered after the submit). *)
let created_wids bytes =
  let rec loop acc pos =
    if pos >= String.length bytes then List.rev acc
    else
      match Wire_codec.decode_request bytes ~pos with
      | Error _ -> List.rev acc
      | Ok (req, next) -> (
          match req with
          | Wire_codec.Create_window { wid; _ } -> loop (wid :: acc) next
          | _ -> loop acc next)
  in
  loop [] 0

let run report ~make =
  if report.dropped > 0 then Truncated { dropped = report.dropped }
  else
    let server =
      match report.screens with
      | [] -> Server.create ()
      | screens ->
          Server.create
            ~screens:
              (List.map
                 (fun (w, h) -> { Server.size = (w, h); monochrome = false })
                 screens)
            ()
    in
    let harness = make server in
    (* Recorded server ids -> replay server ids, fed by creates as they
       execute.  Root ids are identical on both sides (sequential
       allocation from a fresh server), so they seed as identity. *)
    let idmap : (int, Xid.t) Hashtbl.t = Hashtbl.create 64 in
    for screen = 0 to Server.screen_count server - 1 do
      let root = Server.root server ~screen in
      Hashtbl.replace idmap (Xid.to_int root) root
    done;
    let resolve i =
      match Hashtbl.find_opt idmap i with Some x -> x | None -> Xid.of_int i
    in
    let conns : (string, Wire_conn.t) Hashtbl.t = Hashtbl.create 8 in
    let conn_for key =
      match Hashtbl.find_opt conns key with
      | Some wc -> wc
      | None ->
          let wc = Wire_conn.create server ~name:(base_name key) in
          (* Frames name windows by recorded server ids; seed the roots
             so pre-journal windows (the roots) resolve. *)
          for screen = 0 to Server.screen_count server - 1 do
            let root = Server.root server ~screen in
            Wire_conn.alias wc ~client:root ~server:root
          done;
          Hashtbl.replace conns key wc;
          wc
    in
    let steps = ref 0 in
    let dirty = ref false in
    let replay_snap = ref None in
    let step () =
      harness.h_step ();
      incr steps;
      dirty := false
    in
    let fail msg = failwith msg in
    let int_of s = match int_of_string_opt s with
      | Some i -> i
      | None -> fail (Printf.sprintf "bad integer %S" s)
    in
    let unhex s =
      match Wire_codec.of_hex s with Ok b -> b | Error e -> fail e
    in
    let absorb f = try f () with Server.Bad_window _ | Server.Bad_access _ -> () in
    let remap_value (v : Prop.value) : Prop.value =
      let r id = resolve (Xid.to_int id) in
      match v with
      | Prop.Window w -> Prop.Window (r w)
      | Prop.Wm_hints h ->
          Prop.Wm_hints
            { h with Prop.icon_window = Option.map r h.Prop.icon_window }
      | Prop.Wm_state_value { state; icon } ->
          Prop.Wm_state_value { state; icon = r icon }
      | v -> v
    in
    let apply op =
      match String.split_on_char ' ' op with
      | [ "step" ] -> step ()
      | [ "snap" ] ->
          if !dirty then step ();
          replay_snap := Some (harness.h_snapshot ())
      | [ "frame"; key; hex ] ->
          let bytes = unhex hex in
          let wc = conn_for key in
          let creates = created_wids bytes in
          (match Wire_conn.submit_bytes wc bytes with
          | Ok _ -> ()
          | Error { Wire_conn.error; _ } ->
              if not (absorbable error) then fail error);
          List.iter
            (fun wid ->
              match Wire_conn.resolve wc wid with
              | Some actual -> Hashtbl.replace idmap (Xid.to_int wid) actual
              | None -> ())
            creates;
          dirty := true
      | [ "prop"; key; wid; hexname; hexvalue ] -> (
          let wc = conn_for key in
          let name = unhex hexname in
          match Prop.value_of_text (unhex hexvalue) with
          | None -> fail "undecodable property value"
          | Some v ->
              absorb (fun () ->
                  Server.change_property server (Wire_conn.conn wc)
                    (resolve (int_of wid)) ~name (remap_value v));
              dirty := true)
      | [ "send"; key; dest; hexev ] -> (
          let wc = conn_for key in
          let bytes = unhex hexev in
          match Wire_codec.decode_event bytes ~pos:0 with
          | Error e -> fail e
          | Ok (event, _) ->
              absorb (fun () ->
                  Server.send_event server (Wire_conn.conn wc)
                    ~dest:(resolve (int_of dest)) event);
              dirty := true)
      | [ "destroy"; wid ] ->
          (* Bad_window absorbs (the recorded session's destroy also hit a
             dead window); Invalid_argument does NOT — destroying a root is
             a poisoned op and must crash the replay. *)
          absorb (fun () -> Server.destroy_window server (resolve (int_of wid)));
          dirty := true
      | [ "damage"; wid; x; y; w; h ] ->
          absorb (fun () ->
              Server.damage_window server
                (resolve (int_of wid))
                (Geom.rect (int_of x) (int_of y) (int_of w) (int_of h)));
          dirty := true
      | [ "warp"; screen; x; y ] ->
          Server.warp_pointer server ~screen:(int_of screen)
            (Geom.point (int_of x) (int_of y));
          dirty := true
      | [ "press"; btn; mods ] ->
          Server.press_button server ~mods:(mods_of_bits (int_of mods))
            (int_of btn);
          dirty := true
      | [ "release"; btn; mods ] ->
          Server.release_button server ~mods:(mods_of_bits (int_of mods))
            (int_of btn);
          dirty := true
      | [ "key"; hexsym; mods ] ->
          Server.press_key server ~mods:(mods_of_bits (int_of mods))
            (unhex hexsym);
          dirty := true
      | [ "kill"; key ] ->
          Server.disconnect server (Wire_conn.conn (conn_for key));
          dirty := true
      | [ "stall"; key; state ] ->
          Server.set_stalled (Wire_conn.conn (conn_for key)) (int_of state <> 0);
          dirty := true
      | [ "flood"; key; burst ] ->
          (* A flood fault's storm: re-delivered through the same
             deterministic generator ([Server.flood_conn]), so the replayed
             queue sheds exactly as the recorded session did. *)
          Server.flood_conn server
            (Wire_conn.conn (conn_for key))
            ~burst:(int_of burst);
          dirty := true
      | [ "shapeclear"; wid ] ->
          (* The op carries no connection; any one will do (shape state is
             not owner-scoped). *)
          absorb (fun () ->
              Server.shape_clear server
                (Wire_conn.conn (conn_for "replay#0"))
                (resolve (int_of wid)));
          dirty := true
      | _ -> fail "unknown op"
    in
    let exception Stop of outcome in
    try
      List.iteri
        (fun i op ->
          try apply op with
          | Stop _ as e -> raise e
          | e ->
              let error =
                match e with
                | Failure msg -> msg
                | Invalid_argument msg -> msg
                | Server.Bad_window id ->
                    Format.asprintf "BadWindow %a" Xid.pp id
                | Server.Bad_access msg -> "BadAccess: " ^ msg
                | e -> Printexc.to_string e
              in
              raise (Stop (Crashed { op_index = i; op; error })))
        report.ops;
      if !dirty then step ();
      let nops = List.length report.ops in
      match report.expect with
      | No_crash -> Converged { ops = nops; steps = !steps }
      | Converge -> (
          match report.snap with
          | None -> No_snapshot { ops = nops; steps = !steps }
          | Some recorded -> (
              let got =
                match !replay_snap with
                | Some s -> s
                | None -> harness.h_snapshot ()
              in
              match (Json.parse recorded, Json.parse got) with
              | Error e, _ ->
                  Crashed
                    {
                      op_index = nops;
                      op = "(snapshot)";
                      error = "recorded snapshot unparsable: " ^ e;
                    }
              | _, Error e ->
                  Crashed
                    {
                      op_index = nops;
                      op = "(snapshot)";
                      error = "replay snapshot unparsable: " ^ e;
                    }
              | Ok expected, Ok actual -> (
                  let expected =
                    normalize
                      ~remap:(fun i -> Xid.to_int (resolve i))
                      expected
                  in
                  let actual = normalize ~remap:(fun i -> i) actual in
                  match diff "" expected actual with
                  | None -> Converged { ops = nops; steps = !steps }
                  | Some (d_path, d_expected, d_got) ->
                      let context =
                        let rec last_n n l =
                          let len = List.length l in
                          if len <= n then l
                          else last_n n (List.tl l)
                        in
                        last_n 8 report.ops
                      in
                      Diverged
                        { d_path; d_expected; d_got; d_context = context })))
    with Stop o -> o

(* -------- outcome rendering -------- *)

let outcome_to_string = function
  | Converged { ops; steps } ->
      Printf.sprintf "converged (%d ops, %d steps)" ops steps
  | No_snapshot { ops; steps } ->
      Printf.sprintf "ran clean, no recorded snapshot to compare (%d ops, %d steps)"
        ops steps
  | Diverged d ->
      Printf.sprintf "diverged at %s: recorded %s, replayed %s" d.d_path
        d.d_expected d.d_got
  | Crashed { op_index; op; error } ->
      Printf.sprintf "crashed at op %d (%s): %s" op_index op error
  | Truncated { dropped } ->
      Printf.sprintf "journal truncated (%d ops lost): convergence unassertable"
        dropped

let outcome_json = function
  | Converged { ops; steps } ->
      Printf.sprintf "{\"outcome\":\"converged\",\"ops\":%d,\"steps\":%d}" ops
        steps
  | No_snapshot { ops; steps } ->
      Printf.sprintf "{\"outcome\":\"no_snapshot\",\"ops\":%d,\"steps\":%d}" ops
        steps
  | Diverged d ->
      Printf.sprintf
        "{\"outcome\":\"diverged\",\"path\":%s,\"expected\":%s,\"got\":%s,\"context\":[%s]}"
        (Json.escape d.d_path) (Json.escape d.d_expected) (Json.escape d.d_got)
        (String.concat "," (List.map Json.escape d.d_context))
  | Crashed { op_index; op; error } ->
      Printf.sprintf
        "{\"outcome\":\"crashed\",\"op_index\":%d,\"op\":%s,\"error\":%s}"
        op_index (Json.escape op) (Json.escape error)
  | Truncated { dropped } ->
      Printf.sprintf "{\"outcome\":\"truncated\",\"dropped\":%d}" dropped

(* -------- delta debugging (ddmin) -------- *)

let split_chunks arr n =
  let len = Array.length arr in
  List.filter
    (fun c -> c <> [])
    (List.init n (fun i ->
         let lo = i * len / n and hi = (i + 1) * len / n in
         Array.to_list (Array.sub arr lo (hi - lo))))

let complement chunks i =
  List.concat (List.filteri (fun j _ -> j <> i) chunks)

let minimize ~ops ~fails =
  let tests = ref 0 in
  let test l =
    incr tests;
    fails l
  in
  if not (test ops) then (ops, !tests)
  else begin
    let rec go ops n =
      let len = List.length ops in
      if len <= 1 then ops
      else begin
        let chunks = split_chunks (Array.of_list ops) n in
        match List.find_opt (fun c -> List.length c < len && test c) chunks with
        | Some chunk -> go chunk 2
        | None -> (
            match
              List.find_opt
                (fun c -> List.length c < len && test c)
                (List.mapi (fun i _ -> complement chunks i) chunks)
            with
            | Some rest -> go rest (max (n - 1) 2)
            | None -> if n < len then go ops (min (2 * n) len) else ops)
      end
    in
    let minimized = go ops 2 in
    (minimized, !tests)
  end
