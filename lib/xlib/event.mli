(** X events and event masks.

    The [window] field of each event is the window the receiving client
    selected on (the "event window"); where the protocol distinguishes a
    subwindow or child, it is carried explicitly. *)

type mask =
  | Substructure_redirect
  | Substructure_notify
  | Structure_notify
  | Property_change
  | Button_press_mask
  | Button_release_mask
  | Key_press_mask
  | Pointer_motion_mask
  | Enter_leave_mask
  | Exposure_mask
  | Focus_change_mask

val pp_mask : Format.formatter -> mask -> unit

type stack_mode = Above | Below

(** Requested configuration changes, each field optional as in a
    ConfigureWindow request. *)
type config_changes = {
  cx : int option;
  cy : int option;
  cw : int option;
  ch : int option;
  cborder : int option;
  cstack : stack_mode option;
  csibling : Xid.t option;
}

val no_changes : config_changes

type t =
  | Map_request of { window : Xid.t; parent : Xid.t }
  | Configure_request of { window : Xid.t; parent : Xid.t; changes : config_changes }
  | Map_notify of { window : Xid.t }
  | Unmap_notify of { window : Xid.t }
  | Destroy_notify of { window : Xid.t }
  | Reparent_notify of { window : Xid.t; parent : Xid.t; pos : Geom.point }
  | Configure_notify of {
      window : Xid.t;
      geom : Geom.rect;  (** for synthetic events, root-relative (ICCCM) *)
      border : int;
      synthetic : bool;
    }
  | Property_notify of { window : Xid.t; name : string; deleted : bool }
  | Button_press of {
      window : Xid.t;
      button : int;
      mods : Keysym.modifiers;
      pos : Geom.point;  (** event-window relative *)
      root_pos : Geom.point;
    }
  | Button_release of {
      window : Xid.t;
      button : int;
      mods : Keysym.modifiers;
      pos : Geom.point;
      root_pos : Geom.point;
    }
  | Key_press of {
      window : Xid.t;
      keysym : Keysym.t;
      mods : Keysym.modifiers;
      pos : Geom.point;
      root_pos : Geom.point;
    }
  | Motion_notify of { window : Xid.t; pos : Geom.point; root_pos : Geom.point }
  | Enter_notify of { window : Xid.t }
  | Leave_notify of { window : Xid.t }
  | Focus_in of { window : Xid.t }
  | Focus_out of { window : Xid.t }
  | Expose of { window : Xid.t; damage : Geom.rect option }
      (** [damage = None] exposes the whole window; [Some r] a
          window-interior rectangle.  The server's event queues merge
          consecutive damage on the same window via {!Region.union}. *)
  | Client_message of { window : Xid.t; name : string; data : string }

val window_of : t -> Xid.t
(** The event window. *)

val code : t -> int
(** Dense per-kind code, identical to the wire event code used by
    {!Wire_codec.encode_event}.  Ranges over [1 .. last_event]; 0 is
    reserved.  Handler tables indexed by [code] need
    [last_event + 1] slots. *)

val last_event : int
(** The highest value {!code} returns (18). *)

val name_of_code : int -> string
(** Protocol name for a kind code ("MapRequest", ...), ["Unknown"] for
    out-of-range codes.  Constant strings; allocation-free. *)

val kind_name : t -> string
(** The X protocol name of the event's kind ("ButtonPress", "Expose", ...);
    a constant string, cheap enough for tracing attributes. *)

val droppable : t -> bool
(** Shed eligibility under overload: [true] only for latest-wins /
    redrawable observations (MotionNotify, Expose).  Everything else is
    state-bearing and must never be shed — see the shed-eligibility table
    in DESIGN.md. *)

val droppable_code : int -> bool
(** {!droppable} by kind code, for callers that only hold a code. *)

val pp : Format.formatter -> t -> unit
