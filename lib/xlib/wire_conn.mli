(** A connection that speaks only the {!Wire} byte protocol.

    Real X clients allocate their own resource ids and talk to the server
    through a socket.  [Wire_conn] reproduces that contract on top of the
    in-process server: the client submits encoded request bytes (choosing
    its own window ids, as X clients do) and drains encoded event bytes;
    the connection translates between the client's id space and the
    server's, in both directions.

    This is the substrate fidelity check: everything a client can do
    in-process it can also do through bytes alone (see the wire tests), and
    the byte counts measure real protocol traffic. *)

type t

val create : Server.t -> name:string -> t
val conn : t -> Server.conn
(** The underlying connection (for tests that need to peek). *)

val fresh_id : t -> Xid.t
(** Allocate a client-side id for a CreateWindow request. *)

val alias : t -> client:Xid.t -> server:Xid.t -> unit
(** Pre-register an id translation.  {!Replay} re-injects journalled
    frames whose ids come from the *recorded* session: creates register
    their own mapping as they execute, but ids that predate the journal
    (the screen roots) must be seeded by hand. *)

val root_id : t -> screen:int -> Xid.t
(** The client-visible id of a screen's root (pre-mapped, like the root ids
    an X connection learns from the setup handshake). *)

val submit : t -> Wire.request -> (unit, string) result
(** Convenience: encode then {!submit_bytes}, reporting only the error
    message. *)

type submit_error = {
  executed : int;
      (** requests that ran before the failure — a batch is not
          transactional, so partial effects are already visible *)
  error : string;  (** first decode or execution error *)
}

val submit_bytes : t -> string -> (int, submit_error) result
(** Decode and execute every request in the byte string; ids are translated
    from the client's space.  Returns the number executed, or the first
    error together with how many requests preceded it.  Every failed
    submission also bumps the [wire.rejected_frames] counter in
    {!Server.metrics}.  If the server has an armed {!Fault} plan, the byte
    string may first be truncated or corrupted (frame fault site). *)

val drain_event_bytes : t -> string
(** Encode and remove all pending events, window ids translated back into
    the client's id space (unknown server windows pass through), one
    32-byte frame per event. *)

val flush_batch_bytes : t -> string
(** The batched counterpart of {!drain_event_bytes}: drain everything
    pending, run {!Wire.compress_events} over it, and return one
    length-prefixed {!Wire.encode_batch} frame ([""] when nothing is
    queued). *)

val bytes_sent : t -> int
val bytes_received : t -> int
(** Cumulative wire traffic through this connection. *)

val resolve : t -> Xid.t -> Xid.t option
(** The server id behind a client id, if any (for tests). *)
