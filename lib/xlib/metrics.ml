type counter = { mutable c : int }
type gauge = { mutable g : int }

(* log2 buckets: index i counts samples whose value v satisfies
   2^(i-1) <= v+1 < 2^i, i.e. upper bounds 0, 1, 3, 7, 15, ... *)
let buckets = 32

type histogram = {
  counts : int array;
  mutable hcount : int;
  mutable hsum : int;
  mutable hmax : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

let find_or_create tbl name mk =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = mk () in
      Hashtbl.replace tbl name v;
      v

let counter t name = find_or_create t.counters name (fun () -> { c = 0 })
let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.c | None -> 0

let gauge t name = find_or_create t.gauges name (fun () -> { g = 0 })
let record_max g n = if n > g.g then g.g <- n

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some g -> g.g | None -> 0

let histogram t name =
  find_or_create t.histograms name (fun () ->
      { counts = Array.make buckets 0; hcount = 0; hsum = 0; hmax = 0 })

let bucket_of v =
  let v = max 0 v in
  let rec go i bound = if v < bound || i = buckets - 1 then i else go (i + 1) (bound * 2) in
  go 0 1

let bucket_upper i = (1 lsl i) - 1

let observe h v =
  h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + max 0 v;
  if v > h.hmax then h.hmax <- v

let hist_count h = h.hcount
let hist_sum h = h.hsum
let hist_max h = h.hmax

(* Two clocks, two helpers.  [time_ns] charges CPU time (Sys.time): right
   for "how much work did this do" series.  [time_mono_ns] charges wall
   time from the monotonic clock: right for latency series and the only
   clock spans may use (Tracing shares the same source).  Which clock a
   series uses is part of its contract — see the .mli. *)
let time_ns t name f =
  let h = histogram t name in
  let t0 = Sys.time () in
  let r = f () in
  let t1 = Sys.time () in
  observe h (int_of_float ((t1 -. t0) *. 1e9));
  r

let now_mono_ns () = Int64.to_int (Monotonic_clock.now ())

let time_mono_ns t name f =
  let h = histogram t name in
  let t0 = now_mono_ns () in
  let r = f () in
  let t1 = now_mono_ns () in
  observe h (t1 - t0);
  r

(* Quantile estimate from the log2 buckets: find the bucket holding the
   q-th sample and interpolate linearly inside it.  Error is bounded by
   the bucket width (a factor of 2), which is fine for p50/p99 summary
   lines; exact values need the raw samples we deliberately do not keep. *)
let hist_quantile h q =
  if h.hcount = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int h.hcount in
    let rec go i cum =
      if i >= buckets then float_of_int h.hmax
      else begin
        let c = h.counts.(i) in
        if c > 0 && float_of_int (cum + c) >= target then begin
          let lower = if i = 0 then 0. else float_of_int (bucket_upper (i - 1) + 1) in
          let upper = float_of_int (min (bucket_upper i) h.hmax) in
          let within = Float.max 0. ((target -. float_of_int cum) /. float_of_int c) in
          Float.min upper (lower +. ((upper -. lower) *. within))
        end
        else go (i + 1) (cum + c)
      end
    in
    go 0 0
  end

let reset t =
  Hashtbl.iter (fun _ c -> c.c <- 0) t.counters;
  Hashtbl.iter (fun _ g -> g.g <- 0) t.gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.counts 0 buckets 0;
      h.hcount <- 0;
      h.hsum <- 0;
      h.hmax <- 0)
    t.histograms

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Series names are [A-Za-z0-9._-] by convention; escape anyway so a stray
   name cannot corrupt the dump. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let hist_json h =
  let bucket_list = ref [] in
  for i = buckets - 1 downto 0 do
    if h.counts.(i) > 0 then
      bucket_list :=
        Printf.sprintf "[%d,%d]" (bucket_upper i) h.counts.(i) :: !bucket_list
  done;
  Printf.sprintf
    "{\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%.1f,\"p99\":%.1f,\"buckets\":[%s]}"
    h.hcount h.hsum h.hmax (hist_quantile h 0.5) (hist_quantile h 0.99)
    (String.concat "," !bucket_list)

let to_json t =
  let obj entries = "{" ^ String.concat "," entries ^ "}" in
  let counters =
    List.map
      (fun (name, c) -> Printf.sprintf "%s:%d" (json_string name) c.c)
      (sorted_bindings t.counters)
  in
  let gauges =
    List.map
      (fun (name, g) -> Printf.sprintf "%s:%d" (json_string name) g.g)
      (sorted_bindings t.gauges)
  in
  let hists =
    List.map
      (fun (name, h) -> Printf.sprintf "%s:%s" (json_string name) (hist_json h))
      (sorted_bindings t.histograms)
  in
  obj
    [
      "\"counters\":" ^ obj counters;
      "\"gauges\":" ^ obj gauges;
      "\"histograms\":" ^ obj hists;
    ]

let pp ppf t =
  List.iter
    (fun (name, c) -> Format.fprintf ppf "%s = %d@." name c.c)
    (sorted_bindings t.counters);
  List.iter
    (fun (name, g) -> Format.fprintf ppf "%s (max) = %d@." name g.g)
    (sorted_bindings t.gauges);
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "%s: count=%d sum=%d max=%d@." name h.hcount h.hsum h.hmax)
    (sorted_bindings t.histograms)

(* Prometheus text exposition (version 0.0.4).  Series names here use dots;
   Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*, so everything else
   maps to '_' and the whole family gets an "swm_" prefix. *)
let prometheus_name name =
  let buf = Buffer.create (String.length name + 4) in
  Buffer.add_string buf "swm_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, c) ->
      let pname = prometheus_name name ^ "_total" in
      line "# TYPE %s counter" pname;
      line "%s %d" pname c.c)
    (sorted_bindings t.counters);
  List.iter
    (fun (name, g) ->
      let pname = prometheus_name name in
      line "# TYPE %s gauge" pname;
      line "%s %d" pname g.g)
    (sorted_bindings t.gauges);
  List.iter
    (fun (name, h) ->
      let pname = prometheus_name name in
      line "# TYPE %s histogram" pname;
      (* Cumulative buckets; only boundaries where the count advances are
         written (plus the mandatory +Inf), which keeps a 32-bucket log2
         histogram to a handful of lines. *)
      let cum = ref 0 in
      for i = 0 to buckets - 1 do
        if h.counts.(i) > 0 then begin
          cum := !cum + h.counts.(i);
          line "%s_bucket{le=\"%d\"} %d" pname (bucket_upper i) !cum
        end
      done;
      line "%s_bucket{le=\"+Inf\"} %d" pname h.hcount;
      line "%s_sum %d" pname h.hsum;
      line "%s_count %d" pname h.hcount)
    (sorted_bindings t.histograms);
  Buffer.contents buf

let to_table t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  if Hashtbl.length t.counters > 0 then begin
    line "counters:";
    List.iter
      (fun (name, c) -> line "  %-36s %12d" name c.c)
      (sorted_bindings t.counters)
  end;
  if Hashtbl.length t.gauges > 0 then begin
    line "gauges (recorded maxima):";
    List.iter
      (fun (name, g) -> line "  %-36s %12d" name g.g)
      (sorted_bindings t.gauges)
  end;
  if Hashtbl.length t.histograms > 0 then begin
    line "histograms:";
    List.iter
      (fun (name, h) ->
        line "  %-36s count=%-8d p50=%-10.0f p99=%-10.0f max=%d" name h.hcount
          (hist_quantile h 0.5) (hist_quantile h 0.99) h.hmax)
      (sorted_bindings t.histograms)
  end;
  Buffer.contents buf

(* -------- time-series sampler -------- *)

type sample = { s_ts : int; s_vals : int array }

type sampler = {
  sp_registry : t;
  sp_names : string array;
  sp_ring : sample option array; (* fixed ring, like the flight recorder *)
  mutable sp_head : int;
  mutable sp_total : int;
}

let sampler t ?(capacity = 64) names =
  {
    sp_registry = t;
    sp_names = Array.of_list names;
    sp_ring = Array.make (max 2 capacity) None;
    sp_head = 0;
    sp_total = 0;
  }

let sampler_names sp = Array.to_list sp.sp_names

let sample sp =
  let vals =
    Array.map (fun name -> counter_value sp.sp_registry name) sp.sp_names
  in
  let s = { s_ts = now_mono_ns (); s_vals = vals } in
  sp.sp_ring.(sp.sp_head) <- Some s;
  sp.sp_head <- (sp.sp_head + 1) mod Array.length sp.sp_ring;
  sp.sp_total <- sp.sp_total + 1

let samples sp =
  let n = Array.length sp.sp_ring in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match sp.sp_ring.((sp.sp_head + i) mod n) with
    | Some s -> acc := s :: !acc
    | None -> ()
  done;
  !acc

let sample_count sp = sp.sp_total
let retained sp = List.length (samples sp)

(* Rates over the retained window: (newest - oldest) / elapsed.  Counters
   are monotonic, so the delta is the number of increments the window saw;
   fewer than two samples (or a zero-width window) rate as 0. *)
let window sp =
  match samples sp with
  | [] | [ _ ] -> None
  | oldest :: rest ->
      let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> oldest in
      Some (oldest, last rest)

let series_index sp name =
  let rec go i =
    if i >= Array.length sp.sp_names then None
    else if String.equal sp.sp_names.(i) name then Some i
    else go (i + 1)
  in
  go 0

let rate sp name =
  match window sp with
  | None -> 0.
  | Some (oldest, newest) -> (
      let dt_ns = newest.s_ts - oldest.s_ts in
      if dt_ns <= 0 then 0.
      else
        match series_index sp name with
        | None -> 0.
        | Some i ->
            float_of_int (newest.s_vals.(i) - oldest.s_vals.(i))
            /. (float_of_int dt_ns /. 1e9))

let stats_json sp =
  let window_ns =
    match window sp with
    | None -> 0
    | Some (oldest, newest) -> newest.s_ts - oldest.s_ts
  in
  let series =
    List.map
      (fun name ->
        Printf.sprintf "%s:{\"value\":%d,\"rate_per_sec\":%.3f}"
          (json_string name)
          (counter_value sp.sp_registry name)
          (rate sp name))
      (Array.to_list sp.sp_names)
  in
  Printf.sprintf "{\"samples\":%d,\"window_ns\":%d,\"series\":{%s}}" sp.sp_total
    window_ns (String.concat "," series)
