type counter = { mutable c : int }
type gauge = { mutable g : int }

(* log2 buckets: index i counts samples whose value v satisfies
   2^(i-1) <= v+1 < 2^i, i.e. upper bounds 0, 1, 3, 7, 15, ... *)
let buckets = 32

type histogram = {
  counts : int array;
  mutable hcount : int;
  mutable hsum : int;
  mutable hmax : int;
}

(* A labeled family is one logical series ("functions.calls") fanned out by a
   single label key ("fn").  Cardinality is bounded: the first [max] distinct
   label values get their own series, every later value collapses into the
   "other" series and bumps the registry-wide [metrics.label_overflow]
   counter — a hostile client-id explosion cannot grow the registry without
   bound. *)
type counter_family = {
  cf_key : string;
  cf_max : int;
  cf_series : (string, counter) Hashtbl.t;
  cf_overflow : counter;
}

type histogram_family = {
  hf_key : string;
  hf_max : int;
  hf_series : (string, histogram) Hashtbl.t;
  hf_overflow : counter;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  c_families : (string, counter_family) Hashtbl.t;
  h_families : (string, histogram_family) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    c_families = Hashtbl.create 8;
    h_families = Hashtbl.create 4;
  }

let find_or_create tbl name mk =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = mk () in
      Hashtbl.replace tbl name v;
      v

let counter t name = find_or_create t.counters name (fun () -> { c = 0 })
let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.c | None -> 0

let gauge t name = find_or_create t.gauges name (fun () -> { g = 0 })
let record_max g n = if n > g.g then g.g <- n

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some g -> g.g | None -> 0

let histogram t name =
  find_or_create t.histograms name (fun () ->
      { counts = Array.make buckets 0; hcount = 0; hsum = 0; hmax = 0 })

let bucket_of v =
  let v = max 0 v in
  let rec go i bound = if v < bound || i = buckets - 1 then i else go (i + 1) (bound * 2) in
  go 0 1

let bucket_upper i = (1 lsl i) - 1

let observe h v =
  h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + max 0 v;
  if v > h.hmax then h.hmax <- v

let hist_count h = h.hcount
let hist_sum h = h.hsum
let hist_max h = h.hmax

(* -------- labeled families -------- *)

let overflow_label = "other"
let overflow_counter_name = "metrics.label_overflow"

let counter_family t ?(max_series = 32) ~key name =
  find_or_create t.c_families name (fun () ->
      {
        cf_key = key;
        cf_max = max 1 max_series;
        cf_series = Hashtbl.create 8;
        cf_overflow = counter t overflow_counter_name;
      })

let histogram_family t ?(max_series = 32) ~key name =
  find_or_create t.h_families name (fun () ->
      {
        hf_key = key;
        hf_max = max 1 max_series;
        hf_series = Hashtbl.create 8;
        hf_overflow = counter t overflow_counter_name;
      })

(* Real labels are capped at [max]; "other" rides on top, so the family holds
   at most max + 1 series.  Each lookup of a rejected label counts one
   overflow (hot paths cache the returned handle, so in practice overflow
   increments once per rejected label). *)
let family_slot series maxn overflow label =
  if Hashtbl.mem series label || String.equal label overflow_label then label
  else begin
    let real =
      Hashtbl.length series - (if Hashtbl.mem series overflow_label then 1 else 0)
    in
    if real < maxn then label
    else begin
      incr overflow;
      overflow_label
    end
  end

let labeled_counter fam label =
  let label = family_slot fam.cf_series fam.cf_max fam.cf_overflow label in
  find_or_create fam.cf_series label (fun () -> { c = 0 })

let labeled_histogram fam label =
  let label = family_slot fam.hf_series fam.hf_max fam.hf_overflow label in
  find_or_create fam.hf_series label (fun () ->
      { counts = Array.make buckets 0; hcount = 0; hsum = 0; hmax = 0 })

let counter_family_key fam = fam.cf_key
let histogram_family_key fam = fam.hf_key

let counter_family_labels fam =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) fam.cf_series [])

let labeled_counter_value t name label =
  match Hashtbl.find_opt t.c_families name with
  | None -> 0
  | Some fam -> (
      match Hashtbl.find_opt fam.cf_series label with
      | Some c -> c.c
      | None -> 0)

(* Two clocks, two helpers.  [time_ns] charges CPU time (Sys.time): right
   for "how much work did this do" series.  [time_mono_ns] charges wall
   time from the monotonic clock: right for latency series and the only
   clock spans may use (Tracing shares the same source).  Which clock a
   series uses is part of its contract — see the .mli. *)
let time_ns t name f =
  let h = histogram t name in
  let t0 = Sys.time () in
  let r = f () in
  let t1 = Sys.time () in
  observe h (int_of_float ((t1 -. t0) *. 1e9));
  r

let now_mono_ns () = Int64.to_int (Monotonic_clock.now ())

let time_mono_ns t name f =
  let h = histogram t name in
  let t0 = now_mono_ns () in
  let r = f () in
  let t1 = now_mono_ns () in
  observe h (t1 - t0);
  r

(* Quantile estimate from the log2 buckets: find the bucket holding the
   q-th sample and interpolate linearly inside it.  Error is bounded by
   the bucket width (a factor of 2), which is fine for p50/p99 summary
   lines; exact values need the raw samples we deliberately do not keep. *)
let hist_quantile h q =
  if h.hcount = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int h.hcount in
    let rec go i cum =
      if i >= buckets then float_of_int h.hmax
      else begin
        let c = h.counts.(i) in
        if c > 0 && float_of_int (cum + c) >= target then begin
          let lower = if i = 0 then 0. else float_of_int (bucket_upper (i - 1) + 1) in
          let upper = float_of_int (min (bucket_upper i) h.hmax) in
          let within = Float.max 0. ((target -. float_of_int cum) /. float_of_int c) in
          Float.min upper (lower +. ((upper -. lower) *. within))
        end
        else go (i + 1) (cum + c)
      end
    in
    go 0 0
  end

let reset_hist h =
  Array.fill h.counts 0 buckets 0;
  h.hcount <- 0;
  h.hsum <- 0;
  h.hmax <- 0

let reset t =
  Hashtbl.iter (fun _ c -> c.c <- 0) t.counters;
  Hashtbl.iter (fun _ g -> g.g <- 0) t.gauges;
  Hashtbl.iter (fun _ h -> reset_hist h) t.histograms;
  Hashtbl.iter
    (fun _ fam -> Hashtbl.iter (fun _ c -> c.c <- 0) fam.cf_series)
    t.c_families;
  Hashtbl.iter
    (fun _ fam -> Hashtbl.iter (fun _ h -> reset_hist h) fam.hf_series)
    t.h_families

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* Series names are [A-Za-z0-9._-] by convention; escape anyway so a stray
   name cannot corrupt the dump. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let hist_json h =
  let bucket_list = ref [] in
  for i = buckets - 1 downto 0 do
    if h.counts.(i) > 0 then
      bucket_list :=
        Printf.sprintf "[%d,%d]" (bucket_upper i) h.counts.(i) :: !bucket_list
  done;
  Printf.sprintf
    "{\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%.1f,\"p99\":%.1f,\"p999\":%.1f,\"buckets\":[%s]}"
    h.hcount h.hsum h.hmax (hist_quantile h 0.5) (hist_quantile h 0.99)
    (hist_quantile h 0.999)
    (String.concat "," !bucket_list)

let to_json t =
  let obj entries = "{" ^ String.concat "," entries ^ "}" in
  let counters =
    List.map
      (fun (name, c) -> Printf.sprintf "%s:%d" (json_string name) c.c)
      (sorted_bindings t.counters)
  in
  let gauges =
    List.map
      (fun (name, g) -> Printf.sprintf "%s:%d" (json_string name) g.g)
      (sorted_bindings t.gauges)
  in
  let hists =
    List.map
      (fun (name, h) -> Printf.sprintf "%s:%s" (json_string name) (hist_json h))
      (sorted_bindings t.histograms)
  in
  let labeled =
    List.map
      (fun (name, fam) ->
        Printf.sprintf "%s:{\"key\":%s,\"series\":%s}" (json_string name)
          (json_string fam.cf_key)
          (obj
             (List.map
                (fun (l, c) -> Printf.sprintf "%s:%d" (json_string l) c.c)
                (sorted_bindings fam.cf_series))))
      (sorted_bindings t.c_families)
  in
  let labeled_hists =
    List.map
      (fun (name, fam) ->
        Printf.sprintf "%s:{\"key\":%s,\"series\":%s}" (json_string name)
          (json_string fam.hf_key)
          (obj
             (List.map
                (fun (l, h) ->
                  Printf.sprintf "%s:%s" (json_string l) (hist_json h))
                (sorted_bindings fam.hf_series))))
      (sorted_bindings t.h_families)
  in
  obj
    [
      "\"counters\":" ^ obj counters;
      "\"gauges\":" ^ obj gauges;
      "\"histograms\":" ^ obj hists;
      "\"labeled\":" ^ obj labeled;
      "\"labeled_histograms\":" ^ obj labeled_hists;
    ]

let pp ppf t =
  List.iter
    (fun (name, c) -> Format.fprintf ppf "%s = %d@." name c.c)
    (sorted_bindings t.counters);
  List.iter
    (fun (name, g) -> Format.fprintf ppf "%s (max) = %d@." name g.g)
    (sorted_bindings t.gauges);
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "%s: count=%d sum=%d max=%d@." name h.hcount h.hsum h.hmax)
    (sorted_bindings t.histograms)

(* Prometheus text exposition (version 0.0.4).  Series names here use dots;
   Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*, so everything else
   maps to '_' and the whole family gets an "swm_" prefix. *)
let prometheus_name name =
  let buf = Buffer.create (String.length name + 4) in
  Buffer.add_string buf "swm_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

(* Label names share the metric-name alphabet (minus the prefix); label
   values are free-form, so the exposition format's three escapes apply:
   backslash, double quote, line feed. *)
let prometheus_label_name key =
  let buf = Buffer.create (String.length key) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char buf c
      | '0' .. '9' when i > 0 -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    key;
  Buffer.contents buf

let prometheus_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (name, c) ->
      let pname = prometheus_name name ^ "_total" in
      line "# TYPE %s counter" pname;
      line "%s %d" pname c.c)
    (sorted_bindings t.counters);
  List.iter
    (fun (name, g) ->
      let pname = prometheus_name name in
      line "# TYPE %s gauge" pname;
      line "%s %d" pname g.g)
    (sorted_bindings t.gauges);
  List.iter
    (fun (name, h) ->
      let pname = prometheus_name name in
      line "# TYPE %s histogram" pname;
      (* Cumulative buckets; only boundaries where the count advances are
         written (plus the mandatory +Inf), which keeps a 32-bucket log2
         histogram to a handful of lines. *)
      let cum = ref 0 in
      for i = 0 to buckets - 1 do
        if h.counts.(i) > 0 then begin
          cum := !cum + h.counts.(i);
          line "%s_bucket{le=\"%d\"} %d" pname (bucket_upper i) !cum
        end
      done;
      line "%s_bucket{le=\"+Inf\"} %d" pname h.hcount;
      line "%s_sum %d" pname h.hsum;
      line "%s_count %d" pname h.hcount)
    (sorted_bindings t.histograms);
  List.iter
    (fun (name, fam) ->
      let pname = prometheus_name name ^ "_total" in
      let key = prometheus_label_name fam.cf_key in
      line "# TYPE %s counter" pname;
      List.iter
        (fun (lv, c) ->
          line "%s{%s=\"%s\"} %d" pname key (prometheus_label_value lv) c.c)
        (sorted_bindings fam.cf_series))
    (sorted_bindings t.c_families);
  List.iter
    (fun (name, fam) ->
      let pname = prometheus_name name in
      let key = prometheus_label_name fam.hf_key in
      line "# TYPE %s histogram" pname;
      List.iter
        (fun (lv, h) ->
          let lbl = Printf.sprintf "%s=\"%s\"" key (prometheus_label_value lv) in
          let cum = ref 0 in
          for i = 0 to buckets - 1 do
            if h.counts.(i) > 0 then begin
              cum := !cum + h.counts.(i);
              line "%s_bucket{%s,le=\"%d\"} %d" pname lbl (bucket_upper i) !cum
            end
          done;
          line "%s_bucket{%s,le=\"+Inf\"} %d" pname lbl h.hcount;
          line "%s_sum{%s} %d" pname lbl h.hsum;
          line "%s_count{%s} %d" pname lbl h.hcount)
        (sorted_bindings fam.hf_series))
    (sorted_bindings t.h_families);
  Buffer.contents buf

(* Top talkers: a family's series sorted by value descending (ties broken by
   label so the order is stable), truncated to [n]. *)
let family_top fam n =
  let series =
    Hashtbl.fold (fun label c acc -> (label, c.c) :: acc) fam.cf_series []
  in
  let sorted =
    List.sort
      (fun (la, va) (lb, vb) ->
        if va <> vb then compare vb va else String.compare la lb)
      series
  in
  List.filteri (fun i _ -> i < n) sorted

let top_json t ?(n = 8) () =
  let fams =
    List.map
      (fun (name, fam) ->
        Printf.sprintf "%s:{\"key\":%s,\"top\":[%s]}" (json_string name)
          (json_string fam.cf_key)
          (String.concat ","
             (List.map
                (fun (label, v) ->
                  Printf.sprintf "{\"label\":%s,\"value\":%d}"
                    (json_string label) v)
                (family_top fam n))))
      (sorted_bindings t.c_families)
  in
  "{" ^ String.concat "," fams ^ "}"

let table_top_n = 5

let to_table t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  if Hashtbl.length t.counters > 0 then begin
    line "counters:";
    List.iter
      (fun (name, c) -> line "  %-36s %12d" name c.c)
      (sorted_bindings t.counters)
  end;
  if Hashtbl.length t.gauges > 0 then begin
    line "gauges (recorded maxima):";
    List.iter
      (fun (name, g) -> line "  %-36s %12d" name g.g)
      (sorted_bindings t.gauges)
  end;
  if Hashtbl.length t.histograms > 0 then begin
    line "histograms:";
    List.iter
      (fun (name, h) ->
        line "  %-36s count=%-8d p50=%-10.0f p99=%-10.0f p999=%-10.0f max=%d"
          name h.hcount (hist_quantile h 0.5) (hist_quantile h 0.99)
          (hist_quantile h 0.999) h.hmax)
      (sorted_bindings t.histograms)
  end;
  if Hashtbl.length t.c_families > 0 then begin
    line "labeled counters (top %d per family):" table_top_n;
    List.iter
      (fun (name, fam) ->
        line "  %s{%s}:" name fam.cf_key;
        List.iter
          (fun (label, v) -> line "    %-34s %12d" label v)
          (family_top fam table_top_n))
      (sorted_bindings t.c_families)
  end;
  Buffer.contents buf

(* -------- time-series sampler -------- *)

type sample = { s_ts : int; s_vals : int array }

type sampler = {
  sp_registry : t;
  sp_names : string array;
  sp_ring : sample option array; (* fixed ring, like the flight recorder *)
  mutable sp_head : int;
  mutable sp_total : int;
}

let sampler t ?(capacity = 64) names =
  {
    sp_registry = t;
    sp_names = Array.of_list names;
    sp_ring = Array.make (max 2 capacity) None;
    sp_head = 0;
    sp_total = 0;
  }

let sampler_names sp = Array.to_list sp.sp_names

let sample sp =
  let vals =
    Array.map (fun name -> counter_value sp.sp_registry name) sp.sp_names
  in
  let s = { s_ts = now_mono_ns (); s_vals = vals } in
  sp.sp_ring.(sp.sp_head) <- Some s;
  sp.sp_head <- (sp.sp_head + 1) mod Array.length sp.sp_ring;
  sp.sp_total <- sp.sp_total + 1

let samples sp =
  let n = Array.length sp.sp_ring in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match sp.sp_ring.((sp.sp_head + i) mod n) with
    | Some s -> acc := s :: !acc
    | None -> ()
  done;
  !acc

let sample_count sp = sp.sp_total
let retained sp = List.length (samples sp)

(* Rates over the retained window: (newest - oldest) / elapsed.  Counters
   are monotonic, so the delta is the number of increments the window saw;
   fewer than two samples (or a zero-width window) rate as 0. *)
let window sp =
  match samples sp with
  | [] | [ _ ] -> None
  | oldest :: rest ->
      let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> oldest in
      Some (oldest, last rest)

let series_index sp name =
  let rec go i =
    if i >= Array.length sp.sp_names then None
    else if String.equal sp.sp_names.(i) name then Some i
    else go (i + 1)
  in
  go 0

let rate sp name =
  match window sp with
  | None -> 0.
  | Some (oldest, newest) -> (
      let dt_ns = newest.s_ts - oldest.s_ts in
      if dt_ns <= 0 then 0.
      else
        match series_index sp name with
        | None -> 0.
        | Some i ->
            float_of_int (newest.s_vals.(i) - oldest.s_vals.(i))
            /. (float_of_int dt_ns /. 1e9))

let stats_json sp =
  let window_ns =
    match window sp with
    | None -> 0
    | Some (oldest, newest) -> newest.s_ts - oldest.s_ts
  in
  let series =
    List.map
      (fun name ->
        Printf.sprintf "%s:{\"value\":%d,\"rate_per_sec\":%.3f}"
          (json_string name)
          (counter_value sp.sp_registry name)
          (rate sp name))
      (Array.to_list sp.sp_names)
  in
  Printf.sprintf "{\"samples\":%d,\"window_ns\":%d,\"series\":{%s}}" sp.sp_total
    window_ns (String.concat "," series)
