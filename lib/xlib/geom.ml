type point = { px : int; py : int }
type rect = { x : int; y : int; w : int; h : int }

let rect x y w h = { x; y; w; h }
let point px py = { px; py }

let pp_rect ppf r = Format.fprintf ppf "%dx%d%+d%+d" r.w r.h r.x r.y
let pp_point ppf p = Format.fprintf ppf "(%d,%d)" p.px p.py

let rect_equal a b = a.x = b.x && a.y = b.y && a.w = b.w && a.h = b.h

let contains r p =
  p.px >= r.x && p.px < r.x + r.w && p.py >= r.y && p.py < r.y + r.h

let intersect a b =
  let x0 = max a.x b.x and y0 = max a.y b.y in
  let x1 = min (a.x + a.w) (b.x + b.w) and y1 = min (a.y + a.h) (b.y + b.h) in
  if x1 > x0 && y1 > y0 then Some { x = x0; y = y0; w = x1 - x0; h = y1 - y0 }
  else None

let union_bounds a b =
  let x0 = min a.x b.x and y0 = min a.y b.y in
  let x1 = max (a.x + a.w) (b.x + b.w) and y1 = max (a.y + a.h) (b.y + b.h) in
  { x = x0; y = y0; w = x1 - x0; h = y1 - y0 }

let translate r ~dx ~dy = { r with x = r.x + dx; y = r.y + dy }
let center r = { px = r.x + (r.w / 2); py = r.y + (r.h / 2) }

let clamp_into r ~within =
  let clamp_axis pos size lo extent =
    if size >= extent then lo
    else if pos < lo then lo
    else if pos + size > lo + extent then lo + extent - size
    else pos
  in
  {
    r with
    x = clamp_axis r.x r.w within.x within.w;
    y = clamp_axis r.y r.h within.y within.h;
  }

type offset = From_start of int | From_end of int | Centered

type spec = {
  width : int option;
  height : int option;
  xoff : offset option;
  yoff : offset option;
}

exception Syntax of string

(* Hand-rolled scanner over the string: [WxH][{+-}X{+-}Y].  We accept 'C'
   (or 'c') for a centred offset after '+', per swm's panel-position
   extension. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Syntax (Printf.sprintf "%s at index %d in %S" msg !pos s)) in
  let number () =
    let start = !pos in
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      incr pos
    done;
    if !pos = start then fail "expected a number"
    else int_of_string (String.sub s start (!pos - start))
  in
  let offset () =
    match peek () with
    | Some '+' ->
        incr pos;
        (match peek () with
        | Some ('C' | 'c') ->
            incr pos;
            Some Centered
        | _ -> Some (From_start (number ())))
    | Some '-' ->
        incr pos;
        Some (From_end (number ()))
    | _ -> None
  in
  try
    let width, height =
      match peek () with
      | Some '0' .. '9' ->
          let w = number () in
          (match peek () with
          | Some ('x' | 'X') ->
              incr pos;
              (Some w, Some (number ()))
          | _ -> fail "expected 'x' after width")
      | _ -> (None, None)
    in
    let xoff = offset () in
    let yoff = offset () in
    if !pos <> n then fail "trailing characters"
    else if width = None && xoff = None then fail "empty geometry"
    else Ok { width; height; xoff; yoff }
  with
  | Syntax msg -> Error msg
  | Failure _ ->
      (* int_of_string overflow: a numeral too large for an int *)
      Error (Printf.sprintf "number out of range in %S" s)

let parse_exn s =
  match parse s with
  | Ok spec -> spec
  | Error msg -> invalid_arg ("Geom.parse_exn: " ^ msg)

let to_string spec =
  let buf = Buffer.create 16 in
  (match (spec.width, spec.height) with
  | Some w, Some h -> Buffer.add_string buf (Printf.sprintf "%dx%d" w h)
  | Some w, None -> Buffer.add_string buf (string_of_int w)
  | None, _ -> ());
  let add_offset = function
    | None -> ()
    | Some (From_start n) -> Buffer.add_string buf (Printf.sprintf "+%d" n)
    | Some (From_end n) -> Buffer.add_string buf (Printf.sprintf "-%d" n)
    | Some Centered -> Buffer.add_string buf "+C"
  in
  add_offset spec.xoff;
  add_offset spec.yoff;
  Buffer.contents buf

let resolve spec ~default ~within =
  let w = Option.value spec.width ~default:default.w in
  let h = Option.value spec.height ~default:default.h in
  let place off size extent fallback =
    match off with
    | None -> fallback
    | Some (From_start n) -> n
    | Some (From_end n) -> extent - size - n
    | Some Centered -> (extent - size) / 2
  in
  {
    x = within.x + place spec.xoff w within.w (default.x - within.x);
    y = within.y + place spec.yoff h within.h (default.y - within.y);
    w;
    h;
  }
