(** A growable circular buffer.

    Backs the per-connection event queues in {!Server}: events are enqueued
    at the back, delivered from the front, and the batched delivery path
    ({!Server.read_events}) drains a contiguous run per call instead of one
    element at a time.  The buffer doubles in place when full, so steady
    state allocates nothing per event.

    The back of the queue is also mutable ({!peek_back}, {!replace_back}),
    which is what X-style event compression needs: a new MotionNotify
    replaces the MotionNotify already sitting at the tail rather than
    enqueueing behind it. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] is the initial ring size (default 16, rounded up to a power
    of two). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the back; grows the ring when full. *)

val push_front : 'a t -> 'a -> unit
(** Prepend at the front (used to return the unconsumed remainder of a
    partially-expanded entry). *)

val pop : 'a t -> 'a option
(** Remove and return the front element. *)

val peek : 'a t -> 'a option
val peek_back : 'a t -> 'a option

val replace_back : 'a t -> 'a -> unit
(** Overwrite the back element; raises [Invalid_argument] when empty. *)

val get : 'a t -> int -> 'a option
(** Logical-index read: [get t 0] is the front (oldest) element; [None]
    out of range. *)

val set : 'a t -> int -> 'a -> unit
(** Overwrite the element at a logical index; raises [Invalid_argument]
    out of range.  With {!get}, lets the overload shed policy fold an
    event into an entry anywhere in the queue. *)

val remove : 'a t -> int -> 'a option
(** Remove and return the element at a logical index, preserving the order
    of the rest.  O(i) shift — meant for the rare at-cap shed path, not
    steady-state delivery. *)

val clear : 'a t -> unit

val high_water : 'a t -> int
(** The largest length the ring has ever reached. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back, without consuming. *)
