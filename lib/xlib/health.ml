(* Per-connection health scoring for slow-client quarantine.

   Each connection carries a [t].  On every server health tick the caller
   feeds a [sample] of cumulative per-connection pressure signals (queue
   depth ratio, events shed from its queue, rejected wire frames, absorbed
   X errors, stall contributions); [observe] turns the deltas into a decayed
   score and steps a three-state machine with hysteresis:

       Healthy --score >= quarantine--> Throttled
       Throttled --score >= evict--> Evicted        (terminal)
       Throttled --calm_ticks quiet ticks--> Healthy

   The score decays multiplicatively each tick, so a burst of misbehaviour
   must be sustained to reach eviction, and a throttled client that goes
   quiet earns its way back instead of flapping on a single calm sample. *)

type state = Healthy | Throttled | Evicted

let state_name = function
  | Healthy -> "healthy"
  | Throttled -> "throttled"
  | Evicted -> "evicted"

type thresholds = {
  quarantine_score : float;  (* enter Throttled at or above *)
  evict_score : float;       (* enter Evicted at or above *)
  calm_ticks : int;          (* consecutive quiet ticks to leave Throttled *)
  decay : float;             (* multiplicative score decay per tick *)
}

let default_thresholds =
  { quarantine_score = 8.0; evict_score = 24.0; calm_ticks = 3; decay = 0.5 }

type t = {
  mutable state : state;
  mutable score : float;
  mutable calm : int;
  (* Last observed cumulative signals, so a sample of running totals can be
     turned into per-tick deltas without the caller tracking them. *)
  mutable last_shed : int;
  mutable last_rejected : int;
  mutable last_xerrors : int;
  mutable last_stalls : int;
}

let create () =
  {
    state = Healthy;
    score = 0.0;
    calm = 0;
    last_shed = 0;
    last_rejected = 0;
    last_xerrors = 0;
    last_stalls = 0;
  }

type sample = {
  depth_ratio : float;  (* pending / cap, clamped by the caller to >= 0 *)
  shed : int;           (* cumulative events shed from this connection *)
  rejected : int;       (* cumulative rejected wire frames *)
  xerrors : int;        (* cumulative absorbed X errors *)
  stalls : int;         (* cumulative stall contributions *)
}

(* Signal weights: queue pressure and shed events dominate (they are the
   direct overload signals); protocol errors and stalls count but a lone
   BadWindow race must not quarantine an otherwise healthy client. *)
let w_depth = 4.0
let w_shed = 1.0
let w_rejected = 2.0
let w_xerrors = 0.5
let w_stalls = 3.0

type transition = No_change | Became of state

let observe th t (s : sample) =
  let d_shed = max 0 (s.shed - t.last_shed) in
  let d_rejected = max 0 (s.rejected - t.last_rejected) in
  let d_xerrors = max 0 (s.xerrors - t.last_xerrors) in
  let d_stalls = max 0 (s.stalls - t.last_stalls) in
  t.last_shed <- s.shed;
  t.last_rejected <- s.rejected;
  t.last_xerrors <- s.xerrors;
  t.last_stalls <- s.stalls;
  let pressure =
    (w_depth *. max 0.0 s.depth_ratio)
    +. (w_shed *. float_of_int d_shed)
    +. (w_rejected *. float_of_int d_rejected)
    +. (w_xerrors *. float_of_int d_xerrors)
    +. (w_stalls *. float_of_int d_stalls)
  in
  t.score <- (t.score *. th.decay) +. pressure;
  if pressure < 0.5 then t.calm <- t.calm + 1 else t.calm <- 0;
  let prev = t.state in
  (match t.state with
  | Healthy -> if t.score >= th.quarantine_score then t.state <- Throttled
  | Throttled ->
      if t.score >= th.evict_score then t.state <- Evicted
      else if t.calm >= th.calm_ticks && t.score < th.quarantine_score then begin
        t.state <- Healthy;
        t.score <- 0.0
      end
  | Evicted -> ());
  if t.state == prev then No_change else Became t.state
