(** Deterministic, seeded fault injection.

    A fault {e plan} gives each fault class a per-site probability; an
    armed plan ({!t}) carries its own [Random.State] seeded from the
    plan, so the same plan over the same request sequence injects the
    same faults — chaos tests are replayable from a single integer.

    The module is deliberately mechanism-free: it only decides {e
    whether} a fault fires at a site and mutates byte strings.  The
    {!Server} executes window/connection faults (it owns the victims)
    and {!Wire_conn} applies frame faults; both report each injection
    back through {!fire}, which counts it in {!Metrics}
    ([faults.injected], [faults.<action>]) and stamps a {!Tracing}
    instant ([fault.<action>]).

    Sites:
    - {e request} ({!draw_request}) — between any two protocol
      requests the server may destroy a client window, kill a
      connection, or stall/unstall one (its queue stops delivering).
      This is the twm "client died mid-reparent" race, made
      schedulable.
    - {e frame} ({!draw_frame}) — a submitted wire byte string may be
      truncated or have a byte flipped before decoding.
    - {e property} ({!draw_property}) — a property write may have its
      bytes garbled, feeding the reader malformed text. *)

type action =
  | Destroy_window
  | Kill_connection
  | Stall_connection
  | Truncate_frame
  | Corrupt_frame
  | Garble_property
  | Flood_events
      (** one connection emits an event storm into its own queue —
          exercises backpressure and quarantine *)

val action_name : action -> string
val all_actions : action list

type plan = {
  seed : int;
  p_destroy_window : float;  (** per request *)
  p_kill_connection : float;  (** per request *)
  p_stall_connection : float;  (** per request; toggles stalled state *)
  p_truncate_frame : float;  (** per submitted wire byte string *)
  p_corrupt_frame : float;  (** per submitted wire byte string *)
  p_garble_property : float;  (** per property write *)
  p_flood : float;  (** per request; one connection floods its queue *)
  flood_burst : int;  (** events delivered per flood storm *)
  max_faults : int;  (** stop injecting after this many; [<= 0] = unlimited *)
}

val quiet : plan
(** All probabilities zero — an armed but inert plan. *)

val storm : ?seed:int -> unit -> plan
(** A moderately hostile default (a few percent per site, budget 64).
    [p_flood] stays zero so long-standing storm seeds keep their fault
    schedules. *)

val flood : ?seed:int -> ?burst:int -> unit -> plan
(** The overload preset: only {!Flood_events} fires (default burst 4096,
    budget 8) — a client event storm against backpressure and
    quarantine. *)

val pp_plan : Format.formatter -> plan -> unit

type t

val arm :
  ?metrics:Metrics.t -> ?tracer:Tracing.t -> ?recorder:Recorder.t -> plan -> t
val plan : t -> plan
val rng : t -> Random.State.t
(** The plan's private generator — executors use it to pick victims so
    victim choice is covered by the seed too. *)

(** {1 Site decisions}

    Decisions draw from the rng but do {e not} count the fault — the
    executor calls {!fire} once it has actually applied one (a draw
    with no eligible victim injects nothing). *)

val draw_request : t -> action option
(** [Some Destroy_window | Kill_connection | Stall_connection |
    Flood_events], or [None]. *)

val draw_frame : t -> action option
(** [Some Truncate_frame | Corrupt_frame], or [None]. *)

val draw_property : t -> bool

val flood_burst : t -> int
(** The armed plan's storm size (at least 1). *)

val fire : t -> ?attrs:(string * string) list -> action -> unit
(** Record one injected fault: bumps [faults.injected] and
    [faults.<action>], stamps a [fault.<action>] tracing instant with
    [attrs]. *)

(** {1 Byte mutilation} *)

val truncate : t -> string -> string
(** A strict prefix of the input (possibly empty). *)

val corrupt : t -> string -> string
(** Same length, one byte xor-flipped (never a no-op flip). *)

val garble : t -> string -> string
(** Property-value mutilation: flip a byte or chop the tail. *)

(** {1 Accounting} *)

val injected : t -> int
(** Total faults fired. *)

val count : t -> action -> int
val counts : t -> (action * int) list
(** Per-action totals, in {!all_actions} order. *)

val exhausted : t -> bool
(** The [max_faults] budget is spent; no further draws fire. *)
