type kind = Span | Instant

type event = {
  ev_name : string;
  ev_kind : kind;
  ev_ts : int;
  ev_dur : int;
  ev_depth : int;
  ev_attrs : (string * string) list;
}

type slow_entry = {
  slow_name : string;
  slow_ts : int;
  slow_dur : int;
  slow_ancestry : string list;
  slow_attrs : (string * string) list;
}

type frame = {
  f_name : string;
  f_start : int;
  f_attrs : (string * string) list;
  f_minor : float; (* Gc.minor_words at open; 0. when no sink is installed *)
}

(* A sink sees every span as it closes — (name, open-ancestry outermost
   first, duration ns, minor words allocated inside) — independently of the
   ring, so an aggregator (Profile) stays consistent however often the ring
   wraps. *)
type sink = string -> string list -> int -> float -> unit

type t = {
  mutable on : bool;
  ring : event option array;
  mutable head : int; (* next write slot *)
  mutable total : int; (* events recorded since last clear *)
  mutable stack : frame list; (* innermost open span first *)
  mutable epoch : int;
  mutable slow_threshold : int;
  slow_capacity : int;
  mutable slow : slow_entry list; (* newest first, length <= slow_capacity *)
  mutable slow_length : int;
  mutable sink : sink option;
}

(* The monotonic clock (CLOCK_MONOTONIC via bechamel's stubs): spans need
   wall-time durations that survive CPU idling, unlike Sys.time. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())

let create ?(capacity = 4096) ?(slow_capacity = 64) () =
  {
    on = false;
    ring = Array.make (max 1 capacity) None;
    head = 0;
    total = 0;
    stack = [];
    epoch = now_ns ();
    slow_threshold = 10_000_000;
    slow_capacity = max 1 slow_capacity;
    slow = [];
    slow_length = 0;
    sink = None;
  }

let enabled t = t.on
let set_enabled t flag = t.on <- flag

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.head <- 0;
  t.total <- 0;
  t.stack <- [];
  t.slow <- [];
  t.slow_length <- 0;
  t.epoch <- now_ns ()

let start t =
  clear t;
  t.on <- true

let stop t = t.on <- false

let set_slow_threshold_ns t ns = t.slow_threshold <- ns
let slow_threshold_ns t = t.slow_threshold
let set_sink t sink = t.sink <- sink
let has_sink t = t.sink <> None

let record t ev =
  t.ring.(t.head) <- Some ev;
  t.head <- (t.head + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let record_slow t name ts dur attrs =
  let ancestry = List.rev_map (fun f -> f.f_name) t.stack in
  let entry =
    { slow_name = name; slow_ts = ts; slow_dur = dur; slow_ancestry = ancestry;
      slow_attrs = attrs }
  in
  t.slow <- entry :: t.slow;
  t.slow_length <- t.slow_length + 1;
  if t.slow_length > t.slow_capacity then begin
    (* Drop the oldest (last).  The log is short, so the walk is cheap. *)
    let rec trim = function
      | [] | [ _ ] -> []
      | x :: rest -> x :: trim rest
    in
    t.slow <- trim t.slow;
    t.slow_length <- t.slow_capacity
  end

let close_span t =
  match t.stack with
  | [] -> () (* start/clear happened inside the span; nothing to close *)
  | frame :: rest ->
      t.stack <- rest;
      let now = now_ns () in
      let dur = now - frame.f_start in
      record t
        {
          ev_name = frame.f_name;
          ev_kind = Span;
          ev_ts = frame.f_start - t.epoch;
          ev_dur = dur;
          ev_depth = List.length rest;
          ev_attrs = frame.f_attrs;
        };
      if dur >= t.slow_threshold then
        record_slow t frame.f_name (frame.f_start - t.epoch) dur frame.f_attrs;
      (match t.sink with
      | None -> ()
      | Some k ->
          (* A frame opened before the sink was installed carries f_minor = 0;
             report its allocation as 0 rather than the process-lifetime
             total. *)
          let alloc =
            if frame.f_minor = 0. then 0.
            else Gc.minor_words () -. frame.f_minor
          in
          let ancestry = List.rev_map (fun f -> f.f_name) rest in
          k frame.f_name ancestry dur alloc)

let span t ?(attrs = []) name f =
  if not t.on then f ()
  else begin
    (* Gc.minor_words is a noalloc external, but reading it on every span is
       still pointless when nothing aggregates allocation — pay it only
       while a sink is armed. *)
    let minor = match t.sink with Some _ -> Gc.minor_words () | None -> 0. in
    t.stack <-
      { f_name = name; f_start = now_ns (); f_attrs = attrs; f_minor = minor }
      :: t.stack;
    match f () with
    | v ->
        close_span t;
        v
    | exception e ->
        close_span t;
        raise e
  end

let instant t ?(attrs = []) name =
  if t.on then
    record t
      {
        ev_name = name;
        ev_kind = Instant;
        ev_ts = now_ns () - t.epoch;
        ev_dur = 0;
        ev_depth = List.length t.stack;
        ev_attrs = attrs;
      }

let note t ?(attrs = []) name =
  if t.on then begin
    instant t ~attrs name;
    record_slow t name (now_ns () - t.epoch) 0 attrs
  end

let events t =
  (* Oldest first: the ring wraps at [head], so the oldest surviving entry
     sits at [head] once the ring has wrapped. *)
  let n = Array.length t.ring in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match t.ring.((t.head + i) mod n) with
    | Some ev -> acc := ev :: !acc
    | None -> ()
  done;
  !acc

let event_count t = t.total
let dropped t = max 0 (t.total - Array.length t.ring)
let slow_log t = List.rev t.slow

(* -------- export -------- *)

let attr_json attrs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Metrics.json_string k ^ ":" ^ Metrics.json_string v)
         attrs)
  ^ "}"

(* Chrome trace-event timestamps are microseconds (floats). *)
let us ns = Printf.sprintf "%d.%03d" (ns / 1000) (abs ns mod 1000)

let chrome_event buf ev ~first =
  if not first then Buffer.add_string buf ",\n";
  (match ev.ev_kind with
  | Span ->
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"name\":%s,\"cat\":\"swm\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
            \"ts\":%s,\"dur\":%s"
           (Metrics.json_string ev.ev_name) (us ev.ev_ts) (us ev.ev_dur))
  | Instant ->
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"name\":%s,\"cat\":\"swm\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
            \"tid\":1,\"ts\":%s"
           (Metrics.json_string ev.ev_name) (us ev.ev_ts)));
  if ev.ev_attrs <> [] then
    Buffer.add_string buf (",\"args\":" ^ attr_json ev.ev_attrs);
  Buffer.add_char buf '}'

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  List.iter
    (fun ev ->
      chrome_event buf ev ~first:!first;
      first := false)
    (events t);
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let slow_log_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":%s,\"ts_ns\":%d,\"dur_ns\":%d,\"ancestry\":[%s],\"args\":%s}"
           (Metrics.json_string e.slow_name) e.slow_ts e.slow_dur
           (String.concat "," (List.map Metrics.json_string e.slow_ancestry))
           (attr_json e.slow_attrs)))
    (slow_log t);
  Buffer.add_string buf "]";
  Buffer.contents buf
