(** Continuous profiling over the {!Metrics} + {!Tracing} substrate.

    A profiler closes the measurement gap between "how long did dispatch
    take" and "which frames, and at what allocation cost": while armed it

    - samples [Gc.quick_stat] deltas around every dispatched event
      ({!event_section}), feeding [gc.minor_words_per_event] (histogram),
      [gc.promoted_words] and minor/major collection counters into the
      registry's existing JSON / Prometheus / table expositions;
    - measures minor words allocated inside marked wire sections
      ({!alloc_section}) as [gc.minor_words.<name>] histograms;
    - folds every closed tracing span into an aggregated call tree
      (count, total/self wall time, minor words per frame) via the
      tracer's span {!Tracing.sink} — {e live at span close}, not by
      reading the ring back, so the tree stays consistent no matter how
      often the ring overwrites old events.

    Disarmed, every probe is a single flag check; arming is what turns on
    the tracer (restored to its previous state on {!stop}) and the [Gc]
    reads.  Export is a nested-tree JSON dump ({!to_json}) and
    collapsed-stack text ({!to_collapsed}) that flamegraph.pl / speedscope
    / inferno consume directly. *)

type t

val create : metrics:Metrics.t -> tracer:Tracing.t -> unit -> t
(** A disarmed profiler.  Registers its [gc.*] series immediately so they
    appear (at zero) in expositions. *)

(** {1 Control} *)

val armed : t -> bool

val start : t -> unit
(** Clear any previous profile, remember whether the tracer was already
    enabled, {!Tracing.start} it (which empties the span stack, so the
    sink never sees a span missing its allocation baseline) and install
    the aggregating sink.  Idempotent while armed. *)

val stop : t -> unit
(** Disarm: remove the sink and, if {!start} enabled the tracer, disable
    it again.  The aggregated tree is kept for export until the next
    {!start}. *)

val clear : t -> unit

(** {1 Probes} *)

val event_section : t -> (unit -> 'a) -> 'a
(** Wraps one event dispatch.  Disarmed: one flag check.  Armed: a
    [Gc.quick_stat] + monotonic-clock read on each side, observing the
    minor-words delta into [gc.minor_words_per_event], adding promoted
    words and collection counts to their counters, and accumulating the
    profiler's own dispatch wall-time total ({!dispatch_wall_ns}).  The
    armed flag is re-checked at exit so the event carrying the
    [f.profile(stop)] command is not half-sampled. *)

type section

val section : t -> string -> section
(** A cached handle for {!alloc_section} — the registry histogram
    [gc.minor_words.<name>].  Look up once, at connection/creation time. *)

val alloc_section : t -> section -> (unit -> 'a) -> 'a
(** Observe the minor words allocated by the thunk into the section's
    histogram.  Disarmed: one flag check. *)

(** {1 The aggregated call tree} *)

type frame = {
  name : string;
  count : int;  (** spans aggregated into this node *)
  total_ns : int;  (** wall time, self + descendants *)
  self_ns : int;  (** [max 0 (total - sum of children's totals)] *)
  alloc_words : float;  (** minor words allocated inside, incl. children *)
  children : frame list;  (** name-sorted *)
}

val roots : t -> frame list
(** Top-level frames (spans that closed with no enclosing span),
    name-sorted. *)

val root_total_ns : t -> int

val events : t -> int
(** Events measured by {!event_section} while armed. *)

val dispatch_wall_ns : t -> int
(** Wall time accumulated by {!event_section} while armed — the
    denominator of {!coverage}. *)

val coverage : t -> float
(** [root_total_ns / dispatch_wall_ns]: how much of the measured dispatch
    wall time the tree's root frames account for.  1.0 when no events
    were measured; may exceed 1.0 because non-dispatch roots (wire
    encode/flush spans) also aggregate.  The acceptance gate is
    [>= 0.95]. *)

(** {1 Export} *)

val to_json : t -> string
(** [{"armed":b,"events":n,"dispatch_wall_ns":w,"root_total_ns":r,
     "coverage":c,"tree":{name:{"count","total_ns","self_ns",
     "alloc_words","children":{..}},..}}] — the [f.profile(dump)]
    payload. *)

val to_collapsed : t -> string
(** Collapsed-stack (flamegraph) text: one
    [frame;frame;frame self_ns] line per tree node with nonzero self
    time.  [';'] and [' '] inside frame names become ['_']. *)
