(* The Server-free half of the wire protocol lives in {!Wire_codec} so
   that the server itself can encode frames (the replay journal records
   requests as canonical wire bytes).  [Wire] re-exports the codec and
   adds the Server-dependent trace replay on top. *)

include Wire_codec

(* -------- traces -------- *)

module Trace = struct
  (* Count and encoded size are tracked incrementally in [record]:
     [length]/[byte_size] are O(1) instead of O(n) list walks / full
     re-encodes, so callers can poll them per event. *)
  type t = {
    mutable items : request list; (* newest first *)
    mutable count : int;
    mutable bytes : int;
  }

  let sum_bytes reqs =
    List.fold_left (fun acc req -> acc + encoded_request_size req) 0 reqs

  let create () = { items = []; count = 0; bytes = 0 }

  let record t req =
    t.items <- req :: t.items;
    t.count <- t.count + 1;
    t.bytes <- t.bytes + encoded_request_size req

  let length t = t.count
  let byte_size t = t.bytes
  let requests t = List.rev t.items

  let to_bytes t =
    let buf = Buffer.create 1024 in
    List.iter (fun req -> Buffer.add_string buf (encode_request req)) (requests t);
    Buffer.contents buf

  let of_bytes s =
    match decode_requests s with
    | Ok reqs ->
        Ok { items = List.rev reqs; count = List.length reqs; bytes = sum_bytes reqs }
    | Error _ as e -> e

  let compress t =
    let reqs = compress_requests (requests t) in
    { items = List.rev reqs; count = List.length reqs; bytes = sum_bytes reqs }

  let replay t server conn ~remap =
    (* Created windows get fresh server ids; recorded ids are mapped to the
       replayed ones as creates execute. *)
    let table = Xid.Tbl.create 16 in
    let resolve id =
      match Xid.Tbl.find_opt table id with Some v -> v | None -> remap id
    in
    let count = ref 0 in
    let err = ref None in
    List.iter
      (fun req ->
        if !err = None then begin
          (try
             (match req with
             | Create_window { wid; parent; geom; border; override_redirect } ->
                 let w =
                   Server.create_window server conn ~parent:(resolve parent) ~geom
                     ~border ~override_redirect ()
                 in
                 Xid.Tbl.replace table wid w
             | Destroy_window w -> Server.destroy_window server (resolve w)
             | Map_window w -> Server.map_window server conn (resolve w)
             | Unmap_window w -> Server.unmap_window server conn (resolve w)
             | Configure_window (w, changes) ->
                 Server.configure_window server conn (resolve w) changes
             | Reparent_window { window; parent; pos } ->
                 Server.reparent_window server conn (resolve window)
                   ~new_parent:(resolve parent) ~pos
             | Change_property { window; name; value } ->
                 Server.change_property server conn (resolve window) ~name
                   (Prop.String value)
             | Delete_property { window; name } ->
                 Server.delete_property server conn (resolve window) ~name
             | Select_input { window; masks } ->
                 Server.select_input server conn (resolve window) masks
             | Grab_pointer w -> Server.grab_pointer server conn (resolve w)
             | Ungrab_pointer -> Server.ungrab_pointer server conn
             | Warp_pointer p -> Server.warp_pointer server ~screen:0 p
             | Set_input_focus w -> Server.set_input_focus server conn (resolve w)
             | Shape_rectangles { window; rects } ->
                 Server.shape_set server conn (resolve window) (Region.of_rects rects)
             | Add_to_save_set w -> Server.add_to_save_set server conn (resolve w)
             | Remove_from_save_set w ->
                 Server.remove_from_save_set server conn (resolve w));
             incr count
           with
          | Server.Bad_window _ -> err := Some "bad window during replay"
          | Server.Bad_access msg -> err := Some msg
          | Invalid_argument msg -> err := Some msg)
        end)
      (requests t);
    match !err with Some msg -> Error msg | None -> Ok !count
end
