(** Deterministic re-execution of recorded sessions.

    A crash report written by the {!Recorder} carries a replay journal:
    every session {e input} — client wire frames, device synthesis,
    property writes, fault effects, WM step markers — as op strings, plus
    a state snapshot taken at the last step boundary.  {!run} parses such
    a report (or a compact repro file), starts a fresh {!Server} and a
    fresh WM on top of it (supplied by the caller as a {!harness}, since
    this layer cannot depend on the WM), re-injects every op in order, and
    asserts that the replayed state converges to the recorded snapshot.

    Op grammar (produced by the {!Server} journal taps and the WM):

    - [frame <name>#<cid> <hex>] — one wire-codec request frame from that
      connection, re-injected through {!Wire_conn.submit_bytes} (ids are
      translated through the connection's table; creates register their
      recorded id as they execute)
    - [prop <name>#<cid> <wid> <hexname> <hexvalue>] — a structured
      property write the wire codec cannot carry ({!Prop.value_to_text})
    - [send <name>#<cid> <dest> <hexevent>] — a SendEvent
    - [warp <screen> <x> <y>], [press <btn> <mods>], [release <btn>
      <mods>], [key <hexsym> <mods>] — device synthesis
    - [destroy <wid>], [damage <wid> <x> <y> <w> <h>], [shapeclear <wid>]
      — connection-less requests
    - [kill <name>#<cid>], [stall <name>#<cid> <0|1>] — fault effects
    - [step] — the WM drained its queue here
    - [snap] — the WM took the convergence snapshot here (end of a step)

    Convergence compares the snapshot JSON field by field, window ids
    mapped through the create-time translation table, client lists
    sorted; the first differing path is reported together with the tail
    of ops leading up to it. *)

type expect =
  | Converge  (** replay must reach the recorded snapshot *)
  | No_crash  (** replay must merely survive (regression repro files) *)

type report = {
  reason : string;
  resources : string list;  (** X resource texts the recorded WM ran with *)
  screens : (int * int) list;  (** screen sizes; [[]] = server default *)
  ops : string list;
  dropped : int;  (** journal ops the ring had already overwritten *)
  snap : string option;  (** snapshot JSON at the last [snap] marker *)
  expect : expect;
}

val make_report :
  ?reason:string ->
  ?resources:string list ->
  ?screens:(int * int) list ->
  ?snap:string ->
  ?expect:expect ->
  string list ->
  report
(** An in-memory report (tests, benches).  [expect] defaults to
    [Converge] when [snap] is given, [No_crash] otherwise. *)

val parse_report : string -> (report, string) result
(** Accepts both full crash reports (the {!Recorder.dump_json} shape:
    [journal]/[meta] members) and compact repro files ({!repro_json}). *)

val repro_json : report -> string
(** The compact repro-file form of a report — what the chaos suite
    commits under [test/repros/] after minimisation. *)

type harness = {
  h_step : unit -> unit;  (** drain the WM's queue once *)
  h_snapshot : unit -> string;  (** current state snapshot JSON *)
}

type divergence = {
  d_path : string;  (** first differing JSON path, e.g. [clients[2].state] *)
  d_expected : string;
  d_got : string;
  d_context : string list;  (** the ops leading up to the comparison *)
}

type outcome =
  | Converged of { ops : int; steps : int }
  | No_snapshot of { ops : int; steps : int }
      (** ran clean, but the report had no snapshot to compare against *)
  | Diverged of divergence
  | Crashed of { op_index : int; op : string; error : string }
  | Truncated of { dropped : int }
      (** the journal wrapped: a fresh server cannot reach the recorded
          state, so convergence is unassertable *)

val run : report -> make:(Server.t -> harness) -> outcome
(** Start a fresh server, let [make] start a fresh WM on it (it must NOT
    start the recorder), then re-inject every op.  Client-op failures that
    a real client would absorb ({!Server.Bad_window}, {!Server.Bad_access})
    are absorbed here too; anything escaping the WM's step is a crash. *)

val ok : outcome -> bool
(** [Converged] or [No_snapshot]. *)

val outcome_to_string : outcome -> string
val outcome_json : outcome -> string

val minimize :
  ops:string list -> fails:(string list -> bool) -> string list * int
(** Delta debugging (ddmin): shrink [ops] to a 1-minimal sublist that
    still satisfies [fails].  Returns the shrunk list and how many oracle
    invocations it took.  If [fails ops] is already false, returns [ops]
    unchanged with one test counted. *)
