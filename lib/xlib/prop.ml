type wm_state = Withdrawn | Normal | Iconic

let wm_state_to_string = function
  | Withdrawn -> "WithdrawnState"
  | Normal -> "NormalState"
  | Iconic -> "IconicState"

let wm_state_of_string = function
  | "WithdrawnState" -> Some Withdrawn
  | "NormalState" -> Some Normal
  | "IconicState" -> Some Iconic
  | _ -> None

let pp_wm_state ppf s = Format.pp_print_string ppf (wm_state_to_string s)

type wm_hints = {
  input : bool;
  initial_state : wm_state;
  icon_pixmap : string option;
  icon_window : Xid.t option;
  icon_position : Geom.point option;
}

let default_wm_hints =
  {
    input = true;
    initial_state = Normal;
    icon_pixmap = None;
    icon_window = None;
    icon_position = None;
  }

type size_hints = {
  us_position : bool;
  p_position : bool;
  us_size : bool;
  p_size : bool;
  min_size : (int * int) option;
  max_size : (int * int) option;
  resize_inc : (int * int) option;
}

let default_size_hints =
  {
    us_position = false;
    p_position = false;
    us_size = false;
    p_size = false;
    min_size = None;
    max_size = None;
    resize_inc = None;
  }

type value =
  | String of string
  | String_list of string list
  | Cardinal of int
  | Cardinal_list of int list
  | Window of Xid.t
  | Atom_list of string list
  | Wm_hints of wm_hints
  | Size_hints of size_hints
  | Wm_state_value of { state : wm_state; icon : Xid.t }
  | Wm_class of { instance : string; class_ : string }

let pp_value ppf = function
  | String s -> Format.fprintf ppf "%S" s
  | String_list l ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           (fun ppf s -> Format.fprintf ppf "%S" s))
        l
  | Cardinal n -> Format.fprintf ppf "%d" n
  | Cardinal_list l ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Format.pp_print_int)
        l
  | Window id -> Xid.pp ppf id
  | Atom_list l ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Format.pp_print_string)
        l
  | Wm_hints h ->
      Format.fprintf ppf "wm_hints{state=%a}" pp_wm_state h.initial_state
  | Size_hints h ->
      Format.fprintf ppf "size_hints{us_pos=%b;p_pos=%b}" h.us_position h.p_position
  | Wm_state_value { state; icon } ->
      Format.fprintf ppf "wm_state{%a;icon=%a}" pp_wm_state state Xid.pp icon
  | Wm_class { instance; class_ } -> Format.fprintf ppf "class{%s.%s}" class_ instance

let wm_name = "WM_NAME"
let wm_icon_name = "WM_ICON_NAME"
let wm_class = "WM_CLASS"
let wm_command = "WM_COMMAND"
let wm_client_machine = "WM_CLIENT_MACHINE"
let wm_hints_name = "WM_HINTS"
let wm_normal_hints = "WM_NORMAL_HINTS"
let wm_state_name = "WM_STATE"
let wm_transient_for = "WM_TRANSIENT_FOR"
let wm_protocols = "WM_PROTOCOLS"
let wm_delete_window = "WM_DELETE_WINDOW"
let swm_root = "SWM_ROOT"
let swm_command = "SWM_COMMAND"
let swm_places = "SWM_PLACES"
let swm_result = "SWM_RESULT"

(* -------- journal codec --------

   A reversible one-line text form for every value variant, so the replay
   journal can carry structured property writes (WM_HINTS, WM_CLASS, size
   hints) that the wire request codec — string properties only — cannot.
   String subfields travel as hex; the container grammar is a tag
   character followed by comma-separated fields, with "-" for None. *)

let hex = Wire_codec.to_hex
let unhex s = match Wire_codec.of_hex s with Ok v -> Some v | Error _ -> None

let opt f = function None -> "-" | Some v -> f v
let pair (a, b) = Printf.sprintf "%d:%d" a b
let point (p : Geom.point) = Printf.sprintf "%d:%d" p.px p.py

let state_char = function Withdrawn -> "w" | Normal -> "n" | Iconic -> "i"

let state_of_char = function
  | "w" -> Some Withdrawn
  | "n" -> Some Normal
  | "i" -> Some Iconic
  | _ -> None

let value_to_text = function
  | String s -> "S" ^ s
  | String_list l -> "L" ^ String.concat "," (List.map hex l)
  | Cardinal n -> "C" ^ string_of_int n
  | Cardinal_list l -> "N" ^ String.concat "," (List.map string_of_int l)
  | Window id -> "W" ^ string_of_int (Xid.to_int id)
  | Atom_list l -> "A" ^ String.concat "," (List.map hex l)
  | Wm_hints h ->
      Printf.sprintf "H%d,%s,%s,%s,%s"
        (if h.input then 1 else 0)
        (state_char h.initial_state)
        (opt hex h.icon_pixmap)
        (opt (fun id -> string_of_int (Xid.to_int id)) h.icon_window)
        (opt point h.icon_position)
  | Size_hints h ->
      Printf.sprintf "Z%d%d%d%d,%s,%s,%s"
        (if h.us_position then 1 else 0)
        (if h.p_position then 1 else 0)
        (if h.us_size then 1 else 0)
        (if h.p_size then 1 else 0)
        (opt pair h.min_size) (opt pair h.max_size) (opt pair h.resize_inc)
  | Wm_state_value { state; icon } ->
      Printf.sprintf "T%s,%d" (state_char state) (Xid.to_int icon)
  | Wm_class { instance; class_ } ->
      Printf.sprintf "K%s,%s" (hex instance) (hex class_)

let value_of_text s =
  let ( let* ) = Option.bind in
  if s = "" then None
  else
    let rest = String.sub s 1 (String.length s - 1) in
    let fields () = String.split_on_char ',' rest in
    let parse_opt f = function "-" -> Some None | v -> Option.map Option.some (f v) in
    let int s = int_of_string_opt s in
    let parse_pair v =
      match String.split_on_char ':' v with
      | [ a; b ] ->
          let* a = int a in
          let* b = int b in
          Some (a, b)
      | _ -> None
    in
    let all f l =
      List.fold_right
        (fun x acc ->
          let* acc = acc in
          let* x = f x in
          Some (x :: acc))
        l (Some [])
    in
    match s.[0] with
    | 'S' -> Some (String rest)
    | 'L' ->
        if rest = "" then Some (String_list [])
        else
          let* items = all unhex (fields ()) in
          Some (String_list items)
    | 'C' ->
        let* n = int rest in
        Some (Cardinal n)
    | 'N' ->
        if rest = "" then Some (Cardinal_list [])
        else
          let* items = all int (fields ()) in
          Some (Cardinal_list items)
    | 'W' ->
        let* n = int rest in
        Some (Window (Xid.of_int n))
    | 'A' ->
        if rest = "" then Some (Atom_list [])
        else
          let* items = all unhex (fields ()) in
          Some (Atom_list items)
    | 'H' -> (
        match fields () with
        | [ input; state; pixmap; icon_window; icon_position ] ->
            let* input = int input in
            let* initial_state = state_of_char state in
            let* icon_pixmap = parse_opt unhex pixmap in
            let* icon_window =
              parse_opt (fun v -> Option.map Xid.of_int (int v)) icon_window
            in
            let* icon_position =
              parse_opt
                (fun v ->
                  let* x, y = parse_pair v in
                  Some (Geom.point x y))
                icon_position
            in
            Some
              (Wm_hints
                 { input = input <> 0; initial_state; icon_pixmap; icon_window;
                   icon_position })
        | _ -> None)
    | 'Z' -> (
        match fields () with
        | [ flags; min_size; max_size; resize_inc ]
          when String.length flags = 4 ->
            let bit i = flags.[i] = '1' in
            let* min_size = parse_opt parse_pair min_size in
            let* max_size = parse_opt parse_pair max_size in
            let* resize_inc = parse_opt parse_pair resize_inc in
            Some
              (Size_hints
                 { us_position = bit 0; p_position = bit 1; us_size = bit 2;
                   p_size = bit 3; min_size; max_size; resize_inc })
        | _ -> None)
    | 'T' -> (
        match fields () with
        | [ state; icon ] ->
            let* state = state_of_char state in
            let* icon = int icon in
            Some (Wm_state_value { state; icon = Xid.of_int icon })
        | _ -> None)
    | 'K' -> (
        match fields () with
        | [ instance; class_ ] ->
            let* instance = unhex instance in
            let* class_ = unhex class_ in
            Some (Wm_class { instance; class_ })
        | _ -> None)
    | _ -> None
