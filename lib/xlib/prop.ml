type wm_state = Withdrawn | Normal | Iconic

let wm_state_to_string = function
  | Withdrawn -> "WithdrawnState"
  | Normal -> "NormalState"
  | Iconic -> "IconicState"

let wm_state_of_string = function
  | "WithdrawnState" -> Some Withdrawn
  | "NormalState" -> Some Normal
  | "IconicState" -> Some Iconic
  | _ -> None

let pp_wm_state ppf s = Format.pp_print_string ppf (wm_state_to_string s)

type wm_hints = {
  input : bool;
  initial_state : wm_state;
  icon_pixmap : string option;
  icon_window : Xid.t option;
  icon_position : Geom.point option;
}

let default_wm_hints =
  {
    input = true;
    initial_state = Normal;
    icon_pixmap = None;
    icon_window = None;
    icon_position = None;
  }

type size_hints = {
  us_position : bool;
  p_position : bool;
  us_size : bool;
  p_size : bool;
  min_size : (int * int) option;
  max_size : (int * int) option;
  resize_inc : (int * int) option;
}

let default_size_hints =
  {
    us_position = false;
    p_position = false;
    us_size = false;
    p_size = false;
    min_size = None;
    max_size = None;
    resize_inc = None;
  }

type value =
  | String of string
  | String_list of string list
  | Cardinal of int
  | Cardinal_list of int list
  | Window of Xid.t
  | Atom_list of string list
  | Wm_hints of wm_hints
  | Size_hints of size_hints
  | Wm_state_value of { state : wm_state; icon : Xid.t }
  | Wm_class of { instance : string; class_ : string }

let pp_value ppf = function
  | String s -> Format.fprintf ppf "%S" s
  | String_list l ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           (fun ppf s -> Format.fprintf ppf "%S" s))
        l
  | Cardinal n -> Format.fprintf ppf "%d" n
  | Cardinal_list l ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Format.pp_print_int)
        l
  | Window id -> Xid.pp ppf id
  | Atom_list l ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           Format.pp_print_string)
        l
  | Wm_hints h ->
      Format.fprintf ppf "wm_hints{state=%a}" pp_wm_state h.initial_state
  | Size_hints h ->
      Format.fprintf ppf "size_hints{us_pos=%b;p_pos=%b}" h.us_position h.p_position
  | Wm_state_value { state; icon } ->
      Format.fprintf ppf "wm_state{%a;icon=%a}" pp_wm_state state Xid.pp icon
  | Wm_class { instance; class_ } -> Format.fprintf ppf "class{%s.%s}" class_ instance

let wm_name = "WM_NAME"
let wm_icon_name = "WM_ICON_NAME"
let wm_class = "WM_CLASS"
let wm_command = "WM_COMMAND"
let wm_client_machine = "WM_CLIENT_MACHINE"
let wm_hints_name = "WM_HINTS"
let wm_normal_hints = "WM_NORMAL_HINTS"
let wm_state_name = "WM_STATE"
let wm_transient_for = "WM_TRANSIENT_FOR"
let wm_protocols = "WM_PROTOCOLS"
let wm_delete_window = "WM_DELETE_WINDOW"
let swm_root = "SWM_ROOT"
let swm_command = "SWM_COMMAND"
let swm_places = "SWM_PLACES"
let swm_result = "SWM_RESULT"
