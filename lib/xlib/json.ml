type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Fail of int * string

let fail i msg = raise (Fail (i, msg))

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let rec skip_space s i =
  if i < String.length s && is_space s.[i] then skip_space s (i + 1) else i

let expect s i c =
  if i < String.length s && s.[i] = c then i + 1
  else fail i (Printf.sprintf "expected %C" c)

(* A JSON string body, the opening quote already consumed. *)
let parse_string s i0 =
  let buf = Buffer.create 16 in
  let n = String.length s in
  let rec go i =
    if i >= n then fail i "unterminated string"
    else
      match s.[i] with
      | '"' -> (Buffer.contents buf, i + 1)
      | '\\' ->
          if i + 1 >= n then fail i "dangling escape"
          else begin
            (match s.[i + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if i + 5 >= n then fail i "short \\u escape"
                else begin
                  match int_of_string_opt ("0x" ^ String.sub s (i + 2) 4) with
                  | None -> fail i "bad \\u escape"
                  | Some code ->
                      (* The dumps only escape control bytes, so plain byte
                         output is enough; non-ASCII codepoints degrade to
                         '?' rather than UTF-8 (none of our writers emit
                         them). *)
                      if code < 0x100 then Buffer.add_char buf (Char.chr code)
                      else Buffer.add_char buf '?'
                end
            | c -> fail i (Printf.sprintf "bad escape %C" c));
            go (i + if s.[i + 1] = 'u' then 6 else 2)
          end
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go i0

let parse_number s i0 =
  let n = String.length s in
  let rec scan i =
    if
      i < n
      && (match s.[i] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    then scan (i + 1)
    else i
  in
  let j = scan i0 in
  match float_of_string_opt (String.sub s i0 (j - i0)) with
  | Some f -> (f, j)
  | None -> fail i0 "bad number"

let literal s i word value =
  let n = String.length word in
  if i + n <= String.length s && String.sub s i n = word then (value, i + n)
  else fail i ("expected " ^ word)

let rec parse_value s i =
  let i = skip_space s i in
  if i >= String.length s then fail i "unexpected end of input"
  else
    match s.[i] with
    | '"' ->
        let str, j = parse_string s (i + 1) in
        (Str str, j)
    | '{' -> parse_obj s (i + 1)
    | '[' -> parse_list s (i + 1)
    | 't' -> literal s i "true" (Bool true)
    | 'f' -> literal s i "false" (Bool false)
    | 'n' -> literal s i "null" Null
    | '-' | '0' .. '9' ->
        let f, j = parse_number s i in
        (Num f, j)
    | c -> fail i (Printf.sprintf "unexpected %C" c)

and parse_obj s i =
  let i = skip_space s i in
  if i < String.length s && s.[i] = '}' then (Obj [], i + 1)
  else
    let rec members acc i =
      let i = skip_space s i in
      let i = expect s i '"' in
      let key, i = parse_string s i in
      let i = skip_space s i in
      let i = expect s i ':' in
      let value, i = parse_value s i in
      let i = skip_space s i in
      if i < String.length s && s.[i] = ',' then members ((key, value) :: acc) (i + 1)
      else
        let i = expect s i '}' in
        (Obj (List.rev ((key, value) :: acc)), i)
    in
    members [] i

and parse_list s i =
  let i = skip_space s i in
  if i < String.length s && s.[i] = ']' then (List [], i + 1)
  else
    let rec elements acc i =
      let value, i = parse_value s i in
      let i = skip_space s i in
      if i < String.length s && s.[i] = ',' then elements (value :: acc) (i + 1)
      else
        let i = expect s i ']' in
        (List (List.rev (value :: acc)), i)
    in
    elements [] i

let parse s =
  match parse_value s 0 with
  | value, i ->
      let i = skip_space s i in
      if i = String.length s then Ok value
      else Error (Printf.sprintf "trailing garbage at byte %d" i)
  | exception Fail (i, msg) -> Error (Printf.sprintf "%s at byte %d" msg i)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_list = function List l -> Some l | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None

(* -------- rendering -------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec render = function
  | Null -> "null"
  | Bool true -> "true"
  | Bool false -> "false"
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Str s -> escape s
  | List l -> "[" ^ String.concat "," (List.map render l) ^ "]"
  | Obj fields ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> escape k ^ ":" ^ render v) fields)
      ^ "}"
