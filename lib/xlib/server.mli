(** An in-process X server simulation.

    Implements the protocol-visible semantics a window manager depends on:
    a window tree with stacking, SubstructureRedirect interception of map
    and configure requests, reparenting, save-sets, typed properties with
    PropertyNotify, pointer/keyboard event synthesis and delivery with
    ancestor propagation, active pointer grabs, multiple screens, and the
    SHAPE extension (region-valued bounding shapes).

    Clients — including the window manager itself — talk to the server
    through connections ({!conn}); each connection has a private event queue
    fed according to the event masks it selected.

    Queues are ring buffers with X-style event compression applied at
    enqueue time (unless disabled with {!set_coalesce}): consecutive
    MotionNotify on the same window collapse to the latest, redundant
    ConfigureNotify sequences fold to the final geometry, and overlapping
    Expose damage merges via {!Region.union}.  {!read_events} and
    {!flush_batch} drain a whole batch per call — the cheap path heavy
    clients should prefer over one-at-a-time {!next_event} polling.  A
    {!Metrics} registry ({!metrics}) counts events enqueued / coalesced /
    delivered, the queue high-water mark, and the delivery batch-size
    distribution. *)

type t
type conn

exception Bad_window of Xid.t
exception Bad_access of string
(** Raised e.g. when a second client selects SubstructureRedirect on the
    same window — the X error that stops two WMs running at once. *)

(** {1 Server and connections} *)

type screen_spec = { size : int * int; monochrome : bool }

val default_screen : screen_spec

val create : ?screens:screen_spec list -> unit -> t
(** A server with the given screens (default: one 1152x900 colour screen,
    the Sun-era size swm was developed on). *)

val connect : t -> name:string -> conn
val disconnect : t -> conn -> unit
(** Close a connection: destroys its windows, except that windows some other
    client added to its save-set are first reparented back to the closest
    root, preserving their root-relative position (how clients survive a WM
    restart). *)

val conn_name : conn -> string

val set_coalesce : conn -> bool -> unit
(** Enable/disable event compression on this connection's queue (default
    enabled).  Disabling gives the naive one-event-per-notification
    pipeline, kept for comparison benchmarks and tests. *)

val metrics : t -> Metrics.t
(** The server's metrics registry.  Series maintained by the server itself:
    counters [events.enqueued], [events.coalesced], [events.delivered];
    gauge [queue.depth] (per-connection high-water mark); histogram
    [delivery.batch_size]. *)

val tracer : t -> Tracing.t
(** The server's span tracer (disabled until {!Tracing.start}).  The
    server itself records [server.enqueue] / [server.coalesce] instants at
    queue time and a [server.deliver] span around each {!read_events}
    batch; every other pipeline layer (wire decode, WM dispatch, [f.*]
    functions, redraws, pans) nests its spans into the same tracer. *)

val recorder : t -> Recorder.t
(** The server's flight recorder (disabled until {!Recorder.start}).  The
    WM layer feeds it — dispatched events, [f.*] invocations, pans, swmcmd
    lines, absorbed X errors, watchdog stalls — and armed fault plans
    record every injection into it. *)

val profiler : t -> Profile.t
(** The server's profiler (disarmed until {!Profile.start}, usually via
    the [f.profile(start)] verb).  It shares this server's metrics
    registry and tracer; while armed it samples GC deltas around every
    dispatched event and folds closed spans into an aggregated call
    tree.  The server also maintains the [events.delivered.by_conn{conn}]
    labeled family (cached per connection at {!connect}), the always-on
    per-client half of attribution. *)

val screen_count : t -> int
val screen_size : t -> screen:int -> int * int
val screen_monochrome : t -> screen:int -> bool
val root : t -> screen:int -> Xid.t
val atoms : t -> Atom.table

(** {1 Windows} *)

val create_window :
  t ->
  conn ->
  parent:Xid.t ->
  geom:Geom.rect ->
  ?border:int ->
  ?override_redirect:bool ->
  ?background:char ->
  ?label:string ->
  unit ->
  Xid.t
(** [background] and [label] are the simulator's stand-ins for window
    contents: a fill character and a text string, both used only by
    {!Render}. *)

val destroy_window : t -> Xid.t -> unit
val window_exists : t -> Xid.t -> bool
val parent_of : t -> Xid.t -> Xid.t
val children_of : t -> Xid.t -> Xid.t list
(** Bottom-to-top stacking order. *)

val geometry : t -> Xid.t -> Geom.rect
(** Parent-relative geometry (of the border's upper-left corner). *)

val border_width : t -> Xid.t -> int
val is_mapped : t -> Xid.t -> bool
val is_viewable : t -> Xid.t -> bool
(** Mapped, and all ancestors mapped. *)

val override_redirect : t -> Xid.t -> bool
val screen_of_window : t -> Xid.t -> int
val owner_of : t -> Xid.t -> conn

val set_background : t -> Xid.t -> char option -> unit
val set_label : t -> Xid.t -> string option -> unit
val label_of : t -> Xid.t -> string option
val background_of : t -> Xid.t -> char option

val set_art : t -> Xid.t -> string list option -> unit
(** Character-art window contents (e.g. a {!Bitmap} drawn by {!Render}
    below the label). *)

val art_of : t -> Xid.t -> string list option

val translate_coordinates : t -> src:Xid.t -> dst:Xid.t -> Geom.point -> Geom.point
val root_geometry : t -> Xid.t -> Geom.rect
(** The window's rectangle in root coordinates. *)

(** {1 Mapping, configuration, reparenting} *)

val map_window : t -> conn -> Xid.t -> unit
(** If another client holds SubstructureRedirect on the parent and the window
    is not override-redirect, a [Map_request] is sent to it instead. *)

val unmap_window : t -> conn -> Xid.t -> unit

val configure_window : t -> conn -> Xid.t -> Event.config_changes -> unit
(** Subject to redirect interception like {!map_window}. *)

val move_resize : t -> conn -> Xid.t -> Geom.rect -> unit
val raise_window : t -> conn -> Xid.t -> unit
val lower_window : t -> conn -> Xid.t -> unit

val reparent_window : t -> conn -> Xid.t -> new_parent:Xid.t -> pos:Geom.point -> unit
val add_to_save_set : t -> conn -> Xid.t -> unit
val remove_from_save_set : t -> conn -> Xid.t -> unit

(** {1 Properties} *)

val change_property : t -> conn -> Xid.t -> name:string -> Prop.value -> unit
val append_string_property : t -> conn -> Xid.t -> name:string -> string -> unit
(** Append a line to a [Prop.String] property (creating it if missing) —
    the mechanism swmhints and swmcmd use on the root window. *)

val get_property : t -> Xid.t -> name:string -> Prop.value option
val delete_property : t -> conn -> Xid.t -> name:string -> unit
val property_names : t -> Xid.t -> string list

(** Properties are stored keyed by interned atom; the [~name] API above
    interns (or probes) per call.  Hot paths intern once and use the
    atom-keyed variants. *)

val intern_name : t -> string -> Atom.t
(** Intern in this server's atom table (idempotent). *)

val interned : t -> string -> Atom.t option
(** The atom for [name] if it was ever interned, without creating it. *)

val get_property_atom : t -> Xid.t -> Atom.t -> Prop.value option
(** [get_property] without the per-read string hash/compare. *)

(** {1 Events} *)

val select_input : t -> conn -> Xid.t -> Event.mask list -> unit
(** Replaces the connection's mask set on that window.  Raises
    {!Bad_access} if [Substructure_redirect] is requested while another
    connection already holds it. *)

val selected_masks : t -> conn -> Xid.t -> Event.mask list

val pending : conn -> int
(** Number of queue entries waiting (a coalesced multi-rectangle Expose
    counts once even though it may expand to several events). *)

val next_event : conn -> Event.t option
val peek_event : conn -> Event.t option

type stamp = { seq : int; ingress_ns : int }
(** An event's ingress identity: the fleet-wide sequence id allocated at
    enqueue and the monotonic enqueue time ([0] while the ledger is
    disarmed).  Every event expanded from one coalesced Damage entry
    shares that entry's stamp. *)

val next_event_stamped : conn -> (Event.t * stamp) option
val read_events_stamped : conn -> max:int -> (Event.t * stamp) list
(** {!next_event} / {!read_events} with each event's ingress stamp — what
    the WM drains so dispatch can measure ingress-to-effect latency and
    tag spans, recorder entries and waterfalls with the triggering seq. *)

val read_events : conn -> max:int -> Event.t list
(** Drain up to [max] events in one call — the batched counterpart of
    {!next_event}.  Records the batch size in [delivery.batch_size]. *)

val flush_batch : conn -> Event.t list
(** Drain everything queued: [read_events ~max:max_int]. *)

val drain_events : conn -> Event.t list
(** Alias of {!flush_batch}, kept for existing callers. *)

val damage_window : t -> Xid.t -> Geom.rect -> unit
(** Post an Expose with a window-interior damage rectangle to every
    connection selecting [Exposure_mask] there.  Overlapping damage merges
    in the receivers' queues. *)

val send_event : t -> conn -> dest:Xid.t -> Event.t -> unit
(** Deliver an event directly to the owner of [dest] and to every connection
    selecting [Structure_notify] there (how the WM sends synthetic
    ConfigureNotify, and how swmcmd-style ClientMessages travel). *)

(** {1 Pointer and keyboard} *)

val pointer_pos : t -> Geom.point
val pointer_screen : t -> int
val warp_pointer : t -> screen:int -> Geom.point -> unit
(** Moves the pointer, generating Enter/Leave and Motion events. *)

val window_at_pointer : t -> Xid.t
(** The topmost viewable window containing the pointer (shape-aware);
    the root window if nothing else matches. *)

val window_at : t -> screen:int -> Geom.point -> Xid.t

val press_button : t -> ?mods:Keysym.modifiers -> int -> unit
val release_button : t -> ?mods:Keysym.modifiers -> int -> unit
val press_key : t -> ?mods:Keysym.modifiers -> Keysym.t -> unit
(** Synthesise device input at the current pointer position.  The event is
    delivered to the grab holder if a pointer grab is active, otherwise to
    connections selecting on the window under the pointer, propagating to
    ancestors until some connection has selected the event type. *)

val grab_pointer : t -> conn -> Xid.t -> unit
val ungrab_pointer : t -> conn -> unit
val pointer_grabbed : t -> bool

val set_input_focus : t -> conn -> Xid.t -> unit
val input_focus : t -> Xid.t

(** {1 SHAPE extension} *)

val shape_set : t -> conn -> Xid.t -> Region.t -> unit
(** Set the window-relative bounding shape. *)

val shape_clear : t -> conn -> Xid.t -> unit
val shape_get : t -> Xid.t -> Region.t option
val is_shaped : t -> Xid.t -> bool

(** {1 Introspection for tests and rendering} *)

val all_windows : t -> Xid.t list
val window_count : t -> int
val request_count : t -> int
(** Number of protocol requests processed so far — the simulator's
    stand-in for wire traffic, used by the toolkit-overhead benches. *)

(** {1 Fault injection}

    An armed {!Fault} plan fires at request boundaries: before a request
    executes, the server may destroy an unprotected client's window, kill
    an unprotected connection (full {!disconnect} semantics: save-set
    rescue then resource destruction), or stall one (its queue stops
    delivering until the next stall fault un-stalls it).  This is how a
    chaos test schedules the "client died between two WM operations"
    race deterministically: the very next WM request touching the victim
    raises {!Bad_window}, exactly as a real server would answer.

    String property writes from unprotected connections may additionally
    be garbled ({!Fault.draw_property}), and {!Wire_conn} applies frame
    faults to submitted bytes.  Every injection is counted in
    {!metrics} ([faults.*]) and stamped as a [fault.*] tracing instant. *)

val arm_faults : t -> ?protect:conn list -> Fault.plan -> Fault.t
(** Arm a plan.  [protect] lists connections faults must never
    victimise (pass the WM's own connection: a real X server does not
    destroy the WM's resources behind its back); their property writes
    are never garbled either.  Replaces any previously armed plan. *)

val disarm_faults : t -> unit
val faults : t -> Fault.t option
(** The armed harness, for fault accounting mid-run. *)

val stalled : conn -> bool
val set_stalled : conn -> bool -> unit
(** Manual stall control for tests: a stalled connection enqueues
    events but {!next_event}/{!read_events} deliver nothing. *)

val flood_conn : t -> conn -> burst:int -> unit
(** Deliver an event storm (alternating Motion/Expose over the victim's
    own windows) into one connection's queue through the normal delivery
    path — the {!Fault.Flood_events} mechanism, also callable directly by
    benches.  Backpressure bounds the queue at its cap. *)

(** {1 Overload protection}

    Per-connection queues are hard-bounded: at the cap, delivery degrades
    through coalesce-harder (fold the event into any same-window entry of
    its class) and then sheds {!Event.droppable} events (drop-oldest),
    counted in [events.shed].  State-bearing events are never shed; if no
    droppable entry can yield a slot they overrun the cap (counted in
    [queue.cap_overruns]).  A {!Health} score per connection turns
    sustained pressure into quarantine (droppable classes shed at enqueue)
    and finally eviction — {!disconnect} with save-set rescue.  The WM's
    journal-exempt connection and fault-protected connections are never
    judged. *)

val default_queue_cap : int

val queue_cap : t -> int
val set_queue_cap : t -> int -> unit
(** Set the per-connection queue cap (clamped to >= 1) for existing and
    future connections. *)

val set_health_thresholds : t -> Health.thresholds -> unit
val health_thresholds : t -> Health.thresholds

val health_tick : t -> unit
(** One quarantine pass: fold each live connection's pressure signals
    (queue depth ratio, sheds, rejected frames, absorbed X errors, stall
    contributions) into its {!Health} score and apply state transitions —
    throttle, recover, or evict.  Transitions are recorded (kind
    ["health"]), traced, and counted ([health.quarantined] /
    [health.recovered] / [health.evicted]).  The WM calls this from its
    governor cadence; tests may call it directly. *)

val max_queue_ratio : t -> float
(** Worst [pending / cap] over live connections — the load governor's
    queue-pressure input. *)

val note_rejected : conn -> unit
val note_conn_xerror : conn -> unit
(** Health attribution hooks for the wire layer: a rejected frame or an
    absorbed X error counts against the submitting connection. *)

val conn_health : conn -> Health.state
val conn_health_score : conn -> float
val is_throttled : conn -> bool
val shed_count : conn -> int
(** Events shed from this connection's queue so far. *)

(** {1 Lifecycle ledger}

    Every event is stamped at ingress (sequence id + monotonic timestamp
    carried in its queue entry) and every exit from the pipeline records a
    fate: [delivered], [coalesced_into] / [folded] (with the surviving
    entry's seq, so coalescing lineage is queryable), [dropped_oldest] /
    [shed] from the overload ladder, [skipped] by the governor's essential
    tier, or [evicted_with_conn] when quarantine closes the connection.
    The unit of accounting is the queue entry — a multi-rectangle Damage
    expansion counts once — and the conservation invariant

    [enqueued = delivered + coalesced + folded + dropped_oldest + shed
     + skipped + evicted_with_conn + pending]

    holds at every quiescent point ({!ledger_counts}[.lc_balance = 0]),
    checked in the test suites and exposed in [f.health].  Fate counters
    always run; timestamps, the bounded recent-fates ring behind [f.fate]
    and the [event.queue_ns{event}] residency histograms are taken only
    while the ledger is armed (default on). *)

type ledger_counts = {
  lc_enqueued : int;
  lc_delivered : int;
  lc_coalesced : int;
  lc_folded : int;
  lc_dropped : int;
  lc_shed : int;
  lc_skipped : int;
  lc_evicted : int;
  lc_pending : int; (* queue entries still waiting across live conns *)
  lc_balance : int; (* enqueued minus everything else; 0 when conserved *)
}

val ledger_counts : t -> ledger_counts

val set_ledger : t -> bool -> unit
(** Arm/disarm the ledger's measurement half (clock reads, fate-ring
    records, residency histograms).  Fate {e counters} are unconditional:
    conservation holds either way. *)

val ledger_enabled : t -> bool

val ledger_skip : conn -> Event.t -> stamp -> unit
(** Reclassify a delivered entry as governor-skipped ([delivered] was
    counted at pop; the essential tier then refused to dispatch it).
    Idempotent per seq, so an expanded Damage entry reclassifies once no
    matter how many of its rects are refused. *)

val ledger_json : t -> string
(** {!ledger_counts} as one JSON object (plus ["armed"]) — the ["ledger"]
    section of [f.health]. *)

val fate_json : t -> ?conn:string -> ?window:int -> unit -> string
(** The retained fate records, oldest first, optionally filtered by
    connection name or window id, plus the ledger totals — the payload
    behind [f.fate(CONN|WINDOW)]. *)

(** {1 Replay journal}

    When the flight recorder is enabled, every state-changing request a
    client issues is appended to its replay journal ({!Recorder.record_op})
    as an op string — encoded wire frames for protocol requests, compact
    text ops for device synthesis, fault effects and the few requests the
    wire codec cannot carry.  {!Replay} owns the op grammar and re-executes
    a journal against a fresh server. *)

val set_journal_exempt : conn -> bool -> unit
(** Exclude this connection's requests from the journal.  The WM exempts
    its own connection: a replay starts a fresh WM which re-derives every
    WM-issued request itself, so journalling them would double-apply. *)

val with_journal_suspended : t -> (unit -> 'a) -> 'a
(** Run [f] with journalling off — the WM wraps its event dispatch (and
    startup/shutdown) in this so connection-less WM activity (outline
    windows, [f.warpto] warps) stays out of the journal too.  Fault
    effects still journal: they are session inputs, just hostile ones. *)
