type entry = {
  ts_ns : int;
  kind : string;
  what : string;
  attrs : (string * string) list;
}

type t = {
  mutable on : bool;
  ring : entry option array; (* fixed size: armed cost is constant *)
  mutable head : int; (* next write slot *)
  mutable total : int;
  mutable epoch : int;
  mutable snapshot_source : (unit -> string) option;
  mutable snapshot_interval : int;
  mutable since_snapshot : int;
  mutable last_snapshot : (int * string) option;
  mutable snapping : bool; (* reentrancy guard around the source *)
  mutable dump_path : string option;
  mutable dumps : int;
  mutable dump_errors : int;
  (* The replay journal: a second ring holding the session's *inputs*
     (encoded wire frames, device synthesis, fault effects, step markers)
     rather than its activity.  Ops are opaque strings here; {!Replay}
     owns the grammar.  Kept separate from the entry ring because entries
     are diagnostics (droppable) while a journal with any drop can no
     longer replay from a fresh server. *)
  j_ring : string option array;
  mutable j_head : int;
  mutable j_total : int;
  mutable j_meta : string option; (* session setup, JSON text *)
  mutable j_snap : string option; (* snapshot at the last [snap] op *)
}

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let create ?(capacity = 512) ?(journal_capacity = 8192) () =
  {
    on = false;
    ring = Array.make (max 1 capacity) None;
    head = 0;
    total = 0;
    epoch = now_ns ();
    snapshot_source = None;
    snapshot_interval = 256;
    since_snapshot = 0;
    last_snapshot = None;
    snapping = false;
    dump_path = None;
    dumps = 0;
    dump_errors = 0;
    j_ring = Array.make (max 1 journal_capacity) None;
    j_head = 0;
    j_total = 0;
    j_meta = None;
    j_snap = None;
  }

let capacity t = Array.length t.ring
let enabled t = t.on

let start t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.head <- 0;
  t.total <- 0;
  t.since_snapshot <- 0;
  t.last_snapshot <- None;
  Array.fill t.j_ring 0 (Array.length t.j_ring) None;
  t.j_head <- 0;
  t.j_total <- 0;
  t.j_snap <- None;
  t.epoch <- now_ns ();
  t.on <- true

let stop t = t.on <- false

let set_snapshot_source t f = t.snapshot_source <- Some f
let set_snapshot_interval t n = t.snapshot_interval <- max 1 n

let take_snapshot t =
  match t.snapshot_source with
  | None -> ()
  | Some source ->
      if not t.snapping then begin
        t.snapping <- true;
        Fun.protect
          ~finally:(fun () -> t.snapping <- false)
          (fun () -> t.last_snapshot <- Some (now_ns () - t.epoch, source ()));
        t.since_snapshot <- 0
      end

let snapshot_now t = if t.on then take_snapshot t

let record t ~kind ?(attrs = []) what =
  if t.on && not t.snapping then begin
    t.ring.(t.head) <- Some { ts_ns = now_ns () - t.epoch; kind; what; attrs };
    t.head <- (t.head + 1) mod Array.length t.ring;
    t.total <- t.total + 1;
    t.since_snapshot <- t.since_snapshot + 1;
    if t.since_snapshot >= t.snapshot_interval then take_snapshot t
  end

let entries t =
  let n = Array.length t.ring in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match t.ring.((t.head + i) mod n) with
    | Some e -> acc := e :: !acc
    | None -> ()
  done;
  !acc

let recorded t = t.total
let dropped t = max 0 (t.total - Array.length t.ring)

(* -------- the replay journal -------- *)

let record_op t op =
  if t.on then begin
    t.j_ring.(t.j_head) <- Some op;
    t.j_head <- (t.j_head + 1) mod Array.length t.j_ring;
    t.j_total <- t.j_total + 1
  end

let journal_ops t =
  let n = Array.length t.j_ring in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    match t.j_ring.((t.j_head + i) mod n) with
    | Some op -> acc := op :: !acc
    | None -> ()
  done;
  !acc

let journal_capacity t = Array.length t.j_ring
let journal_recorded t = t.j_total
let journal_dropped t = max 0 (t.j_total - Array.length t.j_ring)
let set_meta t json = t.j_meta <- Some json
let meta t = t.j_meta

let journal_snapshot t json =
  if t.on then begin
    record_op t "snap";
    t.j_snap <- Some json
  end

let journal_snap t = t.j_snap

let last_snapshot t = t.last_snapshot

let arm_dump t ~path = t.dump_path <- Some path
let dump_path t = t.dump_path
let dumps t = t.dumps

(* -------- the crash report -------- *)

let attrs_json attrs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Metrics.json_string k ^ ":" ^ Metrics.json_string v)
         attrs)
  ^ "}"

let entry_json e =
  Printf.sprintf "{\"ts_ns\":%d,\"kind\":%s,\"what\":%s,\"attrs\":%s}" e.ts_ns
    (Metrics.json_string e.kind)
    (Metrics.json_string e.what)
    (attrs_json e.attrs)

let dump_json t ~reason ~metrics ~tracer =
  (* The snapshot in a report should be as fresh as the failure: re-take it
     when a source is installed (the ring already holds the history). *)
  if t.on then take_snapshot t;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf ("\"reason\":" ^ Metrics.json_string reason ^ ",\n");
  Buffer.add_string buf
    (Printf.sprintf "\"dumped_at_ns\":%d,\n" (now_ns () - t.epoch));
  Buffer.add_string buf
    (Printf.sprintf
       "\"recorder\":{\"capacity\":%d,\"recorded\":%d,\"dropped\":%d,\"entries\":[\n"
       (capacity t) t.total (dropped t));
  let first = ref true in
  List.iter
    (fun e ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf (entry_json e))
    (entries t);
  Buffer.add_string buf "\n]},\n";
  (match t.last_snapshot with
  | Some (ts, json) ->
      Buffer.add_string buf
        (Printf.sprintf "\"snapshot_ts_ns\":%d,\n\"snapshot\":%s,\n" ts json)
  | None -> Buffer.add_string buf "\"snapshot\":null,\n");
  Buffer.add_string buf ("\"metrics\":" ^ Metrics.to_json metrics ^ ",\n");
  (match t.j_meta with
  | Some json -> Buffer.add_string buf ("\"meta\":" ^ json ^ ",\n")
  | None -> Buffer.add_string buf "\"meta\":null,\n");
  Buffer.add_string buf
    (Printf.sprintf
       "\"journal\":{\"capacity\":%d,\"recorded\":%d,\"dropped\":%d,\"snap\":%s,\"ops\":[\n"
       (journal_capacity t) t.j_total (journal_dropped t)
       (match t.j_snap with Some json -> json | None -> "null"));
  let first_op = ref true in
  List.iter
    (fun op ->
      if not !first_op then Buffer.add_string buf ",\n";
      first_op := false;
      Buffer.add_string buf (Metrics.json_string op))
    (journal_ops t);
  Buffer.add_string buf "\n]},\n";
  Buffer.add_string buf ("\"slowlog\":" ^ Tracing.slow_log_json tracer ^ "\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Session.write_atomic's discipline, restated here because the recorder
   sits below the swm layer: a crash mid-dump must never leave a
   half-written report where a whole one used to be. *)
let write_atomic ~path content =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc content);
  Sys.rename tmp path

let crash t ~reason ~metrics ~tracer =
  if t.on then begin
    Metrics.incr (Metrics.counter metrics "recorder.crashes");
    match t.dump_path with
    | None -> ()
    | Some path -> (
        match write_atomic ~path (dump_json t ~reason ~metrics ~tracer) with
        | () ->
            t.dumps <- t.dumps + 1;
            Metrics.incr (Metrics.counter metrics "recorder.crash_dumps")
        | exception _ ->
            t.dump_errors <- t.dump_errors + 1;
            Metrics.incr (Metrics.counter metrics "recorder.dump_errors"))
  end
