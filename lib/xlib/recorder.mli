(** A black-box flight recorder.

    One recorder lives inside each {!Server}, next to the {!Metrics}
    registry and the {!Tracing} ring, and answers the question neither of
    those can: {e what was the WM doing when it went wrong?}  Metrics are
    point samples and traces need to have been switched on around the
    interesting window; the recorder instead keeps a bounded ring of the
    most recent {e structured activity} — dispatched events, [f.*]
    invocations, injected faults, absorbed X errors, pans, swmcmd lines,
    watchdog stalls — cheaply enough to stay armed in production.

    Two extra pieces make a dump self-contained:

    - a {e state snapshot} source (installed by the WM) is invoked every
      {!set_snapshot_interval} records, so the dump carries a recent
      compact picture of the window table and viewport, not just the
      activity tail;
    - {!crash} renders the ring, the snapshot, the full metrics registry
      and the tracing slow-log into one JSON report and writes it with
      tmp+rename atomicity — called from the WM's X-error boundary and
      its event-loop exception handler.

    Like {!Tracing}, everything is a no-op until {!start}: a disabled
    {!record} is one flag check. *)

type t

type entry = {
  ts_ns : int;  (** nanoseconds since the recorder's epoch ({!start}) *)
  kind : string;  (** "event", "function", "fault", "xerror", "pan", ... *)
  what : string;
  attrs : (string * string) list;
}

val create : ?capacity:int -> ?journal_capacity:int -> unit -> t
(** A recorder with a fixed ring of [capacity] entries (default 512) and
    a fixed replay journal of [journal_capacity] ops (default 8192).
    Unlike the growable {!Ring}, the recorder's rings never reallocate:
    the cost of armed recording must not depend on how long the WM has
    been up. *)

val capacity : t -> int
val enabled : t -> bool

val start : t -> unit
(** Clear the ring and start recording (resets the epoch). *)

val stop : t -> unit

val record : t -> kind:string -> ?attrs:(string * string) list -> string -> unit
(** Append an entry, overwriting the oldest once the ring is full.  A
    single flag check when disabled. *)

val entries : t -> entry list
(** Oldest first; at most [capacity] of them. *)

val recorded : t -> int
(** Entries recorded since {!start}. *)

val dropped : t -> int
(** How many of those the ring has already overwritten. *)

(** {1 The replay journal}

    A second ring holding the session's {e inputs} — encoded wire frames,
    device synthesis, fault effects, WM step markers — as opaque op
    strings ({!Replay} owns the grammar).  Entries are diagnostics and may
    drop; a journal that dropped anything can no longer be replayed from a
    fresh server, which is why it gets its own (larger) ring and its own
    drop accounting. *)

val record_op : t -> string -> unit
(** Append an op (a single flag check when disabled). *)

val journal_ops : t -> string list
(** Oldest first; at most [journal_capacity] of them. *)

val journal_capacity : t -> int
val journal_recorded : t -> int
val journal_dropped : t -> int

val set_meta : t -> string -> unit
(** Session setup as JSON text — the resources and screen layout a replay
    needs to start an equivalent WM.  Survives {!start}; emitted as the
    report's ["meta"] member. *)

val meta : t -> string option

val journal_snapshot : t -> string -> unit
(** Record a ["snap"] marker op and remember [json] as the state at that
    point.  The WM calls this at the end of every {!step} — a safe point:
    the queue is drained, no handler is mid-flight — so convergence is
    asserted against a state a replay can actually reach.  The report
    carries it as ["journal"."snap"]. *)

val journal_snap : t -> string option

(** {1 State snapshots} *)

val set_snapshot_source : t -> (unit -> string) -> unit
(** Install the provider of compact state snapshots.  It must return a
    self-contained JSON value (the WM summarises its window table,
    viewport and iconic/sticky sets).  Called synchronously from
    {!record} every snapshot-interval records and from {!crash}; a
    provider that itself records is ignored while the snapshot is being
    taken (no reentrancy). *)

val set_snapshot_interval : t -> int -> unit
(** Records between periodic snapshots (default 256, minimum 1). *)

val snapshot_now : t -> unit
(** Take a snapshot immediately (no-op without a source or when
    disabled). *)

val last_snapshot : t -> (int * string) option
(** [(ts_ns, json)] of the most recent snapshot, if any. *)

(** {1 Crash reports} *)

val arm_dump : t -> path:string -> unit
(** Crash reports go to [path] (written atomically: [path.tmp] then
    rename).  Until armed, {!crash} only counts. *)

val dump_path : t -> string option
val dumps : t -> int
(** Crash reports written so far. *)

val dump_json :
  t -> reason:string -> metrics:Metrics.t -> tracer:Tracing.t -> string
(** The self-contained report: reason, ring entries, last snapshot (a
    fresh one is taken first when a source is installed),
    [Metrics.to_json] and the tracing slow-log. *)

val crash :
  t -> reason:string -> metrics:Metrics.t -> tracer:Tracing.t -> unit
(** Write {!dump_json} to the armed path.  Never raises: a failing dump
    (unwritable path, full disk) is counted in [recorder.dump_errors]
    and otherwise ignored — the flight recorder must not take the plane
    down.  No-op when disabled or unarmed. *)
