type mask =
  | Substructure_redirect
  | Substructure_notify
  | Structure_notify
  | Property_change
  | Button_press_mask
  | Button_release_mask
  | Key_press_mask
  | Pointer_motion_mask
  | Enter_leave_mask
  | Exposure_mask
  | Focus_change_mask

let pp_mask ppf mask =
  let label =
    match mask with
    | Substructure_redirect -> "SubstructureRedirect"
    | Substructure_notify -> "SubstructureNotify"
    | Structure_notify -> "StructureNotify"
    | Property_change -> "PropertyChange"
    | Button_press_mask -> "ButtonPress"
    | Button_release_mask -> "ButtonRelease"
    | Key_press_mask -> "KeyPress"
    | Pointer_motion_mask -> "PointerMotion"
    | Enter_leave_mask -> "EnterLeave"
    | Exposure_mask -> "Exposure"
    | Focus_change_mask -> "FocusChange"
  in
  Format.pp_print_string ppf label

type stack_mode = Above | Below

type config_changes = {
  cx : int option;
  cy : int option;
  cw : int option;
  ch : int option;
  cborder : int option;
  cstack : stack_mode option;
  csibling : Xid.t option;
}

let no_changes =
  { cx = None; cy = None; cw = None; ch = None; cborder = None; cstack = None; csibling = None }

type t =
  | Map_request of { window : Xid.t; parent : Xid.t }
  | Configure_request of { window : Xid.t; parent : Xid.t; changes : config_changes }
  | Map_notify of { window : Xid.t }
  | Unmap_notify of { window : Xid.t }
  | Destroy_notify of { window : Xid.t }
  | Reparent_notify of { window : Xid.t; parent : Xid.t; pos : Geom.point }
  | Configure_notify of { window : Xid.t; geom : Geom.rect; border : int; synthetic : bool }
  | Property_notify of { window : Xid.t; name : string; deleted : bool }
  | Button_press of {
      window : Xid.t;
      button : int;
      mods : Keysym.modifiers;
      pos : Geom.point;
      root_pos : Geom.point;
    }
  | Button_release of {
      window : Xid.t;
      button : int;
      mods : Keysym.modifiers;
      pos : Geom.point;
      root_pos : Geom.point;
    }
  | Key_press of {
      window : Xid.t;
      keysym : Keysym.t;
      mods : Keysym.modifiers;
      pos : Geom.point;
      root_pos : Geom.point;
    }
  | Motion_notify of { window : Xid.t; pos : Geom.point; root_pos : Geom.point }
  | Enter_notify of { window : Xid.t }
  | Leave_notify of { window : Xid.t }
  | Focus_in of { window : Xid.t }
  | Focus_out of { window : Xid.t }
  | Expose of { window : Xid.t; damage : Geom.rect option }
  | Client_message of { window : Xid.t; name : string; data : string }

let window_of = function
  | Map_request { window; _ }
  | Configure_request { window; _ }
  | Map_notify { window }
  | Unmap_notify { window }
  | Destroy_notify { window }
  | Reparent_notify { window; _ }
  | Configure_notify { window; _ }
  | Property_notify { window; _ }
  | Button_press { window; _ }
  | Button_release { window; _ }
  | Key_press { window; _ }
  | Motion_notify { window; _ }
  | Enter_notify { window }
  | Leave_notify { window }
  | Focus_in { window }
  | Focus_out { window }
  | Expose { window; _ }
  | Client_message { window; _ } -> window

(* Dense event-kind codes matching the wire event codes in
   [Wire_codec.encode_event].  0 is reserved (X errors on the real
   protocol); valid codes are 1..last_event, so handler tables are
   [last_event + 1] entries with slot 0 unused. *)
let code = function
  | Map_request _ -> 1
  | Configure_request _ -> 2
  | Map_notify _ -> 3
  | Unmap_notify _ -> 4
  | Destroy_notify _ -> 5
  | Reparent_notify _ -> 6
  | Configure_notify _ -> 7
  | Property_notify _ -> 8
  | Button_press _ -> 9
  | Button_release _ -> 10
  | Key_press _ -> 11
  | Motion_notify _ -> 12
  | Enter_notify _ -> 13
  | Leave_notify _ -> 14
  | Expose _ -> 15
  | Client_message _ -> 16
  | Focus_in _ -> 17
  | Focus_out _ -> 18

let last_event = 18

let code_names =
  [|
    "Unknown";
    "MapRequest";
    "ConfigureRequest";
    "MapNotify";
    "UnmapNotify";
    "DestroyNotify";
    "ReparentNotify";
    "ConfigureNotify";
    "PropertyNotify";
    "ButtonPress";
    "ButtonRelease";
    "KeyPress";
    "MotionNotify";
    "EnterNotify";
    "LeaveNotify";
    "Expose";
    "ClientMessage";
    "FocusIn";
    "FocusOut";
  |]

let name_of_code c = if c >= 1 && c <= last_event then code_names.(c) else "Unknown"

(* Constant strings so tracing attributes allocate nothing per event. *)
let kind_name t = code_names.(code t)

(* Shed eligibility under overload.  Droppable events describe a latest-wins
   or redrawable observation (pointer position, damage): losing one costs a
   frame of fidelity, never correctness.  Everything else is state-bearing —
   dropping a MapRequest or DestroyNotify desynchronises the WM's model of
   the session — and must never be shed. *)
let droppable_code c = c = 12 (* MotionNotify *) || c = 15 (* Expose *)
let droppable t = droppable_code (code t)

let pp ppf event =
  match event with
  | Map_request { window; parent } ->
      Format.fprintf ppf "MapRequest(win=%a parent=%a)" Xid.pp window Xid.pp parent
  | Configure_request { window; _ } -> Format.fprintf ppf "ConfigureRequest(win=%a)" Xid.pp window
  | Map_notify { window } -> Format.fprintf ppf "MapNotify(win=%a)" Xid.pp window
  | Unmap_notify { window } -> Format.fprintf ppf "UnmapNotify(win=%a)" Xid.pp window
  | Destroy_notify { window } -> Format.fprintf ppf "DestroyNotify(win=%a)" Xid.pp window
  | Reparent_notify { window; parent; pos } ->
      Format.fprintf ppf "ReparentNotify(win=%a parent=%a at=%a)" Xid.pp window Xid.pp parent
        Geom.pp_point pos
  | Configure_notify { window; geom; synthetic; _ } ->
      Format.fprintf ppf "ConfigureNotify(win=%a %a%s)" Xid.pp window Geom.pp_rect geom
        (if synthetic then " synthetic" else "")
  | Property_notify { window; name; deleted } ->
      Format.fprintf ppf "PropertyNotify(win=%a %s%s)" Xid.pp window name
        (if deleted then " deleted" else "")
  | Button_press { window; button; pos; _ } ->
      Format.fprintf ppf "ButtonPress(win=%a btn=%d at=%a)" Xid.pp window button Geom.pp_point pos
  | Button_release { window; button; _ } ->
      Format.fprintf ppf "ButtonRelease(win=%a btn=%d)" Xid.pp window button
  | Key_press { window; keysym; _ } ->
      Format.fprintf ppf "KeyPress(win=%a key=%s)" Xid.pp window keysym
  | Motion_notify { window; pos; _ } ->
      Format.fprintf ppf "MotionNotify(win=%a at=%a)" Xid.pp window Geom.pp_point pos
  | Enter_notify { window } -> Format.fprintf ppf "EnterNotify(win=%a)" Xid.pp window
  | Leave_notify { window } -> Format.fprintf ppf "LeaveNotify(win=%a)" Xid.pp window
  | Focus_in { window } -> Format.fprintf ppf "FocusIn(win=%a)" Xid.pp window
  | Focus_out { window } -> Format.fprintf ppf "FocusOut(win=%a)" Xid.pp window
  | Expose { window; damage = None } -> Format.fprintf ppf "Expose(win=%a)" Xid.pp window
  | Expose { window; damage = Some r } ->
      Format.fprintf ppf "Expose(win=%a %a)" Xid.pp window Geom.pp_rect r
  | Client_message { window; name; data } ->
      Format.fprintf ppf "ClientMessage(win=%a %s %S)" Xid.pp window name data
