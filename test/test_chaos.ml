(* Chaos suite: the workload storms of test_fuzz run again, but under
   seeded fault plans ({!Swm_xlib.Fault}) that destroy client windows
   between requests, kill or stall connections, corrupt wire frames and
   garble property bytes.  Three properties must hold for every plan:

   - the WM never crashes (no exception escapes [Wm.step]);
   - the client tables stay consistent (every managed client's window
     still exists once the queue is drained);
   - after the WM is torn down and a fresh instance started, every
     surviving viable client is re-adopted — 100%, not "most".

   Every run is replayable from its integer seed. *)

module Server = Swm_xlib.Server
module Fault = Swm_xlib.Fault
module Metrics = Swm_xlib.Metrics
module Replay = Swm_xlib.Replay
module Xid = Swm_xlib.Xid
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Swmcmd = Swm_core.Swmcmd
module Templates = Swm_core.Templates
module Workload = Swm_clients.Workload

let check = Alcotest.check

let resources =
  [ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]

(* Client-side stimulus races the injector on purpose: a storm step may
   address a window the fault plan just destroyed, or speak through a
   killed connection.  That is the client's problem, not the WM's — absorb
   it here so only exceptions out of [Wm.step] count as failures. *)
let client_side f =
  try f () with Server.Bad_window _ | Server.Bad_access _ -> ()

(* A crashed seed should arrive pre-minimized: the recorder dumped a crash
   report on the way out, so shrink its journal with ddmin to the shortest
   op stream whose replay still crashes, and leave the compact repro next
   to the dump (the CI chaos job uploads both; a green repro is a
   candidate for test/repros/ once the bug is fixed). *)
let minimize_dump ~seed =
  match Sys.getenv_opt "SWM_FLIGHT_DIR" with
  | Some dir when dir <> "" -> (
      let dump =
        Filename.concat dir (Printf.sprintf "crash-seed-%d.json" seed)
      in
      match
        if Sys.file_exists dump then
          Replay.parse_report (In_channel.with_open_text dump In_channel.input_all)
        else Error "no dump"
      with
      | Error _ -> ()
      | Ok report ->
          let fails ops =
            let probe =
              { report with Replay.ops; snap = None; expect = Replay.No_crash }
            in
            match Wm.replay probe with Replay.Crashed _ -> true | _ -> false
          in
          if fails report.Replay.ops then begin
            let ops, _ = Replay.minimize ~ops:report.Replay.ops ~fails in
            let repro =
              { report with Replay.ops; snap = None; expect = Replay.No_crash }
            in
            let path =
              Filename.concat dir (Printf.sprintf "repro-seed-%d.json" seed)
            in
            let oc = open_out path in
            output_string oc (Replay.repro_json repro);
            close_out oc
          end)
  | Some _ | None -> ()

let wm_step ~seed wm =
  try ignore (Wm.step wm)
  with e ->
    minimize_dump ~seed;
    Alcotest.failf "seed %d: WM crashed: %s" seed (Printexc.to_string e)

(* The clients a fresh WM is expected to adopt: mapped, not
   override-redirect, owner connection alive and not a WM. *)
let adoptable server =
  let root = Server.root server ~screen:0 in
  List.filter
    (fun w ->
      Server.window_exists server w
      && Server.is_mapped server w
      && (not (Server.override_redirect server w))
      && match Server.owner_of server w with
         | owner -> Server.conn_name owner <> "swm"
         | exception Server.Bad_access _ -> false)
    (Server.children_of server root)

(* One full chaos cycle: populate, storm under an armed plan, check
   invariants, restart the WM, check adoption. *)
let run_chaos ~seed ~clients ~rounds plan =
  let server = Server.create () in
  let wm = Wm.start ~resources server in
  (* With SWM_FLIGHT_DIR set (the CI chaos job), every storm runs with the
     flight recorder armed: each absorbed X error dumps a per-seed crash
     report there, which the job uploads as artifacts.  Unset (the default
     developer run), the recorder stays off — chaos results must not depend
     on it either way. *)
  (match Sys.getenv_opt "SWM_FLIGHT_DIR" with
  | Some dir when dir <> "" ->
      let recorder = Server.recorder server in
      Swm_xlib.Recorder.start recorder;
      Swm_xlib.Recorder.arm_dump recorder
        ~path:(Filename.concat dir (Printf.sprintf "crash-seed-%d.json" seed))
  | Some _ | None -> ());
  let ctx = Wm.ctx wm in
  let apps = Workload.launch_n server clients in
  wm_step ~seed wm;
  (* The iconify churn below travels through swmcmd, so it is session
     input (a journalled root-property write the replay re-injects), not
     direct WM surgery a replayed WM would never repeat.  The command
     channel is protected: chaos targets the WM, not the test driver. *)
  let sender = Server.connect server ~name:"chaos-cmd" in
  let fault = Server.arm_faults server ~protect:[ ctx.Ctx.conn; sender ] plan in
  for round = 0 to rounds - 1 do
    let sub = (seed * 31) + round in
    client_side (fun () -> Workload.motion_storm server ~seed:sub ~steps:25 ());
    wm_step ~seed wm;
    client_side (fun () -> Workload.configure_churn server ~seed:sub ~rounds:2 apps);
    wm_step ~seed wm;
    client_side (fun () -> Workload.expose_storm server ~seed:sub ~rounds:1 apps);
    wm_step ~seed wm;
    (* Iconify a rotating third of the population, deiconify the rest. *)
    List.iteri
      (fun i (c : Ctx.client) ->
        let verb = if (i + round) mod 3 = 0 then "f.iconify" else "f.deiconify" in
        client_side (fun () ->
            Swmcmd.send server sender ~screen:0
              (Printf.sprintf "%s(#%d)" verb (Xid.to_int c.Ctx.cwin))))
      (Ctx.all_clients ctx);
    wm_step ~seed wm
  done;
  (* Invariant: once the queue is drained, no managed client is a corpse. *)
  List.iter
    (fun (c : Ctx.client) ->
      if not (Server.window_exists server c.Ctx.cwin) then
        Alcotest.failf "seed %d: managed client %d has no window" seed
          (Xid.to_int c.Ctx.cwin))
    (Ctx.all_clients ctx);
  (* Recording stops here: a journal spanning a WM teardown + restart is
     not replayable by the single fresh WM the replay harness starts, so
     dumps (and the repro corpus built from them) stay storm-scoped. *)
  (match Sys.getenv_opt "SWM_FLIGHT_DIR" with
  | Some dir when dir <> "" -> Swm_xlib.Recorder.stop (Server.recorder server)
  | Some _ | None -> ());
  (* Restart: tear the WM down (frames die, save-set clients return to the
     root) and verify a fresh instance re-adopts every survivor.  A hot
     plan can wipe the whole herd, which would make the adoption check
     vacuous — so a few late arrivals always join on the wreckage first. *)
  Server.disarm_faults server;
  let _late = Workload.launch_n server 3 in
  wm_step ~seed wm;
  Wm.shutdown wm;
  let survivors = adoptable server in
  let wm2 =
    try Wm.start ~resources server
    with e ->
      Alcotest.failf "seed %d: restarted WM crashed: %s" seed
        (Printexc.to_string e)
  in
  wm_step ~seed wm2;
  List.iter
    (fun w ->
      if Wm.find_client wm2 w = None then
        Alcotest.failf "seed %d: survivor %d not re-adopted" seed (Xid.to_int w))
    survivors;
  (Fault.injected fault, List.length survivors)

let test_chaos_200_seeds () =
  let total = ref 0 and survivors = ref 0 in
  for seed = 1 to 200 do
    let injected, adopted =
      run_chaos ~seed ~clients:6 ~rounds:3 (Fault.storm ~seed ())
    in
    total := !total + injected;
    survivors := !survivors + adopted
  done;
  (* The suite is only meaningful if the plans actually fired AND the
     adoption check actually had clients to re-adopt. *)
  check Alcotest.bool "faults were injected" true (!total > 1000);
  check Alcotest.bool "adoption checks were not vacuous" true (!survivors > 200)

let test_chaos_quiet_plan_is_inert () =
  (* The harness itself must not perturb anything: a quiet plan injects
     zero faults, and with no faults every client survives to adoption. *)
  let injected, survivors = run_chaos ~seed:42 ~clients:6 ~rounds:3 Fault.quiet in
  check Alcotest.int "no faults under quiet plan" 0 injected;
  check Alcotest.bool "full population survives" true (survivors >= 6)

let test_chaos_deterministic () =
  (* Same seed, same plan: the injector fires the same faults, class by
     class — replayability is what makes chaos failures debuggable. *)
  let counts seed =
    let server = Server.create () in
    let wm = Wm.start ~resources server in
    let ctx = Wm.ctx wm in
    let apps = Workload.launch_n server 6 in
    ignore (Wm.step wm);
    let fault =
      Server.arm_faults server ~protect:[ ctx.Ctx.conn ] (Fault.storm ~seed ())
    in
    client_side (fun () -> Workload.motion_storm server ~seed ~steps:50 ());
    client_side (fun () -> Workload.configure_churn server ~seed ~rounds:3 apps);
    ignore (Wm.step wm);
    List.map (fun a -> Fault.count fault a) Fault.all_actions
  in
  check
    Alcotest.(list int)
    "identical fault schedule" (counts 1234) (counts 1234)

let test_metrics_account_for_faults () =
  let server = Server.create () in
  let wm = Wm.start ~resources server in
  let ctx = Wm.ctx wm in
  let apps = Workload.launch_n server 8 in
  ignore (Wm.step wm);
  let heavy =
    {
      (Fault.storm ~seed:7 ()) with
      Fault.p_destroy_window = 0.2;
      p_garble_property = 0.2;
      max_faults = 0;
    }
  in
  let fault = Server.arm_faults server ~protect:[ ctx.Ctx.conn ] heavy in
  for round = 0 to 2 do
    client_side (fun () -> Workload.configure_churn server ~seed:round ~rounds:2 apps);
    client_side (fun () -> Workload.expose_storm server ~seed:round ~rounds:1 apps);
    wm_step ~seed:7 wm
  done;
  let m = Server.metrics server in
  check Alcotest.int "faults.injected matches the armed plan's count"
    (Fault.injected fault)
    (Metrics.counter_value m "faults.injected");
  check Alcotest.bool "destroys fired" true
    (Metrics.counter_value m "faults.destroy_window" > 0)

(* A qcheck pass over random plans: probabilities drawn freely, not just
   the storm defaults. *)
let plan_gen =
  QCheck2.Gen.(
    map
      (fun (seed, (a, b), (c, d)) ->
        {
          Fault.seed;
          p_destroy_window = float_of_int a /. 400.;
          p_kill_connection = float_of_int b /. 4000.;
          p_stall_connection = float_of_int b /. 2000.;
          p_truncate_frame = float_of_int c /. 400.;
          p_corrupt_frame = float_of_int d /. 400.;
          p_garble_property = float_of_int d /. 400.;
          p_flood = float_of_int c /. 800.;
          flood_burst = 64;
          max_faults = 48;
        })
      (triple (int_range 1 1_000_000)
         (pair (int_range 0 40) (int_range 0 40))
         (pair (int_range 0 40) (int_range 0 40))))

let prop_no_crash_under_random_plans =
  QCheck2.Test.make ~name:"WM survives random fault plans" ~count:60 plan_gen
    (fun plan ->
      let _injected, _survivors =
        run_chaos ~seed:plan.Fault.seed ~clients:5 ~rounds:2 plan
      in
      true)

(* The overload storm: a seeded flood plan hammers client queues while the
   usual stimulus runs.  Backpressure must bound every queue, no
   state-bearing event may ever be shed, the WM must survive, and after a
   restart every surviving client is re-adopted — the quarantine of the
   flooders must not cost anyone else their session. *)
let test_flood_storm_overload () =
  let seed = 99 in
  let cap = 128 in
  let server = Server.create () in
  Server.set_queue_cap server cap;
  let wm = Wm.start ~resources server in
  let ctx = Wm.ctx wm in
  let apps = Workload.launch_n server 8 in
  wm_step ~seed wm;
  let fault =
    Server.arm_faults server ~protect:[ ctx.Ctx.conn ]
      (Fault.flood ~seed ~burst:4096 ())
  in
  for round = 0 to 5 do
    let sub = (seed * 31) + round in
    client_side (fun () -> Workload.motion_storm server ~seed:sub ~steps:25 ());
    wm_step ~seed wm;
    client_side (fun () -> Workload.expose_storm server ~seed:sub ~rounds:1 apps);
    wm_step ~seed wm;
    client_side (fun () ->
        Workload.configure_churn server ~seed:sub ~rounds:2 apps);
    wm_step ~seed wm
  done;
  let m = Server.metrics server in
  check Alcotest.bool "floods actually fired" true
    (Fault.count fault Fault.Flood_events > 0);
  check Alcotest.bool "backpressure shed events" true
    (Metrics.counter_value m "events.shed" > 0);
  check Alcotest.int "zero state-bearing events shed" 0
    (Metrics.counter_value m "events.shed.state_bearing");
  check Alcotest.bool "queue depth stayed bounded" true
    (Metrics.gauge_value m "queue.depth"
    <= cap + Metrics.counter_value m "queue.cap_overruns");
  (* The lifecycle ledger must account for every event even under the
     storm: flood, shed, kill-connection eviction and coalescing all leave
     exactly one fate (or a pending entry) per enqueue. *)
  let lc = Server.ledger_counts server in
  check Alcotest.int "fate accounting balances under the flood storm" 0
    lc.Server.lc_balance;
  check Alcotest.bool "the storm exercised the lossy fates" true
    (lc.lc_shed + lc.lc_dropped + lc.lc_evicted > 0);
  Server.disarm_faults server;
  let _late = Workload.launch_n server 3 in
  wm_step ~seed wm;
  Wm.shutdown wm;
  let survivors = adoptable server in
  let wm2 = Wm.start ~resources server in
  wm_step ~seed wm2;
  List.iter
    (fun w ->
      if Wm.find_client wm2 w = None then
        Alcotest.failf "survivor %d not re-adopted after the storm"
          (Xid.to_int w))
    survivors;
  check Alcotest.bool "adoption check was not vacuous" true
    (List.length survivors >= 3)

let suite =
  [
    Alcotest.test_case "200 seeded fault plans, zero crashes" `Quick
      test_chaos_200_seeds;
    Alcotest.test_case "quiet plan is inert" `Quick test_chaos_quiet_plan_is_inert;
    Alcotest.test_case "fault schedule is deterministic" `Quick
      test_chaos_deterministic;
    Alcotest.test_case "metrics account for faults" `Quick
      test_metrics_account_for_faults;
    Alcotest.test_case "flood storm: bounded queues, full re-adoption" `Quick
      test_flood_storm_overload;
    QCheck_alcotest.to_alcotest prop_no_crash_under_random_plans;
  ]
