(* Direct unit tests for the ring buffer's logical-index operations —
   [get], [set] and [remove] — including wrap-around layouts (head past the
   physical middle) and removal at the head and tail.  The shed policy in
   {!Server} folds and removes entries anywhere in the queue through these,
   so they must stay honest under every layout the queue can reach. *)

module Ring = Swm_xlib.Ring

let check = Alcotest.check

(* A ring whose head has walked: capacity 4, push 4, pop 2, push 2 — the
   live run [3;4;5;6] straddles the physical end of the buffer. *)
let wrapped () =
  let r = Ring.create ~capacity:4 () in
  for i = 1 to 4 do
    Ring.push r i
  done;
  ignore (Ring.pop r);
  ignore (Ring.pop r);
  Ring.push r 5;
  Ring.push r 6;
  r

let drain r =
  let rec go acc =
    match Ring.pop r with Some v -> go (v :: acc) | None -> List.rev acc
  in
  go []

let test_get_basics () =
  let r = Ring.create ~capacity:4 () in
  check Alcotest.(option int) "get on empty" None (Ring.get r 0);
  for i = 1 to 5 do
    Ring.push r (i * 10)
  done;
  check Alcotest.(option int) "index 0 is the front" (Some 10) (Ring.get r 0);
  check Alcotest.(option int) "index 2 mid" (Some 30) (Ring.get r 2);
  check Alcotest.(option int) "index 4 is the back" (Some 50) (Ring.get r 4);
  check Alcotest.(option int) "past the end" None (Ring.get r 5);
  check Alcotest.(option int) "negative index" None (Ring.get r (-1))

let test_get_wrapped () =
  let r = wrapped () in
  check Alcotest.int "length" 4 (Ring.length r);
  List.iteri
    (fun i expect ->
      check Alcotest.(option int)
        (Printf.sprintf "wrapped get %d" i)
        (Some expect) (Ring.get r i))
    [ 3; 4; 5; 6 ];
  check Alcotest.(option int) "wrapped past the end" None (Ring.get r 4)

let test_set () =
  let r = wrapped () in
  Ring.set r 0 30;
  Ring.set r 3 60;
  check Alcotest.(list int) "set at head and tail under wrap" [ 30; 4; 5; 60 ]
    (drain r);
  let r = Ring.create ~capacity:4 () in
  Ring.push r 1;
  check Alcotest.bool "set past the end raises" true
    (match Ring.set r 1 9 with
    | () -> false
    | exception Invalid_argument _ -> true);
  check Alcotest.bool "set negative raises" true
    (match Ring.set r (-1) 9 with
    | () -> false
    | exception Invalid_argument _ -> true);
  let empty = Ring.create ~capacity:4 () in
  check Alcotest.bool "set on empty raises" true
    (match Ring.set empty 0 9 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_remove_head_tail () =
  let r = wrapped () in
  check Alcotest.(option int) "remove at head" (Some 3) (Ring.remove r 0);
  check Alcotest.(option int) "new front intact" (Some 4) (Ring.peek r);
  check Alcotest.(option int) "remove at tail" (Some 6)
    (Ring.remove r (Ring.length r - 1));
  check Alcotest.(option int) "new back intact" (Some 5) (Ring.peek_back r);
  check Alcotest.(list int) "order preserved" [ 4; 5 ] (drain r)

let test_remove_middle_wrapped () =
  let r = wrapped () in
  check Alcotest.(option int) "remove middle under wrap" (Some 5)
    (Ring.remove r 2);
  check Alcotest.int "length shrank" 3 (Ring.length r);
  check Alcotest.(list int) "rest kept their order" [ 3; 4; 6 ] (drain r);
  check Alcotest.(option int) "remove on empty" None (Ring.remove r 0)

let test_remove_out_of_range () =
  let r = wrapped () in
  check Alcotest.(option int) "remove past the end" None (Ring.remove r 4);
  check Alcotest.(option int) "remove negative" None (Ring.remove r (-1));
  check Alcotest.int "nothing was disturbed" 4 (Ring.length r)

(* Interleave index ops with growth: the indices must survive the ring
   doubling in place while wrapped. *)
let test_index_ops_across_growth () =
  let r = wrapped () in
  for i = 7 to 12 do
    Ring.push r i
  done;
  check Alcotest.int "grew past the initial capacity" 10 (Ring.length r);
  List.iteri
    (fun i expect ->
      check Alcotest.(option int)
        (Printf.sprintf "post-growth get %d" i)
        (Some expect) (Ring.get r i))
    [ 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ];
  Ring.set r 9 99;
  check Alcotest.(option int) "remove mid after growth" (Some 7) (Ring.remove r 4);
  check Alcotest.(list int) "final order" [ 3; 4; 5; 6; 8; 9; 10; 11; 99 ]
    (drain r)

let suite =
  [
    Alcotest.test_case "get: logical indexing" `Quick test_get_basics;
    Alcotest.test_case "get: wrapped layout" `Quick test_get_wrapped;
    Alcotest.test_case "set: in range and raising" `Quick test_set;
    Alcotest.test_case "remove: at head and tail" `Quick test_remove_head_tail;
    Alcotest.test_case "remove: middle under wrap" `Quick
      test_remove_middle_wrapped;
    Alcotest.test_case "remove: out of range is None" `Quick
      test_remove_out_of_range;
    Alcotest.test_case "index ops survive growth" `Quick
      test_index_ops_across_growth;
  ]
