(* Corner cases and failure injection: clients dying at awkward moments,
   functions applied to degenerate targets, malformed configuration. *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Icons = Swm_core.Icons
module Functions = Swm_core.Functions
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

let fixture ?(extra = "") ?(vdesk = false) () =
  let server = Server.create () in
  let base =
    if vdesk then "swm*rootPanels:\n" else "swm*virtualDesktop: False\nswm*rootPanels:\n"
  in
  let wm = Wm.start ~resources:[ Templates.open_look; base ^ extra ] server in
  (server, wm, Wm.ctx wm)

let client_of wm app = Option.get (Wm.find_client wm (Client_app.window app))

let run ctx ?client text =
  match
    Functions.execute_string ctx (Functions.invocation ?client ~screen:0 ()) text
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "execute: %s" msg

let test_client_dies_mid_move () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  run ctx ~client "f.move";
  (match ctx.Ctx.mode with Ctx.Moving _ -> () | _ -> Alcotest.fail "not moving");
  (* The client dies while the WM is dragging its frame. *)
  Client_app.destroy app;
  ignore (Wm.step wm);
  check Alcotest.bool "unmanaged" true (Wm.find_client wm (Client_app.window app) = None);
  (* Further motion/release must not blow up even though the grab window
     is gone. *)
  Server.warp_pointer server ~screen:0 (Geom.point 400 400);
  Server.press_button server 1;
  Server.release_button server 1;
  ignore (Wm.step wm)

let test_client_dies_while_prompting () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  run ctx "f.iconify";
  (match ctx.Ctx.mode with Ctx.Prompting _ -> () | _ -> Alcotest.fail "not prompting");
  Client_app.destroy app;
  ignore (Wm.step wm);
  (* Click on the now-empty root: prompt resolves to nothing and resets. *)
  Server.warp_pointer server ~screen:0 (Geom.point 500 500);
  Server.press_button server 1;
  ignore (Wm.step wm);
  check Alcotest.bool "idle again" true (ctx.Ctx.mode = Ctx.Idle)

let test_zoom_and_stick_on_undecorated () =
  let server, wm, ctx =
    fixture ~extra:"swm*XTerm*decoration: none\n" ~vdesk:true ()
  in
  let app = Stock.xterm server ~at:(Geom.point 50 50) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  check Alcotest.bool "undecorated" true (Xid.equal client.Ctx.frame client.Ctx.cwin);
  run ctx ~client "f.save f.zoom";
  let g = Server.geometry server client.Ctx.cwin in
  let sw, _ = Server.screen_size server ~screen:0 in
  check Alcotest.bool "zoomed" true (g.w > sw / 2);
  run ctx ~client "f.save f.zoom";
  run ctx ~client "f.stick";
  check Alcotest.bool "stuck" true client.Ctx.sticky;
  check Alcotest.bool "frame on root" true
    (Xid.equal (Server.parent_of server client.Ctx.cwin) (Server.root server ~screen:0));
  run ctx ~client "f.stick";
  check Alcotest.bool "unstuck" false client.Ctx.sticky

let test_delete_twice () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  run ctx ~client "f.delete f.delete";
  ignore (Wm.step wm);
  check Alcotest.bool "gone" true (Wm.find_client wm (Client_app.window app) = None)

let test_missing_decoration_panel () =
  (* Decoration resource names a panel that has no definition: the client
     must still be managed, undecorated. *)
  let server, wm, _ctx = fixture ~extra:"swm*XTerm*decoration: noSuchPanel\n" () in
  let app = Stock.xterm server ~at:(Geom.point 20 20) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  check Alcotest.bool "managed without decoration" true
    (Xid.equal client.Ctx.frame client.Ctx.cwin);
  check Alcotest.bool "mapped" true (Server.is_viewable server client.Ctx.cwin)

let test_decoration_without_client_panel () =
  (* A decoration panel with no [client] sub-panel is a config error; the
     client is parented into the frame itself. *)
  let server, wm, _ctx =
    fixture
      ~extra:
        "Swm*panel.weird: button name +C+0\nswm*XTerm*decoration: weird\n" ()
  in
  let app = Stock.xterm server ~at:(Geom.point 20 20) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  check Alcotest.bool "frame exists" true (Server.window_exists server client.Ctx.frame);
  check Alcotest.bool "client inside frame" true
    (Xid.equal (Server.parent_of server client.Ctx.cwin) client.Ctx.frame)

let test_withdraw_while_iconic () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  let icon_win = Swm_oi.Wobj.window (Option.get client.Ctx.icon_obj) in
  (* Destroy while iconified: the icon must go away too. *)
  Client_app.destroy app;
  ignore (Wm.step wm);
  check Alcotest.bool "unmanaged" true (Wm.find_client wm (Client_app.window app) = None);
  check Alcotest.bool "icon destroyed" false (Server.window_exists server icon_win)

let test_configure_request_while_iconic () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  Client_app.resize_self app (600, 420);
  ignore (Wm.step wm);
  let g = Server.geometry server client.Ctx.cwin in
  check Alcotest.int "resize honoured while iconic" 600 g.w;
  Icons.deiconify ctx client;
  check Alcotest.bool "still iconifiable/deiconifiable" true
    (client.Ctx.state = Prop.Normal)

let test_unknown_menu () =
  let _server, _wm, ctx = fixture () in
  run ctx "f.menu(doesNotExist)";
  check Alcotest.bool "no menu posted" true
    ((Ctx.screen ctx 0).Ctx.active_menu = None)

let test_bad_window_id_function () =
  let _server, _wm, ctx = fixture () in
  (* Nonexistent id: silently no targets. *)
  run ctx "f.iconify(#0xdead)";
  run ctx "f.iconify(#999999)"

let test_iconify_iconified () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  Icons.iconify ctx client;
  check Alcotest.bool "still one icon" true (client.Ctx.icon_obj <> None);
  Icons.deiconify ctx client;
  Icons.deiconify ctx client;
  check Alcotest.bool "normal" true (client.Ctx.state = Prop.Normal)

let test_reparent_cycle_rejected () =
  let server = Server.create () in
  let conn = Server.connect server ~name:"c" in
  let root = Server.root server ~screen:0 in
  let a = Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 10 10) () in
  let b = Server.create_window server conn ~parent:a ~geom:(Geom.rect 0 0 5 5) () in
  Alcotest.check_raises "cycle rejected"
    (Server.Bad_access "reparent would create a cycle") (fun () ->
      Server.reparent_window server conn a ~new_parent:b ~pos:(Geom.point 0 0));
  Alcotest.check_raises "self rejected"
    (Server.Bad_access "reparent would create a cycle") (fun () ->
      Server.reparent_window server conn a ~new_parent:a ~pos:(Geom.point 0 0))

let test_empty_resources () =
  (* No configuration at all: the default template loads (paper §3: "If no
     swm configuration resources have been specified, a default
     configuration can be loaded"). *)
  let server = Server.create () in
  let wm = Wm.start server in
  let app = Stock.xterm server ~at:(Geom.point 10 10) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  check Alcotest.bool "decorated by the default template" true
    (client.Ctx.deco <> None)

let test_malformed_bindings_ignored () =
  let server, wm, _ctx =
    fixture ~extra:"swm*button.name.bindings: total <garbage\n" ()
  in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let name_obj =
    Option.get (Swm_oi.Wobj.find_descendant (Option.get client.Ctx.deco) ~name:"name")
  in
  let abs = Server.root_geometry server (Swm_oi.Wobj.window name_obj) in
  Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 1) (abs.y + 1));
  Server.press_button server 1;
  (* Must not raise; the malformed bindings resource yields no actions. *)
  ignore (Wm.step wm)

let test_wm_restart_under_load () =
  (* Start, load up, shutdown, start again: all clients survive and are
     re-managed; no stale state leaks across instances. *)
  let server = Server.create () in
  let wm1 = Wm.start ~resources:[ Templates.open_look ] server in
  let apps = Swm_clients.Workload.launch_n server 12 in
  ignore (Wm.step wm1);
  Wm.shutdown wm1;
  List.iter
    (fun app ->
      let win = Client_app.window app in
      if Server.window_exists server win then begin
        check Alcotest.bool "on root after shutdown" true
          (Xid.equal (Server.parent_of server win) (Server.root server ~screen:0))
      end)
    apps;
  let wm2 = Wm.start ~resources:[ Templates.open_look ] server in
  ignore (Wm.step wm2);
  let managed =
    List.length (List.filter (fun app -> Wm.find_client wm2 (Client_app.window app) <> None) apps)
  in
  check Alcotest.int "all clients re-managed" 12 managed

(* ---- Overload protection & self-healing ---- *)

module Metrics = Swm_xlib.Metrics
module Health = Swm_xlib.Health
module Event = Swm_xlib.Event
module Recorder = Swm_xlib.Recorder
module Governor = Swm_core.Governor
module Supervisor = Swm_core.Supervisor
module Workload = Swm_clients.Workload

let resources =
  [ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]

let no_quarantine server =
  (* Keep a test focused on backpressure/tiers: health never trips. *)
  Server.set_health_thresholds server
    {
      Swm_xlib.Health.default_thresholds with
      quarantine_score = infinity;
      evict_score = infinity;
    }

let test_backpressure_bounds_queue () =
  let server = Server.create () in
  Server.set_queue_cap server 64;
  no_quarantine server;
  let conn = Server.connect server ~name:"hog" in
  let root = Server.root server ~screen:0 in
  (* More windows than cap slots: coalescing (which folds same-window
     events) cannot absorb the storm, so the shed path must engage. *)
  for _ = 1 to 96 do
    ignore
      (Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 20 20)
         ())
  done;
  Server.flood_conn server conn ~burst:10_000;
  let m = Server.metrics server in
  check Alcotest.bool "pending bounded by the cap" true
    (Server.pending conn <= 64);
  check Alcotest.bool "max observed depth bounded" true
    (Metrics.gauge_value m "queue.depth" <= 64);
  check Alcotest.bool "sheds were counted" true
    (Metrics.counter_value m "events.shed" > 0);
  check Alcotest.int "no state-bearing event shed" 0
    (Metrics.counter_value m "events.shed.state_bearing");
  check Alcotest.bool "connection attributed its sheds" true
    (Server.shed_count conn > 0)

let test_state_bearing_overruns_cap () =
  let server = Server.create () in
  Server.set_queue_cap server 4;
  no_quarantine server;
  let conn = Server.connect server ~name:"tiny" in
  let root = Server.root server ~screen:0 in
  let parent =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 50 50) ()
  in
  Server.select_input server conn parent [ Event.Substructure_notify ];
  (* Twelve state-bearing notifications into a cap-4 queue: every single
     one must arrive — the cap is overrun rather than session state lost. *)
  let kids =
    List.init 12 (fun _ ->
        Server.create_window server conn ~parent ~geom:(Geom.rect 0 0 5 5) ())
  in
  List.iter (fun k -> Server.destroy_window server k) kids;
  let rec drain acc =
    match Server.next_event conn with
    | Some e -> drain (e :: acc)
    | None -> acc
  in
  let destroys =
    List.length
      (List.filter
         (fun e -> Event.kind_name e = "DestroyNotify")
         (drain []))
  in
  check Alcotest.int "every DestroyNotify delivered" 12 destroys;
  check Alcotest.bool "cap overruns counted" true
    (Metrics.counter_value (Server.metrics server) "queue.cap_overruns" > 0);
  check Alcotest.int "still zero state-bearing sheds" 0
    (Metrics.counter_value (Server.metrics server) "events.shed.state_bearing")

let test_health_state_machine () =
  let th = Swm_xlib.Health.default_thresholds in
  let sample ~depth ~shed =
    { Health.depth_ratio = depth; shed; rejected = 0; xerrors = 0; stalls = 0 }
  in
  (* Sustained pressure: quarantine, then eviction. *)
  let h = Health.create () in
  let shed = ref 0 in
  let seen = ref [] in
  for _ = 1 to 6 do
    shed := !shed + 50;
    match Health.observe th h (sample ~depth:1.0 ~shed:!shed) with
    | Health.Became s -> seen := s :: !seen
    | Health.No_change -> ()
  done;
  check
    Alcotest.(list string)
    "escalates one state per tick"
    [ "throttled"; "evicted" ]
    (List.rev_map Health.state_name !seen);
  (* One burst, then calm: hysteresis recovers the connection. *)
  let h = Health.create () in
  (match Health.observe th h (sample ~depth:1.0 ~shed:10) with
  | Health.Became Health.Throttled -> ()
  | _ -> Alcotest.fail "burst should quarantine");
  let recovered = ref false in
  for _ = 1 to 6 do
    match Health.observe th h (sample ~depth:0.0 ~shed:10) with
    | Health.Became Health.Healthy -> recovered := true
    | _ -> ()
  done;
  check Alcotest.bool "calm ticks recover" true !recovered;
  check Alcotest.string "healthy again" "healthy"
    (Health.state_name h.Health.state)

let test_flooder_quarantined_then_evicted () =
  let server = Server.create () in
  Server.set_queue_cap server 32;
  let conn = Server.connect server ~name:"flooder" in
  let root = Server.root server ~screen:0 in
  (* Enough windows that the flood actually sheds (coalescing can't keep
     up), so the health score sees real pressure. *)
  for _ = 1 to 64 do
    ignore
      (Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 20 20)
         ())
  done;
  let m = Server.metrics server in
  let ticks = ref 0 in
  while Server.conn_health conn <> Health.Evicted && !ticks < 50 do
    incr ticks;
    Server.flood_conn server conn ~burst:2000;
    Server.health_tick server
  done;
  check Alcotest.bool "flooder was quarantined on the way" true
    (Metrics.counter_value m "health.quarantined" > 0);
  check Alcotest.string "flooder evicted" "evicted"
    (Health.state_name (Server.conn_health conn));
  check Alcotest.int "eviction counted" 1
    (Metrics.counter_value m "health.evicted")

let test_governor_tier_ladder () =
  let server = Server.create () in
  let wm = Wm.start ~resources server in
  let ctx = Wm.ctx wm in
  Server.set_queue_cap server 32;
  no_quarantine server;
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let conn = Client_app.conn app in
  Server.flood_conn server conn ~burst:2000;
  Governor.tick ctx;
  check Alcotest.string "escalates straight to essential" "essential"
    (Ctx.tier_name ctx.Ctx.tier);
  (* Drain the flooded queue: pressure gone, but restoration is stepped. *)
  while Server.pending conn > 0 do
    ignore (Server.flush_batch conn)
  done;
  for _ = 1 to Governor.restore_calm_ticks do
    Governor.tick ctx
  done;
  check Alcotest.string "one tier back after calm ticks" "reduced"
    (Ctx.tier_name ctx.Ctx.tier);
  for _ = 1 to Governor.restore_calm_ticks do
    Governor.tick ctx
  done;
  check Alcotest.string "full service restored" "full"
    (Ctx.tier_name ctx.Ctx.tier);
  check Alcotest.int "three transitions counted" 3
    (Metrics.counter_value (Server.metrics server) "governor.transitions")

let test_degraded_tier_skips_luxury_work () =
  let server = Server.create () in
  let wm = Wm.start ~resources server in
  let ctx = Wm.ctx wm in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  ctx.Ctx.tier <- Ctx.Tier_reduced;
  Swm_core.Decoration.update_name ctx client;
  Swm_core.Panner.refresh ctx ~screen:0;
  let m = Server.metrics server in
  check Alcotest.bool "title repaint skipped" true
    (Metrics.counter_value m "governor.redraws_skipped" > 0);
  check Alcotest.bool "panner refresh skipped" true
    (Metrics.counter_value m "governor.refreshes_skipped" > 0);
  ctx.Ctx.tier <- Ctx.Tier_full

let test_supervisor_recovers_from_exception () =
  let server = Server.create () in
  Recorder.start (Server.recorder server);
  let sup = Supervisor.create ~resources server in
  let apps = Workload.launch_n server 6 in
  (match Supervisor.step sup with
  | Supervisor.Stepped _ -> ()
  | _ -> Alcotest.fail "expected a normal step");
  let sleeps = ref [] in
  Supervisor.set_sleep sup (fun ms -> sleeps := ms :: !sleeps);
  Supervisor.set_backoff sup ~base_ms:7 ~max_ms:100;
  (match Supervisor.step ~drive:(fun _ -> failwith "boom") sup with
  | Supervisor.Recovered { attempts; _ } ->
      check Alcotest.int "recovered on the first attempt" 1 attempts
  | _ -> Alcotest.fail "expected a recovery");
  check Alcotest.int "one restart" 1 (Supervisor.restarts sup);
  check Alcotest.(list int) "backoff slept once, base delay" [ 7 ] !sleeps;
  let wm2 = Supervisor.wm sup in
  ignore (Wm.step wm2);
  List.iter
    (fun app ->
      let win = Client_app.window app in
      if Server.window_exists server win && Wm.find_client wm2 win = None then
        Alcotest.failf "client %d not re-adopted" (Xid.to_int win))
    apps;
  check Alcotest.bool "recorder saw the recovery" true
    (List.exists
       (fun (e : Recorder.entry) -> e.kind = "supervisor")
       (Recorder.entries (Server.recorder server)))

let test_supervisor_watchdog_stall_recovery () =
  let server = Server.create () in
  Recorder.start (Server.recorder server);
  let sup = Supervisor.create ~resources server in
  let _apps = Workload.launch_n server 6 in
  (* Every dispatch now overruns the watchdog: the stall burst must turn
     into a supervised recovery, not a frozen WM. *)
  (Supervisor.wm sup).Ctx.watchdog_threshold_ns <- 0;
  (match Supervisor.step sup with
  | Supervisor.Recovered { reason; _ } ->
      check Alcotest.bool "reason names the watchdog" true
        (Astring_contains.contains reason "watchdog")
  | _ -> Alcotest.fail "expected a watchdog-triggered recovery");
  check Alcotest.bool "fresh WM has a sane threshold" true
    ((Supervisor.wm sup).Ctx.watchdog_threshold_ns > 0);
  check Alcotest.bool "supervisor still in service" true
    (not (Supervisor.gave_up sup));
  let entries = Recorder.entries (Server.recorder server) in
  check Alcotest.bool "stall recorded" true
    (List.exists (fun (e : Recorder.entry) -> e.kind = "stall") entries);
  check Alcotest.bool "recovery recorded" true
    (List.exists (fun (e : Recorder.entry) -> e.kind = "supervisor") entries)

let test_supervisor_gives_up () =
  let server = Server.create () in
  let sup = Supervisor.create ~resources server in
  Supervisor.set_max_restarts sup 0;
  (match Supervisor.recover sup ~reason:"test" with
  | Supervisor.Gave_up _ -> ()
  | _ -> Alcotest.fail "expected give-up with a zero restart budget");
  check Alcotest.bool "inert afterwards" true
    (match Supervisor.step sup with
    | Supervisor.Gave_up _ -> true
    | _ -> false);
  check Alcotest.int "give-up counted" 1
    (Metrics.counter_value (Server.metrics server) "supervisor.giveups")

let suite =
  [
    Alcotest.test_case "client dies mid-move" `Quick test_client_dies_mid_move;
    Alcotest.test_case "client dies while prompting" `Quick
      test_client_dies_while_prompting;
    Alcotest.test_case "zoom/stick on undecorated client" `Quick
      test_zoom_and_stick_on_undecorated;
    Alcotest.test_case "f.delete twice" `Quick test_delete_twice;
    Alcotest.test_case "missing decoration panel" `Quick test_missing_decoration_panel;
    Alcotest.test_case "decoration without client panel" `Quick
      test_decoration_without_client_panel;
    Alcotest.test_case "destroy while iconic" `Quick test_withdraw_while_iconic;
    Alcotest.test_case "ConfigureRequest while iconic" `Quick
      test_configure_request_while_iconic;
    Alcotest.test_case "unknown menu name" `Quick test_unknown_menu;
    Alcotest.test_case "bad window ids in functions" `Quick test_bad_window_id_function;
    Alcotest.test_case "double iconify/deiconify" `Quick test_iconify_iconified;
    Alcotest.test_case "reparent cycles rejected" `Quick test_reparent_cycle_rejected;
    Alcotest.test_case "no resources: default template" `Quick test_empty_resources;
    Alcotest.test_case "malformed bindings ignored" `Quick
      test_malformed_bindings_ignored;
    Alcotest.test_case "WM restart under load" `Quick test_wm_restart_under_load;
    Alcotest.test_case "backpressure bounds the queue" `Quick
      test_backpressure_bounds_queue;
    Alcotest.test_case "state-bearing events overrun, never shed" `Quick
      test_state_bearing_overruns_cap;
    Alcotest.test_case "health state machine with hysteresis" `Quick
      test_health_state_machine;
    Alcotest.test_case "flooder quarantined then evicted" `Quick
      test_flooder_quarantined_then_evicted;
    Alcotest.test_case "governor walks the tier ladder" `Quick
      test_governor_tier_ladder;
    Alcotest.test_case "degraded tier skips luxury work" `Quick
      test_degraded_tier_skips_luxury_work;
    Alcotest.test_case "supervisor recovers from an escaped exception" `Quick
      test_supervisor_recovers_from_exception;
    Alcotest.test_case "watchdog stalls trigger supervised recovery" `Quick
      test_supervisor_watchdog_stall_recovery;
    Alcotest.test_case "supervisor gives up when the budget is spent" `Quick
      test_supervisor_gives_up;
  ]
