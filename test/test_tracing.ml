(* The span tracer: nesting, exception safety, ring overwrite, the slow-op
   log, the Chrome trace-event exporter, and the one property that matters
   most — turning tracing on must not change what the window manager does. *)

module Tracing = Swm_xlib.Tracing
module Metrics = Swm_xlib.Metrics
module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Wm = Swm_core.Wm
module Swmcmd = Swm_core.Swmcmd
module Templates = Swm_core.Templates
module Stock = Swm_clients.Stock

let check = Alcotest.check

(* -------- a minimal JSON validator --------

   yojson is not a dependency, so exports are validated with a small
   recursive-descent parser: it accepts exactly the JSON grammar and fails
   loudly on anything else (unbalanced brackets, bad escapes, trailing
   text). *)

exception Bad_json of string

let validate_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let is_num c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | Some _ | None -> fail "expected a value"
  and lit w = String.iter (fun c -> if peek () = Some c then advance () else fail w) w
  and number () =
    while (match peek () with Some c -> is_num c | None -> false) do
      advance ()
    done
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with None -> fail "bad escape" | Some _ -> advance ());
          go ()
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      elems ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing text"

(* -------- recording -------- *)

let test_disabled_records_nothing () =
  let t = Tracing.create () in
  let r = Tracing.span t "a" (fun () -> 41 + 1) in
  Tracing.instant t "i";
  check Alcotest.int "thunk result passes through" 42 r;
  check Alcotest.int "no events" 0 (List.length (Tracing.events t));
  check Alcotest.int "no count" 0 (Tracing.event_count t)

let test_spans_nest () =
  let t = Tracing.create () in
  Tracing.start t;
  Tracing.span t "outer" (fun () ->
      Tracing.span t "inner" (fun () -> ());
      Tracing.instant t "mark");
  Tracing.stop t;
  match Tracing.events t with
  | [ inner; mark; outer ] ->
      check Alcotest.string "inner name" "inner" inner.Tracing.ev_name;
      check Alcotest.string "outer name" "outer" outer.Tracing.ev_name;
      check Alcotest.int "inner depth" 1 inner.Tracing.ev_depth;
      check Alcotest.int "mark depth" 1 mark.Tracing.ev_depth;
      check Alcotest.int "outer depth" 0 outer.Tracing.ev_depth;
      check Alcotest.bool "inner starts inside outer" true
        (inner.Tracing.ev_ts >= outer.Tracing.ev_ts);
      check Alcotest.bool "inner ends inside outer" true
        (inner.Tracing.ev_ts + inner.Tracing.ev_dur
        <= outer.Tracing.ev_ts + outer.Tracing.ev_dur)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_span_closes_on_exception () =
  let t = Tracing.create () in
  Tracing.start t;
  (try
     Tracing.span t "outer" (fun () ->
         Tracing.span t "boom" (fun () -> failwith "kaboom"))
   with Failure _ -> ());
  (* Both spans must have closed despite the exception... *)
  check Alcotest.int "both spans recorded" 2 (List.length (Tracing.events t));
  (* ...and the stack must be balanced: a new toplevel span lands at depth 0. *)
  Tracing.span t "after" (fun () -> ());
  let after = List.nth (Tracing.events t) 2 in
  check Alcotest.int "stack rebalanced" 0 after.Tracing.ev_depth

let test_ring_overwrite_keeps_newest () =
  let t = Tracing.create ~capacity:8 () in
  Tracing.start t;
  for i = 0 to 19 do
    Tracing.instant t (Printf.sprintf "i%d" i)
  done;
  let names = List.map (fun e -> e.Tracing.ev_name) (Tracing.events t) in
  check (Alcotest.list Alcotest.string) "newest 8 survive, oldest first"
    [ "i12"; "i13"; "i14"; "i15"; "i16"; "i17"; "i18"; "i19" ]
    names;
  check Alcotest.int "total count" 20 (Tracing.event_count t);
  check Alcotest.int "dropped" 12 (Tracing.dropped t)

let test_start_clears_stop_keeps () =
  let t = Tracing.create () in
  Tracing.start t;
  Tracing.instant t "one";
  Tracing.stop t;
  check Alcotest.int "kept after stop" 1 (List.length (Tracing.events t));
  Tracing.instant t "ignored";
  check Alcotest.int "nothing recorded while stopped" 1
    (List.length (Tracing.events t));
  Tracing.start t;
  check Alcotest.int "start clears" 0 (List.length (Tracing.events t))

(* -------- slow-op log -------- *)

let test_slow_log_ancestry () =
  let t = Tracing.create () in
  Tracing.set_slow_threshold_ns t 0;
  (* every span qualifies *)
  Tracing.start t;
  Tracing.span t "grand" (fun () ->
      Tracing.span t "parent" (fun () ->
          Tracing.span t "leaf" ~attrs:[ ("k", "v") ] (fun () -> ())));
  match Tracing.slow_log t with
  | [ leaf; parent; grand ] ->
      check Alcotest.string "innermost first closed" "leaf" leaf.Tracing.slow_name;
      check (Alcotest.list Alcotest.string) "leaf ancestry outermost first"
        [ "grand"; "parent" ] leaf.Tracing.slow_ancestry;
      check (Alcotest.list Alcotest.string) "parent ancestry" [ "grand" ]
        parent.Tracing.slow_ancestry;
      check (Alcotest.list Alcotest.string) "grand ancestry" []
        grand.Tracing.slow_ancestry;
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "attrs kept"
        [ ("k", "v") ]
        leaf.Tracing.slow_attrs
  | l -> Alcotest.failf "expected 3 slow entries, got %d" (List.length l)

let test_slow_log_capped () =
  let t = Tracing.create ~slow_capacity:4 () in
  Tracing.set_slow_threshold_ns t 0;
  Tracing.start t;
  for i = 0 to 9 do
    Tracing.span t (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun e -> e.Tracing.slow_name) (Tracing.slow_log t) in
  check (Alcotest.list Alcotest.string) "newest 4, oldest first"
    [ "s6"; "s7"; "s8"; "s9" ] names

let test_fast_spans_not_slow () =
  let t = Tracing.create () in
  (* default threshold 10ms: a trivial span can never qualify *)
  Tracing.start t;
  Tracing.span t "quick" (fun () -> ());
  check Alcotest.int "slow log empty" 0 (List.length (Tracing.slow_log t))

(* -------- export -------- *)

let test_chrome_json_parses () =
  let t = Tracing.create () in
  Tracing.start t;
  Tracing.span t "outer \"quoted\"" ~attrs:[ ("weird", "a\\b\"c\nd") ]
    (fun () ->
      Tracing.instant t "tick";
      Tracing.span t "inner" (fun () -> ()));
  Tracing.stop t;
  let json = Tracing.to_chrome_json t in
  (try validate_json json
   with Bad_json msg -> Alcotest.failf "invalid chrome JSON (%s):\n%s" msg json);
  check Alcotest.bool "has traceEvents" true
    (Astring_contains.contains json "\"traceEvents\"");
  check Alcotest.bool "has complete-event phase" true
    (Astring_contains.contains json "\"ph\":\"X\"");
  check Alcotest.bool "has instant phase" true
    (Astring_contains.contains json "\"ph\":\"i\"")

let test_slow_log_json_parses () =
  let t = Tracing.create () in
  Tracing.set_slow_threshold_ns t 0;
  Tracing.start t;
  Tracing.span t "a" (fun () -> Tracing.span t "b" ~attrs:[ ("x", "1") ] (fun () -> ()));
  let json = Tracing.slow_log_json t in
  (try validate_json json
   with Bad_json msg -> Alcotest.failf "invalid slow-log JSON (%s):\n%s" msg json);
  check Alcotest.bool "ancestry present" true
    (Astring_contains.contains json "\"ancestry\":[\"a\"]")

let test_empty_exports () =
  let t = Tracing.create () in
  validate_json (Tracing.to_chrome_json t);
  validate_json (Tracing.slow_log_json t)

(* -------- metrics quantiles -------- *)

let test_hist_quantile () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  check (Alcotest.float 0.0001) "empty" 0. (Metrics.hist_quantile h 0.5);
  (* 100 samples of the same value: every quantile must land in that
     sample's bucket (log2 buckets: 100 lives in (63, 127]). *)
  for _ = 1 to 100 do
    Metrics.observe h 100
  done;
  let p50 = Metrics.hist_quantile h 0.5 and p99 = Metrics.hist_quantile h 0.99 in
  check Alcotest.bool "p50 within bucket" true (p50 > 63. && p50 <= 100.);
  check Alcotest.bool "p99 within bucket" true (p99 > 63. && p99 <= 100.);
  check Alcotest.bool "monotone" true (p50 <= p99);
  (* A spread distribution: quantiles ordered and bounded by the max. *)
  let m2 = Metrics.create () in
  let h2 = Metrics.histogram m2 "h2" in
  for i = 0 to 999 do
    Metrics.observe h2 i
  done;
  let q10 = Metrics.hist_quantile h2 0.1
  and q50 = Metrics.hist_quantile h2 0.5
  and q99 = Metrics.hist_quantile h2 0.99 in
  check Alcotest.bool "ordered" true (q10 <= q50 && q50 <= q99);
  check Alcotest.bool "bounded" true (q99 <= 999.);
  (* log2 buckets put the true p50 (500) in (511, 1023] or (255, 511]:
     allow the documented factor-of-two slack. *)
  check Alcotest.bool "p50 within 2x" true (q50 >= 250. && q50 <= 1000.)

let test_metrics_json_has_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 1; 2; 3; 100 ];
  let json = Metrics.to_json m in
  validate_json json;
  check Alcotest.bool "p50 present" true
    (Astring_contains.contains json "\"p50\"");
  check Alcotest.bool "p99 present" true
    (Astring_contains.contains json "\"p99\"")

(* -------- tracing must not change WM behaviour -------- *)

let cmd_gen =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun (x, y) -> Printf.sprintf "f.panTo(%d,%d)" x y)
          (pair (int_range 0 2200) (int_range 0 1700));
        map
          (fun (dx, dy) -> Printf.sprintf "f.pan(%d,%d)" dx dy)
          (pair (int_range (-400) 400) (int_range (-400) 400));
        return "f.iconify(XTerm)";
        return "f.deiconify(XTerm)";
        return "f.raise(XTerm)";
        return "f.lower(XClock)";
        return "f.raiseLower(XClock)";
        return "f.circulateUp";
        return "f.exec(beep)";
        return "definitely not a function";
        (* the error path must be identical too *)
      ])

let final_state ~traced cmds =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let _xterm = Stock.xterm server ~at:(Geom.point 60 80) () in
  let _xclock = Stock.xclock server ~at:(Geom.point 600 60) () in
  ignore (Wm.step wm);
  if traced then Tracing.start (Server.tracer server);
  let sender = Server.connect server ~name:"driver" in
  List.iter
    (fun cmd ->
      Swmcmd.send server sender ~screen:0 cmd;
      ignore (Wm.step wm))
    cmds;
  ignore (Wm.step wm);
  Wm.render_screen wm ~screen:0

let prop_tracing_transparent =
  QCheck2.Test.make ~name:"tracing on/off reaches identical WM state" ~count:30
    QCheck2.Gen.(list_size (int_range 1 25) cmd_gen)
    (fun cmds -> String.equal (final_state ~traced:false cmds) (final_state ~traced:true cmds))

let suite =
  [
    Alcotest.test_case "disabled tracer records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "spans nest" `Quick test_spans_nest;
    Alcotest.test_case "span closes on exception" `Quick
      test_span_closes_on_exception;
    Alcotest.test_case "ring overwrite keeps newest" `Quick
      test_ring_overwrite_keeps_newest;
    Alcotest.test_case "start clears, stop keeps" `Quick
      test_start_clears_stop_keeps;
    Alcotest.test_case "slow log ancestry" `Quick test_slow_log_ancestry;
    Alcotest.test_case "slow log capped" `Quick test_slow_log_capped;
    Alcotest.test_case "fast spans not slow" `Quick test_fast_spans_not_slow;
    Alcotest.test_case "chrome JSON parses" `Quick test_chrome_json_parses;
    Alcotest.test_case "slow-log JSON parses" `Quick test_slow_log_json_parses;
    Alcotest.test_case "empty exports parse" `Quick test_empty_exports;
    Alcotest.test_case "hist_quantile estimates" `Quick test_hist_quantile;
    Alcotest.test_case "metrics JSON has quantiles" `Quick
      test_metrics_json_has_quantiles;
    QCheck_alcotest.to_alcotest prop_tracing_transparent;
  ]
