(* Profiling suite: bounded-cardinality labeled metrics (cap, "other"
   overflow bucket, label_overflow accounting, Prometheus label escaping),
   the span-sink call-tree aggregation (including consistency across
   Tracing ring overwrite — the sink fires at span close, so the tree never
   depends on what the ring still holds), GC/allocation telemetry, the
   collapsed-stack flamegraph export, and the f.profile / f.flame verbs
   end to end.

   The Prometheus output here is pushed through the same format validator
   the observability suite uses, so labeled series and escaped values are
   checked against the grammar, not just eyeballed. *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Metrics = Swm_xlib.Metrics
module Tracing = Swm_xlib.Tracing
module Profile = Swm_xlib.Profile
module Json = Swm_xlib.Json
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Swmcmd = Swm_core.Swmcmd
module Templates = Swm_core.Templates
module Stock = Swm_clients.Stock

let check = Alcotest.check
let contains = Astring_contains.contains

(* -------- labeled families: basics, cap, overflow -------- *)

let test_labeled_basics () =
  let m = Metrics.create () in
  let fam = Metrics.counter_family m ~key:"conn" "events.by_conn" in
  check Alcotest.string "family key" "conn" (Metrics.counter_family_key fam);
  let a = Metrics.labeled_counter fam "xterm" in
  let b = Metrics.labeled_counter fam "xclock" in
  Metrics.incr a;
  Metrics.incr a;
  Metrics.incr b;
  check Alcotest.int "xterm series" 2
    (Metrics.labeled_counter_value m "events.by_conn" "xterm");
  check Alcotest.int "xclock series" 1
    (Metrics.labeled_counter_value m "events.by_conn" "xclock");
  check Alcotest.int "missing label reads 0" 0
    (Metrics.labeled_counter_value m "events.by_conn" "nope");
  check Alcotest.int "missing family reads 0" 0
    (Metrics.labeled_counter_value m "nope" "xterm");
  check (Alcotest.list Alcotest.string) "labels sorted"
    [ "xclock"; "xterm" ]
    (Metrics.counter_family_labels fam);
  (* Same name returns the same family; the handle stays valid. *)
  let fam2 = Metrics.counter_family m ~key:"ignored" "events.by_conn" in
  Metrics.incr (Metrics.labeled_counter fam2 "xterm");
  check Alcotest.int "find-or-create shares series" 3
    (Metrics.labeled_counter_value m "events.by_conn" "xterm");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "family_top orders by value then label"
    [ ("xterm", 3); ("xclock", 1) ]
    (Metrics.family_top fam 2);
  let top = Metrics.top_json m () in
  check Alcotest.bool "top_json mentions the family" true
    (contains top "events.by_conn");
  (match Json.parse top with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "top_json does not parse: %s" msg);
  match Json.parse (Metrics.to_json m) with
  | Ok json ->
      check Alcotest.bool "to_json has a labeled section" true
        (Json.member "labeled" json <> None)
  | Error msg -> Alcotest.failf "to_json does not parse: %s" msg

let test_cardinality_cap () =
  let m = Metrics.create () in
  let fam = Metrics.counter_family m ~max_series:32 ~key:"fn" "calls" in
  for i = 1 to 40 do
    Metrics.incr (Metrics.labeled_counter fam (Printf.sprintf "fn%02d" i))
  done;
  (* 32 real series; the 8 over-cap lookups all land in "other". *)
  let labels = Metrics.counter_family_labels fam in
  check Alcotest.int "series capped at max + other" 33 (List.length labels);
  check Alcotest.bool "other bucket present" true (List.mem "other" labels);
  check Alcotest.int "other absorbs the overflow" 8
    (Metrics.labeled_counter_value m "calls" "other");
  check Alcotest.int "each rejected lookup is counted" 8
    (Metrics.counter_value m "metrics.label_overflow");
  check Alcotest.int "early label kept its own series" 1
    (Metrics.labeled_counter_value m "calls" "fn01");
  (* A cached handle for an existing series still works at capacity, and
     re-looking-up an existing label is not an overflow. *)
  Metrics.incr (Metrics.labeled_counter fam "fn01");
  check Alcotest.int "existing label still routable" 2
    (Metrics.labeled_counter_value m "calls" "fn01");
  check Alcotest.int "no spurious overflow" 8
    (Metrics.counter_value m "metrics.label_overflow");
  (* reset keeps registrations but zeroes every series. *)
  Metrics.reset m;
  check Alcotest.int "reset zeroes labeled series" 0
    (Metrics.labeled_counter_value m "calls" "fn01")

(* -------- Prometheus: labeled series and label-value escaping -------- *)

let test_prometheus_labels () =
  let m = Metrics.create () in
  let fam = Metrics.counter_family m ~key:"conn" "events.by_conn" in
  (* A label value exercising every escape the format defines: backslash,
     double quote, newline. *)
  let nasty = "a\\b\"c\nd" in
  Metrics.incr (Metrics.labeled_counter fam nasty);
  Metrics.incr (Metrics.labeled_counter fam "plain");
  let hfam = Metrics.histogram_family m ~key:"conn" "lat.by_conn" in
  Metrics.observe (Metrics.labeled_histogram hfam "plain") 5;
  let text = Metrics.to_prometheus m in
  check Alcotest.bool "backslash+quote+newline escaped" true
    (contains text "conn=\"a\\\\b\\\"c\\nd\"");
  check Alcotest.bool "no raw newline leaks into a sample" false
    (contains text "c\nd\"");
  check Alcotest.bool "labeled histogram emits buckets" true
    (contains text "swm_lat_by_conn_bucket{conn=\"plain\",le=");
  (* The observability suite's grammar validator must accept the labeled
     output — including the escaped value. *)
  Test_observability.validate_prometheus text

(* -------- span-tree aggregation -------- *)

let standalone () =
  let m = Metrics.create () in
  let tr = Tracing.create ~capacity:64 () in
  (m, tr, Profile.create ~metrics:m ~tracer:tr ())

let test_span_tree () =
  let _, tr, p = standalone () in
  Profile.start p;
  for _ = 1 to 3 do
    Tracing.span tr "dispatch" (fun () ->
        Tracing.span tr "decode" (fun () -> ());
        Tracing.span tr "decode" (fun () -> ());
        Tracing.span tr "redraw" (fun () -> ()))
  done;
  Tracing.span tr "idle" (fun () -> ());
  Profile.stop p;
  match Profile.roots p with
  | [ dispatch; idle ] ->
      check Alcotest.string "roots name-sorted" "dispatch" dispatch.Profile.name;
      check Alcotest.string "second root" "idle" idle.Profile.name;
      check Alcotest.int "root count aggregates" 3 dispatch.Profile.count;
      (match dispatch.Profile.children with
      | [ decode; redraw ] ->
          check Alcotest.string "child 1" "decode" decode.Profile.name;
          check Alcotest.int "sibling spans merge" 6 decode.Profile.count;
          check Alcotest.string "child 2" "redraw" redraw.Profile.name;
          check Alcotest.int "redraw count" 3 redraw.Profile.count;
          check Alcotest.bool "parent total covers children" true
            (dispatch.Profile.total_ns
            >= decode.Profile.total_ns + redraw.Profile.total_ns)
      | kids ->
          Alcotest.failf "expected 2 children, got %d" (List.length kids));
      check Alcotest.bool "self = total - children" true
        (dispatch.Profile.self_ns <= dispatch.Profile.total_ns)
  | roots -> Alcotest.failf "expected 2 roots, got %d" (List.length roots)

let standalone_small () =
  let m = Metrics.create () in
  let tr = Tracing.create ~capacity:4 () in
  (m, tr, Profile.create ~metrics:m ~tracer:tr ())

let test_ring_overwrite_consistency () =
  (* A 4-slot ring under 500 spans: the Chrome export can only see the
     tail, but the profile tree is fed by the sink at close time, so it
     still accounts for every span. *)
  let _, tr, p = standalone_small () in
  Profile.start p;
  for _ = 1 to 500 do
    Tracing.span tr "outer" (fun () -> Tracing.span tr "inner" (fun () -> ()))
  done;
  Profile.stop p;
  check Alcotest.bool "ring actually overwrote" true (Tracing.dropped tr > 0);
  (match Profile.roots p with
  | [ outer ] ->
      check Alcotest.int "tree counts all 500 outer spans" 500
        outer.Profile.count;
      (match outer.Profile.children with
      | [ inner ] ->
          check Alcotest.int "and all 500 inner spans" 500 inner.Profile.count
      | _ -> Alcotest.fail "expected one child")
  | _ -> Alcotest.fail "expected one root");
  check Alcotest.bool "totals survive overwrite" true
    (Profile.root_total_ns p > 0)

let test_alloc_attribution () =
  let _, tr, p = standalone () in
  Profile.start p;
  let sink = ref [] in
  Tracing.span tr "alloc-heavy" (fun () ->
      for i = 0 to 999 do
        sink := (i, i) :: !sink
      done);
  Tracing.span tr "alloc-light" (fun () -> ());
  Profile.stop p;
  ignore (Sys.opaque_identity !sink);
  let by_name name =
    match List.find_opt (fun f -> f.Profile.name = name) (Profile.roots p) with
    | Some f -> f
    | None -> Alcotest.failf "no %s frame" name
  in
  let heavy = by_name "alloc-heavy" and light = by_name "alloc-light" in
  (* 1000 three-word cons cells plus tuples: thousands of minor words. *)
  check Alcotest.bool "allocation attributed to the allocating span" true
    (heavy.Profile.alloc_words > 1000.);
  check Alcotest.bool "empty span allocates (almost) nothing" true
    (light.Profile.alloc_words < heavy.Profile.alloc_words /. 10.)

let test_collapsed_export () =
  let _, tr, p = standalone () in
  Profile.start p;
  Tracing.span tr "wm dispatch" (fun () ->
      Tracing.span tr "pan;to" (fun () -> ()));
  Profile.stop p;
  let text = Profile.to_collapsed p in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  check Alcotest.bool "collapsed export non-empty" true (lines <> []);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "no value separator: %s" line
      | Some sp ->
          let stack = String.sub line 0 sp in
          let value =
            String.sub line (sp + 1) (String.length line - sp - 1)
          in
          check Alcotest.bool ("positive self value: " ^ line) true
            (match int_of_string_opt value with
            | Some v -> v > 0
            | None -> false);
          (* Frame separators stay unambiguous: the only ';' are the ones
             the format inserts, and stacks carry no spaces. *)
          String.iter (fun c -> assert (c <> ' ')) stack)
    lines;
  check Alcotest.bool "space in span name mapped" true
    (contains text "wm_dispatch");
  check Alcotest.bool "semicolon in span name mapped" true
    (contains text "wm_dispatch;pan_to")

let test_disarmed_is_inert () =
  let m, tr, p = standalone () in
  (* Never started: sections run their thunks, nothing is recorded. *)
  let r = Profile.event_section p (fun () -> 42) in
  check Alcotest.int "event_section passes the result through" 42 r;
  Tracing.start tr;
  Tracing.span tr "spanned-without-profiler" (fun () -> ());
  check Alcotest.int "no events counted" 0 (Profile.events p);
  check (Alcotest.list Alcotest.string) "no tree" []
    (List.map (fun f -> f.Profile.name) (Profile.roots p));
  check Alcotest.string "collapsed export empty" "" (Profile.to_collapsed p);
  check Alcotest.int "no GC samples" 0
    (Metrics.hist_count (Metrics.histogram m "gc.minor_words_per_event"));
  (* Arm/disarm round-trip restores the tracer to its pre-profile state. *)
  Tracing.stop tr;
  Profile.start p;
  check Alcotest.bool "start arms" true (Profile.armed p);
  check Alcotest.bool "start arms the tracer" true (Tracing.enabled tr);
  Profile.stop p;
  check Alcotest.bool "stop restores tracer state" false (Tracing.enabled tr)

(* -------- GC telemetry through the event section -------- *)

let test_gc_telemetry () =
  let m, _, p = standalone () in
  Profile.start p;
  let sink = ref [] in
  for _ = 1 to 10 do
    Profile.event_section p (fun () ->
        for i = 0 to 499 do
          sink := i :: !sink
        done)
  done;
  Profile.stop p;
  ignore (Sys.opaque_identity !sink);
  check Alcotest.int "one GC sample per event" 10
    (Metrics.hist_count (Metrics.histogram m "gc.minor_words_per_event"));
  check Alcotest.bool "minor words measured" true
    (Metrics.hist_sum (Metrics.histogram m "gc.minor_words_per_event") > 0);
  check Alcotest.int "events counted" 10 (Profile.events p);
  check Alcotest.bool "dispatch wall accumulated" true
    (Profile.dispatch_wall_ns p > 0)

(* -------- f.profile / f.flame end to end -------- *)

let fixture () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let _xterm = Stock.xterm server ~at:(Geom.point 60 80) () in
  let _xclock = Stock.xclock server ~at:(Geom.point 600 60) () in
  ignore (Wm.step wm);
  (server, wm)

let roundtrip server wm sender line =
  Swmcmd.send server sender ~screen:0 line;
  ignore (Wm.step wm);
  match Swmcmd.read_result server ~screen:0 with
  | Some text -> text
  | None -> Alcotest.failf "no SWM_RESULT reply to %s" line

let drive_storm server wm sender =
  for i = 1 to 10 do
    ignore
      (roundtrip server wm sender
         (Printf.sprintf "f.panTo(%d,%d)" (i * 120) (i * 80)))
  done;
  for _ = 1 to 3 do
    ignore (roundtrip server wm sender "f.iconify(XTerm)");
    ignore (roundtrip server wm sender "f.deiconify(XTerm)")
  done

let test_f_profile_verbs () =
  let server, wm = fixture () in
  let sender = Server.connect server ~name:"cmd" in
  let started = roundtrip server wm sender "f.profile(start)" in
  check Alcotest.bool "start acknowledges" true (contains started "started");
  drive_storm server wm sender;
  ignore (roundtrip server wm sender "f.profile(stop)");
  let dump = roundtrip server wm sender "f.profile(dump)" in
  match Json.parse dump with
  | Error msg -> Alcotest.failf "f.profile(dump) does not parse: %s" msg
  | Ok json ->
      let int_field name =
        match Option.bind (Json.member name json) Json.to_int with
        | Some v -> v
        | None -> Alcotest.failf "dump missing %s" name
      in
      check Alcotest.bool "events profiled" true (int_field "events" > 0);
      check Alcotest.bool "dispatch wall measured" true
        (int_field "dispatch_wall_ns" > 0);
      (* The acceptance bound: the tree's root frames account for >= 95%
         of the dispatch wall time the probe measured. *)
      let coverage =
        match Option.bind (Json.member "coverage" json) Json.to_float with
        | Some c -> c
        | None -> Alcotest.fail "dump missing coverage"
      in
      check Alcotest.bool
        (Printf.sprintf "coverage %.3f >= 0.95" coverage)
        true (coverage >= 0.95);
      check Alcotest.bool "tree has a dispatch root" true
        (contains dump "wm.dispatch");
      (* Attribution rode along: the always-on families saw the storm. *)
      let m = Server.metrics server in
      check Alcotest.bool "per-conn delivery attributed" true
        (Metrics.labeled_counter_value m "events.delivered.by_conn" "swm" > 0);
      check Alcotest.bool "per-function calls attributed" true
        (Metrics.labeled_counter_value m "functions.calls" "f.panto" > 0);
      check Alcotest.bool "per-event-kind dispatch attributed" true
        (Metrics.labeled_counter_value m "wm.dispatch.events" "PropertyNotify"
        > 0);
      let stats = roundtrip server wm sender "f.stats" in
      (match Json.parse stats with
      | Ok sjson ->
          check Alcotest.bool "f.stats carries the top section" true
            (Json.member "top" sjson <> None)
      | Error msg -> Alcotest.failf "f.stats does not parse: %s" msg)

let test_f_flame () =
  let server, wm = fixture () in
  let sender = Server.connect server ~name:"cmd" in
  ignore (roundtrip server wm sender "f.profile(start)");
  drive_storm server wm sender;
  ignore (roundtrip server wm sender "f.profile(stop)");
  let path = Filename.temp_file "swm-test" "-flame.txt" in
  let reply = roundtrip server wm sender (Printf.sprintf "f.flame(%s)" path) in
  (match Json.parse reply with
  | Error msg -> Alcotest.failf "f.flame reply does not parse: %s" msg
  | Ok json ->
      check Alcotest.bool "reply names the file" true (contains reply path);
      let frames =
        match Option.bind (Json.member "frames" json) Json.to_int with
        | Some v -> v
        | None -> Alcotest.fail "reply missing frames"
      in
      check Alcotest.bool "non-empty flamegraph" true (frames > 0);
      let content = In_channel.with_open_text path In_channel.input_all in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' content)
      in
      check Alcotest.int "reply frame count matches the file" frames
        (List.length lines);
      check Alcotest.bool "stacks rooted in the dispatch frames" true
        (List.exists (fun l -> contains l "wm.dispatch") lines));
  Sys.remove path;
  (* Bad argument paths stay inside the reply channel. *)
  let err = roundtrip server wm sender "f.flame" in
  check Alcotest.bool "missing path is an in-band error" true
    (contains err "error")

let suite =
  [
    Alcotest.test_case "labeled counter families" `Quick test_labeled_basics;
    Alcotest.test_case "cardinality cap and other bucket" `Quick
      test_cardinality_cap;
    Alcotest.test_case "prometheus labels and escaping" `Quick
      test_prometheus_labels;
    Alcotest.test_case "span-tree aggregation" `Quick test_span_tree;
    Alcotest.test_case "tree consistent across ring overwrite" `Quick
      test_ring_overwrite_consistency;
    Alcotest.test_case "allocation attribution per frame" `Quick
      test_alloc_attribution;
    Alcotest.test_case "collapsed-stack export" `Quick test_collapsed_export;
    Alcotest.test_case "disarmed profiler is inert" `Quick
      test_disarmed_is_inert;
    Alcotest.test_case "gc telemetry per event" `Quick test_gc_telemetry;
    Alcotest.test_case "f.profile verbs end to end" `Quick
      test_f_profile_verbs;
    Alcotest.test_case "f.flame writes a flamegraph" `Quick test_f_flame;
  ]
