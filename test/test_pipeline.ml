(* The batched, coalescing event pipeline: ring buffers, X-style event
   compression, batch wire frames and the metrics that watch them. *)

module Ring = Swm_xlib.Ring
module Metrics = Swm_xlib.Metrics
module Server = Swm_xlib.Server
module Wire = Swm_xlib.Wire
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Event = Swm_xlib.Event
module Region = Swm_xlib.Region

let check = Alcotest.check

(* -------- ring buffer -------- *)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 () in
  (* Interleave pushes and pops so head walks around the buffer, then grow
     past the initial capacity. *)
  for i = 1 to 3 do
    Ring.push r i
  done;
  check Alcotest.(option int) "pop 1" (Some 1) (Ring.pop r);
  check Alcotest.(option int) "pop 2" (Some 2) (Ring.pop r);
  for i = 4 to 12 do
    Ring.push r i
  done;
  check Alcotest.int "length" 10 (Ring.length r);
  check Alcotest.(option int) "peek oldest" (Some 3) (Ring.peek r);
  check Alcotest.(option int) "peek newest" (Some 12) (Ring.peek_back r);
  Ring.replace_back r 99;
  let drained = ref [] in
  let rec drain () =
    match Ring.pop r with
    | Some v ->
        drained := v :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  check
    Alcotest.(list int)
    "FIFO order preserved across wrap and growth"
    [ 3; 4; 5; 6; 7; 8; 9; 10; 11; 99 ]
    (List.rev !drained);
  check Alcotest.int "high water saw the peak" 10 (Ring.high_water r);
  check Alcotest.bool "replace_back on empty raises" true
    (match Ring.replace_back r 0 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* -------- metrics registry -------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "events" in
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "counter accumulates" 5 (Metrics.counter_value m "events");
  check Alcotest.int "same-name handle shares the cell" 5
    (Metrics.value (Metrics.counter m "events"));
  check Alcotest.int "missing counter reads 0" 0 (Metrics.counter_value m "nope");
  let g = Metrics.gauge m "depth" in
  Metrics.record_max g 3;
  Metrics.record_max g 9;
  Metrics.record_max g 5;
  check Alcotest.int "gauge keeps the max" 9 (Metrics.gauge_value m "depth");
  let h = Metrics.histogram m "sizes" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 100 ];
  check Alcotest.int "hist count" 5 (Metrics.hist_count h);
  check Alcotest.int "hist sum" 106 (Metrics.hist_sum h);
  check Alcotest.int "hist max" 100 (Metrics.hist_max h);
  let json = Metrics.to_json m in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
    at 0
  in
  check Alcotest.bool "json has all three sections" true
    (List.for_all contains
       [ "\"counters\""; "\"gauges\""; "\"histograms\""; "\"events\":5" ]);
  Metrics.reset m;
  check Alcotest.int "reset zeroes counters" 0 (Metrics.counter_value m "events");
  check Alcotest.int "held handles survive reset" 0 (Metrics.value c)

(* -------- queue compression -------- *)

let motion_setup () =
  let server = Server.create () in
  let conn = Server.connect server ~name:"watcher" in
  let root = Server.root server ~screen:0 in
  Server.select_input server conn root [ Event.Pointer_motion_mask ];
  (server, conn, root)

let test_motion_coalescing () =
  let server, conn, _root = motion_setup () in
  let m = Server.metrics server in
  for i = 1 to 100 do
    Server.warp_pointer server ~screen:0 (Geom.point i (i * 2))
  done;
  check Alcotest.bool "storm collapses to a handful of entries" true
    (Server.pending conn < 100);
  let events = Server.flush_batch conn in
  let last_motion =
    List.fold_left
      (fun acc e ->
        match e with Event.Motion_notify { root_pos; _ } -> Some root_pos | _ -> acc)
      None events
  in
  (match last_motion with
  | Some root_pos ->
      check Alcotest.bool "last motion is the final position" true
        (root_pos = Geom.point 100 200)
  | None -> Alcotest.fail "no motion delivered");
  check Alcotest.bool "coalesced counter saw the collapse" true
    (Metrics.counter_value m "events.coalesced" > 0);
  check Alcotest.int "enqueued = coalesced + pending-at-peak" 100
    (Metrics.counter_value m "events.enqueued");
  check Alcotest.bool "delivered counts what flush returned" true
    (Metrics.counter_value m "events.delivered" = List.length events)

let test_coalesce_off_is_naive () =
  let server, conn, _root = motion_setup () in
  Server.set_coalesce conn false;
  for i = 1 to 50 do
    Server.warp_pointer server ~screen:0 (Geom.point i i)
  done;
  check Alcotest.int "naive queue keeps every motion" 50 (Server.pending conn)

let test_configure_folding () =
  let server = Server.create () in
  let wm = Server.connect server ~name:"wm" in
  let watcher = Server.connect server ~name:"watcher" in
  let root = Server.root server ~screen:0 in
  let win =
    Server.create_window server wm ~parent:root ~geom:(Geom.rect 0 0 100 100) ()
  in
  Server.select_input server watcher win [ Event.Structure_notify ];
  for i = 1 to 20 do
    Server.move_resize server wm win (Geom.rect i i 100 100)
  done;
  let configs =
    List.filter_map
      (function Event.Configure_notify { geom; _ } -> Some geom | _ -> None)
      (Server.flush_batch watcher)
  in
  check Alcotest.int "20 moves fold to one ConfigureNotify" 1 (List.length configs);
  check Alcotest.bool "folded event carries the final geometry" true
    (List.hd configs = Geom.rect 20 20 100 100)

let test_expose_region_merge () =
  let server = Server.create () in
  let owner = Server.connect server ~name:"app" in
  let root = Server.root server ~screen:0 in
  let win =
    Server.create_window server owner ~parent:root ~geom:(Geom.rect 0 0 200 200) ()
  in
  Server.select_input server owner win [ Event.Exposure_mask ];
  let rects =
    [ Geom.rect 0 0 50 50; Geom.rect 25 25 50 50; Geom.rect 100 100 20 20 ]
  in
  List.iter (Server.damage_window server win) rects;
  check Alcotest.int "three overlapping damages are one queue entry" 1
    (Server.pending owner);
  let delivered =
    List.filter_map
      (function Event.Expose { damage = Some r; _ } -> Some r | _ -> None)
      (Server.flush_batch owner)
  in
  check Alcotest.bool "delivered damage covers exactly the union" true
    (Region.equal (Region.of_rects delivered) (Region.of_rects rects))

let test_read_events_max () =
  let server, conn, _root = motion_setup () in
  Server.set_coalesce conn false;
  for i = 1 to 10 do
    Server.warp_pointer server ~screen:0 (Geom.point i i)
  done;
  check Alcotest.int "read_events honours max" 3
    (List.length (Server.read_events conn ~max:3));
  check Alcotest.int "rest stays queued" 7 (Server.pending conn);
  check Alcotest.int "flush drains the rest" 7
    (List.length (Server.flush_batch conn));
  check Alcotest.int "batch histogram recorded both reads" 2
    (Metrics.hist_count
       (Metrics.histogram (Server.metrics server) "delivery.batch_size"))

let test_trace_compress () =
  let t = Wire.Trace.create () in
  let w = Xid.of_int 5 in
  for i = 1 to 10 do
    Wire.Trace.record t
      (Wire.Configure_window (w, { Event.no_changes with cx = Some i; cy = Some i }))
  done;
  Wire.Trace.record t (Wire.Map_window w);
  List.iter (fun p -> Wire.Trace.record t (Wire.Warp_pointer p))
    [ Geom.point 1 1; Geom.point 2 2; Geom.point 3 3 ];
  let c = Wire.Trace.compress t in
  check Alcotest.int "14 requests compress to 3" 3 (Wire.Trace.length c);
  match Wire.Trace.requests c with
  | [ Wire.Configure_window (_, changes); Wire.Map_window _; Wire.Warp_pointer p ]
    ->
      check Alcotest.(option int) "final x wins" (Some 10) changes.Event.cx;
      check Alcotest.bool "final warp wins" true (p = Geom.point 3 3)
  | reqs ->
      Alcotest.failf "unexpected shape: %a"
        (Fmt.Dump.list Wire.pp_request)
        reqs

(* -------- properties -------- *)

let point_gen =
  QCheck2.Gen.(map (fun (x, y) -> Geom.point x y)
      (pair (int_range 0 1151) (int_range 0 899)))

(* Property 1: a coalesced motion stream reaches the same final pointer
   position as the naive one, with no more (usually far fewer) events. *)
let prop_motion_stream_equiv =
  QCheck2.Test.make ~name:"coalesced motion = naive motion, final state"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 80) point_gen)
    (fun points ->
      let final (conn : Server.conn) =
        List.fold_left
          (fun acc e ->
            match e with Event.Motion_notify r -> Some r.root_pos | _ -> acc)
          None
          (Server.flush_batch conn)
      in
      let run ~coalesce =
        let server, conn, _root = motion_setup () in
        Server.set_coalesce conn coalesce;
        List.iter (Server.warp_pointer server ~screen:0) points;
        (final conn, Server.pointer_pos server)
      in
      let naive_final, naive_pos = run ~coalesce:false in
      let coal_final, coal_pos = run ~coalesce:true in
      naive_final = coal_final && naive_pos = coal_pos)

let rect_gen =
  QCheck2.Gen.(
    map
      (fun (((x, y), w), h) -> Geom.rect x y w h)
      (pair (pair (pair (int_range 0 150) (int_range 0 150)) (int_range 1 50))
         (int_range 1 50)))

(* Property 2: however the queue merges expose damage, the union of what is
   delivered is exactly the union of what was posted. *)
let prop_expose_union_exact =
  QCheck2.Test.make ~name:"merged expose damage covers exactly the union"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) rect_gen)
    (fun rects ->
      let server = Server.create () in
      let owner = Server.connect server ~name:"app" in
      let root = Server.root server ~screen:0 in
      let win =
        Server.create_window server owner ~parent:root
          ~geom:(Geom.rect 0 0 200 200) ()
      in
      Server.select_input server owner win [ Event.Exposure_mask ];
      List.iter (Server.damage_window server win) rects;
      let delivered =
        List.filter_map
          (function Event.Expose { damage = Some r; _ } -> Some r | _ -> None)
          (Server.flush_batch owner)
      in
      Region.equal (Region.of_rects delivered) (Region.of_rects rects))

let event_gen =
  let open QCheck2.Gen in
  let xid = map Xid.of_int (int_range 1 5000) in
  oneof
    [
      map (fun w -> Event.Map_notify { window = w }) xid;
      map (fun w -> Event.Unmap_notify { window = w }) xid;
      map (fun w -> Event.Destroy_notify { window = w }) xid;
      map2
        (fun w p -> Event.Motion_notify { window = w; pos = p; root_pos = p })
        xid point_gen;
      map2
        (fun w r ->
          Event.Configure_notify { window = w; geom = r; border = 1; synthetic = false })
        xid rect_gen;
      map (fun w -> Event.Expose { window = w; damage = None }) xid;
      map2 (fun w r -> Event.Expose { window = w; damage = Some r }) xid rect_gen;
      map (fun w -> Event.Enter_notify { window = w }) xid;
    ]

(* Property 3: batch frames are byte-replayable — decode inverts encode, and
   re-encoding the decode is byte-identical. *)
let prop_batch_roundtrip =
  QCheck2.Test.make ~name:"batch frame roundtrips byte-identically" ~count:200
    QCheck2.Gen.(list_size (int_range 0 40) event_gen)
    (fun events ->
      let bytes = Wire.encode_batch events in
      match Wire.decode_batch bytes ~pos:0 with
      | Error msg -> QCheck2.Test.fail_reportf "decode_batch: %s" msg
      | Ok (decoded, next) ->
          next = String.length bytes
          && decoded = events
          && String.equal (Wire.encode_batch decoded) bytes)

let suite =
  [
    Alcotest.test_case "ring buffer wraps and grows" `Quick test_ring_wraparound;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "motion storm coalesces" `Quick test_motion_coalescing;
    Alcotest.test_case "set_coalesce false is naive" `Quick test_coalesce_off_is_naive;
    Alcotest.test_case "configure sequences fold" `Quick test_configure_folding;
    Alcotest.test_case "expose damage merges via region" `Quick
      test_expose_region_merge;
    Alcotest.test_case "read_events batch limit" `Quick test_read_events_max;
    Alcotest.test_case "trace compression" `Quick test_trace_compress;
    QCheck_alcotest.to_alcotest prop_motion_stream_equiv;
    QCheck_alcotest.to_alcotest prop_expose_union_exact;
    QCheck_alcotest.to_alcotest prop_batch_roundtrip;
  ]
