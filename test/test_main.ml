let () =
  Alcotest.run "swm"
    [
      ("geom", Test_geom.suite);
      ("region", Test_region.suite);
      ("xrdb", Test_xrdb.suite);
      ("server", Test_server.suite);
      ("wire", Test_wire.suite);
      ("hotpath", Test_hotpath.suite);
      ("pipeline", Test_pipeline.suite);
      ("ring", Test_ring.suite);
      ("ledger", Test_ledger.suite);
      ("bindings", Test_bindings.suite);
      ("oi", Test_oi.suite);
      ("layout-props", Test_layout_props.suite);
      ("session", Test_session.suite);
      ("config", Test_config.suite);
      ("wm", Test_wm.suite);
      ("vdesk", Test_vdesk.suite);
      ("icons", Test_icons.suite);
      ("functions", Test_functions.suite);
      ("panner", Test_panner.suite);
      ("swmcmd", Test_swmcmd.suite);
      ("tracing", Test_tracing.suite);
      ("restart", Test_restart.suite);
      ("baselines", Test_baselines.suite);
      ("render", Test_render.suite);
      ("extras", Test_extras.suite);
      ("figures", Test_figures.suite);
      ("misc", Test_misc.suite);
      ("golden", Test_golden.suite);
      ("robustness", Test_robustness.suite);
      ("fuzz", Test_fuzz.suite);
      ("observability", Test_observability.suite);
      ("profile", Test_profile.suite);
      ("chaos", Test_chaos.suite);
      ("replay", Test_replay.suite);
    ]
