(* The event lifecycle ledger: every event that enters a queue must be
   accounted for by exactly one fate — delivered, coalesced into a
   survivor, folded, dropped as the oldest droppable, shed at the cap,
   skipped by the governor, or evicted with its connection — or still be
   pending.  The conservation invariant

     enqueued = delivered + coalesced + folded + dropped_oldest + shed
                + skipped + evicted_with_conn + pending

   is checked here across every path that can consume an event, and a
   qcheck property replays seeded storms to show the fate counts are
   deterministic. *)

module Server = Swm_xlib.Server
module Metrics = Swm_xlib.Metrics
module Event = Swm_xlib.Event
module Geom = Swm_xlib.Geom
module Region = Swm_xlib.Region

let check = Alcotest.check

let balance_is_zero what (lc : Server.ledger_counts) =
  if lc.lc_balance <> 0 then
    Alcotest.failf
      "%s: ledger out of balance by %d (enqueued %d, delivered %d, coalesced \
       %d, folded %d, dropped %d, shed %d, skipped %d, evicted %d, pending %d)"
      what lc.lc_balance lc.lc_enqueued lc.lc_delivered lc.lc_coalesced
      lc.lc_folded lc.lc_dropped lc.lc_shed lc.lc_skipped lc.lc_evicted
      lc.lc_pending

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i =
    i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1))
  in
  at 0

let motion_setup () =
  let server = Server.create () in
  let conn = Server.connect server ~name:"watcher" in
  let root = Server.root server ~screen:0 in
  Server.select_input server conn root [ Event.Pointer_motion_mask ];
  (server, conn, root)

(* -------- per-path conservation -------- *)

let test_motion_coalescing_balances () =
  let server, conn, _root = motion_setup () in
  for i = 1 to 100 do
    Server.warp_pointer server ~screen:0 (Geom.point i (i * 2))
  done;
  let lc = Server.ledger_counts server in
  check Alcotest.int "all 100 motions entered the ledger" 100 lc.lc_enqueued;
  check Alcotest.bool "the storm coalesced" true (lc.lc_coalesced > 0);
  balance_is_zero "queued storm" lc;
  let events = Server.flush_batch conn in
  let lc = Server.ledger_counts server in
  check Alcotest.int "flush delivered the survivors" (List.length events)
    lc.lc_delivered;
  check Alcotest.int "nothing left pending" 0 lc.lc_pending;
  balance_is_zero "drained storm" lc;
  (* The fate records name the survivor each victim merged into. *)
  let fates = Server.fate_json server () in
  check Alcotest.bool "fate records show the coalesce lineage" true
    (contains fates "\"fate\": \"coalesced_into\"");
  check Alcotest.bool "fate records show deliveries" true
    (contains fates "\"fate\": \"delivered\"")

let test_expose_merge_balances () =
  let server = Server.create () in
  let conn = Server.connect server ~name:"app" in
  let root = Server.root server ~screen:0 in
  let win =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 200 200)
      ()
  in
  Server.select_input server conn win [ Event.Exposure_mask ];
  List.iter
    (Server.damage_window server win)
    [ Geom.rect 0 0 50 50; Geom.rect 25 25 50 50; Geom.rect 100 100 20 20 ];
  let lc = Server.ledger_counts server in
  check Alcotest.int "three damages entered" 3 lc.lc_enqueued;
  check Alcotest.int "two merged into the first entry" 2 lc.lc_coalesced;
  check Alcotest.int "one entry pending" 1 lc.lc_pending;
  balance_is_zero "merged damage" lc;
  (* One Damage entry may expand to several Expose rects; the ledger
     counts the entry once. *)
  let events = Server.flush_batch conn in
  check Alcotest.bool "expansion delivered at least one Expose" true
    (List.length events >= 1);
  let lc = Server.ledger_counts server in
  check Alcotest.int "entry delivered once, not per rect" 1 lc.lc_delivered;
  balance_is_zero "delivered damage" lc

let test_flood_shed_balances () =
  let server = Server.create () in
  Server.set_queue_cap server 64;
  Server.set_health_thresholds server
    {
      Swm_xlib.Health.default_thresholds with
      quarantine_score = infinity;
      evict_score = infinity;
    };
  let conn = Server.connect server ~name:"hog" in
  let root = Server.root server ~screen:0 in
  for _ = 1 to 96 do
    ignore
      (Server.create_window server conn ~parent:root
         ~geom:(Geom.rect 0 0 20 20) ())
  done;
  Server.flood_conn server conn ~burst:10_000;
  let lc = Server.ledger_counts server in
  check Alcotest.bool "the cap shed events" true
    (lc.lc_shed > 0 || lc.lc_dropped > 0);
  balance_is_zero "flooded queue" lc;
  ignore (Server.flush_batch conn);
  balance_is_zero "drained flooded queue" (Server.ledger_counts server)

let test_governor_skip_reclassifies () =
  let server, conn, _root = motion_setup () in
  Server.warp_pointer server ~screen:0 (Geom.point 5 5);
  match Server.read_events_stamped conn ~max:4 with
  | [ (event, stamp) ] ->
      let lc = Server.ledger_counts server in
      check Alcotest.int "delivered before the skip" 1 lc.lc_delivered;
      Server.ledger_skip conn event stamp;
      (* Reclassifying twice (one seq, several expanded events) must not
         double-count. *)
      Server.ledger_skip conn event stamp;
      let lc = Server.ledger_counts server in
      check Alcotest.int "delivery reclassified away" 0 lc.lc_delivered;
      check Alcotest.int "counted as skipped exactly once" 1 lc.lc_skipped;
      balance_is_zero "skipped event" lc
  | other -> Alcotest.failf "expected one motion, got %d" (List.length other)

let test_eviction_flushes_pending () =
  let server, conn, _root = motion_setup () in
  Server.set_coalesce conn false;
  for i = 1 to 7 do
    Server.warp_pointer server ~screen:0 (Geom.point i i)
  done;
  check Alcotest.int "seven queued" 7 (Server.pending conn);
  Server.disconnect server conn;
  let lc = Server.ledger_counts server in
  check Alcotest.int "still-queued entries became evictions" 7 lc.lc_evicted;
  check Alcotest.int "nothing pending after the eviction" 0 lc.lc_pending;
  balance_is_zero "evicted connection" lc;
  check Alcotest.bool "fate records name the eviction" true
    (contains (Server.fate_json server ()) "\"fate\": \"evicted_with_conn\"")

let test_disarmed_ledger_still_balances () =
  let server, conn, _root = motion_setup () in
  Server.set_ledger server false;
  check Alcotest.bool "reads back disarmed" false (Server.ledger_enabled server);
  for i = 1 to 40 do
    Server.warp_pointer server ~screen:0 (Geom.point i i)
  done;
  ignore (Server.flush_batch conn);
  (* Conservation is unconditional; only timestamps/records are gated. *)
  let lc = Server.ledger_counts server in
  check Alcotest.int "disarmed ledger still counts" 40 lc.lc_enqueued;
  balance_is_zero "disarmed storm" lc;
  check Alcotest.bool "no queue-residency samples while disarmed" true
    (Metrics.hist_count
       (Metrics.labeled_histogram
          (Metrics.histogram_family (Server.metrics server) ~key:"event"
             "event.queue_ns")
          "MotionNotify")
    = 0);
  check Alcotest.bool "json reflects the armed flag" true
    (contains (Server.ledger_json server) "\"armed\": false")

let test_queue_residency_observed_when_armed () =
  let server, conn, _root = motion_setup () in
  for i = 1 to 10 do
    Server.warp_pointer server ~screen:0 (Geom.point i i)
  done;
  ignore (Server.flush_batch conn);
  check Alcotest.bool "armed ledger measures queue residency" true
    (Metrics.hist_count
       (Metrics.labeled_histogram
          (Metrics.histogram_family (Server.metrics server) ~key:"event"
             "event.queue_ns")
          "MotionNotify")
    > 0)

let test_fate_json_filters () =
  let server = Server.create () in
  let a = Server.connect server ~name:"alpha" in
  let b = Server.connect server ~name:"beta" in
  let root = Server.root server ~screen:0 in
  Server.select_input server a root [ Event.Pointer_motion_mask ];
  let win =
    Server.create_window server b ~parent:root ~geom:(Geom.rect 0 0 50 50) ()
  in
  Server.select_input server b win [ Event.Exposure_mask ];
  Server.warp_pointer server ~screen:0 (Geom.point 3 3);
  Server.damage_window server win (Geom.rect 0 0 10 10);
  ignore (Server.flush_batch a);
  ignore (Server.flush_batch b);
  let only_alpha = Server.fate_json server ~conn:"alpha" () in
  check Alcotest.bool "conn filter keeps alpha" true
    (contains only_alpha "\"conn\": \"alpha\"");
  check Alcotest.bool "conn filter drops beta" false
    (contains only_alpha "\"conn\": \"beta\"");
  let only_win = Server.fate_json server ~window:(Swm_xlib.Xid.to_int win) () in
  check Alcotest.bool "window filter keeps the damage" true
    (contains only_win "\"event\": \"Expose\"");
  check Alcotest.bool "window filter drops the motion" false
    (contains only_win "\"event\": \"MotionNotify\"")

(* -------- properties -------- *)

(* A seeded storm: motions, damages and window churn against two client
   connections, drained partway through and fully at the end. *)
let run_storm ~seed ~ops =
  let server = Server.create () in
  Server.set_queue_cap server 48;
  Server.set_health_thresholds server
    {
      Swm_xlib.Health.default_thresholds with
      quarantine_score = infinity;
      evict_score = infinity;
    };
  let watcher = Server.connect server ~name:"watcher" in
  let app = Server.connect server ~name:"app" in
  let root = Server.root server ~screen:0 in
  Server.select_input server watcher root [ Event.Pointer_motion_mask ];
  let win =
    Server.create_window server app ~parent:root ~geom:(Geom.rect 0 0 300 300)
      ()
  in
  Server.select_input server app win [ Event.Exposure_mask ];
  let rng = Random.State.make [| seed |] in
  for _ = 1 to ops do
    match Random.State.int rng 4 with
    | 0 ->
        Server.warp_pointer server ~screen:0
          (Geom.point (Random.State.int rng 500) (Random.State.int rng 400))
    | 1 ->
        Server.damage_window server win
          (Geom.rect
             (Random.State.int rng 250)
             (Random.State.int rng 250)
             (1 + Random.State.int rng 50)
             (1 + Random.State.int rng 50))
    | 2 -> Server.flood_conn server watcher ~burst:(Random.State.int rng 64)
    | _ ->
        if Random.State.bool rng then ignore (Server.flush_batch watcher)
        else ignore (Server.flush_batch app)
  done;
  ignore (Server.flush_batch watcher);
  ignore (Server.flush_batch app);
  Server.ledger_counts server

let prop_fate_accounting_balances =
  QCheck2.Test.make ~name:"fate accounting balances exactly under storms"
    ~count:40
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 10 400))
    (fun (seed, ops) ->
      let lc = run_storm ~seed ~ops in
      lc.Server.lc_balance = 0 && lc.lc_enqueued > 0)

let prop_fate_counts_deterministic =
  QCheck2.Test.make ~name:"same-seed storms yield identical fate counts"
    ~count:20
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 10 300))
    (fun (seed, ops) ->
      let a = run_storm ~seed ~ops in
      let b = run_storm ~seed ~ops in
      a = b)

let suite =
  [
    Alcotest.test_case "motion coalescing balances" `Quick
      test_motion_coalescing_balances;
    Alcotest.test_case "expose merge balances" `Quick test_expose_merge_balances;
    Alcotest.test_case "flood shed balances" `Quick test_flood_shed_balances;
    Alcotest.test_case "governor skip reclassifies once" `Quick
      test_governor_skip_reclassifies;
    Alcotest.test_case "eviction flushes pending fates" `Quick
      test_eviction_flushes_pending;
    Alcotest.test_case "disarmed ledger still balances" `Quick
      test_disarmed_ledger_still_balances;
    Alcotest.test_case "queue residency observed when armed" `Quick
      test_queue_residency_observed_when_armed;
    Alcotest.test_case "fate json filters by conn and window" `Quick
      test_fate_json_filters;
    QCheck_alcotest.to_alcotest prop_fate_accounting_balances;
    QCheck_alcotest.to_alcotest prop_fate_counts_deterministic;
  ]
