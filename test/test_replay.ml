(* Replay suite: crash reports round-trip through {!Swm_xlib.Replay} —
   record a session, dump it, re-execute the journal against a fresh
   Server+WM pair, and the replayed state converges to the recorded
   snapshot.  On top of that: the ddmin minimizer shrinks a failing op
   stream to a strictly shorter one that still fails, the committed
   repro corpus under [repros/] stays green, and replaying the same
   report twice is byte-for-byte deterministic. *)

module Server = Swm_xlib.Server
module Recorder = Swm_xlib.Recorder
module Replay = Swm_xlib.Replay
module Fault = Swm_xlib.Fault
module Xid = Swm_xlib.Xid
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Templates = Swm_core.Templates
module Swmcmd = Swm_core.Swmcmd
module Workload = Swm_clients.Workload

let check = Alcotest.check

let resources =
  [ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]

let client_side f =
  try f () with Server.Bad_window _ | Server.Bad_access _ -> ()

(* Record a session — WM with the flight recorder on, [clients] apps, a
   few storm rounds (optionally under a fault plan) — and return the
   crash-report text its recorder dumps at the end. *)
let record_session ?(clients = 4) ?(rounds = 2) ?(seed = 11) ?plan () =
  let server = Server.create () in
  let wm = Wm.start ~resources server in
  let recorder = Server.recorder server in
  Recorder.start recorder;
  let ctx = Wm.ctx wm in
  let apps = Workload.launch_n server clients in
  ignore (Wm.step wm);
  (match plan with
  | Some p -> ignore (Server.arm_faults server ~protect:[ ctx.Ctx.conn ] p)
  | None -> ());
  let sender = Server.connect server ~name:"cmd" in
  for round = 0 to rounds - 1 do
    let sub = (seed * 31) + round in
    client_side (fun () -> Workload.motion_storm server ~seed:sub ~steps:15 ());
    ignore (Wm.step wm);
    client_side (fun () ->
        Workload.configure_churn server ~seed:sub ~rounds:1 apps);
    ignore (Wm.step wm);
    client_side (fun () -> Workload.expose_storm server ~seed:sub ~rounds:1 apps);
    ignore (Wm.step wm);
    (* Iconify a rotating third through swmcmd, so the churn is session
       input (a journalled property write), not direct WM surgery. *)
    List.iteri
      (fun i (c : Ctx.client) ->
        let verb = if (i + round) mod 3 = 0 then "f.iconify" else "f.deiconify" in
        client_side (fun () ->
            Swmcmd.send server sender ~screen:0
              (Printf.sprintf "%s(#%d)" verb (Xid.to_int c.Ctx.cwin))))
      (Ctx.all_clients ctx);
    ignore (Wm.step wm)
  done;
  Recorder.dump_json recorder ~reason:"end of recorded session"
    ~metrics:(Server.metrics server) ~tracer:(Server.tracer server)

let parse_ok text =
  match Replay.parse_report text with
  | Ok report -> report
  | Error msg -> Alcotest.failf "parse_report: %s" msg

let test_recorded_session_converges () =
  let report = parse_ok (record_session ()) in
  check Alcotest.bool "journal is non-empty" true (List.length report.Replay.ops > 50);
  check Alcotest.bool "report has a snapshot" true (report.Replay.snap <> None);
  match Wm.replay report with
  | Replay.Converged { ops; steps } ->
      check Alcotest.int "every op replayed" (List.length report.Replay.ops) ops;
      check Alcotest.bool "the WM stepped" true (steps > 0)
  | outcome ->
      Alcotest.failf "expected convergence: %s" (Replay.outcome_to_string outcome)

let test_chaos_session_converges () =
  (* Same, but with a fault storm injecting destroys/kills/stalls: fault
     effects are journalled as session inputs, so the replay re-enacts
     the same hostile schedule. *)
  let report =
    parse_ok (record_session ~clients:5 ~rounds:3 ~seed:23 ~plan:(Fault.storm ~seed:23 ()) ())
  in
  match Wm.replay report with
  | Replay.Converged _ -> ()
  | outcome ->
      Alcotest.failf "expected convergence under faults: %s"
        (Replay.outcome_to_string outcome)

let test_f_replay_verb () =
  (* The same check over the command channel: f.replay(FILE) re-executes
     the report in-process and replies with the outcome on SWM_RESULT. *)
  let file = Filename.temp_file "swm_replay" ".json" in
  let oc = open_out file in
  output_string oc (record_session ~seed:53 ());
  close_out oc;
  let server = Server.create () in
  let wm = Wm.start ~resources server in
  let sender = Server.connect server ~name:"cmd" in
  Swmcmd.send server sender ~screen:0 (Printf.sprintf "f.replay(%s)" file);
  ignore (Wm.step wm);
  Sys.remove file;
  match Swmcmd.read_result server ~screen:0 with
  | None -> Alcotest.fail "f.replay left no SWM_RESULT reply"
  | Some reply ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      check Alcotest.bool
        (Printf.sprintf "reply reports convergence: %s" reply)
        true
        (contains reply "\"outcome\":\"converged\"")

let test_replay_twice_is_deterministic () =
  let report = parse_ok (record_session ~seed:31 ()) in
  let final_snapshot () =
    let last = ref "" in
    let make server =
      let h = Wm.replay_harness report server in
      {
        Replay.h_step = h.Replay.h_step;
        h_snapshot =
          (fun () ->
            let s = h.Replay.h_snapshot () in
            last := s;
            s);
      }
    in
    (match Replay.run report ~make with
    | Replay.Converged _ -> ()
    | outcome ->
        Alcotest.failf "replay failed: %s" (Replay.outcome_to_string outcome));
    !last
  in
  check Alcotest.string "byte-identical final snapshots" (final_snapshot ())
    (final_snapshot ())

(* qcheck: any seeded recording replays to convergence, twice identically. *)
let prop_random_streams_replay_deterministically =
  QCheck2.Test.make ~name:"recorded random event streams replay byte-identically"
    ~count:10
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let report = parse_ok (record_session ~clients:3 ~rounds:1 ~seed ()) in
      let snap_of run =
        ignore run;
        let last = ref "" in
        let make server =
          let h = Wm.replay_harness report server in
          {
            Replay.h_step = h.Replay.h_step;
            h_snapshot =
              (fun () ->
                let s = h.Replay.h_snapshot () in
                last := s;
                s);
          }
        in
        match Replay.run report ~make with
        | Replay.Converged _ -> !last
        | outcome -> Alcotest.failf "seed %d: %s" seed (Replay.outcome_to_string outcome)
      in
      String.equal (snap_of 0) (snap_of 1))

let test_minimizer_shrinks_injected_failure () =
  (* Poison a healthy journal with an op that must crash any replay
     (destroying a root raises Invalid_argument, which replay never
     absorbs), then check ddmin returns a strictly shorter op list that
     still fails. *)
  let report = parse_ok (record_session ~clients:3 ~rounds:1 ~seed:47 ()) in
  let root = Xid.to_int (Server.root (Server.create ()) ~screen:0) in
  let poison = Printf.sprintf "destroy %d" root in
  let rec inject i = function
    | [] -> [ poison ]
    | op :: rest -> if i = 0 then poison :: op :: rest else op :: inject (i - 1) rest
  in
  let ops = inject (List.length report.Replay.ops / 2) report.Replay.ops in
  (* Standard ddmin practice: the oracle matches the *failure signature*,
     not just "any crash" — chopping a create out of the stream makes later
     frames crash too (unknown id), and without the signature check the
     minimizer happily converges on one of those instead. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  let fails ops =
    let probe =
      { report with Replay.ops; snap = None; expect = Replay.No_crash }
    in
    match Wm.replay probe with
    | Replay.Crashed { error; _ } -> contains error "root window"
    | _ -> false
  in
  check Alcotest.bool "poisoned stream fails" true (fails ops);
  let minimized, tests = Replay.minimize ~ops ~fails in
  check Alcotest.bool "minimized is strictly shorter" true
    (List.length minimized < List.length ops);
  check Alcotest.bool "minimized still fails" true (fails minimized);
  check Alcotest.bool "oracle ran" true (tests > 1);
  (* ddmin should isolate the single poisoned op from this stream. *)
  check Alcotest.(list string) "minimal repro is the poison op" [ poison ]
    minimized

let test_minimizer_keeps_passing_stream () =
  let ops = [ "step"; "step" ] in
  let minimized, tests = Replay.minimize ~ops ~fails:(fun _ -> false) in
  check Alcotest.(list string) "non-failing input unchanged" ops minimized;
  check Alcotest.int "single oracle call" 1 tests

(* -------- parse edge cases -------- *)

let test_parse_truncated_ring () =
  let text =
    {|{"reason":"r","journal":{"capacity":4,"recorded":9,"dropped":5,"snap":null,"ops":["step"]}}|}
  in
  let report = parse_ok text in
  check Alcotest.int "dropped parsed" 5 report.Replay.dropped;
  match Wm.replay report with
  | Replay.Truncated { dropped } -> check Alcotest.int "dropped" 5 dropped
  | outcome ->
      Alcotest.failf "expected Truncated: %s" (Replay.outcome_to_string outcome)

let test_parse_missing_snapshot () =
  let text =
    {|{"reason":"r","journal":{"capacity":8,"recorded":1,"dropped":0,"snap":null,"ops":["step"]}}|}
  in
  let report = parse_ok text in
  check Alcotest.bool "no snapshot" true (report.Replay.snap = None);
  match Wm.replay report with
  | Replay.No_snapshot _ -> ()
  | outcome ->
      Alcotest.failf "expected No_snapshot: %s" (Replay.outcome_to_string outcome)

let test_parse_rejects_garbage () =
  (match Replay.parse_report "{never closed" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSON accepted");
  (match Replay.parse_report {|{"journal":{}}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "journal without ops accepted");
  match Replay.parse_report {|{"reason":"no journal at all"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "report without journal or ops accepted"

let test_repro_roundtrip () =
  let report = parse_ok (record_session ~clients:2 ~rounds:1 ~seed:7 ()) in
  let compact = Replay.repro_json report in
  let back = parse_ok compact in
  check Alcotest.(list string) "ops survive the round-trip" report.Replay.ops
    back.Replay.ops;
  check Alcotest.bool "snapshot survives the round-trip" true
    (back.Replay.snap <> None);
  match Wm.replay back with
  | Replay.Converged _ -> ()
  | outcome ->
      Alcotest.failf "repro file replay: %s" (Replay.outcome_to_string outcome)

(* -------- the committed corpus -------- *)

(* Tests run from _build/default/test (where the dune glob copies the
   corpus); "test/repros" covers a bare `dune exec` from the repo root. *)
let repros_dir =
  if Sys.file_exists "repros" && Sys.is_directory "repros" then "repros"
  else "test/repros"

let test_corpus_replays () =
  let files =
    Sys.readdir repros_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  check Alcotest.bool "corpus is not empty" true (files <> []);
  List.iter
    (fun file ->
      let path = Filename.concat repros_dir file in
      let text = In_channel.with_open_text path In_channel.input_all in
      match Replay.parse_report text with
      | Error msg -> Alcotest.failf "%s: %s" file msg
      | Ok report -> (
          match Wm.replay report with
          | outcome when Replay.ok outcome -> ()
          | outcome ->
              Alcotest.failf "%s: %s" file (Replay.outcome_to_string outcome)))
    files

let suite =
  [
    Alcotest.test_case "recorded session replays to convergence" `Quick
      test_recorded_session_converges;
    Alcotest.test_case "chaos session replays to convergence" `Quick
      test_chaos_session_converges;
    Alcotest.test_case "f.replay replies with the outcome over swmcmd" `Quick
      test_f_replay_verb;
    Alcotest.test_case "replaying twice is byte-identical" `Quick
      test_replay_twice_is_deterministic;
    Alcotest.test_case "ddmin shrinks an injected failure" `Quick
      test_minimizer_shrinks_injected_failure;
    Alcotest.test_case "ddmin leaves passing streams alone" `Quick
      test_minimizer_keeps_passing_stream;
    Alcotest.test_case "truncated ring refuses to assert convergence" `Quick
      test_parse_truncated_ring;
    Alcotest.test_case "missing snapshot reports No_snapshot" `Quick
      test_parse_missing_snapshot;
    Alcotest.test_case "malformed reports are rejected" `Quick
      test_parse_rejects_garbage;
    Alcotest.test_case "repro files round-trip" `Quick test_repro_roundtrip;
    Alcotest.test_case "committed repro corpus replays clean" `Quick
      test_corpus_replays;
    QCheck_alcotest.to_alcotest prop_random_streams_replay_deterministically;
  ]
