module Wire = Swm_xlib.Wire
module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Event = Swm_xlib.Event
module Keysym = Swm_xlib.Keysym
module Region = Swm_xlib.Region

let check = Alcotest.check

let roundtrip_request req =
  let bytes = Wire.encode_request req in
  check Alcotest.int "4-byte aligned" 0 (String.length bytes mod 4);
  match Wire.decode_request bytes ~pos:0 with
  | Ok (decoded, next) ->
      check Alcotest.int "consumed whole frame" (String.length bytes) next;
      check Alcotest.bool
        (Format.asprintf "roundtrip %a" Wire.pp_request req)
        true (decoded = req)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_request_roundtrips () =
  List.iter roundtrip_request
    [
      Wire.Create_window
        {
          wid = Xid.of_int 42;
          parent = Xid.of_int 1;
          geom = Geom.rect (-5) 10 300 200;
          border = 2;
          override_redirect = true;
        };
      Wire.Destroy_window (Xid.of_int 7);
      Wire.Map_window (Xid.of_int 7);
      Wire.Unmap_window (Xid.of_int 9);
      Wire.Configure_window
        ( Xid.of_int 12,
          { Event.no_changes with cx = Some (-20); cw = Some 640;
            cstack = Some Event.Above } );
      Wire.Configure_window
        (Xid.of_int 12,
         { Event.no_changes with cstack = Some Event.Below;
           csibling = Some (Xid.of_int 3) });
      Wire.Reparent_window
        { window = Xid.of_int 4; parent = Xid.of_int 5; pos = Geom.point (-1) 2 };
      Wire.Change_property
        { window = Xid.of_int 3; name = "WM_NAME"; value = "hello world" };
      Wire.Delete_property { window = Xid.of_int 3; name = "WM_NAME" };
      Wire.Select_input
        {
          window = Xid.of_int 2;
          masks = [ Event.Substructure_redirect; Event.Key_press_mask ];
        };
      Wire.Grab_pointer (Xid.of_int 8);
      Wire.Ungrab_pointer;
      Wire.Warp_pointer (Geom.point 500 400);
      Wire.Set_input_focus (Xid.of_int 2);
      Wire.Shape_rectangles
        { window = Xid.of_int 6; rects = [ Geom.rect 0 0 4 4; Geom.rect 8 0 4 4 ] };
      Wire.Add_to_save_set (Xid.of_int 2);
      Wire.Remove_from_save_set (Xid.of_int 2);
    ]

let test_stream_decoding () =
  let reqs =
    [ Wire.Map_window (Xid.of_int 1); Wire.Ungrab_pointer;
      Wire.Warp_pointer (Geom.point 1 2) ]
  in
  let bytes = String.concat "" (List.map Wire.encode_request reqs) in
  match Wire.decode_requests bytes with
  | Ok decoded -> check Alcotest.bool "stream" true (decoded = reqs)
  | Error msg -> Alcotest.fail msg

let test_truncated_rejected () =
  let bytes = Wire.encode_request (Wire.Map_window (Xid.of_int 1)) in
  let cut = String.sub bytes 0 (String.length bytes - 2) in
  (match Wire.decode_request cut ~pos:0 with
  | Ok _ -> Alcotest.fail "expected truncation error"
  | Error _ -> ());
  match Wire.decode_requests "garbage!" with
  | Ok _ -> Alcotest.fail "expected garbage error"
  | Error _ -> ()

let roundtrip_event event =
  let bytes = Wire.encode_event event in
  check Alcotest.int "32-byte frame" 32 (String.length bytes);
  match Wire.decode_event bytes ~pos:0 with
  | Ok (decoded, 32) ->
      check Alcotest.bool
        (Format.asprintf "roundtrip %a" Event.pp event)
        true (decoded = event)
  | Ok (_, n) -> Alcotest.failf "bad frame length %d" n
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_event_roundtrips () =
  let w = Xid.of_int 5 in
  List.iter roundtrip_event
    [
      Event.Map_request { window = w; parent = Xid.of_int 1 };
      Event.Map_notify { window = w };
      Event.Unmap_notify { window = w };
      Event.Destroy_notify { window = w };
      Event.Reparent_notify { window = w; parent = Xid.of_int 2; pos = Geom.point 3 4 };
      Event.Configure_notify
        { window = w; geom = Geom.rect (-4) 9 120 80; border = 1; synthetic = true };
      Event.Property_notify { window = w; name = "WM_NAME"; deleted = false };
      Event.Button_press
        {
          window = w;
          button = 2;
          mods = Keysym.mods ~shift:true ();
          pos = Geom.point 1 2;
          root_pos = Geom.point 100 200;
        };
      Event.Button_release
        {
          window = w;
          button = 1;
          mods = Keysym.no_mods;
          pos = Geom.point 0 0;
          root_pos = Geom.point 0 0;
        };
      Event.Key_press
        {
          window = w;
          keysym = "Up";
          mods = Keysym.mods ~meta:true ();
          pos = Geom.point 9 9;
          root_pos = Geom.point 9 9;
        };
      Event.Motion_notify { window = w; pos = Geom.point 5 6; root_pos = Geom.point 7 8 };
      Event.Enter_notify { window = w };
      Event.Leave_notify { window = w };
      Event.Expose { window = w; damage = None };
      Event.Expose { window = w; damage = Some { Geom.x = 4; y = 8; w = 40; h = 20 } };
      Event.Client_message { window = w; name = "WM_PROTOCOLS"; data = "DELETE" };
    ]

(* -------- traces -------- *)

let test_trace_roundtrip_and_replay () =
  (* Record a small client life against one server... *)
  let server1 = Server.create () in
  let conn1 = Server.connect server1 ~name:"traced" in
  let root1 = Server.root server1 ~screen:0 in
  let trace = Wire.Trace.create () in
  let record req = Wire.Trace.record trace req in
  let w =
    Server.create_window server1 conn1 ~parent:root1 ~geom:(Geom.rect 30 40 200 100) ()
  in
  record
    (Wire.Create_window
       { wid = w; parent = root1; geom = Geom.rect 30 40 200 100; border = 0;
         override_redirect = false });
  Server.map_window server1 conn1 w;
  record (Wire.Map_window w);
  Server.move_resize server1 conn1 w (Geom.rect 60 70 250 150);
  record
    (Wire.Configure_window
       ( w,
         { Event.no_changes with cx = Some 60; cy = Some 70; cw = Some 250;
           ch = Some 150 } ));
  Server.change_property server1 conn1 w ~name:"WM_NAME"
    (Swm_xlib.Prop.String "traced");
  record (Wire.Change_property { window = w; name = "WM_NAME"; value = "traced" });

  (* ...serialise to bytes and back... *)
  let bytes = Wire.Trace.to_bytes trace in
  check Alcotest.bool "wire bytes exist" true (String.length bytes > 0);
  check Alcotest.int "byte_size agrees" (String.length bytes)
    (Wire.Trace.byte_size trace);
  let trace2 =
    match Wire.Trace.of_bytes bytes with
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  check Alcotest.int "same length" (Wire.Trace.length trace)
    (Wire.Trace.length trace2);

  (* ...and replay against a fresh server: same visible result. *)
  let server2 = Server.create () in
  let conn2 = Server.connect server2 ~name:"replayer" in
  let root2 = Server.root server2 ~screen:0 in
  (match
     Wire.Trace.replay trace2 server2 conn2 ~remap:(fun id ->
         if Xid.equal id root1 then root2 else id)
   with
  | Ok n -> check Alcotest.int "all requests applied" 4 n
  | Error msg -> Alcotest.fail msg);
  (* The replayed window matches the original. *)
  let replayed =
    List.find
      (fun c -> not (Xid.equal c root2))
      (Server.children_of server2 root2 @ Server.all_windows server2)
  in
  let g1 = Server.geometry server1 w and g2 = Server.geometry server2 replayed in
  check Alcotest.bool "geometry reproduced" true (Geom.rect_equal g1 g2);
  check Alcotest.bool "mapped reproduced" true
    (Server.is_mapped server2 replayed = Server.is_mapped server1 w);
  match Server.get_property server2 replayed ~name:"WM_NAME" with
  | Some (Swm_xlib.Prop.String "traced") -> ()
  | _ -> Alcotest.fail "property not replayed"

(* -------- a client living entirely on the wire -------- *)

let test_wire_client_under_wm () =
  let module Wire_conn = Swm_xlib.Wire_conn in
  let server = Server.create () in
  let wm =
    Swm_core.Wm.start
      ~resources:
        [ Swm_core.Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]
      server
  in
  (* The client knows nothing of the in-process API: ids it chose, bytes it
     sends. *)
  let wc = Wire_conn.create server ~name:"wireclient" in
  let wid = Wire_conn.fresh_id wc in
  let root = Wire_conn.root_id wc ~screen:0 in
  let ok = function Ok _ -> () | Error msg -> Alcotest.fail msg in
  ok
    (Wire_conn.submit wc
       (Wire.Create_window
          { wid; parent = root; geom = Geom.rect 50 60 300 200; border = 0;
            override_redirect = false }));
  ok
    (Wire_conn.submit wc
       (Wire.Change_property { window = wid; name = "WM_NAME"; value = "wired" }));
  ok
    (Wire_conn.submit wc
       (Wire.Select_input { window = wid; masks = [ Event.Structure_notify ] }));
  ok (Wire_conn.submit wc (Wire.Map_window wid));
  ignore (Swm_core.Wm.step wm);
  (* The WM managed it. *)
  let server_id = Option.get (Wire_conn.resolve wc wid) in
  let client = Option.get (Swm_core.Wm.find_client wm server_id) in
  check Alcotest.bool "decorated" true (client.Swm_core.Ctx.deco <> None);
  check Alcotest.bool "viewable" true (Server.is_viewable server server_id);
  (* The client's events arrive as bytes, in its own id space. *)
  let bytes = Wire_conn.drain_event_bytes wc in
  check Alcotest.bool "received event bytes" true (String.length bytes > 0);
  check Alcotest.int "32-byte frames" 0 (String.length bytes mod 32);
  let rec events pos acc =
    if pos >= String.length bytes then List.rev acc
    else
      match Wire.decode_event bytes ~pos with
      | Ok (e, next) -> events next (e :: acc)
      | Error msg -> Alcotest.fail msg
  in
  let decoded = events 0 [] in
  check Alcotest.bool "reparent seen with client id" true
    (List.exists
       (function
         | Event.Reparent_notify { window; _ } -> Xid.equal window wid
         | _ -> false)
       decoded);
  check Alcotest.bool "traffic counted" true
    (Wire_conn.bytes_sent wc > 0 && Wire_conn.bytes_received wc > 0);
  (* Unknown client ids error cleanly. *)
  match Wire_conn.submit wc (Wire.Map_window (Xid.of_int 987654)) with
  | Ok () -> Alcotest.fail "expected unknown-id error"
  | Error _ -> ()

(* -------- partial-batch accounting -------- *)

let test_partial_batch_accounting () =
  let module Wire_conn = Swm_xlib.Wire_conn in
  let module Metrics = Swm_xlib.Metrics in
  let server = Server.create () in
  let wc = Wire_conn.create server ~name:"batcher" in
  let root = Wire_conn.root_id wc ~screen:0 in
  let wid1 = Wire_conn.fresh_id wc and wid2 = Wire_conn.fresh_id wc in
  let create wid =
    Wire.encode_request
      (Wire.Create_window
         { wid; parent = root; geom = Geom.rect 0 0 50 50; border = 0;
           override_redirect = false })
  in
  (* Two good frames, then garbage: the error must say how many requests
     executed before the decoder choked, and both windows must exist. *)
  let batch = create wid1 ^ create wid2 ^ "GARBAGE!" in
  (match Wire_conn.submit_bytes wc batch with
  | Ok n -> Alcotest.failf "expected decode error, got Ok %d" n
  | Error { Wire_conn.executed; error } ->
      check Alcotest.int "executed before failure" 2 executed;
      check Alcotest.bool "error text" true (String.length error > 0));
  check Alcotest.bool "first window created" true
    (Wire_conn.resolve wc wid1 <> None);
  check Alcotest.bool "second window created" true
    (Wire_conn.resolve wc wid2 <> None);
  check Alcotest.int "rejected frame counted" 1
    (Metrics.counter_value (Server.metrics server) "wire.rejected_frames");
  (* A server-side error mid-batch reports the same way: frame 1 maps an
     id the server never allocated. *)
  let bad =
    Wire.encode_request (Wire.Map_window wid1)
    ^ Wire.encode_request (Wire.Map_window (Xid.of_int 987654))
    ^ Wire.encode_request (Wire.Map_window wid2)
  in
  (match Wire_conn.submit_bytes wc bad with
  | Ok n -> Alcotest.failf "expected unknown-id error, got Ok %d" n
  | Error { Wire_conn.executed; _ } ->
      check Alcotest.int "one executed before unknown id" 1 executed);
  check Alcotest.int "second rejection counted" 2
    (Metrics.counter_value (Server.metrics server) "wire.rejected_frames")

(* -------- properties -------- *)

let request_gen =
  let open QCheck2.Gen in
  let xid = map Xid.of_int (int_range 1 10000) in
  let rect =
    map
      (fun (x, y, w, h) -> Geom.rect x y (w + 1) (h + 1))
      (quad (int_range (-2000) 2000) (int_range (-2000) 2000) (int_range 0 4000)
         (int_range 0 4000))
  in
  let name = oneofl [ "WM_NAME"; "WM_CLASS"; "SWM_ROOT"; "X"; "" ] in
  oneof
    [
      map
        (fun ((wid, parent), geom) ->
          Wire.Create_window { wid; parent; geom; border = 1; override_redirect = false })
        (pair (pair xid xid) rect);
      map (fun w -> Wire.Destroy_window w) xid;
      map (fun w -> Wire.Map_window w) xid;
      map
        (fun (w, (x, h)) ->
          Wire.Configure_window
            (w, { Event.no_changes with cx = Some x; ch = Some h }))
        (pair xid (pair (int_range (-500) 500) (int_range 1 500)));
      map
        (fun (w, (n, v)) -> Wire.Change_property { window = w; name = n; value = v })
        (pair xid (pair name (small_string ~gen:printable)));
      map
        (fun (w, bits) ->
          Wire.Select_input
            {
              window = w;
              masks =
                List.filteri
                  (fun i _ -> bits land (1 lsl i) <> 0)
                  [ Event.Substructure_redirect; Event.Structure_notify;
                    Event.Button_press_mask; Event.Exposure_mask ];
            })
        (pair xid (int_range 0 15));
      map (fun (x, y) -> Wire.Warp_pointer (Geom.point x y))
        (pair (int_range (-100) 3000) (int_range (-100) 3000));
      map
        (fun (w, rects) -> Wire.Shape_rectangles { window = w; rects })
        (pair xid (list_size (int_range 0 5) rect));
    ]

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"wire request roundtrip" ~count:500 request_gen (fun req ->
      match Wire.decode_request (Wire.encode_request req) ~pos:0 with
      | Ok (decoded, _) -> decoded = req
      | Error _ -> false)

let prop_stream_roundtrip =
  QCheck2.Test.make ~name:"wire stream roundtrip" ~count:100
    QCheck2.Gen.(list_size (int_range 0 20) request_gen)
    (fun reqs ->
      let bytes = String.concat "" (List.map Wire.encode_request reqs) in
      match Wire.decode_requests bytes with
      | Ok decoded -> decoded = reqs
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "request roundtrips" `Quick test_request_roundtrips;
    Alcotest.test_case "stream decoding" `Quick test_stream_decoding;
    Alcotest.test_case "truncated frames rejected" `Quick test_truncated_rejected;
    Alcotest.test_case "event roundtrips" `Quick test_event_roundtrips;
    Alcotest.test_case "trace record/serialise/replay" `Quick
      test_trace_roundtrip_and_replay;
    Alcotest.test_case "wire-only client under the WM" `Quick
      test_wire_client_under_wm;
    Alcotest.test_case "partial-batch accounting" `Quick
      test_partial_batch_accounting;
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    QCheck_alcotest.to_alcotest prop_stream_roundtrip;
  ]
