(* Observability suite: the flight recorder (ring semantics, snapshots,
   crash reports), the event-loop watchdog, the time-series sampler and its
   swmcmd verbs (f.health / f.stats / f.flightdump), the Prometheus and
   table metric exports, and the satellite fixes that rode along (sticky
   absolute placement, json_string / hist_quantile edge cases).

   The crash-report tests parse every dump with {!Swm_xlib.Json} — the
   exporters hand-build their JSON, so "it parses" is a real check, not a
   tautology. *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
module Xid = Swm_xlib.Xid
module Metrics = Swm_xlib.Metrics
module Recorder = Swm_xlib.Recorder
module Fault = Swm_xlib.Fault
module Json = Swm_xlib.Json
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Vdesk = Swm_core.Vdesk
module Swmcmd = Swm_core.Swmcmd
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock
module Workload = Swm_clients.Workload

let check = Alcotest.check

let fixture ?(extra = "") () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:
        [ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ^ extra ]
      server
  in
  (server, wm, Wm.ctx wm)

let tmp_path name = Filename.temp_file "swm-test" ("-" ^ name)

let parse_ok what text =
  match Json.parse text with
  | Ok j -> j
  | Error msg -> Alcotest.failf "%s: unparseable JSON (%s): %s" what msg text

let member_exn what key j =
  match Json.member key j with
  | Some v -> v
  | None -> Alcotest.failf "%s: missing %S" what key

(* -------- the recorder ring -------- *)

let test_ring_overwrites_oldest () =
  let r = Recorder.create ~capacity:4 () in
  (* Disabled: record is a no-op. *)
  Recorder.record r ~kind:"event" "before start";
  check Alcotest.int "nothing recorded while off" 0 (Recorder.recorded r);
  Recorder.start r;
  for i = 1 to 6 do
    Recorder.record r ~kind:"event" (Printf.sprintf "e%d" i)
  done;
  check Alcotest.int "recorded counts every entry" 6 (Recorder.recorded r);
  check Alcotest.int "dropped = recorded - capacity" 2 (Recorder.dropped r);
  check
    Alcotest.(list string)
    "ring keeps the newest, oldest first"
    [ "e3"; "e4"; "e5"; "e6" ]
    (List.map (fun (e : Recorder.entry) -> e.what) (Recorder.entries r));
  (* Timestamps are monotone within the ring. *)
  let ts = List.map (fun (e : Recorder.entry) -> e.ts_ns) (Recorder.entries r) in
  check Alcotest.bool "timestamps ascend" true (List.sort compare ts = ts);
  (* start clears: a fresh epoch starts from an empty ring. *)
  Recorder.start r;
  check Alcotest.int "start resets recorded" 0 (Recorder.recorded r);
  check Alcotest.int "start empties the ring" 0 (List.length (Recorder.entries r))

let test_snapshot_interval () =
  let r = Recorder.create ~capacity:8 () in
  let calls = ref 0 in
  Recorder.set_snapshot_source r (fun () ->
      incr calls;
      Printf.sprintf "{\"n\":%d}" !calls);
  Recorder.set_snapshot_interval r 3;
  Recorder.start r;
  check Alcotest.bool "no snapshot before any record" true
    (Recorder.last_snapshot r = None);
  for i = 1 to 7 do
    Recorder.record r ~kind:"event" (Printf.sprintf "e%d" i)
  done;
  check Alcotest.int "snapshot every 3 records" 2 !calls;
  (match Recorder.last_snapshot r with
  | Some (_, json) -> check Alcotest.string "latest snapshot" "{\"n\":2}" json
  | None -> Alcotest.fail "expected a snapshot");
  (* A snapshot source that itself records must not recurse. *)
  Recorder.set_snapshot_source r (fun () ->
      Recorder.record r ~kind:"event" "from inside snapshot";
      "{}");
  Recorder.snapshot_now r;
  check Alcotest.bool "no reentrant entries" true
    (List.for_all
       (fun (e : Recorder.entry) -> e.what <> "from inside snapshot")
       (Recorder.entries r))

(* -------- the watchdog -------- *)

let test_watchdog_counts_stalls () =
  let server, wm, ctx = fixture () in
  let recorder = Server.recorder server in
  Recorder.start recorder;
  (* Any dispatch takes at least a nanosecond of wall time: with a 1ns
     threshold, every event is a stall. *)
  ctx.Ctx.watchdog_threshold_ns <- 1;
  let _app = Stock.xterm server () in
  ignore (Wm.step wm);
  let stalls = Metrics.counter_value (Server.metrics server) "watchdog.stalls" in
  check Alcotest.bool "stalls counted" true (stalls > 0);
  check Alcotest.bool "stalls recorded in the ring" true
    (List.exists
       (fun (e : Recorder.entry) -> e.kind = "stall")
       (Recorder.entries recorder));
  (* With a sane threshold, this workload never stalls. *)
  let server2, wm2, ctx2 = fixture () in
  ctx2.Ctx.watchdog_threshold_ns <- 10_000_000_000;
  let _app2 = Stock.xterm server2 () in
  ignore (Wm.step wm2);
  check Alcotest.int "no stalls under a 10s threshold" 0
    (Metrics.counter_value (Server.metrics server2) "watchdog.stalls")

(* -------- crash reports under chaos -------- *)

let entries_of_report report =
  match
    Json.to_list (member_exn "report" "entries" (member_exn "report" "recorder" report))
  with
  | Some l -> l
  | None -> Alcotest.fail "report: entries is not a list"

let entry_kind e =
  match Json.to_string (member_exn "entry" "kind" e) with
  | Some k -> k
  | None -> Alcotest.fail "entry: kind is not a string"

(* The PR's acceptance scenario: a chaos run with the recorder armed
   produces a parseable crash report containing at least one fault entry, a
   state snapshot consistent with the live window table, and a non-empty
   metrics registry. *)
let test_chaos_crash_report () =
  let path = tmp_path "crash.json" in
  if Sys.file_exists path then Sys.remove path;
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let ctx = Wm.ctx wm in
  let recorder = Server.recorder server in
  Recorder.start recorder;
  Recorder.arm_dump recorder ~path;
  let apps = Workload.launch_n server 8 in
  ignore (Wm.step wm);
  (* A destroy-heavy plan: absorbed BadWindows (each one a crash dump) are
     all but guaranteed. *)
  let plan =
    {
      (Fault.storm ~seed:11 ()) with
      Fault.p_destroy_window = 0.25;
      p_kill_connection = 0.;
      p_stall_connection = 0.;
      max_faults = 0;
    }
  in
  let _fault = Server.arm_faults server ~protect:[ ctx.Ctx.conn ] plan in
  let client_side f =
    try f () with Server.Bad_window _ | Server.Bad_access _ -> ()
  in
  for round = 0 to 3 do
    client_side (fun () ->
        Workload.configure_churn server ~seed:(11 + round) ~rounds:2 apps);
    client_side (fun () ->
        Workload.expose_storm server ~seed:(11 + round) ~rounds:1 apps);
    ignore (Wm.step wm)
  done;
  Server.disarm_faults server;
  check Alcotest.bool "the storm provoked crash dumps" true (Recorder.dumps recorder > 0);
  check Alcotest.bool "crash report written" true (Sys.file_exists path);
  let report =
    parse_ok "crash report"
      (In_channel.with_open_text path In_channel.input_all)
  in
  (* At least one injected fault made it into the recorded tail. *)
  check Alcotest.bool "report contains a fault entry" true
    (List.exists (fun e -> entry_kind e = "fault") (entries_of_report report));
  (* The metrics registry embedded in the report is non-empty. *)
  let counters =
    member_exn "report" "counters" (member_exn "report" "metrics" report)
  in
  (match counters with
  | Json.Obj (_ :: _) -> ()
  | _ -> Alcotest.fail "report: metrics.counters is empty");
  (* A fresh dump's snapshot agrees with the live window table. *)
  let fresh =
    parse_ok "fresh dump"
      (Recorder.dump_json recorder ~reason:"test"
         ~metrics:(Server.metrics server)
         ~tracer:(Server.tracer server))
  in
  let snapshot = member_exn "fresh dump" "snapshot" fresh in
  let managed =
    match Json.to_int (member_exn "snapshot" "managed" snapshot) with
    | Some n -> n
    | None -> Alcotest.fail "snapshot: managed is not a number"
  in
  let live = Ctx.all_clients ctx in
  check Alcotest.int "snapshot client count matches the window table"
    (List.length live) managed;
  let snapshot_wins =
    match Json.to_list (member_exn "snapshot" "clients" snapshot) with
    | Some l ->
        List.filter_map
          (fun c -> Json.to_int (member_exn "client" "win" c))
          l
    | None -> Alcotest.fail "snapshot: clients is not a list"
  in
  let live_wins =
    List.sort compare
      (List.map (fun (c : Ctx.client) -> Xid.to_int c.Ctx.cwin) live)
  in
  check
    Alcotest.(list int)
    "snapshot window ids match the window table" live_wins
    (List.sort compare snapshot_wins);
  Sys.remove path

let test_unhandled_exception_dumps () =
  (* An exception escaping a dispatch handler must leave a crash report
     before propagating.  A snapshot source that raises on the Nth call
     would be artificial; instead, poison the confirm callback and drive an
     f.iconify(multiple), whose prompt runs inside dispatch. *)
  let path = tmp_path "unhandled.json" in
  if Sys.file_exists path then Sys.remove path;
  let server, wm, ctx = fixture () in
  let recorder = Server.recorder server in
  Recorder.start recorder;
  Recorder.arm_dump recorder ~path;
  let _app = Stock.xterm server () in
  ignore (Wm.step wm);
  ctx.Ctx.confirm <- (fun _ -> failwith "poisoned confirm");
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 "f.iconify(multiple)";
  (match Wm.step wm with
  | _ -> Alcotest.fail "expected the poisoned dispatch to raise"
  | exception Failure _ -> ());
  check Alcotest.bool "crash report written on unhandled exception" true
    (Sys.file_exists path);
  let report =
    parse_ok "crash report"
      (In_channel.with_open_text path In_channel.input_all)
  in
  (match Json.to_string (member_exn "report" "reason" report) with
  | Some reason ->
      check Alcotest.bool "reason names the exception" true
        (String.length reason > 0)
  | None -> Alcotest.fail "report: reason is not a string");
  Sys.remove path

(* -------- Prometheus exposition -------- *)

let is_prom_name s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_')
       s

(* Parse a sample line's label set — {key="value",...} with the exposition
   format's escapes (backslash, double quote, newline) inside values.
   Returns the (key, raw-escaped-value) pairs; fails the test on malformed
   syntax or an escape the format does not define. *)
let parse_prom_labels name_part b =
  let n = String.length name_part in
  let labels = ref [] in
  let pos = ref (b + 1) in
  let fail fmt = Alcotest.failf fmt name_part in
  let rec scan_value start acc =
    if !pos >= n then fail "unterminated label value: %s"
    else
      match name_part.[!pos] with
      | '"' ->
          Stdlib.incr pos;
          Buffer.contents acc
      | '\\' ->
          if !pos + 1 >= n then fail "dangling escape: %s"
          else begin
            (match name_part.[!pos + 1] with
            | '\\' | '"' | 'n' ->
                Buffer.add_char acc name_part.[!pos];
                Buffer.add_char acc name_part.[!pos + 1]
            | _ -> fail "undefined escape in label value: %s");
            pos := !pos + 2;
            scan_value start acc
          end
      | '\n' -> fail "raw newline in label value: %s"
      | c ->
          Buffer.add_char acc c;
          Stdlib.incr pos;
          scan_value start acc
  in
  let rec scan_pair () =
    let key_start = !pos in
    while !pos < n && name_part.[!pos] <> '=' do
      Stdlib.incr pos
    done;
    if !pos >= n then fail "label without '=': %s";
    let key = String.sub name_part key_start (!pos - key_start) in
    check Alcotest.bool ("label name well-formed: " ^ key) true (is_prom_name key);
    Stdlib.incr pos;
    if !pos >= n || name_part.[!pos] <> '"' then fail "unquoted label value: %s";
    Stdlib.incr pos;
    let value = scan_value !pos (Buffer.create 16) in
    labels := (key, value) :: !labels;
    if !pos >= n then fail "label set missing '}': %s"
    else
      match name_part.[!pos] with
      | ',' ->
          Stdlib.incr pos;
          scan_pair ()
      | '}' ->
          Stdlib.incr pos;
          if !pos <> n then fail "trailing garbage after label set: %s"
      | _ -> fail "expected ',' or '}' in label set: %s"
  in
  scan_pair ();
  List.rev !labels

(* A line-level validator for the text exposition format: every sample line
   is NAME[{key="value",...}] VALUE (label values escape backslash, quote
   and newline), every TYPE comment names a series the samples then use,
   histogram buckets are cumulative per label set and end at +Inf =
   _count. *)
let validate_prometheus text =
  let lines = String.split_on_char '\n' (String.trim text) in
  let bucket_state = Hashtbl.create 8 in
  List.iter
    (fun line ->
      if String.length line = 0 then Alcotest.fail "blank line in exposition"
      else if String.length line > 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
            check Alcotest.bool ("TYPE name well-formed: " ^ name) true
              (is_prom_name name);
            check Alcotest.bool ("TYPE kind known: " ^ kind) true
              (List.mem kind [ "counter"; "gauge"; "histogram" ])
        | _ -> Alcotest.failf "malformed comment line: %s" line
      end
      else begin
        match String.index_opt line ' ' with
        | None -> Alcotest.failf "sample line without value: %s" line
        | Some sp ->
            let name_part = String.sub line 0 sp in
            let value_part = String.sub line (sp + 1) (String.length line - sp - 1) in
            let bare, labels =
              match String.index_opt name_part '{' with
              | None -> (name_part, [])
              | Some b ->
                  (String.sub name_part 0 b, parse_prom_labels name_part b)
            in
            check Alcotest.bool ("sample name well-formed: " ^ bare) true
              (is_prom_name bare);
            (match float_of_string_opt value_part with
            | Some _ -> ()
            | None -> Alcotest.failf "non-numeric value: %s" line);
            (match List.assoc_opt "le" labels with
            | Some le_text ->
                (* Cumulative per series: the bucket-state key includes the
                   non-le labels, so a labeled histogram's series are
                   checked independently. *)
                let series_key =
                  bare
                  ^ String.concat ","
                      (List.filter_map
                         (fun (k, v) ->
                           if k = "le" then None else Some (k ^ "=" ^ v))
                         labels)
                in
                let v = float_of_string value_part in
                let prev =
                  match Hashtbl.find_opt bucket_state series_key with
                  | Some p -> p
                  | None -> 0.
                in
                check Alcotest.bool ("buckets cumulative: " ^ series_key) true
                  (v >= prev);
                Hashtbl.replace bucket_state series_key v;
                if le_text <> "+Inf" then
                  check Alcotest.bool ("le parses: " ^ le_text) true
                    (float_of_string_opt le_text <> None)
            | None -> ())
      end)
    lines

let test_prometheus_roundtrip () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "events.enqueued") 42;
  Metrics.incr (Metrics.counter m "weird-name.with/chars");
  Metrics.record_max (Metrics.gauge m "queue.depth") 17;
  let h = Metrics.histogram m "wm.dispatch_ns" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 5; 100; 5_000; 1_000_000 ];
  let text = Metrics.to_prometheus m in
  validate_prometheus text;
  (* Spot-check the mangling and the counter suffix. *)
  check Alcotest.bool "counter gets _total" true
    (let sub = "swm_events_enqueued_total 42" in
     let rec find i =
       i + String.length sub <= String.length text
       && (String.sub text i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  check Alcotest.bool "non-identifier chars mangled" true
    (let sub = "swm_weird_name_with_chars_total 1" in
     let rec find i =
       i + String.length sub <= String.length text
       && (String.sub text i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  (* +Inf bucket equals _count for every histogram. *)
  let lines = String.split_on_char '\n' text in
  let inf_bucket =
    List.find_map
      (fun l ->
        let prefix = "swm_wm_dispatch_ns_bucket{le=\"+Inf\"} " in
        if String.length l > String.length prefix
           && String.sub l 0 (String.length prefix) = prefix
        then
          float_of_string_opt
            (String.sub l (String.length prefix) (String.length l - String.length prefix))
        else None)
      lines
  in
  check
    (Alcotest.option (Alcotest.float 0.))
    "+Inf bucket is the sample count" (Some 7.) inf_bucket

let test_metrics_table () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "events.enqueued") 3;
  Metrics.record_max (Metrics.gauge m "queue.depth") 9;
  Metrics.observe (Metrics.histogram m "wm.dispatch_ns") 1000;
  let table = Metrics.to_table m in
  List.iter
    (fun needle ->
      let rec find i =
        i + String.length needle <= String.length table
        && (String.sub table i (String.length needle) = needle || find (i + 1))
      in
      check Alcotest.bool ("table mentions " ^ needle) true (find 0))
    [
      "counters:"; "events.enqueued"; "queue.depth"; "wm.dispatch_ns"; "p99";
      "p999";
    ]

(* p999 (satellite): emitted by to_json and to_table, monotone above p99,
   while the Prometheus exposition stays bucket-only (validated above —
   a pXXX summary line would fail its grammar). *)
let test_p999_emitted () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  for i = 1 to 2000 do
    Metrics.observe h (if i <= 1990 then 10 else 100_000)
  done;
  let json = parse_ok "to_json" (Metrics.to_json m) in
  let hist =
    member_exn "histograms" "lat" (member_exn "json" "histograms" json)
  in
  let q name =
    match Json.to_float (member_exn "hist" name hist) with
    | Some v -> v
    | None -> Alcotest.failf "histogram %s is not a number" name
  in
  check Alcotest.bool "p999 above p99 on a heavy tail" true (q "p999" >= q "p99");
  check Alcotest.bool "p999 tracks the hist_quantile estimate" true
    (abs_float (q "p999" -. Metrics.hist_quantile h 0.999) < 1e-6)

(* -------- json_string / hist_quantile edges (satellite c) -------- *)

let test_json_string_escaping () =
  let roundtrip s =
    match Json.parse (Metrics.json_string s) with
    | Ok (Json.Str back) -> back
    | Ok _ -> Alcotest.failf "json_string %S parsed to a non-string" s
    | Error msg -> Alcotest.failf "json_string %S unparseable: %s" s msg
  in
  List.iter
    (fun s -> check Alcotest.string (Printf.sprintf "round-trips %S" s) s (roundtrip s))
    [
      "";
      "plain";
      "with \"quotes\"";
      "back\\slash";
      "new\nline";
      "tab\tand\rreturn";
      "nul\x00byte";
      "ctrl\x01\x1fchars";
      "trailing backslash \\";
      "\"";
    ];
  (* The literal itself never contains a raw control byte. *)
  let lit = Metrics.json_string "a\x00b\nc" in
  check Alcotest.bool "no raw control bytes in the literal" true
    (String.for_all (fun c -> Char.code c >= 0x20) lit)

let test_hist_quantile_edges () =
  let m = Metrics.create () in
  let empty = Metrics.histogram m "empty" in
  check (Alcotest.float 0.) "empty histogram: q=0" 0. (Metrics.hist_quantile empty 0.);
  check (Alcotest.float 0.) "empty histogram: q=1" 0. (Metrics.hist_quantile empty 1.);
  let single = Metrics.histogram m "single" in
  Metrics.observe single 5;
  (* Sample 5 lands in the log2 bucket (3, 7]; q=0 reads the bucket's lower
     edge, q=1 interpolates to the recorded max. *)
  check (Alcotest.float 0.) "single sample: q=0 is the bucket floor" 4.
    (Metrics.hist_quantile single 0.);
  check (Alcotest.float 0.) "single sample: q=1 is the max" 5.
    (Metrics.hist_quantile single 1.);
  (* Out-of-range q clamps rather than raising. *)
  check (Alcotest.float 0.) "q < 0 clamps to 0" 4. (Metrics.hist_quantile single (-3.));
  check (Alcotest.float 0.) "q > 1 clamps to 1" 5. (Metrics.hist_quantile single 7.);
  (* Monotone in q, bounded by the true max. *)
  let spread = Metrics.histogram m "spread" in
  for i = 0 to 100 do
    Metrics.observe spread i
  done;
  let q0 = Metrics.hist_quantile spread 0. in
  let q50 = Metrics.hist_quantile spread 0.5 in
  let q99 = Metrics.hist_quantile spread 0.99 in
  let q100 = Metrics.hist_quantile spread 1. in
  check Alcotest.bool "quantiles are monotone" true (q0 <= q50 && q50 <= q99 && q99 <= q100);
  check Alcotest.bool "q=1 never exceeds the max" true
    (q100 <= float_of_int (Metrics.hist_max spread))

(* -------- the sampler -------- *)

let test_sampler_rates () =
  let m = Metrics.create () in
  let c = Metrics.counter m "events.enqueued" in
  let sp = Metrics.sampler m ~capacity:4 [ "events.enqueued"; "ghost.series" ] in
  check (Alcotest.float 0.) "no samples: rate 0" 0. (Metrics.rate sp "events.enqueued");
  Metrics.sample sp;
  check (Alcotest.float 0.) "one sample: rate 0" 0. (Metrics.rate sp "events.enqueued");
  Metrics.add c 1000;
  Metrics.sample sp;
  check Alcotest.bool "two samples: positive rate" true
    (Metrics.rate sp "events.enqueued" > 0.);
  check (Alcotest.float 0.) "untracked series: rate 0" 0. (Metrics.rate sp "nope");
  check (Alcotest.float 0.) "tracked but never incremented: rate 0" 0.
    (Metrics.rate sp "ghost.series");
  (* The ring retains only the last [capacity] samples. *)
  for _ = 1 to 10 do
    Metrics.sample sp
  done;
  check Alcotest.int "sample_count counts all" 12 (Metrics.sample_count sp);
  check Alcotest.int "ring retains capacity" 4 (Metrics.retained sp);
  (* stats_json parses and carries every tracked series. *)
  let stats = parse_ok "stats_json" (Metrics.stats_json sp) in
  let series = member_exn "stats" "series" stats in
  (match Json.member "events.enqueued" series with
  | Some v ->
      check
        (Alcotest.option Alcotest.int)
        "value is the live counter" (Some 1000)
        (Json.to_int (member_exn "series" "value" v))
  | None -> Alcotest.fail "stats_json: tracked series missing")

let test_stats_tick_samples_from_dispatch () =
  let _server, wm, ctx = fixture () in
  ctx.Ctx.stats_interval <- 1;
  let before = Metrics.sample_count ctx.Ctx.sampler in
  let _app = Stock.xterm _server () in
  ignore (Wm.step wm);
  check Alcotest.bool "dispatch drove the sampler" true
    (Metrics.sample_count ctx.Ctx.sampler > before)

(* -------- the swmcmd verbs -------- *)

let reply_of server wm sender line =
  Swmcmd.send server sender ~screen:0 line;
  ignore (Wm.step wm);
  match Swmcmd.read_result server ~screen:0 with
  | Some text -> text
  | None -> Alcotest.failf "no SWM_RESULT reply to %s" line

let test_f_health () =
  let server, wm, _ctx = fixture () in
  let _app = Stock.xterm server () in
  ignore (Wm.step wm);
  let sender = Server.connect server ~name:"swmcmd" in
  let health = parse_ok "f.health" (reply_of server wm sender "f.health") in
  check
    (Alcotest.option Alcotest.string)
    "status ok" (Some "ok")
    (Json.to_string (member_exn "health" "status" health));
  check Alcotest.bool "dispatched events counted" true
    (match Json.to_int (member_exn "health" "events_dispatched" health) with
    | Some n -> n > 0
    | None -> false);
  (match member_exn "health" "recorder" health with
  | Json.Obj _ as r ->
      check
        (Alcotest.option Alcotest.bool)
        "recorder off by default" (Some false)
        (match Json.member "enabled" r with
        | Some (Json.Bool b) -> Some b
        | _ -> None)
  | _ -> Alcotest.fail "health: recorder is not an object");
  (* A stall flips the status to degraded.  The stall is counted after its
     own dispatch finishes, so provoke one first, then query. *)
  _ctx.Ctx.watchdog_threshold_ns <- 1;
  Swmcmd.send server sender ~screen:0 "f.refresh";
  ignore (Wm.step wm);
  let degraded = parse_ok "f.health" (reply_of server wm sender "f.health") in
  check
    (Alcotest.option Alcotest.string)
    "status degraded after a stall" (Some "degraded")
    (Json.to_string (member_exn "health" "status" degraded))

let test_f_stats () =
  let server, wm, _ctx = fixture () in
  let sender = Server.connect server ~name:"swmcmd" in
  (* Two queries so the sampler has a window to derive rates over. *)
  ignore (reply_of server wm sender "f.panTo(100,100)\nf.stats");
  let stats = parse_ok "f.stats" (reply_of server wm sender "f.stats") in
  let sampler = member_exn "stats" "sampler" stats in
  check Alcotest.bool "at least two samples" true
    (match Json.to_int (member_exn "sampler" "samples" sampler) with
    | Some n -> n >= 2
    | None -> false);
  let derived = member_exn "stats" "derived" stats in
  List.iter
    (fun key ->
      match Json.to_float (member_exn "derived" key derived) with
      | Some v -> check Alcotest.bool (key ^ " finite and non-negative") true (v >= 0.)
      | None -> Alcotest.failf "derived.%s is not a number" key)
    [ "events_per_sec"; "dispatch_per_sec"; "coalesce_ratio"; "faults_per_sec" ];
  (* The sampled series include the dispatch counter, with a live value. *)
  let series = member_exn "sampler" "series" sampler in
  match Json.member "wm.events_dispatched" series with
  | Some v ->
      check Alcotest.bool "dispatch series has a positive value" true
        (match Json.to_int (member_exn "series" "value" v) with
        | Some n -> n > 0
        | None -> false)
  | None -> Alcotest.fail "f.stats: wm.events_dispatched missing"

let test_f_flightdump () =
  let path = tmp_path "flightdump.json" in
  if Sys.file_exists path then Sys.remove path;
  let server, wm, _ctx = fixture () in
  Recorder.start (Server.recorder server);
  let sender = Server.connect server ~name:"swmcmd" in
  (* Give the ring a tail (f.panTo leaves no SWM_RESULT, so no reply). *)
  Swmcmd.send server sender ~screen:0 "f.panTo(50,50)";
  ignore (Wm.step wm);
  let reply =
    parse_ok "f.flightdump"
      (reply_of server wm sender (Printf.sprintf "f.flightdump(%s)" path))
  in
  check
    (Alcotest.option Alcotest.string)
    "reply names the file" (Some path)
    (Json.to_string (member_exn "reply" "flightdump" reply));
  let report =
    parse_ok "flight dump" (In_channel.with_open_text path In_channel.input_all)
  in
  check Alcotest.bool "dump carries recorded entries" true
    (List.length (entries_of_report report) > 0);
  (* The on-demand dump embeds a snapshot even though no crash happened. *)
  (match member_exn "dump" "snapshot" report with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "flight dump: no snapshot");
  Sys.remove path;
  (* Argument-free invocation is an error reply, not a crash. *)
  let err = parse_ok "f.flightdump()" (reply_of server wm sender "f.flightdump") in
  check Alcotest.bool "missing argument is reported" true
    (Json.member "error" err <> None)

let test_f_metrics_formats () =
  let server, wm, _ctx = fixture () in
  let sender = Server.connect server ~name:"swmcmd" in
  (* JSON (bare) still works and parses. *)
  let json = parse_ok "f.metrics" (reply_of server wm sender "f.metrics") in
  (match member_exn "metrics" "counters" json with
  | Json.Obj (_ :: _) -> ()
  | _ -> Alcotest.fail "f.metrics: counters empty");
  (* Prometheus passes the format validator. *)
  validate_prometheus (reply_of server wm sender "f.metrics(prometheus)");
  (* Table mode mentions its section headers. *)
  let table = reply_of server wm sender "f.metrics(table)" in
  let contains needle hay =
    let rec find i =
      i + String.length needle <= String.length hay
      && (String.sub hay i (String.length needle) = needle || find (i + 1))
    in
    find 0
  in
  check Alcotest.bool "table has a counters section" true (contains "counters:" table);
  check Alcotest.bool "bad format is an error reply" true
    (contains "error" (reply_of server wm sender "f.metrics(yaml)"))

(* -------- the lifecycle ledger over swmcmd -------- *)

let test_f_health_ledger () =
  let server, wm, _ctx = fixture () in
  let _app = Stock.xterm server () in
  ignore (Wm.step wm);
  let sender = Server.connect server ~name:"swmcmd" in
  let health = parse_ok "f.health" (reply_of server wm sender "f.health") in
  let ledger = member_exn "health" "ledger" health in
  let n key =
    match Json.to_int (member_exn "ledger" key ledger) with
    | Some v -> v
    | None -> Alcotest.failf "ledger.%s is not a number" key
  in
  check Alcotest.bool "ledger armed by default" true
    (match Json.member "armed" ledger with
    | Some (Json.Bool b) -> b
    | _ -> false);
  check Alcotest.bool "events entered the ledger" true (n "enqueued" > 0);
  check Alcotest.bool "deliveries accounted" true (n "delivered" > 0);
  check Alcotest.int "fate accounting balances in f.health" 0 (n "balance")

let test_f_fate () =
  let server, wm, _ctx = fixture () in
  let _app = Stock.xterm server () in
  ignore (Wm.step wm);
  let sender = Server.connect server ~name:"swmcmd" in
  let reply = parse_ok "f.fate" (reply_of server wm sender "f.fate") in
  let fates =
    match Json.to_list (member_exn "fate" "fates" reply) with
    | Some l -> l
    | None -> Alcotest.fail "f.fate: fates is not a list"
  in
  check Alcotest.bool "fate records present" true (List.length fates > 0);
  List.iter
    (fun f ->
      ignore (member_exn "fate record" "seq" f);
      ignore (member_exn "fate record" "event" f);
      ignore (member_exn "fate record" "fate" f);
      ignore (member_exn "fate record" "conn" f);
      ignore (member_exn "fate record" "survivor" f))
    fates;
  (* Fate records come out oldest-first: seqs ascend. *)
  let seqs = List.filter_map (fun f -> Json.to_int (member_exn "f" "seq" f)) fates in
  check Alcotest.bool "records oldest-first" true (List.sort compare seqs = seqs);
  (match Json.to_int (member_exn "fate" "balance" (member_exn "fate" "ledger" reply)) with
  | Some b -> check Alcotest.int "embedded ledger balances" 0 b
  | None -> Alcotest.fail "f.fate: ledger.balance missing");
  (* The conn filter narrows the records; a nonsense conn yields none. *)
  let none =
    parse_ok "f.fate(ghost)" (reply_of server wm sender "f.fate(no-such-conn)")
  in
  check
    (Alcotest.option (Alcotest.list Alcotest.unit))
    "unknown conn filter matches nothing" (Some [])
    (Option.map (List.map ignore)
       (Json.to_list (member_exn "fate" "fates" none)))

let test_f_waterfall () =
  let path = tmp_path "waterfall.json" in
  if Sys.file_exists path then Sys.remove path;
  let server, wm, _ctx = fixture () in
  let _app = Stock.xterm server () in
  ignore (Wm.step wm);
  let sender = Server.connect server ~name:"swmcmd" in
  (* Some f.* activity inside a dispatch, so the fn trail has content. *)
  Swmcmd.send server sender ~screen:0 "f.panTo(100,100)";
  ignore (Wm.step wm);
  let reply =
    parse_ok "f.waterfall"
      (reply_of server wm sender (Printf.sprintf "f.waterfall(%s)" path))
  in
  check
    (Alcotest.option Alcotest.string)
    "reply names the file" (Some path)
    (Json.to_string (member_exn "reply" "waterfall" reply));
  let wf =
    parse_ok "waterfall" (In_channel.with_open_text path In_channel.input_all)
  in
  let entries =
    match Json.to_list (member_exn "waterfall" "waterfall" wf) with
    | Some l -> l
    | None -> Alcotest.fail "waterfall: not a list"
  in
  check Alcotest.bool "dispatches retained" true (List.length entries > 0);
  let int_of e key =
    match Json.to_int (member_exn "entry" key e) with
    | Some v -> v
    | None -> Alcotest.failf "waterfall entry: %s is not a number" key
  in
  List.iter
    (fun e ->
      check Alcotest.bool "seq links to an ingress record" true (int_of e "seq" > 0);
      check Alcotest.bool "dispatch_ns non-negative" true (int_of e "dispatch_ns" >= 0);
      (* A stamped event's end-to-end spans its queue wait and dispatch. *)
      if int_of e "ingress_ns" > 0 then
        check Alcotest.bool "e2e >= queue + dispatch parts" true
          (int_of e "e2e_ns" >= int_of e "dispatch_ns"
          && int_of e "e2e_ns" >= int_of e "queue_ns"))
    entries;
  (* The SWM_COMMAND dispatch links the f.* it executed. *)
  check Alcotest.bool "some dispatch carries its f.* trail" true
    (List.exists
       (fun e ->
         match Json.to_list (member_exn "entry" "functions" e) with
         | Some (_ :: _) -> true
         | _ -> false)
       entries);
  (* e2e latency landed in the per-class labeled histogram. *)
  let m = Server.metrics server in
  let e2e = Metrics.histogram_family m ~key:"event" "event.e2e_ns" in
  check Alcotest.bool "event.e2e_ns{PropertyNotify} observed" true
    (Metrics.hist_count (Metrics.labeled_histogram e2e "PropertyNotify") > 0);
  Sys.remove path;
  let err = parse_ok "f.waterfall()" (reply_of server wm sender "f.waterfall") in
  check Alcotest.bool "missing argument is reported" true
    (Json.member "error" err <> None)

(* -------- sticky absolute placement (satellite a) -------- *)

let test_sticky_usposition_is_root_absolute () =
  (* USPosition on a sticky window is absolute in glass (root) coordinates:
     panning the desktop first must not shift where it lands. *)
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:
        [
          Templates.open_look;
          "swm*rootPanels:\nswm*panner: False\nswm*desktopSize: 3456x2700\n\
           swm*Sticker*sticky: True\n";
        ]
      server
  in
  let ctx = Wm.ctx wm in
  Vdesk.pan_to ctx ~screen:0 (Geom.point 1000 1000);
  let app =
    Client_app.launch server
      (Client_app.spec ~instance:"pin" ~class_:"Sticker" ~us_position:true
         (Geom.rect 123 234 50 50))
  in
  ignore (Wm.step wm);
  let client = Option.get (Wm.find_client wm (Client_app.window app)) in
  check Alcotest.bool "client is sticky" true client.Ctx.sticky;
  let fgeom = Server.root_geometry server client.Ctx.frame in
  check Alcotest.int "sticky USPosition x ignores the pan" 123 fgeom.x;
  check Alcotest.int "sticky USPosition y ignores the pan" 234 fgeom.y

let suite =
  [
    Alcotest.test_case "recorder ring overwrites oldest" `Quick
      test_ring_overwrites_oldest;
    Alcotest.test_case "snapshots every interval, no reentrancy" `Quick
      test_snapshot_interval;
    Alcotest.test_case "watchdog counts stalls" `Quick test_watchdog_counts_stalls;
    Alcotest.test_case "chaos storm produces a parseable crash report" `Quick
      test_chaos_crash_report;
    Alcotest.test_case "unhandled dispatch exception dumps first" `Quick
      test_unhandled_exception_dumps;
    Alcotest.test_case "prometheus exposition validates" `Quick
      test_prometheus_roundtrip;
    Alcotest.test_case "metrics table format" `Quick test_metrics_table;
    Alcotest.test_case "json_string escaping round-trips" `Quick
      test_json_string_escaping;
    Alcotest.test_case "hist_quantile edges" `Quick test_hist_quantile_edges;
    Alcotest.test_case "sampler windows and rates" `Quick test_sampler_rates;
    Alcotest.test_case "dispatch drives the sampler" `Quick
      test_stats_tick_samples_from_dispatch;
    Alcotest.test_case "f.health" `Quick test_f_health;
    Alcotest.test_case "f.stats" `Quick test_f_stats;
    Alcotest.test_case "f.flightdump" `Quick test_f_flightdump;
    Alcotest.test_case "f.metrics formats" `Quick test_f_metrics_formats;
    Alcotest.test_case "p999 in json and table exports" `Quick test_p999_emitted;
    Alcotest.test_case "f.health embeds a balanced ledger" `Quick
      test_f_health_ledger;
    Alcotest.test_case "f.fate lists fates with lineage" `Quick test_f_fate;
    Alcotest.test_case "f.waterfall links events to effects" `Quick
      test_f_waterfall;
    Alcotest.test_case "sticky USPosition is root-absolute" `Quick
      test_sticky_usposition_is_root_absolute;
  ]
