module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Swmcmd = Swm_core.Swmcmd
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

let fixture () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:[ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]
      server
  in
  (server, wm, Wm.ctx wm)

let client_of wm app = Option.get (Wm.find_client wm (Client_app.window app))

let test_command_executes () =
  let server, wm, _ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 "f.iconify(XTerm)";
  ignore (Wm.step wm);
  check Alcotest.bool "executed" true ((client_of wm app).Ctx.state = Prop.Iconic)

let test_property_deleted_after_execution () =
  let server, wm, _ctx = fixture () in
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 "f.refresh";
  ignore (Wm.step wm);
  check Alcotest.bool "property consumed" true
    (Server.get_property server (Server.root server ~screen:0) ~name:Prop.swm_command
    = None)

let test_multiple_commands_batched () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let sender = Server.connect server ~name:"swmcmd" in
  (* Two sends before the WM wakes up: both lines must run. *)
  Swmcmd.send server sender ~screen:0 "f.iconify(XTerm)";
  Swmcmd.send server sender ~screen:0 "f.exec(beep)";
  ignore (Wm.step wm);
  check Alcotest.bool "first ran" true ((client_of wm app).Ctx.state = Prop.Iconic);
  check (Alcotest.list Alcotest.string) "second ran" [ "beep" ] ctx.Ctx.executed

let test_prompting_from_swmcmd () =
  (* The paper's example: typing `swmcmd f.raise` prompts for a window. *)
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  let other = Stock.xclock server ~at:(Geom.point 600 100) () in
  ignore (Wm.step wm);
  (* Put the clock on top so we can observe the raise. *)
  let clock = client_of wm other in
  Server.raise_window server ctx.Ctx.conn clock.Ctx.frame;
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 "f.raise";
  ignore (Wm.step wm);
  (match ctx.Ctx.mode with
  | Ctx.Prompting _ -> ()
  | _ -> Alcotest.fail "should be prompting");
  Server.warp_pointer server ~screen:0 (Geom.point 150 150);
  Server.press_button server 1;
  ignore (Wm.step wm);
  let term = client_of wm app in
  let top =
    match List.rev (Server.children_of server (Server.root server ~screen:0)) with
    | top :: _ -> top
    | [] -> Alcotest.fail "no children"
  in
  check Alcotest.bool "selected window raised" true
    (Swm_xlib.Xid.equal top term.Ctx.frame)

let test_bad_command_ignored () =
  let server, wm, _ctx = fixture () in
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 "not even a function";
  (* Must not raise. *)
  ignore (Wm.step wm)

let test_bad_command_counted () =
  let server, wm, _ctx = fixture () in
  Swm_xlib.Tracing.start (Server.tracer server);
  let sender = Server.connect server ~name:"swmcmd" in
  Swmcmd.send server sender ~screen:0 "not even a function";
  Swmcmd.send server sender ~screen:0 "f.refresh";
  (* a good line must not count *)
  ignore (Wm.step wm);
  check Alcotest.int "error counted" 1
    (Swm_xlib.Metrics.counter_value (Server.metrics server) "swmcmd.errors");
  (* The offending line survives as a trace breadcrumb. *)
  let errors =
    List.filter
      (fun (e : Swm_xlib.Tracing.event) -> e.ev_name = "swmcmd.error")
      (Swm_xlib.Tracing.events (Server.tracer server))
  in
  match errors with
  | [ e ] ->
      check (Alcotest.option Alcotest.string) "line kept"
        (Some "not even a function")
        (List.assoc_opt "line" e.ev_attrs)
  | l -> Alcotest.failf "expected 1 swmcmd.error instant, got %d" (List.length l)

(* -------- introspection: the channel run in reverse -------- *)

let test_metrics_roundtrip () =
  let server, wm, _ctx = fixture () in
  let sender = Server.connect server ~name:"swmcmd" in
  check (Alcotest.option Alcotest.string) "no reply yet" None
    (Swmcmd.read_result server ~screen:0);
  Swmcmd.send server sender ~screen:0 "f.metrics";
  ignore (Wm.step wm);
  match Swmcmd.read_result server ~screen:0 with
  | None -> Alcotest.fail "f.metrics left no SWM_RESULT"
  | Some json ->
      check Alcotest.bool "looks like the registry dump" true
        (Astring_contains.contains json "\"counters\"")

let test_trace_roundtrip () =
  (* Full vdesk fixture: the pan must produce a vdesk.pan_to span nested in
     the dispatch span, all retrievable out-of-process. *)
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let _xterm = Stock.xterm server ~at:(Geom.point 60 80) () in
  ignore (Wm.step wm);
  let sender = Server.connect server ~name:"swmcmd" in
  let roundtrip line =
    Swmcmd.send server sender ~screen:0 line;
    ignore (Wm.step wm)
  in
  roundtrip "f.trace(start)";
  roundtrip "f.panTo(300,200)";
  roundtrip "f.iconify(XTerm)";
  roundtrip "f.trace(stop)";
  roundtrip "f.trace(dump)";
  match Swmcmd.read_result server ~screen:0 with
  | None -> Alcotest.fail "f.trace(dump) left no SWM_RESULT"
  | Some json ->
      List.iter
        (fun span ->
          check Alcotest.bool (span ^ " span present") true
            (Astring_contains.contains json ("\"name\":\"" ^ span ^ "\"")))
        [ "wm.dispatch"; "f.panto"; "vdesk.pan_to"; "panner.refresh";
          "f.iconify" ]

let test_slowlog_roundtrip () =
  let server, wm, _ctx = fixture () in
  Swm_xlib.Tracing.set_slow_threshold_ns (Server.tracer server) 0;
  let sender = Server.connect server ~name:"swmcmd" in
  let roundtrip line =
    Swmcmd.send server sender ~screen:0 line;
    ignore (Wm.step wm)
  in
  roundtrip "f.trace(start)";
  roundtrip "f.refresh";
  roundtrip "f.slowlog";
  match Swmcmd.read_result server ~screen:0 with
  | None -> Alcotest.fail "f.slowlog left no SWM_RESULT"
  | Some json ->
      check Alcotest.bool "f.refresh made the zero-threshold slow log" true
        (Astring_contains.contains json "\"name\":\"f.refresh\"")

let suite =
  [
    Alcotest.test_case "command executes" `Quick test_command_executes;
    Alcotest.test_case "property deleted after run" `Quick
      test_property_deleted_after_execution;
    Alcotest.test_case "batched commands" `Quick test_multiple_commands_batched;
    Alcotest.test_case "prompting from swmcmd (paper example)" `Quick
      test_prompting_from_swmcmd;
    Alcotest.test_case "bad commands ignored" `Quick test_bad_command_ignored;
    Alcotest.test_case "bad commands counted and traced" `Quick
      test_bad_command_counted;
    Alcotest.test_case "f.metrics round-trip" `Quick test_metrics_roundtrip;
    Alcotest.test_case "f.trace round-trip" `Quick test_trace_roundtrip;
    Alcotest.test_case "f.slowlog round-trip" `Quick test_slowlog_roundtrip;
  ]
