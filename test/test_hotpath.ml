(* Hot-path suite: the arena codec must be byte-identical to the retained
   [Wire.Spec] (Buffer-based) encoders on arbitrary request/event streams,
   decode must round-trip what encode produces, rejected frames must keep
   feeding [wire.rejected_frames] through the cursor-based batch decoder,
   the dispatch table must bind every event kind, and the committed repro
   corpus must stay hex-canonical under the new codec. *)

module Wire = Swm_xlib.Wire
module Server = Swm_xlib.Server
module Wire_conn = Swm_xlib.Wire_conn
module Metrics = Swm_xlib.Metrics
module Replay = Swm_xlib.Replay
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Event = Swm_xlib.Event
module Keysym = Swm_xlib.Keysym
module Wm = Swm_core.Wm

let check = Alcotest.check

(* -------- generators -------- *)

let xid_gen = QCheck2.Gen.(map Xid.of_int (int_range 1 100000))

let rect_gen =
  QCheck2.Gen.(
    map
      (fun (x, y, w, h) -> Geom.rect x y (w + 1) (h + 1))
      (quad (int_range (-3000) 3000) (int_range (-3000) 3000) (int_range 0 5000)
         (int_range 0 5000)))

let point_gen =
  QCheck2.Gen.(
    map (fun (x, y) -> Geom.point x y)
      (pair (int_range (-3000) 3000) (int_range (-3000) 3000)))

let name_gen =
  QCheck2.Gen.oneofl
    [ "WM_NAME"; "WM_CLASS"; "WM_NORMAL_HINTS"; "SWM_ROOT"; "SWM_COMMAND"; "X"; "" ]

let mods_gen =
  QCheck2.Gen.oneofl
    [
      Keysym.no_mods;
      Keysym.mods ~shift:true ();
      Keysym.mods ~control:true ();
      Keysym.mods ~meta:true ();
      Keysym.mods ~shift:true ~meta:true ();
    ]

(* Every optional field independently present, so this reaches all 128
   present-bit combinations — including the 40-byte worst case that the
   event framer truncates. *)
let changes_gen =
  QCheck2.Gen.(
    let opt g = oneof [ return None; map Option.some g ] in
    map
      (fun ((cx, cy, cw), (ch, cborder, (cstack, csibling))) ->
        { Event.cx; cy; cw; ch; cborder; cstack; csibling })
      (pair
         (triple (opt (int_range (-500) 500)) (opt (int_range (-500) 500))
            (opt (int_range 1 500)))
         (triple (opt (int_range 1 500)) (opt (int_range 0 20))
            (pair (opt (oneofl [ Event.Above; Event.Below ])) (opt xid_gen)))))

(* All 16 request constructors. *)
let request_gen =
  let open QCheck2.Gen in
  oneof
    [
      map
        (fun (((wid, parent), geom), (border, ovr)) ->
          Wire.Create_window { wid; parent; geom; border; override_redirect = ovr })
        (pair (pair (pair xid_gen xid_gen) rect_gen) (pair (int_range 0 9) bool));
      map (fun w -> Wire.Destroy_window w) xid_gen;
      map (fun w -> Wire.Map_window w) xid_gen;
      map (fun w -> Wire.Unmap_window w) xid_gen;
      map (fun (w, c) -> Wire.Configure_window (w, c)) (pair xid_gen changes_gen);
      map
        (fun ((window, parent), pos) -> Wire.Reparent_window { window; parent; pos })
        (pair (pair xid_gen xid_gen) point_gen);
      map
        (fun (w, (n, v)) -> Wire.Change_property { window = w; name = n; value = v })
        (pair xid_gen (pair name_gen (small_string ~gen:printable)));
      map
        (fun (w, n) -> Wire.Delete_property { window = w; name = n })
        (pair xid_gen name_gen);
      map
        (fun (w, bits) ->
          Wire.Select_input
            {
              window = w;
              masks =
                List.filteri
                  (fun i _ -> bits land (1 lsl i) <> 0)
                  [
                    Event.Substructure_redirect; Event.Structure_notify;
                    Event.Property_change; Event.Button_press_mask;
                    Event.Pointer_motion_mask; Event.Exposure_mask;
                  ];
            })
        (pair xid_gen (int_range 0 63));
      map (fun w -> Wire.Grab_pointer w) xid_gen;
      return Wire.Ungrab_pointer;
      map (fun p -> Wire.Warp_pointer p) point_gen;
      map (fun w -> Wire.Set_input_focus w) xid_gen;
      map
        (fun (w, rects) -> Wire.Shape_rectangles { window = w; rects })
        (pair xid_gen (list_size (int_range 0 6) rect_gen));
      map (fun w -> Wire.Add_to_save_set w) xid_gen;
      map (fun w -> Wire.Remove_from_save_set w) xid_gen;
    ]

(* All 18 event constructors, including Configure_request frames that
   overflow 32 bytes and get truncated by the framer. *)
let event_gen =
  let open QCheck2.Gen in
  let button_fields =
    map
      (fun ((w, b), (m, (p, rp))) -> (w, b, m, p, rp))
      (pair (pair xid_gen (int_range 1 5)) (pair mods_gen (pair point_gen point_gen)))
  in
  oneof
    [
      map
        (fun (window, parent) -> Event.Map_request { window; parent })
        (pair xid_gen xid_gen);
      map
        (fun ((window, parent), changes) ->
          Event.Configure_request { window; parent; changes })
        (pair (pair xid_gen xid_gen) changes_gen);
      map (fun window -> Event.Map_notify { window }) xid_gen;
      map (fun window -> Event.Unmap_notify { window }) xid_gen;
      map (fun window -> Event.Destroy_notify { window }) xid_gen;
      map
        (fun ((window, parent), pos) -> Event.Reparent_notify { window; parent; pos })
        (pair (pair xid_gen xid_gen) point_gen);
      map
        (fun ((window, geom), (border, synthetic)) ->
          Event.Configure_notify { window; geom; border; synthetic })
        (pair (pair xid_gen rect_gen) (pair (int_range 0 9) bool));
      map
        (fun ((window, name), deleted) -> Event.Property_notify { window; name; deleted })
        (pair (pair xid_gen name_gen) bool);
      map
        (fun (window, button, mods, pos, root_pos) ->
          Event.Button_press { window; button; mods; pos; root_pos })
        button_fields;
      map
        (fun (window, button, mods, pos, root_pos) ->
          Event.Button_release { window; button; mods; pos; root_pos })
        button_fields;
      map
        (fun ((window, keysym), (mods, (pos, root_pos))) ->
          Event.Key_press { window; keysym; mods; pos; root_pos })
        (pair
           (pair xid_gen (oneofl [ "Up"; "Down"; "a"; "F1" ]))
           (pair mods_gen (pair point_gen point_gen)));
      map
        (fun ((window, pos), root_pos) -> Event.Motion_notify { window; pos; root_pos })
        (pair (pair xid_gen point_gen) point_gen);
      map (fun window -> Event.Enter_notify { window }) xid_gen;
      map (fun window -> Event.Leave_notify { window }) xid_gen;
      map (fun window -> Event.Focus_in { window }) xid_gen;
      map (fun window -> Event.Focus_out { window }) xid_gen;
      map
        (fun (window, damage) -> Event.Expose { window; damage })
        (pair xid_gen (oneof [ return None; map Option.some rect_gen ]));
      map
        (fun ((window, name), data) -> Event.Client_message { window; name; data })
        (pair (pair xid_gen name_gen) (small_string ~gen:printable));
    ]

(* Events whose frames fit in 32 bytes round-trip exactly; the truncated
   Configure_request tail is covered by the byte-identity properties. *)
let roundtrip_event_gen =
  (* Fixed string fields hold n-1 bytes before NUL-truncation. *)
  let clamp n s = if String.length s >= n then String.sub s 0 (n - 1) else s in
  QCheck2.Gen.map
    (fun ev ->
      match ev with
      | Event.Client_message { window; name; data } ->
          Event.Client_message { window; name = clamp 13 name; data = clamp 14 data }
      | Event.Configure_request { window; parent; changes } ->
          (* ≤ 4 numeric fields keeps the frame within 32 bytes. *)
          Event.Configure_request
            {
              window;
              parent;
              changes = { changes with cborder = None; cstack = None; csibling = None };
            }
      | ev -> ev)
    event_gen

(* -------- byte identity: arena codec vs the Buffer spec -------- *)

let prop_request_bytes_identical =
  QCheck2.Test.make ~name:"arena request encode == Spec encode" ~count:1000
    request_gen (fun req ->
      String.equal (Wire.encode_request req) (Wire.Spec.encode_request req))

let prop_request_stream_identical =
  QCheck2.Test.make ~name:"arena request stream == Spec stream" ~count:200
    QCheck2.Gen.(list_size (int_range 0 30) request_gen)
    (fun reqs ->
      (* One reused arena across the whole stream, as Wire_conn does. *)
      let a = Wire.A.create 64 in
      List.iter (Wire.encode_request_into a) reqs;
      String.equal (Wire.A.contents a)
        (String.concat "" (List.map Wire.Spec.encode_request reqs)))

let prop_event_bytes_identical =
  QCheck2.Test.make ~name:"arena event encode == Spec encode" ~count:1000 event_gen
    (fun ev -> String.equal (Wire.encode_event ev) (Wire.Spec.encode_event ev))

let prop_batch_bytes_identical =
  QCheck2.Test.make ~name:"arena batch encode == Spec encode" ~count:200
    QCheck2.Gen.(list_size (int_range 0 40) event_gen)
    (fun events ->
      String.equal (Wire.encode_batch events) (Wire.Spec.encode_batch events))

(* -------- decode round-trips through the cursor API -------- *)

let prop_request_cursor_roundtrip =
  QCheck2.Test.make ~name:"cursor decode round-trips request streams" ~count:200
    QCheck2.Gen.(list_size (int_range 0 30) request_gen)
    (fun reqs ->
      let bytes = String.concat "" (List.map Wire.encode_request reqs) in
      let cursor = ref 0 in
      let rec walk acc =
        if !cursor >= String.length bytes then List.rev acc
        else
          match Wire.decode_request_cursor bytes cursor with
          | Ok req -> walk (req :: acc)
          | Error msg -> Alcotest.failf "decode_request_cursor: %s" msg
      in
      walk [] = reqs)

let prop_event_cursor_roundtrip =
  QCheck2.Test.make ~name:"cursor decode round-trips event streams" ~count:200
    QCheck2.Gen.(list_size (int_range 0 20) roundtrip_event_gen)
    (fun events ->
      let a = Wire.A.create 64 in
      List.iter (Wire.encode_event_into a) events;
      let bytes = Wire.A.contents a in
      let cursor = ref 0 in
      let rec walk acc =
        if !cursor >= String.length bytes then List.rev acc
        else
          match Wire.decode_event_cursor bytes cursor with
          | Ok ev -> walk (ev :: acc)
          | Error msg -> Alcotest.failf "decode_event_cursor: %s" msg
      in
      walk [] = events)

let prop_event_code_in_range =
  QCheck2.Test.make ~name:"Event.code is dense and named" ~count:500 event_gen
    (fun ev ->
      let code = Event.code ev in
      code >= 1 && code <= Event.last_event
      && String.equal (Event.name_of_code code) (Event.kind_name ev)
      && not (String.equal (Event.kind_name ev) "Unknown"))

(* -------- rejected frames still count through the cached cursor -------- *)

let test_rejected_frames_counted () =
  let server = Server.create () in
  let wc = Wire_conn.create server ~name:"rej" in
  let rejected () =
    Metrics.counter_value (Server.metrics server) "wire.rejected_frames"
  in
  let wid = Wire_conn.fresh_id wc in
  let root = Wire_conn.root_id wc ~screen:0 in
  let create =
    Wire.encode_request
      (Wire.Create_window
         { wid; parent = root; geom = Geom.rect 0 0 40 40; border = 0;
           override_redirect = false })
  in
  (* Truncated tail after a good frame. *)
  (match
     Wire_conn.submit_bytes wc (create ^ String.sub create 0 (String.length create - 3))
   with
  | Ok n -> Alcotest.failf "truncated frame accepted (Ok %d)" n
  | Error { Wire_conn.executed; _ } -> check Alcotest.int "good frame ran" 1 executed);
  check Alcotest.int "truncation counted" 1 (rejected ());
  (* Garbled opcode. *)
  (match Wire_conn.submit_bytes wc "\xff\x00\x01\x00" with
  | Ok n -> Alcotest.failf "garbage accepted (Ok %d)" n
  | Error _ -> ());
  check Alcotest.int "garbage counted" 2 (rejected ());
  (* Zero-length frame (claims 0 units). *)
  (match Wire_conn.submit_bytes wc "\x03\x00\x00\x00" with
  | Ok n -> Alcotest.failf "zero-length frame accepted (Ok %d)" n
  | Error _ -> ());
  check Alcotest.int "zero-length counted" 3 (rejected ());
  (* The cached decode cursor recovers: a clean batch still executes. *)
  match Wire_conn.submit_bytes wc (Wire.encode_request (Wire.Map_window wid)) with
  | Ok n ->
      check Alcotest.int "clean batch after rejects" 1 n;
      check Alcotest.int "no extra rejects" 3 (rejected ())
  | Error { Wire_conn.error; _ } -> Alcotest.failf "clean batch failed: %s" error

(* -------- dispatch-table exhaustiveness -------- *)

let test_dispatch_table_exhaustive () =
  let codes = Wm.dispatch_table_codes () in
  let sorted = List.sort_uniq compare codes in
  check Alcotest.int "one binding per kind, no duplicates" (List.length codes)
    (List.length sorted);
  check
    Alcotest.(list int)
    "every code in [1 .. last_event] is bound"
    (List.init Event.last_event (fun i -> i + 1))
    sorted

(* -------- committed repro corpus stays hex-canonical -------- *)

let repros_dir =
  if Sys.file_exists "repros" && Sys.is_directory "repros" then "repros"
  else "test/repros"

(* Every wire frame in the corpus must decode under the new codec and
   re-encode to the very same hex: the journal byte format is pinned by
   the committed files, not just by Spec. *)
let test_corpus_hex_canonical () =
  let files =
    Sys.readdir repros_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  check Alcotest.bool "corpus is not empty" true (files <> []);
  let frames = ref 0 and sends = ref 0 in
  let recode_requests file hex =
    match Wire.of_hex hex with
    | Error msg -> Alcotest.failf "%s: bad hex: %s" file msg
    | Ok bytes ->
        let a = Wire.A.create 64 in
        let cursor = ref 0 in
        while !cursor < String.length bytes do
          match Wire.decode_request_cursor bytes cursor with
          | Ok req ->
              Wire.encode_request_into a req;
              incr frames
          | Error msg -> Alcotest.failf "%s: frame decode: %s" file msg
        done;
        check Alcotest.string
          (Printf.sprintf "%s: frame hex canonical" file)
          hex
          (Wire.to_hex (Wire.A.contents a))
  in
  let recode_event file hex =
    match Wire.of_hex hex with
    | Error msg -> Alcotest.failf "%s: bad hex: %s" file msg
    | Ok bytes -> (
        match Wire.decode_event bytes ~pos:0 with
        | Error msg -> Alcotest.failf "%s: event decode: %s" file msg
        | Ok (event, _) ->
            incr sends;
            check Alcotest.string
              (Printf.sprintf "%s: event hex canonical" file)
              hex
              (Wire.to_hex (Wire.encode_event event)))
  in
  List.iter
    (fun file ->
      let path = Filename.concat repros_dir file in
      let text = In_channel.with_open_text path In_channel.input_all in
      match Replay.parse_report text with
      | Error msg -> Alcotest.failf "%s: %s" file msg
      | Ok report ->
          List.iter
            (fun op ->
              match String.split_on_char ' ' op with
              | [ "frame"; _key; hex ] -> recode_requests file hex
              | [ "send"; _key; _dest; hex ] -> recode_event file hex
              | _ -> ())
            report.Replay.ops;
          (* And the corpus still replays to convergence under the new
             dispatch table + codec. *)
          (match Wm.replay report with
          | outcome when Replay.ok outcome -> ()
          | outcome ->
              Alcotest.failf "%s: %s" file (Replay.outcome_to_string outcome)))
    files;
  check Alcotest.bool "corpus exercised wire frames" true (!frames > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_request_bytes_identical;
    QCheck_alcotest.to_alcotest prop_request_stream_identical;
    QCheck_alcotest.to_alcotest prop_event_bytes_identical;
    QCheck_alcotest.to_alcotest prop_batch_bytes_identical;
    QCheck_alcotest.to_alcotest prop_request_cursor_roundtrip;
    QCheck_alcotest.to_alcotest prop_event_cursor_roundtrip;
    QCheck_alcotest.to_alcotest prop_event_code_in_range;
    Alcotest.test_case "rejected frames keep counting" `Quick
      test_rejected_frames_counted;
    Alcotest.test_case "dispatch table binds every event kind" `Quick
      test_dispatch_table_exhaustive;
    Alcotest.test_case "repro corpus is hex-canonical and replays" `Quick
      test_corpus_hex_canonical;
  ]
