module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Functions = Swm_core.Functions
module Bindings = Swm_core.Bindings
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

let fixture ?(extra = "") () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:
        [ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ^ extra ]
      server
  in
  (server, wm, Wm.ctx wm)

let client_of wm app = Option.get (Wm.find_client wm (Client_app.window app))

let run ctx ?client funcs_text =
  let inv = Functions.invocation ?client ~screen:0 () in
  match Functions.execute_string ctx inv funcs_text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "execute %S: %s" funcs_text msg

let top_of_stack server win =
  let parent = Server.parent_of server win in
  match List.rev (Server.children_of server parent) with
  | top :: _ -> Xid.equal top win
  | [] -> false

let test_raise_lower () =
  let server, wm, ctx = fixture () in
  let a = Stock.xterm server ~at:(Geom.point 0 0) () in
  let b = Stock.xterm server ~at:(Geom.point 50 50) ~instance:"xterm2" () in
  ignore (Wm.step wm);
  let ca = client_of wm a and cb = client_of wm b in
  run ctx ~client:ca "f.raise";
  check Alcotest.bool "a on top" true (top_of_stack server ca.Ctx.frame);
  run ctx ~client:cb "f.raise";
  check Alcotest.bool "b on top" true (top_of_stack server cb.Ctx.frame);
  run ctx ~client:cb "f.lower";
  check Alcotest.bool "b no longer on top" false (top_of_stack server cb.Ctx.frame)

let test_save_zoom_restore () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let before = Server.geometry server client.Ctx.frame in
  run ctx ~client "f.save f.zoom";
  let zoomed = Server.geometry server client.Ctx.frame in
  let sw, sh = Server.screen_size server ~screen:0 in
  check Alcotest.bool "zoomed to screen size" true
    (zoomed.w > (sw * 3 / 4) && zoomed.h > (sh * 3 / 4));
  check Alcotest.bool "bigger than before" true (zoomed.w > before.w);
  run ctx ~client "f.save f.zoom";
  let restored = Server.geometry server client.Ctx.frame in
  check Alcotest.bool "restored" true (Geom.rect_equal restored before)

let test_iconify_by_class () =
  let server, wm, ctx = fixture () in
  let t1 = Stock.xterm server () in
  let t2 = Stock.xterm server ~instance:"xterm2" () in
  let clock = Stock.xclock server () in
  ignore (Wm.step wm);
  run ctx "f.iconify(XTerm)";
  check Alcotest.bool "xterm 1 iconic" true ((client_of wm t1).Ctx.state = Prop.Iconic);
  check Alcotest.bool "xterm 2 iconic" true ((client_of wm t2).Ctx.state = Prop.Iconic);
  check Alcotest.bool "xclock untouched" true
    ((client_of wm clock).Ctx.state = Prop.Normal)

let test_multiple_with_confirm () =
  let server, wm, ctx = fixture () in
  let t1 = Stock.xterm server () in
  let clock = Stock.xclock server () in
  ignore (Wm.step wm);
  (* Confirm only the xterm. *)
  ctx.Ctx.confirm <- (fun name -> name = "xterm");
  run ctx "f.iconify(multiple)";
  check Alcotest.bool "confirmed one iconified" true
    ((client_of wm t1).Ctx.state = Prop.Iconic);
  check Alcotest.bool "declined one untouched" true
    ((client_of wm clock).Ctx.state = Prop.Normal)

let test_window_id_target () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let id = Xid.to_int (Client_app.window app) in
  run ctx (Printf.sprintf "f.iconify(#%d)" id);
  check Alcotest.bool "targeted by id" true ((client_of wm app).Ctx.state = Prop.Iconic)

let test_under_pointer_target () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  Server.warp_pointer server ~screen:0 (Geom.point 150 150);
  ignore (Wm.step wm);
  run ctx "f.iconify(#$)";
  check Alcotest.bool "window under pointer" true
    ((client_of wm app).Ctx.state = Prop.Iconic)

let test_prompting_mode () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  (* No current window: the function parks. *)
  run ctx "f.iconify";
  (match ctx.Ctx.mode with
  | Ctx.Prompting [ { Bindings.fname = "f.iconify"; _ } ] -> ()
  | _ -> Alcotest.fail "expected prompting mode");
  (* Clicking the client completes it. *)
  Server.warp_pointer server ~screen:0 (Geom.point 150 150);
  Server.press_button server 1;
  ignore (Wm.step wm);
  check Alcotest.bool "target iconified" true
    ((client_of wm app).Ctx.state = Prop.Iconic);
  check Alcotest.bool "back to idle" true (ctx.Ctx.mode = Ctx.Idle)

let test_prompting_runs_remaining_functions () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let before = Server.geometry server client.Ctx.frame in
  run ctx "f.save f.zoom";
  (* f.save needed a window: both functions wait for the pick. *)
  Server.warp_pointer server ~screen:0 (Geom.point 150 150);
  Server.press_button server 1;
  ignore (Wm.step wm);
  let zoomed = Server.geometry server client.Ctx.frame in
  check Alcotest.bool "zoom ran after prompt" true (zoomed.w > before.w)

let test_exec_records () =
  let _server, _wm, ctx = fixture () in
  run ctx "f.exec(xterm -geometry 80x24)";
  check (Alcotest.list Alcotest.string) "recorded" [ "xterm -geometry 80x24" ]
    ctx.Ctx.executed

let test_quit_and_restart () =
  let _server, _wm, ctx = fixture () in
  run ctx "f.quit";
  check Alcotest.bool "stopped" false ctx.Ctx.running;
  ctx.Ctx.running <- true;
  run ctx "f.restart";
  check Alcotest.bool "restart flag" true ctx.Ctx.restart_requested

let test_delete () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  run ctx ~client "f.delete";
  ignore (Wm.step wm);
  check Alcotest.bool "window destroyed" false
    (Server.window_exists server (Client_app.window app));
  check Alcotest.bool "unmanaged" true (Wm.find_client wm (Client_app.window app) = None)

let test_focus () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  run ctx ~client "f.focus";
  check Alcotest.bool "focus set" true
    (Xid.equal (Server.input_focus server) client.Ctx.cwin)

let test_warp () =
  let server, _wm, ctx = fixture () in
  Server.warp_pointer server ~screen:0 (Geom.point 100 100);
  run ctx "f.warpVertical(-50)";
  check Alcotest.bool "warped up" true
    (Server.pointer_pos server = Geom.point 100 50);
  run ctx "f.warpHorizontal(30)";
  check Alcotest.bool "warped right" true
    (Server.pointer_pos server = Geom.point 130 50)

let test_stick_toggle () =
  let server = Server.create () in
  let wm =
    Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\nswm*panner: False\n" ]
      server
  in
  let ctx = Wm.ctx wm in
  let app = Stock.xclock server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  run ctx ~client "f.stick";
  check Alcotest.bool "stuck" true client.Ctx.sticky;
  run ctx ~client "f.stick";
  check Alcotest.bool "unstuck (toggle)" false client.Ctx.sticky;
  run ctx ~client "f.stick";
  run ctx ~client "f.unstick";
  check Alcotest.bool "f.unstick" false client.Ctx.sticky

let test_sticky_decoration_requery () =
  (* Paper §6.2: decorations can depend on stickiness. *)
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:
        [
          Templates.open_look;
          {|swm*rootPanels:
swm*panner: False
Swm*panel.stickyPanel: button name +C+0 panel client +0+1
swm*sticky*decoration: stickyPanel
|};
        ]
      server
  in
  let ctx = Wm.ctx wm in
  let app = Stock.xclock server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  run ctx ~client "f.stick";
  ignore (Wm.step wm);
  (match client.Ctx.deco with
  | Some deco ->
      check Alcotest.string "sticky decoration in force" "stickyPanel"
        (Swm_oi.Wobj.name deco)
  | None -> Alcotest.fail "no decoration");
  run ctx ~client "f.stick";
  ignore (Wm.step wm);
  match client.Ctx.deco with
  | Some deco ->
      check Alcotest.string "normal decoration restored" "openLook"
        (Swm_oi.Wobj.name deco)
  | None -> Alcotest.fail "no decoration"

let test_menu_post_via_function () =
  let _server, _wm, ctx = fixture () in
  run ctx "f.menu(windowMenu)";
  let scr = Ctx.screen ctx 0 in
  (match scr.Ctx.active_menu with
  | Some (menu, _) ->
      check Alcotest.bool "posted" true (Swm_oi.Menu.is_posted menu)
  | None -> Alcotest.fail "menu not posted");
  run ctx "f.unpostMenu";
  check Alcotest.bool "unposted" true (scr.Ctx.active_menu = None)

let test_places_records_content () =
  let server, wm, ctx = fixture () in
  let _app = Stock.xterm server ~at:(Geom.point 10 20) () in
  ignore (Wm.step wm);
  run ctx "f.places";
  match ctx.Ctx.last_places with
  | Some content ->
      check Alcotest.bool "mentions swmhints" true
        (Astring_contains.contains content "swmhints");
      check Alcotest.bool "mentions the client command" true
        (Astring_contains.contains content "xterm -geometry")
  | None -> Alcotest.fail "no places output"

let test_function_macro () =
  (* f.function(name) runs the swm*function.<name> resource list. *)
  let server, wm, ctx =
    fixture ~extra:"swm*function.parkIt: f.save f.zoom\n" ()
  in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let before = Server.geometry server client.Ctx.frame in
  run ctx ~client "f.function(parkIt)";
  let zoomed = Server.geometry server client.Ctx.frame in
  check Alcotest.bool "macro expanded and ran" true (zoomed.w > before.w)

let test_function_macro_cycle_guard () =
  let _server, _wm, ctx =
    fixture ~extra:"swm*function.loop: f.function(loop)\n" ()
  in
  (* Must terminate (depth guard), not loop forever. *)
  run ctx "f.function(loop)"

let test_delete_icccm_protocol () =
  let server, wm, ctx = fixture () in
  let polite =
    Client_app.launch server
      (Client_app.spec ~instance:"polite" ~graceful_delete:true (Geom.rect 0 0 60 60))
  in
  let rude =
    Client_app.launch server (Client_app.spec ~instance:"rude" (Geom.rect 80 0 60 60))
  in
  ignore (Wm.step wm);
  let polite_client = client_of wm polite and rude_client = client_of wm rude in
  run ctx ~client:polite_client "f.delete";
  (* The polite client still exists until it processes the message... *)
  check Alcotest.bool "not force-destroyed" true
    (Server.window_exists server (Client_app.window polite));
  ignore (Client_app.process_events polite);
  ignore (Wm.step wm);
  check Alcotest.bool "closed itself" false
    (Server.window_exists server (Client_app.window polite));
  (* The rude client is simply destroyed. *)
  run ctx ~client:rude_client "f.delete";
  ignore (Wm.step wm);
  check Alcotest.bool "rude client destroyed" false
    (Server.window_exists server (Client_app.window rude))

let test_identify_popup () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Server.warp_pointer server ~screen:0 (Geom.point 400 400);
  ignore (Wm.step wm);
  run ctx ~client "f.identify";
  let popup = ctx.Ctx.identify_win in
  check Alcotest.bool "popup exists" true (Server.window_exists server popup);
  check Alcotest.bool "popup visible" true (Server.is_viewable server popup);
  check Alcotest.bool "shows the class" true
    (match Server.label_of server popup with
    | Some label -> Astring_contains.contains label "XTerm"
    | None -> false);
  (* The next press anywhere dismisses it. *)
  Server.warp_pointer server ~screen:0 (Geom.point 700 700);
  Server.press_button server 1;
  ignore (Wm.step wm);
  check Alcotest.bool "dismissed" false (Server.window_exists server popup);
  check Alcotest.bool "slot cleared" true (Xid.is_none ctx.Ctx.identify_win)

let test_unknown_function_skipped () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  (* Unknown functions are skipped but reported; the rest still run. *)
  let result =
    Functions.execute_string ctx
      (Functions.invocation ~client ~screen:0 ())
      "f.noSuchThing f.iconify"
  in
  check Alcotest.bool "known function still ran" true
    (client.Ctx.state = Prop.Iconic);
  match result with
  | Error msg ->
      check Alcotest.bool "typo named" true
        (Astring_contains.contains msg "f.noSuchThing")
  | Ok () -> Alcotest.fail "unknown function should be reported"

let suite =
  [
    Alcotest.test_case "f.raise / f.lower" `Quick test_raise_lower;
    Alcotest.test_case "f.save f.zoom toggles" `Quick test_save_zoom_restore;
    Alcotest.test_case "class invocation mode" `Quick test_iconify_by_class;
    Alcotest.test_case "multiple with confirmation" `Quick test_multiple_with_confirm;
    Alcotest.test_case "#id invocation mode" `Quick test_window_id_target;
    Alcotest.test_case "#$ under-pointer mode" `Quick test_under_pointer_target;
    Alcotest.test_case "prompting mode" `Quick test_prompting_mode;
    Alcotest.test_case "prompting runs full list" `Quick
      test_prompting_runs_remaining_functions;
    Alcotest.test_case "f.exec records" `Quick test_exec_records;
    Alcotest.test_case "f.quit / f.restart" `Quick test_quit_and_restart;
    Alcotest.test_case "f.delete" `Quick test_delete;
    Alcotest.test_case "f.focus" `Quick test_focus;
    Alcotest.test_case "f.warpVertical / Horizontal" `Quick test_warp;
    Alcotest.test_case "f.stick toggles" `Quick test_stick_toggle;
    Alcotest.test_case "sticky decoration requery" `Quick test_sticky_decoration_requery;
    Alcotest.test_case "f.menu / f.unpostMenu" `Quick test_menu_post_via_function;
    Alcotest.test_case "f.places output" `Quick test_places_records_content;
    Alcotest.test_case "f.function macros" `Quick test_function_macro;
    Alcotest.test_case "f.function cycle guard" `Quick test_function_macro_cycle_guard;
    Alcotest.test_case "f.delete via WM_DELETE_WINDOW" `Quick
      test_delete_icccm_protocol;
    Alcotest.test_case "f.identify popup" `Quick test_identify_popup;
    Alcotest.test_case "unknown functions skipped" `Quick test_unknown_function_skipped;
  ]
