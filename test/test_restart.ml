(* End-to-end session management (paper §7): save a session with f.places,
   "restart X" (a fresh server), replay the swmhints lines into the
   SWM_PLACES property, start the clients exactly as the places file
   records, and check that swm restores geometry, icon position, sticky
   state and normal/iconic state — across simulated hosts. *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Functions = Swm_core.Functions
module Session = Swm_core.Session
module Icons = Swm_core.Icons
module Vdesk = Swm_core.Vdesk
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

let resources = [ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]

let client_of wm app = Option.get (Wm.find_client wm (Client_app.window app))

(* Simulate what the .xinitrc replacement does at login: one swmhints line
   per client appended to SWM_PLACES, then the clients start. *)
let replay_hints server hints =
  let conn = Server.connect server ~name:"swmhints" in
  let root = Server.root server ~screen:0 in
  List.iter
    (fun hint ->
      Server.append_string_property server conn root ~name:Prop.swm_places
        (Session.hint_to_args hint))
    hints

let test_full_restart_cycle () =
  (* ---- session 1: arrange windows ---- *)
  let server1 = Server.create () in
  let wm1 = Wm.start ~resources server1 in
  let ctx1 = Wm.ctx wm1 in
  let term = Stock.xterm server1 ~at:(Geom.point 60 80) () in
  let clock = Stock.xclock server1 ~at:(Geom.point 900 40) () in
  ignore (Wm.step wm1);
  (* Resize the xterm (like the paper's oclock example), iconify the clock. *)
  Client_app.resize_self term (520, 340);
  ignore (Wm.step wm1);
  let clock_client = client_of wm1 clock in
  clock_client.Ctx.icon_pos <- Some (Geom.point 0 0);
  Icons.iconify ctx1 clock_client;
  let term_frame = Server.geometry server1 (client_of wm1 term).Ctx.frame in
  (* Save. *)
  let hints = Functions.places_hints ctx1 in
  check Alcotest.int "two restartable clients" 2 (List.length hints);

  (* ---- "restart X": fresh server, replay hints, restart clients ---- *)
  let server2 = Server.create () in
  replay_hints server2 hints;
  (* Clients restart with the same WM_COMMAND, default geometry (they know
     nothing about the saved session). *)
  let term2 = Stock.xterm server2 () in
  let clock2 = Stock.xclock server2 () in
  let wm2 = Wm.start ~resources server2 in
  ignore (Wm.step wm2);

  (* ---- the session must be restored ---- *)
  let term_client2 = client_of wm2 term2 in
  let clock_client2 = client_of wm2 clock2 in
  let term_geom2 = Server.geometry server2 term_client2.Ctx.cwin in
  check Alcotest.int "xterm width restored" 520 term_geom2.w;
  check Alcotest.int "xterm height restored" 340 term_geom2.h;
  let term_frame2 = Server.geometry server2 term_client2.Ctx.frame in
  check Alcotest.int "xterm frame x restored" term_frame.x term_frame2.x;
  check Alcotest.int "xterm frame y restored" term_frame.y term_frame2.y;
  check Alcotest.bool "clock iconic again" true
    (clock_client2.Ctx.state = Prop.Iconic);
  check Alcotest.bool "clock icon position restored" true
    (clock_client2.Ctx.icon_pos = Some (Geom.point 0 0))

let test_sticky_restored () =
  let server1 = Server.create () in
  let wm1 = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server1 in
  let ctx1 = Wm.ctx wm1 in
  let clock = Stock.xclock server1 ~at:(Geom.point 500 40) () in
  ignore (Wm.step wm1);
  Vdesk.set_sticky ctx1 (client_of wm1 clock) true;
  let hints = Functions.places_hints ctx1 in
  let server2 = Server.create () in
  replay_hints server2 hints;
  let clock2 = Stock.xclock server2 () in
  let wm2 = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server2 in
  ignore (Wm.step wm2);
  check Alcotest.bool "sticky restored" true (client_of wm2 clock2).Ctx.sticky

let test_remote_client_matching () =
  (* Two clients with the same command on different hosts must be matched
     by WM_CLIENT_MACHINE. *)
  let hints =
    [
      {
        Session.geometry = Geom.rect 100 100 200 150;
        icon_geometry = None;
        state = Prop.Normal;
        sticky = false;
        command = "xload";
        host = Some "hostA";
      };
      {
        Session.geometry = Geom.rect 700 100 200 150;
        icon_geometry = None;
        state = Prop.Normal;
        sticky = false;
        command = "xload";
        host = Some "hostB";
      };
    ]
  in
  let server = Server.create () in
  replay_hints server hints;
  let on_b =
    Client_app.launch server
      (Client_app.spec ~instance:"xload" ~class_:"XLoad" ~command:"xload" ~host:"hostB"
         (Geom.rect 0 0 50 50))
  in
  let on_a =
    Client_app.launch server
      (Client_app.spec ~instance:"xload" ~class_:"XLoad" ~command:"xload" ~host:"hostA"
         (Geom.rect 0 0 50 50))
  in
  let wm = Wm.start ~resources server in
  ignore (Wm.step wm);
  let frame_b = Server.geometry server (client_of wm on_b).Ctx.frame in
  let frame_a = Server.geometry server (client_of wm on_a).Ctx.frame in
  check Alcotest.int "hostB window at hostB's slot" 700 frame_b.x;
  check Alcotest.int "hostA window at hostA's slot" 100 frame_a.x

let test_unmatched_clients_placed_normally () =
  let server = Server.create () in
  replay_hints server
    [
      {
        Session.geometry = Geom.rect 100 100 200 150;
        icon_geometry = None;
        state = Prop.Normal;
        sticky = false;
        command = "something-else";
        host = None;
      };
    ];
  let app =
    Client_app.launch server
      (Client_app.spec ~instance:"unrelated" ~us_position:true (Geom.rect 40 40 60 60))
  in
  let wm = Wm.start ~resources server in
  ignore (Wm.step wm);
  let fgeom = Server.geometry server (client_of wm app).Ctx.frame in
  check Alcotest.int "own position kept" 40 fgeom.x;
  (* The table entry is still there for a client that never came. *)
  check Alcotest.int "hint unconsumed" 1 (Session.size (Wm.ctx wm).Ctx.session)

let test_places_file_roundtrip_through_disk_format () =
  (* places_file output is parseable and the recovered hints drive a
     restart (ties §7's two steps together textually). *)
  let server1 = Server.create () in
  let wm1 = Wm.start ~resources server1 in
  let _term = Stock.xterm server1 ~at:(Geom.point 123 77) () in
  ignore (Wm.step wm1);
  let content =
    Session.places_file ~display:":0" ~local_host:"localhost"
      (Functions.places_hints (Wm.ctx wm1))
  in
  match Session.parse_places_file content with
  | Error msg -> Alcotest.fail msg
  | Ok hints ->
      let server2 = Server.create () in
      replay_hints server2 hints;
      let term2 = Stock.xterm server2 () in
      let wm2 = Wm.start ~resources server2 in
      ignore (Wm.step wm2);
      let fgeom = Server.geometry server2 (client_of wm2 term2).Ctx.frame in
      check Alcotest.int "restored through file format" 123 fgeom.x

let test_restart_from_autosave () =
  (* Crash-safety: the WM is killed without ever running f.places, and the
     next session restores sticky/iconic state and geometry from the
     periodic autosave file alone. *)
  let path = Filename.temp_file "swm_autosave" ".places" in
  Sys.remove path;
  let autosave_resources =
    [
      Templates.open_look;
      "swm*rootPanels:\n"
      ^ Printf.sprintf "swm*autosaveFile: %s\nswm*autosaveInterval: 3\n" path;
    ]
  in
  let server1 = Server.create () in
  let wm1 = Wm.start ~resources:autosave_resources server1 in
  let ctx1 = Wm.ctx wm1 in
  check Alcotest.bool "autosaveFile resource read" true
    (ctx1.Ctx.autosave_path = Some path);
  check Alcotest.int "autosaveInterval resource read" 3 ctx1.Ctx.autosave_interval;
  let term = Stock.xterm server1 ~at:(Geom.point 60 80) () in
  let clock = Stock.xclock server1 ~at:(Geom.point 900 40) () in
  ignore (Wm.step wm1);
  Vdesk.set_sticky ctx1 (client_of wm1 term) true;
  let clock_client = client_of wm1 clock in
  clock_client.Ctx.icon_pos <- Some (Geom.point 0 0);
  Icons.iconify ctx1 clock_client;
  (* Enough dispatched events to cross the interval: autosave fires on its
     own, no f.places anywhere. *)
  for i = 1 to 6 do
    Client_app.resize_self term (400 + i, 300);
    ignore (Wm.step wm1)
  done;
  check Alcotest.bool "autosave file written" true (Sys.file_exists path);

  (* The WM "crashes": no shutdown hook runs, the file is all that's left. *)
  let content =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Sys.remove path;
    s
  in
  let r = Session.read_places content in
  check Alcotest.bool "autosave checksum valid" true (r.Session.p_checksum = `Valid);
  check Alcotest.int "no rejected lines" 0 r.Session.p_rejected;
  check Alcotest.int "both clients autosaved" 2 (List.length r.Session.hints);

  (* Next login: replay the autosaved hints, restart the clients. *)
  let server2 = Server.create () in
  replay_hints server2 r.Session.hints;
  let term2 = Stock.xterm server2 () in
  let clock2 = Stock.xclock server2 () in
  let wm2 = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server2 in
  ignore (Wm.step wm2);
  check Alcotest.bool "term adopted" true (Wm.find_client wm2 (Client_app.window term2) <> None);
  check Alcotest.bool "clock adopted" true (Wm.find_client wm2 (Client_app.window clock2) <> None);
  check Alcotest.bool "sticky restored from autosave" true
    (client_of wm2 term2).Ctx.sticky;
  check Alcotest.bool "iconic restored from autosave" true
    ((client_of wm2 clock2).Ctx.state = Prop.Iconic)

(* Paper §7: xplaces assumes Xt command-line options, so XView clients are
   "out in the cold"; swm's WM_COMMAND matching restores both. *)
let test_xplaces_vs_swm_for_non_xt_toolkits () =
  let module Xplaces = Swm_baselines.Xplaces in
  (* Session 1: an Xt client and an XView client, both moved by the user. *)
  let server1 = Server.create () in
  let wm1 = Wm.start ~resources server1 in
  let xt_app =
    Client_app.launch server1
      (Client_app.spec ~instance:"xtapp" ~class_:"XtApp" ~command:"xtapp"
         ~us_position:true (Geom.rect 100 150 200 100))
  in
  let xview_app =
    Client_app.launch server1
      (Client_app.spec ~instance:"cmdtool" ~class_:"Cmdtool"
         ~command:"cmdtool -Wp 10 10 -Ws 300 200" ~us_position:true
         (Geom.rect 600 400 300 200))
  in
  ignore (Wm.step wm1);
  ignore (xt_app, xview_app);

  (* Both tools snapshot the same session. *)
  let xplaces_script = Xplaces.snapshot server1 ~screen:0 in
  let swm_hints = Functions.places_hints (Wm.ctx wm1) in

  (* --- restart via xplaces: each client starts with the script's command
     line and places itself per its toolkit's option parsing. --- *)
  let restored_by_xplaces =
    (* Each script line is the command the user's .xinitrc now runs; the
       client parses it with its own toolkit's rules. *)
    String.split_on_char '\n' xplaces_script
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" then None
           else begin
             let flavour = Xplaces.Toolkit_sim.flavour_of_command line in
             let geom =
               Xplaces.Toolkit_sim.apply_options flavour line
                 ~default:(Geom.rect 0 0 120 80)
             in
             Some (line, geom)
           end)
  in
  let xt_restored =
    List.find (fun (c, _) -> String.length c >= 5 && String.sub c 0 5 = "xtapp")
      restored_by_xplaces
  in
  let xview_restored =
    List.find (fun (c, _) -> String.length c >= 7 && String.sub c 0 7 = "cmdtool")
      restored_by_xplaces
  in
  (* The Xt client honours -geometry: position survives (modulo frame). *)
  check Alcotest.bool "xplaces restores the Xt client" true
    (abs ((snd xt_restored).Geom.x - 100) < 32);
  (* The XView client ignored -geometry and re-read its own -Wp: it is back
     at 10,10, not at 600,400 — the failure the paper describes. *)
  check Alcotest.int "xplaces loses the XView client's position" 10
    (snd xview_restored).Geom.x;

  (* --- restart via swm: WM_COMMAND matching is toolkit-independent. --- *)
  let server2 = Server.create () in
  replay_hints server2 swm_hints;
  let xview2 =
    Client_app.launch server2
      (Client_app.spec ~instance:"cmdtool" ~class_:"Cmdtool"
         ~command:"cmdtool -Wp 10 10 -Ws 300 200" (Geom.rect 10 10 300 200))
  in
  let wm2 = Wm.start ~resources server2 in
  ignore (Wm.step wm2);
  let frame = (client_of wm2 xview2).Ctx.frame in
  let g = Server.geometry server2 frame in
  check Alcotest.int "swm restores the XView client" 600 g.x

let suite =
  [
    Alcotest.test_case "full save/restart cycle" `Quick test_full_restart_cycle;
    Alcotest.test_case "xplaces fails non-Xt toolkits; swm does not" `Quick
      test_xplaces_vs_swm_for_non_xt_toolkits;
    Alcotest.test_case "sticky state restored" `Quick test_sticky_restored;
    Alcotest.test_case "remote clients matched by host" `Quick
      test_remote_client_matching;
    Alcotest.test_case "unmatched clients placed normally" `Quick
      test_unmatched_clients_placed_normally;
    Alcotest.test_case "roundtrip through the places file" `Quick
      test_places_file_roundtrip_through_disk_format;
    Alcotest.test_case "restart from the autosave file" `Quick
      test_restart_from_autosave;
  ]
