module Session = Swm_core.Session
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop

let check = Alcotest.check

let sample_hint =
  {
    Session.geometry = Geom.rect 1010 359 120 120;
    icon_geometry = Some (Geom.point 0 0);
    state = Prop.Normal;
    sticky = false;
    command = "oclock -geom 100x100";
    host = None;
  }

let test_args_paper_example () =
  (* The paper's §7 example encoding. *)
  let args = Session.hint_to_args sample_hint in
  check Alcotest.bool "geometry" true
    (String.length args > 0
    && Astring_contains.contains args "-geometry 120x120+1010+359");
  check Alcotest.bool "icon geometry" true
    (Astring_contains.contains args "-icongeometry +0+0");
  check Alcotest.bool "state" true (Astring_contains.contains args "-state NormalState");
  check Alcotest.bool "cmd quoted" true
    (Astring_contains.contains args "-cmd \"oclock -geom 100x100\"")

let test_args_roundtrip () =
  List.iter
    (fun hint ->
      match Session.hint_of_args (Session.hint_to_args hint) with
      | Ok parsed ->
          check Alcotest.bool "geometry" true
            (Geom.rect_equal parsed.Session.geometry hint.Session.geometry);
          check Alcotest.bool "icon" true
            (parsed.icon_geometry = hint.icon_geometry);
          check Alcotest.bool "state" true (parsed.state = hint.state);
          check Alcotest.bool "sticky" true (parsed.sticky = hint.sticky);
          check Alcotest.string "command" hint.command parsed.command;
          check Alcotest.bool "host" true (parsed.host = hint.host)
      | Error msg -> Alcotest.fail msg)
    [
      sample_hint;
      { sample_hint with sticky = true; state = Prop.Iconic; icon_geometry = None };
      { sample_hint with host = Some "goofy"; command = "xterm -e \"vi file\"" };
    ]

let test_args_errors () =
  List.iter
    (fun bad ->
      match Session.hint_of_args bad with
      | Ok _ -> Alcotest.failf "expected %S to fail" bad
      | Error _ -> ())
    [
      "";
      "-geometry 100x100+0+0";
      (* no -cmd *)
      "-cmd \"x\"";
      (* no geometry *)
      "-geometry bogus -cmd \"x\"";
      "-state NoSuchState -geometry 10x10+0+0 -cmd \"x\"";
      "-cmd \"unterminated";
    ]

let test_table_matching () =
  let table = Session.create_table () in
  Session.add table sample_hint;
  Session.add table { sample_hint with command = "xterm"; host = Some "hostA" };
  check Alcotest.int "two entries" 2 (Session.size table);
  (* Host must match when both sides name one. *)
  check Alcotest.bool "wrong host" true
    (Session.take_match table ~command:"xterm" ~host:(Some "hostB") = None);
  check Alcotest.bool "right host" true
    (Session.take_match table ~command:"xterm" ~host:(Some "hostA") <> None);
  check Alcotest.int "entry consumed" 1 (Session.size table);
  (* Entries restore at most one window each. *)
  check Alcotest.bool "first oclock" true
    (Session.take_match table ~command:"oclock -geom 100x100" ~host:None <> None);
  check Alcotest.bool "second oclock has no entry" true
    (Session.take_match table ~command:"oclock -geom 100x100" ~host:None = None)

let test_identical_commands_limitation () =
  (* Two windows with identical WM_COMMAND: swm cannot distinguish them;
     matches are first-come-first-served. *)
  let table = Session.create_table () in
  Session.add table { sample_hint with geometry = Geom.rect 0 0 10 10 };
  Session.add table { sample_hint with geometry = Geom.rect 50 50 10 10 };
  let first =
    Option.get (Session.take_match table ~command:sample_hint.command ~host:None)
  in
  check Alcotest.int "first entry wins" 0 first.geometry.x;
  let second =
    Option.get (Session.take_match table ~command:sample_hint.command ~host:None)
  in
  check Alcotest.int "then the second" 50 second.geometry.x

let test_load () =
  let table = Session.create_table () in
  let text =
    Session.hint_to_args sample_hint ^ "\n\n"
    ^ Session.hint_to_args { sample_hint with command = "xterm" }
  in
  let stats = Session.load table text in
  check Alcotest.int "loaded" 2 stats.Session.loaded;
  check Alcotest.int "rejected" 0 stats.Session.rejected;
  check Alcotest.int "size" 2 (Session.size table)

let test_load_salvages_good_lines () =
  (* SWM_PLACES is client-writable: bad lines are skipped and counted, good
     ones still load, and load never raises. *)
  let table = Session.create_table () in
  let text =
    "-geometry garbage -cmd \"x\"\n"
    ^ Session.hint_to_args sample_hint
    ^ "\n-cmd \"unterminated\n"
  in
  let stats = Session.load table text in
  check Alcotest.int "loaded" 1 stats.Session.loaded;
  check Alcotest.int "rejected" 2 stats.Session.rejected;
  check Alcotest.bool "first error reported" true (stats.Session.first_error <> None);
  check Alcotest.int "size" 1 (Session.size table)

let test_args_hostile () =
  (* Malformed / hostile swmhints input must return Error, never raise:
     these bytes can arrive from any client via SWM_PLACES (or from the
     fault injector garbling the property). *)
  List.iter
    (fun bad ->
      match Session.hint_of_args bad with
      | Ok _ -> Alcotest.failf "expected %S to fail" bad
      | Error _ -> ()
      | exception e ->
          Alcotest.failf "hint_of_args raised on %S: %s" bad (Printexc.to_string e))
    [
      (* unbalanced quotes, in both positions *)
      "-geometry 10x10+0+0 -cmd \"xterm";
      "-geometry 10x10+0+0 -cmd xterm\"";
      "\"";
      (* missing -cmd entirely *)
      "-geometry 10x10+0+0 -state NormalState -sticky";
      (* oversized geometry numerals: int_of_string overflow territory *)
      "-geometry 999999999999999999999999x10+0+0 -cmd \"x\"";
      "-geometry 10x10+99999999999999999999999999+0 -cmd \"x\"";
      (* flag with no value at end of line *)
      "-geometry 10x10+0+0 -cmd \"x\" -state";
      (* binary junk, as after wire corruption *)
      "-geometry \x00\xff\x01 -cmd \"\x07\"";
    ]

let test_places_file () =
  let hints =
    [
      sample_hint;
      { sample_hint with command = "xterm"; host = Some "remotehost"; sticky = true };
    ]
  in
  let content = Session.places_file ~display:":0" ~local_host:"localhost" hints in
  check Alcotest.bool "local start line" true
    (Astring_contains.contains content "oclock -geom 100x100 &");
  check Alcotest.bool "remote start wrapped" true
    (Astring_contains.contains content "rsh remotehost \"env DISPLAY=:0 xterm\" &");
  check Alcotest.bool "swmhints lines" true
    (Astring_contains.contains content "swmhints -geometry");
  (* And it parses back. *)
  match Session.parse_places_file content with
  | Ok parsed ->
      check Alcotest.int "both hints recovered" 2 (List.length parsed);
      check Alcotest.bool "sticky preserved" true
        (List.exists (fun h -> h.Session.sticky) parsed)
  | Error msg -> Alcotest.fail msg

let test_places_checksum () =
  let content = Session.places_file ~display:":0" ~local_host:"localhost" [ sample_hint ] in
  check Alcotest.bool "checksum trailer present" true
    (Astring_contains.contains content Session.checksum_prefix);
  (match Session.read_places content with
  | { Session.p_checksum = `Valid; p_rejected = 0; hints = [ _ ]; _ } -> ()
  | _ -> Alcotest.fail "pristine file should verify");
  (* Tamper with a body byte: strict parse refuses, lenient read reports. *)
  let tampered =
    String.mapi (fun i c -> if i = 10 && c <> 'Z' then 'Z' else c) content
  in
  (match Session.parse_places_file tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered file should fail strict parse");
  (match Session.read_places tampered with
  | { Session.p_checksum = `Mismatch; _ } -> ()
  | _ -> Alcotest.fail "tampered file should report Mismatch");
  (* A checksum-less file (pre-upgrade format) is still accepted. *)
  let lines = String.split_on_char '\n' content in
  let body =
    List.filter
      (fun l -> not (Astring_contains.contains l Session.checksum_prefix))
      lines
    |> String.concat "\n"
  in
  match Session.parse_places_file body with
  | Ok [ _ ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "checksum-less file should still parse"

let test_places_truncated () =
  (* A crash mid-write leaves a prefix of the file: lenient read salvages
     whole swmhints lines and flags the checksum, and never raises. *)
  let hints = [ sample_hint; { sample_hint with command = "xterm" } ] in
  let content = Session.places_file ~display:":0" ~local_host:"localhost" hints in
  for cut = 0 to String.length content - 1 do
    let prefix = String.sub content 0 cut in
    let r = Session.read_places prefix in
    check Alcotest.bool "truncated checksum never Valid or salvage ok" true
      (r.Session.p_checksum <> `Valid || List.length r.Session.hints <= 2)
  done

let test_write_atomic () =
  let path = Filename.temp_file "swm_places" ".test" in
  Session.write_atomic ~path "hello\n";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  check Alcotest.string "content written" "hello" line;
  check Alcotest.bool "tmp file cleaned up" false (Sys.file_exists (path ^ ".tmp"))

let test_custom_remote_format () =
  let hints = [ { sample_hint with host = Some "faraway" } ] in
  let content =
    Session.places_file ~remote_format:"ssh %h -- DISPLAY=%d %c &" ~display:":1"
      ~local_host:"localhost" hints
  in
  check Alcotest.bool "custom format used" true
    (Astring_contains.contains content "ssh faraway -- DISPLAY=:1 oclock -geom 100x100 &")

(* Property: hint_to_args/hint_of_args roundtrips for generated hints. *)
let hint_gen =
  QCheck2.Gen.(
    map
      (fun ((x, y, w, h), sticky, statei, cmd_tail) ->
        {
          Session.geometry = Geom.rect x y (w + 1) (h + 1);
          icon_geometry = None;
          state = (if statei then Prop.Normal else Prop.Iconic);
          sticky;
          command = "cmd" ^ String.concat "" (List.map string_of_int cmd_tail);
          host = None;
        })
      (quad
         (quad (int_range 0 3000) (int_range 0 3000) (int_range 1 2000)
            (int_range 1 2000))
         bool bool
         (list_size (int_range 0 5) (int_range 0 9))))

let prop_roundtrip =
  QCheck2.Test.make ~name:"swmhints args roundtrip" ~count:300 hint_gen (fun hint ->
      match Session.hint_of_args (Session.hint_to_args hint) with
      | Ok parsed ->
          Geom.rect_equal parsed.Session.geometry hint.Session.geometry
          && parsed.sticky = hint.sticky && parsed.state = hint.state
          && String.equal parsed.command hint.command
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "paper example encoding" `Quick test_args_paper_example;
    Alcotest.test_case "args roundtrip" `Quick test_args_roundtrip;
    Alcotest.test_case "args errors" `Quick test_args_errors;
    Alcotest.test_case "table matching and removal" `Quick test_table_matching;
    Alcotest.test_case "identical WM_COMMAND limitation" `Quick
      test_identical_commands_limitation;
    Alcotest.test_case "load property text" `Quick test_load;
    Alcotest.test_case "load salvages good lines" `Quick test_load_salvages_good_lines;
    Alcotest.test_case "hostile swmhints input" `Quick test_args_hostile;
    Alcotest.test_case "places file" `Quick test_places_file;
    Alcotest.test_case "places checksum" `Quick test_places_checksum;
    Alcotest.test_case "places truncated read" `Quick test_places_truncated;
    Alcotest.test_case "atomic write" `Quick test_write_atomic;
    Alcotest.test_case "custom remote format" `Quick test_custom_remote_format;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
