(* Regenerate the committed replay corpus under test/repros/.

   Each corpus file is the compact repro form of a recorded session —
   {!Swm_xlib.Replay.repro_json} — and the replay suite re-executes all of
   them as regression tests.  Usage:

     dune exec test/gen/gen_repros.exe -- test/repros

   Every file is verified to replay clean before it is written; the
   generator fails loudly otherwise, so a corpus refresh cannot commit a
   broken repro. *)

module Server = Swm_xlib.Server
module Recorder = Swm_xlib.Recorder
module Replay = Swm_xlib.Replay
module Fault = Swm_xlib.Fault
module Xid = Swm_xlib.Xid
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Templates = Swm_core.Templates
module Swmcmd = Swm_core.Swmcmd
module Workload = Swm_clients.Workload

let resources =
  [ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]

let client_side f =
  try f () with Server.Bad_window _ | Server.Bad_access _ -> ()

(* Same recording shape as the replay test suite: WM + recorder + storms,
   optionally under a fault plan. *)
let record_session ~clients ~rounds ~seed ?plan () =
  let server = Server.create () in
  let wm = Wm.start ~resources server in
  let recorder = Server.recorder server in
  Recorder.start recorder;
  let ctx = Wm.ctx wm in
  let apps = Workload.launch_n server clients in
  ignore (Wm.step wm);
  (match plan with
  | Some p -> ignore (Server.arm_faults server ~protect:[ ctx.Ctx.conn ] p)
  | None -> ());
  let sender = Server.connect server ~name:"cmd" in
  for round = 0 to rounds - 1 do
    let sub = (seed * 31) + round in
    client_side (fun () -> Workload.motion_storm server ~seed:sub ~steps:15 ());
    ignore (Wm.step wm);
    client_side (fun () ->
        Workload.configure_churn server ~seed:sub ~rounds:1 apps);
    ignore (Wm.step wm);
    client_side (fun () -> Workload.expose_storm server ~seed:sub ~rounds:1 apps);
    ignore (Wm.step wm);
    List.iteri
      (fun i (c : Ctx.client) ->
        let verb = if (i + round) mod 3 = 0 then "f.iconify" else "f.deiconify" in
        client_side (fun () ->
            Swmcmd.send server sender ~screen:0
              (Printf.sprintf "%s(#%d)" verb (Xid.to_int c.Ctx.cwin))))
      (Ctx.all_clients ctx);
    ignore (Wm.step wm)
  done;
  Recorder.dump_json recorder ~reason:"corpus recording"
    ~metrics:(Server.metrics server) ~tracer:(Server.tracer server)

let report_of ~reason text =
  match Replay.parse_report text with
  | Ok r -> { r with Replay.reason }
  | Error msg ->
      Printf.eprintf "gen_repros: cannot parse recording: %s\n" msg;
      exit 1

let write_verified dir name report =
  (match Wm.replay report with
  | outcome when Replay.ok outcome -> ()
  | outcome ->
      Printf.eprintf "gen_repros: %s does not replay clean: %s\n" name
        (Replay.outcome_to_string outcome);
      exit 1);
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc (Replay.repro_json report);
  close_out oc;
  Printf.printf "wrote %s (%d ops, %s)\n" path
    (List.length report.Replay.ops)
    (match report.Replay.expect with
    | Replay.Converge -> "converge"
    | Replay.No_crash -> "no_crash")

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/repros" in
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "gen_repros: %s is not a directory\n" dir;
    exit 1
  end;
  write_verified dir "converge-basic.json"
    (report_of ~reason:"quiet session: storms, swmcmd iconify churn"
       (record_session ~clients:3 ~rounds:2 ~seed:7 ()));
  write_verified dir "converge-fault-storm.json"
    (report_of ~reason:"fault storm: destroys, kills, stalls, garbling"
       (record_session ~clients:4 ~rounds:2 ~seed:23
          ~plan:(Fault.storm ~seed:23 ()) ()));
  (* A survival-only repro: heavy kill pressure, no snapshot assertion —
     the shape auto-minimized chaos failures are committed in. *)
  let survive =
    report_of ~reason:"kill-heavy plan: the WM must simply survive"
      (record_session ~clients:5 ~rounds:2 ~seed:67
         ~plan:
           {
             (Fault.storm ~seed:67 ()) with
             Fault.p_kill_connection = 0.05;
             p_destroy_window = 0.1;
           }
         ())
  in
  write_verified dir "survive-kill-storm.json"
    { survive with Replay.snap = None; expect = Replay.No_crash }
