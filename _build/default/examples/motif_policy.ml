(* Policy without programming (paper §1, §3): the same window manager binary
   runs an OSF/Motif-style policy and then a custom one, purely by loading
   different resource text — swm's answer to "easy to use XOR configurable".

     dune exec examples/motif_policy.exe *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Templates = Swm_core.Templates
module Wobj = Swm_oi.Wobj
module Stock = Swm_clients.Stock
module Client_app = Swm_clients.Client_app

(* A policy nobody shipped: title bar *below* the window, close button on
   the left, no menus.  Twelve lines of resources, no code. *)
let upside_down_policy =
  {|
swm*decoration: underBar
Swm*panel.underBar: \
    panel client +0+0 \
    button close +0+1 \
    button name +C+1 \
    button shove -0+1
swm*button.close.bindings: <Btn1> : f.delete
swm*button.name.bindings: <Btn1> : f.move <Btn2> : f.raise
swm*button.shove.bindings: <Btn1> : f.lower
swm*virtualDesktop: False
|}

let show_decoration server wm app =
  match Wm.find_client wm (Client_app.window app) with
  | Some client ->
      (match client.Ctx.deco with
      | Some deco ->
          Format.printf "decorated with %S; objects:@." (Wobj.name deco);
          let rec walk indent obj =
            Format.printf "  %s%s %S at %a@." indent
              (Wobj.kind_name (Wobj.kind obj))
              (Wobj.name obj) Geom.pp_rect (Wobj.geometry obj);
            List.iter (walk (indent ^ "  ")) (Wobj.children obj)
          in
          walk "" deco
      | None -> Format.printf "undecorated@.");
      print_endline
        (Swm_xlib.Render.to_string
           (Swm_xlib.Render.render_window server client.Ctx.frame ~scale:8 ()))
  | None -> Format.printf "not managed?@."

let run_policy name resources =
  Format.printf "@.===== %s =====@." name;
  let server = Server.create () in
  let wm = Wm.start ~resources server in
  let app = Stock.xterm server ~at:(Geom.point 40 40) () in
  ignore (Wm.step wm);
  show_decoration server wm app

let () =
  run_policy "OSF/Motif emulation (shipped template)" [ Templates.motif ];
  run_policy "a policy of your own: title bar underneath"
    [ upside_down_policy ]
