(* A "rooms" environment on the Virtual Desktop (paper §6): group windows
   into quadrants of a 2x2 desktop — mail room, code room, docs room, build
   room — pan between them with window-manager functions, and keep a sticky
   clock and mail notifier visible everywhere, exactly the standard
   environment the paper describes.

     dune exec examples/virtual_rooms.exe *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Vdesk = Swm_core.Vdesk
module Panner = Swm_core.Panner
module Functions = Swm_core.Functions
module Templates = Swm_core.Templates
module Stock = Swm_clients.Stock
module Client_app = Swm_clients.Client_app

let rooms_resources =
  (* The whole "rooms" policy is resource text: a 2x2-screen desktop, keys
     that pan a full screen at a time, sticky classes. *)
  {|
swm*desktopSize: 2304x1800
swm*root.bindings: \
    <Key>F1 : f.panTo(0,0) \
    <Key>F2 : f.panTo(1152,0) \
    <Key>F3 : f.panTo(0,900) \
    <Key>F4 : f.panTo(1152,900)
swm*XClock*sticky: True
swm*XBiff*sticky: True
|}

let () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look; rooms_resources ] server in
  let ctx = Wm.ctx wm in

  (* Populate the rooms. *)
  let room_x room = if room mod 2 = 0 then 60 else 1152 + 60 in
  let room_y room = if room < 2 then 80 else 900 + 80 in
  let launch room instance =
    Client_app.launch server
      (Client_app.spec ~instance ~class_:"XTerm" ~us_position:true
         (Geom.rect (room_x room) (room_y room) 484 316))
  in
  let _mail = launch 0 "mail" in
  let _code = launch 1 "code" in
  let _docs = launch 2 "docs" in
  let _build = launch 3 "build" in
  let _clock = Stock.xclock server ~at:(Geom.point 1040 8) () in
  let _biff = Stock.xbiff server ~at:(Geom.point 980 8) () in
  ignore (Wm.step wm);

  let visible_clients () =
    List.filter_map
      (fun (c : Ctx.client) ->
        if Server.is_viewable server c.Ctx.cwin then
          let abs = Server.root_geometry server c.Ctx.frame in
          let sw, sh = Server.screen_size server ~screen:0 in
          if abs.x < sw && abs.y < sh && abs.x + abs.w > 0 && abs.y + abs.h > 0 then
            Some c.Ctx.instance
          else None
        else None)
      (Ctx.all_clients ctx)
    |> List.sort compare
  in

  let press_key key =
    Server.press_key server key;
    ignore (Wm.step wm)
  in

  Format.printf "desktop: %dx%d, viewport %dx%d@." 2304 1800 1152 900;
  List.iteri
    (fun i key ->
      press_key key;
      let o = Vdesk.offset ctx ~screen:0 in
      Format.printf "@.[%s] room %d — viewport at %d,%d — on screen: %s@." key
        (i + 1) o.Geom.px o.Geom.py
        (String.concat ", " (visible_clients ())))
    [ "F1"; "F2"; "F3"; "F4" ];

  (* The panner shows the whole arrangement at a glance. *)
  (match (Ctx.screen ctx 0).Ctx.vdesk with
  | Some vdesk ->
      Panner.refresh ctx ~screen:0;
      let pc = Option.get (Wm.find_client wm vdesk.Ctx.panner_client) in
      Format.printf "@.the panner (all four rooms + viewport outline):@.%s@."
        (Swm_xlib.Render.to_string
           (Swm_xlib.Render.render_window server pc.Ctx.frame ~scale:4 ()))
  | None -> ())
