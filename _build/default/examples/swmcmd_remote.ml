(* Driving the window manager from outside (paper §4.3): any client can
   execute window-manager commands by writing the SWM_COMMAND property on
   the root window — the paper's example is typing `swmcmd f.raise` into an
   xterm, whereupon swm prompts for a window to raise.  The same channel can
   reconfigure decorations while swm runs ("changing the shape of a button
   to indicate the status of a process").

     dune exec examples/swmcmd_remote.exe *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Swmcmd = Swm_core.Swmcmd
module Templates = Swm_core.Templates
module Stock = Swm_clients.Stock
module Client_app = Swm_clients.Client_app

let () =
  let server = Server.create () in
  let wm =
    Wm.start ~resources:[ Templates.open_look; "swm*virtualDesktop: False\n" ] server
  in
  let ctx = Wm.ctx wm in
  let term = Stock.xterm server ~at:(Geom.point 80 120) () in
  let clock = Stock.xclock server ~at:(Geom.point 700 80) () in
  ignore (Wm.step wm);

  let state_of app =
    (Option.get (Wm.find_client wm (Client_app.window app))).Ctx.state
  in

  (* The "swmcmd" shell utility: an unrelated connection. *)
  let swmcmd = Server.connect server ~name:"swmcmd" in

  (* 1. Batch commands by class — no pointer needed. *)
  Swmcmd.send server swmcmd ~screen:0 "f.iconify(XClock)";
  ignore (Wm.step wm);
  Format.printf "after `swmcmd f.iconify(XClock)`: xclock is %s@."
    (Prop.wm_state_to_string (state_of clock));

  (* 2. The paper's interactive example: `swmcmd f.raise` prompts. *)
  Swmcmd.send server swmcmd ~screen:0 "f.raise";
  ignore (Wm.step wm);
  (match ctx.Ctx.mode with
  | Ctx.Prompting _ ->
      Format.printf "after `swmcmd f.raise`: pointer is a question mark, pick a window...@."
  | _ -> Format.printf "unexpected: not prompting@.");
  (* The user clicks the xterm. *)
  let fgeom =
    Server.root_geometry server
      (Option.get (Wm.find_client wm (Client_app.window term))).Ctx.frame
  in
  Server.warp_pointer server ~screen:0 (Geom.point (fgeom.x + 10) (fgeom.y + 40));
  Server.press_button server 1;
  ignore (Wm.step wm);
  Format.printf "...clicked the xterm; it is now on top: %b@."
    (match
       List.rev (Server.children_of server (Server.root server ~screen:0))
     with
    | top :: _ ->
        Swm_xlib.Xid.equal top
          (Option.get (Wm.find_client wm (Client_app.window term))).Ctx.frame
    | [] -> false);

  (* 3. Several commands in one write, like a shell script would. *)
  Swmcmd.send server swmcmd ~screen:0 "f.deiconify(XClock)";
  Swmcmd.send server swmcmd ~screen:0 "f.exec(make -C ~/src world)";
  ignore (Wm.step wm);
  Format.printf "after batch: xclock is %s; f.exec log: %s@."
    (Prop.wm_state_to_string (state_of clock))
    (String.concat "; " (Wm.ctx wm).Ctx.executed);

  (* 4. The paper's closing suggestion: "changing the shape of a button to
     indicate the status of a process" — a build script flips the nail
     button's face while the build runs. *)
  Swmcmd.send server swmcmd ~screen:0 "f.setLabel(nail,BUILDING)";
  ignore (Wm.step wm);
  let nail_label () =
    let client = Option.get (Wm.find_client wm (Client_app.window term)) in
    let deco = Option.get client.Ctx.deco in
    Swm_oi.Wobj.label (Option.get (Swm_oi.Wobj.find_descendant deco ~name:"nail"))
  in
  Format.printf "while the build runs, the xterm's nail button reads: %S@."
    (nail_label ());
  Swmcmd.send server swmcmd ~screen:0 "f.setLabel(nail,OK)";
  ignore (Wm.step wm);
  Format.printf "when it finishes: %S@." (nail_label ())
