(* Quickstart: start a simulated X server, run swm with the OpenLook+
   template, launch a client, interact, and render the screen.

     dune exec examples/quickstart.exe *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Render = Swm_xlib.Render
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Templates = Swm_core.Templates
module Stock = Swm_clients.Stock
module Client_app = Swm_clients.Client_app

let () =
  (* 1. A server: one 1152x900 colour screen, like a Sun of the era. *)
  let server = Server.create () in

  (* 2. The window manager, configured purely through resource text. *)
  let wm = Wm.start ~resources:[ Templates.open_look ] server in

  (* 3. A client connects and maps a window; the WM sees the MapRequest. *)
  let xterm = Stock.xterm server ~at:(Geom.point 80 100) () in
  ignore (Wm.step wm);

  let client = Option.get (Wm.find_client wm (Client_app.window xterm)) in
  Format.printf "managed %S (class %s), frame %a, decorated with %S@."
    client.Ctx.instance client.Ctx.class_ Swm_xlib.Xid.pp client.Ctx.frame
    (match client.Ctx.deco with
    | Some deco -> Swm_oi.Wobj.name deco
    | None -> "<none>");

  (* 4. Interact: click the title bar's name button (bound to f.move),
     drag, release. *)
  let title =
    Swm_oi.Wobj.window
      (Option.get (Swm_oi.Wobj.find_descendant (Option.get client.Ctx.deco) ~name:"name"))
  in
  let abs = Server.root_geometry server title in
  Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 4) (abs.y + 4));
  Server.press_button server 1;
  ignore (Wm.step wm);
  Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 304) (abs.y + 154));
  ignore (Wm.step wm);
  Server.release_button server 1;
  ignore (Wm.step wm);
  let fgeom = Server.geometry server client.Ctx.frame in
  Format.printf "dragged the window by its title bar to %d,%d@." fgeom.x fgeom.y;

  (* 5. Render what the user would see. *)
  print_endline (Wm.render_screen wm ~screen:0)
