examples/motif_policy.mli:
