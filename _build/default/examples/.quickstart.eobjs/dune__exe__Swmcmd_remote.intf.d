examples/swmcmd_remote.mli:
