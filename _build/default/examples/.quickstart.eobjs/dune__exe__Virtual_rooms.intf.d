examples/virtual_rooms.mli:
