examples/swmcmd_remote.ml: Format List Option String Swm_clients Swm_core Swm_oi Swm_xlib
