examples/virtual_rooms.ml: Format List Option String Swm_clients Swm_core Swm_xlib
