examples/motif_policy.ml: Format List Swm_clients Swm_core Swm_oi Swm_xlib
