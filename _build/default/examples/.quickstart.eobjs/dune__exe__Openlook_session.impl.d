examples/openlook_session.ml: Format List Option Result Swm_clients Swm_core Swm_xlib
