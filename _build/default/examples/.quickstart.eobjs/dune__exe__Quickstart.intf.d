examples/quickstart.mli:
