examples/multiscreen.ml: Format List Swm_clients Swm_core Swm_oi Swm_xlib
