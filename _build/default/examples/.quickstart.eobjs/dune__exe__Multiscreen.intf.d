examples/multiscreen.mli:
