examples/quickstart.ml: Format Option Swm_clients Swm_core Swm_oi Swm_xlib
