examples/openlook_session.mli:
