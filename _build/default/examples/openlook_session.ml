(* Session management end to end (paper §7): a user arranges a working
   environment — editor, terminals, a clock on another host — saves it with
   f.places, logs out (X shuts down), and logs back in: the swmhints lines
   replay and every client comes back where it was, iconic state, sticky
   state and all.

     dune exec examples/openlook_session.exe *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Functions = Swm_core.Functions
module Session = Swm_core.Session
module Icons = Swm_core.Icons
module Vdesk = Swm_core.Vdesk
module Templates = Swm_core.Templates
module Stock = Swm_clients.Stock
module Client_app = Swm_clients.Client_app

let describe label ctx =
  Format.printf "%s@." label;
  List.iter
    (fun (c : Ctx.client) ->
      let g = Swm_xlib.Server.geometry ctx.Ctx.server c.Ctx.frame in
      Format.printf "  %-10s %-8s at %4d,%4d  %s%s@." c.Ctx.instance c.Ctx.class_
        g.Geom.x g.Geom.y
        (Prop.wm_state_to_string c.Ctx.state)
        (if c.Ctx.sticky then " sticky" else ""))
    (List.sort
       (fun (a : Ctx.client) b -> compare a.Ctx.instance b.Ctx.instance)
       (Ctx.all_clients ctx))

let () =
  (* ---- the first login ---- *)
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look ] server in
  let ctx = Wm.ctx wm in

  let emacs =
    Client_app.launch server
      (Client_app.spec ~instance:"emacs" ~class_:"Emacs"
         ~command:"emacs -geometry 600x640 notes.txt" ~us_position:true
         (Geom.rect 40 60 600 640))
  in
  let term1 = Stock.xterm server ~at:(Geom.point 680 60) () in
  let term2 = Stock.xterm server ~at:(Geom.point 680 420) ~instance:"xterm2" () in
  let clock =
    Client_app.launch server
      (Client_app.spec ~instance:"xclock" ~class_:"XClock" ~command:"xclock"
         ~host:"bigiron" ~us_position:true (Geom.rect 1000 40 100 100))
  in
  ignore (Wm.step wm);

  (* Arrange: clock sticky (visible from every desktop corner), one terminal
     iconified out of the way. *)
  Vdesk.set_sticky ctx (Option.get (Wm.find_client wm (Client_app.window clock))) true;
  Icons.iconify ctx (Option.get (Wm.find_client wm (Client_app.window term2)));
  ignore (Wm.step wm);
  describe "session as arranged:" ctx;

  (* Save: f.places produces the .xinitrc replacement. *)
  Functions.execute ctx
    (Functions.invocation ~screen:0 ())
    [ { Swm_core.Bindings.fname = "f.places"; farg = None } ];
  let places = Option.get ctx.Ctx.last_places in
  Format.printf "@.the .xinitrc replacement written by f.places:@.%s@." places;

  (* ---- X shuts down; a new day, a new server ---- *)
  let server2 = Server.create () in
  (* The places file runs: each swmhints line lands in SWM_PLACES... *)
  let hints = Result.get_ok (Session.parse_places_file places) in
  let swmhints_conn = Server.connect server2 ~name:"swmhints" in
  List.iter
    (fun hint ->
      Server.append_string_property server2 swmhints_conn
        (Server.root server2 ~screen:0)
        ~name:Prop.swm_places (Session.hint_to_args hint))
    hints;
  (* ...and the clients restart, knowing nothing of their old geometry. *)
  let _emacs2 =
    Client_app.launch server2
      (Client_app.spec ~instance:"emacs" ~class_:"Emacs"
         ~command:"emacs -geometry 600x640 notes.txt" (Geom.rect 0 0 600 640))
  in
  let _term1' = Stock.xterm server2 () in
  let _term2' = Stock.xterm server2 ~instance:"xterm2" () in
  let _clock2 =
    Client_app.launch server2
      (Client_app.spec ~instance:"xclock" ~class_:"XClock" ~command:"xclock"
         ~host:"bigiron" (Geom.rect 0 0 100 100))
  in
  ignore (emacs, term1);

  let wm2 = Wm.start ~resources:[ Templates.open_look ] server2 in
  ignore (Wm.step wm2);
  describe "session after restart (restored from SWM_PLACES):" (Wm.ctx wm2)
