(* Multi-screen management (paper §3): one swm manages every screen of the
   server, with per-screen policy from the resource database — here a
   colour screen 0 running the full OpenLook+ look and a monochrome
   screen 1 running a minimal title-only decoration, exactly the
   per-screen/monochrome scoping the paper's resource syntax exists for.

     dune exec examples/multiscreen.exe *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Render = Swm_xlib.Render
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Templates = Swm_core.Templates
module Wobj = Swm_oi.Wobj
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let per_screen_policy =
  {|
! Screen 1 is the mono head: no virtual desktop, spartan decoration.
Swm*panel.monoBar: button name +C+0 panel client +0+1
swm.monochrome.screen1*decoration: monoBar
swm.monochrome.screen1.virtualDesktop: False
|}

let () =
  let server =
    Server.create
      ~screens:
        [
          { Server.size = (1152, 900); monochrome = false };
          { Server.size = (1024, 768); monochrome = true };
        ]
      ()
  in
  let wm = Wm.start ~resources:[ Templates.open_look; per_screen_policy ] server in

  (* One client on each head. *)
  let colour_term = Stock.xterm server ~at:(Geom.point 60 80) () in
  let mono_conn = Server.connect server ~name:"monoterm" in
  let mono_win =
    Server.create_window server mono_conn
      ~parent:(Server.root server ~screen:1)
      ~geom:(Geom.rect 40 60 484 316) ~background:'t' ~label:"monoterm" ()
  in
  Server.change_property server mono_conn mono_win ~name:Swm_xlib.Prop.wm_class
    (Swm_xlib.Prop.Wm_class { instance = "monoterm"; class_ = "XTerm" });
  Server.change_property server mono_conn mono_win ~name:Swm_xlib.Prop.wm_name
    (Swm_xlib.Prop.String "monoterm");
  Server.map_window server mono_conn mono_win;
  ignore (Wm.step wm);

  List.iter
    (fun (client : Ctx.client) ->
      Format.printf "screen %d: %-10s decorated with %-10s (%s)@." client.Ctx.screen
        client.Ctx.instance
        (match client.Ctx.deco with
        | Some deco -> Wobj.name deco
        | None -> "<none>")
        (if Server.screen_monochrome server ~screen:client.Ctx.screen then
           "monochrome"
         else "colour"))
    (List.sort
       (fun (a : Ctx.client) b -> compare a.Ctx.screen b.Ctx.screen)
       (Ctx.all_clients (Wm.ctx wm)));
  ignore colour_term;

  Format.printf "@.--- screen 1 (monochrome head) ---@.";
  print_string (Render.to_string (Render.render server ~screen:1 ~scale:16 ()))
