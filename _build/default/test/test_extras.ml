(* Extension coverage: scrollbars, dynamic button appearance/bindings,
   circulate/raiselower/warpTo, auto-raise via <Enter> bindings,
   multi-screen management, and the panner crossing case where a move starts
   on the client and ends in the panner. *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Vdesk = Swm_core.Vdesk
module Panner = Swm_core.Panner
module Scrollbar = Swm_core.Scrollbar
module Functions = Swm_core.Functions
module Templates = Swm_core.Templates
module Wobj = Swm_oi.Wobj
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

let client_of wm app = Option.get (Wm.find_client wm (Client_app.window app))

let run ctx ?client text =
  match Functions.execute_string ctx (Functions.invocation ?client ~screen:0 ()) text with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "execute: %s" msg

(* -------- scrollbars -------- *)

let scroll_fixture () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:
        [ Templates.open_look; "swm*rootPanels:\nswm*panner: False\nswm*scrollbars: True\n" ]
      server
  in
  (server, wm, Wm.ctx wm)

let test_scrollbars_created () =
  let server, _wm, ctx = scroll_fixture () in
  let scr = Ctx.screen ctx 0 in
  (match (scr.Ctx.hbar, scr.Ctx.vbar) with
  | Some (hbar, hthumb), Some (vbar, vthumb) ->
      let sw, sh = Server.screen_size server ~screen:0 in
      let hg = Server.geometry server hbar in
      check Alcotest.int "hbar along the bottom" (sh - Scrollbar.bar_thickness) hg.y;
      let vg = Server.geometry server vbar in
      check Alcotest.int "vbar along the right" (sw - Scrollbar.bar_thickness) vg.x;
      check Alcotest.bool "thumbs mapped" true
        (Server.is_viewable server hthumb && Server.is_viewable server vthumb);
      (* Thumb length reflects viewport/desktop ratio (screen is 1/3). *)
      let tg = Server.geometry server hthumb in
      let expected = (sw - Scrollbar.bar_thickness) * sw / 3456 in
      check Alcotest.bool "thumb proportional" true (abs (tg.w - expected) <= 2)
  | _ -> Alcotest.fail "scrollbars missing")

let test_scrollbars_absent_by_default () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server in
  let scr = Ctx.screen (Wm.ctx wm) 0 in
  ignore server;
  check Alcotest.bool "no bars unless asked" true
    (scr.Ctx.hbar = None && scr.Ctx.vbar = None)

let test_scrollbar_click_pans () =
  let server, wm, ctx = scroll_fixture () in
  let scr = Ctx.screen ctx 0 in
  let hbar, hthumb = Option.get scr.Ctx.hbar in
  let hg = Server.root_geometry server hbar in
  (* Click at the middle of the horizontal bar: centre the viewport there. *)
  Server.warp_pointer server ~screen:0
    (Geom.point (hg.x + (hg.w / 2)) (hg.y + (Scrollbar.bar_thickness / 2)));
  ignore (Wm.step wm);
  Server.press_button server 1;
  ignore (Wm.step wm);
  let o = Vdesk.offset ctx ~screen:0 in
  let sw, _ = Server.screen_size server ~screen:0 in
  check Alcotest.bool "panned toward the middle" true
    (abs (o.px - ((3456 / 2) - (sw / 2))) < 60);
  check Alcotest.int "vertical untouched" 0 o.py;
  (* The thumb followed. *)
  let tg = Server.geometry server hthumb in
  check Alcotest.bool "thumb moved" true (tg.x > 0)

let test_thumb_follows_function_pan () =
  let server, _wm, ctx = scroll_fixture () in
  let scr = Ctx.screen ctx 0 in
  let _, vthumb = Option.get scr.Ctx.vbar in
  let before = (Server.geometry server vthumb).y in
  run ctx "f.panTo(0,900)";
  let after = (Server.geometry server vthumb).y in
  check Alcotest.bool "v-thumb tracked the pan" true (after > before)

(* -------- dynamic buttons -------- *)

let plain_fixture ?(extra = "") () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:
        [ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ^ extra ]
      server
  in
  (server, wm, Wm.ctx wm)

let test_dynamic_label () =
  let server, wm, ctx = plain_fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  (* Change the nail button's face, as a status indicator would. *)
  run ctx "f.setLabel(nail,BUSY)";
  let nail =
    Option.get (Wobj.find_descendant (Option.get client.Ctx.deco) ~name:"nail")
  in
  check Alcotest.string "label changed" "BUSY" (Wobj.label nail);
  check Alcotest.string "window text updated" "BUSY"
    (Option.value ~default:"" (Server.label_of server (Wobj.window nail)))

let test_dynamic_bindings () =
  let server, wm, ctx = plain_fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  (* Rebind the nail from f.stick to f.iconify, then click it. *)
  run ctx "f.setBindings(nail,<Btn1> : f.iconify)";
  let nail =
    Option.get (Wobj.find_descendant (Option.get client.Ctx.deco) ~name:"nail")
  in
  let abs = Server.root_geometry server (Wobj.window nail) in
  Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 2) (abs.y + 2));
  ignore (Wm.step wm);
  Server.press_button server 1;
  ignore (Wm.step wm);
  check Alcotest.bool "new binding fired" true (client.Ctx.state = Prop.Iconic);
  check Alcotest.bool "old binding gone (not sticky)" false client.Ctx.sticky

(* -------- extra functions -------- *)

let test_raiselower () =
  let server, wm, ctx = plain_fixture () in
  let a = Stock.xterm server ~at:(Geom.point 0 0) () in
  let _b = Stock.xterm server ~at:(Geom.point 50 50) ~instance:"x2" () in
  ignore (Wm.step wm);
  let ca = client_of wm a in
  let top () =
    match
      List.rev (Server.children_of server (Server.parent_of server ca.Ctx.frame))
    with
    | t :: _ -> t
    | [] -> Xid.none
  in
  run ctx ~client:ca "f.raiseLower";
  check Alcotest.bool "raised" true (Xid.equal (top ()) ca.Ctx.frame);
  run ctx ~client:ca "f.raiseLower";
  check Alcotest.bool "lowered when already on top" false
    (Xid.equal (top ()) ca.Ctx.frame)

let test_circulate () =
  let server, wm, ctx = plain_fixture () in
  let a = Stock.xterm server ~at:(Geom.point 0 0) () in
  let b = Stock.xterm server ~at:(Geom.point 40 40) ~instance:"x2" () in
  let c = Stock.xterm server ~at:(Geom.point 80 80) ~instance:"x3" () in
  ignore (Wm.step wm);
  let frames () =
    List.filter
      (fun w -> Xid.Tbl.mem ctx.Ctx.frames w)
      (Server.children_of server (Server.root server ~screen:0))
  in
  let order () = List.map Xid.to_int (frames ()) in
  let before = order () in
  run ctx "f.circulateUp";
  let after = order () in
  check Alcotest.bool "rotated" true (before <> after);
  (* Three circulates come back around. *)
  run ctx "f.circulateUp";
  run ctx "f.circulateUp";
  check (Alcotest.list Alcotest.int) "full cycle" before (order ());
  ignore (a, b, c)

let test_warpto () =
  let server, wm, ctx = plain_fixture () in
  let app = Stock.xclock server ~at:(Geom.point 700 300) () in
  ignore (Wm.step wm);
  run ctx "f.warpTo(XClock)";
  let client = client_of wm app in
  let fgeom = Server.root_geometry server client.Ctx.frame in
  let p = Server.pointer_pos server in
  check Alcotest.bool "pointer inside the clock's frame" true
    (Geom.contains fgeom p)

(* -------- scrolling icon holder (paper §4.1.5) -------- *)

let test_scrolling_holder () =
  let server, wm, ctx =
    plain_fixture
      ~extra:
        {|
swm*iconHolders: box
swm*iconHolder.box.size: 80x64
|}
      ()
  in
  let apps =
    List.init 5 (fun i ->
        Stock.xterm server ~instance:(Printf.sprintf "t%d" i) ())
  in
  ignore (Wm.step wm);
  List.iter (fun app -> Swm_core.Icons.iconify ctx (client_of wm app)) apps;
  let holder = List.hd (Ctx.screen ctx 0).Ctx.holders in
  let hobj = Option.get holder.Ctx.holder_obj in
  let hwin = Wobj.window hobj in
  (* The holder window stays at its fixed size despite five icons. *)
  let hg = Server.geometry server hwin in
  check Alcotest.int "fixed width" 80 hg.w;
  check Alcotest.int "fixed height" 64 hg.h;
  let first_icon = List.hd (Wobj.children hobj) in
  let y0 = (Server.geometry server (Wobj.window first_icon)).y in
  (* Scroll down: content shifts up. *)
  run ctx "f.scrollHolder(box,40)";
  let y1 = (Server.geometry server (Wobj.window first_icon)).y in
  check Alcotest.int "content shifted by the delta" (y0 - 40) y1;
  check Alcotest.int "offset recorded" 40 holder.Ctx.holder_scroll;
  (* Scrolling back past the top clamps at zero. *)
  run ctx "f.scrollHolder(box,-500)";
  check Alcotest.int "clamped at top" 0 holder.Ctx.holder_scroll;
  let y2 = (Server.geometry server (Wobj.window first_icon)).y in
  check Alcotest.int "content restored" y0 y2

(* -------- auto-raise policy via <Enter> bindings -------- *)

let test_autoraise_policy () =
  let server, wm, _ctx =
    plain_fixture
      ~extra:"swm*panel.openLook.bindings: <Enter> : f.raise\n" ()
  in
  let a = Stock.xterm server ~at:(Geom.point 0 0) () in
  let b = Stock.xterm server ~at:(Geom.point 100 100) ~instance:"x2" () in
  ignore (Wm.step wm);
  let ca = client_of wm a and cb = client_of wm b in
  (* b is above a (managed later). Enter a's frame: it auto-raises. *)
  Server.warp_pointer server ~screen:0 (Geom.point 600 600);
  ignore (Wm.step wm);
  let a_abs = Server.root_geometry server ca.Ctx.frame in
  Server.warp_pointer server ~screen:0 (Geom.point (a_abs.x + 3) (a_abs.y + 60));
  ignore (Wm.step wm);
  let top =
    List.rev (Server.children_of server (Server.root server ~screen:0)) |> List.hd
  in
  check Alcotest.bool "entered frame raised" true (Xid.equal top ca.Ctx.frame);
  ignore cb

(* -------- ICCCM size hints -------- *)

let test_size_hints_enforced () =
  let server, wm, _ctx = plain_fixture () in
  let conn = Server.connect server ~name:"hinted" in
  let win =
    Server.create_window server conn
      ~parent:(Server.root server ~screen:0)
      ~geom:(Geom.rect 0 0 200 200) ()
  in
  Server.change_property server conn win ~name:Prop.wm_class
    (Prop.Wm_class { instance = "hinted"; class_ = "Hinted" });
  Server.change_property server conn win ~name:Prop.wm_normal_hints
    (Prop.Size_hints
       {
         Prop.default_size_hints with
         min_size = Some (100, 80);
         max_size = Some (400, 300);
       });
  Server.map_window server conn win;
  ignore (Wm.step wm);
  let client = Option.get (Wm.find_client wm win) in
  (* Below the minimum: clamped up. *)
  Swm_core.Decoration.client_resized (Wm.ctx wm) client (10, 10);
  let g = Server.geometry server win in
  check Alcotest.int "min width" 100 g.w;
  check Alcotest.int "min height" 80 g.h;
  (* Above the maximum: clamped down. *)
  Swm_core.Decoration.client_resized (Wm.ctx wm) client (900, 900);
  let g = Server.geometry server win in
  check Alcotest.int "max width" 400 g.w;
  check Alcotest.int "max height" 300 g.h

let test_resize_increments () =
  (* xterm-style cell snapping: increments from the minimum size. *)
  let hints =
    {
      Prop.default_size_hints with
      min_size = Some (20, 30);
      resize_inc = Some (9, 16);
    }
  in
  check (Alcotest.pair Alcotest.int Alcotest.int) "snap down" (20 + 27, 30 + 32)
    (Swm_core.Icccm.constrain_size hints (50, 65));
  check (Alcotest.pair Alcotest.int Alcotest.int) "exact grid" (29, 46)
    (Swm_core.Icccm.constrain_size hints (29, 46));
  check (Alcotest.pair Alcotest.int Alcotest.int) "below min" (20, 30)
    (Swm_core.Icccm.constrain_size hints (1, 1))

(* -------- outline (non-opaque) move -------- *)

let test_outline_move () =
  let server, wm, ctx = plain_fixture ~extra:"swm*opaqueMove: False\n" () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let title =
    Wobj.window
      (Option.get (Wobj.find_descendant (Option.get client.Ctx.deco) ~name:"name"))
  in
  let t_abs = Server.root_geometry server title in
  Server.warp_pointer server ~screen:0 (Geom.point (t_abs.x + 2) (t_abs.y + 2));
  ignore (Wm.step wm);
  Server.press_button server 1;
  ignore (Wm.step wm);
  let outline =
    match ctx.Ctx.mode with
    | Ctx.Moving { m_outline; _ } when not (Xid.is_none m_outline) -> m_outline
    | _ -> Alcotest.fail "expected an outline move"
  in
  let frame_before = Server.geometry server client.Ctx.frame in
  (* Drag: the frame must NOT move yet; the outline does. *)
  Server.warp_pointer server ~screen:0 (Geom.point (t_abs.x + 202) (t_abs.y + 102));
  ignore (Wm.step wm);
  check Alcotest.bool "frame still in place" true
    (Geom.rect_equal (Server.geometry server client.Ctx.frame) frame_before);
  let og = Server.geometry server outline in
  check Alcotest.bool "outline moved" true (og.x <> frame_before.x);
  (* Release: the frame jumps to the outline's position; outline vanishes. *)
  Server.release_button server 1;
  ignore (Wm.step wm);
  check Alcotest.bool "outline destroyed" false (Server.window_exists server outline);
  let fg = Server.geometry server client.Ctx.frame in
  check Alcotest.int "frame committed x" (frame_before.x + 200) fg.x;
  check Alcotest.int "frame committed y" (frame_before.y + 100) fg.y

let test_corner_resize_anchoring () =
  let server, wm, ctx = plain_fixture () in
  let app = Stock.xterm server ~at:(Geom.point 300 300) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let fg0 = Server.geometry server client.Ctx.frame in
  (* Press the top-left resize corner and drag up-left by (40,20): the
     window grows and the bottom-right edge stays put. *)
  let corner =
    Xid.Tbl.fold
      (fun corner c acc ->
        if c == client && (Server.geometry server corner).x = 0
           && (Server.geometry server corner).y = 0
        then Some corner
        else acc)
      ctx.Ctx.corners None
    |> Option.get
  in
  let abs = Server.root_geometry server corner in
  Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 2) (abs.y + 2));
  ignore (Wm.step wm);
  Server.press_button server 1;
  ignore (Wm.step wm);
  (match ctx.Ctx.mode with
  | Ctx.Resizing { r_dir; _ } ->
      check Alcotest.bool "top-left direction" true (r_dir = Geom.point (-1) (-1))
  | _ -> Alcotest.fail "expected resize mode");
  Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 2 - 40) (abs.y + 2 - 20));
  ignore (Wm.step wm);
  Server.release_button server 1;
  ignore (Wm.step wm);
  let fg = Server.geometry server client.Ctx.frame in
  check Alcotest.int "grew wider" (fg0.w + 40) fg.w;
  check Alcotest.int "grew taller" (fg0.h + 20) fg.h;
  check Alcotest.int "right edge anchored" (fg0.x + fg0.w) (fg.x + fg.w);
  check Alcotest.int "bottom edge anchored" (fg0.y + fg0.h) (fg.y + fg.h)

(* -------- drag-and-drop onto root icons (paper §4.1.3) -------- *)

let test_drop_on_root_icon () =
  let server, wm, ctx =
    plain_fixture
      ~extra:
        {|
swm*rootIcons: trash
Swm*panel.trash: button trashcan +C+0
swm*panel.trash.bindings: <Drop> : f.iconify
|}
      ()
  in
  let app = Stock.xterm server ~at:(Geom.point 300 300) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  (* Grab the window by its title and drop it on the trash icon. *)
  let title =
    Wobj.window
      (Option.get (Wobj.find_descendant (Option.get client.Ctx.deco) ~name:"name"))
  in
  let t_abs = Server.root_geometry server title in
  Server.warp_pointer server ~screen:0 (Geom.point (t_abs.x + 2) (t_abs.y + 2));
  ignore (Wm.step wm);
  Server.press_button server 1;
  ignore (Wm.step wm);
  let trash = List.hd (Ctx.screen ctx 0).Ctx.root_icons in
  let trash_abs = Server.root_geometry server (Wobj.window trash) in
  Server.warp_pointer server ~screen:0
    (Geom.point (trash_abs.x + 2) (trash_abs.y + 2));
  ignore (Wm.step wm);
  Server.release_button server 1;
  ignore (Wm.step wm);
  check Alcotest.bool "dropped window iconified" true
    (client.Ctx.state = Prop.Iconic)

(* -------- focus policies -------- *)

let test_focus_follows_pointer () =
  let server, wm, _ctx = plain_fixture ~extra:"swm*focusPolicy: pointer\n" () in
  let a = Stock.xterm server ~at:(Geom.point 0 0) () in
  let b = Stock.xterm server ~at:(Geom.point 600 0) ~instance:"x2" () in
  ignore (Wm.step wm);
  let ca = client_of wm a and cb = client_of wm b in
  Server.warp_pointer server ~screen:0 (Geom.point 850 850);
  ignore (Wm.step wm);
  let enter c =
    (* A point on the frame itself (left edge, below the title row and the
       resize corner). *)
    let abs = Server.root_geometry server c.Ctx.frame in
    Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 3) (abs.y + 60));
    ignore (Wm.step wm)
  in
  enter ca;
  check Alcotest.bool "focus to a" true
    (Xid.equal (Server.input_focus server) ca.Ctx.cwin);
  enter cb;
  check Alcotest.bool "focus to b" true
    (Xid.equal (Server.input_focus server) cb.Ctx.cwin)

let test_click_to_focus () =
  let server, wm, _ctx = plain_fixture ~extra:"swm*focusPolicy: click\n" () in
  let a = Stock.xterm server ~at:(Geom.point 0 0) () in
  ignore (Wm.step wm);
  let ca = client_of wm a in
  (* Crossing into the frame does nothing under click policy... *)
  Server.warp_pointer server ~screen:0 (Geom.point 850 850);
  ignore (Wm.step wm);
  let abs = Server.root_geometry server ca.Ctx.frame in
  Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 3) (abs.y + 60));
  ignore (Wm.step wm);
  check Alcotest.bool "no focus on crossing" false
    (Xid.equal (Server.input_focus server) ca.Ctx.cwin);
  (* ...clicking it focuses. *)
  Server.press_button server 1;
  ignore (Wm.step wm);
  check Alcotest.bool "focus on click" true
    (Xid.equal (Server.input_focus server) ca.Ctx.cwin)

(* -------- multi-screen -------- *)

let test_multi_screen_management () =
  let server =
    Server.create
      ~screens:
        [ { Server.size = (1152, 900); monochrome = false };
          { Server.size = (1024, 768); monochrome = true } ]
      ()
  in
  let wm =
    Wm.start
      ~resources:
        [
          Templates.open_look;
          "swm*virtualDesktop: False\nswm*rootPanels:\n";
          (* Per-screen decoration via the monochrome component. *)
          "Swm*panel.monoPanel: button name +C+0 panel client +0+1\n\
           swm.monochrome.screen1*decoration: monoPanel\n";
        ]
      server
  in
  let a = Stock.xterm server () in
  let b = Stock.xterm server ~instance:"monoterm" () in
  (* b maps on screen 1. *)
  let b_conn = Client_app.conn b in
  let bwin = Client_app.window b in
  Server.reparent_window server b_conn bwin
    ~new_parent:(Server.root server ~screen:1) ~pos:(Geom.point 10 10);
  Server.map_window server b_conn bwin;
  ignore (Wm.step wm);
  let ca = client_of wm a and cb = client_of wm b in
  check Alcotest.int "a on screen 0" 0 ca.Ctx.screen;
  check Alcotest.int "b on screen 1" 1 cb.Ctx.screen;
  check Alcotest.string "colour screen decoration" "openLook"
    (Wobj.name (Option.get ca.Ctx.deco));
  check Alcotest.string "mono screen decoration" "monoPanel"
    (Wobj.name (Option.get cb.Ctx.deco))

(* -------- move started on the window, finished in the panner -------- *)

let test_move_into_panner () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server in
  let ctx = Wm.ctx wm in
  let app = Stock.xterm server ~at:(Geom.point 200 200) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  (* Start an f.move from the title bar... *)
  let title =
    Wobj.window
      (Option.get (Wobj.find_descendant (Option.get client.Ctx.deco) ~name:"name"))
  in
  let t_abs = Server.root_geometry server title in
  Server.warp_pointer server ~screen:0 (Geom.point (t_abs.x + 2) (t_abs.y + 2));
  ignore (Wm.step wm);
  Server.press_button server 1;
  ignore (Wm.step wm);
  (match ctx.Ctx.mode with
  | Ctx.Moving _ -> ()
  | _ -> Alcotest.fail "expected move");
  (* ...and drop it inside the panner at the spot for desktop (2400,1800). *)
  let vdesk = Option.get (Ctx.screen ctx 0).Ctx.vdesk in
  let pc = Option.get (Wm.find_client wm vdesk.Ctx.panner_client) in
  let p_abs = Server.root_geometry server pc.Ctx.cwin in
  Server.warp_pointer server ~screen:0
    (Geom.point (p_abs.x + (2400 / 24)) (p_abs.y + (1800 / 24)));
  ignore (Wm.step wm);
  Server.release_button server 1;
  ignore (Wm.step wm);
  let fg = Server.geometry server client.Ctx.frame in
  check Alcotest.int "landed at desktop x" 2400 fg.x;
  check Alcotest.int "landed at desktop y" 1800 fg.y

let suite =
  [
    Alcotest.test_case "scrollbars created" `Quick test_scrollbars_created;
    Alcotest.test_case "scrollbars off by default" `Quick
      test_scrollbars_absent_by_default;
    Alcotest.test_case "scrollbar click pans" `Quick test_scrollbar_click_pans;
    Alcotest.test_case "thumb follows f.panTo" `Quick test_thumb_follows_function_pan;
    Alcotest.test_case "f.setLabel dynamic appearance" `Quick test_dynamic_label;
    Alcotest.test_case "f.setBindings dynamic behaviour" `Quick test_dynamic_bindings;
    Alcotest.test_case "f.raiseLower" `Quick test_raiselower;
    Alcotest.test_case "f.circulateUp cycles" `Quick test_circulate;
    Alcotest.test_case "f.warpTo" `Quick test_warpto;
    Alcotest.test_case "scrolling icon holder" `Quick test_scrolling_holder;
    Alcotest.test_case "drop on a root icon" `Quick test_drop_on_root_icon;
    Alcotest.test_case "min/max size hints enforced" `Quick test_size_hints_enforced;
    Alcotest.test_case "resize increments" `Quick test_resize_increments;
    Alcotest.test_case "outline (non-opaque) move" `Quick test_outline_move;
    Alcotest.test_case "corner resize anchors opposite edge" `Quick
      test_corner_resize_anchoring;
    Alcotest.test_case "auto-raise via <Enter> binding" `Quick test_autoraise_policy;
    Alcotest.test_case "focus follows pointer" `Quick test_focus_follows_pointer;
    Alcotest.test_case "click to focus" `Quick test_click_to_focus;
    Alcotest.test_case "two screens, per-screen policy" `Quick
      test_multi_screen_management;
    Alcotest.test_case "move from glass into panner" `Quick test_move_into_panner;
  ]
