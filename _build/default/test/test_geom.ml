module Geom = Swm_xlib.Geom

let check = Alcotest.check
let rect = Geom.rect

let rect_testable =
  Alcotest.testable Geom.pp_rect Geom.rect_equal

let parse_ok s =
  match Geom.parse s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "parse %S failed: %s" s msg

(* -------- parsing -------- *)

let test_parse_full () =
  let spec = parse_ok "120x120+1010+359" in
  check (Alcotest.option Alcotest.int) "width" (Some 120) spec.width;
  check (Alcotest.option Alcotest.int) "height" (Some 120) spec.height;
  (match spec.xoff with
  | Some (Geom.From_start 1010) -> ()
  | _ -> Alcotest.fail "xoff");
  match spec.yoff with
  | Some (Geom.From_start 359) -> ()
  | _ -> Alcotest.fail "yoff"

let test_parse_size_only () =
  let spec = parse_ok "80x24" in
  check (Alcotest.option Alcotest.int) "width" (Some 80) spec.width;
  check (Alcotest.option Alcotest.int) "height" (Some 24) spec.height;
  check Alcotest.bool "no offsets" true (spec.xoff = None && spec.yoff = None)

let test_parse_position_only () =
  let spec = parse_ok "+0+1" in
  check Alcotest.bool "no size" true (spec.width = None);
  match (spec.xoff, spec.yoff) with
  | Some (Geom.From_start 0), Some (Geom.From_start 1) -> ()
  | _ -> Alcotest.fail "offsets"

let test_parse_centered () =
  let spec = parse_ok "+C+0" in
  match spec.xoff with
  | Some Geom.Centered -> ()
  | _ -> Alcotest.fail "expected centred column"

let test_parse_negative () =
  let spec = parse_ok "-0+0" in
  match spec.xoff with
  | Some (Geom.From_end 0) -> ()
  | _ -> Alcotest.fail "expected from-end column"

let test_parse_negative_pair () =
  let spec = parse_ok "-8-8" in
  match (spec.xoff, spec.yoff) with
  | Some (Geom.From_end 8), Some (Geom.From_end 8) -> ()
  | _ -> Alcotest.fail "offsets"

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Geom.parse bad with
      | Ok _ -> Alcotest.failf "expected %S to fail" bad
      | Error _ -> ())
    [ ""; "x"; "12"; "12x"; "abc"; "+"; "100x100+5+5x"; "+C"^"C" ]

let test_roundtrip () =
  List.iter
    (fun s ->
      let spec = parse_ok s in
      check Alcotest.string "roundtrip" s (Geom.to_string spec))
    [ "120x120+1010+359"; "80x24"; "+C+0"; "-0+1"; "+5-3" ]

(* -------- resolve -------- *)

let test_resolve_from_start () =
  let spec = parse_ok "100x50+10+20" in
  let r = Geom.resolve spec ~default:(rect 0 0 1 1) ~within:(rect 0 0 640 400) in
  check rect_testable "resolved" (rect 10 20 100 50) r

let test_resolve_from_end () =
  let spec = parse_ok "100x50-0-0" in
  let r = Geom.resolve spec ~default:(rect 0 0 1 1) ~within:(rect 0 0 640 400) in
  check rect_testable "flush bottom-right" (rect 540 350 100 50) r

let test_resolve_centered () =
  let spec = parse_ok "100x50+C+0" in
  let r = Geom.resolve spec ~default:(rect 0 0 1 1) ~within:(rect 0 0 640 400) in
  check rect_testable "centred" (rect 270 0 100 50) r

let test_resolve_within_offset () =
  let spec = parse_ok "10x10+5+5" in
  let r = Geom.resolve spec ~default:(rect 0 0 1 1) ~within:(rect 100 200 50 50) in
  check rect_testable "offset by within" (rect 105 205 10 10) r

(* -------- rectangle ops -------- *)

let test_contains () =
  let r = rect 10 10 20 20 in
  check Alcotest.bool "inside" true (Geom.contains r (Geom.point 10 10));
  check Alcotest.bool "last pixel" true (Geom.contains r (Geom.point 29 29));
  check Alcotest.bool "past edge" false (Geom.contains r (Geom.point 30 10));
  check Alcotest.bool "outside" false (Geom.contains r (Geom.point 0 0))

let test_intersect () =
  (match Geom.intersect (rect 0 0 10 10) (rect 5 5 10 10) with
  | Some r -> check rect_testable "overlap" (rect 5 5 5 5) r
  | None -> Alcotest.fail "expected overlap");
  check Alcotest.bool "disjoint" true
    (Geom.intersect (rect 0 0 10 10) (rect 20 20 5 5) = None);
  check Alcotest.bool "touching edges are disjoint" true
    (Geom.intersect (rect 0 0 10 10) (rect 10 0 10 10) = None)

let test_union_bounds () =
  check rect_testable "bounds"
    (rect 0 0 30 30)
    (Geom.union_bounds (rect 0 0 10 10) (rect 20 20 10 10))

let test_clamp_into () =
  let within = rect 0 0 100 100 in
  check rect_testable "fits untouched" (rect 10 10 20 20)
    (Geom.clamp_into (rect 10 10 20 20) ~within);
  check rect_testable "pushed right" (rect 0 10 20 20)
    (Geom.clamp_into (rect (-5) 10 20 20) ~within);
  check rect_testable "pushed up-left" (rect 80 80 20 20)
    (Geom.clamp_into (rect 95 95 20 20) ~within);
  check rect_testable "too big pins to origin" (rect 0 0 200 200)
    (Geom.clamp_into (rect 50 50 200 200) ~within)

(* -------- properties -------- *)

let rect_gen =
  QCheck2.Gen.(
    map
      (fun (x, y, w, h) -> rect x y (1 + w) (1 + h))
      (quad (int_range (-500) 500) (int_range (-500) 500) (int_range 0 400)
         (int_range 0 400)))

let prop_clamp_inside =
  QCheck2.Test.make ~name:"clamp_into keeps rect inside when it fits"
    ~count:500 rect_gen (fun r ->
      let within = rect 0 0 1000 1000 in
      let c = Geom.clamp_into r ~within in
      (r.w > 1000 || r.h > 1000)
      || (c.x >= 0 && c.y >= 0 && c.x + c.w <= 1000 && c.y + c.h <= 1000))

let prop_clamp_preserves_size =
  QCheck2.Test.make ~name:"clamp_into never resizes" ~count:500 rect_gen (fun r ->
      let c = Geom.clamp_into r ~within:(rect 0 0 300 300) in
      c.w = r.w && c.h = r.h)

let prop_intersect_commutes =
  QCheck2.Test.make ~name:"intersect commutes" ~count:500
    (QCheck2.Gen.pair rect_gen rect_gen) (fun (a, b) ->
      match (Geom.intersect a b, Geom.intersect b a) with
      | None, None -> true
      | Some x, Some y -> Geom.rect_equal x y
      | _ -> false)

let prop_intersect_contained =
  QCheck2.Test.make ~name:"intersection is contained in both" ~count:500
    (QCheck2.Gen.pair rect_gen rect_gen) (fun (a, b) ->
      match Geom.intersect a b with
      | None -> true
      | Some i ->
          i.x >= a.x && i.y >= a.y && i.x + i.w <= a.x + a.w
          && i.y + i.h <= a.y + a.h && i.x >= b.x && i.y >= b.y
          && i.x + i.w <= b.x + b.w
          && i.y + i.h <= b.y + b.h)

let suite =
  [
    Alcotest.test_case "parse full geometry" `Quick test_parse_full;
    Alcotest.test_case "parse size only" `Quick test_parse_size_only;
    Alcotest.test_case "parse position only" `Quick test_parse_position_only;
    Alcotest.test_case "parse +C centring" `Quick test_parse_centered;
    Alcotest.test_case "parse -0 from-end" `Quick test_parse_negative;
    Alcotest.test_case "parse -8-8" `Quick test_parse_negative_pair;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "to_string roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "resolve from-start" `Quick test_resolve_from_start;
    Alcotest.test_case "resolve from-end" `Quick test_resolve_from_end;
    Alcotest.test_case "resolve centred" `Quick test_resolve_centered;
    Alcotest.test_case "resolve inside offset parent" `Quick test_resolve_within_offset;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "intersect" `Quick test_intersect;
    Alcotest.test_case "union bounds" `Quick test_union_bounds;
    Alcotest.test_case "clamp_into" `Quick test_clamp_into;
    QCheck_alcotest.to_alcotest prop_clamp_inside;
    QCheck_alcotest.to_alcotest prop_clamp_preserves_size;
    QCheck_alcotest.to_alcotest prop_intersect_commutes;
    QCheck_alcotest.to_alcotest prop_intersect_contained;
  ]
