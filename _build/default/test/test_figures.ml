(* Render-level regression tests for the paper's figures: assert on what
   the user would actually see, not just on window-tree state. *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Render = Swm_xlib.Render
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check
let contains = Astring_contains.contains

let render_client server wm app =
  match Wm.find_client wm (Client_app.window app) with
  | Some client ->
      Render.to_string (Render.render_window server client.Ctx.frame ~scale:8 ())
  | None -> Alcotest.fail "client not managed"

(* Figure 1: the OpenLook+ decoration. *)
let test_figure1 () =
  let server =
    Server.create ~screens:[ { Server.size = (640, 400); monochrome = false } ] ()
  in
  let wm =
    Wm.start
      ~resources:[ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]
      server
  in
  let app =
    Client_app.launch server
      (Client_app.spec ~instance:"xterm" ~class_:"XTerm" ~us_position:true
         ~background:'t' (Geom.rect 40 48 320 160))
  in
  ignore (Wm.step wm);
  let picture = render_client server wm app in
  check Alcotest.bool "title shows WM_NAME" true (contains picture "xterm");
  check Alcotest.bool "nail button" true (contains picture "nail");
  check Alcotest.bool "client area filled" true (contains picture "tttttttttt");
  (* Resize corners ('+' cells) at the frame's extremes. *)
  check Alcotest.bool "resize corners" true (contains picture "+")

(* Figure 2: the root panel, with the §4.1.4 button labels in two rows. *)
let test_figure2 () =
  let server =
    Server.create ~screens:[ { Server.size = (640, 400); monochrome = false } ] ()
  in
  let wm =
    Wm.start ~resources:[ Templates.open_look; "swm*virtualDesktop: False\n" ] server
  in
  let scr = Ctx.screen (Wm.ctx wm) 0 in
  let panel = List.hd scr.Ctx.root_panels in
  let win = Swm_oi.Wobj.window panel in
  let frame =
    match Wm.find_client wm win with
    | Some client -> client.Ctx.frame
    | None -> win
  in
  let picture = Render.to_string (Render.render_window server frame ~scale:8 ()) in
  List.iter
    (fun label ->
      check Alcotest.bool ("button " ^ label) true (contains picture label))
    [ "quit"; "restart"; "iconify"; "deiconify"; "move"; "resize"; "raise"; "lower" ];
  (* Row structure: quit (row 0) renders above move (row 1). *)
  let line_of needle =
    let lines = String.split_on_char '\n' picture in
    let rec find i = function
      | [] -> -1
      | l :: rest -> if contains l needle then i else find (i + 1) rest
    in
    find 0 lines
  in
  check Alcotest.bool "two rows" true (line_of "quit" < line_of "move")

(* Figure 3: the panner. *)
let test_figure3 () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server in
  let _a = Stock.xterm server ~at:(Geom.point 100 120) () in
  let _b = Stock.xclock server ~at:(Geom.point 1600 1000) () in
  ignore (Wm.step wm);
  let ctx = Wm.ctx wm in
  Swm_core.Panner.refresh ctx ~screen:0;
  let vdesk = Option.get (Ctx.screen ctx 0).Ctx.vdesk in
  let client = Option.get (Wm.find_client wm vdesk.Ctx.panner_client) in
  let picture =
    Render.to_string (Render.render_window server client.Ctx.frame ~scale:4 ())
  in
  check Alcotest.bool "miniatures" true (contains picture "mm");
  check Alcotest.bool "viewport outline" true (contains picture "#");
  check Alcotest.bool "panner title" true (contains picture "Virtual Desktop")

(* Shaped client: no rectangular decoration visible. *)
let test_shaped_render () =
  let server =
    Server.create ~screens:[ { Server.size = (400, 300); monochrome = false } ] ()
  in
  let wm =
    Wm.start
      ~resources:[ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ]
      server
  in
  let app = Stock.oclock server ~at:(Geom.point 100 80) () in
  ignore (Wm.step wm);
  ignore app;
  let picture = Render.to_string (Render.render server ~screen:0 ~scale:8 ()) in
  check Alcotest.bool "disc body drawn" true (contains picture "ooooo");
  (* No title bar: the frame contributes no visible text row above. *)
  check Alcotest.bool "no title text" false (contains picture "nail")

(* The render pipeline as a change detector. *)
let test_render_diff_detects_moves () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let before = Render.render server ~screen:0 ~scale:16 () in
  let client = Option.get (Wm.find_client wm (Client_app.window app)) in
  Swm_core.Decoration.move_frame (Wm.ctx wm) client (Geom.point 600 500);
  let after = Render.render server ~screen:0 ~scale:16 () in
  check Alcotest.bool "visible difference" true (Render.diff before after > 0)

let suite =
  [
    Alcotest.test_case "Figure 1: OpenLook+ decoration" `Quick test_figure1;
    Alcotest.test_case "Figure 2: root panel" `Quick test_figure2;
    Alcotest.test_case "Figure 3: panner" `Quick test_figure3;
    Alcotest.test_case "shaped client renders round" `Quick test_shaped_render;
    Alcotest.test_case "render diff detects change" `Quick test_render_diff_detects_moves;
  ]
