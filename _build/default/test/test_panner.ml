module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Vdesk = Swm_core.Vdesk
module Panner = Swm_core.Panner
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

(* OpenLook template: virtual desktop 3456x2700, panner on, scale 24. *)
let fixture () =
  let server = Server.create () in
  let wm = Wm.start ~resources:[ Templates.open_look; "swm*rootPanels:\n" ] server in
  (server, wm, Wm.ctx wm)

let panner_client ctx wm =
  match (Ctx.screen ctx 0).Ctx.vdesk with
  | Some vdesk when not (Xid.is_none vdesk.Ctx.panner_client) ->
      Option.get (Wm.find_client wm vdesk.Ctx.panner_client)
  | _ -> Alcotest.fail "no panner"

let client_of wm app = Option.get (Wm.find_client wm (Client_app.window app))

let test_panner_is_managed_sticky_client () =
  let server, wm, ctx = fixture () in
  let pc = panner_client ctx wm in
  check Alcotest.bool "sticky" true pc.Ctx.sticky;
  check Alcotest.bool "reparented" false (Xid.equal pc.Ctx.frame pc.Ctx.cwin);
  check Alcotest.bool "visible" true (Server.is_viewable server pc.Ctx.cwin);
  check Alcotest.string "class" "Panner" pc.Ctx.class_

let test_panner_size_follows_scale () =
  let server, wm, ctx = fixture () in
  let pc = panner_client ctx wm in
  let g = Server.geometry server pc.Ctx.cwin in
  check Alcotest.int "width = desktop/scale" (3456 / 24) g.w;
  check Alcotest.int "height = desktop/scale" (2700 / 24) g.h;
  ignore ctx

let test_miniatures_track_clients () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 480 240) () in
  ignore (Wm.step wm);
  let pc = panner_client ctx wm in
  let client = client_of wm app in
  (* Find the miniature for our client. *)
  let minis =
    List.filter_map
      (fun w -> Option.map (fun c -> (w, c)) (Panner.client_of_miniature ctx w))
      (Server.children_of server pc.Ctx.cwin)
  in
  (match List.find_opt (fun (_, c) -> c == client) minis with
  | Some (mini, _) ->
      let mg = Server.geometry server mini in
      let fg = Server.geometry server client.Ctx.frame in
      check Alcotest.int "mini x = frame x / scale" (fg.x / 24) mg.x;
      check Alcotest.int "mini y" (fg.y / 24) mg.y
  | None -> Alcotest.fail "no miniature for client")

let test_miniature_hidden_for_iconic_and_sticky () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 480 240) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let pc = panner_client ctx wm in
  let count_minis () =
    List.length
      (List.filter
         (fun w -> Panner.client_of_miniature ctx w <> None)
         (Server.children_of server pc.Ctx.cwin))
  in
  check Alcotest.int "one miniature" 1 (count_minis ());
  Swm_core.Icons.iconify ctx client;
  Panner.refresh ctx ~screen:0;
  check Alcotest.int "iconic client not shown" 0 (count_minis ())

let test_pan_via_button1 () =
  let server, wm, ctx = fixture () in
  ignore (Wm.step wm);
  let pc = panner_client ctx wm in
  (* Press button 1 in the panner interior at a spot corresponding to
     desktop position (1200, 960). *)
  let origin =
    Server.translate_coordinates server ~src:pc.Ctx.cwin
      ~dst:(Server.root server ~screen:0) (Geom.point 0 0)
  in
  Server.warp_pointer server ~screen:0
    (Geom.point (origin.px + (1200 / 24)) (origin.py + (960 / 24)));
  ignore (Wm.step wm);
  Server.press_button server 1;
  ignore (Wm.step wm);
  let o = Vdesk.offset ctx ~screen:0 in
  let sw, sh = Server.screen_size server ~screen:0 in
  check Alcotest.int "viewport centred on press x" (1200 - (sw / 2)) o.px;
  check Alcotest.int "viewport centred on press y" (960 - (sh / 2)) o.py

let test_move_window_via_miniature () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 480 240) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let pc = panner_client ctx wm in
  let mini =
    List.find
      (fun w ->
        match Panner.client_of_miniature ctx w with
        | Some c -> c == client
        | None -> false)
      (Server.children_of server pc.Ctx.cwin)
  in
  (* Button 2 on the miniature starts a move... *)
  let mini_abs = Server.root_geometry server mini in
  Server.warp_pointer server ~screen:0 (Geom.point (mini_abs.x + 1) (mini_abs.y + 1));
  ignore (Wm.step wm);
  Server.press_button server 2;
  ignore (Wm.step wm);
  (match ctx.Ctx.mode with
  | Ctx.Moving _ -> ()
  | _ -> Alcotest.fail "expected interactive move");
  (* ... dragging within the panner repositions on the whole desktop. *)
  let panner_abs = Server.root_geometry server pc.Ctx.cwin in
  Server.warp_pointer server ~screen:0
    (Geom.point (panner_abs.x + (2400 / 24)) (panner_abs.y + (1800 / 24)));
  ignore (Wm.step wm);
  Server.release_button server 2;
  ignore (Wm.step wm);
  let fg = Server.geometry server client.Ctx.frame in
  check Alcotest.int "dropped at desktop x" 2400 fg.x;
  check Alcotest.int "dropped at desktop y" 1800 fg.y;
  check Alcotest.bool "mode idle again" true (ctx.Ctx.mode = Ctx.Idle)

let test_move_crossing_out_of_panner () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 480 240) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let pc = panner_client ctx wm in
  let mini =
    List.find
      (fun w ->
        match Panner.client_of_miniature ctx w with
        | Some c -> c == client
        | None -> false)
      (Server.children_of server pc.Ctx.cwin)
  in
  let mini_abs = Server.root_geometry server mini in
  Server.warp_pointer server ~screen:0 (Geom.point (mini_abs.x + 1) (mini_abs.y + 1));
  ignore (Wm.step wm);
  Server.press_button server 2;
  ignore (Wm.step wm);
  (* Drag out of the panner: now the window follows the pointer at full
     scale on the visible desktop. *)
  Server.warp_pointer server ~screen:0 (Geom.point 300 200);
  ignore (Wm.step wm);
  Server.release_button server 2;
  ignore (Wm.step wm);
  let fg = Server.geometry server client.Ctx.frame in
  let o = Vdesk.offset ctx ~screen:0 in
  check Alcotest.bool "near the pointer's desktop position" true
    (abs (fg.x - (300 + o.px)) < 40 && abs (fg.y - (200 + o.py)) < 40)

let test_panner_resize_resizes_desktop () =
  let server, wm, ctx = fixture () in
  ignore (Wm.step wm);
  let pc = panner_client ctx wm in
  Swm_core.Decoration.client_resized ctx pc (200, 150);
  Panner.panner_resized ctx pc (200, 150);
  match (Ctx.screen ctx 0).Ctx.vdesk with
  | Some vdesk ->
      check Alcotest.bool "desktop resized" true (vdesk.Ctx.vsize = (200 * 24, 150 * 24));
      ignore server
  | None -> Alcotest.fail "vdesk"

let suite =
  [
    Alcotest.test_case "panner is a managed sticky client" `Quick
      test_panner_is_managed_sticky_client;
    Alcotest.test_case "panner size from scale" `Quick test_panner_size_follows_scale;
    Alcotest.test_case "miniatures track clients" `Quick test_miniatures_track_clients;
    Alcotest.test_case "iconic clients have no miniature" `Quick
      test_miniature_hidden_for_iconic_and_sticky;
    Alcotest.test_case "button-1 pans" `Quick test_pan_via_button1;
    Alcotest.test_case "button-2 moves via miniature" `Quick
      test_move_window_via_miniature;
    Alcotest.test_case "move crossing out of the panner" `Quick
      test_move_crossing_out_of_panner;
    Alcotest.test_case "resizing panner resizes desktop" `Quick
      test_panner_resize_resizes_desktop;
  ]
