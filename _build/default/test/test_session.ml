module Session = Swm_core.Session
module Geom = Swm_xlib.Geom
module Prop = Swm_xlib.Prop

let check = Alcotest.check

let sample_hint =
  {
    Session.geometry = Geom.rect 1010 359 120 120;
    icon_geometry = Some (Geom.point 0 0);
    state = Prop.Normal;
    sticky = false;
    command = "oclock -geom 100x100";
    host = None;
  }

let test_args_paper_example () =
  (* The paper's §7 example encoding. *)
  let args = Session.hint_to_args sample_hint in
  check Alcotest.bool "geometry" true
    (String.length args > 0
    && Astring_contains.contains args "-geometry 120x120+1010+359");
  check Alcotest.bool "icon geometry" true
    (Astring_contains.contains args "-icongeometry +0+0");
  check Alcotest.bool "state" true (Astring_contains.contains args "-state NormalState");
  check Alcotest.bool "cmd quoted" true
    (Astring_contains.contains args "-cmd \"oclock -geom 100x100\"")

let test_args_roundtrip () =
  List.iter
    (fun hint ->
      match Session.hint_of_args (Session.hint_to_args hint) with
      | Ok parsed ->
          check Alcotest.bool "geometry" true
            (Geom.rect_equal parsed.Session.geometry hint.Session.geometry);
          check Alcotest.bool "icon" true
            (parsed.icon_geometry = hint.icon_geometry);
          check Alcotest.bool "state" true (parsed.state = hint.state);
          check Alcotest.bool "sticky" true (parsed.sticky = hint.sticky);
          check Alcotest.string "command" hint.command parsed.command;
          check Alcotest.bool "host" true (parsed.host = hint.host)
      | Error msg -> Alcotest.fail msg)
    [
      sample_hint;
      { sample_hint with sticky = true; state = Prop.Iconic; icon_geometry = None };
      { sample_hint with host = Some "goofy"; command = "xterm -e \"vi file\"" };
    ]

let test_args_errors () =
  List.iter
    (fun bad ->
      match Session.hint_of_args bad with
      | Ok _ -> Alcotest.failf "expected %S to fail" bad
      | Error _ -> ())
    [
      "";
      "-geometry 100x100+0+0";
      (* no -cmd *)
      "-cmd \"x\"";
      (* no geometry *)
      "-geometry bogus -cmd \"x\"";
      "-state NoSuchState -geometry 10x10+0+0 -cmd \"x\"";
      "-cmd \"unterminated";
    ]

let test_table_matching () =
  let table = Session.create_table () in
  Session.add table sample_hint;
  Session.add table { sample_hint with command = "xterm"; host = Some "hostA" };
  check Alcotest.int "two entries" 2 (Session.size table);
  (* Host must match when both sides name one. *)
  check Alcotest.bool "wrong host" true
    (Session.take_match table ~command:"xterm" ~host:(Some "hostB") = None);
  check Alcotest.bool "right host" true
    (Session.take_match table ~command:"xterm" ~host:(Some "hostA") <> None);
  check Alcotest.int "entry consumed" 1 (Session.size table);
  (* Entries restore at most one window each. *)
  check Alcotest.bool "first oclock" true
    (Session.take_match table ~command:"oclock -geom 100x100" ~host:None <> None);
  check Alcotest.bool "second oclock has no entry" true
    (Session.take_match table ~command:"oclock -geom 100x100" ~host:None = None)

let test_identical_commands_limitation () =
  (* Two windows with identical WM_COMMAND: swm cannot distinguish them;
     matches are first-come-first-served. *)
  let table = Session.create_table () in
  Session.add table { sample_hint with geometry = Geom.rect 0 0 10 10 };
  Session.add table { sample_hint with geometry = Geom.rect 50 50 10 10 };
  let first =
    Option.get (Session.take_match table ~command:sample_hint.command ~host:None)
  in
  check Alcotest.int "first entry wins" 0 first.geometry.x;
  let second =
    Option.get (Session.take_match table ~command:sample_hint.command ~host:None)
  in
  check Alcotest.int "then the second" 50 second.geometry.x

let test_load () =
  let table = Session.create_table () in
  let text =
    Session.hint_to_args sample_hint ^ "\n\n"
    ^ Session.hint_to_args { sample_hint with command = "xterm" }
  in
  (match Session.load table text with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "expected 2, got %d" n
  | Error msg -> Alcotest.fail msg);
  check Alcotest.int "size" 2 (Session.size table)

let test_places_file () =
  let hints =
    [
      sample_hint;
      { sample_hint with command = "xterm"; host = Some "remotehost"; sticky = true };
    ]
  in
  let content = Session.places_file ~display:":0" ~local_host:"localhost" hints in
  check Alcotest.bool "local start line" true
    (Astring_contains.contains content "oclock -geom 100x100 &");
  check Alcotest.bool "remote start wrapped" true
    (Astring_contains.contains content "rsh remotehost \"env DISPLAY=:0 xterm\" &");
  check Alcotest.bool "swmhints lines" true
    (Astring_contains.contains content "swmhints -geometry");
  (* And it parses back. *)
  match Session.parse_places_file content with
  | Ok parsed ->
      check Alcotest.int "both hints recovered" 2 (List.length parsed);
      check Alcotest.bool "sticky preserved" true
        (List.exists (fun h -> h.Session.sticky) parsed)
  | Error msg -> Alcotest.fail msg

let test_custom_remote_format () =
  let hints = [ { sample_hint with host = Some "faraway" } ] in
  let content =
    Session.places_file ~remote_format:"ssh %h -- DISPLAY=%d %c &" ~display:":1"
      ~local_host:"localhost" hints
  in
  check Alcotest.bool "custom format used" true
    (Astring_contains.contains content "ssh faraway -- DISPLAY=:1 oclock -geom 100x100 &")

(* Property: hint_to_args/hint_of_args roundtrips for generated hints. *)
let hint_gen =
  QCheck2.Gen.(
    map
      (fun ((x, y, w, h), sticky, statei, cmd_tail) ->
        {
          Session.geometry = Geom.rect x y (w + 1) (h + 1);
          icon_geometry = None;
          state = (if statei then Prop.Normal else Prop.Iconic);
          sticky;
          command = "cmd" ^ String.concat "" (List.map string_of_int cmd_tail);
          host = None;
        })
      (quad
         (quad (int_range 0 3000) (int_range 0 3000) (int_range 1 2000)
            (int_range 1 2000))
         bool bool
         (list_size (int_range 0 5) (int_range 0 9))))

let prop_roundtrip =
  QCheck2.Test.make ~name:"swmhints args roundtrip" ~count:300 hint_gen (fun hint ->
      match Session.hint_of_args (Session.hint_to_args hint) with
      | Ok parsed ->
          Geom.rect_equal parsed.Session.geometry hint.Session.geometry
          && parsed.sticky = hint.sticky && parsed.state = hint.state
          && String.equal parsed.command hint.command
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "paper example encoding" `Quick test_args_paper_example;
    Alcotest.test_case "args roundtrip" `Quick test_args_roundtrip;
    Alcotest.test_case "args errors" `Quick test_args_errors;
    Alcotest.test_case "table matching and removal" `Quick test_table_matching;
    Alcotest.test_case "identical WM_COMMAND limitation" `Quick
      test_identical_commands_limitation;
    Alcotest.test_case "load property text" `Quick test_load;
    Alcotest.test_case "places file" `Quick test_places_file;
    Alcotest.test_case "custom remote format" `Quick test_custom_remote_format;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
