test/test_geom.ml: Alcotest List QCheck2 QCheck_alcotest Swm_xlib
