test/test_config.ml: Alcotest List Swm_core Swm_xlib Swm_xrdb
