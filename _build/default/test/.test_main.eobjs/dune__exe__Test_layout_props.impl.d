test/test_layout_props.ml: Array List Option Printf QCheck2 QCheck_alcotest String Swm_oi Swm_xlib Swm_xrdb
