test/test_baselines.ml: Alcotest List Option Swm_baselines Swm_clients Swm_xlib
