test/test_session.ml: Alcotest Astring_contains List Option QCheck2 QCheck_alcotest String Swm_core Swm_xlib
