test/test_figures.ml: Alcotest Astring_contains List Option String Swm_clients Swm_core Swm_oi Swm_xlib
