test/test_golden.ml: Alcotest Filename In_channel List Option String Swm_clients Swm_core Swm_oi Swm_xlib
