test/test_misc.ml: Alcotest Astring_contains Filename In_channel List Option Swm_clients Swm_core Swm_xlib Sys
