test/test_region.ml: Alcotest List QCheck2 QCheck_alcotest Swm_xlib
