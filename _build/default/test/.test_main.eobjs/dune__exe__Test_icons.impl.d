test/test_icons.ml: Alcotest List Option Swm_clients Swm_core Swm_oi Swm_xlib
