test/test_wm.ml: Alcotest Option Swm_clients Swm_core Swm_oi Swm_xlib
