test/test_restart.ml: Alcotest List Option String Swm_baselines Swm_clients Swm_core Swm_xlib
