test/test_render.ml: Alcotest List String Swm_xlib
