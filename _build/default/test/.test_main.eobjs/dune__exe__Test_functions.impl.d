test/test_functions.ml: Alcotest Astring_contains List Option Printf Swm_clients Swm_core Swm_oi Swm_xlib
