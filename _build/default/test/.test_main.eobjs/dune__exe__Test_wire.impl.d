test/test_wire.ml: Alcotest Format List Option QCheck2 QCheck_alcotest String Swm_core Swm_xlib
