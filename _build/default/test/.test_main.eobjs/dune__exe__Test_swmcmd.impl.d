test/test_swmcmd.ml: Alcotest List Option Swm_clients Swm_core Swm_xlib
