test/test_oi.ml: Alcotest List Option String Swm_oi Swm_xlib Swm_xrdb
