test/test_xrdb.ml: Alcotest List QCheck2 QCheck_alcotest String Swm_xrdb
