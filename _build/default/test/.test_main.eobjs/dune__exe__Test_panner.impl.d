test/test_panner.ml: Alcotest List Option Swm_clients Swm_core Swm_xlib
