test/test_fuzz.ml: Alcotest Array List Option Printf QCheck2 QCheck_alcotest Swm_clients Swm_core Swm_oi Swm_xlib
