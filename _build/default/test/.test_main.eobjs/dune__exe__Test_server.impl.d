test/test_server.ml: Alcotest List Swm_xlib
