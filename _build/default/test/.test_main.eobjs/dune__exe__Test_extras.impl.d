test/test_extras.ml: Alcotest List Option Printf Swm_clients Swm_core Swm_oi Swm_xlib
