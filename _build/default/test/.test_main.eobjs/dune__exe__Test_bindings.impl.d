test/test_bindings.ml: Alcotest List Printf QCheck2 QCheck_alcotest String Swm_core Swm_xlib
