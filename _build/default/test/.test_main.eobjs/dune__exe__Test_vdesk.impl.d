test/test_vdesk.ml: Alcotest Array Option Swm_clients Swm_core Swm_xlib
