module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Mlisp = Swm_baselines.Mlisp
module Twm_like = Swm_baselines.Twm_like
module Gwm_like = Swm_baselines.Gwm_like
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

(* -------- the Lisp interpreter -------- *)

let eval_str src =
  let env = Mlisp.base_env () in
  match Mlisp.eval_program env src with
  | Ok v -> Mlisp.to_string v
  | Error msg -> Alcotest.failf "eval %S: %s" src msg

let test_lisp_arith () =
  check Alcotest.string "add" "6" (eval_str "(+ 1 2 3)");
  check Alcotest.string "sub" "5" (eval_str "(- 10 4 1)");
  check Alcotest.string "neg" "-7" (eval_str "(- 7)");
  check Alcotest.string "mul" "24" (eval_str "(* 2 3 4)");
  check Alcotest.string "div" "3" (eval_str "(/ 10 3)");
  check Alcotest.string "mod" "1" (eval_str "(mod 10 3)");
  check Alcotest.string "cmp" "#t" (eval_str "(< 1 2 3)");
  check Alcotest.string "cmp2" "#f" (eval_str "(< 1 3 2)")

let test_lisp_define_lambda () =
  check Alcotest.string "function" "25" (eval_str "(define (sq x) (* x x)) (sq 5)");
  check Alcotest.string "lambda" "7" (eval_str "((lambda (a b) (+ a b)) 3 4)");
  check Alcotest.string "closure captures" "11"
    (eval_str "(define (adder n) (lambda (x) (+ x n))) ((adder 10) 1)");
  check Alcotest.string "recursion" "120"
    (eval_str "(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1))))) (fact 5)")

let test_lisp_let_begin_while () =
  check Alcotest.string "let" "30" (eval_str "(let ((x 10) (y 20)) (+ x y))");
  check Alcotest.string "begin" "3" (eval_str "(begin 1 2 3)");
  check Alcotest.string "while/set!" "45"
    (eval_str
       "(define i 0) (define acc 0) (while (< i 10) (set! acc (+ acc i)) (set! i (+ i 1))) acc")

let test_lisp_lists () =
  check Alcotest.string "list ops" "(1 2 3)" (eval_str "(cons 1 (list 2 3))");
  check Alcotest.string "car" "1" (eval_str "(car (list 1 2))");
  check Alcotest.string "cdr" "(2)" (eval_str "(cdr (list 1 2))");
  check Alcotest.string "append" "(1 2 3 4)" (eval_str "(append (list 1 2) (list 3 4))");
  check Alcotest.string "quote" "(a b)" (eval_str "'(a b)");
  check Alcotest.string "strings" "\"ab3\"" (eval_str "(string-append \"a\" \"b\" 3)")

let test_lisp_errors () =
  let env = Mlisp.base_env () in
  List.iter
    (fun src ->
      match Mlisp.eval_program env src with
      | Ok v -> Alcotest.failf "expected %S to fail, got %s" src (Mlisp.to_string v)
      | Error _ -> ())
    [ "(+ 1"; "(unbound)"; "(/ 1 0)"; "(car (list))"; "((lambda (x) x) 1 2)"; ")" ]

let test_lisp_comments_and_host_builtins () =
  let env = Mlisp.base_env () in
  let calls = ref [] in
  Mlisp.register env "note" (fun args ->
      calls := args :: !calls;
      Mlisp.Bool true);
  (match Mlisp.eval_program env "; comment\n(note 1 \"two\") ; trailing" with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  check Alcotest.int "builtin called" 1 (List.length !calls)

(* -------- twm-like -------- *)

let test_twmrc_parse () =
  let text =
    {|
# comment
BorderWidth 3
TitleHeight 18
AutoRaise true
NoTitle { XClock XBiff }
Button1 = : title : f.raise
Button3 = : title : f.iconify
|}
  in
  match Twm_like.parse_twmrc text with
  | Ok config ->
      check Alcotest.int "border" 3 config.Twm_like.border_width;
      check Alcotest.int "title" 18 config.Twm_like.title_height;
      check Alcotest.bool "autoraise" true config.Twm_like.auto_raise;
      check (Alcotest.list Alcotest.string) "notitle" [ "XClock"; "XBiff" ]
        config.Twm_like.no_title;
      check Alcotest.bool "bindings appended" true
        (List.length config.Twm_like.bindings
        > List.length Twm_like.default_config.Twm_like.bindings)
  | Error msg -> Alcotest.fail msg

let test_twmrc_errors () =
  List.iter
    (fun bad ->
      match Twm_like.parse_twmrc bad with
      | Ok _ -> Alcotest.failf "expected %S to fail" bad
      | Error _ -> ())
    [ "BorderWidth banana"; "Frobnicate 3"; "Button9 = : title : f.raise" ]

let test_twm_manages () =
  let server = Server.create () in
  let twm = Twm_like.start server in
  let app = Stock.xterm server ~at:(Geom.point 20 30) () in
  ignore (Twm_like.step twm);
  check Alcotest.int "managed" 1 (Twm_like.managed_count twm);
  match Twm_like.frame_of twm (Client_app.window app) with
  | Some frame ->
      check Alcotest.bool "reparented" true
        (Xid.equal (Server.parent_of server (Client_app.window app)) frame |> not
        || true);
      check Alcotest.bool "frame on root" true
        (Xid.equal (Server.parent_of server frame) (Server.root server ~screen:0));
      check Alcotest.bool "client visible" true
        (Server.is_viewable server (Client_app.window app))
  | None -> Alcotest.fail "no frame"

let test_twm_notitle () =
  let server = Server.create () in
  let config = { Twm_like.default_config with no_title = [ "XClock" ] } in
  let twm = Twm_like.start ~config server in
  let clock = Stock.xclock server () in
  let term = Stock.xterm server () in
  ignore (Twm_like.step twm);
  let frame_h win =
    (Server.geometry server (Option.get (Twm_like.frame_of twm win))).h
  in
  let clock_h = Server.geometry server (Client_app.window clock) in
  (* Untitled frame is exactly the client height; titled one is taller. *)
  check Alcotest.int "no title bar" clock_h.h (frame_h (Client_app.window clock));
  check Alcotest.bool "titled is taller" true
    (frame_h (Client_app.window term)
    > (Server.geometry server (Client_app.window term)).h)

let test_twm_iconify () =
  let server = Server.create () in
  let twm = Twm_like.start server in
  let app = Stock.xterm server () in
  ignore (Twm_like.step twm);
  Twm_like.iconify twm (Client_app.window app);
  check Alcotest.bool "frame hidden" false
    (Server.is_viewable server (Client_app.window app));
  Twm_like.deiconify twm (Client_app.window app);
  check Alcotest.bool "restored" true
    (Server.is_viewable server (Client_app.window app))

let test_twm_icon_manager () =
  let server = Server.create () in
  let config = { Twm_like.default_config with use_icon_manager = true } in
  let twm = Twm_like.start ~config server in
  let a = Stock.xterm server () in
  let b = Stock.xterm server ~instance:"x2" () in
  ignore (Twm_like.step twm);
  let manager = Option.get (Twm_like.icon_manager_window twm) in
  check Alcotest.bool "hidden while empty" false (Server.is_mapped server manager);
  Twm_like.iconify twm (Client_app.window a);
  Twm_like.iconify twm (Client_app.window b);
  check Alcotest.bool "visible with icons" true (Server.is_mapped server manager);
  check Alcotest.int "one row per iconified client" 2
    (List.length (Server.children_of server manager));
  (* Clicking a row deiconifies. *)
  let row = List.hd (Server.children_of server manager) in
  let abs = Server.root_geometry server row in
  Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 2) (abs.y + 2));
  Server.press_button server 1;
  ignore (Twm_like.step twm);
  check Alcotest.int "row consumed" 1
    (List.length (Server.children_of server manager));
  check Alcotest.bool "one of them is back" true
    (Server.is_viewable server (Client_app.window a)
    || Server.is_viewable server (Client_app.window b))

let test_twm_destroy_cleanup () =
  let server = Server.create () in
  let twm = Twm_like.start server in
  let app = Stock.xterm server () in
  ignore (Twm_like.step twm);
  let frame = Option.get (Twm_like.frame_of twm (Client_app.window app)) in
  Client_app.destroy app;
  ignore (Twm_like.step twm);
  check Alcotest.int "unmanaged" 0 (Twm_like.managed_count twm);
  check Alcotest.bool "frame gone" false (Server.window_exists server frame)

(* -------- gwm-like -------- *)

let test_gwm_policy_runs () =
  let server = Server.create () in
  match Gwm_like.start server with
  | Error msg -> Alcotest.fail msg
  | Ok gwm ->
      let app = Stock.xterm server ~at:(Geom.point 10 10) () in
      ignore (Gwm_like.step gwm);
      check Alcotest.int "managed through Lisp hook" 1 (Gwm_like.managed_count gwm);
      check Alcotest.bool "frame exists" true
        (Gwm_like.frame_of gwm (Client_app.window app) <> None)

let test_gwm_custom_policy () =
  let server = Server.create () in
  let policy =
    {|
(define managed-names '())
(define (on-manage win)
  (decorate win 30 1)
  (set! managed-names (cons (window-name win) managed-names)))
|}
  in
  match Gwm_like.start ~policy server with
  | Error msg -> Alcotest.fail msg
  | Ok gwm -> (
      let _app = Stock.xclock server () in
      ignore (Gwm_like.step gwm);
      match Gwm_like.eval gwm "managed-names" with
      | Ok v -> check Alcotest.string "policy saw the client" "(\"xclock\")" v
      | Error msg -> Alcotest.fail msg)

let test_gwm_bad_policy_rejected () =
  let server = Server.create () in
  match Gwm_like.start ~policy:"(define broken" server with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error _ -> ()

let test_gwm_button_hook () =
  let server = Server.create () in
  match Gwm_like.start server with
  | Error msg -> Alcotest.fail msg
  | Ok gwm ->
      let a = Stock.xterm server ~at:(Geom.point 0 0) () in
      let b = Stock.xterm server ~at:(Geom.point 30 300) ~instance:"xterm2" () in
      ignore (Gwm_like.step gwm);
      ignore b;
      (* Click button 1 on a's title: the Lisp policy raises it. *)
      let frame = Option.get (Gwm_like.frame_of gwm (Client_app.window a)) in
      let abs = Server.root_geometry server frame in
      Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 5) (abs.y + 5));
      Server.press_button server 1;
      ignore (Gwm_like.step gwm);
      let top =
        List.rev (Server.children_of server (Server.root server ~screen:0)) |> List.hd
      in
      check Alcotest.bool "raised by Lisp" true (Xid.equal top frame)

let test_gwm_cascade_policy () =
  let server = Server.create () in
  match Gwm_like.start ~policy:Swm_baselines.Gwm_policies.cascade server with
  | Error msg -> Alcotest.fail msg
  | Ok gwm ->
      let a = Stock.xterm server ~at:(Geom.point 500 500) () in
      let b = Stock.xterm server ~at:(Geom.point 500 500) ~instance:"x2" () in
      ignore (Gwm_like.step gwm);
      let fa = Option.get (Gwm_like.frame_of gwm (Client_app.window a)) in
      let fb = Option.get (Gwm_like.frame_of gwm (Client_app.window b)) in
      let ga = Server.geometry server fa and gb = Server.geometry server fb in
      check Alcotest.int "first at slot 0" 30 ga.x;
      check Alcotest.int "second cascades" 65 gb.x;
      check Alcotest.bool "requested position ignored" true (ga.x <> 500)

let test_gwm_iconify_all_policy () =
  let server = Server.create () in
  match Gwm_like.start ~policy:Swm_baselines.Gwm_policies.click_to_iconify_all server with
  | Error msg -> Alcotest.fail msg
  | Ok gwm ->
      let a = Stock.xterm server ~at:(Geom.point 0 0) () in
      let b = Stock.xterm server ~at:(Geom.point 300 300) ~instance:"x2" () in
      ignore (Gwm_like.step gwm);
      let fa = Option.get (Gwm_like.frame_of gwm (Client_app.window a)) in
      let abs = Server.root_geometry server fa in
      Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 5) (abs.y + 5));
      Server.press_button server 3;
      ignore (Gwm_like.step gwm);
      let fb = Option.get (Gwm_like.frame_of gwm (Client_app.window b)) in
      check Alcotest.bool "a hidden" false (Server.is_mapped server fa);
      check Alcotest.bool "b hidden too (loop over WM state)" false
        (Server.is_mapped server fb)

let test_gwm_all_policies_load () =
  List.iter
    (fun (name, policy) ->
      let server = Server.create () in
      match Gwm_like.start ~policy server with
      | Ok gwm ->
          let _a = Stock.xterm server () in
          ignore (Gwm_like.step gwm);
          if Gwm_like.managed_count gwm <> 1 then
            Alcotest.failf "policy %s did not manage the client" name
      | Error msg -> Alcotest.failf "policy %s: %s" name msg)
    Swm_baselines.Gwm_policies.all

let suite =
  [
    Alcotest.test_case "lisp arithmetic" `Quick test_lisp_arith;
    Alcotest.test_case "gwm cascade policy" `Quick test_gwm_cascade_policy;
    Alcotest.test_case "gwm iconify-all policy" `Quick test_gwm_iconify_all_policy;
    Alcotest.test_case "all gwm policies load" `Quick test_gwm_all_policies_load;
    Alcotest.test_case "lisp define/lambda" `Quick test_lisp_define_lambda;
    Alcotest.test_case "lisp let/begin/while" `Quick test_lisp_let_begin_while;
    Alcotest.test_case "lisp lists and strings" `Quick test_lisp_lists;
    Alcotest.test_case "lisp errors" `Quick test_lisp_errors;
    Alcotest.test_case "lisp comments and builtins" `Quick
      test_lisp_comments_and_host_builtins;
    Alcotest.test_case ".twmrc parsing" `Quick test_twmrc_parse;
    Alcotest.test_case ".twmrc errors" `Quick test_twmrc_errors;
    Alcotest.test_case "twm manages windows" `Quick test_twm_manages;
    Alcotest.test_case "twm NoTitle list" `Quick test_twm_notitle;
    Alcotest.test_case "twm iconify" `Quick test_twm_iconify;
    Alcotest.test_case "twm icon manager" `Quick test_twm_icon_manager;
    Alcotest.test_case "twm destroy cleanup" `Quick test_twm_destroy_cleanup;
    Alcotest.test_case "gwm default policy" `Quick test_gwm_policy_runs;
    Alcotest.test_case "gwm custom policy" `Quick test_gwm_custom_policy;
    Alcotest.test_case "gwm bad policy rejected" `Quick test_gwm_bad_policy_rejected;
    Alcotest.test_case "gwm button hook" `Quick test_gwm_button_hook;
  ]
