module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Wobj = Swm_oi.Wobj
module Panel_spec = Swm_oi.Panel_spec
module Menu = Swm_oi.Menu
module Xrdb = Swm_xrdb.Xrdb

let check = Alcotest.check

let fixture ?(resources = "") () =
  let server = Server.create () in
  let conn = Server.connect server ~name:"oi" in
  let db = Xrdb.create () in
  (match Xrdb.load_string db resources with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "bad fixture resources: %s" msg);
  let tk =
    Wobj.create_toolkit ~server ~conn ~screen:0 ~query:(fun ~names ~classes ->
        Xrdb.query db ~names:("swm" :: names) ~classes:("Swm" :: classes))
  in
  (server, conn, tk, db)

let realize_on_root server tk obj =
  Wobj.realize obj ~parent_window:(Server.root server ~screen:0) ~at:(Geom.point 0 0);
  ignore tk

(* -------- object basics -------- *)

let test_make_and_tree () =
  let _server, _conn, tk, _db = fixture () in
  let panel = Wobj.make tk Wobj.Panel ~name:"p" in
  let b1 = Wobj.make tk Wobj.Button ~name:"b1" in
  let b2 = Wobj.make tk Wobj.Button ~name:"b2" in
  Wobj.add_child panel b1 ~position:(Geom.parse_exn "+0+0");
  Wobj.add_child panel b2 ~position:(Geom.parse_exn "+1+0");
  check Alcotest.int "two children" 2 (List.length (Wobj.children panel));
  check Alcotest.bool "parent set" true
    (match Wobj.parent b1 with Some p -> p == panel | None -> false);
  check Alcotest.bool "find descendant" true
    (match Wobj.find_descendant panel ~name:"b2" with
    | Some found -> found == b2
    | None -> false);
  Wobj.remove_child panel b1;
  check Alcotest.int "one child left" 1 (List.length (Wobj.children panel))

let test_buttons_cannot_hold_children () =
  let _server, _conn, tk, _db = fixture () in
  let b = Wobj.make tk Wobj.Button ~name:"b" in
  let c = Wobj.make tk Wobj.Button ~name:"c" in
  try
    Wobj.add_child b c ~position:(Geom.parse_exn "+0+0");
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_attr_precedence () =
  let _server, _conn, tk, _db =
    fixture ~resources:"swm*button.foo.bindings: <Btn1> : f.raise\n" ()
  in
  let b = Wobj.make tk Wobj.Button ~name:"foo" in
  check (Alcotest.option Alcotest.string) "db attr"
    (Some "<Btn1> : f.raise") (Wobj.attr b "bindings");
  Wobj.set_attr b "bindings" "<Btn2> : f.lower";
  check (Alcotest.option Alcotest.string) "override shadows"
    (Some "<Btn2> : f.lower") (Wobj.attr b "bindings");
  check Alcotest.bool "missing attr" true (Wobj.attr b "nothing" = None)

(* -------- layout -------- *)

let openlook_def =
  "button pulldown +0+0 button name +C+0 button nail -0+0 panel client +0+1"

let build_openlook tk =
  match
    Panel_spec.build_from_spec tk ~lookup:(fun _ -> None) ~kind:Wobj.Panel
      ~name:"openLook" ~spec:openlook_def
  with
  | Ok p -> p
  | Error msg -> Alcotest.failf "build failed: %s" msg

let test_panel_spec_parse () =
  match Panel_spec.parse openlook_def with
  | Ok items ->
      check Alcotest.int "four items" 4 (List.length items);
      let kinds = List.map (fun i -> i.Panel_spec.item_kind) items in
      check Alcotest.bool "kinds" true
        (kinds = [ Wobj.Button; Wobj.Button; Wobj.Button; Wobj.Panel ])
  | Error msg -> Alcotest.fail msg

let test_panel_spec_errors () =
  List.iter
    (fun bad ->
      match Panel_spec.parse bad with
      | Ok _ -> Alcotest.failf "expected %S to fail" bad
      | Error _ -> ())
    [ "button"; "button b"; "gizmo g +0+0"; "button b nowhere" ]

let test_layout_rows_and_columns () =
  let server, _conn, tk, _db = fixture () in
  let panel = build_openlook tk in
  (match Wobj.find_descendant panel ~name:"client" with
  | Some client -> Wobj.set_external_size client (Some (320, 160))
  | None -> Alcotest.fail "no client panel");
  realize_on_root server tk panel;
  let geom_of name =
    match Wobj.find_descendant panel ~name with
    | Some obj -> Wobj.geometry obj
    | None -> Alcotest.failf "missing %s" name
  in
  let pulldown = geom_of "pulldown" in
  let name = geom_of "name" in
  let nail = geom_of "nail" in
  let client = geom_of "client" in
  let frame = Wobj.geometry panel in
  (* Row 0: pulldown left, name centred, nail right; row 1: client. *)
  check Alcotest.bool "pulldown at left" true (pulldown.x < 10);
  check Alcotest.bool "nail at right" true (nail.x + nail.w > frame.w - 10);
  let name_centre = name.x + (name.w / 2) and frame_centre = frame.w / 2 in
  check Alcotest.bool "name centred" true (abs (name_centre - frame_centre) <= 4);
  check Alcotest.bool "client below title row" true
    (client.y >= pulldown.y + pulldown.h);
  check Alcotest.int "client width preserved" 320 client.w;
  check Alcotest.int "client height preserved" 160 client.h;
  check Alcotest.bool "frame wraps client" true (frame.w >= client.w && frame.h > client.h)

let test_layout_explicit_rows () =
  let server, _conn, tk, _db = fixture () in
  let panel = Wobj.make tk Wobj.Panel ~name:"grid" in
  let mk name pos =
    let b = Wobj.make tk Wobj.Button ~name in
    Wobj.add_child panel b ~position:(Geom.parse_exn pos);
    b
  in
  let a = mk "a" "+0+0" in
  let b = mk "b" "+1+0" in
  let c = mk "c" "+0+1" in
  realize_on_root server tk panel;
  let ga = Wobj.geometry a and gb = Wobj.geometry b and gc = Wobj.geometry c in
  check Alcotest.bool "a before b in row 0" true (ga.x + ga.w <= gb.x);
  check Alcotest.bool "same row" true (ga.y = gb.y);
  check Alcotest.bool "c in next row" true (gc.y >= ga.y + ga.h)

let test_button_image_attribute () =
  let server, _conn, tk, _db =
    fixture
      ~resources:"swm*button.logo.image: xlogo32\nswm*button.odd.image: unknownpix\n"
      ()
  in
  (* A stock bitmap becomes character art on the window. *)
  let b = Wobj.make tk Wobj.Button ~name:"logo" in
  realize_on_root server tk b;
  check Alcotest.bool "bitmap art set" true
    (Server.art_of server (Wobj.window b) <> None);
  check Alcotest.string "no text label" "" (Wobj.label b);
  (* An unknown bitmap name shows bracketed. *)
  let u = Wobj.make tk Wobj.Button ~name:"odd" in
  realize_on_root server tk u;
  check Alcotest.string "unknown image bracketed" "[unknownpix]" (Wobj.label u);
  (* An explicit label wins over the image attribute. *)
  let c = Wobj.make tk Wobj.Button ~name:"logo" in
  Wobj.set_label c "text";
  realize_on_root server tk c;
  check Alcotest.string "explicit label preserved" "text" (Wobj.label c)

let test_natural_size_from_label () =
  let _server, _conn, tk, _db = fixture () in
  let b = Wobj.make tk Wobj.Button ~name:"b" in
  Wobj.set_label b "hi";
  let w1, _ = Wobj.natural_size b in
  Wobj.set_label b "a much longer label";
  let w2, _ = Wobj.natural_size b in
  check Alcotest.bool "longer label, wider button" true (w2 > w1)

let test_set_label_relayouts () =
  let server, _conn, tk, _db = fixture () in
  let panel = build_openlook tk in
  realize_on_root server tk panel;
  let name_obj = Option.get (Wobj.find_descendant panel ~name:"name") in
  let before = (Wobj.geometry name_obj).w in
  Wobj.set_label name_obj "a considerably longer window title";
  let after = (Wobj.geometry name_obj).w in
  check Alcotest.bool "grew" true (after > before);
  check Alcotest.string "window label updated"
    "a considerably longer window title"
    (Option.value ~default:"" (Server.label_of server (Wobj.window name_obj)))

let test_nested_panel_lookup () =
  let server, _conn, tk, _db = fixture () in
  let defs =
    [ ("outer", "button x +0+0 panel inner +0+1"); ("inner", "button y +0+0") ]
  in
  match
    Panel_spec.build tk ~lookup:(fun n -> List.assoc_opt n defs) ~kind:Wobj.Panel
      ~name:"outer"
  with
  | Error msg -> Alcotest.fail msg
  | Ok panel ->
      realize_on_root server tk panel;
      check Alcotest.bool "nested button realized" true
        (match Wobj.find_descendant panel ~name:"y" with
        | Some y -> Wobj.is_realized y
        | None -> false)

let test_cycle_detection () =
  let _server, _conn, tk, _db = fixture () in
  let defs =
    [ ("a", "panel b +0+0"); ("b", "panel a +0+0") ]
  in
  match
    Panel_spec.build tk ~lookup:(fun n -> List.assoc_opt n defs) ~kind:Wobj.Panel ~name:"a"
  with
  | Error msg ->
      check Alcotest.bool "mentions cycle" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected cycle error"

let test_dispatch_registry () =
  let server, _conn, tk, _db = fixture () in
  let panel = build_openlook tk in
  realize_on_root server tk panel;
  let nail = Option.get (Wobj.find_descendant panel ~name:"nail") in
  let nail_win = Wobj.window nail in
  check Alcotest.bool "window maps back to object" true
    (match Wobj.find_object tk nail_win with
    | Some found -> found == nail
    | None -> false);
  Wobj.unrealize panel;
  check Alcotest.bool "unregistered after unrealize" true
    (Wobj.find_object tk nail_win = None);
  check Alcotest.bool "window destroyed" false (Server.window_exists server nail_win)

let test_shape_to_children () =
  let server, _conn, tk, _db =
    fixture ~resources:"swm*panel.shapeit*shape: True\n" ()
  in
  let panel = Wobj.make tk Wobj.Panel ~name:"shapeit" in
  let b = Wobj.make tk Wobj.Button ~name:"only" in
  Wobj.add_child panel b ~position:(Geom.parse_exn "+0+0");
  realize_on_root server tk panel;
  check Alcotest.bool "panel window shaped" true
    (Server.is_shaped server (Wobj.window panel))

(* -------- menus -------- *)

let test_menu_post_unpost () =
  let server, _conn, tk, _db = fixture () in
  let menu_obj = Wobj.make tk Wobj.Menu ~name:"m" in
  let item = Wobj.make tk Wobj.Button ~name:"item1" in
  Wobj.add_child menu_obj item ~position:(Geom.parse_exn "+0+0");
  let menu = Menu.create tk menu_obj in
  check Alcotest.bool "initially unposted" false (Menu.is_posted menu);
  check Alcotest.bool "menu window unmapped" false
    (Server.is_mapped server (Wobj.window menu_obj));
  Menu.post menu ~at:(Geom.point 50 60);
  check Alcotest.bool "posted" true (Menu.is_posted menu);
  check Alcotest.bool "mapped" true (Server.is_mapped server (Wobj.window menu_obj));
  let g = Server.geometry server (Wobj.window menu_obj) in
  check Alcotest.int "at x" 50 g.x;
  check Alcotest.int "at y" 60 g.y;
  Menu.unpost menu;
  check Alcotest.bool "unposted again" false
    (Server.is_mapped server (Wobj.window menu_obj))

let test_menu_is_override_redirect () =
  let server, _conn, tk, _db = fixture () in
  (* A WM holding the redirect must NOT see menu maps. *)
  let wm = Server.connect server ~name:"wm" in
  Server.select_input server wm (Server.root server ~screen:0)
    [ Swm_xlib.Event.Substructure_redirect ];
  let menu_obj = Wobj.make tk Wobj.Menu ~name:"m" in
  let item = Wobj.make tk Wobj.Button ~name:"i" in
  Wobj.add_child menu_obj item ~position:(Geom.parse_exn "+0+0");
  let menu = Menu.create tk menu_obj in
  Menu.post menu ~at:(Geom.point 0 0);
  check Alcotest.bool "mapped despite redirect" true
    (Server.is_mapped server (Wobj.window menu_obj));
  check Alcotest.int "no MapRequest to the WM" 0
    (List.length
       (List.filter
          (function Swm_xlib.Event.Map_request _ -> true | _ -> false)
          (Server.drain_events wm)))

let suite =
  [
    Alcotest.test_case "object trees" `Quick test_make_and_tree;
    Alcotest.test_case "buttons are leaves" `Quick test_buttons_cannot_hold_children;
    Alcotest.test_case "attribute precedence" `Quick test_attr_precedence;
    Alcotest.test_case "panel spec parsing" `Quick test_panel_spec_parse;
    Alcotest.test_case "panel spec errors" `Quick test_panel_spec_errors;
    Alcotest.test_case "openLook row layout" `Quick test_layout_rows_and_columns;
    Alcotest.test_case "explicit rows/columns" `Quick test_layout_explicit_rows;
    Alcotest.test_case "button image attribute" `Quick test_button_image_attribute;
    Alcotest.test_case "natural size from label" `Quick test_natural_size_from_label;
    Alcotest.test_case "set_label triggers relayout" `Quick test_set_label_relayouts;
    Alcotest.test_case "nested panel definitions" `Quick test_nested_panel_lookup;
    Alcotest.test_case "definition cycles rejected" `Quick test_cycle_detection;
    Alcotest.test_case "dispatch registry" `Quick test_dispatch_registry;
    Alcotest.test_case "shape panel to children" `Quick test_shape_to_children;
    Alcotest.test_case "menu post/unpost" `Quick test_menu_post_unpost;
    Alcotest.test_case "menus bypass the WM" `Quick test_menu_is_override_redirect;
  ]
