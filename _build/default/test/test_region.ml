module Geom = Swm_xlib.Geom
module Region = Swm_xlib.Region

let check = Alcotest.check
let rect = Geom.rect

let test_empty () =
  check Alcotest.bool "empty is empty" true (Region.is_empty Region.empty);
  check Alcotest.int "empty area" 0 (Region.area Region.empty);
  check Alcotest.bool "zero-size rect is empty" true
    (Region.is_empty (Region.of_rect (rect 5 5 0 10)))

let test_of_rect () =
  let r = Region.of_rect (rect 0 0 10 10) in
  check Alcotest.int "area" 100 (Region.area r);
  check Alcotest.bool "contains corner" true (Region.contains r (Geom.point 0 0));
  check Alcotest.bool "excludes far edge" false (Region.contains r (Geom.point 10 0))

let test_union_disjoint () =
  let r =
    Region.union (Region.of_rect (rect 0 0 10 10)) (Region.of_rect (rect 20 0 10 10))
  in
  check Alcotest.int "area adds" 200 (Region.area r)

let test_union_overlap () =
  let r =
    Region.union (Region.of_rect (rect 0 0 10 10)) (Region.of_rect (rect 5 0 10 10))
  in
  check Alcotest.int "overlap counted once" 150 (Region.area r)

let test_subtract () =
  let r =
    Region.subtract (Region.of_rect (rect 0 0 10 10)) (Region.of_rect (rect 2 2 6 6))
  in
  check Alcotest.int "ring area" 64 (Region.area r);
  check Alcotest.bool "hole" false (Region.contains r (Geom.point 5 5));
  check Alcotest.bool "rim" true (Region.contains r (Geom.point 0 0))

let test_subtract_all () =
  let r =
    Region.subtract (Region.of_rect (rect 0 0 10 10)) (Region.of_rect (rect 0 0 10 10))
  in
  check Alcotest.bool "self-subtract empty" true (Region.is_empty r)

let test_inter () =
  let r =
    Region.inter (Region.of_rect (rect 0 0 10 10)) (Region.of_rect (rect 5 5 10 10))
  in
  check Alcotest.int "intersection area" 25 (Region.area r)

let test_translate () =
  let r = Region.translate (Region.of_rect (rect 0 0 10 10)) ~dx:5 ~dy:(-3) in
  check Alcotest.bool "moved" true (Region.contains r (Geom.point 5 (-3)));
  check Alcotest.bool "old spot gone" false (Region.contains r (Geom.point 0 (-4)))

let test_extents () =
  let r =
    Region.union (Region.of_rect (rect 0 0 5 5)) (Region.of_rect (rect 20 30 5 5))
  in
  match Region.extents r with
  | Some b -> check Alcotest.bool "bounds" true (Geom.rect_equal b (rect 0 0 25 35))
  | None -> Alcotest.fail "expected extents"

let test_equal () =
  let a =
    Region.union (Region.of_rect (rect 0 0 10 5)) (Region.of_rect (rect 0 5 10 5))
  in
  let b = Region.of_rect (rect 0 0 10 10) in
  check Alcotest.bool "same pixels, different decomposition" true (Region.equal a b)

let test_disc () =
  let d = Region.disc ~cx:50 ~cy:50 ~r:10 in
  check Alcotest.bool "centre inside" true (Region.contains d (Geom.point 50 50));
  check Alcotest.bool "corner outside" false (Region.contains d (Geom.point 42 42));
  check Alcotest.bool "way outside" false (Region.contains d (Geom.point 70 50));
  (* Area should approximate pi*r^2 = 314. *)
  let a = Region.area d in
  check Alcotest.bool "plausible area" true (a > 280 && a < 340)

let test_disc_degenerate () =
  check Alcotest.bool "radius 0" true (Region.is_empty (Region.disc ~cx:0 ~cy:0 ~r:0));
  check Alcotest.bool "negative radius" true
    (Region.is_empty (Region.disc ~cx:0 ~cy:0 ~r:(-3)))

(* -------- properties -------- *)

let small_rect_gen =
  QCheck2.Gen.(
    map
      (fun (x, y, w, h) -> rect x y (1 + w) (1 + h))
      (quad (int_range 0 40) (int_range 0 40) (int_range 0 20) (int_range 0 20)))

let region_gen =
  QCheck2.Gen.(map Region.of_rects (list_size (int_range 0 5) small_rect_gen))

let prop_union_area =
  QCheck2.Test.make ~name:"union area <= sum of areas, >= max" ~count:300
    (QCheck2.Gen.pair region_gen region_gen) (fun (a, b) ->
      let u = Region.union a b in
      let ua = Region.area u in
      ua <= Region.area a + Region.area b && ua >= max (Region.area a) (Region.area b))

let prop_subtract_disjoint =
  QCheck2.Test.make ~name:"subtract result disjoint from subtrahend" ~count:300
    (QCheck2.Gen.pair region_gen region_gen) (fun (a, b) ->
      let d = Region.subtract a b in
      Region.is_empty (Region.inter d b))

let prop_partition =
  QCheck2.Test.make ~name:"(a-b) + (a&b) has area of a" ~count:300
    (QCheck2.Gen.pair region_gen region_gen) (fun (a, b) ->
      Region.area (Region.subtract a b) + Region.area (Region.inter a b)
      = Region.area a)

let prop_translate_area =
  QCheck2.Test.make ~name:"translate preserves area" ~count:300
    (QCheck2.Gen.triple region_gen (QCheck2.Gen.int_range (-50) 50)
       (QCheck2.Gen.int_range (-50) 50)) (fun (r, dx, dy) ->
      Region.area (Region.translate r ~dx ~dy) = Region.area r)

let prop_union_commutes_extensionally =
  QCheck2.Test.make ~name:"union commutes (extensionally)" ~count:300
    (QCheck2.Gen.pair region_gen region_gen) (fun (a, b) ->
      Region.equal (Region.union a b) (Region.union b a))

let prop_disjoint_invariant =
  QCheck2.Test.make ~name:"internal rects are pairwise disjoint" ~count:300
    (QCheck2.Gen.pair region_gen region_gen) (fun (a, b) ->
      let u = Region.union a b in
      let rects = Region.rects u in
      List.for_all
        (fun r1 ->
          List.for_all
            (fun r2 -> r1 == r2 || Geom.intersect r1 r2 = None)
            rects)
        rects)

let suite =
  [
    Alcotest.test_case "empty region" `Quick test_empty;
    Alcotest.test_case "of_rect basics" `Quick test_of_rect;
    Alcotest.test_case "union of disjoint" `Quick test_union_disjoint;
    Alcotest.test_case "union with overlap" `Quick test_union_overlap;
    Alcotest.test_case "subtract hole" `Quick test_subtract;
    Alcotest.test_case "subtract everything" `Quick test_subtract_all;
    Alcotest.test_case "intersection" `Quick test_inter;
    Alcotest.test_case "translate" `Quick test_translate;
    Alcotest.test_case "extents" `Quick test_extents;
    Alcotest.test_case "extensional equality" `Quick test_equal;
    Alcotest.test_case "disc shape" `Quick test_disc;
    Alcotest.test_case "degenerate discs" `Quick test_disc_degenerate;
    QCheck_alcotest.to_alcotest prop_union_area;
    QCheck_alcotest.to_alcotest prop_subtract_disjoint;
    QCheck_alcotest.to_alcotest prop_partition;
    QCheck_alcotest.to_alcotest prop_translate_area;
    QCheck_alcotest.to_alcotest prop_union_commutes_extensionally;
    QCheck_alcotest.to_alcotest prop_disjoint_invariant;
  ]
