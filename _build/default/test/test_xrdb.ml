module Xrdb = Swm_xrdb.Xrdb

let check = Alcotest.check

let db_of entries =
  let db = Xrdb.create () in
  List.iter (fun (k, v) -> Xrdb.put db k v) entries;
  db

let q db names classes = Xrdb.query db ~names ~classes

let test_exact_match () =
  let db = db_of [ ("swm.color.screen0.panner", "true") ] in
  check (Alcotest.option Alcotest.string) "exact" (Some "true")
    (q db [ "swm"; "color"; "screen0"; "panner" ] [ "Swm"; "Color"; "Screen"; "Panner" ])

let test_loose_binding_skips () =
  let db = db_of [ ("swm*panner", "yes") ] in
  check (Alcotest.option Alcotest.string) "skips middle components" (Some "yes")
    (q db [ "swm"; "color"; "screen0"; "panner" ] [ "Swm"; "Color"; "Screen"; "Panner" ])

let test_tight_requires_adjacent () =
  let db = db_of [ ("swm.panner", "no") ] in
  check (Alcotest.option Alcotest.string) "tight cannot skip" None
    (q db [ "swm"; "color"; "screen0"; "panner" ] [ "Swm"; "Color"; "Screen"; "Panner" ])

let test_class_match () =
  let db = db_of [ ("Swm*Panner", "via-class") ] in
  check (Alcotest.option Alcotest.string) "class components" (Some "via-class")
    (q db [ "swm"; "color"; "screen0"; "panner" ] [ "Swm"; "Color"; "Screen"; "Panner" ])

let test_name_beats_class () =
  let db = db_of [ ("Swm*decoration", "classy"); ("swm*decoration", "namy") ] in
  check (Alcotest.option Alcotest.string) "lowercase swm (name) wins" (Some "namy")
    (q db [ "swm"; "color"; "screen0"; "decoration" ]
       [ "Swm"; "Color"; "Screen"; "Decoration" ])

let test_earlier_component_dominates () =
  (* A name match at the client level beats a class match there, even when
     the class entry has tighter bindings afterwards. *)
  let db =
    db_of
      [ ("swm*xclock*decoration", "by-instance"); ("swm*XClock.decoration", "by-class") ]
  in
  (* names has instance at the same level where classes has XClock *)
  check (Alcotest.option Alcotest.string) "instance (name) match wins"
    (Some "by-instance")
    (q db
       [ "swm"; "color"; "screen0"; "xclock"; "decoration" ]
       [ "Swm"; "Color"; "Screen"; "XClock"; "Decoration" ])

let test_single_wild () =
  let db = db_of [ ("swm.?.screen0.panner", "wild") ] in
  check (Alcotest.option Alcotest.string) "? consumes one level" (Some "wild")
    (q db [ "swm"; "color"; "screen0"; "panner" ] [ "Swm"; "Color"; "Screen"; "Panner" ]);
  check (Alcotest.option Alcotest.string) "? cannot consume two" None
    (q db
       [ "swm"; "color"; "extra"; "screen0"; "panner" ]
       [ "Swm"; "Color"; "Extra"; "Screen"; "Panner" ])

let test_wild_below_class () =
  let db = db_of [ ("swm.?.screen0.panner", "wild"); ("swm.Color.screen0.panner", "classy") ] in
  check (Alcotest.option Alcotest.string) "class beats ?" (Some "classy")
    (q db [ "swm"; "color"; "screen0"; "panner" ] [ "Swm"; "Color"; "Screen"; "Panner" ])

let test_match_beats_skip () =
  let db = db_of [ ("swm*screen0.panner", "matched"); ("swm*panner", "skipped") ] in
  check (Alcotest.option Alcotest.string) "consuming a level beats skipping it"
    (Some "matched")
    (q db [ "swm"; "color"; "screen0"; "panner" ] [ "Swm"; "Color"; "Screen"; "Panner" ])

let test_last_entry_wins_on_tie () =
  let db = db_of [ ("swm*panner", "first"); ("swm*panner", "override") ] in
  check (Alcotest.option Alcotest.string) "same key overridden" (Some "override")
    (q db [ "swm"; "color"; "screen0"; "panner" ] [ "Swm"; "Color"; "Screen"; "Panner" ]);
  check Alcotest.int "no duplicate entry" 1 (Xrdb.size db)

let test_no_match () =
  let db = db_of [ ("swm*panner", "x") ] in
  check (Alcotest.option Alcotest.string) "different resource" None
    (q db [ "swm"; "color"; "screen0"; "decoration" ]
       [ "Swm"; "Color"; "Screen"; "Decoration" ])

let test_trailing_component_required () =
  let db = db_of [ ("swm*panner.scale", "24") ] in
  check (Alcotest.option Alcotest.string) "entry longer than query" None
    (q db [ "swm"; "color"; "screen0"; "panner" ] [ "Swm"; "Color"; "Screen"; "Panner" ])

(* -------- file loading -------- *)

let test_load_string () =
  let db = Xrdb.create () in
  let text =
    {|
! comment line
swm*panner: true
Swm*panel.openLook: \
    button pulldown +0+0 \
    button name +C+0
swm.color.screen0.xclock.xclock.decoration: noTitlePanel
|}
  in
  (match Xrdb.load_string db text with
  | Ok n -> check Alcotest.int "loaded" 3 n
  | Error msg -> Alcotest.fail msg);
  (* The continuation must join into a single value. *)
  match
    q db
      [ "swm"; "color"; "screen0"; "panel"; "openLook" ]
      [ "Swm"; "Color"; "Screen"; "Panel"; "OpenLook" ]
  with
  | Some v ->
      check Alcotest.bool "joined continuation" true
        (String.length v > 20
        && String.index_opt v '\\' = None
        && String.index_opt v '\n' = None)
  | None -> Alcotest.fail "panel definition missing"

let test_load_newline_escape () =
  let db = Xrdb.create () in
  (match Xrdb.load_string db {|foo*bindings: a\nb|} with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1, got %d" n
  | Error msg -> Alcotest.fail msg);
  match q db [ "foo"; "bindings" ] [ "Foo"; "Bindings" ] with
  | Some v -> check Alcotest.string "newline unescaped" "a\nb" v
  | None -> Alcotest.fail "missing"

let test_load_error () =
  let db = Xrdb.create () in
  match Xrdb.load_string db "this has no colon" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_merge () =
  let a = db_of [ ("swm*x", "1"); ("swm*y", "2") ] in
  let b = db_of [ ("swm*y", "3"); ("swm*z", "4") ] in
  Xrdb.merge ~into:a b;
  check Alcotest.int "size" 3 (Xrdb.size a);
  check (Alcotest.option Alcotest.string) "override" (Some "3")
    (q a [ "swm"; "y" ] [ "Swm"; "Y" ])

let test_key_roundtrip () =
  List.iter
    (fun s ->
      match Xrdb.parse_key s with
      | Ok key -> check Alcotest.string "roundtrip" s (Xrdb.key_to_string key)
      | Error msg -> Alcotest.failf "parse %S: %s" s msg)
    [ "swm.color.screen0.panner"; "swm*panner"; "*panner"; "Swm*panel.openLook";
      "swm.?.screen0.x" ]

let test_key_errors () =
  List.iter
    (fun bad ->
      match Xrdb.parse_key bad with
      | Ok _ -> Alcotest.failf "expected %S to fail" bad
      | Error _ -> ())
    [ ""; "."; "a."; ".a"; "a..b"; "a b" ]

let test_typed_queries () =
  let db = db_of [ ("swm*flag", "True"); ("swm*count", " 42 "); ("swm*junk", "zzz") ] in
  check (Alcotest.option Alcotest.bool) "bool" (Some true)
    (Xrdb.query_bool db ~names:[ "swm"; "flag" ] ~classes:[ "Swm"; "Flag" ]);
  check (Alcotest.option Alcotest.int) "int" (Some 42)
    (Xrdb.query_int db ~names:[ "swm"; "count" ] ~classes:[ "Swm"; "Count" ]);
  check (Alcotest.option Alcotest.int) "junk int" None
    (Xrdb.query_int db ~names:[ "swm"; "junk" ] ~classes:[ "Swm"; "Junk" ])

let test_to_string_reload () =
  let db =
    db_of [ ("swm*panner", "true"); ("swm.color.screen0.x", "multi\nline") ]
  in
  let text = Xrdb.to_string db in
  let db2 = Xrdb.create () in
  (match Xrdb.load_string db2 text with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "expected 2 entries, got %d" n
  | Error msg -> Alcotest.fail msg);
  check (Alcotest.option Alcotest.string) "value preserved" (Some "multi\nline")
    (q db2 [ "swm"; "color"; "screen0"; "x" ] [ "Swm"; "Color"; "Screen"; "X" ])

(* -------- cpp preprocessing -------- *)

let test_cpp_define_substitution () =
  let db = Xrdb.create () in
  let text = {|
#define TITLEBG gray80
swm*button.name.background: TITLEBG
swm*notme: XTITLEBGX
|} in
  (match Xrdb.load_string_cpp db text with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "expected 2, got %d" n
  | Error msg -> Alcotest.fail msg);
  check (Alcotest.option Alcotest.string) "substituted" (Some "gray80")
    (q db [ "swm"; "button"; "name"; "background" ]
       [ "Swm"; "Button"; "Name"; "Background" ]);
  check (Alcotest.option Alcotest.string) "whole words only" (Some "XTITLEBGX")
    (q db [ "swm"; "notme" ] [ "Swm"; "Notme" ])

let test_cpp_ifdef () =
  let text =
    {|
#ifdef COLOR
swm*mode: colorful
#else
swm*mode: plain
#endif
#ifndef COLOR
swm*extra: mono-only
#endif
|}
  in
  let query_mode defines =
    let db = Xrdb.create () in
    (match Xrdb.load_string_cpp ~defines db text with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg);
    ( q db [ "swm"; "mode" ] [ "Swm"; "Mode" ],
      q db [ "swm"; "extra" ] [ "Swm"; "Extra" ] )
  in
  let mode, extra = query_mode [ ("COLOR", "1") ] in
  check (Alcotest.option Alcotest.string) "colour branch" (Some "colorful") mode;
  check (Alcotest.option Alcotest.string) "ifndef skipped" None extra;
  let mode, extra = query_mode [] in
  check (Alcotest.option Alcotest.string) "else branch" (Some "plain") mode;
  check (Alcotest.option Alcotest.string) "ifndef taken" (Some "mono-only") extra

let test_cpp_nested_ifdef () =
  let text =
    {|
#ifdef A
#ifdef B
swm*x: ab
#else
swm*x: a
#endif
#endif
|}
  in
  let value defines =
    let db = Xrdb.create () in
    (match Xrdb.load_string_cpp ~defines db text with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg);
    q db [ "swm"; "x" ] [ "Swm"; "X" ]
  in
  check (Alcotest.option Alcotest.string) "both" (Some "ab")
    (value [ ("A", ""); ("B", "") ]);
  check (Alcotest.option Alcotest.string) "only A" (Some "a") (value [ ("A", "") ]);
  check (Alcotest.option Alcotest.string) "neither" None (value [])

let test_cpp_include () =
  let files = [ ("openlook.ad", "swm*decoration: openLook\n") ] in
  let loader path = List.assoc_opt path files in
  let db = Xrdb.create () in
  let text = "#include \"openlook.ad\"\nswm*decoration: mine\n" in
  (match Xrdb.load_string_cpp ~loader db text with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  (* User lines after the include override the template (paper §3). *)
  check (Alcotest.option Alcotest.string) "override after include" (Some "mine")
    (q db [ "swm"; "decoration" ] [ "Swm"; "Decoration" ])

let test_cpp_errors () =
  List.iter
    (fun text ->
      match Xrdb.preprocess text with
      | Ok _ -> Alcotest.failf "expected %S to fail" text
      | Error _ -> ())
    [
      "#include \"nope.ad\"\n";
      "#ifdef X\n";
      "#endif\n";
      "#else\n";
    ]

(* Property: a query never returns a value whose key cannot match at all
   (oracle: brute-force matcher). *)
let component_gen = QCheck2.Gen.oneofl [ "a"; "b"; "c"; "A"; "B" ]

let key_gen =
  QCheck2.Gen.(
    list_size (int_range 1 4)
      (pair (oneofl [ "."; "*" ]) component_gen))

let key_string_of parts =
  String.concat ""
    (List.mapi
       (fun i (b, c) -> if i = 0 then (if b = "*" then "*" ^ c else c) else b ^ c)
       parts)

let prop_query_sound =
  QCheck2.Test.make ~name:"query result comes from some matching entry" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 1 6) (pair key_gen component_gen))
                   (list_size (int_range 1 4) component_gen))
    (fun (entries, names) ->
      let db = Xrdb.create () in
      List.iteri
        (fun i (k, _) -> Xrdb.put db (key_string_of k) (string_of_int i))
        entries;
      let classes = List.map String.capitalize_ascii names in
      match Xrdb.query db ~names ~classes with
      | None -> true
      | Some v -> (
          match int_of_string_opt v with
          | None -> false
          | Some i -> i >= 0 && i < List.length entries))

let suite =
  [
    Alcotest.test_case "exact tight match" `Quick test_exact_match;
    Alcotest.test_case "loose binding skips levels" `Quick test_loose_binding_skips;
    Alcotest.test_case "tight binding cannot skip" `Quick test_tight_requires_adjacent;
    Alcotest.test_case "class components match" `Quick test_class_match;
    Alcotest.test_case "name beats class (swm vs Swm)" `Quick test_name_beats_class;
    Alcotest.test_case "earlier level dominates" `Quick test_earlier_component_dominates;
    Alcotest.test_case "? single wildcard" `Quick test_single_wild;
    Alcotest.test_case "class beats ?" `Quick test_wild_below_class;
    Alcotest.test_case "match beats skip" `Quick test_match_beats_skip;
    Alcotest.test_case "same key overrides" `Quick test_last_entry_wins_on_tie;
    Alcotest.test_case "no match" `Quick test_no_match;
    Alcotest.test_case "longer entry cannot match" `Quick test_trailing_component_required;
    Alcotest.test_case "load resource text" `Quick test_load_string;
    Alcotest.test_case "backslash-n escape" `Quick test_load_newline_escape;
    Alcotest.test_case "load error reported" `Quick test_load_error;
    Alcotest.test_case "merge databases" `Quick test_merge;
    Alcotest.test_case "key to_string roundtrip" `Quick test_key_roundtrip;
    Alcotest.test_case "key parse errors" `Quick test_key_errors;
    Alcotest.test_case "typed queries" `Quick test_typed_queries;
    Alcotest.test_case "serialise and reload" `Quick test_to_string_reload;
    Alcotest.test_case "cpp: #define substitution" `Quick test_cpp_define_substitution;
    Alcotest.test_case "cpp: #ifdef/#else" `Quick test_cpp_ifdef;
    Alcotest.test_case "cpp: nested #ifdef" `Quick test_cpp_nested_ifdef;
    Alcotest.test_case "cpp: #include" `Quick test_cpp_include;
    Alcotest.test_case "cpp: errors" `Quick test_cpp_errors;
    QCheck_alcotest.to_alcotest prop_query_sound;
  ]
