(* Corner cases and failure injection: clients dying at awkward moments,
   functions applied to degenerate targets, malformed configuration. *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Icons = Swm_core.Icons
module Functions = Swm_core.Functions
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

let fixture ?(extra = "") ?(vdesk = false) () =
  let server = Server.create () in
  let base =
    if vdesk then "swm*rootPanels:\n" else "swm*virtualDesktop: False\nswm*rootPanels:\n"
  in
  let wm = Wm.start ~resources:[ Templates.open_look; base ^ extra ] server in
  (server, wm, Wm.ctx wm)

let client_of wm app = Option.get (Wm.find_client wm (Client_app.window app))

let run ctx ?client text =
  match
    Functions.execute_string ctx (Functions.invocation ?client ~screen:0 ()) text
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "execute: %s" msg

let test_client_dies_mid_move () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  run ctx ~client "f.move";
  (match ctx.Ctx.mode with Ctx.Moving _ -> () | _ -> Alcotest.fail "not moving");
  (* The client dies while the WM is dragging its frame. *)
  Client_app.destroy app;
  ignore (Wm.step wm);
  check Alcotest.bool "unmanaged" true (Wm.find_client wm (Client_app.window app) = None);
  (* Further motion/release must not blow up even though the grab window
     is gone. *)
  Server.warp_pointer server ~screen:0 (Geom.point 400 400);
  Server.press_button server 1;
  Server.release_button server 1;
  ignore (Wm.step wm)

let test_client_dies_while_prompting () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 100 100) () in
  ignore (Wm.step wm);
  run ctx "f.iconify";
  (match ctx.Ctx.mode with Ctx.Prompting _ -> () | _ -> Alcotest.fail "not prompting");
  Client_app.destroy app;
  ignore (Wm.step wm);
  (* Click on the now-empty root: prompt resolves to nothing and resets. *)
  Server.warp_pointer server ~screen:0 (Geom.point 500 500);
  Server.press_button server 1;
  ignore (Wm.step wm);
  check Alcotest.bool "idle again" true (ctx.Ctx.mode = Ctx.Idle)

let test_zoom_and_stick_on_undecorated () =
  let server, wm, ctx =
    fixture ~extra:"swm*XTerm*decoration: none\n" ~vdesk:true ()
  in
  let app = Stock.xterm server ~at:(Geom.point 50 50) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  check Alcotest.bool "undecorated" true (Xid.equal client.Ctx.frame client.Ctx.cwin);
  run ctx ~client "f.save f.zoom";
  let g = Server.geometry server client.Ctx.cwin in
  let sw, _ = Server.screen_size server ~screen:0 in
  check Alcotest.bool "zoomed" true (g.w > sw / 2);
  run ctx ~client "f.save f.zoom";
  run ctx ~client "f.stick";
  check Alcotest.bool "stuck" true client.Ctx.sticky;
  check Alcotest.bool "frame on root" true
    (Xid.equal (Server.parent_of server client.Ctx.cwin) (Server.root server ~screen:0));
  run ctx ~client "f.stick";
  check Alcotest.bool "unstuck" false client.Ctx.sticky

let test_delete_twice () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  run ctx ~client "f.delete f.delete";
  ignore (Wm.step wm);
  check Alcotest.bool "gone" true (Wm.find_client wm (Client_app.window app) = None)

let test_missing_decoration_panel () =
  (* Decoration resource names a panel that has no definition: the client
     must still be managed, undecorated. *)
  let server, wm, _ctx = fixture ~extra:"swm*XTerm*decoration: noSuchPanel\n" () in
  let app = Stock.xterm server ~at:(Geom.point 20 20) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  check Alcotest.bool "managed without decoration" true
    (Xid.equal client.Ctx.frame client.Ctx.cwin);
  check Alcotest.bool "mapped" true (Server.is_viewable server client.Ctx.cwin)

let test_decoration_without_client_panel () =
  (* A decoration panel with no [client] sub-panel is a config error; the
     client is parented into the frame itself. *)
  let server, wm, _ctx =
    fixture
      ~extra:
        "Swm*panel.weird: button name +C+0\nswm*XTerm*decoration: weird\n" ()
  in
  let app = Stock.xterm server ~at:(Geom.point 20 20) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  check Alcotest.bool "frame exists" true (Server.window_exists server client.Ctx.frame);
  check Alcotest.bool "client inside frame" true
    (Xid.equal (Server.parent_of server client.Ctx.cwin) client.Ctx.frame)

let test_withdraw_while_iconic () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  let icon_win = Swm_oi.Wobj.window (Option.get client.Ctx.icon_obj) in
  (* Destroy while iconified: the icon must go away too. *)
  Client_app.destroy app;
  ignore (Wm.step wm);
  check Alcotest.bool "unmanaged" true (Wm.find_client wm (Client_app.window app) = None);
  check Alcotest.bool "icon destroyed" false (Server.window_exists server icon_win)

let test_configure_request_while_iconic () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  Client_app.resize_self app (600, 420);
  ignore (Wm.step wm);
  let g = Server.geometry server client.Ctx.cwin in
  check Alcotest.int "resize honoured while iconic" 600 g.w;
  Icons.deiconify ctx client;
  check Alcotest.bool "still iconifiable/deiconifiable" true
    (client.Ctx.state = Prop.Normal)

let test_unknown_menu () =
  let _server, _wm, ctx = fixture () in
  run ctx "f.menu(doesNotExist)";
  check Alcotest.bool "no menu posted" true
    ((Ctx.screen ctx 0).Ctx.active_menu = None)

let test_bad_window_id_function () =
  let _server, _wm, ctx = fixture () in
  (* Nonexistent id: silently no targets. *)
  run ctx "f.iconify(#0xdead)";
  run ctx "f.iconify(#999999)"

let test_iconify_iconified () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  Icons.iconify ctx client;
  check Alcotest.bool "still one icon" true (client.Ctx.icon_obj <> None);
  Icons.deiconify ctx client;
  Icons.deiconify ctx client;
  check Alcotest.bool "normal" true (client.Ctx.state = Prop.Normal)

let test_reparent_cycle_rejected () =
  let server = Server.create () in
  let conn = Server.connect server ~name:"c" in
  let root = Server.root server ~screen:0 in
  let a = Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 10 10) () in
  let b = Server.create_window server conn ~parent:a ~geom:(Geom.rect 0 0 5 5) () in
  Alcotest.check_raises "cycle rejected"
    (Server.Bad_access "reparent would create a cycle") (fun () ->
      Server.reparent_window server conn a ~new_parent:b ~pos:(Geom.point 0 0));
  Alcotest.check_raises "self rejected"
    (Server.Bad_access "reparent would create a cycle") (fun () ->
      Server.reparent_window server conn a ~new_parent:a ~pos:(Geom.point 0 0))

let test_empty_resources () =
  (* No configuration at all: the default template loads (paper §3: "If no
     swm configuration resources have been specified, a default
     configuration can be loaded"). *)
  let server = Server.create () in
  let wm = Wm.start server in
  let app = Stock.xterm server ~at:(Geom.point 10 10) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  check Alcotest.bool "decorated by the default template" true
    (client.Ctx.deco <> None)

let test_malformed_bindings_ignored () =
  let server, wm, _ctx =
    fixture ~extra:"swm*button.name.bindings: total <garbage\n" ()
  in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  let name_obj =
    Option.get (Swm_oi.Wobj.find_descendant (Option.get client.Ctx.deco) ~name:"name")
  in
  let abs = Server.root_geometry server (Swm_oi.Wobj.window name_obj) in
  Server.warp_pointer server ~screen:0 (Geom.point (abs.x + 1) (abs.y + 1));
  Server.press_button server 1;
  (* Must not raise; the malformed bindings resource yields no actions. *)
  ignore (Wm.step wm)

let test_wm_restart_under_load () =
  (* Start, load up, shutdown, start again: all clients survive and are
     re-managed; no stale state leaks across instances. *)
  let server = Server.create () in
  let wm1 = Wm.start ~resources:[ Templates.open_look ] server in
  let apps = Swm_clients.Workload.launch_n server 12 in
  ignore (Wm.step wm1);
  Wm.shutdown wm1;
  List.iter
    (fun app ->
      let win = Client_app.window app in
      if Server.window_exists server win then begin
        check Alcotest.bool "on root after shutdown" true
          (Xid.equal (Server.parent_of server win) (Server.root server ~screen:0))
      end)
    apps;
  let wm2 = Wm.start ~resources:[ Templates.open_look ] server in
  ignore (Wm.step wm2);
  let managed =
    List.length (List.filter (fun app -> Wm.find_client wm2 (Client_app.window app) <> None) apps)
  in
  check Alcotest.int "all clients re-managed" 12 managed

let suite =
  [
    Alcotest.test_case "client dies mid-move" `Quick test_client_dies_mid_move;
    Alcotest.test_case "client dies while prompting" `Quick
      test_client_dies_while_prompting;
    Alcotest.test_case "zoom/stick on undecorated client" `Quick
      test_zoom_and_stick_on_undecorated;
    Alcotest.test_case "f.delete twice" `Quick test_delete_twice;
    Alcotest.test_case "missing decoration panel" `Quick test_missing_decoration_panel;
    Alcotest.test_case "decoration without client panel" `Quick
      test_decoration_without_client_panel;
    Alcotest.test_case "destroy while iconic" `Quick test_withdraw_while_iconic;
    Alcotest.test_case "ConfigureRequest while iconic" `Quick
      test_configure_request_while_iconic;
    Alcotest.test_case "unknown menu name" `Quick test_unknown_menu;
    Alcotest.test_case "bad window ids in functions" `Quick test_bad_window_id_function;
    Alcotest.test_case "double iconify/deiconify" `Quick test_iconify_iconified;
    Alcotest.test_case "reparent cycles rejected" `Quick test_reparent_cycle_rejected;
    Alcotest.test_case "no resources: default template" `Quick test_empty_resources;
    Alcotest.test_case "malformed bindings ignored" `Quick
      test_malformed_bindings_ignored;
    Alcotest.test_case "WM restart under load" `Quick test_wm_restart_under_load;
  ]
