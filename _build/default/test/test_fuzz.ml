(* Randomised invariant testing.

   Two levels: (1) random request sequences against the bare X server must
   preserve the window-tree invariants; (2) random client workloads driven
   through the full window manager must leave every managed client in a
   coherent state (decorated, parented where its stickiness says, iconic
   windows hidden, panner miniatures consistent). *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Vdesk = Swm_core.Vdesk
module Icons = Swm_core.Icons
module Templates = Swm_core.Templates
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

(* -------- level 1: the server -------- *)

type server_op =
  | Create of int  (* parent index into live windows *)
  | Destroy of int
  | Map of int
  | Unmap of int
  | Raise of int
  | Lower of int
  | Reparent of int * int
  | Move of int * int * int
  | SetProp of int
  | Warp of int * int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Create i) (int_range 0 50);
        map (fun i -> Destroy i) (int_range 0 50);
        map (fun i -> Map i) (int_range 0 50);
        map (fun i -> Unmap i) (int_range 0 50);
        map (fun i -> Raise i) (int_range 0 50);
        map (fun i -> Lower i) (int_range 0 50);
        map (fun (a, b) -> Reparent (a, b)) (pair (int_range 0 50) (int_range 0 50));
        map (fun ((a, x), y) -> Move (a, x, y))
          (pair (pair (int_range 0 50) (int_range (-200) 1200)) (int_range (-200) 1000));
        map (fun i -> SetProp i) (int_range 0 50);
        map (fun (x, y) -> Warp (x, y)) (pair (int_range 0 1200) (int_range 0 900));
      ])

(* Is [anc] an ancestor of [w]? Guards reparent cycles. *)
let rec is_ancestor server anc w =
  (not (Xid.is_none w))
  && (Xid.equal anc w
     ||
     let p = Server.parent_of server w in
     (not (Xid.is_none p)) && is_ancestor server anc p)

let apply_op server conn live op =
  let pick i = List.nth live (i mod List.length live) in
  match op with
  | Create i ->
      let parent = pick i in
      let w =
        Server.create_window server conn ~parent ~geom:(Geom.rect 5 5 60 40) ()
      in
      w :: live
  | Destroy i ->
      let w = pick i in
      let root = Server.root server ~screen:0 in
      if Xid.equal w root then live
      else begin
        Server.destroy_window server w;
        List.filter (fun v -> Server.window_exists server v) live
      end
  | Map i ->
      Server.map_window server conn (pick i);
      live
  | Unmap i ->
      Server.unmap_window server conn (pick i);
      live
  | Raise i ->
      Server.raise_window server conn (pick i);
      live
  | Lower i ->
      Server.lower_window server conn (pick i);
      live
  | Reparent (a, b) ->
      let w = pick a and target = pick b in
      let root = Server.root server ~screen:0 in
      if Xid.equal w root || is_ancestor server w target then live
      else begin
        Server.reparent_window server conn w ~new_parent:target
          ~pos:(Geom.point 3 3);
        live
      end
  | Move (a, x, y) ->
      let w = pick a in
      if Xid.equal w (Server.root server ~screen:0) then live
      else begin
        let g = Server.geometry server w in
        Server.move_resize server conn w { g with Geom.x; y };
        live
      end
  | SetProp i ->
      Server.change_property server conn (pick i) ~name:"FUZZ" (Prop.Cardinal 1);
      live
  | Warp (x, y) ->
      Server.warp_pointer server ~screen:0 (Geom.point x y);
      live

let server_invariants server =
  let ok = ref true in
  let fail _msg = ok := false in
  List.iter
    (fun w ->
      let parent = Server.parent_of server w in
      if Xid.is_none parent then begin
        (* Must be a root. *)
        if not (Xid.equal w (Server.root server ~screen:0)) then fail "orphan"
      end
      else begin
        if not (Server.window_exists server parent) then fail "dangling parent";
        (* parent/children agree *)
        if not (List.exists (Xid.equal w) (Server.children_of server parent)) then
          fail "not in parent's children"
      end;
      (* children all exist and point back *)
      List.iter
        (fun c ->
          if not (Server.window_exists server c) then fail "dangling child";
          if not (Xid.equal (Server.parent_of server c) w) then fail "child disagrees")
        (Server.children_of server w);
      (* no duplicate children *)
      let children = List.map Xid.to_int (Server.children_of server w) in
      if List.length children <> List.length (List.sort_uniq compare children) then
        fail "duplicate children")
    (Server.all_windows server);
  (* hit-testing total: never raises, always lands on an existing window *)
  let at = Server.window_at_pointer server in
  if not (Server.window_exists server at) then fail "window_at_pointer dangling";
  !ok

let prop_server_fuzz =
  QCheck2.Test.make ~name:"server invariants under random requests" ~count:100
    QCheck2.Gen.(list_size (int_range 1 80) op_gen)
    (fun ops ->
      let server = Server.create () in
      let conn = Server.connect server ~name:"fuzz" in
      let root = Server.root server ~screen:0 in
      let live =
        List.fold_left (fun live op -> apply_op server conn live op) [ root ] ops
      in
      ignore live;
      ignore (Server.drain_events conn);
      server_invariants server)

(* -------- level 2: the window manager -------- *)

type wm_op =
  | Launch of int  (* which stock client *)
  | Close of int  (* index into launched *)
  | Iconify of int
  | Deiconify of int
  | ToggleSticky of int
  | Pan of int * int
  | RaiseIt of int
  | ResizeClient of int * int * int
  | SwitchDesktop of int
  | DragTitle of int * int * int  (* client index, dx, dy *)
  | Swmcmd_line of int  (* index into a fixed command list *)

let wm_op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> Launch i) (int_range 0 3);
        map (fun i -> Close i) (int_range 0 30);
        map (fun i -> Iconify i) (int_range 0 30);
        map (fun i -> Deiconify i) (int_range 0 30);
        map (fun i -> ToggleSticky i) (int_range 0 30);
        map (fun (x, y) -> Pan (x, y)) (pair (int_range 0 2400) (int_range 0 1800));
        map (fun i -> RaiseIt i) (int_range 0 30);
        map (fun ((i, w), h) -> ResizeClient (i, 32 + w, 32 + h))
          (pair (pair (int_range 0 30) (int_range 0 500)) (int_range 0 400));
        map (fun i -> SwitchDesktop i) (int_range 0 2);
        map (fun ((i, dx), dy) -> DragTitle (i, dx, dy))
          (pair (pair (int_range 0 30) (int_range (-300) 300)) (int_range (-300) 300));
        map (fun i -> Swmcmd_line i) (int_range 0 5);
      ])

let wm_invariants server wm ctx =
  let ok = ref true in
  let fail _msg = ok := false in
  List.iter
    (fun (client : Ctx.client) ->
      if not (Server.window_exists server client.Ctx.cwin) then fail "stale client"
      else begin
        (* The frame exists and the client is inside it (or is it). *)
        if not (Server.window_exists server client.Ctx.frame) then fail "stale frame";
        (* Stickiness determines the frame's parent. *)
        let parent = Server.parent_of server client.Ctx.frame in
        let expected =
          Vdesk.effective_parent ctx ~screen:client.Ctx.screen
            ~sticky:client.Ctx.sticky
        in
        (* Frames on non-current desktops are still desktop windows. *)
        let parent_ok =
          Xid.equal parent expected
          || Vdesk.is_desktop_window ctx ~screen:client.Ctx.screen parent
        in
        if not parent_ok then fail "frame parent";
        match client.Ctx.state with
        | Prop.Iconic ->
            if Server.is_viewable server client.Ctx.frame then
              fail "iconic but visible";
            (match client.Ctx.icon_obj with
            | Some icon ->
                if not (Swm_oi.Wobj.is_realized icon) then fail "icon unrealized"
            | None -> fail "iconic without icon")
        | Prop.Normal ->
            if client.Ctx.icon_obj <> None then fail "normal with icon";
            (* WM_STATE property must agree. *)
            (match
               Server.get_property server client.Ctx.cwin ~name:Prop.wm_state_name
             with
            | Some (Prop.Wm_state_value { state = Prop.Normal; _ }) -> ()
            | _ -> fail "WM_STATE mismatch")
        | Prop.Withdrawn -> fail "managed but withdrawn"
      end)
    (Ctx.all_clients ctx);
  ignore wm;
  !ok

let prop_wm_fuzz =
  QCheck2.Test.make ~name:"WM invariants under random workloads" ~count:40
    QCheck2.Gen.(list_size (int_range 1 60) wm_op_gen)
    (fun ops ->
      let server = Server.create () in
      let wm =
        Wm.start
          ~resources:
            [ Templates.open_look; "swm*rootPanels:\nswm*desktops: 3\n" ]
          server
      in
      let ctx = Wm.ctx wm in
      let launched = ref [] in
      let counter = ref 0 in
      let pick i =
        match !launched with
        | [] -> None
        | l -> Some (List.nth l (i mod List.length l))
      in
      let client_of app = Wm.find_client wm (Client_app.window app) in
      List.iter
        (fun op ->
          (match op with
          | Launch kind ->
              incr counter;
              let at = Geom.point (37 * !counter mod 900) (53 * !counter mod 700) in
              let app =
                match kind with
                | 0 -> Stock.xterm server ~at ~instance:(Printf.sprintf "xt%d" !counter) ()
                | 1 -> Stock.xclock server ~at ()
                | 2 -> Stock.oclock server ~at ()
                | _ -> Stock.xlogo server ~at ()
              in
              launched := app :: !launched
          | Close i -> (
              match pick i with
              | Some app when Server.window_exists server (Client_app.window app) ->
                  Client_app.destroy app;
                  launched := List.filter (fun a -> a != app) !launched
              | Some _ | None -> ())
          | Iconify i -> (
              match Option.bind (pick i) client_of with
              | Some client -> Icons.iconify ctx client
              | None -> ())
          | Deiconify i -> (
              match Option.bind (pick i) client_of with
              | Some client -> Icons.deiconify ctx client
              | None -> ())
          | ToggleSticky i -> (
              match Option.bind (pick i) client_of with
              | Some client -> Vdesk.set_sticky ctx client (not client.Ctx.sticky)
              | None -> ())
          | Pan (x, y) -> Vdesk.pan_to ctx ~screen:0 (Geom.point x y)
          | RaiseIt i -> (
              match Option.bind (pick i) client_of with
              | Some client -> Server.raise_window server ctx.Ctx.conn client.Ctx.frame
              | None -> ())
          | ResizeClient (i, w, h) -> (
              match pick i with
              | Some app when Server.window_exists server (Client_app.window app) ->
                  Client_app.resize_self app (w, h)
              | Some _ | None -> ())
          | SwitchDesktop n -> Vdesk.switch_desktop ctx ~screen:0 n
          | DragTitle (i, dx, dy) -> (
              match Option.bind (pick i) client_of with
              | Some client
                when Server.window_exists server client.Ctx.frame
                     && Server.is_viewable server client.Ctx.frame -> (
                  match client.Ctx.deco with
                  | Some deco -> (
                      match Swm_oi.Wobj.find_descendant deco ~name:"name" with
                      | Some name_obj when Swm_oi.Wobj.is_realized name_obj ->
                          let abs =
                            Server.root_geometry server (Swm_oi.Wobj.window name_obj)
                          in
                          Server.warp_pointer server ~screen:0
                            (Geom.point (abs.x + 2) (abs.y + 2));
                          ignore (Wm.step wm);
                          Server.press_button server 1;
                          ignore (Wm.step wm);
                          Server.warp_pointer server ~screen:0
                            (Geom.point (abs.x + 2 + dx) (abs.y + 2 + dy));
                          ignore (Wm.step wm);
                          Server.release_button server 1
                      | Some _ | None -> ())
                  | None -> ())
              | Some _ | None -> ())
          | Swmcmd_line i ->
              let commands =
                [| "f.circulateUp"; "f.iconify(XTerm)"; "f.deiconify(XTerm)";
                   "f.panTo(0,0)"; "f.refresh"; "f.unpostMenu" |]
              in
              let sender = ctx.Ctx.conn in
              Swm_core.Swmcmd.send server sender ~screen:0
                commands.(i mod Array.length commands));
          ignore (Wm.step wm))
        ops;
      ignore (Wm.step wm);
      wm_invariants server wm ctx)

(* A deterministic long soak: one fixed 500-op workload driven through the
   full WM, invariants checked at the end.  Catches slow state leaks the
   shorter random runs may miss, and is reproducible by construction. *)
let test_soak () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:[ Templates.open_look; "swm*rootPanels:\nswm*desktops: 2\n" ]
      server
  in
  let ctx = Wm.ctx wm in
  let launched = ref [] in
  let counter = ref 0 in
  let client_of app = Wm.find_client wm (Client_app.window app) in
  for i = 0 to 499 do
    (match i mod 9 with
    | 0 ->
        incr counter;
        let at = Geom.point (29 * !counter mod 1000) (41 * !counter mod 800) in
        launched := Stock.xterm server ~at ~instance:(Printf.sprintf "s%d" !counter) ()
                    :: !launched
    | 1 -> (
        match !launched with
        | app :: rest when i mod 27 = 1 ->
            if Server.window_exists server (Client_app.window app) then
              Client_app.destroy app;
            launched := rest
        | _ -> ())
    | 2 -> (
        match !launched with
        | app :: _ -> (
            match client_of app with
            | Some c -> Icons.iconify ctx c
            | None -> ())
        | [] -> ())
    | 3 -> (
        match !launched with
        | app :: _ -> (
            match client_of app with
            | Some c -> Icons.deiconify ctx c
            | None -> ())
        | [] -> ())
    | 4 -> Vdesk.pan_to ctx ~screen:0 (Geom.point (i * 7 mod 2300) (i * 11 mod 1800))
    | 5 -> (
        match !launched with
        | app :: _ -> (
            match client_of app with
            | Some c -> Vdesk.set_sticky ctx c (not c.Ctx.sticky)
            | None -> ())
        | [] -> ())
    | 6 -> Vdesk.switch_desktop ctx ~screen:0 (i / 9 mod 2)
    | 7 -> (
        match !launched with
        | app :: _ when Server.window_exists server (Client_app.window app) ->
            Client_app.resize_self app (100 + (i mod 400), 80 + (i mod 300))
        | _ -> ())
    | _ -> Swm_core.Panner.refresh ctx ~screen:0);
    ignore (Wm.step wm)
  done;
  ignore (Wm.step wm);
  Alcotest.(check bool) "soak invariants" true (wm_invariants server wm ctx);
  (* No window leak: everything alive is accounted for by a client, a
     decoration, WM furniture, or the roots. *)
  Alcotest.(check bool) "window population sane" true
    (Server.window_count server < 2000)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_server_fuzz;
    QCheck_alcotest.to_alcotest prop_wm_fuzz;
    Alcotest.test_case "deterministic 500-op soak" `Quick test_soak;
  ]
