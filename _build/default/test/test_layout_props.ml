(* Property tests for the OI layout engine and an independent oracle for
   the Xrm matcher. *)

module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Wobj = Swm_oi.Wobj
module Xrdb = Swm_xrdb.Xrdb

(* -------- OI layout -------- *)

type child_spec = { col : int; row : int; label_len : int }

let child_gen =
  QCheck2.Gen.(
    map
      (fun ((col, row), label_len) -> { col; row; label_len })
      (pair (pair (int_range 0 5) (int_range 0 4)) (int_range 0 12)))

let build_panel specs =
  let server = Server.create () in
  let conn = Server.connect server ~name:"layout" in
  let db = Xrdb.create () in
  let tk =
    Wobj.create_toolkit ~server ~conn ~screen:0 ~query:(fun ~names ~classes ->
        Xrdb.query db ~names ~classes)
  in
  let panel = Wobj.make tk Wobj.Panel ~name:"p" in
  List.iteri
    (fun i spec ->
      let b = Wobj.make tk Wobj.Button ~name:(Printf.sprintf "b%d" i) in
      Wobj.set_label b (String.make spec.label_len 'x');
      Wobj.add_child panel b
        ~position:(Geom.parse_exn (Printf.sprintf "+%d+%d" spec.col spec.row)))
    specs;
  Wobj.realize panel ~parent_window:(Server.root server ~screen:0)
    ~at:(Geom.point 0 0);
  (server, panel)

let prop_left_packed_no_overlap =
  QCheck2.Test.make ~name:"left-packed children never overlap" ~count:200
    QCheck2.Gen.(list_size (int_range 1 8) child_gen)
    (fun specs ->
      let _server, panel = build_panel specs in
      let rects =
        List.map
          (fun child ->
            let g = Wobj.geometry child in
            (* Include the 1px border on each side. *)
            Geom.rect g.x g.y (g.w + 2) (g.h + 2))
          (Wobj.children panel)
      in
      List.for_all
        (fun r1 ->
          List.for_all (fun r2 -> r1 == r2 || Geom.intersect r1 r2 = None) rects)
        rects)

let prop_children_inside_panel =
  QCheck2.Test.make ~name:"children stay inside the panel" ~count:200
    QCheck2.Gen.(list_size (int_range 1 8) child_gen)
    (fun specs ->
      let _server, panel = build_panel specs in
      let pg = Wobj.geometry panel in
      List.for_all
        (fun child ->
          let g = Wobj.geometry child in
          g.x >= 0 && g.y >= 0 && g.x + g.w + 2 <= pg.w && g.y + g.h + 2 <= pg.h)
        (Wobj.children panel))

let prop_row_order_vertical =
  QCheck2.Test.make ~name:"higher rows lay out below lower rows" ~count:200
    QCheck2.Gen.(list_size (int_range 2 8) child_gen)
    (fun specs ->
      let _server, panel = build_panel specs in
      let with_rows = List.combine specs (Wobj.children panel) in
      List.for_all
        (fun (s1, c1) ->
          List.for_all
            (fun (s2, c2) ->
              s1.row >= s2.row
              || (Wobj.geometry c1).y + (Wobj.geometry c1).h
                 <= (Wobj.geometry c2).y)
            with_rows)
        with_rows)

let prop_layout_deterministic =
  QCheck2.Test.make ~name:"layout is deterministic" ~count:100
    QCheck2.Gen.(list_size (int_range 1 6) child_gen)
    (fun specs ->
      let _s1, p1 = build_panel specs in
      let _s2, p2 = build_panel specs in
      List.for_all2
        (fun a b -> Geom.rect_equal (Wobj.geometry a) (Wobj.geometry b))
        (Wobj.children p1) (Wobj.children p2))

(* -------- Xrm matcher vs an independent oracle -------- *)

(* The oracle enumerates EVERY alignment of entry components against query
   levels and scores them, instead of the implementation's consume-first
   recursion; their chosen values must agree. *)
let oracle_match (key : Xrdb.key) names classes =
  let n = Array.length names in
  let rec go key level =
    if level = n then if key = [] then Some [] else None
    else
      match key with
      | [] -> None
      | (binding, comp) :: rest ->
          let consume =
            let base =
              match comp with
              | Xrdb.Single_wild -> Some 1
              | Xrdb.Name s ->
                  if s = names.(level) then Some 3
                  else if s = classes.(level) then Some 2
                  else None
            in
            match base with
            | None -> None
            | Some b ->
                Option.map
                  (fun tail -> ((b * 2) + (if binding = Xrdb.Tight then 1 else 0)) :: tail)
                  (go rest (level + 1))
          in
          let skip =
            if binding = Xrdb.Loose then
              Option.map (fun tail -> 0 :: tail) (go key (level + 1))
            else None
          in
          (* Take the lexicographically best of ALL alignments. *)
          (match (consume, skip) with
          | Some a, Some b -> Some (max a b)
          | (Some _ as r), None | None, (Some _ as r) -> r
          | None, None -> None)
  in
  go key 0

let oracle_query entries names classes =
  let names_a = Array.of_list names and classes_a = Array.of_list classes in
  let best = ref None in
  List.iter
    (fun (key, value) ->
      match oracle_match key names_a classes_a with
      | None -> ()
      | Some score -> (
          match !best with
          | Some (bscore, _) when compare score bscore <= 0 -> ()
          | Some _ | None -> best := Some (score, value)))
    entries;
  Option.map snd !best

let component_gen = QCheck2.Gen.oneofl [ "a"; "b"; "A"; "B"; "c" ]

let spec_gen =
  QCheck2.Gen.(
    map
      (fun parts ->
        String.concat ""
          (List.mapi
             (fun i (b, c) ->
               if i = 0 then (if b then "*" ^ c else c) else (if b then "*" else ".") ^ c)
             parts))
      (list_size (int_range 1 4) (pair bool component_gen)))

let prop_xrm_matches_oracle =
  QCheck2.Test.make ~name:"Xrm matcher agrees with exhaustive oracle" ~count:500
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 8) (pair spec_gen (int_range 0 1000)))
        (list_size (int_range 1 4) component_gen))
    (fun (raw_entries, names) ->
      let db = Xrdb.create () in
      let entries = ref [] in
      List.iter
        (fun (spec, v) ->
          match Xrdb.parse_key spec with
          | Ok key ->
              let value = string_of_int v in
              Xrdb.put_key db key value;
              (* Mirror the override-same-key behaviour. *)
              entries := (key, value) :: List.filter (fun (k, _) -> k <> key) !entries
          | Error _ -> ())
        raw_entries;
      let classes = List.map String.capitalize_ascii names in
      let impl = Xrdb.query db ~names ~classes in
      let oracle = oracle_query (List.rev !entries) names classes in
      (* Both agree on whether anything matches, and on the best score's
         value when the best is unique; when several entries tie we accept
         either of the tied values. *)
      match (impl, oracle) with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some a, Some b ->
          a = b
          ||
          (* tie: both values must be produced by maximal-scoring entries *)
          let names_a = Array.of_list names and classes_a = Array.of_list classes in
          let score_of v =
            List.filter_map
              (fun (k, value) ->
                if value = v then oracle_match k names_a classes_a else None)
              !entries
            |> List.fold_left (fun acc s -> max acc (Some s)) None
          in
          score_of a = score_of b)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_left_packed_no_overlap;
    QCheck_alcotest.to_alcotest prop_children_inside_panel;
    QCheck_alcotest.to_alcotest prop_row_order_vertical;
    QCheck_alcotest.to_alcotest prop_layout_deterministic;
    QCheck_alcotest.to_alcotest prop_xrm_matches_oracle;
  ]
