module Server = Swm_xlib.Server
module Geom = Swm_xlib.Geom
module Xid = Swm_xlib.Xid
module Prop = Swm_xlib.Prop
module Wm = Swm_core.Wm
module Ctx = Swm_core.Ctx
module Icons = Swm_core.Icons
module Templates = Swm_core.Templates
module Wobj = Swm_oi.Wobj
module Client_app = Swm_clients.Client_app
module Stock = Swm_clients.Stock

let check = Alcotest.check

let fixture ?(extra = "") () =
  let server = Server.create () in
  let wm =
    Wm.start
      ~resources:[ Templates.open_look; "swm*virtualDesktop: False\nswm*rootPanels:\n" ^ extra ]
      server
  in
  (server, wm, Wm.ctx wm)

let client_of wm app = Option.get (Wm.find_client wm (Client_app.window app))

let test_iconify_deiconify () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server ~at:(Geom.point 50 50) () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  check Alcotest.bool "iconic state" true (client.Ctx.state = Prop.Iconic);
  check Alcotest.bool "frame hidden" false (Server.is_viewable server client.Ctx.frame);
  (match client.Ctx.icon_obj with
  | Some icon ->
      check Alcotest.bool "icon realized" true (Wobj.is_realized icon);
      check Alcotest.bool "icon mapped" true
        (Server.is_viewable server (Wobj.window icon))
  | None -> Alcotest.fail "no icon");
  (match Server.get_property server client.Ctx.cwin ~name:Prop.wm_state_name with
  | Some (Prop.Wm_state_value { state = Prop.Iconic; _ }) -> ()
  | _ -> Alcotest.fail "WM_STATE should be Iconic");
  Icons.deiconify ctx client;
  check Alcotest.bool "normal again" true (client.Ctx.state = Prop.Normal);
  check Alcotest.bool "frame visible" true (Server.is_viewable server client.Ctx.frame);
  check Alcotest.bool "icon gone" true (client.Ctx.icon_obj = None)

let test_icon_panel_content () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  Client_app.set_icon_name app "shelly";
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  match client.Ctx.icon_obj with
  | Some icon ->
      let iconname = Option.get (Wobj.find_descendant icon ~name:"iconname") in
      check Alcotest.string "WM_ICON_NAME shown" "shelly" (Wobj.label iconname);
      let iconimage = Option.get (Wobj.find_descendant icon ~name:"iconimage") in
      (* The stock xlogo32 bitmap is drawn as art on the button window. *)
      check Alcotest.bool "default image bitmap" true
        (Server.art_of server (Wobj.window iconimage) <> None)
  | None -> Alcotest.fail "no icon"

let test_icon_position_remembered () =
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  let icon = Option.get client.Ctx.icon_obj in
  (* Move the icon (as f.move would) and remember where it went. *)
  let win = Wobj.window icon in
  let g = Server.geometry server win in
  Server.move_resize server ctx.Ctx.conn win { g with Geom.x = 321; y = 123 };
  Icons.deiconify ctx client;
  check Alcotest.bool "position remembered" true
    (client.Ctx.icon_pos = Some (Geom.point 321 123));
  (* Re-iconify: icon comes back at the remembered spot. *)
  Icons.iconify ctx client;
  let icon2 = Option.get client.Ctx.icon_obj in
  let g2 = Server.geometry server (Wobj.window icon2) in
  check Alcotest.int "x" 321 g2.x;
  check Alcotest.int "y" 123 g2.y

let test_wm_hints_icon_position () =
  let server, wm, ctx = fixture () in
  let app =
    Client_app.launch server
      (Client_app.spec ~instance:"hinted" ~icon_position:(Geom.point 77 66)
         (Geom.rect 0 0 50 50))
  in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  let icon = Option.get client.Ctx.icon_obj in
  let g = Server.geometry server (Wobj.window icon) in
  check Alcotest.int "hinted x" 77 g.x;
  check Alcotest.int "hinted y" 66 g.y

let test_initial_state_iconic () =
  let server, wm, _ctx = fixture () in
  let app =
    Client_app.launch server
      (Client_app.spec ~instance:"startsiconic" ~initial_state:Prop.Iconic
         (Geom.rect 0 0 50 50))
  in
  ignore (Wm.step wm);
  let client = client_of wm app in
  check Alcotest.bool "born iconic" true (client.Ctx.state = Prop.Iconic);
  check Alcotest.bool "frame hidden" false (Server.is_viewable server client.Ctx.frame)

let test_client_icon_window_adopted () =
  let server, wm, ctx = fixture () in
  let conn = Server.connect server ~name:"fancy" in
  let root = Server.root server ~screen:0 in
  let win =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 60 60) ()
  in
  let icon_win =
    Server.create_window server conn ~parent:root ~geom:(Geom.rect 0 0 32 32)
      ~background:'I' ()
  in
  Server.change_property server conn win ~name:Prop.wm_class
    (Prop.Wm_class { instance = "fancy"; class_ = "Fancy" });
  Server.change_property server conn win ~name:Prop.wm_hints_name
    (Prop.Wm_hints { Prop.default_wm_hints with icon_window = Some icon_win });
  Server.map_window server conn win;
  ignore (Wm.step wm);
  let client = Option.get (Wm.find_client wm win) in
  Icons.iconify ctx client;
  let icon = Option.get client.Ctx.icon_obj in
  let iconimage = Option.get (Wobj.find_descendant icon ~name:"iconimage") in
  check Alcotest.bool "client icon window reparented into iconimage" true
    (Xid.equal (Server.parent_of server icon_win) (Wobj.window iconimage));
  check Alcotest.bool "icon window mapped" true (Server.is_mapped server icon_win);
  (* Deiconify gives it back. *)
  Icons.deiconify ctx client;
  check Alcotest.bool "returned to root" true
    (Xid.equal (Server.parent_of server icon_win) root)

(* -------- holders -------- *)

let holder_resources =
  {|
swm*iconHolders: termBox
swm*iconHolder.termBox.classes: XTerm
swm*iconHolder.termBox.geometry: +500+500
|}

let test_holder_collects_matching_class () =
  let server, wm, ctx = fixture ~extra:holder_resources () in
  let term = Stock.xterm server () in
  let clock = Stock.xclock server () in
  ignore (Wm.step wm);
  let term_client = client_of wm term in
  let clock_client = client_of wm clock in
  Icons.iconify ctx term_client;
  Icons.iconify ctx clock_client;
  let holder = List.hd (Ctx.screen ctx 0).Ctx.holders in
  check Alcotest.int "xterm icon in holder" 1 (List.length holder.Ctx.holder_clients);
  check Alcotest.bool "it is the xterm" true
    (List.memq term_client holder.Ctx.holder_clients);
  (* The xterm's icon window lives inside the holder panel. *)
  let icon = Option.get term_client.Ctx.icon_obj in
  check Alcotest.bool "icon parented in holder" true
    (Xid.equal
       (Server.parent_of server (Wobj.window icon))
       (Wobj.window (Option.get holder.Ctx.holder_obj)));
  (* The xclock's icon is free-standing. *)
  check Alcotest.bool "clock icon not in holder" true (clock_client.Ctx.holder = None);
  Icons.deiconify ctx term_client;
  check Alcotest.int "holder empty after deiconify" 0
    (List.length holder.Ctx.holder_clients)

let test_holder_hide_when_empty () =
  let server, wm, ctx =
    fixture
      ~extra:
        {|
swm*iconHolders: box
swm*iconHolder.box.hideWhenEmpty: True
|}
      ()
  in
  let holder = List.hd (Ctx.screen ctx 0).Ctx.holders in
  let hwin = Wobj.window (Option.get holder.Ctx.holder_obj) in
  check Alcotest.bool "hidden while empty" false (Server.is_mapped server hwin);
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  check Alcotest.bool "appears when first icon arrives" true
    (Server.is_mapped server hwin);
  Icons.deiconify ctx client;
  check Alcotest.bool "hides again when empty" false (Server.is_mapped server hwin)

let test_root_icons () =
  let server, wm, ctx =
    fixture
      ~extra:
        {|
swm*rootIcons: trash
Swm*panel.trash: button trashimage +C+0
|}
      ()
  in
  ignore (Wm.step wm);
  let scr = Ctx.screen ctx 0 in
  match scr.Ctx.root_icons with
  | [ icon ] ->
      check Alcotest.bool "realized and mapped" true
        (Server.is_viewable server (Wobj.window icon));
      (* Root icons correspond to no client: they cannot be deiconified. *)
      check Alcotest.bool "no client for it" true
        (Wm.find_client wm (Wobj.window icon) = None)
  | _ -> Alcotest.fail "expected one root icon"

let test_iconify_via_map_request_deiconifies () =
  (* ICCCM: a client maps its window while iconic -> deiconify. *)
  let server, wm, ctx = fixture () in
  let app = Stock.xterm server () in
  ignore (Wm.step wm);
  let client = client_of wm app in
  Icons.iconify ctx client;
  Server.map_window server (Client_app.conn app) (Client_app.window app);
  ignore (Wm.step wm);
  check Alcotest.bool "deiconified by client map" true (client.Ctx.state = Prop.Normal)

let suite =
  [
    Alcotest.test_case "iconify / deiconify" `Quick test_iconify_deiconify;
    Alcotest.test_case "icon panel content" `Quick test_icon_panel_content;
    Alcotest.test_case "icon position remembered" `Quick test_icon_position_remembered;
    Alcotest.test_case "WM_HINTS icon position" `Quick test_wm_hints_icon_position;
    Alcotest.test_case "initial state Iconic" `Quick test_initial_state_iconic;
    Alcotest.test_case "client icon window adopted" `Quick
      test_client_icon_window_adopted;
    Alcotest.test_case "holder collects class" `Quick test_holder_collects_matching_class;
    Alcotest.test_case "holder hides when empty" `Quick test_holder_hide_when_empty;
    Alcotest.test_case "root icons" `Quick test_root_icons;
    Alcotest.test_case "client map deiconifies" `Quick
      test_iconify_via_map_request_deiconifies;
  ]
